// Benchmarks regenerating the paper's evaluation (§7), one bench family
// per table/figure. Each benchmark iteration runs a full verification
// pipeline at a representative parameter point; cmd/yubench prints the
// complete sweeps. Custom metrics report the paper's secondary axes
// (MTBDD node counts, scenario counts, equivalence-class counts).
//
//	go test -bench=. -benchmem
package yu

import (
	"context"
	"testing"
	"time"

	"github.com/yu-verify/yu/internal/concrete"
	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/core"
	"github.com/yu-verify/yu/internal/flowgen"
	"github.com/yu-verify/yu/internal/gen"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/paperex"
	"github.com/yu-verify/yu/internal/routesim"
	"github.com/yu-verify/yu/internal/spath"
	"github.com/yu-verify/yu/internal/topo"
)

func mustSpec(b testing.TB, load func() (*config.Spec, error)) *config.Spec {
	b.Helper()
	spec, err := load()
	if err != nil {
		b.Fatal(err)
	}
	return spec
}

// mustFatTree builds an FT-m spec with a fraction of pairwise flows.
func mustFatTree(b *testing.B, pods int, frac float64) (*config.Spec, []topo.Flow) {
	b.Helper()
	spec, err := gen.FatTree(gen.FatTreeSpec{Pods: pods})
	if err != nil {
		b.Fatal(err)
	}
	flows, err := flowgen.Pairwise(spec, 5, frac, 1)
	if err != nil {
		b.Fatal(err)
	}
	return spec, flows
}

// mustWAN builds a quick-scale WAN case.
func mustWAN(b *testing.B, routers, links, prefixes, nflows int, seed int64) (*config.Spec, []topo.Flow) {
	b.Helper()
	spec, err := gen.WAN(gen.WANSpec{Routers: routers, Links: links, Prefixes: prefixes,
		SRPolicyFraction: 0.1, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	flows, err := flowgen.Random(spec, flowgen.RandomSpec{Count: nflows, DSCP5Fraction: 0.3, Seed: seed + 100})
	if err != nil {
		b.Fatal(err)
	}
	return spec, flows
}

// runYUOnce executes the full symbolic pipeline and reports node metrics.
func runYUOnce(b *testing.B, spec *config.Spec, flows []topo.Flow, k int, mode topo.FailureMode, opts core.Options) {
	b.Helper()
	m := mtbdd.New()
	budget := k
	if opts.CheckK > 0 {
		budget = -1
	}
	fv := routesim.NewFailVars(m, spec.Net, mode, budget)
	rs, err := routesim.Run(fv, spec.Configs)
	if err != nil {
		b.Fatal(err)
	}
	eng := core.NewEngine(rs, opts)
	ver := core.NewVerifier(eng, flows)
	ver.Run(nil, nil, 1.0)
	b.ReportMetric(float64(m.Stats().PeakUnique), "mtbdd-nodes")
}

// BenchmarkMotivatingExample verifies Figure 1's P1+P2 end to end.
func BenchmarkMotivatingExample(b *testing.B) {
	spec := mustSpec(b, paperex.MotivatingSpec)
	for i := 0; i < b.N; i++ {
		runYUOnce(b, spec, spec.Flows, 1, topo.FailLinks, core.Options{})
	}
}

// BenchmarkFig11 measures k-link-failure verification time, YU vs the
// enumerating baseline, on the quick-scale N0.
func BenchmarkFig11(b *testing.B) {
	spec, flows := mustWAN(b, 100, 200, 60, 5000, 10)
	for _, k := range []int{1, 2} {
		b.Run("YU/N0/k="+itoa(k), func(b *testing.B) {
			if k >= 2 && testing.Short() {
				b.Skip("short mode")
			}
			for i := 0; i < b.N; i++ {
				runYUOnce(b, spec, flows, k, topo.FailLinks, core.Options{})
			}
		})
	}
	b.Run("Jingubang/N0/k=1", func(b *testing.B) {
		sim := concrete.NewSim(spec.Net, spec.Configs)
		for i := 0; i < b.N; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
			rep := sim.VerifyKFailures(flows, 1, topo.FailLinks, concrete.EnumOptions{
				OverloadFactor: 1.0, Incremental: true, Ctx: ctx,
			})
			cancel()
			b.ReportMetric(float64(rep.Scenarios), "scenarios")
		}
	})
}

// BenchmarkFig12 measures flow-count scaling on the quick-scale WAN: the
// time per flow collapses as global equivalence merges behaviors.
func BenchmarkFig12(b *testing.B) {
	spec, err := gen.WAN(gen.WANSpec{Routers: 100, Links: 200, Prefixes: 60, SRPolicyFraction: 0.1, Seed: 10})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{2000, 8000, 32000} {
		flows, err := flowgen.Random(spec, flowgen.RandomSpec{Count: n, DSCP5Fraction: 0.3, Seed: 110})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("flows="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runYUOnce(b, spec, flows, 1, topo.FailLinks, core.Options{})
			}
		})
	}
}

// BenchmarkFig13 measures per-link aggregation with and without
// link-local flow equivalence.
func BenchmarkFig13(b *testing.B) {
	spec, flows := mustWAN(b, 100, 200, 60, 5000, 10)
	for _, disable := range []bool{false, true} {
		name := "with-equiv"
		if disable {
			name = "without-equiv"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runYUOnce(b, spec, flows, 1, topo.FailLinks, core.Options{
					DisableLinkLocalEquiv:   disable,
					DisableEarlyTermination: true,
				})
			}
		})
	}
}

// BenchmarkFig15 measures the FT-4 2-failure sweep endpoints: YU, YU
// without KREDUCE, and the QARC-style baseline.
func BenchmarkFig15(b *testing.B) {
	spec, flows := mustFatTree(b, 4, 21.0/56.0)
	b.Run("YU/flows=21", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runYUOnce(b, spec, flows, 2, topo.FailLinks, core.Options{})
		}
	})
	b.Run("YU-no-KREDUCE/flows=21", func(b *testing.B) {
		if testing.Short() {
			b.Skip("short mode")
		}
		for i := 0; i < b.N; i++ {
			runYUOnce(b, spec, flows, 2, topo.FailLinks, core.Options{CheckK: 2})
		}
	})
	b.Run("QARC/flows=21", func(b *testing.B) {
		model := spath.NewModel(spec.Net, spec.Configs, flows)
		for i := 0; i < b.N; i++ {
			rep := model.Verify(2, spath.Options{OverloadFactor: 1.0})
			b.ReportMetric(float64(rep.Scenarios), "scenarios")
		}
	})
}

// BenchmarkFig16 reports the MTBDD node counts behind Fig 16 (the
// mtbdd-nodes metric of the Fig 15 benchmarks serves as the data series).
func BenchmarkFig16(b *testing.B) {
	spec, flows := mustFatTree(b, 4, 9.0/56.0)
	b.Run("with-KREDUCE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runYUOnce(b, spec, flows, 2, topo.FailLinks, core.Options{})
		}
	})
	b.Run("without-KREDUCE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runYUOnce(b, spec, flows, 2, topo.FailLinks, core.Options{CheckK: 2})
		}
	})
}

// BenchmarkFig17 measures router-failure verification on quick-scale N0.
func BenchmarkFig17(b *testing.B) {
	spec, flows := mustWAN(b, 100, 200, 60, 5000, 10)
	b.Run("YU/N0/k=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runYUOnce(b, spec, flows, 1, topo.FailRouters, core.Options{})
		}
	})
}

// BenchmarkTable4 measures the FT-m × 16% cells for all three engines.
func BenchmarkTable4(b *testing.B) {
	for _, pods := range []int{4, 8} {
		spec, flows := mustFatTree(b, pods, 0.16)
		name := "FT" + itoa(pods) + "/16pct"
		b.Run("YU/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runYUOnce(b, spec, flows, 2, topo.FailLinks, core.Options{})
			}
		})
		b.Run("QARC/"+name, func(b *testing.B) {
			if pods > 4 && testing.Short() {
				b.Skip("short mode")
			}
			model := spath.NewModel(spec.Net, spec.Configs, flows)
			for i := 0; i < b.N; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
				model.Verify(2, spath.Options{OverloadFactor: 1.0, Ctx: ctx})
				cancel()
			}
		})
		b.Run("Jingubang/"+name, func(b *testing.B) {
			if pods > 4 {
				b.Skip("enumeration beyond FT-4 exceeds the bench budget; see cmd/yubench -exp table4")
			}
			sim := concrete.NewSim(spec.Net, spec.Configs)
			for i := 0; i < b.N; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
				sim.VerifyKFailures(flows, 2, topo.FailLinks, concrete.EnumOptions{
					OverloadFactor: 1.0, Incremental: true, Ctx: ctx,
				})
				cancel()
			}
		})
	}
}

// BenchmarkSymbolicRouteSim isolates the guarded-RIB phase (the input
// stage of Fig 2's workflow).
func BenchmarkSymbolicRouteSim(b *testing.B) {
	spec, _ := mustWAN(b, 100, 200, 60, 0, 10)
	for i := 0; i < b.N; i++ {
		m := mtbdd.New()
		fv := routesim.NewFailVars(m, spec.Net, topo.FailLinks, 2)
		if _, err := routesim.Run(fv, spec.Configs); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
