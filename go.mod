module github.com/yu-verify/yu

go 1.22
