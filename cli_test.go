package yu

import (
	"math"
	"testing"

	"github.com/yu-verify/yu/internal/topo"
)

// TestLoadFileFixtures loads the checked-in spec files (the same texts the
// examples and internal/paperex use) and verifies their headline findings.
func TestLoadFileFixtures(t *testing.T) {
	t.Run("motivating", func(t *testing.T) {
		n, err := LoadFile("testdata/motivating.yu")
		if err != nil {
			t.Fatal(err)
		}
		rep, err := n.Verify(VerifyOptions{K: 1, OverloadFactor: 0.95})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Holds {
			t.Error("motivating example: P2 must be violated")
		}
	})
	t.Run("sranycast", func(t *testing.T) {
		n, err := LoadFile("testdata/sranycast.yu")
		if err != nil {
			t.Fatal(err)
		}
		rep, err := n.Verify(VerifyOptions{K: 1, OverloadFactor: 1.0})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Holds {
			t.Error("sranycast: B1-B2 must be overloadable")
		}
		for _, v := range rep.Violations {
			if v.Link.Link() != mustLink(t, n, "B1", "B2") {
				t.Errorf("unexpected overloaded link %s", n.Topology().DirLinkName(v.Link))
			}
			if math.Abs(v.Value-80) > 1e-6 {
				t.Errorf("B1-B2 load = %.6g, want 80", v.Value)
			}
		}
	})
	t.Run("misconfig", func(t *testing.T) {
		n, err := LoadFile("testdata/misconfig.yu")
		if err != nil {
			t.Fatal(err)
		}
		rep, err := n.Verify(VerifyOptions{K: 1})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Holds {
			t.Fatal("misconfig: delivery must be violated")
		}
		v := rep.Violations[0]
		if v.Kind != "delivered" || v.Value > 1e-6 {
			t.Errorf("violation = %+v, want delivered=0", v)
		}
		d1wan := mustLink(t, n, "D1", "WAN")
		if len(v.FailedLinks) != 1 || v.FailedLinks[0] != d1wan {
			t.Errorf("witness = %v, want the D1-WAN link", v.FailedLinks)
		}
	})
}

func mustLink(t *testing.T, n *Network, a, b string) topo.LinkID {
	t.Helper()
	l, ok := n.Topology().FindLink(a, b)
	if !ok {
		t.Fatalf("no link %s-%s", a, b)
	}
	return l.ID
}
