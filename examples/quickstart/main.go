// Quickstart: define a small network inline, verify a traffic load
// property under 1-link failures, and print the witness scenario.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/yu-verify/yu"
)

const spec = `
# Two data centers dual-homed to a small core.
router dc1 as 65101 loopback 10.0.0.1
router dc2 as 65102 loopback 10.0.0.2
router c1  as 65000 loopback 10.0.0.11
router c2  as 65000 loopback 10.0.0.12

link dc1 c1 cost 10 capacity 100
link dc1 c2 cost 10 capacity 100
link c1 c2  cost 10 capacity 100
link c1 dc2 cost 10 capacity 100
link c2 dc2 cost 10 capacity 100

auto-bgp-mesh

config dc2
  network 192.0.2.0/24

# 120 Gbps from dc1 to dc2, normally split 60/60 over the two core paths.
flow web ingress dc1 src 198.51.100.1 dst 192.0.2.10 gbps 120

failures k 1 mode links
`

func main() {
	net, err := yu.LoadString(spec)
	if err != nil {
		log.Fatal(err)
	}
	// Check that no link ever carries more than its capacity.
	rep, err := net.Verify(yu.VerifyOptions{OverloadFactor: 1.0})
	if err != nil {
		log.Fatal(err)
	}
	if rep.Holds {
		fmt.Println("all links stay within capacity under any single link failure")
		return
	}
	fmt.Printf("found %d overload scenario(s) in %v:\n", len(rep.Violations), rep.Elapsed)
	for _, v := range rep.Violations {
		fmt.Println("  " + v.Describe(net.Topology()))
	}
	// With one core path down, all 120 Gbps squeezes onto the survivor.
}
