// Misconfiguration use case (paper Figure 10, §6): D1/D2 carry a discard
// static for 10/8, redistribute it into BGP, and never advertise the
// specific service prefix 10.1.0.0/26 to the aggregation layer. The
// network is fully redundant, yet when D1's WAN link fails the service
// traffic still matches 10/8 at D1 and is silently dropped.
//
//	go run ./examples/misconfig
package main

import (
	"fmt"
	"log"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/paperex"
)

func main() {
	net, err := yu.LoadString(paperex.Misconfig)
	if err != nil {
		log.Fatal(err)
	}
	// The spec declares: delivered traffic to 10.1.0.0/26 must stay
	// >= 99 Gbps (the flow carries 100).
	rep, err := net.Verify(yu.VerifyOptions{K: 1})
	if err != nil {
		log.Fatal(err)
	}
	if rep.Holds {
		fmt.Println("unexpected: no traffic drop found")
		return
	}
	fmt.Printf("found %d delivery violation(s) in %v:\n", len(rep.Violations), rep.Elapsed)
	for _, v := range rep.Violations {
		fmt.Println("  " + v.Describe(net.Topology()))
	}
	fmt.Println()
	fmt.Println("root cause: the redistributed 10/8 discard static keeps attracting")
	fmt.Println("traffic at D1 after the specific 10.1.0.0/26 route is withdrawn.")
}
