// Motivating example (paper Figure 1): six routers in three ASes running
// eBGP/iBGP, IS-IS, and SR, carrying two flows toward 100.0.0.0/24.
//
// The program verifies the paper's two properties:
//
//	P1: traffic delivered to the destination does not drop below 70 Gbps
//	P2: no link carries 95 Gbps or more
//
// and reproduces the published finding: P1 holds under any single link
// failure, while P2 is violated — failing B-D funnels all 100 Gbps of
// both flows through link C-E (Figure 1(c)).
//
//	go run ./examples/motivating
package main

import (
	"fmt"
	"log"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/paperex"
)

func main() {
	net, err := yu.LoadString(paperex.Motivating)
	if err != nil {
		log.Fatal(err)
	}
	t := net.Topology()

	// P1 is declared in the spec (property delivered ... min 70).
	rep, err := net.Verify(yu.VerifyOptions{K: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P1 (delivered >= 70 Gbps) under 1-link failures: holds=%v (%v)\n",
		rep.Holds, rep.Elapsed)

	// P2: no link carries >= 95 Gbps, checked on every link.
	rep, err = net.Verify(yu.VerifyOptions{K: 1, OverloadFactor: 0.95})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P2 (no link >= 95 Gbps) under 1-link failures: holds=%v\n", rep.Holds)
	for _, v := range rep.Violations {
		fmt.Println("  " + v.Describe(t))
	}

	// Cross-check with the Jingubang-style enumerating baseline.
	enum, err := net.Verify(yu.VerifyOptions{K: 1, OverloadFactor: 0.95, Engine: yu.EngineEnumerate})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enumeration agrees: holds=%v over %d concrete scenarios\n",
		enum.Holds, enum.Scenarios)
}
