// FatTree capacity planning (paper §7.2): generate an FT-8 eBGP fabric,
// inject a fraction of the pairwise edge-to-edge flows, and ask whether
// any double link failure can overload a link — comparing YU against the
// QARC-style shortest-path baseline, which is faithful on this topology.
//
//	go run ./examples/fattree [-pods 8] [-frac 0.16] [-volume 5] [-k 2]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/flowgen"
	"github.com/yu-verify/yu/internal/gen"
	"github.com/yu-verify/yu/internal/spath"
)

func main() {
	pods := flag.Int("pods", 8, "FatTree pods (even)")
	frac := flag.Float64("frac", 0.16, "fraction of pairwise edge flows")
	volume := flag.Float64("volume", 5, "per-flow volume in Gbps")
	k := flag.Int("k", 2, "failure budget")
	flag.Parse()

	spec, err := gen.FatTree(gen.FatTreeSpec{Pods: *pods})
	if err != nil {
		log.Fatal(err)
	}
	flows, err := flowgen.Pairwise(spec, *volume, *frac, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FT-%d: %d routers, %d links, %d flows of %g Gbps, k=%d\n",
		*pods, spec.Net.NumRouters(), spec.Net.NumLinks(), len(flows), *volume, *k)

	net := yu.FromSpec(spec)
	rep, err := net.Verify(yu.VerifyOptions{K: *k, OverloadFactor: 1.0, Flows: flows})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("YU: holds=%v, %d violation(s), %v (%d MTBDD nodes)\n",
		rep.Holds, len(rep.Violations), rep.Elapsed, rep.MTBDDNodes)
	for i, v := range rep.Violations {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(rep.Violations)-3)
			break
		}
		fmt.Println("  " + v.Describe(net.Topology()))
	}

	if spath.Faithful(spec) {
		sp, err := net.Verify(yu.VerifyOptions{K: *k, OverloadFactor: 1.0, Flows: flows, Engine: yu.EngineShortestPath})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("QARC-style baseline: holds=%v over %d scenarios, %v\n",
			sp.Holds, sp.Scenarios, sp.Elapsed)
		if sp.Holds != rep.Holds {
			fmt.Println("ENGINES DISAGREE — this would be a bug; please report it")
		}
	}
}
