// SR anycast use case (paper Figure 9, §6): inter-DC traffic steered over
// an SR policy whose two tunnels ride an anycast segment on backbone
// routers B1/B2. The configuration intent is that either tunnel alone can
// carry the full 160 Gbps; YU finds that failing link B2-C2 instead
// reroutes the B2 tunnel's continuation across the low-capacity lateral
// link B1-B2, overloading it — the real outage class the paper reports.
//
//	go run ./examples/sranycast
package main

import (
	"fmt"
	"log"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/paperex"
)

func main() {
	net, err := yu.LoadString(paperex.SRAnycast)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := net.Verify(yu.VerifyOptions{K: 1, OverloadFactor: 1.0})
	if err != nil {
		log.Fatal(err)
	}
	if rep.Holds {
		fmt.Println("unexpected: no overload found")
		return
	}
	fmt.Printf("found %d overload scenario(s) in %v:\n", len(rep.Violations), rep.Elapsed)
	for _, v := range rep.Violations {
		fmt.Println("  " + v.Describe(net.Topology()))
	}
	fmt.Println()
	fmt.Println("root cause: the SR policy pins segment B2; when B2-C2 fails the")
	fmt.Println("tunnel detours B2 -> B1 over the 50 Gbps lateral link with 80 Gbps.")
}
