// Package yu is a verification system for checking traffic load properties
// (TLPs) of BGP/IS-IS/SR networks under arbitrary k-failure scenarios — a
// from-scratch reproduction of "A General and Efficient Approach to
// Verifying Traffic Load Properties under Arbitrary k Failures"
// (SIGCOMM 2024).
//
// Given a network (topology + router configurations), a set of input
// flows, and a failure budget k, YU answers: in every scenario with at
// most k failed links/routers, does every link's traffic load stay within
// its bounds, and is traffic still delivered? When the answer is no, YU
// produces a concrete witness failure scenario.
//
// The pipeline is: symbolic route simulation (guarded RIBs and SR
// policies), symbolic traffic execution over MTBDDs with k-failure
// equivalence reduction (KREDUCE), and terminal-scan verification with
// link-local flow-equivalence aggregation. Two baselines are bundled: a
// Jingubang-style concrete enumerator and a QARC-style shortest-path
// searcher.
//
// Quick start:
//
//	net, err := yu.LoadFile("network.yu")
//	rep, err := net.Verify(yu.VerifyOptions{K: 2, OverloadFactor: 0.95})
//	for _, v := range rep.Violations {
//	    fmt.Println(v.Describe(net.Topology()))
//	}
package yu

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"time"

	"github.com/yu-verify/yu/internal/compose"
	"github.com/yu-verify/yu/internal/concrete"
	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/core"
	"github.com/yu-verify/yu/internal/govern"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/obs"
	"github.com/yu-verify/yu/internal/routesim"
	"github.com/yu-verify/yu/internal/spath"
	"github.com/yu-verify/yu/internal/tlp"
	"github.com/yu-verify/yu/internal/topo"
)

// Re-exported domain types. The aliases give the public API stable names
// for the model types used in options and reports.
type (
	// FailureMode selects which element class may fail.
	FailureMode = topo.FailureMode
	// Flow is one input traffic flow.
	Flow = topo.Flow
	// LoadBound is a per-link traffic load property.
	LoadBound = topo.LoadBound
	// DeliveredBound is a delivered-traffic property.
	DeliveredBound = topo.DeliveredBound
	// Violation is a TLP violation with its witness scenario.
	Violation = core.Violation
	// LinkCheckStat records per-link verification effort.
	LinkCheckStat = core.LinkCheckStat
	// Spec is the parsed network specification.
	Spec = config.Spec
	// DirLinkID identifies a directed link (used in partial reports).
	DirLinkID = topo.DirLinkID
	// BudgetPolicy selects the response to an MTBDD node-budget breach.
	BudgetPolicy = core.BudgetPolicy
	// SchedStats summarizes the parallel scheduler's execution phase
	// (workers spawned, chunks, steals, class dedup) — see Report.Sched.
	SchedStats = core.SchedStats
	// Metrics is the run-metrics registry for VerifyOptions.Obs: phase
	// timings, per-cache MTBDD hit/miss counters, per-worker counters
	// (DESIGN.md §11). Create with NewMetrics; read with Snapshot.
	Metrics = obs.Registry
	// MetricsSnapshot is the serializable view of a Metrics registry —
	// the payload behind `yu -metrics=json`.
	MetricsSnapshot = obs.Snapshot
	// STFCache is the cross-run symbolic-execution cache hook consulted
	// by the sequential pipeline (VerifyOptions.STFCache). Implementations
	// must honor the contract documented on core.STFCache; the incremental
	// daemon (internal/serve) is the canonical one.
	STFCache = core.STFCache
	// ExecEngine is the symbolic execution engine handed to STFCache
	// callbacks (core.Engine; "Exec" avoids clashing with the Engine
	// selector constant type).
	ExecEngine = core.Engine
	// FlowSTF is one flow's symbolic traffic fractions — the value an
	// STFCache stores and serves.
	FlowSTF = core.FlowSTF
	// TLProp is one property of a portfolio evaluated by VerifyPortfolio:
	// a link load, utilization, delivered-traffic, or delivery-ratio
	// bound, optionally conditional on a link failure.
	TLProp = topo.TLProp
	// TLPResult is a portfolio evaluation outcome: per-property verdicts
	// plus violations grouped by witness failure set and ranked by excess.
	TLPResult = tlp.Result
	// ModularStats summarizes a compositional (domain-decomposed) run:
	// domain and border-link counts, lockstep BGP rounds, and how many
	// equivalence classes were verified inside a domain vs. falling back
	// to monolithic execution — see Report.Modular.
	ModularStats = compose.Stats
)

// NewMetrics returns an empty metrics registry to attach to a run via
// VerifyOptions.Obs. Metrics collection is off (and free) when the
// field is nil.
func NewMetrics() *Metrics { return obs.New() }

// Failure modes.
const (
	FailLinks   = topo.FailLinks
	FailRouters = topo.FailRouters
	FailBoth    = topo.FailBoth
)

// Budget policies for VerifyOptions.OnBudget.
const (
	// BudgetFail (the default) aborts on an unrelieved node-budget breach
	// with ErrNodeBudget and a partial report.
	BudgetFail = core.BudgetFail
	// BudgetDegrade walks the degradation ladder instead: breaching flows
	// are re-verified by bounded concrete enumeration (annotated in
	// Report.DegradedFlows), breaching link checks are skipped and listed
	// as unchecked.
	BudgetDegrade = core.BudgetDegrade
)

// Typed governance errors. Verify returns these (match with errors.Is)
// together with a partial Report when a run is cut short.
var (
	// ErrCanceled reports a canceled context.
	ErrCanceled = govern.ErrCanceled
	// ErrDeadline reports an expired context deadline.
	ErrDeadline = govern.ErrDeadline
	// ErrNodeBudget reports an MTBDD node-budget breach under BudgetFail.
	ErrNodeBudget = govern.ErrNodeBudget
)

// Network is a loaded network specification ready for verification.
type Network struct {
	spec *config.Spec
}

// Load parses a network specification (see internal/config.ParseSpec for
// the format) from r.
func Load(r io.Reader) (*Network, error) {
	spec, err := config.ParseSpec(r)
	if err != nil {
		return nil, err
	}
	return &Network{spec: spec}, nil
}

// LoadFile parses a network specification file.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	n, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return n, nil
}

// LoadString parses a network specification from a string.
func LoadString(s string) (*Network, error) {
	spec, err := config.ParseSpecString(s)
	if err != nil {
		return nil, err
	}
	return &Network{spec: spec}, nil
}

// FromSpec wraps an already-built specification (e.g. from the generators).
func FromSpec(spec *config.Spec) *Network { return &Network{spec: spec} }

// Spec exposes the underlying parsed specification.
func (n *Network) Spec() *config.Spec { return n.spec }

// Topology exposes the network topology.
func (n *Network) Topology() *topo.Network { return n.spec.Net }

// Engine selects the verification engine.
type Engine int

const (
	// EngineYU is the symbolic traffic execution engine (the paper's
	// contribution): one symbolic run covers all scenarios.
	EngineYU Engine = iota
	// EngineEnumerate is the Jingubang-style baseline: concrete
	// simulation of every C(n, <=k) scenario.
	EngineEnumerate
	// EngineShortestPath is the QARC-style baseline: shortest-path-only
	// model with failure-set search. Check spath.Faithful before
	// trusting its verdicts on feature-rich networks.
	EngineShortestPath
)

// VerifyOptions configures a verification run. The zero value verifies
// the spec's own properties under the spec's failure budget with the YU
// engine.
type VerifyOptions struct {
	// K overrides the spec's failure budget when >= 0 (use -1 to keep).
	K int
	// Mode overrides the spec's failure mode when set.
	Mode FailureMode
	// ModeSet makes Mode take effect.
	ModeSet bool
	// OverloadFactor, when > 0, additionally checks that every directed
	// link carries at most factor × capacity.
	OverloadFactor float64
	// Flows overrides the spec's flows when non-nil.
	Flows []Flow
	// Engine selects YU or a baseline.
	Engine Engine
	// DisableKReduce turns off the k-failure MTBDD reduction (the
	// "YU w/o MTBDD reduction" ablation; EngineYU only).
	DisableKReduce bool
	// DisableLinkLocalEquiv and DisableGlobalEquiv turn off the flow
	// equivalence optimizations (EngineYU only).
	DisableLinkLocalEquiv bool
	DisableGlobalEquiv    bool
	// Incremental enables incremental re-simulation (EngineEnumerate).
	Incremental bool
	// Workers is the parallelism degree for EngineYU: flows are executed
	// on sharded MTBDD managers and links checked concurrently. 0 or 1
	// selects the sequential pipeline; reports are identical either way
	// (modulo wall-clock fields).
	Workers int
	// Ctx, when non-nil, makes the run cancellable: cancellation or an
	// expired deadline aborts within milliseconds and Verify returns
	// ErrCanceled / ErrDeadline with a partial Report.
	Ctx context.Context
	// MaxNodes, when > 0, bounds the live MTBDD nodes of every manager
	// the run creates (EngineYU only). A breach first triggers a managed
	// GC and a retry; an unrelieved breach is handled per OnBudget.
	MaxNodes int
	// OnBudget selects the response to an unrelieved MaxNodes breach:
	// BudgetFail (default) or BudgetDegrade.
	OnBudget BudgetPolicy
	// Obs, when non-nil, collects run metrics — phase durations,
	// per-manager MTBDD cache stats, per-worker counters — into the
	// registry (read them with Obs.Snapshot() after Verify returns,
	// including on partial/incomplete runs). nil disables collection
	// with zero overhead.
	Obs *Metrics
	// CostHints warm-starts the parallel scheduler with measured per-class
	// execution costs from a previous run (Report.CostHints). Scheduling
	// only — verdicts and reports never depend on it.
	CostHints map[string]float64
	// STFCache, when non-nil, lets the run reuse symbolic execution
	// results from previous runs (EngineYU, Workers <= 1 only): each
	// equivalence class is offered to the cache before execution and
	// stored after. Soundness is the cache's responsibility — see the
	// core.STFCache contract. Reports remain byte-identical to uncached
	// runs when the cache honors it.
	STFCache STFCache
	// Domains, when non-nil, turns on compositional verification
	// (EngineYU only): the named router partition — which must be
	// AS-closed — is route-simulated and symbolically executed one domain
	// at a time against interface summaries, breaking the monolithic
	// MTBDD scaling wall. The spec's own `domain` lines are available as
	// Spec().Domains. Flows beyond a summary's precision limit fall back
	// to whole-network execution; reports stay byte-identical to
	// monolithic runs. An invalid partition is a hard error.
	Domains map[string][]string
	// AutoDomains, when > 0 and Domains is nil, partitions the network
	// automatically into up to that many AS-closed domains.
	AutoDomains int
}

// Report is the outcome of a verification run.
type Report struct {
	Violations []Violation
	Holds      bool
	// Engine-specific statistics.
	Elapsed       time.Duration
	RouteSimTime  time.Duration
	FlowsTotal    int
	FlowsExecuted int
	// Scenarios is the number of concrete scenarios simulated
	// (baselines only; EngineYU covers all scenarios in one run).
	Scenarios int
	// MTBDDNodes is the number of live MTBDD nodes after verification
	// (EngineYU only, the Fig 16 metric).
	MTBDDNodes int
	// LinkStats has one entry per checked directed link (EngineYU only).
	LinkStats []LinkCheckStat
	// Incomplete is set when the run was cut short (cancellation,
	// deadline, node budget) or checks were skipped while degrading.
	// Holds is never true on an incomplete report.
	Incomplete bool
	// Unchecked lists directed links whose load checks did not complete;
	// their verdicts are unknown.
	Unchecked []DirLinkID
	// UncheckedDelivered lists delivered-bound prefixes whose checks did
	// not complete.
	UncheckedDelivered []netip.Prefix
	// DegradedFlows names flows verified by the bounded concrete
	// fallback instead of symbolic execution (BudgetDegrade only).
	DegradedFlows []string
	// Sched summarizes the execution scheduler (EngineYU only): workers
	// actually spawned, chunks, steals, and global-equivalence dedup hits.
	Sched SchedStats
	// CostHints is the measured per-class execution cost of this run
	// (EngineYU only) — feed it back via VerifyOptions.CostHints to
	// warm-start the scheduler of a subsequent run.
	CostHints map[string]float64
	// Modular summarizes the compositional pipeline when the run was
	// domain-decomposed (VerifyOptions.Domains / AutoDomains); nil on
	// monolithic runs and when composition fell back wholesale.
	Modular *ModularStats
}

// Verify runs k-failure TLP verification.
func (n *Network) Verify(opts VerifyOptions) (*Report, error) {
	k := n.spec.K
	if opts.K > 0 {
		k = opts.K
	}
	mode := n.spec.Mode
	if opts.ModeSet {
		mode = opts.Mode
	}
	flows := n.spec.Flows
	if opts.Flows != nil {
		flows = opts.Flows
	}
	start := time.Now()
	switch opts.Engine {
	case EngineYU:
		return n.verifyYU(k, mode, flows, opts, start)
	case EngineEnumerate:
		return n.verifyEnumerate(k, mode, flows, opts, start)
	case EngineShortestPath:
		if mode != topo.FailLinks {
			return nil, fmt.Errorf("yu: the shortest-path baseline supports link failures only")
		}
		model := spath.NewModel(n.spec.Net, n.spec.Configs, flows)
		factor := opts.OverloadFactor
		if factor <= 0 {
			factor = 1
		}
		rep := model.Verify(k, spath.Options{OverloadFactor: factor, Ctx: opts.Ctx})
		out := &Report{
			Holds:      rep.Holds,
			Elapsed:    time.Since(start),
			FlowsTotal: len(flows),
			Scenarios:  rep.Scenarios,
		}
		for _, v := range rep.Violations {
			out.Violations = append(out.Violations, Violation{
				Kind: "link-load", Link: v.Link, Value: v.Value, Max: v.Limit,
				FailedLinks: v.FailedLinks,
			})
		}
		if rep.Err != nil {
			n.markAllUnchecked(out, factor)
		}
		return out, rep.Err
	}
	return nil, fmt.Errorf("yu: unknown engine %d", opts.Engine)
}

// verifyEnumerate runs the Jingubang-style concrete baseline. It is both
// the EngineEnumerate entry point and rung 4 of the degradation ladder
// (the whole-run fallback when even symbolic route simulation cannot fit
// its node budget).
func (n *Network) verifyEnumerate(k int, mode FailureMode, flows []Flow, opts VerifyOptions, start time.Time) (*Report, error) {
	sp := opts.Obs.Span("enumerate")
	defer sp.End()
	sim := concrete.NewSim(n.spec.Net, n.spec.Configs)
	rep := sim.VerifyKFailures(flows, k, mode, concrete.EnumOptions{
		OverloadFactor: opts.OverloadFactor,
		Bounds:         n.spec.Props,
		Delivered:      n.spec.Delivered,
		Incremental:    opts.Incremental,
		Ctx:            opts.Ctx,
	})
	out := &Report{
		Holds:      rep.Holds,
		Elapsed:    time.Since(start),
		FlowsTotal: len(flows),
		Scenarios:  rep.Scenarios,
	}
	for _, v := range rep.Violations {
		out.Violations = append(out.Violations, Violation{
			Kind: v.Kind, Link: v.Link, Prefix: v.Prefix, Value: v.Value,
			Min: v.Min, Max: v.Max,
			FailedLinks: v.FailedLinks, FailedRouters: v.FailedRouters,
		})
	}
	if rep.Err != nil {
		n.markAllUnchecked(out, opts.OverloadFactor)
	}
	return out, rep.Err
}

// markAllUnchecked records every requested check target as unchecked on
// a report whose checks could not run (or cannot be trusted to have
// covered every scenario).
func (n *Network) markAllUnchecked(out *Report, overloadFactor float64) {
	seen := make(map[DirLinkID]bool)
	addLink := func(l DirLinkID) {
		if !seen[l] {
			seen[l] = true
			out.Unchecked = append(out.Unchecked, l)
		}
	}
	for _, b := range n.spec.Props {
		dirs := []topo.Direction{topo.AtoB, topo.BtoA}
		if b.DirSpecified {
			dirs = []topo.Direction{b.Dir}
		}
		for _, d := range dirs {
			addLink(topo.MakeDirLinkID(b.Link, d))
		}
	}
	if overloadFactor > 0 {
		for li := 0; li < n.spec.Net.NumLinks(); li++ {
			for _, d := range []topo.Direction{topo.AtoB, topo.BtoA} {
				addLink(topo.MakeDirLinkID(topo.LinkID(li), d))
			}
		}
	}
	for _, b := range n.spec.Delivered {
		out.UncheckedDelivered = append(out.UncheckedDelivered, b.Prefix)
	}
	out.Incomplete = true
	out.Holds = false
}

// VerifyPortfolio evaluates a property portfolio with the batch TLP
// engine (EngineYU only): one symbolic execution serves every property,
// each directed link's load aggregated and terminal-scanned exactly once
// however many properties ride on it. Options are honored as in Verify
// (K/Mode/Flows overrides, Workers, governance, Obs, STFCache); the
// portfolio itself replaces the spec's legacy properties. The result is
// byte-stable across worker counts (canon.FormatPortfolio).
//
// Like Verify, a governed abort returns the typed error together with a
// partial result whose undecided properties are StatusUnchecked.
func (n *Network) VerifyPortfolio(props []TLProp, opts VerifyOptions) (*TLPResult, error) {
	k := n.spec.K
	if opts.K > 0 {
		k = opts.K
	}
	mode := n.spec.Mode
	if opts.ModeSet {
		mode = opts.Mode
	}
	flows := n.spec.Flows
	if opts.Flows != nil {
		flows = opts.Flows
	}
	port, err := tlp.Compile(n.spec.Net, flows, props)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	budget := k
	checkK := 0
	if opts.DisableKReduce {
		budget = -1
		checkK = k
	}
	m := mtbdd.New()
	fv := routesim.NewFailVars(m, n.spec.Net, mode, budget)
	if opts.MaxNodes > 0 {
		m.SetNodeBudget(opts.MaxNodes)
	}
	rs, err := routesim.RunContext(opts.Ctx, fv, n.spec.Configs)
	opts.Obs.AddPhase("routesim", time.Since(start))
	if err != nil {
		if errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadline) || errors.Is(err, ErrNodeBudget) {
			core.RecordManager(opts.Obs, "primary", m)
			return tlp.AllUnchecked(props), err
		}
		return nil, err
	}
	eng := core.NewEngine(rs, core.Options{
		DisableLinkLocalEquiv: opts.DisableLinkLocalEquiv,
		DisableGlobalEquiv:    opts.DisableGlobalEquiv,
		CheckK:                checkK,
		Ctx:                   opts.Ctx,
		NodeBudget:            opts.MaxNodes,
		OnBudget:              opts.OnBudget,
		Configs:               n.spec.Configs,
		Obs:                   opts.Obs,
		CostHints:             opts.CostHints,
		STFCache:              opts.STFCache,
	})
	ver := core.NewParallelVerifier(eng, flows, opts.Workers)
	if verr := ver.Err(); verr != nil {
		core.RecordManager(opts.Obs, "primary", eng.Manager())
		return tlp.AllUnchecked(props), verr
	}
	res, err := port.Eval(ver, opts.Obs)
	core.RecordManager(opts.Obs, "primary", eng.Manager())
	return res, err
}

func (n *Network) verifyYU(k int, mode FailureMode, flows []Flow, opts VerifyOptions, start time.Time) (*Report, error) {
	if opts.Domains != nil || opts.AutoDomains > 0 {
		return n.verifyModular(k, mode, flows, opts, start)
	}
	budget := k
	checkK := 0
	if opts.DisableKReduce {
		budget = -1
		checkK = k
	}
	m := mtbdd.New()
	fv := routesim.NewFailVars(m, n.spec.Net, mode, budget)
	if opts.MaxNodes > 0 {
		m.SetNodeBudget(opts.MaxNodes)
	}
	rs, err := routesim.RunContext(opts.Ctx, fv, n.spec.Configs)
	routeTime := time.Since(start)
	opts.Obs.AddPhase("routesim", routeTime)
	if err != nil {
		if errors.Is(err, ErrNodeBudget) && opts.OnBudget == BudgetDegrade {
			// Rung 4 of the degradation ladder: the budget cannot even
			// hold symbolic route simulation, so the whole run falls back
			// to bounded concrete enumeration. Every flow is degraded.
			out, derr := n.verifyEnumerate(k, mode, flows, opts, start)
			if out != nil {
				for _, f := range flows {
					out.DegradedFlows = append(out.DegradedFlows, f.String())
				}
				out.RouteSimTime = routeTime
			}
			return out, derr
		}
		if errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadline) || errors.Is(err, ErrNodeBudget) {
			// Cut short before any check could run: a partial report with
			// every requested target unchecked, plus the typed error.
			out := &Report{
				Elapsed:      time.Since(start),
				RouteSimTime: routeTime,
				FlowsTotal:   len(flows),
				MTBDDNodes:   m.Stats().Live,
			}
			n.markAllUnchecked(out, opts.OverloadFactor)
			core.RecordManager(opts.Obs, "primary", m)
			return out, err
		}
		return nil, err
	}
	eng := core.NewEngine(rs, core.Options{
		DisableLinkLocalEquiv: opts.DisableLinkLocalEquiv,
		DisableGlobalEquiv:    opts.DisableGlobalEquiv,
		CheckK:                checkK,
		Ctx:                   opts.Ctx,
		NodeBudget:            opts.MaxNodes,
		OnBudget:              opts.OnBudget,
		Configs:               n.spec.Configs,
		Obs:                   opts.Obs,
		CostHints:             opts.CostHints,
		STFCache:              opts.STFCache,
	})
	execSpan := opts.Obs.Span("execute")
	ver := core.NewParallelVerifier(eng, flows, opts.Workers)
	execSpan.End()
	checkSpan := opts.Obs.Span("check")
	rep, verr := ver.Run(n.spec.Props, n.spec.Delivered, opts.OverloadFactor)
	checkSpan.End()
	core.RecordManager(opts.Obs, "primary", eng.Manager())
	if verr == nil && rep.Incomplete && opts.OnBudget == BudgetDegrade && opts.MaxNodes > 0 {
		// The budget let execution through (possibly via per-flow
		// fallbacks) but was too tight for the aggregation checks, which
		// were skipped. Rung 4: re-verify the whole run concretely so the
		// degrade policy always renders a complete verdict.
		out, derr := n.verifyEnumerate(k, mode, flows, opts, start)
		if out != nil {
			for _, f := range flows {
				out.DegradedFlows = append(out.DegradedFlows, f.String())
			}
			out.RouteSimTime = routeTime
		}
		return out, derr
	}
	out := &Report{
		Violations:         rep.Violations,
		Holds:              rep.Holds,
		Elapsed:            time.Since(start),
		RouteSimTime:       routeTime,
		FlowsTotal:         rep.FlowsTotal,
		FlowsExecuted:      rep.FlowsExecuted,
		MTBDDNodes:         m.Stats().Live,
		LinkStats:          rep.LinkStats,
		Incomplete:         rep.Incomplete,
		Unchecked:          rep.Unchecked,
		UncheckedDelivered: rep.UncheckedDelivered,
		DegradedFlows:      rep.DegradedFlows,
		Sched:              ver.SchedStats(),
		CostHints:          ver.CostHints(),
	}
	return out, verr
}

// verifyModular is the compositional pipeline (DESIGN.md §17): partition
// the topology into AS-closed domains, verify each domain against
// interface summaries via internal/compose, and run the usual checks on
// the assembled verifier. Reports are byte-identical to monolithic runs;
// inputs the composition cannot handle (incomposable configs, governed
// domain builds under BudgetDegrade) fall back to the whole-network
// pipeline, which reproduces the verdict or the error.
func (n *Network) verifyModular(k int, mode FailureMode, flows []Flow, opts VerifyOptions, start time.Time) (*Report, error) {
	var part *topo.Partition
	var perr error
	if opts.Domains != nil {
		part, perr = topo.NewPartition(n.spec.Net, opts.Domains)
	} else {
		part, perr = topo.AutoPartition(n.spec.Net, opts.AutoDomains)
	}
	if perr != nil {
		return nil, perr // an invalid partition is a configuration error
	}
	budget := k
	checkK := 0
	if opts.DisableKReduce {
		budget = -1
		checkK = k
	}
	composeStart := time.Now()
	built, err := compose.Build(n.spec.Net, n.spec.Configs, part, flows, compose.Options{
		K:                     budget,
		CheckK:                checkK,
		Mode:                  mode,
		Workers:               opts.Workers,
		MaxNodes:              opts.MaxNodes,
		OnBudget:              opts.OnBudget,
		Ctx:                   opts.Ctx,
		Obs:                   opts.Obs,
		DisableLinkLocalEquiv: opts.DisableLinkLocalEquiv,
		DisableGlobalEquiv:    opts.DisableGlobalEquiv,
		CostHints:             opts.CostHints,
	})
	composeTime := time.Since(composeStart)
	opts.Obs.AddPhase("compose", composeTime)
	if err != nil {
		if errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadline) {
			out := &Report{
				Elapsed:      time.Since(start),
				RouteSimTime: composeTime,
				FlowsTotal:   len(flows),
			}
			n.markAllUnchecked(out, opts.OverloadFactor)
			return out, err
		}
		// Incomposable input or a budget the domains could not hold: the
		// monolithic pipeline reproduces the verdict or the error.
		mono := opts
		mono.Domains, mono.AutoDomains = nil, 0
		return n.verifyYU(k, mode, flows, mono, start)
	}
	ver := built.Verifier
	checkSpan := opts.Obs.Span("check")
	rep, verr := ver.Run(n.spec.Props, n.spec.Delivered, opts.OverloadFactor)
	checkSpan.End()
	core.RecordManager(opts.Obs, "primary", built.Engine.Manager())
	if verr == nil && rep.Incomplete && opts.OnBudget == BudgetDegrade && opts.MaxNodes > 0 {
		// Rung 4 of the degradation ladder, exactly as in the monolithic
		// pipeline: checks were skipped under the budget, so the whole run
		// re-verifies concretely for a complete verdict.
		out, derr := n.verifyEnumerate(k, mode, flows, opts, start)
		if out != nil {
			for _, f := range flows {
				out.DegradedFlows = append(out.DegradedFlows, f.String())
			}
			out.RouteSimTime = composeTime
		}
		return out, derr
	}
	stats := built.Stats
	out := &Report{
		Violations:         rep.Violations,
		Holds:              rep.Holds,
		Elapsed:            time.Since(start),
		RouteSimTime:       composeTime,
		FlowsTotal:         rep.FlowsTotal,
		FlowsExecuted:      rep.FlowsExecuted,
		MTBDDNodes:         built.Engine.Manager().Stats().Live,
		LinkStats:          rep.LinkStats,
		Incomplete:         rep.Incomplete,
		Unchecked:          rep.Unchecked,
		UncheckedDelivered: rep.UncheckedDelivered,
		DegradedFlows:      rep.DegradedFlows,
		Sched:              ver.SchedStats(),
		CostHints:          ver.CostHints(),
		Modular:            &stats,
	}
	return out, verr
}
