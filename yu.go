// Package yu is a verification system for checking traffic load properties
// (TLPs) of BGP/IS-IS/SR networks under arbitrary k-failure scenarios — a
// from-scratch reproduction of "A General and Efficient Approach to
// Verifying Traffic Load Properties under Arbitrary k Failures"
// (SIGCOMM 2024).
//
// Given a network (topology + router configurations), a set of input
// flows, and a failure budget k, YU answers: in every scenario with at
// most k failed links/routers, does every link's traffic load stay within
// its bounds, and is traffic still delivered? When the answer is no, YU
// produces a concrete witness failure scenario.
//
// The pipeline is: symbolic route simulation (guarded RIBs and SR
// policies), symbolic traffic execution over MTBDDs with k-failure
// equivalence reduction (KREDUCE), and terminal-scan verification with
// link-local flow-equivalence aggregation. Two baselines are bundled: a
// Jingubang-style concrete enumerator and a QARC-style shortest-path
// searcher.
//
// Quick start:
//
//	net, err := yu.LoadFile("network.yu")
//	rep, err := net.Verify(yu.VerifyOptions{K: 2, OverloadFactor: 0.95})
//	for _, v := range rep.Violations {
//	    fmt.Println(v.Describe(net.Topology()))
//	}
package yu

import (
	"fmt"
	"io"
	"os"
	"time"

	"github.com/yu-verify/yu/internal/concrete"
	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/core"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/routesim"
	"github.com/yu-verify/yu/internal/spath"
	"github.com/yu-verify/yu/internal/topo"
)

// Re-exported domain types. The aliases give the public API stable names
// for the model types used in options and reports.
type (
	// FailureMode selects which element class may fail.
	FailureMode = topo.FailureMode
	// Flow is one input traffic flow.
	Flow = topo.Flow
	// LoadBound is a per-link traffic load property.
	LoadBound = topo.LoadBound
	// DeliveredBound is a delivered-traffic property.
	DeliveredBound = topo.DeliveredBound
	// Violation is a TLP violation with its witness scenario.
	Violation = core.Violation
	// LinkCheckStat records per-link verification effort.
	LinkCheckStat = core.LinkCheckStat
	// Spec is the parsed network specification.
	Spec = config.Spec
)

// Failure modes.
const (
	FailLinks   = topo.FailLinks
	FailRouters = topo.FailRouters
	FailBoth    = topo.FailBoth
)

// Network is a loaded network specification ready for verification.
type Network struct {
	spec *config.Spec
}

// Load parses a network specification (see internal/config.ParseSpec for
// the format) from r.
func Load(r io.Reader) (*Network, error) {
	spec, err := config.ParseSpec(r)
	if err != nil {
		return nil, err
	}
	return &Network{spec: spec}, nil
}

// LoadFile parses a network specification file.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	n, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return n, nil
}

// LoadString parses a network specification from a string.
func LoadString(s string) (*Network, error) {
	spec, err := config.ParseSpecString(s)
	if err != nil {
		return nil, err
	}
	return &Network{spec: spec}, nil
}

// FromSpec wraps an already-built specification (e.g. from the generators).
func FromSpec(spec *config.Spec) *Network { return &Network{spec: spec} }

// Spec exposes the underlying parsed specification.
func (n *Network) Spec() *config.Spec { return n.spec }

// Topology exposes the network topology.
func (n *Network) Topology() *topo.Network { return n.spec.Net }

// Engine selects the verification engine.
type Engine int

const (
	// EngineYU is the symbolic traffic execution engine (the paper's
	// contribution): one symbolic run covers all scenarios.
	EngineYU Engine = iota
	// EngineEnumerate is the Jingubang-style baseline: concrete
	// simulation of every C(n, <=k) scenario.
	EngineEnumerate
	// EngineShortestPath is the QARC-style baseline: shortest-path-only
	// model with failure-set search. Check spath.Faithful before
	// trusting its verdicts on feature-rich networks.
	EngineShortestPath
)

// VerifyOptions configures a verification run. The zero value verifies
// the spec's own properties under the spec's failure budget with the YU
// engine.
type VerifyOptions struct {
	// K overrides the spec's failure budget when >= 0 (use -1 to keep).
	K int
	// Mode overrides the spec's failure mode when set.
	Mode FailureMode
	// ModeSet makes Mode take effect.
	ModeSet bool
	// OverloadFactor, when > 0, additionally checks that every directed
	// link carries at most factor × capacity.
	OverloadFactor float64
	// Flows overrides the spec's flows when non-nil.
	Flows []Flow
	// Engine selects YU or a baseline.
	Engine Engine
	// DisableKReduce turns off the k-failure MTBDD reduction (the
	// "YU w/o MTBDD reduction" ablation; EngineYU only).
	DisableKReduce bool
	// DisableLinkLocalEquiv and DisableGlobalEquiv turn off the flow
	// equivalence optimizations (EngineYU only).
	DisableLinkLocalEquiv bool
	DisableGlobalEquiv    bool
	// Incremental enables incremental re-simulation (EngineEnumerate).
	Incremental bool
	// Workers is the parallelism degree for EngineYU: flows are executed
	// on sharded MTBDD managers and links checked concurrently. 0 or 1
	// selects the sequential pipeline; reports are identical either way
	// (modulo wall-clock fields).
	Workers int
}

// Report is the outcome of a verification run.
type Report struct {
	Violations []Violation
	Holds      bool
	// Engine-specific statistics.
	Elapsed       time.Duration
	RouteSimTime  time.Duration
	FlowsTotal    int
	FlowsExecuted int
	// Scenarios is the number of concrete scenarios simulated
	// (baselines only; EngineYU covers all scenarios in one run).
	Scenarios int
	// MTBDDNodes is the number of live MTBDD nodes after verification
	// (EngineYU only, the Fig 16 metric).
	MTBDDNodes int
	// LinkStats has one entry per checked directed link (EngineYU only).
	LinkStats []LinkCheckStat
}

// Verify runs k-failure TLP verification.
func (n *Network) Verify(opts VerifyOptions) (*Report, error) {
	k := n.spec.K
	if opts.K > 0 {
		k = opts.K
	}
	mode := n.spec.Mode
	if opts.ModeSet {
		mode = opts.Mode
	}
	flows := n.spec.Flows
	if opts.Flows != nil {
		flows = opts.Flows
	}
	start := time.Now()
	switch opts.Engine {
	case EngineYU:
		return n.verifyYU(k, mode, flows, opts, start)
	case EngineEnumerate:
		sim := concrete.NewSim(n.spec.Net, n.spec.Configs)
		rep := sim.VerifyKFailures(flows, k, mode, concrete.EnumOptions{
			OverloadFactor: opts.OverloadFactor,
			Bounds:         n.spec.Props,
			Delivered:      n.spec.Delivered,
			Incremental:    opts.Incremental,
		})
		out := &Report{
			Holds:      rep.Holds,
			Elapsed:    time.Since(start),
			FlowsTotal: len(flows),
			Scenarios:  rep.Scenarios,
		}
		for _, v := range rep.Violations {
			out.Violations = append(out.Violations, Violation{
				Kind: v.Kind, Link: v.Link, Prefix: v.Prefix, Value: v.Value,
				Min: v.Min, Max: v.Max,
				FailedLinks: v.FailedLinks, FailedRouters: v.FailedRouters,
			})
		}
		return out, nil
	case EngineShortestPath:
		if mode != topo.FailLinks {
			return nil, fmt.Errorf("yu: the shortest-path baseline supports link failures only")
		}
		model := spath.NewModel(n.spec.Net, n.spec.Configs, flows)
		factor := opts.OverloadFactor
		if factor <= 0 {
			factor = 1
		}
		rep := model.Verify(k, spath.Options{OverloadFactor: factor})
		out := &Report{
			Holds:      rep.Holds,
			Elapsed:    time.Since(start),
			FlowsTotal: len(flows),
			Scenarios:  rep.Scenarios,
		}
		for _, v := range rep.Violations {
			out.Violations = append(out.Violations, Violation{
				Kind: "link-load", Link: v.Link, Value: v.Value, Max: v.Limit,
				FailedLinks: v.FailedLinks,
			})
		}
		return out, nil
	}
	return nil, fmt.Errorf("yu: unknown engine %d", opts.Engine)
}

func (n *Network) verifyYU(k int, mode FailureMode, flows []Flow, opts VerifyOptions, start time.Time) (*Report, error) {
	budget := k
	checkK := 0
	if opts.DisableKReduce {
		budget = -1
		checkK = k
	}
	m := mtbdd.New()
	fv := routesim.NewFailVars(m, n.spec.Net, mode, budget)
	rs, err := routesim.Run(fv, n.spec.Configs)
	if err != nil {
		return nil, err
	}
	routeTime := time.Since(start)
	eng := core.NewEngine(rs, core.Options{
		DisableLinkLocalEquiv: opts.DisableLinkLocalEquiv,
		DisableGlobalEquiv:    opts.DisableGlobalEquiv,
		CheckK:                checkK,
	})
	ver := core.NewParallelVerifier(eng, flows, opts.Workers)
	rep := ver.Run(n.spec.Props, n.spec.Delivered, opts.OverloadFactor)
	out := &Report{
		Violations:    rep.Violations,
		Holds:         rep.Holds,
		Elapsed:       time.Since(start),
		RouteSimTime:  routeTime,
		FlowsTotal:    rep.FlowsTotal,
		FlowsExecuted: rep.FlowsExecuted,
		MTBDDNodes:    m.Stats().Live,
		LinkStats:     rep.LinkStats,
	}
	return out, nil
}
