// Command yubench regenerates the paper's evaluation tables and figures
// (§7) on synthetic stand-in networks.
//
// Usage:
//
//	yubench -exp table3|table4|fig11|fig12|fig13|fig15|fig17|all
//	        [-scale quick|full] [-baseline-budget 30s]
//
// Quick scale finishes in minutes; full scale uses the paper's Table 3
// router/link counts and can run for hours single-threaded. Baseline
// engines (QARC-style search, Jingubang-style enumeration) are bounded by
// -baseline-budget and report "> budget (timeout)" when exceeded, just as
// the paper reports "> 3600" cells.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/yu-verify/yu/internal/bench"
	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/paperex"
	"github.com/yu-verify/yu/internal/topo"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table3, table4, fig11, fig12, fig13, fig15, fig17, or all")
	scaleFlag := flag.String("scale", "quick", "quick or full")
	budget := flag.Duration("baseline-budget", 60*time.Second, "per-cell time budget for baseline engines")
	flag.Parse()

	var scale bench.Scale
	switch *scaleFlag {
	case "quick":
		scale = bench.Quick
	case "full":
		scale = bench.Full
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleFlag))
	}

	runners := map[string]func() error{
		"table1": func() error {
			bench.Table1(os.Stdout, map[string]*config.Spec{
				"motivating (SR+iBGP)": paperex.MustMotivating(),
			})
			return nil
		},
		"table3": func() error { return bench.Table3(os.Stdout, scale) },
		"table4": func() error { return bench.Table4(os.Stdout, scale, *budget) },
		"fig11":  func() error { return bench.Fig11(os.Stdout, scale, topo.FailLinks, *budget) },
		"fig12":  func() error { return bench.Fig12(os.Stdout, scale) },
		"fig13":  func() error { return bench.Fig13and14(os.Stdout, scale) },
		"fig15":  func() error { return bench.Fig15and16(os.Stdout, scale, *budget) },
		"fig17":  func() error { return bench.Fig11(os.Stdout, scale, topo.FailRouters, *budget) },
	}
	order := []string{"table1", "table3", "fig11", "fig12", "fig13", "fig15", "fig17", "table4"}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("==== %s ====\n", name)
			if err := runners[name](); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	if err := run(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "yubench:", err)
	os.Exit(1)
}
