// Command yubench regenerates the paper's evaluation tables and figures
// (§7) on synthetic stand-in networks.
//
// Usage:
//
//	yubench -exp table3|table4|fig11|fig12|fig13|fig15|fig17|workers|scaling|overhead|kernels|tlp|modular|all
//	        [-scale quick|full] [-baseline-budget 30s]
//	        [-workers 1,2,4,8] [-rounds 3] [-json TAG] [-require-speedup]
//	        [-require-tlp-sharing] [-require-modular-speedup]
//
// Quick scale finishes in minutes; full scale uses the paper's Table 3
// router/link counts and can run for hours single-threaded. Baseline
// engines (QARC-style search, Jingubang-style enumeration) are bounded by
// -baseline-budget and report "> budget (timeout)" when exceeded, just as
// the paper reports "> 3600" cells.
//
// The workers experiment sweeps the parallel pipeline's worker count on
// the medium WAN case; the scaling experiment sweeps workers × k with a
// per-phase breakdown (route simulation / execution / checking), records
// GOMAXPROCS in every row, warm-starts the scheduler's cost model from
// the 1-worker round, and with -require-speedup gates CI on the 4-worker
// exec+check time beating 1 worker by >10% (skipped below 4 cores); the
// kernels experiment compares the fused MTBDD kernels against the
// composed build-then-reduce pipeline on N0; the tlp experiment sweeps
// batch-portfolio sizes {1,100,1000} on the medium WAN and with
// -require-tlp-sharing gates CI on the 1000-property run finishing in
// under twice the 1-property run (the scan-sharing contract); the modular
// experiment compares compositional verification (domain decomposition
// with interface summaries) against the monolithic pipeline on the
// multi-domain wan-1 workload, unbudgeted and under the node budget that
// only the modular pipeline survives, and with -require-modular-speedup
// gates CI on that separation (skipped below 4 cores); -json TAG
// additionally writes the measurements to BENCH_TAG.json for machine
// consumption.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/yu-verify/yu/internal/bench"
	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/paperex"
	"github.com/yu-verify/yu/internal/topo"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table3, table4, fig11, fig12, fig13, fig15, fig17, workers, scaling, overhead, kernels, tlp, modular, or all")
	scaleFlag := flag.String("scale", "quick", "quick or full")
	budget := flag.Duration("baseline-budget", 60*time.Second, "per-cell time budget for baseline engines")
	workersFlag := flag.String("workers", "1,2,4,8", "comma-separated worker counts for the workers experiment")
	rounds := flag.Int("rounds", 3, "best-of rounds for the overhead and kernels experiments")
	jsonTag := flag.String("json", "", "write measurements to BENCH_<TAG>.json")
	requireSpeedup := flag.Bool("require-speedup", false,
		"after the scaling experiment, fail unless 4 workers beat 1 worker by >10% on exec+check (skipped when GOMAXPROCS < 4)")
	requireTLPSharing := flag.Bool("require-tlp-sharing", false,
		"after the tlp experiment, fail unless the largest portfolio finishes in under 2x the smallest's wall time")
	requireModular := flag.Bool("require-modular-speedup", false,
		"after the modular experiment, fail unless the node budget kills the monolithic run while the modular run verifies with smaller per-domain state (skipped when GOMAXPROCS < 4)")
	flag.Parse()

	workersList, err := parseWorkers(*workersFlag)
	if err != nil {
		fatal(err)
	}

	var scale bench.Scale
	switch *scaleFlag {
	case "quick":
		scale = bench.Quick
	case "full":
		scale = bench.Full
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleFlag))
	}

	var records []bench.BenchRecord

	runners := map[string]func() error{
		"workers": func() error {
			rs, err := bench.WorkersSweep(os.Stdout, scale, workersList)
			if err != nil {
				return err
			}
			records = append(records, rs...)
			return nil
		},
		"scaling": func() error {
			rs, err := bench.ScalingSweep(os.Stdout, scale, workersList)
			if err != nil {
				return err
			}
			records = append(records, rs...)
			return nil
		},
		"table1": func() error {
			spec, err := paperex.MotivatingSpec()
			if err != nil {
				return err
			}
			bench.Table1(os.Stdout, map[string]*config.Spec{
				"motivating (SR+iBGP)": spec,
			})
			return nil
		},
		"overhead": func() error {
			rs, err := bench.OverheadSweep(os.Stdout, scale, *rounds)
			if err != nil {
				return err
			}
			records = append(records, rs...)
			return nil
		},
		"kernels": func() error {
			rs, err := bench.KernelsSweep(os.Stdout, scale, *rounds)
			if err != nil {
				return err
			}
			records = append(records, rs...)
			return nil
		},
		"tlp": func() error {
			rs, err := bench.TLPSweep(os.Stdout, scale, []int{1, 100, 1000})
			if err != nil {
				return err
			}
			records = append(records, rs...)
			return nil
		},
		"modular": func() error {
			rs, err := bench.ModularSweep(os.Stdout, scale)
			if err != nil {
				return err
			}
			records = append(records, rs...)
			return nil
		},
		"table3": func() error { return bench.Table3(os.Stdout, scale) },
		"table4": func() error { return bench.Table4(os.Stdout, scale, *budget) },
		"fig11":  func() error { return bench.Fig11(os.Stdout, scale, topo.FailLinks, *budget) },
		"fig12":  func() error { return bench.Fig12(os.Stdout, scale) },
		"fig13":  func() error { return bench.Fig13and14(os.Stdout, scale) },
		"fig15":  func() error { return bench.Fig15and16(os.Stdout, scale, *budget) },
		"fig17":  func() error { return bench.Fig11(os.Stdout, scale, topo.FailRouters, *budget) },
	}
	order := []string{"table1", "table3", "fig11", "fig12", "fig13", "fig15", "fig17", "table4", "workers", "scaling", "overhead", "kernels", "tlp", "modular"}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("==== %s ====\n", name)
			if err := runners[name](); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	} else {
		run, ok := runners[*exp]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q", *exp))
		}
		if err := run(); err != nil {
			fatal(err)
		}
	}

	if *jsonTag != "" {
		path := "BENCH_" + *jsonTag + ".json"
		if err := bench.WriteBenchJSON(path, records); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d records)\n", path, len(records))
	}

	if *requireSpeedup {
		if err := bench.CheckScalingSpeedup(os.Stdout, records); err != nil {
			fatal(err)
		}
	}

	if *requireTLPSharing {
		if err := bench.CheckTLPSharing(os.Stdout, records); err != nil {
			fatal(err)
		}
	}

	if *requireModular {
		if err := bench.CheckModularSpeedup(os.Stdout, records); err != nil {
			fatal(err)
		}
	}
}

// parseWorkers parses "1,2,4,8" into worker counts.
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers value %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-workers is empty")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "yubench:", err)
	os.Exit(1)
}
