// Command yud is the resident verification daemon: it loads a network
// specification once, verifies it, and keeps all derived state warm so
// configuration deltas re-verify incrementally (only the equivalence
// classes a change actually dirtied are re-executed). Results are
// byte-identical to a cold `yu verify -canon` of the same specification.
//
// Usage:
//
//	yud [-addr HOST:PORT] [-k N] [-mode links|routers|both]
//	    [-overload FACTOR] [-state DIR] [-max-inflight N]
//	    [-request-timeout D] [-verify-timeout D] spec.yu
//
// API (JSON unless noted):
//
//	POST /v1/verify   verify current version, or reload {"spec": ...}
//	POST /v1/delta    apply {"deltas": [...]} atomically
//	GET  /v1/report   verification result of the current version
//	GET  /v1/spec     canonical spec text (text/plain)
//	GET  /v1/metrics  metrics snapshot
//	POST /v1/save     persist warm state now
//	GET  /v1/healthz  liveness + current version
//
// With -state DIR the warm STF cache and cost hints are persisted on
// shutdown (and on /v1/save) and restored at startup, so a restarted
// daemon verifies an unchanged specification without re-executing
// anything. -state also arms the delta write-ahead log: every accepted
// delta batch is journaled before it is published, so a crashed daemon
// restarted on the same spec file replays the journal and resumes at
// exactly the pre-crash version (DESIGN.md §15).
//
// The YU_FAULTS environment variable arms deterministic fault injection
// (internal/fault) for crash testing; production runs leave it unset.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/fault"
	"github.com/yu-verify/yu/internal/serve"
)

type daemonConfig struct {
	addr       string
	k          int
	mode       yu.FailureMode
	modeSet    bool
	overload   float64
	state      string
	spec       string
	inflight   int
	reqTimeout time.Duration
	verTimeout time.Duration
}

// parseDaemonFlags parses and validates yud arguments (same validation
// style as `yu verify`: enumerated flags fail at parse time).
func parseDaemonFlags(args []string, eh flag.ErrorHandling) (*daemonConfig, error) {
	cfg := &daemonConfig{}
	fs := flag.NewFlagSet("yud", eh)
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "listen address")
	fs.IntVar(&cfg.k, "k", 0, "failure budget (0 = use the spec's)")
	fs.Func("mode", "failure mode: links, routers, or both (default: spec's)", func(s string) error {
		switch s {
		case "links":
			cfg.mode = yu.FailLinks
		case "routers":
			cfg.mode = yu.FailRouters
		case "both":
			cfg.mode = yu.FailBoth
		default:
			return fmt.Errorf("must be links, routers, or both")
		}
		cfg.modeSet = true
		return nil
	})
	fs.Float64Var(&cfg.overload, "overload", 0, "check all links against FACTOR x capacity")
	fs.StringVar(&cfg.state, "state", "", "directory for persisted warm state and the delta WAL (empty = none)")
	fs.IntVar(&cfg.inflight, "max-inflight", 0, "concurrent request limit, beyond it 503 (0 = default 256)")
	fs.DurationVar(&cfg.reqTimeout, "request-timeout", 0, "per-request deadline before 504 (0 = none)")
	fs.DurationVar(&cfg.verTimeout, "verify-timeout", 0, "per-version verification budget (0 = none)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		err := fmt.Errorf("yud: expected exactly one spec file, got %d arguments", fs.NArg())
		if eh == flag.ExitOnError {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return nil, err
	}
	cfg.spec = fs.Arg(0)
	return cfg, nil
}

// runDaemon loads the spec, serves the API, and blocks until a signal
// arrives on sig; then it drains in-flight requests and persists warm
// state. When ready is non-nil the bound address is sent on it once the
// listener accepts connections (lets tests bind port 0).
func runDaemon(cfg *daemonConfig, stderr io.Writer, ready chan<- string, sig <-chan os.Signal) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "yud:", err)
		return 1
	}
	text, err := os.ReadFile(cfg.spec)
	if err != nil {
		return fail(err)
	}
	if fault.Enabled() {
		fmt.Fprintf(stderr, "yud: fault injection armed: %s\n", fault.Spec())
	}
	s := serve.NewServer(serve.Config{
		K:              cfg.k,
		Mode:           cfg.mode,
		ModeSet:        cfg.modeSet,
		OverloadFactor: cfg.overload,
		StatePath:      cfg.state,
		MaxInFlight:    cfg.inflight,
		RequestTimeout: cfg.reqTimeout,
		VerifyTimeout:  cfg.verTimeout,
	})
	if _, err := s.LoadSpecText(string(text)); err != nil {
		return fail(err)
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return fail(err)
	}
	// No WriteTimeout: verify responses legitimately take minutes on big
	// specs; slow *readers* are bounded by the read and idle limits.
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	go srv.Serve(ln)
	fmt.Fprintf(stderr, "yud: serving %s on http://%s\n", cfg.spec, ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	// Warm up in the background so the first query is already hot; the
	// sync.Once in the version makes this race-free with early queries.
	go func() {
		start := time.Now()
		res, err := s.Report()
		switch {
		case err != nil:
			fmt.Fprintf(stderr, "yud: initial verification: %v\n", err)
		case res.Err != nil:
			fmt.Fprintf(stderr, "yud: initial verification incomplete: %v\n", res.Err)
		default:
			verdict := "VIOLATED"
			if res.Holds {
				verdict = "VERIFIED"
			}
			fmt.Fprintf(stderr, "yud: initial verification: %s in %v (warm hits %d, misses %d)\n",
				verdict, time.Since(start).Round(time.Millisecond),
				res.Stats.CacheHits, res.Stats.CacheMisses)
		}
	}()

	<-sig
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	if err := s.SaveState(); err != nil {
		fmt.Fprintln(stderr, "yud: saving warm state:", err)
		return 1
	}
	return 0
}

func main() {
	cfg, err := parseDaemonFlags(os.Args[1:], flag.ExitOnError)
	if err != nil {
		os.Exit(2) // unreachable with ExitOnError; kept for safety
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(runDaemon(cfg, os.Stderr, nil, sig))
}
