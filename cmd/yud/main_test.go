package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

const testSpec = "../../testdata/motivating.yu"

func TestDaemonFlagValidation(t *testing.T) {
	if _, err := parseDaemonFlags([]string{"-mode", "cables", testSpec}, flag.ContinueOnError); err == nil {
		t.Fatal("bad -mode accepted")
	}
	if _, err := parseDaemonFlags([]string{}, flag.ContinueOnError); err == nil {
		t.Fatal("missing spec argument accepted")
	}
	cfg, err := parseDaemonFlags([]string{
		"-addr", "127.0.0.1:0", "-k", "2", "-mode", "links",
		"-overload", "0.95", "-state", "/tmp/x", testSpec,
	}, flag.ContinueOnError)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.k != 2 || !cfg.modeSet || cfg.overload != 0.95 || cfg.spec != testSpec {
		t.Fatalf("flags not parsed: %+v", cfg)
	}
}

// TestDaemonSmoke drives a full daemon lifecycle: start on an ephemeral
// port, query, apply a delta, re-query, save state, and shut down
// gracefully with exit code 0.
func TestDaemonSmoke(t *testing.T) {
	cfg, err := parseDaemonFlags([]string{"-addr", "127.0.0.1:0", "-state", t.TempDir(), testSpec}, flag.ContinueOnError)
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	ready := make(chan string, 1)
	sig := make(chan os.Signal, 1)
	exited := make(chan int, 1)
	go func() { exited <- runDaemon(cfg, &stderr, ready, sig) }()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not become ready; stderr:\n%s", stderr.String())
	}
	base := "http://" + addr

	get := func(path string) (int, []byte) {
		t.Helper()
		res, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		body, _ := io.ReadAll(res.Body)
		return res.StatusCode, body
	}
	post := func(path, body string) (int, []byte) {
		t.Helper()
		res, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		b, _ := io.ReadAll(res.Body)
		return res.StatusCode, b
	}

	if code, body := get("/v1/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, body)
	}
	code, body := get("/v1/report")
	if code != http.StatusOK {
		t.Fatalf("report: %d %s", code, body)
	}
	var rep1 struct {
		Version int64  `json:"version"`
		Report  string `json:"report"`
	}
	if err := json.Unmarshal(body, &rep1); err != nil {
		t.Fatal(err)
	}
	if rep1.Version != 1 || rep1.Report == "" {
		t.Fatalf("unexpected initial report: %s", body)
	}

	code, body = post("/v1/delta",
		`{"deltas":[{"op":"add-static","router":"B","prefix":"55.0.0.0/8","discard":true}],"verify":true}`)
	if code != http.StatusOK {
		t.Fatalf("delta: %d %s", code, body)
	}
	var rep2 struct {
		Version   int64 `json:"version"`
		CacheHits int64 `json:"cache_hits"`
	}
	if err := json.Unmarshal(body, &rep2); err != nil {
		t.Fatal(err)
	}
	if rep2.Version != 2 {
		t.Fatalf("delta published version %d, want 2", rep2.Version)
	}
	if rep2.CacheHits != 2 {
		t.Fatalf("delta re-verify cache hits = %d, want 2 (all classes warm)", rep2.CacheHits)
	}

	if code, body := post("/v1/delta", `{"deltas":[{"op":"add-static","router":"NOPE","prefix":"1.0.0.0/8","discard":true}]}`); code != http.StatusUnprocessableEntity {
		t.Fatalf("invalid delta: %d %s", code, body)
	}
	if code, body := get("/v1/spec"); code != http.StatusOK || !strings.Contains(string(body), "router A") {
		t.Fatalf("spec: %d %s", code, body)
	}
	if code, body := post("/v1/save", ""); code != http.StatusOK {
		t.Fatalf("save: %d %s", code, body)
	}
	if code, body := get("/v1/metrics"); code != http.StatusOK || !strings.Contains(string(body), "serve.class_cache_hits") {
		t.Fatalf("metrics: %d %s", code, body)
	}

	sig <- os.Interrupt
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("daemon exit code %d; stderr:\n%s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}
