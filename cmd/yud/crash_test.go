// Process-level crash and shutdown tests: a real daemon process killed
// by an injected crash (os.Exit(86), exactly like a kill -9 between two
// instructions) must recover its journaled deltas on restart, and a
// SIGTERM with an in-flight delta must drain it — the batch commits
// fully or not at all, never torn.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/yu-verify/yu/internal/fault"
	"github.com/yu-verify/yu/internal/serve"
)

// TestHelperDaemon is not a test: it is the daemon process body for
// TestDaemonCrashRecovery, entered only when the parent re-executes the
// test binary with YUD_HELPER_STATE set. YU_FAULTS in the child's
// environment arms real (exiting) fault injection.
func TestHelperDaemon(t *testing.T) {
	state := os.Getenv("YUD_HELPER_STATE")
	if state == "" {
		t.Skip("helper process body, driven by TestDaemonCrashRecovery")
	}
	cfg, err := parseDaemonFlags([]string{"-addr", "127.0.0.1:0", "-state", state, testSpec}, flag.ContinueOnError)
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(3)
	}
	ready := make(chan string, 1)
	go func() {
		// The parent scans stdout for the bound address.
		fmt.Printf("HELPER_ADDR %s\n", <-ready)
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(runDaemon(cfg, os.Stderr, ready, sig))
}

// TestDaemonCrashRecovery kills a real daemon process with an injected
// crash after a delta batch is journaled but before it is published
// (exit code 86, the fault handler's signature), then verifies a fresh
// daemon on the same state directory recovers the batch.
func TestDaemonCrashRecovery(t *testing.T) {
	if os.Getenv("YUD_HELPER_STATE") != "" {
		t.Skip("already inside the helper process")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	state := t.TempDir()
	cmd := exec.Command(exe, "-test.run", "^TestHelperDaemon$")
	cmd.Env = append(os.Environ(),
		"YUD_HELPER_STATE="+state,
		"YU_FAULTS=serve.wal.publish:crash@1",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "HELPER_ADDR "); ok {
				addrCh <- a
				return
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never became ready; stderr:\n%s", stderr.String())
	}

	// The injected crash fires between the WAL fsync and the publish: the
	// daemon dies mid-request (the client sees a dropped connection, or in
	// a tight race an error response — never a success it could not keep).
	resp, err := http.Post("http://"+addr+"/v1/delta", "application/json",
		strings.NewReader(`{"deltas":[{"op":"add-static","router":"B","prefix":"55.0.0.0/8","discard":true}]}`))
	if err == nil {
		resp.Body.Close()
	}

	werr := cmd.Wait()
	ee, ok := werr.(*exec.ExitError)
	if !ok {
		t.Fatalf("daemon exited with %v, want exit code %d; stderr:\n%s", werr, fault.CrashExitCode, stderr.String())
	}
	if code := ee.ExitCode(); code != fault.CrashExitCode {
		t.Fatalf("daemon exit code %d, want %d; stderr:\n%s", code, fault.CrashExitCode, stderr.String())
	}

	// Restart on the same state directory: the journaled batch must be
	// recovered even though the dying daemon never published it.
	raw, err := os.ReadFile(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	s := serve.NewServer(serve.Config{StatePath: state})
	if _, err := s.LoadSpecText(string(raw)); err != nil {
		t.Fatal(err)
	}
	text, v := s.SpecText()
	if v != 2 {
		t.Fatalf("recovered version %d, want 2 (base + 1 replayed batch)", v)
	}
	if !strings.Contains(text, "55.0.0.0/8") {
		t.Fatalf("journaled delta lost across the crash:\n%s", text)
	}
}

// TestDaemonGracefulShutdown: a SIGTERM racing an in-flight /v1/delta
// must drain it — the response is a success, and a restart on the same
// state directory shows the batch fully applied. A batch whose journal
// append failed is fully absent. Never a torn state.
func TestDaemonGracefulShutdown(t *testing.T) {
	defer fault.Reset()
	state := t.TempDir()
	cfg, err := parseDaemonFlags([]string{"-addr", "127.0.0.1:0", "-state", state, testSpec}, flag.ContinueOnError)
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	ready := make(chan string, 1)
	sig := make(chan os.Signal, 1)
	exited := make(chan int, 1)
	go func() { exited <- runDaemon(cfg, &stderr, ready, sig) }()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not become ready; stderr:\n%s", stderr.String())
	}
	base := "http://" + addr

	// A batch whose WAL append fails is rejected whole: nothing published,
	// nothing journaled.
	if err := fault.Set("serve.wal.append:error@1"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/delta", "application/json",
		strings.NewReader(`{"deltas":[{"op":"add-static","router":"A","prefix":"44.0.0.0/8","discard":true}]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("journal-failed delta: %d %s", resp.StatusCode, body)
	}

	// Now hold a delta mid-apply while SIGTERM lands: shutdown must drain
	// the request, not tear it.
	if err := fault.Set("serve.delta.apply:delay=400"); err != nil {
		t.Fatal(err)
	}
	deltaDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/delta", "application/json",
			strings.NewReader(`{"deltas":[{"op":"add-static","router":"B","prefix":"55.0.0.0/8","discard":true}]}`))
		if err != nil {
			deltaDone <- -1
			return
		}
		resp.Body.Close()
		deltaDone <- resp.StatusCode
	}()
	time.Sleep(100 * time.Millisecond) // the delta is now inside its injected delay
	sig <- syscall.SIGTERM

	if code := <-deltaDone; code != http.StatusOK {
		t.Fatalf("in-flight delta during shutdown: status %d, want 200", code)
	}
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("daemon exit code %d; stderr:\n%s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	fault.Reset()

	raw, err := os.ReadFile(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	s := serve.NewServer(serve.Config{StatePath: state})
	if _, err := s.LoadSpecText(string(raw)); err != nil {
		t.Fatal(err)
	}
	text, v := s.SpecText()
	if v != 2 {
		t.Fatalf("restarted version %d, want 2 (only the drained batch)", v)
	}
	if !strings.Contains(text, "55.0.0.0/8") {
		t.Fatal("drained batch missing after restart")
	}
	if strings.Contains(text, "44.0.0.0/8") {
		t.Fatal("journal-failed batch resurfaced after restart")
	}
}
