// Command yu verifies traffic load properties of a network specification
// under arbitrary k-failure scenarios.
//
// Usage:
//
//	yu verify [-k N] [-mode links|routers|both] [-overload FACTOR]
//	          [-engine yu|enumerate|spath] [-no-kreduce] [-no-equiv]
//	          [-workers N] [-timeout D] [-max-nodes N]
//	          [-on-budget fail|degrade] [-stats] spec.yu
//	yu show spec.yu
//
// The spec format is documented in the README (routers, links, config
// blocks, flows, properties, failures).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/concrete"
	"github.com/yu-verify/yu/internal/topo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "verify":
		cmdVerify(os.Args[2:])
	case "show":
		cmdShow(os.Args[2:])
	case "dot":
		cmdDot(os.Args[2:])
	case "loads":
		cmdLoads(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: yu <command> [flags] spec.yu
  verify   check traffic load properties under k failures
  show     print the parsed specification
  dot      emit the topology as Graphviz DOT
  loads    simulate one concrete failure scenario and print link loads`)
	os.Exit(2)
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	k := fs.Int("k", 0, "failure budget (0 = use the spec's)")
	mode := fs.String("mode", "", "failure mode: links, routers, or both (default: spec's)")
	overload := fs.Float64("overload", 0, "check all links against FACTOR x capacity")
	engine := fs.String("engine", "yu", "engine: yu, enumerate, or spath")
	noKReduce := fs.Bool("no-kreduce", false, "disable k-failure MTBDD reduction (ablation)")
	noEquiv := fs.Bool("no-equiv", false, "disable flow equivalence reductions (ablation)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "parallel workers for the yu engine (1 = sequential)")
	timeout := fs.Duration("timeout", 0, "abort verification after this duration (0 = none)")
	maxNodes := fs.Int("max-nodes", 0, "live MTBDD node budget (0 = unlimited)")
	onBudget := fs.String("on-budget", "fail", "node-budget policy: fail (typed error) or degrade (concrete fallback)")
	stats := fs.Bool("stats", false, "print per-link statistics")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		usage()
	}
	net, err := yu.LoadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	opts := yu.VerifyOptions{
		K:                     *k,
		OverloadFactor:        *overload,
		DisableKReduce:        *noKReduce,
		DisableLinkLocalEquiv: *noEquiv,
		DisableGlobalEquiv:    *noEquiv,
		Workers:               *workers,
		MaxNodes:              *maxNodes,
	}
	switch *onBudget {
	case "fail":
		opts.OnBudget = yu.BudgetFail
	case "degrade":
		opts.OnBudget = yu.BudgetDegrade
	default:
		fatal(fmt.Errorf("unknown -on-budget policy %q", *onBudget))
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts.Ctx = ctx
	}
	switch *mode {
	case "":
	case "links":
		opts.Mode, opts.ModeSet = yu.FailLinks, true
	case "routers":
		opts.Mode, opts.ModeSet = yu.FailRouters, true
	case "both":
		opts.Mode, opts.ModeSet = yu.FailBoth, true
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	switch *engine {
	case "yu":
		opts.Engine = yu.EngineYU
	case "enumerate":
		opts.Engine = yu.EngineEnumerate
	case "spath":
		opts.Engine = yu.EngineShortestPath
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	rep, err := net.Verify(opts)
	if err != nil && rep == nil {
		fatal(err)
	}
	topoN := net.Topology()
	switch {
	case err != nil:
		// Governance cut the run short: report what was checked before
		// the interruption, then the typed cause.
		fmt.Printf("INCOMPLETE: verification interrupted (%v)\n", rep.Elapsed)
		if len(rep.Violations) > 0 {
			fmt.Printf("  %d violation(s) found before interruption:\n", len(rep.Violations))
			for _, v := range rep.Violations {
				fmt.Println("    " + v.Describe(topoN))
			}
		}
		if n := len(rep.Unchecked) + len(rep.UncheckedDelivered); n > 0 {
			fmt.Printf("  %d propert%s left unchecked\n", n, plural(n, "y", "ies"))
		}
		switch {
		case errors.Is(err, yu.ErrDeadline):
			fmt.Println("  cause: deadline exceeded (-timeout)")
		case errors.Is(err, yu.ErrCanceled):
			fmt.Println("  cause: canceled")
		case errors.Is(err, yu.ErrNodeBudget):
			fmt.Printf("  cause: %v (rerun with a larger -max-nodes or -on-budget=degrade)\n", err)
		default:
			fmt.Printf("  cause: %v\n", err)
		}
	case rep.Holds:
		fmt.Printf("VERIFIED: all properties hold under the failure budget (%v)\n", rep.Elapsed)
	default:
		fmt.Printf("VIOLATED: %d violation(s) found (%v)\n", len(rep.Violations), rep.Elapsed)
		for _, v := range rep.Violations {
			fmt.Println("  " + v.Describe(topoN))
		}
	}
	if n := len(rep.DegradedFlows); n > 0 {
		fmt.Printf("note: %d flow(s) verified by bounded concrete enumeration (node budget)\n", n)
	}
	if *stats {
		fmt.Printf("flows: %d input, %d executed\n", rep.FlowsTotal, rep.FlowsExecuted)
		for _, f := range rep.DegradedFlows {
			fmt.Printf("  degraded to concrete enumeration: %s\n", f)
		}
		if len(rep.Unchecked) > 0 {
			fmt.Printf("unchecked links: %d\n", len(rep.Unchecked))
		}
		if len(rep.UncheckedDelivered) > 0 {
			fmt.Printf("unchecked delivered bounds: %d\n", len(rep.UncheckedDelivered))
		}
		if rep.MTBDDNodes > 0 {
			fmt.Printf("MTBDD nodes: %d\n", rep.MTBDDNodes)
		}
		if rep.Scenarios > 0 {
			fmt.Printf("scenarios simulated: %d\n", rep.Scenarios)
		}
		if len(rep.LinkStats) > 0 {
			sort.Slice(rep.LinkStats, func(i, j int) bool {
				return rep.LinkStats[i].Elapsed > rep.LinkStats[j].Elapsed
			})
			n := len(rep.LinkStats)
			if n > 10 {
				n = 10
			}
			fmt.Println("slowest checks:")
			for _, s := range rep.LinkStats[:n] {
				name := topoN.DirLinkName(s.Link)
				if s.Kind == "delivered" {
					name = "delivered " + s.Prefix.String()
				}
				fmt.Printf("  %-24s flows=%-6d classes=%-5d %v\n",
					name, s.Flows, s.Classes, s.Elapsed)
			}
		}
	}
	if err != nil || !rep.Holds {
		os.Exit(1)
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func cmdShow(args []string) {
	if len(args) != 1 {
		usage()
	}
	net, err := yu.LoadFile(args[0])
	if err != nil {
		fatal(err)
	}
	spec := net.Spec()
	t := spec.Net
	fmt.Printf("routers: %d, links: %d, ASes: %v\n", t.NumRouters(), t.NumLinks(), t.ASes())
	for _, r := range t.Routers {
		fmt.Printf("  %-10s AS %-6d loopback %s\n", r.Name, r.AS, r.Loopback)
	}
	for i := range t.Links {
		l := t.Link(topo.LinkID(i))
		fmt.Printf("  link %-12s cost %d/%d capacity %g\n",
			t.LinkName(l.ID), l.CostAB, l.CostBA, l.Capacity)
	}
	fmt.Printf("flows: %d\n", len(spec.Flows))
	for _, f := range spec.Flows {
		fmt.Printf("  %s enters at %s\n", f, t.Router(f.Ingress).Name)
	}
	fmt.Printf("properties: %d link bounds, %d delivered bounds; failures k=%d mode=%s\n",
		len(spec.Props), len(spec.Delivered), spec.K, spec.Mode)
}

// cmdDot emits the topology as Graphviz DOT, annotating links with cost
// and capacity.
func cmdDot(args []string) {
	if len(args) != 1 {
		usage()
	}
	net, err := yu.LoadFile(args[0])
	if err != nil {
		fatal(err)
	}
	t := net.Topology()
	fmt.Println("graph network {")
	fmt.Println("  layout=neato; overlap=false; splines=true;")
	for _, r := range t.Routers {
		fmt.Printf("  %q [label=\"%s\\nAS %d\"];\n", r.Name, r.Name, r.AS)
	}
	for i := range t.Links {
		l := t.Link(topo.LinkID(i))
		fmt.Printf("  %q -- %q [label=\"%g G\"];\n",
			t.Router(l.A).Name, t.Router(l.B).Name, l.Capacity)
	}
	fmt.Println("}")
}

// cmdLoads simulates a single concrete failure scenario with the
// Jingubang-style simulator and prints nonzero link loads — the tool a
// network operator reaches for when analyzing a witness scenario.
func cmdLoads(args []string) {
	fs := flag.NewFlagSet("loads", flag.ExitOnError)
	fail := fs.String("fail", "", "comma-separated failed links (A-B,C-D) and routers (X)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		usage()
	}
	net, err := yu.LoadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	spec := net.Spec()
	t := spec.Net
	sc := concrete.NewScenario(t)
	if *fail != "" {
		for _, name := range strings.Split(*fail, ",") {
			if i := strings.IndexByte(name, '-'); i >= 0 {
				l, ok := t.FindLink(name[:i], name[i+1:])
				if !ok {
					fatal(fmt.Errorf("no link %q", name))
				}
				sc.LinkDown[l.ID] = true
			} else {
				r, ok := t.RouterByName(name)
				if !ok {
					fatal(fmt.Errorf("no router %q", name))
				}
				sc.RouterDown[r.ID] = true
			}
		}
	}
	sim := concrete.NewSim(t, spec.Configs)
	res := sim.Simulate(sc, spec.Flows)
	type row struct {
		name string
		load float64
		cap  float64
	}
	var rows []row
	for li := range t.Links {
		l := t.Link(topo.LinkID(li))
		for _, d := range []topo.Direction{topo.AtoB, topo.BtoA} {
			dl := topo.MakeDirLinkID(l.ID, d)
			if v := res.Load[dl]; v > 1e-9 {
				rows = append(rows, row{t.DirLinkName(dl), v, l.Capacity})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].load > rows[j].load })
	for _, r := range rows {
		marker := ""
		if r.load > r.cap {
			marker = "  << OVERLOAD"
		}
		fmt.Printf("%-24s %10.3f / %g Gbps%s\n", r.name, r.load, r.cap, marker)
	}
	var delivered, dropped float64
	for fi := range spec.Flows {
		delivered += res.Delivered[fi]
		dropped += res.Dropped[fi]
	}
	fmt.Printf("delivered %.3f Gbps, dropped %.3f Gbps\n", delivered, dropped)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "yu:", err)
	os.Exit(1)
}
