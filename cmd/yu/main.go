// Command yu verifies traffic load properties of a network specification
// under arbitrary k-failure scenarios.
//
// Usage:
//
//	yu verify [-k N] [-mode links|routers|both] [-overload FACTOR]
//	          [-engine yu|enumerate|spath] [-no-kreduce] [-no-equiv]
//	          [-workers N] [-timeout D] [-max-nodes N]
//	          [-on-budget fail|degrade] [-domains spec|NAME:R1,R2;...]
//	          [-auto-domains N] [-stats] [-metrics json|text]
//	          [-cpuprofile FILE] [-memprofile FILE] [-trace FILE] spec.yu
//	yu show spec.yu
//
// The spec format is documented in the README (routers, links, config
// blocks, flows, properties, failures).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strings"
	"time"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/canon"
	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/concrete"
	"github.com/yu-verify/yu/internal/topo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "verify":
		cmdVerify(os.Args[2:])
	case "show":
		cmdShow(os.Args[2:])
	case "dot":
		cmdDot(os.Args[2:])
	case "loads":
		cmdLoads(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: yu <command> [flags] spec.yu
  verify   check traffic load properties under k failures
  show     print the parsed specification
  dot      emit the topology as Graphviz DOT
  loads    simulate one concrete failure scenario and print link loads`)
	os.Exit(2)
}

// verifyConfig is the fully-validated result of parsing `yu verify`
// flags. Enumerated flags (-mode, -engine, -on-budget, -metrics) are
// validated at parse time via flag.Func, so a bad value is a usage
// error (exit 2) before the spec file is even opened.
type verifyConfig struct {
	k          int
	overload   float64
	noKReduce  bool
	noEquiv    bool
	workers    int
	timeout    time.Duration
	maxNodes   int
	stats      bool
	canon      bool
	mode       yu.FailureMode
	modeSet    bool
	engine     yu.Engine
	onBudget   yu.BudgetPolicy
	metrics    string // "", "json", or "text"
	domains    string // "", "spec", or "name:R1,R2;name2:R3,..."
	autoDoms   int
	cpuprofile string
	memprofile string
	traceFile  string
	tlpFile    string
	spec       string
}

// parseVerifyFlags parses and validates `yu verify` arguments. With
// flag.ExitOnError a bad flag value exits 2 inside fs.Parse; with
// flag.ContinueOnError (tests) the error is returned.
func parseVerifyFlags(args []string, eh flag.ErrorHandling) (*verifyConfig, error) {
	cfg := &verifyConfig{
		engine:   yu.EngineYU,
		onBudget: yu.BudgetFail,
	}
	fs := flag.NewFlagSet("verify", eh)
	fs.IntVar(&cfg.k, "k", 0, "failure budget (0 = use the spec's)")
	fs.Func("mode", "failure mode: links, routers, or both (default: spec's)", func(s string) error {
		switch s {
		case "links":
			cfg.mode = yu.FailLinks
		case "routers":
			cfg.mode = yu.FailRouters
		case "both":
			cfg.mode = yu.FailBoth
		default:
			return fmt.Errorf("must be links, routers, or both")
		}
		cfg.modeSet = true
		return nil
	})
	fs.Float64Var(&cfg.overload, "overload", 0, "check all links against FACTOR x capacity")
	fs.Func("engine", "engine: yu, enumerate, or spath (default yu)", func(s string) error {
		switch s {
		case "yu":
			cfg.engine = yu.EngineYU
		case "enumerate":
			cfg.engine = yu.EngineEnumerate
		case "spath":
			cfg.engine = yu.EngineShortestPath
		default:
			return fmt.Errorf("must be yu, enumerate, or spath")
		}
		return nil
	})
	fs.BoolVar(&cfg.noKReduce, "no-kreduce", false, "disable k-failure MTBDD reduction (ablation)")
	fs.BoolVar(&cfg.noEquiv, "no-equiv", false, "disable flow equivalence reductions (ablation)")
	fs.IntVar(&cfg.workers, "workers", runtime.GOMAXPROCS(0), "parallel workers for the yu engine (1 = sequential)")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "abort verification after this duration (0 = none)")
	fs.IntVar(&cfg.maxNodes, "max-nodes", 0, "live MTBDD node budget (0 = unlimited)")
	fs.Func("on-budget", "node-budget policy: fail (typed error) or degrade (concrete fallback) (default fail)", func(s string) error {
		switch s {
		case "fail":
			cfg.onBudget = yu.BudgetFail
		case "degrade":
			cfg.onBudget = yu.BudgetDegrade
		default:
			return fmt.Errorf("must be fail or degrade")
		}
		return nil
	})
	fs.BoolVar(&cfg.stats, "stats", false, "print per-link statistics")
	fs.BoolVar(&cfg.canon, "canon", false, "print the canonical report (byte-comparable across runs and with yud)")
	fs.Func("metrics", "emit run metrics to stderr: json or text", func(s string) error {
		switch s {
		case "json", "text":
			cfg.metrics = s
		default:
			return fmt.Errorf("must be json or text")
		}
		return nil
	})
	fs.StringVar(&cfg.domains, "domains", "", "compositional verification: 'spec' (use the spec's domain lines) or an explicit NAME:R1,R2;NAME2:R3,... partition (yu engine)")
	fs.IntVar(&cfg.autoDoms, "auto-domains", 0, "compositional verification: auto-partition into up to N AS-closed domains (yu engine)")
	fs.StringVar(&cfg.tlpFile, "tlp", "", "evaluate the TLP portfolio FILE with the batch engine instead of the spec's properties")
	fs.StringVar(&cfg.cpuprofile, "cpuprofile", "", "write a CPU profile to FILE")
	fs.StringVar(&cfg.memprofile, "memprofile", "", "write a heap profile to FILE at exit")
	fs.StringVar(&cfg.traceFile, "trace", "", "write a runtime execution trace to FILE")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		err := fmt.Errorf("verify: expected exactly one spec file, got %d arguments", fs.NArg())
		if eh == flag.ExitOnError {
			fmt.Fprintln(os.Stderr, "yu:", err)
			os.Exit(2)
		}
		return nil, err
	}
	cfg.spec = fs.Arg(0)
	return cfg, nil
}

func cmdVerify(args []string) {
	cfg, err := parseVerifyFlags(args, flag.ExitOnError)
	if err != nil {
		os.Exit(2) // unreachable with ExitOnError; kept for safety
	}
	// runVerify owns all defers (profile/trace stop, metrics emission)
	// so they run before the process exits.
	os.Exit(runVerify(cfg, os.Stdout, os.Stderr))
}

// runVerify executes one verification run and returns the process exit
// code. All cleanup — profile and trace stop functions, metrics
// emission — happens via defers inside this function, so callers can
// os.Exit with the returned code safely. Human-readable output goes to
// stdout; metrics, profiles being diagnostics, go to stderr, so
// `2>metrics.json` captures a parseable document.
func runVerify(cfg *verifyConfig, stdout, stderr io.Writer) (code int) {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "yu:", err)
		return 1
	}
	if cfg.cpuprofile != "" {
		f, err := os.Create(cfg.cpuprofile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if cfg.traceFile != "" {
		f, err := os.Create(cfg.traceFile)
		if err != nil {
			return fail(err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}
	if cfg.memprofile != "" {
		defer func() {
			f, err := os.Create(cfg.memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "yu:", err)
				code = 1
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "yu:", err)
				code = 1
			}
		}()
	}

	var reg *yu.Metrics
	if cfg.metrics != "" {
		reg = yu.NewMetrics()
		// Deferred so the snapshot is emitted on every outcome —
		// VERIFIED, VIOLATED, and partial/INCOMPLETE runs alike.
		defer func() {
			snap := reg.Snapshot()
			var err error
			if cfg.metrics == "json" {
				err = snap.WriteJSON(stderr)
			} else {
				err = snap.WriteText(stderr)
			}
			if err != nil {
				fmt.Fprintln(stderr, "yu: writing metrics:", err)
				code = 1
			}
		}()
	}

	parseStart := time.Now()
	net, err := yu.LoadFile(cfg.spec)
	if err != nil {
		return fail(err)
	}
	reg.AddPhase("parse", time.Since(parseStart))

	opts := yu.VerifyOptions{
		K:                     cfg.k,
		OverloadFactor:        cfg.overload,
		DisableKReduce:        cfg.noKReduce,
		DisableLinkLocalEquiv: cfg.noEquiv,
		DisableGlobalEquiv:    cfg.noEquiv,
		Workers:               cfg.workers,
		MaxNodes:              cfg.maxNodes,
		OnBudget:              cfg.onBudget,
		Engine:                cfg.engine,
		Mode:                  cfg.mode,
		ModeSet:               cfg.modeSet,
		Obs:                   reg,
	}
	if cfg.timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
		defer cancel()
		opts.Ctx = ctx
	}
	if cfg.domains != "" || cfg.autoDoms > 0 {
		if cfg.engine != yu.EngineYU {
			return fail(errors.New("-domains/-auto-domains require the yu engine"))
		}
		switch {
		case cfg.domains == "spec":
			if len(net.Spec().Domains) == 0 {
				return fail(errors.New("-domains spec: the spec declares no domain lines"))
			}
			opts.Domains = net.Spec().Domains
		case cfg.domains != "":
			doms, derr := parseDomainsFlag(cfg.domains)
			if derr != nil {
				return fail(fmt.Errorf("-domains: %w", derr))
			}
			opts.Domains = doms
		default:
			opts.AutoDomains = cfg.autoDoms
		}
	}
	if cfg.tlpFile != "" {
		// Portfolio mode: the batch TLP engine evaluates the portfolio
		// file from one symbolic run and prints the canonical report.
		if cfg.engine != yu.EngineYU {
			return fail(errors.New("-tlp requires the yu engine"))
		}
		f, err := os.Open(cfg.tlpFile)
		if err != nil {
			return fail(err)
		}
		props, perr := config.ParsePortfolio(f, net.Topology())
		f.Close()
		if perr != nil {
			return fail(fmt.Errorf("%s: %w", cfg.tlpFile, perr))
		}
		res, err := net.VerifyPortfolio(props, opts)
		if err != nil && res == nil {
			return fail(err)
		}
		io.WriteString(stdout, canon.FormatPortfolio(net.Topology(), res))
		if err != nil {
			fmt.Fprintln(stderr, "yu:", err)
		}
		if err != nil || !res.Holds {
			return 1
		}
		return code
	}
	rep, err := net.Verify(opts)
	if err != nil && rep == nil {
		return fail(err)
	}
	topoN := net.Topology()
	if cfg.canon {
		// Canonical rendering only: the byte-identity surface shared
		// with the daemon's /v1/report (used by the CI cold-diff).
		io.WriteString(stdout, canon.FormatReport(topoN, rep))
		if err != nil || !rep.Holds {
			return 1
		}
		return code
	}
	switch {
	case err != nil:
		// Governance cut the run short: report what was checked before
		// the interruption, then the typed cause.
		fmt.Fprintf(stdout, "INCOMPLETE: verification interrupted (%v)\n", rep.Elapsed)
		if len(rep.Violations) > 0 {
			fmt.Fprintf(stdout, "  %d violation(s) found before interruption:\n", len(rep.Violations))
			for _, v := range rep.Violations {
				fmt.Fprintln(stdout, "    "+v.Describe(topoN))
			}
		}
		if n := len(rep.Unchecked) + len(rep.UncheckedDelivered); n > 0 {
			fmt.Fprintf(stdout, "  %d propert%s left unchecked\n", n, plural(n, "y", "ies"))
		}
		switch {
		case errors.Is(err, yu.ErrDeadline):
			fmt.Fprintln(stdout, "  cause: deadline exceeded (-timeout)")
		case errors.Is(err, yu.ErrCanceled):
			fmt.Fprintln(stdout, "  cause: canceled")
		case errors.Is(err, yu.ErrNodeBudget):
			fmt.Fprintf(stdout, "  cause: %v (rerun with a larger -max-nodes or -on-budget=degrade)\n", err)
		default:
			fmt.Fprintf(stdout, "  cause: %v\n", err)
		}
	case rep.Holds:
		fmt.Fprintf(stdout, "VERIFIED: all properties hold under the failure budget (%v)\n", rep.Elapsed)
	default:
		fmt.Fprintf(stdout, "VIOLATED: %d violation(s) found (%v)\n", len(rep.Violations), rep.Elapsed)
		for _, v := range rep.Violations {
			fmt.Fprintln(stdout, "  "+v.Describe(topoN))
		}
	}
	if n := len(rep.DegradedFlows); n > 0 {
		fmt.Fprintf(stdout, "note: %d flow(s) verified by bounded concrete enumeration (node budget)\n", n)
	}
	if cfg.stats {
		fmt.Fprintf(stdout, "flows: %d input, %d executed\n", rep.FlowsTotal, rep.FlowsExecuted)
		if m := rep.Modular; m != nil {
			fmt.Fprintf(stdout, "modular: %d domains, %d border links, %d rounds (converged=%v)\n",
				m.Domains, m.BorderLinks, m.Rounds, m.Converged)
			fmt.Fprintf(stdout, "  classes: %d contained, %d fallback; domain peak nodes: %d\n",
				m.ContainedClasses, m.FallbackClasses, m.DomainPeakNodes)
		}
		for _, f := range rep.DegradedFlows {
			fmt.Fprintf(stdout, "  degraded to concrete enumeration: %s\n", f)
		}
		if len(rep.Unchecked) > 0 {
			fmt.Fprintf(stdout, "unchecked links: %d\n", len(rep.Unchecked))
		}
		if len(rep.UncheckedDelivered) > 0 {
			fmt.Fprintf(stdout, "unchecked delivered bounds: %d\n", len(rep.UncheckedDelivered))
		}
		if rep.MTBDDNodes > 0 {
			fmt.Fprintf(stdout, "MTBDD nodes: %d\n", rep.MTBDDNodes)
		}
		if rep.Scenarios > 0 {
			fmt.Fprintf(stdout, "scenarios simulated: %d\n", rep.Scenarios)
		}
		if len(rep.LinkStats) > 0 {
			sort.Slice(rep.LinkStats, func(i, j int) bool {
				return rep.LinkStats[i].Elapsed > rep.LinkStats[j].Elapsed
			})
			n := len(rep.LinkStats)
			if n > 10 {
				n = 10
			}
			fmt.Fprintln(stdout, "slowest checks:")
			for _, s := range rep.LinkStats[:n] {
				name := topoN.DirLinkName(s.Link)
				if s.Kind == "delivered" {
					name = "delivered " + s.Prefix.String()
				}
				fmt.Fprintf(stdout, "  %-24s flows=%-6d classes=%-5d %v\n",
					name, s.Flows, s.Classes, s.Elapsed)
			}
		}
	}
	if err != nil || !rep.Holds {
		return 1
	}
	return code
}

// parseDomainsFlag parses the explicit -domains partition syntax:
// semicolon-separated domains, each NAME:R1,R2,... Validation of the
// partition itself (coverage, AS-closure) happens inside Verify.
func parseDomainsFlag(s string) (map[string][]string, error) {
	doms := make(map[string][]string)
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, routers, ok := strings.Cut(part, ":")
		if !ok || name == "" || routers == "" {
			return nil, fmt.Errorf("bad domain %q, want NAME:R1,R2,...", part)
		}
		if _, dup := doms[name]; dup {
			return nil, fmt.Errorf("duplicate domain %q", name)
		}
		var rs []string
		for _, r := range strings.Split(routers, ",") {
			if r = strings.TrimSpace(r); r != "" {
				rs = append(rs, r)
			}
		}
		if len(rs) == 0 {
			return nil, fmt.Errorf("domain %q names no routers", name)
		}
		doms[name] = rs
	}
	if len(doms) == 0 {
		return nil, fmt.Errorf("no domains in %q", s)
	}
	return doms, nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func cmdShow(args []string) {
	if len(args) != 1 {
		usage()
	}
	net, err := yu.LoadFile(args[0])
	if err != nil {
		fatal(err)
	}
	spec := net.Spec()
	t := spec.Net
	fmt.Printf("routers: %d, links: %d, ASes: %v\n", t.NumRouters(), t.NumLinks(), t.ASes())
	for _, r := range t.Routers {
		fmt.Printf("  %-10s AS %-6d loopback %s\n", r.Name, r.AS, r.Loopback)
	}
	for i := range t.Links {
		l := t.Link(topo.LinkID(i))
		fmt.Printf("  link %-12s cost %d/%d capacity %g\n",
			t.LinkName(l.ID), l.CostAB, l.CostBA, l.Capacity)
	}
	fmt.Printf("flows: %d\n", len(spec.Flows))
	for _, f := range spec.Flows {
		fmt.Printf("  %s enters at %s\n", f, t.Router(f.Ingress).Name)
	}
	fmt.Printf("properties: %d link bounds, %d delivered bounds; failures k=%d mode=%s\n",
		len(spec.Props), len(spec.Delivered), spec.K, spec.Mode)
}

// cmdDot emits the topology as Graphviz DOT, annotating links with cost
// and capacity.
func cmdDot(args []string) {
	if len(args) != 1 {
		usage()
	}
	net, err := yu.LoadFile(args[0])
	if err != nil {
		fatal(err)
	}
	t := net.Topology()
	fmt.Println("graph network {")
	fmt.Println("  layout=neato; overlap=false; splines=true;")
	for _, r := range t.Routers {
		fmt.Printf("  %q [label=\"%s\\nAS %d\"];\n", r.Name, r.Name, r.AS)
	}
	for i := range t.Links {
		l := t.Link(topo.LinkID(i))
		fmt.Printf("  %q -- %q [label=\"%g G\"];\n",
			t.Router(l.A).Name, t.Router(l.B).Name, l.Capacity)
	}
	fmt.Println("}")
}

// cmdLoads simulates a single concrete failure scenario with the
// Jingubang-style simulator and prints nonzero link loads — the tool a
// network operator reaches for when analyzing a witness scenario.
func cmdLoads(args []string) {
	fs := flag.NewFlagSet("loads", flag.ExitOnError)
	fail := fs.String("fail", "", "comma-separated failed links (A-B,C-D) and routers (X)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		usage()
	}
	net, err := yu.LoadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	spec := net.Spec()
	t := spec.Net
	sc := concrete.NewScenario(t)
	if *fail != "" {
		for _, name := range strings.Split(*fail, ",") {
			if i := strings.IndexByte(name, '-'); i >= 0 {
				l, ok := t.FindLink(name[:i], name[i+1:])
				if !ok {
					fatal(fmt.Errorf("no link %q", name))
				}
				sc.LinkDown[l.ID] = true
			} else {
				r, ok := t.RouterByName(name)
				if !ok {
					fatal(fmt.Errorf("no router %q", name))
				}
				sc.RouterDown[r.ID] = true
			}
		}
	}
	sim := concrete.NewSim(t, spec.Configs)
	res := sim.Simulate(sc, spec.Flows)
	type row struct {
		name string
		load float64
		cap  float64
	}
	var rows []row
	for li := range t.Links {
		l := t.Link(topo.LinkID(li))
		for _, d := range []topo.Direction{topo.AtoB, topo.BtoA} {
			dl := topo.MakeDirLinkID(l.ID, d)
			if v := res.Load[dl]; v > 1e-9 {
				rows = append(rows, row{t.DirLinkName(dl), v, l.Capacity})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].load > rows[j].load })
	for _, r := range rows {
		marker := ""
		if r.load > r.cap {
			marker = "  << OVERLOAD"
		}
		fmt.Printf("%-24s %10.3f / %g Gbps%s\n", r.name, r.load, r.cap, marker)
	}
	var delivered, dropped float64
	for fi := range spec.Flows {
		delivered += res.Delivered[fi]
		dropped += res.Dropped[fi]
	}
	fmt.Printf("delivered %.3f Gbps, dropped %.3f Gbps\n", delivered, dropped)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "yu:", err)
	os.Exit(1)
}
