package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/yu-verify/yu"
)

const testSpec = "../../testdata/motivating.yu"

// TestVerifyFlagRejectsUnknownValues pins the parse-time validation of
// every enumerated flag: a bad value must be a usage error from
// fs.Parse itself (exit 2 under ExitOnError), not a late fatal() after
// the spec file has already been loaded.
func TestVerifyFlagRejectsUnknownValues(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"on-budget", []string{"-on-budget", "explode", testSpec}},
		{"metrics", []string{"-metrics", "xml", testSpec}},
		{"mode", []string{"-mode", "cables", testSpec}},
		{"engine", []string{"-engine", "warp", testSpec}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parseVerifyFlags(tc.args, flag.ContinueOnError); err == nil {
				t.Fatalf("parseVerifyFlags(%v) accepted a bad -%s value", tc.args, tc.name)
			}
		})
	}
}

func TestVerifyFlagAcceptsKnownValues(t *testing.T) {
	cfg, err := parseVerifyFlags([]string{
		"-k", "2", "-mode", "routers", "-engine", "enumerate",
		"-on-budget", "degrade", "-metrics", "json",
		"-overload", "0.9", "-workers", "3", "-timeout", "5s",
		"-max-nodes", "1000", "-stats",
		"-cpuprofile", "cpu.out", "-memprofile", "mem.out", "-trace", "trace.out",
		testSpec,
	}, flag.ContinueOnError)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.k != 2 || !cfg.modeSet || cfg.mode != yu.FailRouters {
		t.Errorf("k/mode not parsed: %+v", cfg)
	}
	if cfg.engine != yu.EngineEnumerate || cfg.onBudget != yu.BudgetDegrade {
		t.Errorf("engine/on-budget not parsed: %+v", cfg)
	}
	if cfg.metrics != "json" || cfg.overload != 0.9 || cfg.workers != 3 {
		t.Errorf("metrics/overload/workers not parsed: %+v", cfg)
	}
	if cfg.timeout != 5*time.Second || cfg.maxNodes != 1000 || !cfg.stats {
		t.Errorf("timeout/max-nodes/stats not parsed: %+v", cfg)
	}
	if cfg.cpuprofile != "cpu.out" || cfg.memprofile != "mem.out" || cfg.traceFile != "trace.out" {
		t.Errorf("profile flags not parsed: %+v", cfg)
	}
	if cfg.spec != testSpec {
		t.Errorf("spec = %q, want %q", cfg.spec, testSpec)
	}
}

func TestVerifyFlagDefaults(t *testing.T) {
	cfg, err := parseVerifyFlags([]string{testSpec}, flag.ContinueOnError)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.engine != yu.EngineYU || cfg.onBudget != yu.BudgetFail {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if cfg.metrics != "" || cfg.modeSet {
		t.Errorf("metrics/mode should default off: %+v", cfg)
	}
}

func TestVerifyRequiresSpecArg(t *testing.T) {
	if _, err := parseVerifyFlags(nil, flag.ContinueOnError); err == nil {
		t.Fatal("parseVerifyFlags with no spec argument should fail")
	}
	if _, err := parseVerifyFlags([]string{"a.yu", "b.yu"}, flag.ContinueOnError); err == nil {
		t.Fatal("parseVerifyFlags with two spec arguments should fail")
	}
}

// metricsDoc mirrors the obs.Snapshot JSON schema as far as the CLI
// contract promises it: per-phase durations and per-cache hit/miss for
// all five MTBDD caches.
type metricsDoc struct {
	Phases []struct {
		Path string  `json:"path"`
		MS   float64 `json:"ms"`
	} `json:"phases"`
	Caches map[string]struct {
		Hits   uint64 `json:"hits"`
		Misses uint64 `json:"misses"`
	} `json:"caches"`
	Managers []struct {
		Name string `json:"name"`
	} `json:"managers"`
}

func TestRunVerifyMetricsJSON(t *testing.T) {
	dir := t.TempDir()
	cfg, err := parseVerifyFlags([]string{
		"-metrics", "json",
		"-cpuprofile", filepath.Join(dir, "cpu.pprof"),
		"-memprofile", filepath.Join(dir, "mem.pprof"),
		"-trace", filepath.Join(dir, "trace.out"),
		testSpec,
	}, flag.ContinueOnError)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := runVerify(cfg, &stdout, &stderr); code != 0 {
		t.Fatalf("runVerify = %d, stdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if !bytes.Contains(stdout.Bytes(), []byte("VERIFIED")) {
		t.Errorf("stdout missing verdict:\n%s", &stdout)
	}

	// stderr must be exactly one parseable JSON document.
	var doc metricsDoc
	if err := json.Unmarshal(stderr.Bytes(), &doc); err != nil {
		t.Fatalf("metrics stderr is not valid JSON: %v\n%s", err, &stderr)
	}
	phases := map[string]bool{}
	for _, p := range doc.Phases {
		phases[p.Path] = true
	}
	for _, want := range []string{"parse", "routesim", "execute", "check"} {
		if !phases[want] {
			t.Errorf("metrics missing phase %q (got %v)", want, doc.Phases)
		}
	}
	for _, c := range []string{"apply", "kreduce", "neg", "range", "import"} {
		if _, ok := doc.Caches[c]; !ok {
			t.Errorf("metrics missing cache %q (got %v)", c, doc.Caches)
		}
	}
	if len(doc.Managers) == 0 {
		t.Error("metrics has no manager stats")
	}

	// The profiling flags must have produced real files.
	for _, f := range []string{"cpu.pprof", "mem.pprof", "trace.out"} {
		st, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Errorf("profile %s: %v", f, err)
		} else if st.Size() == 0 {
			t.Errorf("profile %s is empty", f)
		}
	}
}

func TestRunVerifyMetricsText(t *testing.T) {
	cfg, err := parseVerifyFlags([]string{"-metrics", "text", testSpec}, flag.ContinueOnError)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := runVerify(cfg, &stdout, &stderr); code != 0 {
		t.Fatalf("runVerify = %d, stderr:\n%s", code, &stderr)
	}
	for _, want := range []string{"phases", "caches", "kreduce"} {
		if !bytes.Contains(stderr.Bytes(), []byte(want)) {
			t.Errorf("text metrics missing %q:\n%s", want, &stderr)
		}
	}
}

// TestRunVerifyMetricsOnIncomplete pins the ISSUE contract that metrics
// are emitted on partial/INCOMPLETE runs too: an already-expired
// timeout still produces a parseable metrics document alongside the
// INCOMPLETE verdict.
func TestRunVerifyMetricsOnIncomplete(t *testing.T) {
	cfg, err := parseVerifyFlags([]string{
		"-metrics", "json", "-timeout", "1ns", testSpec,
	}, flag.ContinueOnError)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := runVerify(cfg, &stdout, &stderr); code != 1 {
		t.Fatalf("runVerify = %d, want 1 (interrupted)\nstdout:\n%s", code, &stdout)
	}
	if !bytes.Contains(stdout.Bytes(), []byte("INCOMPLETE")) {
		t.Errorf("stdout missing INCOMPLETE verdict:\n%s", &stdout)
	}
	var doc metricsDoc
	if err := json.Unmarshal(stderr.Bytes(), &doc); err != nil {
		t.Fatalf("metrics on INCOMPLETE run is not valid JSON: %v\n%s", err, &stderr)
	}
	for _, c := range []string{"apply", "kreduce", "neg", "range", "import"} {
		if _, ok := doc.Caches[c]; !ok {
			t.Errorf("INCOMPLETE metrics missing cache %q", c)
		}
	}
}

func TestRunVerifyBadSpec(t *testing.T) {
	cfg, err := parseVerifyFlags([]string{
		filepath.Join(t.TempDir(), "missing.yu"),
	}, flag.ContinueOnError)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := runVerify(cfg, &stdout, &stderr); code != 1 {
		t.Fatalf("runVerify on missing spec = %d, want 1", code)
	}
}
