package yu

import (
	"strings"
	"testing"
	"time"

	"github.com/yu-verify/yu/internal/flowgen"
	"github.com/yu-verify/yu/internal/gen"
	"github.com/yu-verify/yu/internal/paperex"
)

func loadMotivating(t testing.TB) *Network {
	t.Helper()
	n, err := LoadString(paperex.Motivating)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestLoadAndVerifyMotivating(t *testing.T) {
	n := loadMotivating(t)
	if n.Topology().NumRouters() != 6 {
		t.Fatalf("routers = %d", n.Topology().NumRouters())
	}
	rep, err := n.Verify(VerifyOptions{OverloadFactor: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Fatal("P2 must be violated under 1-link failures")
	}
	if rep.MTBDDNodes == 0 || rep.Elapsed == 0 {
		t.Error("stats missing")
	}
	for _, v := range rep.Violations {
		s := v.Describe(n.Topology())
		if !strings.Contains(s, "Gbps") {
			t.Errorf("Describe = %q", s)
		}
	}
}

func TestEnginesAgreeOnMotivating(t *testing.T) {
	n := loadMotivating(t)
	yuRep, err := n.Verify(VerifyOptions{K: 1, OverloadFactor: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	enumRep, err := n.Verify(VerifyOptions{K: 1, OverloadFactor: 0.95, Engine: EngineEnumerate})
	if err != nil {
		t.Fatal(err)
	}
	if yuRep.Holds != enumRep.Holds {
		t.Fatalf("YU holds=%v, enumeration holds=%v", yuRep.Holds, enumRep.Holds)
	}
	// Both must flag the same set of overloadable directed links.
	linksOf := func(rep *Report) map[string]bool {
		out := make(map[string]bool)
		for _, v := range rep.Violations {
			if v.Kind == "link-load" {
				out[n.Topology().DirLinkName(v.Link)] = true
			}
		}
		return out
	}
	yuLinks, enLinks := linksOf(yuRep), linksOf(enumRep)
	if len(yuLinks) != len(enLinks) {
		t.Fatalf("flagged links differ: YU=%v enum=%v", yuLinks, enLinks)
	}
	for l := range yuLinks {
		if !enLinks[l] {
			t.Errorf("link %s flagged by YU only", l)
		}
	}
	if enumRep.Scenarios == 0 {
		t.Error("enumeration must count scenarios")
	}
}

func TestAblationsStillCorrect(t *testing.T) {
	n := loadMotivating(t)
	base, err := n.Verify(VerifyOptions{K: 1, OverloadFactor: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []VerifyOptions{
		{K: 1, OverloadFactor: 0.95, DisableKReduce: true},
		{K: 1, OverloadFactor: 0.95, DisableLinkLocalEquiv: true},
		{K: 1, OverloadFactor: 0.95, DisableGlobalEquiv: true},
	} {
		rep, err := n.Verify(opts)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Holds != base.Holds || len(rep.Violations) != len(base.Violations) {
			t.Errorf("ablation %+v changed the verdict: %d vs %d violations",
				opts, len(rep.Violations), len(base.Violations))
		}
		for _, v := range rep.Violations {
			if len(v.FailedLinks)+len(v.FailedRouters) > 1 {
				t.Errorf("ablation %+v produced a witness beyond k=1", opts)
			}
		}
	}
}

func TestShortestPathEngineOnFatTree(t *testing.T) {
	spec, err := gen.FatTree(gen.FatTreeSpec{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Pairwise(spec, 6, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := FromSpec(spec)
	spRep, err := n.Verify(VerifyOptions{K: 1, OverloadFactor: 1.0, Flows: flows, Engine: EngineShortestPath})
	if err != nil {
		t.Fatal(err)
	}
	yuRep, err := n.Verify(VerifyOptions{K: 1, OverloadFactor: 1.0, Flows: flows})
	if err != nil {
		t.Fatal(err)
	}
	// On a pure-eBGP FatTree the QARC model is faithful, so verdicts
	// must agree.
	if spRep.Holds != yuRep.Holds {
		t.Errorf("QARC-style holds=%v, YU holds=%v", spRep.Holds, yuRep.Holds)
	}
}

func TestRouterFailureMode(t *testing.T) {
	n := loadMotivating(t)
	rep, err := n.Verify(VerifyOptions{K: 1, Mode: FailRouters, ModeSet: true, OverloadFactor: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	// Failing router D forces all of f2 through C: C-E overloads.
	found := false
	for _, v := range rep.Violations {
		for _, r := range v.FailedRouters {
			if n.Topology().Router(r).Name == "D" {
				found = true
			}
		}
		if len(v.FailedLinks) != 0 {
			t.Error("link failures must not appear in router mode")
		}
	}
	if !found {
		t.Error("expected a router-D violation")
	}
}

func TestVerifySpecProperties(t *testing.T) {
	// The spec's own P1 (delivered >= 70) holds at k=1.
	n := loadMotivating(t)
	rep, err := n.Verify(VerifyOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("P1 must hold at k=1: %+v", rep.Violations)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadString("bogus"); err == nil {
		t.Error("bad spec must fail")
	}
	if _, err := LoadFile("/nonexistent/x.yu"); err == nil {
		t.Error("missing file must fail")
	}
}

// TestPerformanceSmoke keeps the paper-scale configurations within a
// sane wall-clock envelope so regressions surface in CI.
func TestPerformanceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec, err := gen.FatTree(gen.FatTreeSpec{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Pairwise(spec, 5, 21.0/56.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := FromSpec(spec).Verify(VerifyOptions{K: 2, OverloadFactor: 1.0, Flows: flows})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("FT-4 k=2 %d flows: %v (%d MTBDD nodes, %d violations)",
		len(flows), rep.Elapsed, rep.MTBDDNodes, len(rep.Violations))
	if time.Since(start) > 2*time.Minute {
		t.Errorf("FT-4 k=2 took %v, expected well under 2m", time.Since(start))
	}
}

func TestBothFailureMode(t *testing.T) {
	n := loadMotivating(t)
	rep, err := n.Verify(VerifyOptions{K: 1, Mode: FailBoth, ModeSet: true, OverloadFactor: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	// Both link and router witnesses must be representable; at k=1 the
	// link-failure violations of P2 must still be found.
	if rep.Holds {
		t.Fatal("P2 must be violated in both-mode too")
	}
	sawLink, sawRouter := false, false
	for _, v := range rep.Violations {
		if len(v.FailedLinks)+len(v.FailedRouters) > 1 {
			t.Errorf("witness exceeds k=1: %+v", v)
		}
		if len(v.FailedLinks) == 1 {
			sawLink = true
		}
		if len(v.FailedRouters) == 1 {
			sawRouter = true
		}
	}
	if !sawLink && !sawRouter {
		t.Error("expected at least one nonempty witness")
	}
}

// TestVerifyWorkersMatchesSequential drives the parallel pipeline through
// the public API: identical violations and stats at any worker count.
func TestVerifyWorkersMatchesSequential(t *testing.T) {
	spec, err := gen.WAN(gen.WANSpec{Routers: 30, Links: 60, Prefixes: 8, SRPolicyFraction: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Random(spec, flowgen.RandomSpec{
		Count: 300, DSCP5Fraction: 0.3, DistinctDstPerPrefix: 2, Seed: 107,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := FromSpec(spec)
	seq, err := n.Verify(VerifyOptions{K: 1, OverloadFactor: 0.6, Flows: flows})
	if err != nil {
		t.Fatal(err)
	}
	par, err := n.Verify(VerifyOptions{K: 1, OverloadFactor: 0.6, Flows: flows, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Holds != par.Holds || len(seq.Violations) != len(par.Violations) {
		t.Fatalf("sequential holds=%v/%d violations, workers=4 holds=%v/%d",
			seq.Holds, len(seq.Violations), par.Holds, len(par.Violations))
	}
	for i := range seq.Violations {
		a, b := seq.Violations[i], par.Violations[i]
		if a.Kind != b.Kind || a.Link != b.Link || a.Value != b.Value {
			t.Fatalf("violation %d differs: %+v vs %+v", i, a, b)
		}
	}
	if seq.FlowsExecuted != par.FlowsExecuted || len(seq.LinkStats) != len(par.LinkStats) {
		t.Fatalf("stats differ: executed %d vs %d, link stats %d vs %d",
			seq.FlowsExecuted, par.FlowsExecuted, len(seq.LinkStats), len(par.LinkStats))
	}
}
