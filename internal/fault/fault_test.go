package fault

import (
	"errors"
	"testing"
	"time"
)

// Tests share the package-global registry; none may run in parallel.

func TestDisarmedIsFree(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("enabled with no rules")
	}
	if err := Here("nope"); err != nil {
		t.Fatal(err)
	}
	if n, ok := Partial("nope"); ok || n != 0 {
		t.Fatalf("partial fired disarmed: %d %v", n, ok)
	}
}

func TestErrorAtNthCrossing(t *testing.T) {
	defer Reset()
	if err := Set("p.x:error@3"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		err := Here("p.x")
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("crossing 3: err = %v", err)
			}
		} else if err != nil {
			t.Fatalf("crossing %d: unexpected %v", i, err)
		}
	}
}

func TestPanicAndOtherPointsUnaffected(t *testing.T) {
	defer Reset()
	if err := Set("p.y:panic"); err != nil {
		t.Fatal(err)
	}
	if err := Here("p.other"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Here("p.y")
}

func TestDelayEveryCrossing(t *testing.T) {
	defer Reset()
	if err := Set("p.d:delay=10"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 2; i++ {
		if err := Here("p.d"); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("two delayed crossings took only %v", elapsed)
	}
}

func TestCrashHandlerAndReset(t *testing.T) {
	defer Reset()
	defer SetCrashHandler(nil)
	PanicOnCrash()
	if err := Set("p.c:crash@2"); err != nil {
		t.Fatal(err)
	}
	if err := Here("p.c"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			c, ok := recover().(Crash)
			if !ok || c.Point != "p.c" {
				t.Fatalf("recover = %#v", c)
			}
		}()
		Here("p.c")
	}()
	// Reset disarms rules but keeps the panicking handler installed.
	Reset()
	if Enabled() {
		t.Fatal("enabled after Reset")
	}
	if err := Here("p.c"); err != nil {
		t.Fatal(err)
	}
}

func TestPartial(t *testing.T) {
	defer Reset()
	if err := Set("p.w:partial=7@2"); err != nil {
		t.Fatal(err)
	}
	if _, ok := Partial("p.w"); ok {
		t.Fatal("partial fired on first crossing with @2")
	}
	n, ok := Partial("p.w")
	if !ok || n != 7 {
		t.Fatalf("partial = %d, %v", n, ok)
	}
	if _, ok := Partial("p.w"); ok {
		t.Fatal("one-shot partial fired twice")
	}
	// Here on a partial-only point never fires the rule.
	if err := Here("p.w"); err != nil {
		t.Fatal(err)
	}
}

func TestTrace(t *testing.T) {
	defer Reset()
	StartTrace()
	Here("a")
	Here("b")
	Partial("w")
	Here("a")
	got := StopTrace()
	want := []string{"a", "b", "w", "a"}
	if len(got) != len(want) {
		t.Fatalf("trace = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace = %v, want %v", got, want)
		}
	}
	if Enabled() {
		t.Fatal("still enabled after StopTrace with no rules")
	}
}

func TestParseErrors(t *testing.T) {
	defer Reset()
	for _, bad := range []string{"nocolon", "p:", ":error", "p:boom", "p:error@0", "p:error@x", "p:delay=-1"} {
		if err := Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
	// A failed Set must not leave stale rules armed.
	if err := Set("p.ok:error"); err != nil {
		t.Fatal(err)
	}
	if err := Set("broken"); err == nil {
		t.Fatal("bad spec accepted")
	}
	if !errors.Is(Here("p.ok"), ErrInjected) {
		t.Fatal("valid rule from before failed Set should still be armed")
	}
}
