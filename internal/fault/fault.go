// Package fault is a deterministic fault-injection registry for crash
// and robustness testing (DESIGN.md §15). Production code marks
// interesting places with named injection points:
//
//	if err := fault.Here("serve.wal.append"); err != nil { ... }
//
// With no faults armed, a point is a single atomic load — effectively a
// no-op, safe to leave in hot-ish paths. Faults are armed either through
// the YU_FAULTS environment variable (read once at init) or through the
// test API (Set / Reset), with a schedule like:
//
//	YU_FAULTS="serve.wal.publish:crash@2,serve.verify.run:delay=50"
//
// Each comma-separated rule is point:kind[=arg][@n]:
//
//	error        Here returns an error wrapping ErrInjected
//	panic        Here panics
//	delay=MS     Here sleeps MS milliseconds (default: every crossing)
//	crash        the crash handler runs — os.Exit(86) in a real daemon,
//	             or a panic(Crash{...}) under PanicOnCrash in tests
//	partial=N    Partial reports N — callers truncate a write to N bytes
//	             and fail it, simulating a torn write
//
// @n arms the rule on the nth crossing of the point (1-based). It
// defaults to 1 for one-shot kinds (error, panic, crash, partial) and to
// "every crossing" for delay. The special rule "trace" records every
// crossing (see StartTrace) — the chaos oracle uses a traced run to
// enumerate the schedule of injection points a workload actually crosses,
// then replays the workload crashing at each one.
//
// Determinism: rules fire on exact crossing counts of a deterministic
// workload, never on timers or randomness, so a failing schedule replays
// exactly.
package fault

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected error, so
// callers and tests can errors.Is-classify failures as synthetic.
var ErrInjected = errors.New("fault injected")

// Crash is the panic value raised by PanicOnCrash crash handlers. Tests
// recover it to simulate a process kill in-process; genuine bug panics
// are never of this type.
type Crash struct{ Point string }

func (c Crash) String() string { return "fault: crash at " + c.Point }

type kind int

const (
	kindError kind = iota
	kindPanic
	kindDelay
	kindCrash
	kindPartial
)

type rule struct {
	k     kind
	arg   int // delay milliseconds, or partial byte count
	n     int // fire on the nth crossing (1-based); 0 = every crossing
	hits  int
	fired bool
}

var (
	active atomic.Bool // fast path: any rules armed or tracing on

	mu      sync.Mutex
	rules   map[string][]*rule
	tracing bool
	trace   []string
	specStr string
	crashFn func(point string) = defaultCrash
)

// CrashExitCode is the exit status of the default crash handler, chosen
// to be distinguishable from every normal daemon exit.
const CrashExitCode = 86

func defaultCrash(point string) {
	fmt.Fprintf(os.Stderr, "fault: injected crash at %s\n", point)
	os.Exit(CrashExitCode)
}

func init() {
	if spec := os.Getenv("YU_FAULTS"); spec != "" {
		if err := Set(spec); err != nil {
			fmt.Fprintf(os.Stderr, "fault: invalid YU_FAULTS %q: %v (ignored)\n", spec, err)
		}
	}
}

// Enabled reports whether any fault rule or trace is armed. Injection
// points are free (one atomic load) when it is false.
func Enabled() bool { return active.Load() }

// Spec returns the rule specification most recently accepted by Set
// ("" after Reset) — for startup logging.
func Spec() string {
	mu.Lock()
	defer mu.Unlock()
	return specStr
}

// Set replaces all armed rules with the parsed specification (see the
// package comment for the grammar). The crash handler is preserved.
func Set(spec string) error {
	parsed := make(map[string][]*rule)
	traceOn := false
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if part == "trace" {
			traceOn = true
			continue
		}
		point, r, err := parseRule(part)
		if err != nil {
			return err
		}
		parsed[point] = append(parsed[point], r)
	}
	mu.Lock()
	rules = parsed
	tracing = traceOn
	trace = nil
	specStr = spec
	active.Store(len(rules) > 0 || tracing)
	mu.Unlock()
	return nil
}

func parseRule(part string) (string, *rule, error) {
	n := -1 // unset
	if at := strings.LastIndex(part, "@"); at >= 0 {
		v, err := strconv.Atoi(part[at+1:])
		if err != nil || v < 1 {
			return "", nil, fmt.Errorf("fault: bad crossing count in %q", part)
		}
		n = v
		part = part[:at]
	}
	colon := strings.LastIndex(part, ":")
	if colon <= 0 || colon == len(part)-1 {
		return "", nil, fmt.Errorf("fault: rule %q is not point:kind", part)
	}
	point, kindSpec := part[:colon], part[colon+1:]
	arg := 0
	if eq := strings.Index(kindSpec, "="); eq >= 0 {
		v, err := strconv.Atoi(kindSpec[eq+1:])
		if err != nil || v < 0 {
			return "", nil, fmt.Errorf("fault: bad argument in %q", part)
		}
		arg = v
		kindSpec = kindSpec[:eq]
	}
	r := &rule{arg: arg, n: n}
	switch kindSpec {
	case "error":
		r.k = kindError
	case "panic":
		r.k = kindPanic
	case "delay":
		r.k = kindDelay
		if r.n == -1 {
			r.n = 0 // delays default to every crossing
		}
	case "crash":
		r.k = kindCrash
	case "partial":
		r.k = kindPartial
	default:
		return "", nil, fmt.Errorf("fault: unknown kind %q in %q", kindSpec, part)
	}
	if r.n == -1 {
		r.n = 1 // one-shot kinds default to the first crossing
	}
	return point, r, nil
}

// Reset disarms every rule and trace. The crash handler is preserved
// (use SetCrashHandler(nil) to restore the exiting default), so a test
// that installed PanicOnCrash cannot accidentally re-enable os.Exit.
func Reset() {
	mu.Lock()
	rules = nil
	tracing = false
	trace = nil
	specStr = ""
	active.Store(false)
	mu.Unlock()
}

// SetCrashHandler overrides what a crash rule does (nil restores the
// default, which exits the process with CrashExitCode).
func SetCrashHandler(fn func(point string)) {
	mu.Lock()
	if fn == nil {
		fn = defaultCrash
	}
	crashFn = fn
	mu.Unlock()
}

// PanicOnCrash makes crash rules panic with a Crash value instead of
// exiting, so tests can simulate a kill and "restart" in-process.
func PanicOnCrash() {
	SetCrashHandler(func(point string) { panic(Crash{Point: point}) })
}

// StartTrace begins recording every crossed injection point (in order,
// with repeats). Tracing composes with armed rules.
func StartTrace() {
	mu.Lock()
	tracing = true
	trace = nil
	active.Store(true)
	mu.Unlock()
}

// StopTrace ends recording and returns the crossings observed since
// StartTrace.
func StopTrace() []string {
	mu.Lock()
	out := trace
	tracing = false
	trace = nil
	active.Store(len(rules) > 0)
	mu.Unlock()
	return out
}

// Here is an injection point. It returns nil (after an optional injected
// delay), returns an injected error, panics, or crashes, according to
// the armed rules for the point. With nothing armed it costs one atomic
// load.
func Here(point string) error {
	if !active.Load() {
		return nil
	}
	return slow(point)
}

func slow(point string) error {
	mu.Lock()
	if tracing {
		trace = append(trace, point)
	}
	var fire *rule
	for _, r := range rules[point] {
		if r.k == kindPartial {
			continue // partial rules fire through Partial
		}
		r.hits++
	}
	for _, r := range rules[point] {
		if r.k == kindPartial || (r.fired && r.n != 0) {
			continue
		}
		if r.n == 0 || r.hits == r.n {
			fire = r
			r.fired = true
			break
		}
	}
	fn := crashFn
	mu.Unlock()
	if fire == nil {
		return nil
	}
	switch fire.k {
	case kindError:
		return fmt.Errorf("%w at %s", ErrInjected, point)
	case kindPanic:
		panic(fmt.Sprintf("fault: injected panic at %s", point))
	case kindDelay:
		time.Sleep(time.Duration(fire.arg) * time.Millisecond)
	case kindCrash:
		fn(point)
		panic(fmt.Sprintf("fault: crash handler returned at %s", point))
	}
	return nil
}

// TriggerCrash invokes the crash handler unconditionally. Callers use it
// after acting on a Partial verdict: a torn frame is only observable if
// the process died mid-write, so writing one implies crashing.
func TriggerCrash(point string) {
	mu.Lock()
	fn := crashFn
	mu.Unlock()
	fn(point)
	panic("fault: crash handler returned at " + point)
}

// Partial is the injection point for torn writes. When a partial rule
// fires it returns (N, true): the caller should write only the first N
// bytes of its buffer and fail the operation with an ErrInjected-wrapped
// error, leaving a torn frame behind — exactly what a crash mid-write
// leaves on disk.
func Partial(point string) (int, bool) {
	if !active.Load() {
		return 0, false
	}
	mu.Lock()
	defer mu.Unlock()
	if tracing {
		trace = append(trace, point)
	}
	for _, r := range rules[point] {
		if r.k != kindPartial {
			continue
		}
		r.hits++
		if r.fired && r.n != 0 {
			continue
		}
		if r.n == 0 || r.hits == r.n {
			r.fired = true
			return r.arg, true
		}
	}
	return 0, false
}
