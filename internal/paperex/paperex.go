// Package paperex contains ready-made network specifications reproducing
// the paper's worked examples: the motivating example of Figure 1, the SR
// anycast use case of Figure 9, and the misconfiguration use case of
// Figure 10. They serve as integration-test fixtures and as the input of
// the runnable examples.
package paperex

import "github.com/yu-verify/yu/internal/config"

// Motivating is the Figure 1 network: routers A (AS 100), B (AS 200), and
// C,D,E,F (AS 300, iBGP over IS-IS), destination 100.0.0.0/24 attached to
// F, an SR policy on D steering DSCP-5 traffic over [E,F] (weight 75) and
// [C,F] (weight 25), and two flows f1 (20 Gbps, DSCP 0, enters at A) and
// f2 (80 Gbps, DSCP 5, enters at B). E and F are connected by two parallel
// links so that the no-failure scenario satisfies P2 (each carries
// 50 Gbps, Figure 1(a)).
const Motivating = `
# Figure 1: motivating example
router A as 100 loopback 10.0.0.1
router B as 200 loopback 10.0.0.2
router C as 300 loopback 10.0.0.3
router D as 300 loopback 10.0.0.4
router E as 300 loopback 10.0.0.5
router F as 300 loopback 10.0.0.6

link A B cost 10000 capacity 100 addr-a 1.2.0.1 addr-b 1.2.0.2
link A C cost 10000 capacity 100 addr-a 1.3.0.1 addr-b 1.3.0.2
link B C cost 10000 capacity 100 addr-a 2.3.0.1 addr-b 2.3.0.2
link B D cost 10000 capacity 100 addr-a 2.4.0.1 addr-b 2.4.0.2
link C D cost 10000 capacity 100
link C E cost 10000 capacity 100
link D E cost 10000 capacity 100 addr-a 4.5.0.1 addr-b 4.5.0.2
link E F cost 10000 capacity 100
link E F cost 10000 capacity 100

auto-bgp-mesh

config F
  network 100.0.0.0/24

config D
  sr-policy 10.0.0.6/32 dscp 5
    path 10.0.0.5 10.0.0.6 weight 75
    path 10.0.0.3 10.0.0.6 weight 25

flow f1 ingress A src 11.0.0.1 dst 100.0.0.1 dscp 0 gbps 20
flow f2 ingress B src 11.0.0.2 dst 100.0.0.2 dscp 5 gbps 80

# P1: delivered traffic must not drop below 70 Gbps.
property delivered 100.0.0.0/24 min 70
# P2 is "no link carries >= 95 Gbps"; the verifier checks it on all links.

failures k 1 mode links
`

// MotivatingSpec parses the motivating example spec.
func MotivatingSpec() (*config.Spec, error) {
	return config.ParseSpecString(Motivating)
}

// SRAnycast is the Figure 9 use case: traffic from DC1 steered over an SR
// policy whose single configured path uses an anycast segment shared by
// backbone routers B1 and B2. When link B2-C2 fails, the B2 tunnel detours
// through the low-capacity B1-B2 link, overloading it.
//
// The two anycast tunnels are modeled as two explicit SR paths (one per
// anycast owner), which is how the intended configuration resolves; the
// detour arises from IGP rerouting of the B2->C1 continuation.
const SRAnycast = `
# Figure 9: link overload due to vulnerable SR configuration
router A1 as 65001 loopback 10.1.0.1
router A2 as 65001 loopback 10.1.0.2
router A3 as 65001 loopback 10.1.0.3
router B1 as 65001 loopback 10.1.0.11
router B2 as 65001 loopback 10.1.0.12
router C1 as 65001 loopback 10.1.0.21
router C2 as 65001 loopback 10.1.0.22
router C3 as 65001 loopback 10.1.0.23

link A1 A2 cost 10 capacity 200
link A1 A3 cost 10 capacity 200
link A2 B1 cost 10 capacity 200
link A3 B2 cost 10 capacity 200
# Low-capacity lateral link between the backbone routers.
link B1 B2 cost 10 capacity 50
link B1 C3 cost 10 capacity 200
link B2 C2 cost 10 capacity 200
link C3 C1 cost 10 capacity 200
link C2 C1 cost 10 capacity 200

auto-bgp-mesh

config C1
  network 100.64.0.0/24

config A1
  sr-policy 10.1.0.21/32
    path 10.1.0.11 10.1.0.21 weight 50
    path 10.1.0.12 10.1.0.21 weight 50

flow dc1dc2 ingress A1 src 10.8.0.1 dst 100.64.0.1 gbps 160

failures k 1 mode links
`

// SRAnycastSpec parses the Figure 9 spec.
func SRAnycastSpec() (*config.Spec, error) {
	return config.ParseSpecString(SRAnycast)
}

// Misconfig is the Figure 10 use case: D1/D2 configure a discard static
// for 10.0.0.0/8, redistribute it into BGP toward M1/M2, and do not
// advertise the more-specific service prefix 10.1.0.0/26 they learn from
// the WAN. When D1's WAN link fails, traffic matching 10/8 at D1 is
// dropped even though redundant paths exist.
const Misconfig = `
# Figure 10: service traffic dropping due to misconfiguration
router M1 as 64512 loopback 10.2.0.1
router M2 as 64512 loopback 10.2.0.2
router D1 as 64513 loopback 10.2.0.11
router D2 as 64514 loopback 10.2.0.12
router WAN as 64515 loopback 10.2.0.21
router DC2 as 64516 loopback 10.2.0.31

link M1 M2 cost 10 capacity 400
link M1 D1 cost 10 capacity 400 addr-a 10.200.0.1 addr-b 10.200.0.2
link M2 D2 cost 10 capacity 400 addr-a 10.200.1.1 addr-b 10.200.1.2
link D1 WAN cost 10 capacity 400
link D2 WAN cost 10 capacity 400
link WAN DC2 cost 10 capacity 400 nofail

config DC2
  network 10.1.0.0/26

# D1/D2: discard static for the aggregate, redistributed into BGP, and an
# export policy that never advertises the specific service prefix to the
# aggregation routers — the paper's misconfiguration.
config D1
  static 10.0.0.0/8 discard
  redistribute static
  neighbor 10.200.0.1 remote-as 64512 export-deny 10.1.0.0/26

config D2
  static 10.0.0.0/8 discard
  redistribute static
  neighbor 10.200.1.1 remote-as 64512 export-deny 10.1.0.0/26

auto-bgp-mesh

flow svc ingress M1 src 10.3.0.1 dst 10.1.0.5 gbps 100

property delivered 10.1.0.0/26 min 99
failures k 1 mode links
`

// MisconfigSpec parses the Figure 10 spec.
func MisconfigSpec() (*config.Spec, error) {
	return config.ParseSpecString(Misconfig)
}
