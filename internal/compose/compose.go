// Package compose implements compositional verification (DESIGN.md §17):
// the topology is partitioned into AS-closed domains, each domain is
// route-simulated and symbolically executed on its own subnet in a
// private MTBDD manager, and the finished per-class STFs are assembled
// into one check engine that scans and verifies exactly as a monolithic
// run would.
//
// The scaling wall this breaks is monolithic MTBDD state: a domain
// manager holds the guard layer and execution wavefronts of one domain
// only, so peak live nodes drop roughly with the domain count, and a
// network whose monolithic route simulation blows a node budget can
// still be verified domain by domain.
//
// Interface summaries. Route state crosses a domain boundary as border
// advertisement templates: per (border router, prefix), the rank-group
// representatives' AS paths and selection guards (routesim.BorderAdv).
// Because domains are AS-closed, every cross-domain session is eBGP and
// this pair is *exactly* what the receiver's decision process consumes —
// the summary is lossless for routing. The guards are transferred
// between managers with the mtbdd.Snapshot machinery; since every domain
// manager declares the full global failure-variable order
// (routesim.NewFailVarsAliased), a replayed guard is structurally
// canonical in its destination.
//
// The per-domain BGP steppers run in lockstep — one synchronous round
// across all domains, summaries re-exchanged between rounds — so every
// member router sees byte-identical advertisements, in the identical
// order, as in the monolithic run. Member RIBs are therefore equal by
// induction, and a flow whose traffic never crosses a border link has a
// byte-identical STF. Flows that do cross a border (or keep traffic in
// flight at the iteration cap) are beyond a summary's precision limit:
// they fall back to whole-network symbolic execution on the check
// engine, which then carries a full monolithic route simulation — the
// PR 3 fallback-ladder contract, never a silent drop.
package compose

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/core"
	"github.com/yu-verify/yu/internal/govern"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/obs"
	"github.com/yu-verify/yu/internal/routesim"
	"github.com/yu-verify/yu/internal/topo"
)

// Options configures a compositional build. K is the KReduce budget
// (use -1 with CheckK set for the no-reduction ablation), mirroring the
// monolithic pipeline's conventions.
type Options struct {
	K        int
	CheckK   int
	Mode     topo.FailureMode
	Workers  int
	MaxNodes int
	OnBudget core.BudgetPolicy
	Ctx      context.Context
	Obs      *obs.Registry

	DisableLinkLocalEquiv bool
	DisableGlobalEquiv    bool
	CostHints             map[string]float64
}

// Stats summarizes a compositional build.
type Stats struct {
	Domains     int
	BorderLinks int
	// Rounds / Converged mirror the lockstep BGP fixed point.
	Rounds    int
	Converged bool
	// ContainedClasses were executed inside a domain; FallbackClasses
	// crossed a summary's precision limit and were executed monolithically
	// on the check engine.
	ContainedClasses int
	FallbackClasses  int
	// DomainPeakNodes is the largest per-domain manager's live node count
	// after execution — the number the monolithic peak is compared against.
	DomainPeakNodes int
}

// Built is a ready-to-check compositional verifier: run checks through
// Verifier exactly as with the monolithic pipeline.
type Built struct {
	Verifier *core.Verifier
	Engine   *core.Engine
	Stats    Stats
}

// stubRef locates one border stub inside a domain subnet.
type stubRef struct {
	global topo.RouterID // global ID of the stub router
	local  topo.RouterID // subnet ID inside the consuming domain
	home   int           // domain that owns the router
}

// Build runs the compositional pipeline: per-domain route simulation in
// lockstep with summary exchange, per-domain symbolic execution of the
// contained equivalence classes, and assembly into a check engine over
// the global failure variables. Any error means the input could not be
// verified compositionally (or the run was governed short) — the caller
// falls back to the monolithic path, which reproduces either the verdict
// or the error.
func Build(net *topo.Network, cfgs config.Configs, part *topo.Partition, flows []topo.Flow, opts Options) (*Built, error) {
	nd := part.NumDomains()
	st := Stats{Domains: nd, BorderLinks: len(part.BorderLinks())}

	// Extract the subnets and build one governed manager per domain with
	// the aliased global variable order.
	subs := make([]*topo.Subnet, nd)
	mgrs := make([]*mtbdd.Manager, nd)
	fvs := make([]*routesim.FailVars, nd)
	for d := 0; d < nd; d++ {
		sub, err := part.Subnet(d)
		if err != nil {
			return nil, err
		}
		subs[d] = sub
		m := mtbdd.New()
		if opts.MaxNodes > 0 {
			m.SetNodeBudget(opts.MaxNodes)
		}
		if ctx := opts.Ctx; ctx != nil && ctx != context.Background() {
			m.SetInterrupt(func() error { return govern.Check(ctx) })
		}
		mgrs[d] = m
		fvs[d] = routesim.NewFailVarsAliased(m, net, sub, opts.Mode, opts.K)
	}

	// Per-domain IGP. IS-IS is strictly intra-AS and domains are
	// AS-closed, so each member AS computes on its complete link set and
	// the guards are byte-identical to the monolithic run's.
	igps := make([]*routesim.IGP, nd)
	for d := 0; d < nd; d++ {
		d := d
		if err := mtbdd.Guard(func() { igps[d] = routesim.ComputeIGP(fvs[d]) }); err != nil {
			return nil, err
		}
	}

	// Lockstep BGP: all domains advance one synchronous round at a time,
	// border advertisement templates exchanged between rounds.
	steppers := make([]*routesim.Stepper, nd)
	for d := 0; d < nd; d++ {
		d := d
		if err := mtbdd.Guard(func() {
			steppers[d] = routesim.NewStepper(fvs[d], cfgs, igps[d], subs[d].Member)
		}); err != nil {
			return nil, err
		}
	}
	stubs := make([][]stubRef, nd) // per consuming domain, sorted by global ID
	exported := make(map[topo.RouterID]int)
	for d := 0; d < nd; d++ {
		seen := make(map[topo.RouterID]bool)
		for local, member := range subs[d].Member {
			if member {
				continue
			}
			g := subs[d].ToGlobalRouter[local]
			if seen[g] {
				continue
			}
			seen[g] = true
			home := part.Domain[g]
			stubs[d] = append(stubs[d], stubRef{global: g, local: topo.RouterID(local), home: home})
			exported[g] = home
		}
		sort.Slice(stubs[d], func(i, j int) bool { return stubs[d][i].global < stubs[d][j].global })
	}
	exportOrder := make([]topo.RouterID, 0, len(exported))
	for g := range exported {
		exportOrder = append(exportOrder, g)
	}
	sort.Slice(exportOrder, func(i, j int) bool { return exportOrder[i] < exportOrder[j] })

	maxRounds := 2*net.Diameter() + 8
	rounds, converged := 0, false
	lockstep := func() error {
		for round := 1; ; round++ {
			if err := govern.Check(opts.Ctx); err != nil {
				return err
			}
			// Export this round's templates from every border member.
			tpls := make(map[topo.RouterID]routesim.BorderTemplates, len(exportOrder))
			for _, g := range exportOrder {
				home := exported[g]
				if err := mtbdd.Guard(func() {
					tpls[g] = steppers[home].BorderAdvs(subs[home].RouterIndex[g])
				}); err != nil {
					return err
				}
			}
			// Inject into each consuming domain, one snapshot per source
			// domain batching every stub it feeds.
			for d := 0; d < nd; d++ {
				byHome := make(map[int][]stubRef)
				for _, s := range stubs[d] {
					byHome[s.home] = append(byHome[s.home], s)
				}
				homes := make([]int, 0, len(byHome))
				for h := range byHome {
					homes = append(homes, h)
				}
				sort.Ints(homes)
				for _, h := range homes {
					var roots []*mtbdd.Node
					for _, s := range byHome[h] {
						for _, advs := range tpls[s.global] {
							for _, a := range advs {
								roots = append(roots, a.Sel)
							}
						}
					}
					snap := mtbdd.NewSnapshot(roots)
					var table []*mtbdd.Node
					if err := mtbdd.Guard(func() { table = mgrs[d].ImportSnapshot(snap) }); err != nil {
						return err
					}
					for _, s := range byHome[h] {
						src := tpls[s.global]
						var mapped routesim.BorderTemplates
						if len(src) > 0 {
							mapped = make(routesim.BorderTemplates, len(src))
							for pfx, advs := range src {
								out := make([]routesim.BorderAdv, len(advs))
								for i, a := range advs {
									idx, ok := snap.Index(a.Sel)
									if !ok {
										return fmt.Errorf("compose: selection guard of %s missing from snapshot", net.Router(s.global).Name)
									}
									out[i] = routesim.BorderAdv{ASPath: a.ASPath, Sel: table[idx]}
								}
								mapped[pfx] = out
							}
						}
						steppers[d].SetStubAdvs(s.local, mapped)
					}
				}
			}
			// One synchronous round everywhere; global stability is the
			// conjunction of per-domain member stability.
			stable := true
			for d := 0; d < nd; d++ {
				d := d
				var ok bool
				if err := mtbdd.Guard(func() { ok = steppers[d].Round() }); err != nil {
					return err
				}
				if !ok {
					stable = false
				}
			}
			rounds = round
			if stable {
				converged = true
				return nil
			}
			if round >= maxRounds {
				return nil
			}
		}
	}
	if err := lockstep(); err != nil {
		return nil, err
	}
	st.Rounds, st.Converged = rounds, converged

	// Finish per-domain route simulation: SR policies and statics of the
	// domain's own routers. A member config that does not resolve inside
	// its subnet (e.g. an SR segment or indirect static pointing at a
	// router of another domain) makes the domain incomposable — surfaced
	// as an error so the caller falls back to the monolithic path.
	results := make([]*routesim.Result, nd)
	for d := 0; d < nd; d++ {
		memberCfgs := make(config.Configs)
		for name, rc := range cfgs {
			if r, ok := subs[d].Net.RouterByName(name); ok && subs[d].Member[r.ID] {
				memberCfgs[name] = rc
			}
		}
		d := d
		var rerr error
		if err := mtbdd.Guard(func() {
			results[d], rerr = routesim.FinishRun(fvs[d], memberCfgs, igps[d], steppers[d].Finish(rounds, converged))
		}); err != nil {
			return nil, err
		}
		if rerr != nil {
			return nil, rerr
		}
	}

	// The global prefix union: every member RIB's prefixes plus every
	// member static. Members partition the network and their RIBs are
	// byte-identical to the monolithic run's, so this is exactly the
	// prefix set the monolithic classifier would see — passed to every
	// engine (domain and check) via ClassifyPrefixes so destination
	// classes, and therefore equivalence classes and their order, agree
	// everywhere.
	pfxSet := make(map[netip.Prefix]struct{})
	for d := 0; d < nd; d++ {
		for local, member := range subs[d].Member {
			if !member {
				continue
			}
			for pfx := range results[d].BGP.RIBs[local] {
				pfxSet[pfx] = struct{}{}
			}
			for _, gs := range results[d].Statics[local] {
				pfxSet[gs.Prefix] = struct{}{}
			}
		}
	}
	prefixes := make([]netip.Prefix, 0, len(pfxSet))
	for pfx := range pfxSet {
		prefixes = append(prefixes, pfx)
	}
	sort.Slice(prefixes, func(i, j int) bool {
		if prefixes[i].Bits() != prefixes[j].Bits() {
			return prefixes[i].Bits() > prefixes[j].Bits()
		}
		return prefixes[i].Addr().Less(prefixes[j].Addr())
	})

	// Global equivalence classes, assigned to domains by ingress.
	reps, _ := core.GlobalClasses(net, prefixes, flows, opts.DisableGlobalEquiv)
	classesOf := make([][]int, nd)
	for i, rep := range reps {
		d := part.Domain[rep.Ingress]
		classesOf[d] = append(classesOf[d], i)
	}

	// The iteration bound must be derived from the global network (the
	// monolithic engine derives it from diameter + longest SR path), so a
	// contained flow executes the same number of wavefront steps in its
	// domain as it would monolithically.
	longestSR := 0
	for _, rc := range cfgs {
		for _, p := range rc.SRPolicies {
			for _, path := range p.Paths {
				if len(path.Segments) > longestSR {
					longestSR = len(path.Segments)
				}
			}
		}
	}
	maxIter := (longestSR + 2) * (net.Diameter() + 2)
	if maxIter < 16 {
		maxIter = 16
	}

	// Execute every class inside its domain, domains in parallel (each
	// has a private manager). Domains run under BudgetFail with no
	// concrete fallback: a class that cannot fit a domain budget simply
	// joins the precision-fallback set.
	engOpts := func(nodeBudget int, onBudget core.BudgetPolicy, configs config.Configs) core.Options {
		return core.Options{
			MaxIterations:         maxIter,
			DisableLinkLocalEquiv: opts.DisableLinkLocalEquiv,
			DisableGlobalEquiv:    opts.DisableGlobalEquiv,
			CheckK:                opts.CheckK,
			Ctx:                   opts.Ctx,
			NodeBudget:            nodeBudget,
			OnBudget:              onBudget,
			Configs:               configs,
			Obs:                   opts.Obs,
			ClassifyPrefixes:      prefixes,
		}
	}
	pre := make([]*core.FlowSTF, len(reps))
	fatal := make([]error, nd)
	var wg sync.WaitGroup
	for d := 0; d < nd; d++ {
		if len(classesOf[d]) == 0 {
			continue
		}
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			sub := subs[d]
			eng := core.NewEngine(results[d], engOpts(opts.MaxNodes, core.BudgetFail, nil))
			borderDirs := make(map[topo.DirLinkID]bool, 2*len(sub.Border))
			for _, bl := range sub.Border {
				borderDirs[topo.MakeDirLinkID(bl, topo.AtoB)] = true
				borderDirs[topo.MakeDirLinkID(bl, topo.BtoA)] = true
			}
			zero := mgrs[d].Zero()
			var done []*core.FlowSTF
			for _, ci := range classesOf[d] {
				rep := reps[ci]
				local := rep
				local.Ingress = sub.RouterIndex[rep.Ingress]
				s, err := eng.ExecuteGoverned(local, done)
				if err != nil {
					if errors.Is(err, govern.ErrNodeBudget) {
						// This class outgrew the domain budget; the check
						// engine re-executes it monolithically.
						continue
					}
					fatal[d] = err
					return
				}
				done = append(done, s)
				// Containment audit: traffic that crossed a border link —
				// or was still in flight at the iteration cap — escapes
				// the domain's view, so the STF is only trusted when
				// neither happened.
				contained := s.InFlight == zero
				if contained {
					for dl := range s.Links {
						if borderDirs[dl] {
							contained = false
							break
						}
					}
				}
				if contained {
					pre[ci] = core.TranslateSTF(s, sub.ToGlobalLink, rep)
				}
			}
		}(d)
	}
	wg.Wait()
	for d := 0; d < nd; d++ {
		if fatal[d] != nil {
			return nil, fatal[d]
		}
		if mgrs[d].Stats().Live > st.DomainPeakNodes {
			st.DomainPeakNodes = mgrs[d].Stats().Live
		}
		core.RecordManager(opts.Obs, fmt.Sprintf("domain.%s", part.Names[d]), mgrs[d])
	}
	for _, s := range pre {
		if s != nil {
			st.ContainedClasses++
		}
	}
	st.FallbackClasses = len(reps) - st.ContainedClasses

	// Assemble the check engine over the global failure variables. When
	// every class was contained the route-sim result is empty — the check
	// manager never holds global guard state, only the final STFs. With
	// fallback classes it carries a full monolithic route simulation, so
	// those classes execute exactly as the monolithic pipeline would.
	mCheck := mtbdd.New()
	if opts.MaxNodes > 0 {
		mCheck.SetNodeBudget(opts.MaxNodes)
	}
	fvCheck := routesim.NewFailVars(mCheck, net, opts.Mode, opts.K)
	var rsCheck *routesim.Result
	if st.FallbackClasses > 0 {
		var err error
		rsCheck, err = routesim.RunContext(opts.Ctx, fvCheck, cfgs)
		if err != nil {
			return nil, err
		}
	} else {
		rsCheck = routesim.EmptyResult(fvCheck)
	}
	checkOpts := engOpts(opts.MaxNodes, opts.OnBudget, cfgs)
	checkOpts.CostHints = opts.CostHints
	eng := core.NewEngine(rsCheck, checkOpts)
	ver := core.NewAssembledVerifier(eng, flows, opts.Workers, pre)
	return &Built{Verifier: ver, Engine: eng, Stats: st}, nil
}
