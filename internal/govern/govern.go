// Package govern defines the typed errors and context plumbing of the
// resource-governance layer: cancellation, deadlines, and MTBDD node
// budgets. It is a leaf package — every stage of the pipeline (mtbdd,
// routesim, core, the baselines, and the public yu API) imports it, so a
// caller can match errors with errors.Is regardless of which stage
// unwound.
package govern

import (
	"context"
	"errors"
)

var (
	// ErrCanceled is returned when a verification run is abandoned
	// because its context was canceled. The accompanying Report is
	// partial: completed checks are kept, the rest are marked unchecked.
	ErrCanceled = errors.New("verification canceled")
	// ErrDeadline is returned when a verification run exceeds its
	// context deadline.
	ErrDeadline = errors.New("verification deadline exceeded")
	// ErrNodeBudget is returned when an MTBDD manager's live-node budget
	// is breached and the budget policy is to fail. Degrading policies
	// catch it internally and walk the fallback ladder instead.
	ErrNodeBudget = errors.New("mtbdd live-node budget exceeded")
)

// CtxErr maps the context package's sentinel errors onto the governance
// errors, leaving any other error (or nil) unchanged.
func CtxErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.Canceled):
		return ErrCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadline
	}
	return err
}

// Check polls a context, tolerating nil (a nil context never cancels),
// and returns the mapped governance error.
func Check(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return CtxErr(ctx.Err())
}
