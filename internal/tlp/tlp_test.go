package tlp_test

import (
	"math"
	"strings"
	"testing"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/canon"
	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/paperex"
	"github.com/yu-verify/yu/internal/tlp"
	"github.com/yu-verify/yu/internal/topo"
)

func motivating(t *testing.T) *yu.Network {
	t.Helper()
	net, err := yu.LoadString(paperex.Motivating)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func mustPortfolio(t *testing.T, net *yu.Network, text string) []topo.TLProp {
	t.Helper()
	props, err := config.ParsePortfolioString(text, net.Topology())
	if err != nil {
		t.Fatal(err)
	}
	return props
}

// TestPortfolioMotivating evaluates a mixed portfolio on the Figure 1
// network under k=2 and checks verdicts against the paper's known
// worst-case loads (C->E carries 100 Gbps when B-D fails).
func TestPortfolioMotivating(t *testing.T) {
	net := motivating(t)
	props := mustPortfolio(t, net, `
		tlp util 0.95                               # violated: C->E hits 100 on 100-capacity
		tlp link C-E max 95                         # violated
		tlp dirlink E->C max 95                     # holds: reverse direction is idle
		tlp delivered 100.0.0.0/24 min 70           # violated under k=2 (both E-F links fail)
		tlp ratio 100.0.0.0/24 min 0.7              # same property as a ratio of the 100G offered
		tlp link C-E max 50 if-failed B-D           # violated: C->E=100 when B-D is down
		tlp link D-E max 105 if-failed B-D          # holds: total traffic is only 100
	`)
	reg := yu.NewMetrics()
	res, err := net.VerifyPortfolio(props, yu.VerifyOptions{K: 2, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	want := []tlp.Status{
		tlp.StatusViolated, tlp.StatusViolated, tlp.StatusHolds,
		tlp.StatusViolated, tlp.StatusViolated, tlp.StatusViolated, tlp.StatusHolds,
	}
	for i, w := range want {
		if res.Verdicts[i].Status != w {
			t.Errorf("prop %d (%s): status %v, want %v",
				i, canon.FormatProp(net.Topology(), props[i]), res.Verdicts[i].Status, w)
		}
	}
	if res.Holds {
		t.Error("portfolio reported holds despite violations")
	}
	// The conditional witness must include the guard link B-D.
	vd := res.Verdicts[5]
	found := false
	for _, l := range vd.FailedLinks {
		if net.Topology().LinkName(l) == "B-D" {
			found = true
		}
	}
	if !found {
		t.Errorf("conditional witness %v does not include guard B-D", vd.FailedLinks)
	}
	if vd.Value != 100 {
		t.Errorf("conditional worst value %.9g, want 100", vd.Value)
	}
	// Ratio verdict reports in ratio units: 100 G offered, min 0.7.
	if rv := res.Verdicts[4]; rv.Value >= 0.7 {
		t.Errorf("ratio worst value %.9g, want < 0.7", rv.Value)
	}

	// Scan sharing: the util property alone touches all 18 directed links;
	// the whole portfolio must not scan any link twice.
	if res.Stats.LinkScans != 2*net.Topology().NumLinks() {
		t.Errorf("link scans %d, want %d (one per directed link)",
			res.Stats.LinkScans, 2*net.Topology().NumLinks())
	}
	if res.Stats.DeliveredScans != 1 {
		t.Errorf("delivered scans %d, want 1 (two prefix properties share one)", res.Stats.DeliveredScans)
	}
	counters := reg.Snapshot().Counters
	if counters["tlp.link_scans"] != int64(res.Stats.LinkScans) {
		t.Errorf("tlp.link_scans counter %d != stats %d", counters["tlp.link_scans"], res.Stats.LinkScans)
	}
	if counters["tlp.properties"] != int64(len(props)) {
		t.Errorf("tlp.properties counter %d != %d", counters["tlp.properties"], len(props))
	}
	if res.Stats.RestrictScans == 0 {
		t.Error("conditional properties ran without any restrict scan")
	}
}

// TestPortfolioWorkerByteIdentity requires the canonical portfolio report
// to be byte-identical across worker counts.
func TestPortfolioWorkerByteIdentity(t *testing.T) {
	net := motivating(t)
	props := mustPortfolio(t, net, `
		tlp util 0.95
		tlp link C-E max 95
		tlp delivered 100.0.0.0/24 min 70
		tlp link C-E max 50 if-failed B-D
	`)
	var base string
	for _, workers := range []int{1, 2, 4} {
		res, err := net.VerifyPortfolio(props, yu.VerifyOptions{K: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		text := canon.FormatPortfolio(net.Topology(), res)
		if workers == 1 {
			base = text
			continue
		}
		if text != base {
			t.Errorf("workers=%d report differs:\n%s\n--- vs workers=1 ---\n%s", workers, text, base)
		}
	}
	if !strings.Contains(base, "group when") {
		t.Errorf("report has no violation groups:\n%s", base)
	}
}

// TestCompileRejectsMalformed checks that malformed portfolios error
// instead of panicking.
func TestCompileRejectsMalformed(t *testing.T) {
	net := motivating(t)
	topoNet := net.Topology()
	flows := net.Spec().Flows
	bad := []topo.TLProp{
		{Kind: topo.TLPLinkLoad, Link: topo.LinkID(999), Max: 1},
		{Kind: topo.TLPLinkLoad, Link: 0, Min: 5, Max: 1},
		{Kind: topo.TLPLinkLoad, Link: 0, Max: math.NaN()},
		{Kind: topo.TLPUtil, AllLinks: true, Factor: 0},
		{Kind: topo.TLPUtil, AllLinks: true, Factor: math.NaN()},
		{Kind: topo.TLPDelivered, Max: 1},
		{Kind: topo.TLPKind(42)},
		{Kind: topo.TLPLinkLoad, Link: 0, Max: 1, CondSet: true, CondLink: topo.LinkID(999)},
	}
	for i, p := range bad {
		if _, err := tlp.Compile(topoNet, flows, []topo.TLProp{p}); err == nil {
			t.Errorf("bad prop %d compiled without error: %+v", i, p)
		}
	}
	if _, err := tlp.Compile(topoNet, flows, nil); err != nil {
		t.Errorf("empty portfolio must compile: %v", err)
	}
}

// TestRatioZeroOfferedVacuous: a ratio on a prefix no flow targets is
// vacuously true and costs no scan.
func TestRatioZeroOfferedVacuous(t *testing.T) {
	net := motivating(t)
	props := mustPortfolio(t, net, "tlp ratio 203.0.113.0/24 min 0.99")
	res, err := net.VerifyPortfolio(props, yu.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdicts[0].Status != tlp.StatusVacuous {
		t.Errorf("status %v, want vacuous", res.Verdicts[0].Status)
	}
	if !res.Holds || res.Stats.DeliveredScans != 0 {
		t.Errorf("holds=%v delivered scans=%d, want true/0", res.Holds, res.Stats.DeliveredScans)
	}
}

// TestCondUnfailableGuardVacuous: a condition on a nofail link can never
// trigger, so the property is vacuous.
func TestCondUnfailableGuardVacuous(t *testing.T) {
	spec := strings.Replace(paperex.Motivating,
		"link B D cost 10000 capacity 100 addr-a 2.4.0.1 addr-b 2.4.0.2",
		"link B D cost 10000 capacity 100 addr-a 2.4.0.1 addr-b 2.4.0.2 nofail", 1)
	net, err := yu.LoadString(spec)
	if err != nil {
		t.Fatal(err)
	}
	props := mustPortfolio(t, net, "tlp link C-E max 50 if-failed B-D")
	res, err := net.VerifyPortfolio(props, yu.VerifyOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdicts[0].Status != tlp.StatusVacuous {
		t.Errorf("status %v, want vacuous", res.Verdicts[0].Status)
	}
}
