// Package tlp is the batch traffic-load-property engine: it compiles an
// arbitrary portfolio of TLPs — per-link load bounds, utilization bounds,
// delivered-traffic and delivery-ratio bounds, and conditional ("if link
// A-B is failed then ...") variants of each — into a per-link evaluation
// plan served from one symbolic execution. Every directed link's KREDUCEd
// load MTBDD is terminal-scanned once, evaluating all properties attached
// to that link in the same pass (core.ScanLink); conditional properties
// are evaluated by guard restriction (one cofactor scan per distinct
// guard) rather than by re-executing anything. Violations are
// deduplicated by witness failure set and ranked by excess load.
package tlp

import (
	"fmt"
	"math"
	"net/netip"
	"sort"
	"strings"

	"github.com/yu-verify/yu/internal/core"
	"github.com/yu-verify/yu/internal/obs"
	"github.com/yu-verify/yu/internal/topo"
)

// plannedCheck is one scan predicate a property compiled to, bound to a
// subject (directed link or prefix) by its containing plan.
type plannedCheck struct {
	prop     int            // index into Portfolio.Props
	check    core.LinkCheck // CondVar is resolved at Eval time
	condSet  bool
	condLink topo.LinkID
	scale    float64 // divide values by this for reporting (ratio: offered Gbps)
}

type linkPlan struct {
	link   topo.DirLinkID
	checks []plannedCheck
}

type pfxPlan struct {
	pfx    netip.Prefix
	checks []plannedCheck
}

// aggPlan is the evaluation plan of one (link set, sum|max) aggregate
// subject: however many properties bound the same aggregate, its symbolic
// quantity is built and terminal-scanned once.
type aggPlan struct {
	links  []topo.DirLinkID
	max    bool
	checks []plannedCheck
}

// Portfolio is a compiled property portfolio: the per-subject evaluation
// plan Eval serves from one symbolic run.
type Portfolio struct {
	Net   *topo.Network
	Props []topo.TLProp

	links []linkPlan // ascending DirLinkID
	pfxs  []pfxPlan  // first-seen order
	aggs  []aggPlan  // first-seen order
	// vacuous marks properties decided at compile time without any scan
	// (delivery ratio with zero offered traffic).
	vacuous []int
	// NumChecks counts the scan predicates the portfolio compiled to
	// (directional expansion makes it >= len(Props)).
	NumChecks int
}

// Compile validates a portfolio against the network and builds its
// evaluation plan. Malformed portfolios (out-of-range links, invalid
// prefixes, inverted or NaN bounds, non-positive utilization factors)
// return an error; Compile never panics on untrusted input.
func Compile(net *topo.Network, flows []topo.Flow, props []topo.TLProp) (*Portfolio, error) {
	p := &Portfolio{Net: net, Props: props}
	byLink := make(map[topo.DirLinkID][]plannedCheck)
	pfxIdx := make(map[netip.Prefix]int)
	aggIdx := make(map[string]int)

	addLink := func(d topo.DirLinkID, c plannedCheck) {
		byLink[d] = append(byLink[d], c)
		p.NumChecks++
	}
	addPfx := func(pfx netip.Prefix, c plannedCheck) {
		i, ok := pfxIdx[pfx]
		if !ok {
			i = len(p.pfxs)
			pfxIdx[pfx] = i
			p.pfxs = append(p.pfxs, pfxPlan{pfx: pfx})
		}
		p.pfxs[i].checks = append(p.pfxs[i].checks, c)
		p.NumChecks++
	}
	dirsOf := func(prop topo.TLProp) []topo.DirLinkID {
		if prop.DirSpecified {
			return []topo.DirLinkID{topo.MakeDirLinkID(prop.Link, prop.Dir)}
		}
		return []topo.DirLinkID{
			topo.MakeDirLinkID(prop.Link, topo.AtoB),
			topo.MakeDirLinkID(prop.Link, topo.BtoA),
		}
	}

	for i, prop := range props {
		if math.IsNaN(prop.Min) || math.IsNaN(prop.Max) || prop.Min > prop.Max {
			return nil, fmt.Errorf("tlp: property %d: bad bounds [%g, %g]", i, prop.Min, prop.Max)
		}
		base := plannedCheck{prop: i, scale: 1}
		if prop.CondSet {
			if int(prop.CondLink) < 0 || int(prop.CondLink) >= net.NumLinks() {
				return nil, fmt.Errorf("tlp: property %d: if-failed link %d out of range", i, prop.CondLink)
			}
			base.condSet, base.condLink = true, prop.CondLink
		}
		needLink := prop.Kind == topo.TLPLinkLoad || (prop.Kind == topo.TLPUtil && !prop.AllLinks)
		if needLink && (int(prop.Link) < 0 || int(prop.Link) >= net.NumLinks()) {
			return nil, fmt.Errorf("tlp: property %d: link %d out of range", i, prop.Link)
		}
		switch prop.Kind {
		case topo.TLPLinkLoad:
			c := base
			c.check = core.LinkCheck{Min: prop.Min, Max: prop.Max}
			for _, d := range dirsOf(prop) {
				addLink(d, c)
			}
		case topo.TLPUtil:
			if math.IsNaN(prop.Factor) || prop.Factor <= 0 {
				return nil, fmt.Errorf("tlp: property %d: bad utilization factor %g", i, prop.Factor)
			}
			links := []topo.LinkID{prop.Link}
			if prop.AllLinks {
				links = links[:0]
				for li := 0; li < net.NumLinks(); li++ {
					links = append(links, topo.LinkID(li))
				}
			}
			for _, li := range links {
				c := base
				c.check = core.LinkCheck{
					Min:      math.Inf(-1),
					Max:      prop.Factor * net.Link(li).Capacity,
					Overload: true,
				}
				if prop.AllLinks || !prop.DirSpecified {
					addLink(topo.MakeDirLinkID(li, topo.AtoB), c)
					addLink(topo.MakeDirLinkID(li, topo.BtoA), c)
				} else {
					addLink(topo.MakeDirLinkID(li, prop.Dir), c)
				}
			}
		case topo.TLPDelivered, topo.TLPRatio:
			if !prop.Prefix.IsValid() {
				return nil, fmt.Errorf("tlp: property %d: invalid prefix", i)
			}
			c := base
			c.check = core.LinkCheck{Min: prop.Min, Max: prop.Max}
			if prop.Kind == topo.TLPRatio {
				offered := offeredTraffic(flows, prop.Prefix)
				if offered <= 0 {
					// Nothing is offered to the prefix: the ratio is
					// undefined and the property is vacuously true.
					p.vacuous = append(p.vacuous, i)
					continue
				}
				c.scale = offered
				c.check.Min = prop.Min * offered
				if !math.IsInf(prop.Max, 1) {
					c.check.Max = prop.Max * offered
				}
			}
			addPfx(prop.Prefix.Masked(), c)
		case topo.TLPSumLoad, topo.TLPMaxLoad:
			if len(prop.AggLinks) == 0 {
				return nil, fmt.Errorf("tlp: property %d: empty link set", i)
			}
			isMax := prop.Kind == topo.TLPMaxLoad
			var dirs []topo.DirLinkID
			for _, li := range prop.AggLinks {
				if int(li) < 0 || int(li) >= net.NumLinks() {
					return nil, fmt.Errorf("tlp: property %d: linkset link %d out of range", i, li)
				}
				dirs = append(dirs,
					topo.MakeDirLinkID(li, topo.AtoB),
					topo.MakeDirLinkID(li, topo.BtoA))
			}
			// Properties over the same aggregate subject share one plan
			// (and so one symbolic build + scan), keyed by the expanded
			// directed-link list — robust to two set names with identical
			// members.
			key := fmt.Sprintf("%v|%v", isMax, dirs)
			ai, ok := aggIdx[key]
			if !ok {
				ai = len(p.aggs)
				aggIdx[key] = ai
				p.aggs = append(p.aggs, aggPlan{links: dirs, max: isMax})
			}
			c := base
			c.check = core.LinkCheck{Min: prop.Min, Max: prop.Max}
			p.aggs[ai].checks = append(p.aggs[ai].checks, c)
			p.NumChecks++
		default:
			return nil, fmt.Errorf("tlp: property %d: unknown kind %d", i, int(prop.Kind))
		}
	}

	dirs := make([]topo.DirLinkID, 0, len(byLink))
	for d := range byLink {
		dirs = append(dirs, d)
	}
	sort.Slice(dirs, func(a, b int) bool { return dirs[a] < dirs[b] })
	for _, d := range dirs {
		p.links = append(p.links, linkPlan{link: d, checks: byLink[d]})
	}
	return p, nil
}

// offeredTraffic sums the volume of flows destined inside pfx.
func offeredTraffic(flows []topo.Flow, pfx netip.Prefix) float64 {
	total := 0.0
	for _, f := range flows {
		if f.Dst.IsValid() && pfx.Contains(f.Dst) {
			total += f.Gbps
		}
	}
	return total
}

// Status is one property's verdict.
type Status int

const (
	// StatusHolds: no reachable in-budget scenario violates the property.
	StatusHolds Status = iota
	// StatusViolated: a witness scenario violates it.
	StatusViolated
	// StatusVacuous: the property constrains nothing under this run
	// (zero offered traffic for a ratio, or an unfailable guard link).
	StatusVacuous
	// StatusUnchecked: the property's scan was skipped (governance).
	StatusUnchecked
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusHolds:
		return "holds"
	case StatusViolated:
		return "violated"
	case StatusVacuous:
		return "vacuous"
	case StatusUnchecked:
		return "unchecked"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Verdict is one property's outcome. For a violated property Value is the
// worst observed quantity in the property's own units (Gbps, or a
// fraction for delivery ratios), Excess is how far beyond the bound the
// load went in Gbps (the ranking key), and FailedLinks/FailedRouters name
// the witness scenario.
type Verdict struct {
	Status        Status
	Value         float64
	Excess        float64
	FailedLinks   []topo.LinkID
	FailedRouters []topo.RouterID
}

// Group is one deduplicated violation cluster: every violated property
// whose witness is the same failure set, ordered by excess.
type Group struct {
	FailedLinks   []topo.LinkID
	FailedRouters []topo.RouterID
	// Props indexes Result.Props, ordered by descending excess.
	Props     []int
	MaxExcess float64
}

// Stats counts the portfolio evaluation's work — the scan-sharing
// evidence: LinkScans is the number of directed links aggregated and
// terminal-scanned (one per distinct link, however many properties ride
// on it), not the number of properties.
type Stats struct {
	Properties     int
	Checks         int
	LinkScans      int
	DeliveredScans int
	// AggScans counts the aggregate subjects (link sets) built and
	// scanned — one per distinct (set, sum|max) pair.
	AggScans      int
	RestrictScans int
	Violations    int
	Unchecked     int
}

// Result is a portfolio evaluation outcome.
type Result struct {
	Props      []topo.TLProp
	Verdicts   []Verdict
	Groups     []Group
	Stats      Stats
	Holds      bool
	Incomplete bool
}

// Eval evaluates the compiled portfolio against one symbolic run. Each
// directed link in the plan is aggregated and terminal-scanned exactly
// once; conditional properties add one cofactor scan per distinct guard
// link. reg (nil-safe) receives tlp.* counters.
func (p *Portfolio) Eval(v *core.Verifier, reg *obs.Registry) (*Result, error) {
	r := &Result{Props: p.Props, Verdicts: make([]Verdict, len(p.Props))}
	r.Stats.Properties = len(p.Props)
	r.Stats.Checks = p.NumChecks
	for _, i := range p.vacuous {
		r.Verdicts[i].Status = StatusVacuous
	}

	merge := func(checks []plannedCheck, live []int, res []core.ScanResult) {
		for j, ci := range live {
			c, sr := checks[ci], res[j]
			if !sr.Violated {
				continue
			}
			excess := c.check.Min - sr.Value
			if sr.Value > c.check.Max || c.check.Overload {
				excess = sr.Value - c.check.Max
			}
			vd := &r.Verdicts[c.prop]
			if vd.Status == StatusViolated && excess <= vd.Excess {
				continue
			}
			*vd = Verdict{
				Status: StatusViolated, Value: sr.Value / c.scale, Excess: excess,
				FailedLinks: sr.FailedLinks, FailedRouters: sr.FailedRouters,
			}
		}
	}

	// prepare resolves guards against the run's failure variables: an
	// unfailable guard link makes the property vacuous (it can never be
	// the case that the guard is failed), dropping its check from the
	// scan.
	prepare := func(checks []plannedCheck) ([]core.LinkCheck, []int) {
		scs := make([]core.LinkCheck, 0, len(checks))
		live := make([]int, 0, len(checks))
		for ci, c := range checks {
			sc := c.check
			sc.CondVar = -1
			if c.condSet {
				cv := v.Vars().LinkVar(c.condLink)
				if cv < 0 {
					if r.Verdicts[c.prop].Status == StatusHolds {
						r.Verdicts[c.prop].Status = StatusVacuous
					}
					continue
				}
				sc.CondVar = cv
			}
			scs = append(scs, sc)
			live = append(live, ci)
		}
		return scs, live
	}

	markUnchecked := func(checks []plannedCheck, live []int) {
		for _, ci := range live {
			vd := &r.Verdicts[checks[ci].prop]
			if vd.Status == StatusHolds {
				vd.Status = StatusUnchecked
			}
		}
		r.Incomplete = true
	}

	type evalJob struct {
		checks  []plannedCheck
		scan    func(scs []core.LinkCheck) ([]core.ScanResult, int)
		counter string
		scanned *int
	}
	var jobs []evalJob
	for i := range p.links {
		plan := &p.links[i]
		jobs = append(jobs, evalJob{
			checks: plan.checks, counter: "tlp.link_scans", scanned: &r.Stats.LinkScans,
			scan: func(scs []core.LinkCheck) ([]core.ScanResult, int) {
				res, _, restr := v.ScanLink(plan.link, scs)
				return res, restr
			},
		})
	}
	for i := range p.pfxs {
		plan := &p.pfxs[i]
		jobs = append(jobs, evalJob{
			checks: plan.checks, counter: "tlp.delivered_scans", scanned: &r.Stats.DeliveredScans,
			scan: func(scs []core.LinkCheck) ([]core.ScanResult, int) {
				res, _, restr := v.ScanDelivered(plan.pfx, scs)
				return res, restr
			},
		})
	}
	for i := range p.aggs {
		plan := &p.aggs[i]
		jobs = append(jobs, evalJob{
			checks: plan.checks, counter: "tlp.agg_scans", scanned: &r.Stats.AggScans,
			scan: func(scs []core.LinkCheck) ([]core.ScanResult, int) {
				res, _, restr := v.ScanAggregate(plan.links, plan.max, scs)
				return res, restr
			},
		})
	}

	finalize := func() {
		for i := range r.Verdicts {
			switch r.Verdicts[i].Status {
			case StatusViolated:
				r.Stats.Violations++
			case StatusUnchecked:
				r.Stats.Unchecked++
			}
		}
		r.Holds = r.Stats.Violations == 0 && !r.Incomplete
		r.Groups = groupVerdicts(r.Verdicts)
		reg.Counter("tlp.properties").Add(int64(r.Stats.Properties))
		reg.Counter("tlp.checks").Add(int64(r.Stats.Checks))
		reg.Counter("tlp.restrict_scans").Add(int64(r.Stats.RestrictScans))
		reg.Counter("tlp.violations").Add(int64(r.Stats.Violations))
		reg.Counter("tlp.unchecked").Add(int64(r.Stats.Unchecked))
	}

	for ji, job := range jobs {
		scs, live := prepare(job.checks)
		if len(scs) == 0 {
			continue
		}
		var res []core.ScanResult
		var restr int
		skipped, err := v.RunScan(func() {
			res, restr = job.scan(scs)
		})
		if err != nil {
			// Governed abort (cancellation, deadline, unrelieved budget):
			// everything not yet decided is unchecked, mirroring
			// Verifier.Run's partial-report contract.
			markUnchecked(job.checks, live)
			for _, rest := range jobs[ji+1:] {
				_, restLive := prepare(rest.checks)
				markUnchecked(rest.checks, restLive)
			}
			finalize()
			return r, err
		}
		if skipped {
			markUnchecked(job.checks, live)
			continue
		}
		*job.scanned++
		r.Stats.RestrictScans += restr
		reg.Counter(job.counter).Inc()
		merge(job.checks, live, res)
	}
	finalize()
	return r, nil
}

// AllUnchecked is the partial result for a run cut short before any scan
// could start (route simulation failed): every property unchecked.
func AllUnchecked(props []topo.TLProp) *Result {
	r := &Result{Props: props, Verdicts: make([]Verdict, len(props)), Incomplete: true}
	for i := range r.Verdicts {
		r.Verdicts[i].Status = StatusUnchecked
	}
	r.Stats.Properties = len(props)
	r.Stats.Unchecked = len(props)
	return r
}

// groupVerdicts clusters violated properties by witness failure set,
// ordering groups by descending worst excess (ties by witness key) and
// members by descending excess (ties by property index).
func groupVerdicts(verdicts []Verdict) []Group {
	byKey := make(map[string]*Group)
	var keys []string
	for i := range verdicts {
		vd := &verdicts[i]
		if vd.Status != StatusViolated {
			continue
		}
		key := witnessKey(vd.FailedLinks, vd.FailedRouters)
		g, ok := byKey[key]
		if !ok {
			g = &Group{FailedLinks: vd.FailedLinks, FailedRouters: vd.FailedRouters}
			byKey[key] = g
			keys = append(keys, key)
		}
		g.Props = append(g.Props, i)
		if vd.Excess > g.MaxExcess {
			g.MaxExcess = vd.Excess
		}
	}
	for _, g := range byKey {
		vs := verdicts
		sort.SliceStable(g.Props, func(a, b int) bool {
			return vs[g.Props[a]].Excess > vs[g.Props[b]].Excess
		})
	}
	sort.SliceStable(keys, func(a, b int) bool {
		ga, gb := byKey[keys[a]], byKey[keys[b]]
		if ga.MaxExcess != gb.MaxExcess {
			return ga.MaxExcess > gb.MaxExcess
		}
		return keys[a] < keys[b]
	})
	out := make([]Group, len(keys))
	for i, k := range keys {
		out[i] = *byKey[k]
	}
	return out
}

// witnessKey renders a failure set canonically for grouping.
func witnessKey(links []topo.LinkID, routers []topo.RouterID) string {
	var sb strings.Builder
	for _, l := range links {
		fmt.Fprintf(&sb, "l%d,", l)
	}
	for _, r := range routers {
		fmt.Fprintf(&sb, "r%d,", r)
	}
	return sb.String()
}
