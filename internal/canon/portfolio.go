package canon

import (
	"fmt"
	"strings"

	"github.com/yu-verify/yu/internal/tlp"
	"github.com/yu-verify/yu/internal/topo"
)

// FormatProp renders one portfolio property in the `tlp` DSL form (the
// text ParsePortfolio accepts back).
func FormatProp(net *topo.Network, p topo.TLProp) string {
	var sb strings.Builder
	writeProp(&sb, net, p)
	return sb.String()
}

func writeProp(sb *strings.Builder, net *topo.Network, p topo.TLProp) {
	linkName := func() string {
		l := net.Link(p.Link)
		a, b := net.Router(l.A).Name, net.Router(l.B).Name
		if p.DirSpecified {
			if p.Dir == topo.BtoA {
				a, b = b, a
			}
			return a + "->" + b
		}
		return a + "-" + b
	}
	switch p.Kind {
	case topo.TLPLinkLoad:
		if p.DirSpecified {
			fmt.Fprintf(sb, "dirlink %s", linkName())
		} else {
			fmt.Fprintf(sb, "link %s", linkName())
		}
		writeBounds(sb, p.Min, p.Max)
	case topo.TLPUtil:
		fmt.Fprintf(sb, "util %s", ftoa(p.Factor))
		if !p.AllLinks {
			if p.DirSpecified {
				fmt.Fprintf(sb, " dirlink %s", linkName())
			} else {
				fmt.Fprintf(sb, " link %s", linkName())
			}
		}
	case topo.TLPDelivered:
		fmt.Fprintf(sb, "delivered %s", p.Prefix)
		writeBounds(sb, p.Min, p.Max)
	case topo.TLPRatio:
		fmt.Fprintf(sb, "ratio %s", p.Prefix)
		writeBounds(sb, p.Min, p.Max)
	case topo.TLPSumLoad:
		fmt.Fprintf(sb, "sumload %s", p.SetName)
		writeBounds(sb, p.Min, p.Max)
	case topo.TLPMaxLoad:
		fmt.Fprintf(sb, "maxload %s", p.SetName)
		writeBounds(sb, p.Min, p.Max)
	default:
		fmt.Fprintf(sb, "unknown-kind-%d", int(p.Kind))
	}
	if p.CondSet {
		l := net.Link(p.CondLink)
		fmt.Fprintf(sb, " if-failed %s-%s", net.Router(l.A).Name, net.Router(l.B).Name)
	}
}

// FormatPortfolio renders a portfolio evaluation canonically: every
// deterministic field and no wall-clock fields, so two evaluations of the
// same portfolio against the same network are byte-identical exactly when
// they agree. Violations appear grouped by witness failure set in the
// engine's ranking order (descending excess).
func FormatPortfolio(net *topo.Network, r *tlp.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "holds %v\n", r.Holds)
	fmt.Fprintf(&sb, "properties %d violated %d vacuous %d unchecked %d\n",
		r.Stats.Properties, r.Stats.Violations, countStatus(r, tlp.StatusVacuous), r.Stats.Unchecked)
	for _, g := range r.Groups {
		sb.WriteString("group when")
		if len(g.FailedLinks) == 0 && len(g.FailedRouters) == 0 {
			sb.WriteString(" nothing fails")
		}
		for _, l := range g.FailedLinks {
			fmt.Fprintf(&sb, " link %s", net.LinkName(l))
		}
		for _, rt := range g.FailedRouters {
			fmt.Fprintf(&sb, " router %s", net.Router(rt).Name)
		}
		fmt.Fprintf(&sb, " max-excess %.9g\n", g.MaxExcess)
		for _, pi := range g.Props {
			vd := r.Verdicts[pi]
			sb.WriteString("  ")
			writeProp(&sb, net, r.Props[pi])
			fmt.Fprintf(&sb, " value %.9g excess %.9g\n", vd.Value, vd.Excess)
		}
	}
	for i, vd := range r.Verdicts {
		if vd.Status != tlp.StatusUnchecked {
			continue
		}
		sb.WriteString("unchecked ")
		writeProp(&sb, net, r.Props[i])
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "scans link %d delivered %d restrict %d checks %d",
		r.Stats.LinkScans, r.Stats.DeliveredScans, r.Stats.RestrictScans, r.Stats.Checks)
	if r.Stats.AggScans > 0 {
		// Printed only when aggregates exist so historical portfolio
		// renderings stay byte-identical.
		fmt.Fprintf(&sb, " agg %d", r.Stats.AggScans)
	}
	sb.WriteByte('\n')
	if r.Incomplete {
		sb.WriteString("incomplete true\n")
	}
	return sb.String()
}

// portfolioLinks lists the link IDs a property names in the DSL (subject
// and guard), for name-safety validation.
func portfolioLinks(p topo.TLProp) []topo.LinkID {
	var out []topo.LinkID
	if p.Kind == topo.TLPLinkLoad || (p.Kind == topo.TLPUtil && !p.AllLinks) {
		out = append(out, p.Link)
	}
	out = append(out, p.AggLinks...)
	if p.CondSet {
		out = append(out, p.CondLink)
	}
	return out
}

func countStatus(r *tlp.Result, s tlp.Status) int {
	n := 0
	for _, vd := range r.Verdicts {
		if vd.Status == s {
			n++
		}
	}
	return n
}
