package canon

import (
	"fmt"
	"sort"
	"strings"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/core"
	"github.com/yu-verify/yu/internal/topo"
)

// ViolationKeys renders each violation to its property identity — the
// kind plus the directed link (or prefix) it is about — deduplicated and
// sorted. Two verification runs flag "the same violations" when these key
// sets are equal; witnesses and values may legitimately differ between
// engines (any in-budget counterexample is a correct answer).
func ViolationKeys(net *topo.Network, vs []core.Violation) []string {
	set := make(map[string]bool)
	for _, v := range vs {
		switch v.Kind {
		case "link-load":
			set["link-load "+net.DirLinkName(v.Link)] = true
		case "delivered":
			set["delivered "+v.Prefix.String()] = true
		default:
			set["unknown "+v.Kind] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FormatReport renders a verification report canonically: every
// deterministic field, no wall-clock fields. Two runs of the pipeline are
// "byte-identical" exactly when their FormatReport strings are equal —
// the contract the parallel pipeline and the spec round-trip are held to.
func FormatReport(net *topo.Network, rep *yu.Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "holds %v\n", rep.Holds)
	fmt.Fprintf(&sb, "flows %d executed %d\n", rep.FlowsTotal, rep.FlowsExecuted)
	fmt.Fprintf(&sb, "violations %d\n", len(rep.Violations))
	for _, v := range rep.Violations {
		switch v.Kind {
		case "link-load":
			fmt.Fprintf(&sb, "  link-load %s", net.DirLinkName(v.Link))
		case "delivered":
			fmt.Fprintf(&sb, "  delivered %s", v.Prefix)
		default:
			fmt.Fprintf(&sb, "  %s", v.Kind)
		}
		fmt.Fprintf(&sb, " value %.9g min %.9g max %.9g when", v.Value, v.Min, v.Max)
		if len(v.FailedLinks) == 0 && len(v.FailedRouters) == 0 {
			sb.WriteString(" nothing fails")
		}
		for _, l := range v.FailedLinks {
			fmt.Fprintf(&sb, " link %s", net.LinkName(l))
		}
		for _, r := range v.FailedRouters {
			fmt.Fprintf(&sb, " router %s", net.Router(r).Name)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "checks %d\n", len(rep.LinkStats))
	for _, st := range rep.LinkStats {
		if st.Kind == "delivered" {
			fmt.Fprintf(&sb, "  delivered %s flows %d classes %d\n", st.Prefix, st.Flows, st.Classes)
		} else {
			fmt.Fprintf(&sb, "  link %s flows %d classes %d\n", net.DirLinkName(st.Link), st.Flows, st.Classes)
		}
	}
	// Governance fields, printed only when set so complete runs keep their
	// historical rendering.
	if rep.Incomplete {
		fmt.Fprintf(&sb, "incomplete true\n")
	}
	if len(rep.Unchecked) > 0 {
		names := make([]string, len(rep.Unchecked))
		for i, l := range rep.Unchecked {
			names[i] = net.DirLinkName(l)
		}
		sort.Strings(names)
		fmt.Fprintf(&sb, "unchecked links %s\n", strings.Join(names, " "))
	}
	if len(rep.UncheckedDelivered) > 0 {
		names := make([]string, len(rep.UncheckedDelivered))
		for i, p := range rep.UncheckedDelivered {
			names[i] = p.String()
		}
		sort.Strings(names)
		fmt.Fprintf(&sb, "unchecked delivered %s\n", strings.Join(names, " "))
	}
	if len(rep.DegradedFlows) > 0 {
		names := append([]string(nil), rep.DegradedFlows...)
		sort.Strings(names)
		fmt.Fprintf(&sb, "degraded flows %s\n", strings.Join(names, " "))
	}
	return sb.String()
}
