package mtbdd

import (
	"math"
	"testing"
)

func newMgr(t testing.TB, n int) *Manager {
	t.Helper()
	m := New()
	for i := 0; i < n; i++ {
		m.AddVar("x" + string(rune('0'+i)))
	}
	return m
}

// allAssignments invokes fn with every assignment of n variables.
func allAssignments(n int, fn func(assign []bool)) {
	assign := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			assign[i] = mask&(1<<i) != 0
		}
		fn(assign)
	}
}

func failures(assign []bool) int {
	c := 0
	for _, a := range assign {
		if !a {
			c++
		}
	}
	return c
}

func TestConstHashConsing(t *testing.T) {
	m := newMgr(t, 0)
	if m.Const(2.5) != m.Const(2.5) {
		t.Error("equal constants must be the same node")
	}
	if m.Const(0) != m.Zero() || m.Const(1) != m.One() {
		t.Error("Zero/One must alias Const(0)/Const(1)")
	}
	if m.Const(math.Copysign(0, -1)) != m.Zero() {
		t.Error("-0 must normalize to +0")
	}
	if m.Const(2.5) == m.Const(3.5) {
		t.Error("distinct constants must differ")
	}
}

func TestConstNaNPanics(t *testing.T) {
	m := newMgr(t, 0)
	defer func() {
		if recover() == nil {
			t.Error("Const(NaN) must panic")
		}
	}()
	m.Const(math.NaN())
}

func TestVarEval(t *testing.T) {
	m := newMgr(t, 3)
	x1 := m.Var(1)
	if got := m.Eval(x1, []bool{true, true, true}); got != 1 {
		t.Errorf("x1(1,1,1) = %v, want 1", got)
	}
	if got := m.Eval(x1, []bool{true, false, true}); got != 0 {
		t.Errorf("x1(1,0,1) = %v, want 0", got)
	}
	n1 := m.NVar(1)
	if got := m.Eval(n1, []bool{true, false, true}); got != 1 {
		t.Errorf("!x1(1,0,1) = %v, want 1", got)
	}
	if m.Not(x1) != n1 {
		t.Error("Not(Var) must equal NVar")
	}
}

func TestVarOutOfRangePanics(t *testing.T) {
	m := newMgr(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("Var(5) must panic")
		}
	}()
	m.Var(5)
}

func TestReductionRule(t *testing.T) {
	m := newMgr(t, 2)
	// x0*1 + (1-x0)*1 == 1: the node must collapse.
	f := m.ITE(m.Var(0), m.One(), m.One())
	if f != m.One() {
		t.Errorf("redundant test must collapse, got %s", m.String(f))
	}
}

// TestApplyAgainstDense cross-checks every binary op against brute-force
// evaluation on all assignments of 4 variables, for a few structured
// operand pairs.
func TestApplyAgainstDense(t *testing.T) {
	const n = 4
	m := newMgr(t, n)
	x := make([]*Node, n)
	for i := range x {
		x[i] = m.Var(i)
	}
	// A mix of guards and numeric MTBDDs.
	operands := []*Node{
		m.Zero(),
		m.One(),
		m.Const(2.5),
		x[0],
		m.Not(x[1]),
		m.And(x[0], x[2]),
		m.Or(x[1], m.And(x[2], x[3])),
		m.Add(m.Scale(3, x[0]), m.Scale(0.5, m.Mul(m.Not(x[1]), x[2]))),
		m.Add(m.Mul(x[0], m.Const(10)), m.Mul(m.Not(x[0]), m.Const(4))),
	}
	type opCase struct {
		name  string
		apply func(a, b *Node) *Node
		eval  func(a, b float64) float64
	}
	cases := []opCase{
		{"Add", m.Add, func(a, b float64) float64 { return a + b }},
		{"Sub", m.Sub, func(a, b float64) float64 { return a - b }},
		{"Mul", m.Mul, func(a, b float64) float64 { return a * b }},
		{"Div", m.Div, func(a, b float64) float64 {
			if b == 0 {
				return 0
			}
			return a / b
		}},
		{"Min", m.Min, math.Min},
		{"Max", m.Max, math.Max},
	}
	for _, tc := range cases {
		for i, f := range operands {
			for j, g := range operands {
				h := tc.apply(f, g)
				allAssignments(n, func(assign []bool) {
					want := tc.eval(m.Eval(f, assign), m.Eval(g, assign))
					got := m.Eval(h, assign)
					if got != want && !(math.IsNaN(want) && got == 0) {
						t.Fatalf("%s(op%d,op%d)(%v) = %v, want %v", tc.name, i, j, assign, got, want)
					}
				})
			}
		}
	}
}

func TestBooleanOpsAgainstDense(t *testing.T) {
	const n = 3
	m := newMgr(t, n)
	guards := []*Node{
		m.Zero(), m.One(),
		m.Var(0), m.Var(1), m.Not(m.Var(2)),
		m.And(m.Var(0), m.Var(1)),
		m.Or(m.Not(m.Var(0)), m.Var(2)),
		m.Xor(m.Var(1), m.Var(2)),
	}
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	for _, f := range guards {
		for _, g := range guards {
			and, or, xor := m.And(f, g), m.Or(f, g), m.Xor(f, g)
			notf := m.Not(f)
			allAssignments(n, func(assign []bool) {
				fv := m.Eval(f, assign) != 0
				gv := m.Eval(g, assign) != 0
				if m.Eval(and, assign) != b2f(fv && gv) {
					t.Fatalf("And mismatch at %v", assign)
				}
				if m.Eval(or, assign) != b2f(fv || gv) {
					t.Fatalf("Or mismatch at %v", assign)
				}
				if m.Eval(xor, assign) != b2f(fv != gv) {
					t.Fatalf("Xor mismatch at %v", assign)
				}
				if m.Eval(notf, assign) != b2f(!fv) {
					t.Fatalf("Not mismatch at %v", assign)
				}
			})
		}
	}
}

func TestAlgebraicIdentities(t *testing.T) {
	m := newMgr(t, 4)
	f := m.Add(m.Scale(2, m.Var(0)), m.Mul(m.Not(m.Var(1)), m.Const(7)))
	g := m.Mul(m.Var(2), m.Const(3))
	if m.Add(f, g) != m.Add(g, f) {
		t.Error("Add must commute (canonical nodes)")
	}
	if m.Mul(f, g) != m.Mul(g, f) {
		t.Error("Mul must commute")
	}
	if m.Sub(f, f) != m.Zero() {
		t.Error("f - f must be 0")
	}
	if m.Add(f, m.Zero()) != f {
		t.Error("f + 0 must be f")
	}
	if m.Mul(f, m.One()) != f {
		t.Error("f * 1 must be f")
	}
	if m.Mul(f, m.Zero()) != m.Zero() {
		t.Error("f * 0 must be 0")
	}
	if m.Div(f, m.One()) != f {
		t.Error("f / 1 must be f")
	}
	h := m.Var(3)
	lhs := m.Mul(f, m.Add(g, h))
	rhs := m.Add(m.Mul(f, g), m.Mul(f, h))
	if lhs != rhs {
		t.Error("Mul must distribute over Add on canonical nodes")
	}
}

func TestITE(t *testing.T) {
	const n = 3
	m := newMgr(t, n)
	g := m.And(m.Var(0), m.Not(m.Var(1)))
	f := m.Const(30)
	h := m.Scale(10, m.Var(2))
	ite := m.ITE(g, f, h)
	allAssignments(n, func(assign []bool) {
		var want float64
		if m.Eval(g, assign) != 0 {
			want = m.Eval(f, assign)
		} else {
			want = m.Eval(h, assign)
		}
		if got := m.Eval(ite, assign); got != want {
			t.Fatalf("ITE(%v) = %v, want %v", assign, got, want)
		}
	})
	if m.ITE(m.One(), f, h) != f || m.ITE(m.Zero(), f, h) != h {
		t.Error("ITE constant-guard shortcuts broken")
	}
}

func TestRestrict(t *testing.T) {
	const n = 3
	m := newMgr(t, n)
	f := m.Add(m.Mul(m.Var(0), m.Const(4)), m.Mul(m.And(m.Not(m.Var(1)), m.Var(2)), m.Const(9)))
	for v := 0; v < n; v++ {
		for _, val := range []bool{false, true} {
			r := m.Restrict(f, v, val)
			allAssignments(n, func(assign []bool) {
				forced := append([]bool(nil), assign...)
				forced[v] = val
				if got, want := m.Eval(r, assign), m.Eval(f, forced); got != want {
					t.Fatalf("Restrict(x%d=%v)(%v) = %v, want %v", v, val, assign, got, want)
				}
			})
			for _, sv := range m.Support(r) {
				if sv == v {
					t.Fatalf("Restrict left x%d in support", v)
				}
			}
		}
	}
}

func TestSupport(t *testing.T) {
	m := newMgr(t, 5)
	f := m.Add(m.Var(1), m.Mul(m.Var(3), m.Const(2)))
	got := m.Support(f)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Support = %v, want [1 3]", got)
	}
	if len(m.Support(m.Const(5))) != 0 {
		t.Error("constant support must be empty")
	}
}

func TestRangeAndTerminals(t *testing.T) {
	m := newMgr(t, 2)
	// f = 60*x0 + 25*!x0*x1  -> terminals {0, 25, 60}
	f := m.Add(m.Scale(60, m.Var(0)), m.Scale(25, m.Mul(m.Not(m.Var(0)), m.Var(1))))
	lo, hi := m.Range(f)
	if lo != 0 || hi != 60 {
		t.Errorf("Range = [%v,%v], want [0,60]", lo, hi)
	}
	terms := m.Terminals(f)
	want := []float64{0, 25, 60}
	if len(terms) != len(want) {
		t.Fatalf("Terminals = %v, want %v", terms, want)
	}
	for i := range want {
		if terms[i] != want[i] {
			t.Fatalf("Terminals = %v, want %v", terms, want)
		}
	}
}

func TestWitness(t *testing.T) {
	m := newMgr(t, 3)
	// f = 100 when x0 failed and x1 failed, else 40.
	f := m.ITE(m.And(m.Not(m.Var(0)), m.Not(m.Var(1))), m.Const(100), m.Const(40))
	a, v, ok := m.WitnessOutside(f, 0, 95)
	if !ok {
		t.Fatal("expected a violation witness")
	}
	if v != 100 {
		t.Errorf("witness value = %v, want 100", v)
	}
	if len(a.FailedVars()) != 2 {
		t.Errorf("witness failures = %v, want x0,x1", a.FailedVars())
	}
	if _, _, ok := m.WitnessOutside(f, 0, 100); ok {
		t.Error("no witness expected when range covers all terminals")
	}
	// Witness must prefer fewer failures: 40 is reachable all-alive.
	a2, v2, ok := m.Witness(f, func(x float64) bool { return x == 40 })
	if !ok || v2 != 40 {
		t.Fatal("expected witness for 40")
	}
	if len(a2.FailedVars()) != 0 {
		t.Errorf("witness should prefer the all-alive path, got failures %v", a2.FailedVars())
	}
}

func TestForEachPathEarlyStop(t *testing.T) {
	m := newMgr(t, 4)
	f := m.Add(m.Var(0), m.Add(m.Var(1), m.Add(m.Var(2), m.Var(3))))
	count := 0
	m.ForEachPath(f, func(a Assignment, v float64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d paths, want 3", count)
	}
}

func TestEvalPartialAssignmentDefaultsAlive(t *testing.T) {
	m := newMgr(t, 3)
	f := m.Var(2)
	if got := m.Eval(f, []bool{false}); got != 1 {
		t.Errorf("unassigned variables must default to alive, got %v", got)
	}
}

func TestSumOrAllAndAll(t *testing.T) {
	m := newMgr(t, 3)
	xs := []*Node{m.Var(0), m.Var(1), m.Var(2)}
	sum := m.Sum(xs)
	allAssignments(3, func(assign []bool) {
		want := 0.0
		for _, a := range assign {
			if a {
				want++
			}
		}
		if got := m.Eval(sum, assign); got != want {
			t.Fatalf("Sum(%v) = %v, want %v", assign, got, want)
		}
	})
	if m.Sum(nil) != m.Zero() || m.OrAll(nil) != m.Zero() || m.AndAll(nil) != m.One() {
		t.Error("empty aggregate identities broken")
	}
	or := m.OrAll(xs)
	and := m.AndAll(xs)
	allAssignments(3, func(assign []bool) {
		anyv, allv := false, true
		for _, a := range assign {
			anyv = anyv || a
			allv = allv && a
		}
		if (m.Eval(or, assign) != 0) != anyv {
			t.Fatalf("OrAll mismatch at %v", assign)
		}
		if (m.Eval(and, assign) != 0) != allv {
			t.Fatalf("AndAll mismatch at %v", assign)
		}
	})
}

func TestNodeCount(t *testing.T) {
	m := newMgr(t, 2)
	if m.NodeCount(m.Zero()) != 1 {
		t.Error("terminal node count must be 1")
	}
	x0 := m.Var(0)
	if got := m.NodeCount(x0); got != 3 {
		t.Errorf("Var node count = %d, want 3", got)
	}
	if got := m.NodeCountMulti([]*Node{x0, m.Var(1)}); got != 4 {
		// x0 node, x1 node, shared 0 and 1 terminals.
		t.Errorf("NodeCountMulti = %d, want 4", got)
	}
}

func TestStatsAndClearCaches(t *testing.T) {
	m := newMgr(t, 4)
	f := m.Add(m.Var(0), m.Var(1))
	g := m.Add(m.Var(0), m.Var(1)) // must hit cache
	if f != g {
		t.Fatal("hash-consing broken")
	}
	st := m.Stats()
	if st.ApplyHits == 0 {
		t.Error("expected apply cache hits")
	}
	if st.Created == 0 || st.Live == 0 {
		t.Error("stats must count created/live nodes")
	}
	m.ClearCaches()
	if m.Add(m.Var(0), m.Var(1)) != f {
		t.Error("results must be stable across ClearCaches")
	}
}

// TestDotOutput sanity-checks the DOT rendering.
func TestDotOutput(t *testing.T) {
	m := newMgr(t, 2)
	f := m.And(m.Var(0), m.Not(m.Var(1)))
	dot := m.Dot(f, "test")
	for _, want := range []string{"digraph", "x0", "x1", "style=dashed", "style=solid"} {
		if !contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestStringRendering(t *testing.T) {
	m := newMgr(t, 2)
	if got := m.String(m.Const(3)); got != "3" {
		t.Errorf("String(3) = %q", got)
	}
	f := m.Scale(0.5, m.Var(0))
	s := m.String(f)
	if !contains(s, "0.5") || !contains(s, "x0") {
		t.Errorf("String = %q, want mention of 0.5 and x0", s)
	}
}
