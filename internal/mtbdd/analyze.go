package mtbdd

import (
	"fmt"
	"sort"
	"strings"
)

// Assignment is a partial assignment of failure variables: the variables a
// root-to-terminal path actually tested. Variables absent from the map are
// don't-cares (conventionally treated as alive).
type Assignment map[int]bool

// FailedVars returns the sorted list of variables assigned 0 (failed).
func (a Assignment) FailedVars() []int {
	var out []int
	for v, alive := range a {
		if !alive {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	c := make(Assignment, len(a))
	for k, v := range a {
		c[k] = v
	}
	return c
}

// String formats the assignment as e.g. "{x1=0 x3=1}" using variable
// indices (names are resolved by the caller, which knows the Manager).
func (a Assignment) String() string {
	vars := make([]int, 0, len(a))
	for v := range a {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range vars {
		if i > 0 {
			b.WriteByte(' ')
		}
		bit := 1
		if !a[v] {
			bit = 0
		}
		fmt.Fprintf(&b, "x%d=%d", v, bit)
	}
	b.WriteByte('}')
	return b.String()
}

// Terminals returns the sorted distinct terminal values reachable in f.
func (m *Manager) Terminals(f *Node) []float64 {
	seen := m.newBitset()
	var out []float64
	var walk func(n *Node)
	walk = func(n *Node) {
		if seen.visit(n.id) {
			return
		}
		if n.IsTerminal() {
			out = append(out, n.Value)
			return
		}
		walk(n.Lo)
		walk(n.Hi)
	}
	walk(f)
	sort.Float64s(out)
	return out
}

// MinValue returns the minimum terminal value reachable in f.
func (m *Manager) MinValue(f *Node) float64 {
	lo, _ := m.Range(f)
	return lo
}

// MaxValue returns the maximum terminal value reachable in f.
func (m *Manager) MaxValue(f *Node) float64 {
	_, hi := m.Range(f)
	return hi
}

// valueRange is a (min, max) pair of terminal values.
type valueRange struct{ lo, hi float64 }

// Range returns the minimum and maximum terminal values reachable in f.
// Results are cached in the Manager (backed by a lossy table, with a
// per-call exact memo guaranteeing linear cost), making repeated bound
// queries — the early-termination pruning of verification — nearly free.
func (m *Manager) Range(f *Node) (lo, hi float64) {
	var local map[*Node]valueRange
	var walk func(n *Node) valueRange
	walk = func(n *Node) valueRange {
		if n.IsTerminal() {
			return valueRange{n.Value, n.Value}
		}
		if l, h, ok := m.rangeTbl.get(n.id); ok {
			m.rangeHits++
			return valueRange{l, h}
		}
		m.rangeMisses++
		if local == nil {
			local = make(map[*Node]valueRange)
		} else if r, ok := local[n]; ok {
			return r
		}
		a, b := walk(n.Lo), walk(n.Hi)
		r := valueRange{a.lo, a.hi}
		if b.lo < r.lo {
			r.lo = b.lo
		}
		if b.hi > r.hi {
			r.hi = b.hi
		}
		local[n] = r
		m.rangeTbl.put(n.id, r.lo, r.hi)
		return r
	}
	r := walk(f)
	return r.lo, r.hi
}

// Witness returns one assignment under which f evaluates to a value v
// satisfying pred, along with that value. The assignment records only the
// variables on the discovered path (Theorem 5.1: for a KReduce'd MTBDD this
// encodes at most k failures). Returns ok=false if no terminal satisfies
// pred. Among satisfying paths it prefers those with fewer failures.
func (m *Manager) Witness(f *Node, pred func(float64) bool) (Assignment, float64, bool) {
	// First mark nodes that can reach a satisfying terminal.
	reach := make(map[*Node]bool)
	var mark func(n *Node) bool
	mark = func(n *Node) bool {
		if r, ok := reach[n]; ok {
			return r
		}
		var r bool
		if n.IsTerminal() {
			r = pred(n.Value)
		} else {
			// Order matters only for path choice, not markings.
			hi := mark(n.Hi)
			lo := mark(n.Lo)
			r = hi || lo
		}
		reach[n] = r
		return r
	}
	if !mark(f) {
		return nil, 0, false
	}
	// Greedily descend, preferring Hi (alive) to minimize failures.
	a := make(Assignment)
	n := f
	for !n.IsTerminal() {
		if reach[n.Hi] {
			a[int(n.Level)] = true
			n = n.Hi
		} else {
			a[int(n.Level)] = false
			n = n.Lo
		}
	}
	return a, n.Value, true
}

// WitnessOutside returns an assignment under which f's value falls outside
// the closed interval [lo, hi], if any. This is the TLP violation check of
// §4.5/Theorem 5.1 specialized to a range property.
func (m *Manager) WitnessOutside(f *Node, lo, hi float64) (Assignment, float64, bool) {
	return m.Witness(f, func(v float64) bool { return v < lo || v > hi })
}

// ForEachPath invokes fn for every root-to-terminal path in f with the
// path's (partial) assignment and terminal value. fn returning false stops
// the walk. The assignment passed to fn is reused between calls; clone it
// if it must be retained.
func (m *Manager) ForEachPath(f *Node, fn func(Assignment, float64) bool) {
	a := make(Assignment)
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		if n.IsTerminal() {
			return fn(a, n.Value)
		}
		v := int(n.Level)
		a[v] = false
		if !walk(n.Lo) {
			delete(a, v)
			return false
		}
		a[v] = true
		if !walk(n.Hi) {
			delete(a, v)
			return false
		}
		delete(a, v)
		return true
	}
	walk(f)
}

// Dot renders f in Graphviz DOT format, naming variables via the Manager.
func (m *Manager) Dot(f *Node, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph mtbdd {\n  label=%q;\n  rankdir=TB;\n", title)
	seen := make(map[*Node]struct{})
	var walk func(n *Node)
	walk = func(n *Node) {
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = struct{}{}
		if n.IsTerminal() {
			fmt.Fprintf(&b, "  n%d [shape=box,label=%q];\n", n.id, trimFloat(n.Value))
			return
		}
		fmt.Fprintf(&b, "  n%d [shape=circle,label=%q];\n", n.id, m.VarName(int(n.Level)))
		fmt.Fprintf(&b, "  n%d -> n%d [style=dashed];\n", n.id, n.Lo.id)
		fmt.Fprintf(&b, "  n%d -> n%d [style=solid];\n", n.id, n.Hi.id)
		walk(n.Lo)
		walk(n.Hi)
	}
	walk(f)
	b.WriteString("}\n")
	return b.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

// String renders f as a sum-of-paths expression, mainly for tests and small
// examples; large MTBDDs are summarized by node count.
func (m *Manager) String(f *Node) string {
	if f.IsTerminal() {
		return trimFloat(f.Value)
	}
	const maxPaths = 16
	var parts []string
	count := 0
	m.ForEachPath(f, func(a Assignment, v float64) bool {
		count++
		if count > maxPaths {
			return false
		}
		if v == 0 {
			return true
		}
		vars := make([]int, 0, len(a))
		for vv := range a {
			vars = append(vars, vv)
		}
		sort.Ints(vars)
		var lits []string
		for _, vv := range vars {
			name := m.VarName(vv)
			if !a[vv] {
				name = "!" + name
			}
			lits = append(lits, name)
		}
		term := strings.Join(lits, "&")
		if v != 1 {
			term = trimFloat(v) + "*" + term
		}
		parts = append(parts, term)
		return true
	})
	if count > maxPaths {
		return fmt.Sprintf("<mtbdd %d nodes>", m.NodeCount(f))
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " + ")
}
