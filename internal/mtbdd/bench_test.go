package mtbdd

import (
	"math/rand"
	"testing"
)

// Microbenchmarks for the fused-kernel layer (ISSUE 5): each pair
// measures one fusion against the composed pipeline it replaces, on
// operand shapes sized like symbolic traffic execution intermediates.
// CI runs these with -benchtime=1x purely as a bit-rot tripwire; real
// numbers come from `yubench -exp kernels` (EXPERIMENTS.md).

const benchVars = 24

func benchSetup(b *testing.B, seed int64) (*Manager, *rand.Rand) {
	b.Helper()
	m := New()
	for i := 0; i < benchVars; i++ {
		m.AddVar("x")
	}
	return m, rand.New(rand.NewSource(seed))
}

// BenchmarkApplyThenReduce is the pre-fusion shape: build the full sum,
// then KREDUCE it. Compare with BenchmarkFusedAddK.
func BenchmarkApplyThenReduce(b *testing.B) {
	m, r := benchSetup(b, 61)
	f := randomMTBDD(m, r, benchVars, 12)
	g := randomMTBDD(m, r, benchVars, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ClearCaches()
		m.KReduce(m.Add(f, g), 2)
	}
}

// BenchmarkFusedAddK is the same sum through the k-budgeted kernel: the
// unreduced intermediate is never built.
func BenchmarkFusedAddK(b *testing.B) {
	m, r := benchSetup(b, 61)
	f := randomMTBDD(m, r, benchVars, 12)
	g := randomMTBDD(m, r, benchVars, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ClearCaches()
		m.AddK(f, g, 2)
	}
}

// BenchmarkMulThenAddThenReduce is the composed weighted-accumulate:
// product, sum, reduce — three full traversals with two intermediates.
func BenchmarkMulThenAddThenReduce(b *testing.B) {
	m, r := benchSetup(b, 62)
	acc := randomMTBDD(m, r, benchVars, 10)
	w := randomMTBDD(m, r, benchVars, 10)
	f := randomMTBDD(m, r, benchVars, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ClearCaches()
		m.KReduce(m.Add(acc, m.Mul(w, f)), 2)
	}
}

// BenchmarkFusedMulAddK is the same accumulate as one ternary DFS.
func BenchmarkFusedMulAddK(b *testing.B) {
	m, r := benchSetup(b, 62)
	acc := randomMTBDD(m, r, benchVars, 10)
	w := randomMTBDD(m, r, benchVars, 10)
	f := randomMTBDD(m, r, benchVars, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ClearCaches()
		m.MulAddK(acc, w, f, 2)
	}
}

// benchGuards builds the selection-guard slices the n-ary kernels see.
func benchGuards(m *Manager, r *rand.Rand, count int) []*Node {
	fs := make([]*Node, count)
	for i := range fs {
		fs[i] = randomGuard(m, r, benchVars, 6)
	}
	return fs
}

// BenchmarkSumPairwiseReduce is the legacy left-fold accumulation with a
// trailing reduce. Compare with BenchmarkAddNK.
func BenchmarkSumPairwiseReduce(b *testing.B) {
	m, r := benchSetup(b, 63)
	fs := benchGuards(m, r, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ClearCaches()
		m.KReduce(m.Sum(fs), 2)
	}
}

// BenchmarkAddNK is the balanced fused tree over the same guards.
func BenchmarkAddNK(b *testing.B) {
	m, r := benchSetup(b, 63)
	fs := benchGuards(m, r, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ClearCaches()
		m.AddNK(fs, 2)
	}
}

// mapNodeCount is the retired map-based walker, kept here as the
// baseline the id-keyed bitset replaced.
func mapNodeCount(n *Node) int {
	seen := make(map[*Node]struct{})
	var walk func(*Node) int
	walk = func(n *Node) int {
		if _, ok := seen[n]; ok {
			return 0
		}
		seen[n] = struct{}{}
		if n.IsTerminal() {
			return 1
		}
		return 1 + walk(n.Lo) + walk(n.Hi)
	}
	return walk(n)
}

// BenchmarkNodeCountMap walks with the old map visited-set.
func BenchmarkNodeCountMap(b *testing.B) {
	m, r := benchSetup(b, 64)
	f := randomMTBDD(m, r, benchVars, 13)
	want := m.NodeCount(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := mapNodeCount(f); got != want {
			b.Fatalf("map walker counted %d, bitset %d", got, want)
		}
	}
}

// BenchmarkNodeCountBitset walks with the id-keyed bitset (the shipped
// implementation).
func BenchmarkNodeCountBitset(b *testing.B) {
	m, r := benchSetup(b, 64)
	f := randomMTBDD(m, r, benchVars, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.NodeCount(f)
	}
}
