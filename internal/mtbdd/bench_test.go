package mtbdd

import (
	"math/rand"
	"testing"
)

// Microbenchmarks for the fused-kernel layer (ISSUE 5): each pair
// measures one fusion against the composed pipeline it replaces, on
// operand shapes sized like symbolic traffic execution intermediates.
// CI runs these with -benchtime=1x purely as a bit-rot tripwire; real
// numbers come from `yubench -exp kernels` (EXPERIMENTS.md).

const benchVars = 24

func benchSetup(b *testing.B, seed int64) (*Manager, *rand.Rand) {
	b.Helper()
	m := New()
	for i := 0; i < benchVars; i++ {
		m.AddVar("x")
	}
	return m, rand.New(rand.NewSource(seed))
}

// BenchmarkApplyThenReduce is the pre-fusion shape: build the full sum,
// then KREDUCE it. Compare with BenchmarkFusedAddK.
func BenchmarkApplyThenReduce(b *testing.B) {
	m, r := benchSetup(b, 61)
	f := randomMTBDD(m, r, benchVars, 12)
	g := randomMTBDD(m, r, benchVars, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ClearCaches()
		m.KReduce(m.Add(f, g), 2)
	}
}

// BenchmarkFusedAddK is the same sum through the k-budgeted kernel: the
// unreduced intermediate is never built.
func BenchmarkFusedAddK(b *testing.B) {
	m, r := benchSetup(b, 61)
	f := randomMTBDD(m, r, benchVars, 12)
	g := randomMTBDD(m, r, benchVars, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ClearCaches()
		m.AddK(f, g, 2)
	}
}

// BenchmarkMulThenAddThenReduce is the composed weighted-accumulate:
// product, sum, reduce — three full traversals with two intermediates.
func BenchmarkMulThenAddThenReduce(b *testing.B) {
	m, r := benchSetup(b, 62)
	acc := randomMTBDD(m, r, benchVars, 10)
	w := randomMTBDD(m, r, benchVars, 10)
	f := randomMTBDD(m, r, benchVars, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ClearCaches()
		m.KReduce(m.Add(acc, m.Mul(w, f)), 2)
	}
}

// BenchmarkFusedMulAddK is the same accumulate as one ternary DFS.
func BenchmarkFusedMulAddK(b *testing.B) {
	m, r := benchSetup(b, 62)
	acc := randomMTBDD(m, r, benchVars, 10)
	w := randomMTBDD(m, r, benchVars, 10)
	f := randomMTBDD(m, r, benchVars, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ClearCaches()
		m.MulAddK(acc, w, f, 2)
	}
}

// benchGuards builds the selection-guard slices the n-ary kernels see.
func benchGuards(m *Manager, r *rand.Rand, count int) []*Node {
	fs := make([]*Node, count)
	for i := range fs {
		fs[i] = randomGuard(m, r, benchVars, 6)
	}
	return fs
}

// BenchmarkSumPairwiseReduce is the legacy left-fold accumulation with a
// trailing reduce. Compare with BenchmarkAddNK.
func BenchmarkSumPairwiseReduce(b *testing.B) {
	m, r := benchSetup(b, 63)
	fs := benchGuards(m, r, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ClearCaches()
		m.KReduce(m.Sum(fs), 2)
	}
}

// BenchmarkAddNK is the balanced fused tree over the same guards.
func BenchmarkAddNK(b *testing.B) {
	m, r := benchSetup(b, 63)
	fs := benchGuards(m, r, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ClearCaches()
		m.AddNK(fs, 2)
	}
}

// --- fused computed-cache tuning (ISSUE 10) ---
//
// directFusedCache is the retired fused-table design: 19 bits,
// direct-mapped, op and k folded in as bare shifts. Kept as the baseline
// the 2-way multiplier-mixed table replaced; the churn benchmarks replay
// the same key trace through both and report the achieved hit rate.

type directFusedCache struct {
	entries []fusedEntry
	mask    uint64
}

func newDirectFusedCache() *directFusedCache {
	size := 1 << 19
	return &directFusedCache{entries: make([]fusedEntry, size), mask: uint64(size - 1)}
}

func (t *directFusedCache) slot(op opcode, a, b, c uint64, k int32) *fusedEntry {
	h := mix64(a*0x9e3779b97f4a7c15 ^ b*0xc2b2ae3d27d4eb4f ^ c*0x27d4eb2f165667c5 ^
		uint64(op)<<56 ^ uint64(uint32(k))<<40)
	return &t.entries[h&t.mask]
}

func (t *directFusedCache) get(op opcode, a, b, c uint64, k int32) (*Node, bool) {
	e := t.slot(op, a, b, c, k)
	if e.is(op, a, b, c, k) {
		return e.res, true
	}
	return nil, false
}

func (t *directFusedCache) put(op opcode, a, b, c uint64, k int32, res *Node) {
	*t.slot(op, a, b, c, k) = fusedEntry{a, b, c, k, op, res}
}

// fusedTrace builds a key stream shaped like the budgeted kernels'
// reference pattern: sequentially-assigned operand ids (hash consing
// hands them out in order), k drawn from a small range, a binary/ternary
// mix, and each distinct key revisited several times (the recursion
// re-derives shared subproblems). Hits above the compulsory floor are
// what the cache organization controls.
func fusedTrace(r *rand.Rand, distinct, length int) []fusedEntry {
	keys := make([]fusedEntry, distinct)
	for i := range keys {
		op, c := opAdd, uint64(0)
		if i%3 == 0 {
			op, c = opMulAdd, uint64(r.Intn(1<<19)+1)
		}
		keys[i] = fusedEntry{
			a:  uint64(r.Intn(1<<19) + 1),
			b:  uint64(r.Intn(1<<19) + 1),
			c:  c,
			k:  int32(r.Intn(3)),
			op: op,
		}
	}
	trace := make([]fusedEntry, length)
	for i := range trace {
		trace[i] = keys[r.Intn(distinct)]
	}
	return trace
}

// fusedBenchRes defeats dead-code elimination and doubles as the dummy
// cached result (the caches store pointers, never dereference them).
var fusedBenchRes = &Node{id: 1}

func runFusedTrace(b *testing.B, get func(opcode, uint64, uint64, uint64, int32) (*Node, bool),
	put func(opcode, uint64, uint64, uint64, int32, *Node)) {
	b.Helper()
	// 700K distinct keys: larger than the retired table's 512K slots,
	// within the shipped table's 1M entries — the regime BENCH_PR9's
	// 20%-hit fused table was operating in.
	trace := fusedTrace(rand.New(rand.NewSource(65)), 700_000, 2_000_000)
	// Warm-up pass: absorb the compulsory misses so the reported
	// hit-rate is the steady state the cache organization controls.
	for _, key := range trace {
		if _, ok := get(key.op, key.a, key.b, key.c, key.k); !ok {
			put(key.op, key.a, key.b, key.c, key.k, fusedBenchRes)
		}
	}
	b.ResetTimer()
	var hits, lookups int
	for i := 0; i < b.N; i++ {
		for _, key := range trace {
			if _, ok := get(key.op, key.a, key.b, key.c, key.k); ok {
				hits++
			} else {
				put(key.op, key.a, key.b, key.c, key.k, fusedBenchRes)
			}
			lookups++
		}
	}
	b.ReportMetric(float64(hits)/float64(lookups), "hit-rate")
}

// BenchmarkFusedCacheDirect19 replays the trace through the retired
// design. Measured on the PR 10 host: ~0.55 steady-state hit-rate.
func BenchmarkFusedCacheDirect19(b *testing.B) {
	c := newDirectFusedCache()
	runFusedTrace(b, c.get, c.put)
}

// BenchmarkFusedCacheTwoWay20 replays the same trace through the shipped
// table. Measured on the PR 10 host: ~0.84 steady-state hit-rate at
// comparable ns/op — the conflict-miss fraction drops by ~3x.
func BenchmarkFusedCacheTwoWay20(b *testing.B) {
	c := newFusedCache()
	runFusedTrace(b, c.get, c.put)
}

// mapNodeCount is the retired map-based walker, kept here as the
// baseline the id-keyed bitset replaced.
func mapNodeCount(n *Node) int {
	seen := make(map[*Node]struct{})
	var walk func(*Node) int
	walk = func(n *Node) int {
		if _, ok := seen[n]; ok {
			return 0
		}
		seen[n] = struct{}{}
		if n.IsTerminal() {
			return 1
		}
		return 1 + walk(n.Lo) + walk(n.Hi)
	}
	return walk(n)
}

// BenchmarkNodeCountMap walks with the old map visited-set.
func BenchmarkNodeCountMap(b *testing.B) {
	m, r := benchSetup(b, 64)
	f := randomMTBDD(m, r, benchVars, 13)
	want := m.NodeCount(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := mapNodeCount(f); got != want {
			b.Fatalf("map walker counted %d, bitset %d", got, want)
		}
	}
}

// BenchmarkNodeCountBitset walks with the id-keyed bitset (the shipped
// implementation).
func BenchmarkNodeCountBitset(b *testing.B) {
	m, r := benchSetup(b, 64)
	f := randomMTBDD(m, r, benchVars, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.NodeCount(f)
	}
}
