// Package mtbdd implements multi-terminal binary decision diagrams
// (MTBDDs), the compact symbolic representation YU uses for guards,
// symbolic traffic fractions (STFs), and symbolic traffic loads (STLs).
//
// An MTBDD is a single-source directed acyclic graph whose internal nodes
// test boolean variables (in a fixed global order) and whose terminal
// nodes carry real values. It represents a pseudo-boolean function
// {0,1}^n -> R. Boolean guards are MTBDDs whose terminals are 0 and 1.
//
// All nodes are hash-consed by a Manager: structurally equal functions are
// represented by the same *Node pointer, so semantic equality checks —
// including the link-local flow-equivalence test of the paper (§5.3) —
// are single pointer comparisons.
//
// The package also implements the paper's KREDUCE operation (§5.2,
// Definition 5.2): k-failure-equivalence reduction that shrinks an MTBDD
// while preserving its value on every assignment with at most k zeros.
package mtbdd

import (
	"fmt"
	"math"
)

// Node is a hash-consed MTBDD node. Nodes must only be created through a
// Manager; two nodes from the same Manager represent the same function if
// and only if they are the same pointer.
//
// A terminal node has Level == terminalLevel and carries Value. An internal
// node tests the variable at its Level: Hi is the cofactor where the
// variable is 1 (element alive), Lo where it is 0 (element failed).
type Node struct {
	// Level is the variable index tested by this node, or terminalLevel
	// for terminals. Variables are tested in increasing Level order from
	// the root.
	Level int32
	// Value is the terminal value; meaningful only for terminals.
	Value float64
	// Lo and Hi are the cofactors for variable=0 and variable=1.
	Lo, Hi *Node
	// id is the Manager-assigned unique identifier used in cache keys.
	id uint64
}

const terminalLevel int32 = math.MaxInt32

// IsTerminal reports whether n is a terminal (constant) node.
func (n *Node) IsTerminal() bool { return n.Level == terminalLevel }

// Manager owns the unique table, operation caches, and the variable order
// for a family of MTBDDs. All operations combining nodes require that the
// nodes were created by the same Manager. A Manager is not safe for
// concurrent use; create one Manager per goroutine or synchronize
// externally.
type Manager struct {
	names  []string // variable names, indexed by level
	nextID uint64   // node ids start at 1 (0 marks empty cache slots)

	unique *uniqueTable
	terms  map[uint64]*Node // keyed by Float64bits of the value

	applyTbl   *applyCache
	negTbl     *unaryCache
	kreduceTbl *kreduceCache
	fusedTbl   *fusedCache
	rangeTbl   *rangeCache
	// importTbl memoizes cross-manager translations (see Import); keyed
	// by foreign node pointer, which is unique across source managers.
	importTbl map[*Node]*Node

	zero *Node
	one  *Node

	// Node storage. Nodes are carved out of fixed-size slabs instead of
	// being allocated one heap object each: ids are assigned sequentially,
	// so node id i lives in slab (i-1)>>slabBits, and the runtime GC scans
	// a handful of large backing arrays instead of millions of individual
	// objects. Pointers into a slab are stable (slabs are never moved or
	// resized), which hash-consing canonicity requires. Manager.GC releases
	// slabs whose nodes are all dead; the open slab keeps filling.
	slabs    [][]Node
	slabUsed int
	// spare holds pre-allocated slabs handed out by alloc before it falls
	// back to make. Reserve fills it so a known-size bulk construction
	// (e.g. ImportSnapshot replaying a shared base) runs without mid-build
	// allocation stalls.
	spare [][]Node

	// Resource governance (see interrupt.go): an optional interrupt
	// hook polled every interruptStride operations, and an optional
	// live-node budget checked on node construction.
	interrupt func() error
	opTick    uint64
	budget    int

	// stats. Cache hit/miss tallies live on the Manager — not inside the
	// cache structs — so they are cumulative over the Manager's lifetime:
	// ClearCaches (and GC, which calls it) replaces cache *contents* but
	// never resets a counter.
	created       uint64
	peakUnique    int
	applyHits     uint64
	applyMisses   uint64
	negHits       uint64
	negMisses     uint64
	kreduceHits   uint64
	kreduceMisses uint64
	rangeHits     uint64
	rangeMisses   uint64
	importHits    uint64
	importMisses  uint64
	fusedHits     uint64
	fusedMisses   uint64
	fusionCuts    uint64
	kreduceCalls  uint64
	gcRuns        uint64
}

// New creates an empty Manager with no variables. Declare variables with
// AddVar before building non-constant functions.
func New() *Manager {
	m := &Manager{
		nextID:     1,
		unique:     newUniqueTable(),
		terms:      make(map[uint64]*Node),
		applyTbl:   newApplyCache(),
		negTbl:     newUnaryCache(),
		kreduceTbl: newKReduceCache(),
		fusedTbl:   newFusedCache(),
		rangeTbl:   newRangeCache(),
		importTbl:  make(map[*Node]*Node),
	}
	m.zero = m.Const(0)
	m.one = m.Const(1)
	return m
}

// AddVar declares a new variable at the end of the variable order and
// returns its index. The name is used only for diagnostics and DOT output.
func (m *Manager) AddVar(name string) int {
	m.names = append(m.names, name)
	return len(m.names) - 1
}

// NumVars returns the number of declared variables.
func (m *Manager) NumVars() int { return len(m.names) }

// VarName returns the diagnostic name of variable v.
func (m *Manager) VarName(v int) string {
	if v < 0 || v >= len(m.names) {
		return fmt.Sprintf("x%d", v)
	}
	return m.names[v]
}

// Const returns the terminal node carrying value v. NaN is rejected with a
// panic: it would break hash-consing (NaN != NaN).
func (m *Manager) Const(v float64) *Node {
	if math.IsNaN(v) {
		panic("mtbdd: NaN terminal")
	}
	if v == 0 {
		v = 0 // normalize -0 to +0
	}
	bits := math.Float64bits(v)
	if n, ok := m.terms[bits]; ok {
		return n
	}
	n := m.alloc()
	*n = Node{Level: terminalLevel, Value: v, id: m.nextID}
	m.nextID++
	m.created++
	m.terms[bits] = n
	return n
}

const (
	// slabBits sizes the node slabs at 8192 nodes (~448 KiB each). A
	// power-of-two multiple of 64 keeps every slab's id range aligned to
	// whole bitset words, so GC's per-slab liveness scan is word-exact.
	slabBits = 13
	slabSize = 1 << slabBits
)

// alloc returns storage for the node that will receive id m.nextID.
// Ids are dense and increasing, so the slot is always the next cell of
// the open (last) slab.
func (m *Manager) alloc() *Node {
	if len(m.slabs) == 0 || m.slabUsed == slabSize {
		if n := len(m.spare); n > 0 {
			m.slabs = append(m.slabs, m.spare[n-1])
			m.spare[n-1] = nil
			m.spare = m.spare[:n-1]
		} else {
			m.slabs = append(m.slabs, make([]Node, slabSize))
		}
		m.slabUsed = 0
	}
	n := &m.slabs[len(m.slabs)-1][m.slabUsed]
	m.slabUsed++
	return n
}

// Reserve pre-allocates slab capacity for at least n additional nodes, so
// a bulk construction of known size proceeds without growth allocations.
// Capacity already free in the open slab counts; surplus spare slabs are
// kept for later. Reserving is purely an allocation hint — it never
// affects which nodes exist.
func (m *Manager) Reserve(n int) {
	free := 0
	if len(m.slabs) > 0 {
		free = slabSize - m.slabUsed
	}
	free += len(m.spare) * slabSize
	for need := n - free; need > 0; need -= slabSize {
		m.spare = append(m.spare, make([]Node, slabSize))
	}
}

// bitset is an id-keyed visited set for DAG walks: node id i maps to bit
// i-1. Sized once off nextID, it replaces map[*Node]struct{} on the hot
// analysis paths — no hashing, no per-entry allocation, and the runtime
// GC never scans it for pointers.
type bitset []uint64

func (m *Manager) newBitset() bitset {
	return make(bitset, (m.nextID+63)/64)
}

// visit marks id and reports whether it was already marked.
func (b bitset) visit(id uint64) bool {
	i := id - 1
	w, mask := i>>6, uint64(1)<<(i&63)
	if b[w]&mask != 0 {
		return true
	}
	b[w] |= mask
	return false
}

// has reports whether id is marked.
func (b bitset) has(id uint64) bool {
	i := id - 1
	return b[i>>6]&(1<<(i&63)) != 0
}

// Zero returns the 0 terminal.
func (m *Manager) Zero() *Node { return m.zero }

// One returns the 1 terminal.
func (m *Manager) One() *Node { return m.one }

// Var returns the guard MTBDD for "variable v is 1" (element alive).
func (m *Manager) Var(v int) *Node {
	m.checkVar(v)
	return m.mk(int32(v), m.zero, m.one)
}

// NVar returns the guard MTBDD for "variable v is 0" (element failed).
func (m *Manager) NVar(v int) *Node {
	m.checkVar(v)
	return m.mk(int32(v), m.one, m.zero)
}

func (m *Manager) checkVar(v int) {
	if v < 0 || v >= len(m.names) {
		panic(fmt.Sprintf("mtbdd: variable %d out of range [0,%d)", v, len(m.names)))
	}
}

// mk returns the canonical node (level, lo, hi), applying the standard
// reduction rule lo==hi => lo.
func (m *Manager) mk(level int32, lo, hi *Node) *Node {
	if lo == hi {
		return lo
	}
	if n := m.unique.lookup(level, lo.id, hi.id); n != nil {
		return n
	}
	m.checkInterrupt()
	m.checkBudget()
	n := m.alloc()
	*n = Node{Level: level, Lo: lo, Hi: hi, id: m.nextID}
	m.nextID++
	m.created++
	m.unique.insert(level, lo.id, hi.id, n)
	if m.unique.count > m.peakUnique {
		m.peakUnique = m.unique.count
	}
	return n
}

// Eval evaluates f under the given assignment. Variables beyond the length
// of assign, and variables not tested by f, do not affect the result.
// assign[v] == true means variable v is 1 (alive).
func (m *Manager) Eval(f *Node, assign []bool) float64 {
	for !f.IsTerminal() {
		v := int(f.Level)
		if v < len(assign) && !assign[v] {
			f = f.Lo
		} else {
			f = f.Hi
		}
	}
	return f.Value
}

// EvalAllAlive evaluates f with every variable set to 1.
func (m *Manager) EvalAllAlive(f *Node) float64 {
	for !f.IsTerminal() {
		f = f.Hi
	}
	return f.Value
}

// NodeCount returns the number of distinct nodes (including terminals)
// reachable from f.
func (m *Manager) NodeCount(f *Node) int {
	seen := m.newBitset()
	return countNodes(f, seen)
}

// NodeCountMulti returns the number of distinct nodes reachable from any of
// the given roots (shared nodes counted once).
func (m *Manager) NodeCountMulti(roots []*Node) int {
	seen := m.newBitset()
	total := 0
	for _, r := range roots {
		if r != nil {
			total += countNodes(r, seen)
		}
	}
	return total
}

// countNodes counts nodes reachable from n that are not yet in seen,
// marking them as it goes (so a shared seen set counts shared nodes once).
func countNodes(n *Node, seen bitset) int {
	if seen.visit(n.id) {
		return 0
	}
	count := 1
	if !n.IsTerminal() {
		count += countNodes(n.Lo, seen)
		count += countNodes(n.Hi, seen)
	}
	return count
}

// Support returns the sorted set of variables tested anywhere in f.
func (m *Manager) Support(f *Node) []int {
	seen := m.newBitset()
	inSupport := make([]bool, len(m.names))
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsTerminal() || seen.visit(n.id) {
			return
		}
		inSupport[n.Level] = true
		walk(n.Lo)
		walk(n.Hi)
	}
	walk(f)
	var out []int
	for v, in := range inSupport {
		if in {
			out = append(out, v)
		}
	}
	return out
}

// CacheStats is one operation cache's cumulative hit/miss tally. The
// counters persist across ClearCaches and GC — they count lookups over
// the Manager's lifetime, not the current cache generation.
type CacheStats struct {
	Hits   uint64
	Misses uint64
}

// Stats is a snapshot of Manager counters, used by the benchmark harness to
// report MTBDD sizes (paper Fig 16) and by the observability layer
// (DESIGN.md §11) for per-cache efficacy.
type Stats struct {
	Created    uint64 // total nodes ever created
	Live       int    // internal nodes currently in the unique table
	PeakUnique int    // high-water mark of the unique table

	// ApplyHits/ApplyMisses predate the per-cache breakdown and mirror
	// Apply.Hits/Apply.Misses; kept so existing consumers don't break.
	ApplyHits   uint64
	ApplyMisses uint64

	// Per-cache hit/miss tallies for all six operation caches. Fused is
	// the shared computed table of the k-budgeted kernels (kernels.go).
	Apply   CacheStats
	Neg     CacheStats
	KReduce CacheStats
	Range   CacheStats
	Import  CacheStats
	Fused   CacheStats

	// FusionCuts counts subproblems the fused kernels collapsed to a
	// single terminal because the zero-budget was spent — each is an
	// entire sub-MTBDD the build-then-reduce pipeline would have
	// materialized and then discarded.
	FusionCuts uint64

	// MaxProbe is the longest linear-probe run the unique table has ever
	// seen (lifetime high-water mark, surviving GC rebuilds): a direct
	// measure of hash clustering.
	MaxProbe int

	KReduceCalls uint64 // top-level KReduce invocations
	GCRuns       uint64 // completed garbage collections
}

// Stats returns a snapshot of the Manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Created:      m.created,
		Live:         m.unique.count,
		PeakUnique:   m.peakUnique,
		ApplyHits:    m.applyHits,
		ApplyMisses:  m.applyMisses,
		Apply:        CacheStats{Hits: m.applyHits, Misses: m.applyMisses},
		Neg:          CacheStats{Hits: m.negHits, Misses: m.negMisses},
		KReduce:      CacheStats{Hits: m.kreduceHits, Misses: m.kreduceMisses},
		Range:        CacheStats{Hits: m.rangeHits, Misses: m.rangeMisses},
		Import:       CacheStats{Hits: m.importHits, Misses: m.importMisses},
		Fused:        CacheStats{Hits: m.fusedHits, Misses: m.fusedMisses},
		FusionCuts:   m.fusionCuts,
		MaxProbe:     m.unique.maxProbe,
		KReduceCalls: m.kreduceCalls,
		GCRuns:       m.gcRuns,
	}
}

// ClearCaches drops all operation caches (but not the unique table). Useful
// between verification phases to bound memory. Every cache — including the
// import memo — is re-created fresh, and the cumulative hit/miss counters
// are untouched: they are counters, not cache contents.
func (m *Manager) ClearCaches() {
	m.applyTbl = newApplyCache()
	m.negTbl = newUnaryCache()
	m.kreduceTbl = newKReduceCache()
	m.fusedTbl = newFusedCache()
	m.rangeTbl = newRangeCache()
	m.importTbl = make(map[*Node]*Node)
}
