package mtbdd

import (
	"math/rand"
	"testing"
)

// TestImportRoundTrip checks the cross-manager import on random MTBDDs:
// the imported node evaluates identically on sampled assignments, has the
// same node count, and importing back into the source manager recovers
// the original pointer (structure is canonical in both managers).
func TestImportRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nvars = 12
	for trial := 0; trial < 50; trial++ {
		src := New()
		dst := New()
		for v := 0; v < nvars; v++ {
			src.AddVar("x")
			dst.AddVar("x")
		}
		f := randomMTBDD(src, rng, nvars, 3+rng.Intn(4))
		g := dst.Import(f)

		if got, want := dst.NodeCount(g), src.NodeCount(f); got != want {
			t.Fatalf("trial %d: node count %d after import, want %d", trial, got, want)
		}
		for s := 0; s < 64; s++ {
			assign := make([]bool, nvars)
			for v := range assign {
				assign[v] = rng.Intn(2) == 0
			}
			if got, want := dst.Eval(g, assign), src.Eval(f, assign); got != want {
				t.Fatalf("trial %d: Eval mismatch %v vs %v under %v", trial, got, want, assign)
			}
		}
		// Memoization: importing the same node again is pointer-stable.
		if dst.Import(f) != g {
			t.Fatalf("trial %d: repeated import returned a different node", trial)
		}
		// Round trip: importing the copy back lands on the original.
		if back := src.Import(g); back != f {
			t.Fatalf("trial %d: round-trip import did not recover the original node", trial)
		}
	}
}

// TestImportRestoresPointerEquality checks the property the parallel
// pipeline depends on: equal functions built in two different source
// managers import to the same destination node.
func TestImportRestoresPointerEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const nvars = 8
	a, b, dst := New(), New(), New()
	for v := 0; v < nvars; v++ {
		a.AddVar("x")
		b.AddVar("x")
		dst.AddVar("x")
	}
	for trial := 0; trial < 30; trial++ {
		seed := rng.Int63()
		fa := randomMTBDD(a, rand.New(rand.NewSource(seed)), nvars, 5)
		fb := randomMTBDD(b, rand.New(rand.NewSource(seed)), nvars, 5)
		ga, gb := dst.Import(fa), dst.Import(fb)
		if ga != gb {
			t.Fatalf("trial %d: same function from two managers imported to distinct nodes", trial)
		}
	}
}

// TestImportSurvivesDestinationGC checks that a destination GC invalidates
// the memo cache rather than serving stale translations.
func TestImportSurvivesDestinationGC(t *testing.T) {
	src, dst := New(), New()
	for v := 0; v < 4; v++ {
		src.AddVar("x")
		dst.AddVar("x")
	}
	f := src.Add(src.Var(0), src.Scale(2, src.Var(2)))
	g := dst.Import(f)
	dst.GC([]*Node{g}) // keeps g; clears the memo
	if dst.Import(f) != g {
		t.Fatal("re-import after GC (node kept) should hash-cons to the same node")
	}
	dst.GC(nil) // drops everything
	h := dst.Import(f)
	assign := []bool{true, false, true, false}
	if got, want := dst.Eval(h, assign), src.Eval(f, assign); got != want {
		t.Fatalf("re-import after full GC evaluates to %v, want %v", got, want)
	}
}
