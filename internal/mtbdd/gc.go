package mtbdd

// GC discards every node not reachable from the given roots: the unique
// table is rebuilt with the surviving nodes and all operation caches are
// cleared. Hash consing otherwise keeps every node ever created alive,
// which exhausts memory in long pipelines (millions of transient nodes
// arise during symbolic traffic execution).
//
// Contract: after GC, only the roots and nodes reachable from them may be
// passed to further Manager operations. Any other retained *Node would
// alias a semantically identical node created later, silently breaking the
// canonicity that pointer-equality checks (and the paper's link-local
// equivalence, §5.3) rely on.
func (m *Manager) GC(roots []*Node) {
	marked := make(map[*Node]struct{}, len(roots)*4)
	var mark func(n *Node)
	mark = func(n *Node) {
		for n != nil {
			if _, ok := marked[n]; ok {
				return
			}
			marked[n] = struct{}{}
			if n.IsTerminal() {
				return
			}
			mark(n.Lo)
			n = n.Hi // tail-call on Hi to halve recursion depth
		}
	}
	mark(m.zero)
	mark(m.one)
	for _, r := range roots {
		mark(r)
	}

	fresh := newUniqueTable()
	for _, e := range m.unique.entries {
		if e.node == nil {
			continue
		}
		if _, ok := marked[e.node]; ok {
			fresh.insert(e.level, e.lo, e.hi, e.node)
		}
	}
	m.unique = fresh
	// Terminals are cheap; keep only the reachable ones anyway so that
	// sweep counts reflect reality.
	for bits, n := range m.terms {
		if _, ok := marked[n]; !ok {
			delete(m.terms, bits)
		}
	}
	m.ClearCaches()
	m.gcRuns++
}

// GCRuns reports how many garbage collections the manager has performed.
func (m *Manager) GCRuns() uint64 { return m.gcRuns }
