package mtbdd

// GC discards every node not reachable from the given roots: the unique
// table is rebuilt with the surviving nodes and all operation caches are
// cleared. Hash consing otherwise keeps every node ever created alive,
// which exhausts memory in long pipelines (millions of transient nodes
// arise during symbolic traffic execution).
//
// Contract: after GC, only the roots and nodes reachable from them may be
// passed to further Manager operations. Any other retained *Node would
// alias a semantically identical node created later, silently breaking the
// canonicity that pointer-equality checks (and the paper's link-local
// equivalence, §5.3) rely on.
func (m *Manager) GC(roots []*Node) {
	marked := m.newBitset()
	var mark func(n *Node)
	mark = func(n *Node) {
		for n != nil {
			if marked.visit(n.id) || n.IsTerminal() {
				return
			}
			mark(n.Lo)
			n = n.Hi // tail-call on Hi to halve recursion depth
		}
	}
	mark(m.zero)
	mark(m.one)
	for _, r := range roots {
		mark(r)
	}

	fresh := newUniqueTable()
	// maxProbe is a lifetime high-water mark, not a property of the
	// current table generation.
	fresh.maxProbe = m.unique.maxProbe
	for _, e := range m.unique.entries {
		if e.node == nil {
			continue
		}
		if marked.has(e.node.id) {
			fresh.insert(e.level, e.lo, e.hi, e.node)
		}
	}
	m.unique = fresh
	// Terminals are cheap; keep only the reachable ones anyway so that
	// sweep counts reflect reality.
	for bits, n := range m.terms {
		if !marked.has(n.id) {
			delete(m.terms, bits)
		}
	}
	m.releaseSlabs(marked)
	m.ClearCaches()
	m.gcRuns++
}

// releaseSlabs nils out node slabs with no marked ids so the runtime can
// reclaim them. Slab s holds ids (s*slabSize, (s+1)*slabSize], i.e. mark
// bits [s*slabSize, (s+1)*slabSize) — whole bitset words, since slabSize
// is a multiple of 64. The open (last) slab is kept: alloc keeps filling
// it. Transient nodes are temporally clustered, so build-then-reduce
// bursts typically die as contiguous whole slabs.
func (m *Manager) releaseSlabs(marked bitset) {
	const wordsPerSlab = slabSize / 64
	for s := 0; s < len(m.slabs)-1; s++ {
		if m.slabs[s] == nil {
			continue
		}
		lo := s * wordsPerSlab
		hi := lo + wordsPerSlab
		if hi > len(marked) {
			hi = len(marked)
		}
		dead := true
		for w := lo; w < hi; w++ {
			if marked[w] != 0 {
				dead = false
				break
			}
		}
		if dead {
			m.slabs[s] = nil
		}
	}
}

// GCRuns reports how many garbage collections the manager has performed.
func (m *Manager) GCRuns() uint64 { return m.gcRuns }
