package mtbdd

import (
	"errors"
	"math/rand"
	"testing"
)

// buildChain returns a manager with n vars and an MTBDD summing them —
// enough structure to exercise every cache.
func buildChain(t *testing.T, n int) (*Manager, *Node) {
	t.Helper()
	m := New()
	for i := 0; i < n; i++ {
		m.AddVar("x")
	}
	f := m.Zero()
	for i := 0; i < n; i++ {
		f = m.Add(f, m.Var(i))
	}
	return m, f
}

// Every one of the five operation caches must account hits and misses.
// Before this existed, Stats reported apply-only, so cache efficacy was
// systematically misreported (ISSUE 4 satellite 1).
func TestPerCacheCounters(t *testing.T) {
	m, f := buildChain(t, 8)
	g := m.Var(3)

	// neg: first Not computes (miss), second is a hit.
	m.Not(f)
	m.Not(f)
	// kreduce: same recursion twice.
	m.KReduce(f, 2)
	m.KReduce(f, 2)
	// range: second query hits the root entry.
	m.Range(f)
	m.Range(f)
	// apply already counted; make sure there is at least one hit.
	m.Add(f, g)
	m.Add(f, g)

	// import: pull f into a second manager twice.
	dst := New()
	for i := 0; i < 8; i++ {
		dst.AddVar("x")
	}
	dst.Import(f)
	dst.Import(f)

	st := m.Stats()
	for _, c := range []struct {
		name string
		cs   CacheStats
	}{
		{"apply", st.Apply},
		{"neg", st.Neg},
		{"kreduce", st.KReduce},
		{"range", st.Range},
	} {
		if c.cs.Misses == 0 {
			t.Errorf("%s cache recorded no misses: %+v", c.name, c.cs)
		}
		if c.cs.Hits == 0 {
			t.Errorf("%s cache recorded no hits: %+v", c.name, c.cs)
		}
	}
	ist := dst.Stats()
	if ist.Import.Misses == 0 || ist.Import.Hits == 0 {
		t.Errorf("import cache = %+v, want both hits and misses", ist.Import)
	}
	if st.KReduceCalls != 2 {
		t.Errorf("KReduceCalls = %d, want 2", st.KReduceCalls)
	}
	// The legacy flat fields must mirror the Apply breakdown — existing
	// consumers read ApplyHits/ApplyMisses.
	if st.ApplyHits != st.Apply.Hits || st.ApplyMisses != st.Apply.Misses {
		t.Errorf("legacy apply fields diverge: flat %d/%d vs %+v",
			st.ApplyHits, st.ApplyMisses, st.Apply)
	}
}

// The contract pinned here: ClearCaches drops cache *contents*, never
// counters. Cumulative hit/miss tallies are stable across a clear and
// keep growing afterwards.
func TestCacheCountersSurviveClearCaches(t *testing.T) {
	m, f := buildChain(t, 8)
	m.Not(f)
	m.Not(f)
	m.KReduce(f, 2)
	m.KReduce(f, 2)
	m.Range(f)
	m.Range(f)

	dst := New()
	for i := 0; i < 8; i++ {
		dst.AddVar("x")
	}
	dst.Import(f)

	before := m.Stats()
	m.ClearCaches()
	after := m.Stats()
	if before.Apply != after.Apply || before.Neg != after.Neg ||
		before.KReduce != after.KReduce || before.Range != after.Range ||
		before.Import != after.Import || before.KReduceCalls != after.KReduceCalls {
		t.Fatalf("ClearCaches changed cumulative counters:\nbefore %+v\nafter  %+v", before, after)
	}

	ib := dst.Stats()
	dst.ClearCaches()
	if ia := dst.Stats(); ia.Import != ib.Import {
		t.Fatalf("ClearCaches changed import counters: before %+v after %+v", ib.Import, ia.Import)
	}

	// Post-clear the caches are empty, so repeating an operation misses
	// again: counters strictly grow.
	m.Not(f)
	grown := m.Stats()
	if grown.Neg.Misses <= after.Neg.Misses {
		t.Fatalf("post-clear Not should miss the fresh cache: %+v vs %+v", grown.Neg, after.Neg)
	}
}

// Satellite 2: importTbl used to be nil'd by ClearCaches while every
// other cache was re-created fresh. Pin the unified behavior: the memo
// is a fresh usable map after New and after ClearCaches, and a
// post-clear Import works and re-memoizes.
func TestClearCachesResetsImportTbl(t *testing.T) {
	src, f := buildChain(t, 6)
	_ = src

	dst := New()
	for i := 0; i < 6; i++ {
		dst.AddVar("x")
	}
	if dst.importTbl == nil {
		t.Fatal("New must install a fresh importTbl")
	}
	first := dst.Import(f)
	dst.ClearCaches()
	if dst.importTbl == nil {
		t.Fatal("ClearCaches must re-create importTbl, not nil it")
	}
	if len(dst.importTbl) != 0 {
		t.Fatalf("ClearCaches left %d stale import entries", len(dst.importTbl))
	}
	second := dst.Import(f)
	if first != second {
		t.Fatal("post-clear Import must rebuild to the same canonical node")
	}
	if len(dst.importTbl) == 0 {
		t.Fatal("post-clear Import must re-populate the memo")
	}
}

// The fused ternary cache follows the same counter contract as the five
// binary caches: hits and misses accounted, counters cumulative across
// ClearCaches, and the cache *contents* recreated fresh so post-clear
// repeats miss again (ISSUE 5 satellite).
func TestFusedCacheCounters(t *testing.T) {
	m, f := buildChain(t, 8)
	g := m.Var(3)

	// First fused call populates (misses), repeat hits.
	m.AddK(f, g, 2)
	m.AddK(f, g, 2)
	m.MulAddK(f, g, m.Var(5), 2)
	m.MulAddK(f, g, m.Var(5), 2)

	st := m.Stats()
	if st.Fused.Misses == 0 || st.Fused.Hits == 0 {
		t.Fatalf("fused cache = %+v, want both hits and misses", st.Fused)
	}
	if st.FusionCuts == 0 {
		t.Fatalf("FusionCuts = 0, want budget-exhaustion cuts on a chain of 8 vars at k=2")
	}

	before := m.Stats()
	m.ClearCaches()
	after := m.Stats()
	if before.Fused != after.Fused || before.FusionCuts != after.FusionCuts {
		t.Fatalf("ClearCaches changed cumulative fused counters:\nbefore %+v/%d\nafter  %+v/%d",
			before.Fused, before.FusionCuts, after.Fused, after.FusionCuts)
	}
	if m.fusedTbl == nil {
		t.Fatal("ClearCaches must re-create the fused cache, not nil it")
	}

	// Post-clear the fresh cache must miss again: counters strictly grow.
	m.AddK(f, g, 2)
	grown := m.Stats()
	if grown.Fused.Misses <= after.Fused.Misses {
		t.Fatalf("post-clear AddK should miss the fresh fused cache: %+v vs %+v",
			grown.Fused, after.Fused)
	}
}

// MaxProbe is the unique table's lifetime high-water probe length: it
// must be populated after real work and survive both ClearCaches and a
// GC's table rebuild (the rebuilt table carries the watermark forward).
func TestMaxProbeStat(t *testing.T) {
	m, f := buildChain(t, 10)
	g := randomMTBDD(m, rand.New(rand.NewSource(21)), 10, 6)
	m.Add(f, g)
	st := m.Stats()
	if st.MaxProbe < 1 {
		t.Fatalf("MaxProbe = %d, want >= 1 after inserting a few hundred nodes", st.MaxProbe)
	}
	m.ClearCaches()
	if got := m.Stats().MaxProbe; got != st.MaxProbe {
		t.Fatalf("ClearCaches changed MaxProbe: %d -> %d", st.MaxProbe, got)
	}
	m.GC([]*Node{f})
	if got := m.Stats().MaxProbe; got < st.MaxProbe {
		t.Fatalf("GC rebuild lowered MaxProbe: %d -> %d (watermark must carry forward)", st.MaxProbe, got)
	}
}

// The instrumentation counters must not add allocations to the cached
// fast paths: mk on an existing node, apply/Not/KReduce hitting their
// caches (ISSUE 4 satellite 6).
func TestFastPathAllocationFree(t *testing.T) {
	m, f := buildChain(t, 8)
	g := m.Var(3)
	// Warm every cache.
	m.Add(f, g)
	m.Not(f)
	m.KReduce(f, 2)

	if n := testing.AllocsPerRun(200, func() { m.Var(3) }); n != 0 {
		t.Errorf("mk fast path allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(200, func() { m.Add(f, g) }); n != 0 {
		t.Errorf("cached apply allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(200, func() { m.Not(f) }); n != 0 {
		t.Errorf("cached Not allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(200, func() { m.KReduce(f, 2) }); n != 0 {
		t.Errorf("cached KReduce allocates %v per op", n)
	}
}

// Pin the stride-4096 polling cadence: with a hook installed from
// opTick zero, the hook fires exactly once per interruptStride counted
// operations — instrumentation must not change the cadence.
func TestInterruptPollingStride(t *testing.T) {
	if interruptStride != 4096 {
		t.Fatalf("interruptStride = %d, want 4096 (update DESIGN.md §11 if intentional)", interruptStride)
	}
	m := New()
	for i := 0; i < 64; i++ {
		m.AddVar("x")
	}
	calls := 0
	m.SetInterrupt(func() error {
		calls++
		return nil
	})
	// Drive enough cache-missing work to pass several stride windows.
	f := m.Zero()
	for round := 0; round < 6; round++ {
		f = m.Zero()
		for i := 0; i < 64; i++ {
			f = m.Add(f, m.Scale(float64(round+1), m.Var(i)))
		}
		f = m.KReduce(f, 4)
		m.ClearCaches() // force misses next round; counters unaffected
	}
	if m.opTick < interruptStride {
		t.Fatalf("workload too small to cross a stride window: opTick=%d", m.opTick)
	}
	want := int(m.opTick / interruptStride)
	if calls != want {
		t.Fatalf("hook fired %d times over %d ops, want exactly %d (one per %d ops)",
			calls, m.opTick, want, interruptStride)
	}

	// An erroring hook still aborts at the next poll point.
	bail := errors.New("bail")
	m.SetInterrupt(func() error { return bail })
	err := Guard(func() {
		for {
			g := m.Zero()
			for i := 0; i < 64; i++ {
				g = m.Add(g, m.Var(i))
			}
			m.ClearCaches()
		}
	})
	if !errors.Is(err, bail) {
		t.Fatalf("Guard returned %v, want the hook's error", err)
	}
}
