package mtbdd

import "math"

// Hasher computes structural hashes of MTBDD nodes: two nodes from the
// same manager hash equal exactly when they are the same canonical node,
// and — more usefully — nodes from *different* managers with the same
// variable order hash equal when they represent the same function. That
// is the property the incremental daemon (internal/serve) keys its STF
// cache on: a guard hashed in one run identifies the same guard in the
// next run's freshly built manager.
//
// Hashes are memoized per node pointer, so hashing a guard layer that
// shares most of its DAG with previously hashed guards is nearly free.
// A Hasher must only be used with nodes of managers sharing one variable
// order, and is not safe for concurrent use.
type Hasher struct {
	memo map[*Node]uint64
}

// NewHasher returns an empty memoized hasher.
func NewHasher() *Hasher {
	return &Hasher{memo: make(map[*Node]uint64)}
}

// Hash returns the structural hash of n (nil hashes to 0). Children are
// hashed before parents with an explicit stack, so arbitrarily deep DAGs
// cannot overflow the goroutine stack.
func (h *Hasher) Hash(n *Node) uint64 {
	if n == nil {
		return 0
	}
	if v, ok := h.memo[n]; ok {
		return v
	}
	type frame struct {
		n        *Node
		expanded bool
	}
	stack := []frame{{n, false}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, ok := h.memo[f.n]; ok && !f.expanded {
			continue
		}
		if f.n.IsTerminal() {
			h.memo[f.n] = mix64(0x9e3779b97f4a7c15 ^ math.Float64bits(f.n.Value))
			continue
		}
		if f.expanded {
			v := mix64(uint64(f.n.Level) + 0x6a09e667f3bcc909)
			v = mix64(v ^ h.memo[f.n.Lo])
			v = mix64((v + 0x3c6ef372fe94f82b) ^ h.memo[f.n.Hi])
			h.memo[f.n] = v
			continue
		}
		stack = append(stack, frame{f.n, true})
		if _, ok := h.memo[f.n.Hi]; !ok {
			stack = append(stack, frame{f.n.Hi, false})
		}
		if _, ok := h.memo[f.n.Lo]; !ok {
			stack = append(stack, frame{f.n.Lo, false})
		}
	}
	return h.memo[n]
}
