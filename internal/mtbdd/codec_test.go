package mtbdd

import (
	"bytes"
	"testing"
)

// TestSnapshotCodecRoundTrip pins the warm-state contract: encoding a
// snapshot and decoding it back replays to the identical canonical nodes
// the original snapshot replays to.
func TestSnapshotCodecRoundTrip(t *testing.T) {
	_, roots := buildSnapshotFixtures(t)
	snap := NewSnapshot(roots)

	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != snap.Len() || dec.MaxLevel() != snap.MaxLevel() {
		t.Fatalf("decoded len/maxLevel %d/%d, want %d/%d",
			dec.Len(), dec.MaxLevel(), snap.Len(), snap.MaxLevel())
	}

	dst1, dst2 := New(), New()
	for i := 0; i < 8; i++ {
		dst1.AddVar("x")
		dst2.AddVar("x")
	}
	t1 := dst1.ImportSnapshot(snap)
	t2 := dst1.ImportSnapshot(dec)
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("entry %d: original replays to %p, decoded to %p", i, t1[i], t2[i])
		}
	}
	// A second encode of the decoded snapshot is byte-identical: the
	// codec is canonical, so persisted state re-saves stably.
	var buf2 bytes.Buffer
	if err := dec.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-encoding a decoded snapshot changed the bytes")
	}
	// And it still replays into a fresh manager equivalently.
	t3 := dst2.ImportSnapshot(dec)
	for i := range t1 {
		if (t1[i].IsTerminal() != t3[i].IsTerminal()) || t1[i].Level != t3[i].Level {
			t.Fatalf("entry %d: cross-manager replay structure diverged", i)
		}
	}
}

// TestSnapshotCodecEmpty round-trips the empty snapshot (no roots).
func TestSnapshotCodecEmpty(t *testing.T) {
	snap := NewSnapshot(nil)
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != 0 || dec.MaxLevel() != -1 {
		t.Fatalf("empty snapshot decoded to len %d maxLevel %d", dec.Len(), dec.MaxLevel())
	}
	m := New()
	if table := m.ImportSnapshot(dec); len(table) != 0 {
		t.Fatalf("empty replay produced %d nodes", len(table))
	}
}

// TestSnapshotCodecRejectsMalformed feeds corruptions of a valid encoding
// to the decoder: every one must fail with an error, never a panic, and
// never decode to a snapshot that later panics in ImportSnapshot.
func TestSnapshotCodecRejectsMalformed(t *testing.T) {
	_, roots := buildSnapshotFixtures(t)
	snap := NewSnapshot(roots)
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	corrupt := map[string][]byte{
		"empty":            {},
		"bad-magic":        append([]byte("NOTASNAP"), valid[8:]...),
		"truncated-header": valid[:12],
		"truncated-body":   valid[:len(valid)-7],
		"huge-count": func() []byte {
			b := append([]byte(nil), valid...)
			b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0xff
			return b
		}(),
	}
	// Flip every byte of the first entry region one at a time; most flips
	// break an invariant (self/forward references, level bounds, header
	// mismatch). Whatever still decodes must import cleanly.
	for i := 16; i < len(valid) && i < 16+20*4; i++ {
		b := append([]byte(nil), valid...)
		b[i] ^= 0x41
		corrupt["flip-"+string(rune('a'+i%26))+string(rune('0'+i/26))] = b
	}

	for name, data := range corrupt {
		dec, err := DecodeSnapshot(bytes.NewReader(data))
		if err != nil {
			continue
		}
		if name == "empty" || name == "bad-magic" || name == "truncated-header" ||
			name == "truncated-body" || name == "huge-count" {
			t.Errorf("%s: decoder accepted malformed input", name)
			continue
		}
		// A surviving bit flip (e.g. inside a terminal value) must still
		// be safe to replay into a sufficiently wide manager.
		m := New()
		for v := int32(0); v <= dec.MaxLevel(); v++ {
			m.AddVar("x")
		}
		m.ImportSnapshot(dec)
	}
}

// TestHasherStructuralEquality pins the Hasher contract: equal functions
// across managers hash equal, different functions hash apart, and
// memoization returns stable values.
func TestHasherStructuralEquality(t *testing.T) {
	m1, roots1 := buildSnapshotFixtures(t)
	_, roots2 := buildSnapshotFixtures(t)

	h1, h2 := NewHasher(), NewHasher()
	for i := range roots1 {
		a, b := h1.Hash(roots1[i]), h2.Hash(roots2[i])
		if a != b {
			t.Fatalf("root %d: same function hashed %x vs %x across managers", i, a, b)
		}
		if again := h1.Hash(roots1[i]); again != a {
			t.Fatalf("root %d: memoized hash unstable (%x vs %x)", i, a, again)
		}
	}
	seen := make(map[uint64]int)
	for i, r := range roots1 {
		hv := h1.Hash(r)
		if j, dup := seen[hv]; dup && roots1[j] != r {
			t.Fatalf("distinct roots %d and %d collide at %x", j, i, hv)
		}
		seen[hv] = i
	}
	if h1.Hash(nil) != 0 {
		t.Fatal("nil hash not 0")
	}
	if h1.Hash(m1.Zero()) == h1.Hash(m1.One()) {
		t.Fatal("zero and one terminals collide")
	}
}

// FuzzSnapshotCodec drives arbitrary bytes through the decoder: it must
// never panic, and anything it accepts must re-encode canonically and
// replay into a fresh manager without panicking.
func FuzzSnapshotCodec(f *testing.F) {
	m := New()
	for i := 0; i < 4; i++ {
		m.AddVar("x")
	}
	g := m.Add(m.Mul(m.Var(0), m.Const(0.25)), m.ITE(m.Var(2), m.Var(3), m.Const(2)))
	snap := NewSnapshot([]*Node{g, m.Zero()})
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("YUSNAP1\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := dec.Encode(&out); err != nil {
			t.Fatalf("accepted snapshot failed to encode: %v", err)
		}
		dec2, err := DecodeSnapshot(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded snapshot rejected: %v", err)
		}
		if dec2.Len() != dec.Len() || dec2.MaxLevel() != dec.MaxLevel() {
			t.Fatal("re-decode changed shape")
		}
		dst := New()
		for v := int32(0); v <= dec.MaxLevel(); v++ {
			dst.AddVar("x")
		}
		table := dst.ImportSnapshot(dec)
		if len(table) != dec.Len() {
			t.Fatalf("replay table %d entries for %d nodes", len(table), dec.Len())
		}
	})
}
