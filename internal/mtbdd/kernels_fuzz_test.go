package mtbdd

import (
	"math/rand"
	"testing"
)

// FuzzKernels is the fused-kernel differential fuzz target: for a
// fuzzer-chosen operand shape and budget, every fused kernel must return
// the exact canonical node of its composed Add/Mul/KReduce form, and the
// result must evaluate identically on random in-budget assignments. The
// budget byte deliberately wraps past NumVars so saturating budgets
// (where KReduce is the identity) and k=0 stay in the explored space.
func FuzzKernels(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(7), uint8(1))
	f.Add(int64(42), uint8(2))
	f.Add(int64(56), uint8(6))  // k == NumVars: reduction is the identity
	f.Add(int64(99), uint8(11)) // k > NumVars
	f.Fuzz(func(t *testing.T, seed int64, kb uint8) {
		const n = 6
		m := New()
		for i := 0; i < n; i++ {
			m.AddVar("x")
		}
		r := rand.New(rand.NewSource(seed))
		k := int(kb % (n + 3))
		fa := randomMTBDD(m, r, n, 4)
		fb := randomMTBDD(m, r, n, 4)
		for _, bk := range arithKernels {
			want := m.KReduce(bk.composed(m, fa, fb), k)
			if got := bk.fused(m, fa, fb, k); got != want {
				t.Fatalf("%s(k=%d) = %s, want %s", bk.name, k, m.String(got), m.String(want))
			}
		}
		ga := randomGuard(m, r, n, 4)
		gb := randomGuard(m, r, n, 4)
		for _, bk := range boolKernels {
			want := m.KReduce(bk.composed(m, ga, gb), k)
			if got := bk.fused(m, ga, gb, k); got != want {
				t.Fatalf("%s(k=%d) = %s, want %s", bk.name, k, m.String(got), m.String(want))
			}
		}
		acc := randomMTBDD(m, r, n, 3)
		wantMA := m.KReduce(m.Add(acc, m.Mul(fa, fb)), k)
		gotMA := m.MulAddK(acc, fa, fb, k)
		if gotMA != wantMA {
			t.Fatalf("MulAddK(k=%d) = %s, want %s", k, m.String(gotMA), m.String(wantMA))
		}
		fs := []*Node{ga, gb, m.And(ga, m.Not(gb)), m.Or(m.Not(ga), gb)}
		fs = fs[:1+r.Intn(len(fs))]
		wantN := m.KReduce(m.AddN(fs), k)
		if gotN := m.AddNK(fs, k); gotN != wantN {
			t.Fatalf("AddNK(%d terms, k=%d) = %s, want %s", len(fs), k, m.String(gotN), m.String(wantN))
		}

		// Pointwise semantics on random in-budget assignments: the fused
		// sum must agree with evaluating the operands separately.
		sum := m.AddK(fa, fb, k)
		assign := make([]bool, n)
		for trial := 0; trial < 16; trial++ {
			budget := k
			for i := range assign {
				assign[i] = true
				if budget > 0 && r.Intn(3) == 0 {
					assign[i] = false
					budget--
				}
			}
			if got, want := m.Eval(sum, assign), m.Eval(fa, assign)+m.Eval(fb, assign); got != want {
				t.Fatalf("AddK(k=%d) at %v: %v, want %v", k, assign, got, want)
			}
			if got, want := m.Eval(gotMA, assign), m.Eval(acc, assign)+m.Eval(fa, assign)*m.Eval(fb, assign); got != want {
				t.Fatalf("MulAddK(k=%d) at %v: %v, want %v", k, assign, got, want)
			}
		}
	})
}
