package mtbdd

// KReduce implements the paper's KREDUCE operation (§5.2, Definition 5.2):
// it returns an MTBDD that is k-failure equivalent to f — it agrees with f
// on every assignment in which at most k variables are 0 — and in which no
// root-to-terminal path assigns 0 to more than k variables (Lemma 2).
//
// The recursion, with β_k denoting KReduce(·, k) and x_i the root variable
// of F:
//
//	β_0(F)  = F(1,1,...,1)                       (no failures left)
//	β_k(c)  = c                                  (terminal)
//	β_k(F)  = β_k(F|x_i=1)                       if β_{k-1}(F|x_i=1) == β_{k-1}(F|x_i=0)
//	β_k(F)  = x_i·β_k(F|x_i=1) + x̄_i·β_{k-1}(F|x_i=0)   otherwise
//
// The third case is the novel merge: two cofactors that are merely
// (k-1)-failure equivalent — not isomorphic — collapse, because taking the
// Lo branch has already spent one failure. The implementation is a dynamic
// program memoized on (node, k), so its cost is proportional to |F|·k.
//
// Negative k is treated as 0. KReduce is idempotent:
// KReduce(KReduce(f,k),k) == KReduce(f,k).
func (m *Manager) KReduce(f *Node, k int) *Node {
	m.kreduceCalls++
	if k < 0 {
		k = 0
	}
	return m.kreduce(f, int32(k))
}

func (m *Manager) kreduce(f *Node, k int32) *Node {
	if f.IsTerminal() {
		return f
	}
	if k == 0 {
		// β_0(F) = F(1,...,1): follow Hi edges to a terminal.
		return m.Const(m.EvalAllAlive(f))
	}
	if r, ok := m.kreduceTbl.get(f.id, k); ok {
		m.kreduceHits++
		return r
	}
	m.kreduceMisses++
	m.checkInterrupt()
	hiK := m.kreduce(f.Hi, k)
	loK1 := m.kreduce(f.Lo, k-1)
	var r *Node
	if m.kreduce(f.Hi, k-1) == loK1 {
		r = hiK
	} else {
		r = m.mk(f.Level, loK1, hiK)
	}
	m.kreduceTbl.put(f.id, k, r)
	return r
}

// MaxFailuresOnPath returns the maximum number of 0-assignments (failures)
// encoded on any root-to-terminal path of f. For any g = KReduce(f, k)
// this is at most k (Lemma 2). A terminal yields 0.
func (m *Manager) MaxFailuresOnPath(f *Node) int {
	memo := make(map[*Node]int)
	var walk func(n *Node) int
	walk = func(n *Node) int {
		if n.IsTerminal() {
			return 0
		}
		if v, ok := memo[n]; ok {
			return v
		}
		hi := walk(n.Hi)
		lo := walk(n.Lo) + 1
		v := hi
		if lo > v {
			v = lo
		}
		memo[n] = v
		return v
	}
	return walk(f)
}

// KEquivalent reports whether f and g agree on every assignment with at
// most k failed (0) variables. By Lemma 1, KReduce(f,k) == KReduce(g,k)
// iff f ≈_k g, and hash-consing makes that a pointer comparison.
func (m *Manager) KEquivalent(f, g *Node, k int) bool {
	if f == g {
		return true
	}
	return m.KReduce(f, k) == m.KReduce(g, k)
}
