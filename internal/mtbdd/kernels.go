package mtbdd

// Fused MTBDD kernels: k-budgeted operators that construct the KREDUCEd
// result directly, without materializing the unreduced intermediate.
//
// The dominant pattern in symbolic traffic execution is a pairwise
// Add/Mul immediately wrapped in KReduce: the full intermediate MTBDD is
// built only to have most of it discarded by the reduction. The paper's
// Lemmas 1-2 (§5.2) justify pruning during construction instead: the
// k-failure-equivalence class of op(F, G) is determined by the values of
// F and G on assignments with at most k zeros, so the recursion can
// thread the remaining zero-budget and collapse both cofactors to their
// all-alive value the moment it is spent.
//
// The recursion mirrors kreduce exactly, with γ_k(F, G) ≡ β_k(F op G):
//
//	γ_0(F, G) = F(1,...,1) op G(1,...,1)
//	γ_k(c, d) = c op d                                       (terminals)
//	γ_k(F, G) = γ_k(F|x=1, G|x=1)                            if γ_{k-1}(F|x=1, G|x=1) == γ_{k-1}(F|x=0, G|x=0)
//	γ_k(F, G) = x·γ_k(F|x=1, G|x=1) + x̄·γ_{k-1}(F|x=0, G|x=0)   otherwise
//
// where x is the smaller root variable of F and G. Because restriction
// commutes with pointwise operations (H|x=v = F|x=v op G|x=v for
// H = F op G), this recursion and KReduce(apply(op, F, G), k) compute
// structurally identical results: both produce the canonical β_k
// representative, so hash-consing yields the very same *Node. That exact
// node equality is what lets the engine swap Reduce(Add(...)) call sites
// for AddK without perturbing report output by a single byte; the
// kernels difftest oracle and FuzzKernels pin it.
//
// A negative budget means "reduction disabled" (the ablation mode of
// FailVars) and falls back to the plain operator.

// AddK returns KReduce(f+g, k) without building the unreduced sum.
func (m *Manager) AddK(f, g *Node, k int) *Node { return m.fusedOp(opAdd, f, g, k) }

// SubK returns KReduce(f-g, k).
func (m *Manager) SubK(f, g *Node, k int) *Node { return m.fusedOp(opSub, f, g, k) }

// MulK returns KReduce(f*g, k) without building the unreduced product.
func (m *Manager) MulK(f, g *Node, k int) *Node { return m.fusedOp(opMul, f, g, k) }

// DivK returns KReduce(f/g, k), with Div's zero-denominator convention.
func (m *Manager) DivK(f, g *Node, k int) *Node { return m.fusedOp(opDiv, f, g, k) }

// MinK returns KReduce(min(f,g), k).
func (m *Manager) MinK(f, g *Node, k int) *Node { return m.fusedOp(opMin, f, g, k) }

// MaxK returns KReduce(max(f,g), k).
func (m *Manager) MaxK(f, g *Node, k int) *Node { return m.fusedOp(opMax, f, g, k) }

// AndK returns KReduce(f∧g, k) for {0,1} guards.
func (m *Manager) AndK(f, g *Node, k int) *Node { return m.fusedOp(opAnd, f, g, k) }

// OrK returns KReduce(f∨g, k) for {0,1} guards.
func (m *Manager) OrK(f, g *Node, k int) *Node { return m.fusedOp(opOr, f, g, k) }

// XorK returns KReduce(f⊕g, k) for {0,1} guards.
func (m *Manager) XorK(f, g *Node, k int) *Node { return m.fusedOp(opXor, f, g, k) }

func (m *Manager) fusedOp(op opcode, f, g *Node, k int) *Node {
	if k < 0 {
		return m.apply(op, f, g)
	}
	return m.applyK(op, f, g, int32(k))
}

// applyK is Bryant's APPLY fused with the KREDUCE dynamic program: the
// remaining zero-budget threads through the recursion and both operands
// collapse to their all-alive values once it is spent.
func (m *Manager) applyK(op opcode, f, g *Node, k int32) *Node {
	if r := m.shortcut(op, f, g); r != nil {
		return m.kreduce(r, k)
	}
	if f.IsTerminal() && g.IsTerminal() {
		return m.Const(op.eval(f.Value, g.Value))
	}
	if k == 0 {
		// Budget spent: the whole subproblem — which plain apply would
		// expand into an MTBDD over every variable below — collapses to
		// one terminal. This is where the fusion saves its work.
		m.fusionCuts++
		return m.Const(op.eval(m.EvalAllAlive(f), m.EvalAllAlive(g)))
	}
	a, b := f, g
	if op.commutes() && a.id > b.id {
		a, b = b, a
	}
	if r, ok := m.fusedTbl.get(op, a.id, b.id, 0, k); ok {
		m.fusedHits++
		return r
	}
	m.fusedMisses++
	m.checkInterrupt()

	level := f.Level
	if g.Level < level {
		level = g.Level
	}
	fLo, fHi := f, f
	if f.Level == level {
		fLo, fHi = f.Lo, f.Hi
	}
	gLo, gHi := g, g
	if g.Level == level {
		gLo, gHi = g.Lo, g.Hi
	}
	hiK := m.applyK(op, fHi, gHi, k)
	loK1 := m.applyK(op, fLo, gLo, k-1)
	var r *Node
	if m.applyK(op, fHi, gHi, k-1) == loK1 {
		// The cofactors are (k-1)-failure equivalent: taking the Lo
		// branch has already spent one failure, so they merge (the novel
		// KREDUCE collapse, Definition 5.2 case 3).
		r = hiK
	} else {
		r = m.mk(level, loK1, hiK)
	}
	m.fusedTbl.put(op, a.id, b.id, 0, k, r)
	return r
}

// MulAdd returns acc + w*f as a single-DFS ternary operator, without the
// intermediate product MTBDD. It is the unfused (no budget) companion of
// MulAddK for callers outside the k-reduced pipeline.
func (m *Manager) MulAdd(acc, w, f *Node) *Node {
	if w == m.zero || f == m.zero {
		return acc
	}
	if w == m.one {
		return m.Add(acc, f)
	}
	if f == m.one {
		return m.Add(acc, w)
	}
	if acc == m.zero {
		return m.Mul(w, f)
	}
	return m.Add(acc, m.Mul(w, f))
}

// MulAddK returns KReduce(acc + w*f, k) as one fused ternary DFS: the
// weighted-accumulate at the heart of ECMP splitting, SR path weighting,
// and per-link load aggregation, without ever materializing either the
// product w*f or the unreduced sum.
func (m *Manager) MulAddK(acc, w, f *Node, k int) *Node {
	if k < 0 {
		return m.MulAdd(acc, w, f)
	}
	return m.mulAddK(acc, w, f, int32(k))
}

func (m *Manager) mulAddK(acc, w, f *Node, k int32) *Node {
	// Algebraic shortcuts first, mirroring what the composed
	// Add/Mul/Reduce pipeline would short-circuit.
	if w == m.zero || f == m.zero {
		return m.kreduce(acc, k)
	}
	if w == m.one {
		return m.applyK(opAdd, acc, f, k)
	}
	if f == m.one {
		return m.applyK(opAdd, acc, w, k)
	}
	if acc == m.zero {
		return m.applyK(opMul, w, f, k)
	}
	if acc.IsTerminal() && w.IsTerminal() && f.IsTerminal() {
		return m.Const(acc.Value + w.Value*f.Value)
	}
	if k == 0 {
		m.fusionCuts++
		return m.Const(m.EvalAllAlive(acc) + m.EvalAllAlive(w)*m.EvalAllAlive(f))
	}
	// The product operands commute; canonicalize their cache order.
	x, y := w, f
	if x.id > y.id {
		x, y = y, x
	}
	if r, ok := m.fusedTbl.get(opMulAdd, acc.id, x.id, y.id, k); ok {
		m.fusedHits++
		return r
	}
	m.fusedMisses++
	m.checkInterrupt()

	level := acc.Level
	if w.Level < level {
		level = w.Level
	}
	if f.Level < level {
		level = f.Level
	}
	aLo, aHi := acc, acc
	if acc.Level == level {
		aLo, aHi = acc.Lo, acc.Hi
	}
	wLo, wHi := w, w
	if w.Level == level {
		wLo, wHi = w.Lo, w.Hi
	}
	fLo, fHi := f, f
	if f.Level == level {
		fLo, fHi = f.Lo, f.Hi
	}
	hiK := m.mulAddK(aHi, wHi, fHi, k)
	loK1 := m.mulAddK(aLo, wLo, fLo, k-1)
	var r *Node
	if m.mulAddK(aHi, wHi, fHi, k-1) == loK1 {
		r = hiK
	} else {
		r = m.mk(level, loK1, hiK)
	}
	m.fusedTbl.put(opMulAdd, acc.id, x.id, y.id, k, r)
	return r
}

// AddN returns the sum of the given MTBDDs combined as a balanced binary
// tree: log-depth instead of a linear chain, so intermediate operands
// stay small and the apply cache sees far better reuse. Because float
// addition is only associative when values are exact, the engine feeds
// AddN only sums of selection guards (small-integer terminals); for
// fractional accumulations the in-order pairwise kernels keep the exact
// legacy rounding.
func (m *Manager) AddN(fs []*Node) *Node {
	switch len(fs) {
	case 0:
		return m.zero
	case 1:
		return fs[0]
	}
	mid := len(fs) / 2
	return m.Add(m.AddN(fs[:mid]), m.AddN(fs[mid:]))
}

// AddNK returns KReduce(Σfs, k) as a balanced tree of fused k-budgeted
// additions: every intermediate is already reduced, so the peak node
// count tracks the reduced result instead of the raw chain. The same
// exact-value caveat as AddN applies.
func (m *Manager) AddNK(fs []*Node, k int) *Node {
	if k < 0 {
		return m.AddN(fs)
	}
	return m.addNK(fs, int32(k))
}

func (m *Manager) addNK(fs []*Node, k int32) *Node {
	switch len(fs) {
	case 0:
		return m.zero
	case 1:
		return m.kreduce(fs[0], k)
	}
	mid := len(fs) / 2
	return m.applyK(opAdd, m.addNK(fs[:mid], k), m.addNK(fs[mid:], k), k)
}

// OrN returns the disjunction of the given guards as a balanced tree.
// Or is idempotent and exact on {0,1}, so any association is safe.
func (m *Manager) OrN(fs []*Node) *Node {
	switch len(fs) {
	case 0:
		return m.zero
	case 1:
		return fs[0]
	}
	mid := len(fs) / 2
	return m.Or(m.OrN(fs[:mid]), m.OrN(fs[mid:]))
}
