package mtbdd

import (
	"math/rand"
	"testing"
)

func TestGCKeepsRoots(t *testing.T) {
	m := newMgr(t, 6)
	r := rand.New(rand.NewSource(9))
	keep := randomMTBDD(m, r, 6, 5)
	for i := 0; i < 50; i++ {
		randomMTBDD(m, r, 6, 5) // garbage
	}
	before := m.Stats().Live
	// Record semantics of the kept root.
	var vals []float64
	allAssignments(6, func(assign []bool) {
		vals = append(vals, m.Eval(keep, assign))
	})
	m.GC([]*Node{keep})
	after := m.Stats().Live
	if after > before {
		t.Fatalf("GC grew the table: %d -> %d", before, after)
	}
	if m.GCRuns() != 1 {
		t.Errorf("GCRuns = %d", m.GCRuns())
	}
	// The root must still evaluate identically.
	i := 0
	allAssignments(6, func(assign []bool) {
		if m.Eval(keep, assign) != vals[i] {
			t.Fatalf("GC corrupted the kept root at %v", assign)
		}
		i++
	})
	// Canonicity: rebuilding an equal function must alias the kept root.
	if m.NodeCount(keep) > 1 {
		rebuilt := m.mk(keep.Level, keep.Lo, keep.Hi)
		if rebuilt != keep {
			t.Error("canonicity broken after GC")
		}
	}
}

func TestGCThenOperate(t *testing.T) {
	m := newMgr(t, 4)
	f := m.Add(m.Scale(3, m.Var(0)), m.Mul(m.Not(m.Var(1)), m.Const(5)))
	g := m.And(m.Var(2), m.Var(3))
	for i := 0; i < 30; i++ {
		m.Mul(m.Const(float64(i)), m.Var(i%4)) // garbage
	}
	m.GC([]*Node{f, g})
	// New operations over survivors must stay correct.
	h := m.Mul(f, g)
	allAssignments(4, func(assign []bool) {
		want := m.Eval(f, assign) * m.Eval(g, assign)
		if got := m.Eval(h, assign); got != want {
			t.Fatalf("post-GC Mul wrong at %v: %v != %v", assign, got, want)
		}
	})
	// Zero/one survive implicitly.
	if m.Add(f, m.Zero()) != f {
		t.Error("zero terminal lost")
	}
}

func TestGCEmptyRoots(t *testing.T) {
	m := newMgr(t, 3)
	m.Or(m.Var(0), m.Var(1))
	m.GC(nil)
	if live := m.Stats().Live; live != 0 {
		t.Errorf("live = %d after full GC, want 0 internal nodes", live)
	}
	// Manager still usable.
	f := m.And(m.Var(1), m.Var(2))
	if m.Eval(f, []bool{true, true, true}) != 1 {
		t.Error("manager unusable after full GC")
	}
}
