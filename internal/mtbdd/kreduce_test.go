package mtbdd

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestKReducePaperFig8 reproduces Figure 8(b) of the paper: for
// F = x1 ∧ ¬x2, KREDUCE(F, 1) merges the (0-failure-equivalent) cofactors
// and yields ¬x2.
func TestKReducePaperFig8(t *testing.T) {
	m := newMgr(t, 2)
	f := m.And(m.Var(0), m.Not(m.Var(1)))
	got := m.KReduce(f, 1)
	want := m.Not(m.Var(1))
	if got != want {
		t.Errorf("KReduce(x0&!x1, 1) = %s, want !x1", m.String(got))
	}
}

// TestKReduceSTLExample reproduces the §5.2 example: the STL
// 60·x1 + 25·(x1·¬x2 + ¬x1·x2·x3) under k=2 is 2-failure-equivalent to an
// MTBDD that drops nothing (every path has ≤2 failures already), while
// under k=1 the ¬x1∧¬x2-style deep-failure paths are pruned.
func TestKReduceSTLExample(t *testing.T) {
	m := newMgr(t, 3)
	x1, x2, x3 := m.Var(0), m.Var(1), m.Var(2)
	stl := m.Add(m.Scale(60, x1),
		m.Scale(25, m.Add(m.Mul(x1, m.Not(x2)), m.AndAll([]*Node{m.Not(x1), x2, x3}))))
	for k := 0; k <= 3; k++ {
		r := m.KReduce(stl, k)
		if got := m.MaxFailuresOnPath(r); got > k {
			t.Errorf("k=%d: path with %d failures survived", k, got)
		}
		allAssignments(3, func(assign []bool) {
			if failures(assign) <= k {
				if m.Eval(r, assign) != m.Eval(stl, assign) {
					t.Errorf("k=%d: value changed at %v", k, assign)
				}
			}
		})
	}
}

func TestKReduceZeroFailures(t *testing.T) {
	m := newMgr(t, 3)
	f := m.Add(m.Scale(60, m.Var(0)), m.Scale(25, m.Not(m.Var(1))))
	r := m.KReduce(f, 0)
	if !r.IsTerminal() || r.Value != 60 {
		t.Errorf("KReduce(f,0) = %s, want terminal 60 (all-alive value)", m.String(r))
	}
}

func TestKReduceTerminal(t *testing.T) {
	m := newMgr(t, 1)
	c := m.Const(7)
	for k := 0; k < 3; k++ {
		if m.KReduce(c, k) != c {
			t.Errorf("KReduce on a terminal must be the identity")
		}
	}
}

func TestKReduceNegativeKTreatedAsZero(t *testing.T) {
	m := newMgr(t, 2)
	f := m.Var(0)
	if m.KReduce(f, -3) != m.KReduce(f, 0) {
		t.Error("negative k must behave like k=0")
	}
}

func TestKReduceIdempotent(t *testing.T) {
	m := newMgr(t, 5)
	f := randomMTBDD(m, rand.New(rand.NewSource(1)), 5, 4)
	for k := 0; k <= 5; k++ {
		r := m.KReduce(f, k)
		if m.KReduce(r, k) != r {
			t.Errorf("KReduce not idempotent at k=%d", k)
		}
	}
}

func TestKReduceFullBudgetIsIdentityLike(t *testing.T) {
	m := newMgr(t, 4)
	f := randomMTBDD(m, rand.New(rand.NewSource(2)), 4, 4)
	// With k >= number of variables every assignment is within budget, so
	// the reduction must be semantics-preserving everywhere.
	r := m.KReduce(f, 4)
	allAssignments(4, func(assign []bool) {
		if m.Eval(r, assign) != m.Eval(f, assign) {
			t.Fatalf("full-budget KReduce changed value at %v", assign)
		}
	})
}

func TestKEquivalent(t *testing.T) {
	m := newMgr(t, 3)
	// f and g differ only on scenarios with >= 2 failures.
	f := m.Or(m.Var(0), m.Var(1)) // 0 only when both fail
	g := m.One()
	if !m.KEquivalent(f, g, 1) {
		t.Error("f and g must be 1-failure equivalent")
	}
	if m.KEquivalent(f, g, 2) {
		t.Error("f and g must differ at 2 failures")
	}
	if !m.KEquivalent(f, f, 0) {
		t.Error("reflexivity")
	}
}

// randomMTBDD builds a random MTBDD over n variables with the given
// expression depth, mixing boolean and arithmetic structure — the same kind
// of shape symbolic traffic execution produces.
func randomMTBDD(m *Manager, r *rand.Rand, n, depth int) *Node {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0:
			return m.Const(float64(r.Intn(5)) * 0.5)
		case 1:
			return m.Var(r.Intn(n))
		default:
			return m.Not(m.Var(r.Intn(n)))
		}
	}
	a := randomMTBDD(m, r, n, depth-1)
	b := randomMTBDD(m, r, n, depth-1)
	switch r.Intn(6) {
	case 0:
		return m.Add(a, b)
	case 1:
		return m.Mul(a, b)
	case 2:
		return m.Min(a, b)
	case 3:
		return m.Max(a, b)
	case 4:
		return m.Sub(a, b)
	default:
		g := randomMTBDD(m, r, n, 1)
		isG := m.Not(m.apply(opAnd, m.Not(g), m.One())) // force {0,1}
		return m.ITE(isG, a, b)
	}
}

// TestKReduceLemma1 is the property-based check of Lemma 1: KReduce(F,k)
// agrees with F on every assignment with at most k failures.
func TestKReduceLemma1(t *testing.T) {
	const n = 7
	r := rand.New(rand.NewSource(42))
	m := newMgr(t, n)
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			vals[0] = reflect.ValueOf(randomMTBDD(m, r, n, 5))
			vals[1] = reflect.ValueOf(r.Intn(n + 1))
		},
	}
	prop := func(f *Node, k int) bool {
		red := m.KReduce(f, k)
		ok := true
		allAssignments(n, func(assign []bool) {
			if failures(assign) <= k && m.Eval(red, assign) != m.Eval(f, assign) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestKReduceLemma2 is the property-based check of Lemma 2: no path in
// KReduce(F,k) encodes more than k failures.
func TestKReduceLemma2(t *testing.T) {
	const n = 7
	r := rand.New(rand.NewSource(43))
	m := newMgr(t, n)
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			vals[0] = reflect.ValueOf(randomMTBDD(m, r, n, 5))
			vals[1] = reflect.ValueOf(r.Intn(n + 1))
		},
	}
	prop := func(f *Node, k int) bool {
		return m.MaxFailuresOnPath(m.KReduce(f, k)) <= k
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestKReduceMonotone checks that increasing budget never loses agreement:
// KReduce(f, k+1) also agrees with f on ≤k-failure assignments.
func TestKReduceMonotone(t *testing.T) {
	const n = 6
	r := rand.New(rand.NewSource(44))
	m := newMgr(t, n)
	for trial := 0; trial < 40; trial++ {
		f := randomMTBDD(m, r, n, 4)
		k := r.Intn(n)
		r1 := m.KReduce(f, k+1)
		allAssignments(n, func(assign []bool) {
			if failures(assign) <= k && m.Eval(r1, assign) != m.Eval(f, assign) {
				t.Fatalf("KReduce(f,%d) disagrees on a %d-failure scenario", k+1, failures(assign))
			}
		})
	}
}

// TestKReduceShrinks checks the reduction never grows the MTBDD.
func TestKReduceShrinks(t *testing.T) {
	const n = 8
	r := rand.New(rand.NewSource(45))
	m := newMgr(t, n)
	for trial := 0; trial < 40; trial++ {
		f := randomMTBDD(m, r, n, 5)
		for k := 0; k <= 3; k++ {
			if got, limit := m.NodeCount(m.KReduce(f, k)), m.NodeCount(f); got > limit {
				t.Fatalf("KReduce grew the MTBDD: %d > %d (k=%d)", got, limit, k)
			}
		}
	}
}

// TestKReduceOpsPreserveEquivalence checks the pipeline property used by
// Lemma 3: combining k-reduced operands with Add/Mul and re-reducing yields
// a result k-equivalent to combining the originals.
func TestKReduceOpsPreserveEquivalence(t *testing.T) {
	const n = 6
	r := rand.New(rand.NewSource(46))
	m := newMgr(t, n)
	for trial := 0; trial < 40; trial++ {
		f := randomMTBDD(m, r, n, 4)
		g := randomMTBDD(m, r, n, 4)
		k := r.Intn(4)
		exact := m.Add(f, g)
		reduced := m.KReduce(m.Add(m.KReduce(f, k), m.KReduce(g, k)), k)
		if !m.KEquivalent(exact, reduced, k) {
			t.Fatalf("Add broke k-equivalence (k=%d)", k)
		}
		exactM := m.Mul(f, g)
		reducedM := m.KReduce(m.Mul(m.KReduce(f, k), m.KReduce(g, k)), k)
		if !m.KEquivalent(exactM, reducedM, k) {
			t.Fatalf("Mul broke k-equivalence (k=%d)", k)
		}
	}
}

// TestFig18AdditionExplosion reproduces Appendix C / Figure 18: adding two
// small MTBDDs over disjoint variables multiplies their sizes, which is why
// link-local flow equivalence matters.
func TestFig18AdditionExplosion(t *testing.T) {
	m := newMgr(t, 5)
	// T_x from Fig 18(a): tests x0, x2, x4 (paper's x1,x3,x5).
	tx := m.ITE(m.Var(0),
		m.ITE(m.Var(2), m.Const(0), m.Const(10)),
		m.ITE(m.Var(4), m.Const(0), m.Const(5)))
	// T_y from Fig 18(b): tests x1, x3 (paper's x2,x4).
	ty := m.ITE(m.Var(1),
		m.Const(0),
		m.ITE(m.Var(3), m.Const(25), m.Const(50)))
	sum := m.Add(tx, ty)
	nx, ny, ns := m.NodeCount(tx), m.NodeCount(ty), m.NodeCount(sum)
	if ns <= nx && ns <= ny {
		t.Errorf("expected size growth: |Tx|=%d |Ty|=%d |Tx+Ty|=%d", nx, ny, ns)
	}
	// The interleaved-variable sum must contain strictly more internal
	// nodes than either operand.
	if ns < nx+ny-2 {
		t.Errorf("sum unexpectedly compact: |Tx|=%d |Ty|=%d |sum|=%d", nx, ny, ns)
	}
}

func TestMaxFailuresOnPath(t *testing.T) {
	m := newMgr(t, 3)
	if m.MaxFailuresOnPath(m.Const(4)) != 0 {
		t.Error("terminal has 0 failures")
	}
	f := m.AndAll([]*Node{m.Not(m.Var(0)), m.Not(m.Var(1)), m.Not(m.Var(2))})
	// The path to terminal 1 fails all three variables... but sibling
	// paths bail out earlier; max over paths is 3.
	if got := m.MaxFailuresOnPath(f); got != 3 {
		t.Errorf("MaxFailuresOnPath = %d, want 3", got)
	}
}

func BenchmarkKReduce(b *testing.B) {
	const n = 24
	m := New()
	for i := 0; i < n; i++ {
		m.AddVar("x")
	}
	r := rand.New(rand.NewSource(7))
	f := randomMTBDD(m, r, n, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.kreduceTbl = newKReduceCache()
		m.KReduce(f, 2)
	}
}

func BenchmarkApplyAdd(b *testing.B) {
	const n = 24
	m := New()
	for i := 0; i < n; i++ {
		m.AddVar("x")
	}
	r := rand.New(rand.NewSource(8))
	f := randomMTBDD(m, r, n, 12)
	g := randomMTBDD(m, r, n, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.applyTbl = newApplyCache()
		m.Add(f, g)
	}
}
