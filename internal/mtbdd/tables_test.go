package mtbdd

import "testing"

// The fused cache's 2-way sets must behave like a tiny LRU: an insert
// demotes the set's primary into the secondary way instead of evicting
// it, and a secondary hit promotes back. These tests pin that contract
// with two keys forced into the same set.

// sameSetKeys returns two distinct (a,k) fused keys that map to one set.
func sameSetKeys(t *testing.T, c *fusedCache) (fusedEntry, fusedEntry) {
	t.Helper()
	first := fusedEntry{a: 1, b: 2, c: 0, k: 1, op: opAdd}
	want := c.set(first.op, first.a, first.b, first.c, first.k)
	for a := uint64(2); a < 1<<22; a++ {
		if c.set(opAdd, a, 2, 0, 1) == want {
			return first, fusedEntry{a: a, b: 2, c: 0, k: 1, op: opAdd}
		}
	}
	t.Fatal("no colliding key found")
	return fusedEntry{}, fusedEntry{}
}

func TestFusedCacheKeepsBothWaysOfASet(t *testing.T) {
	c := newFusedCache()
	k1, k2 := sameSetKeys(t, c)
	r1, r2 := &Node{id: 101}, &Node{id: 102}
	c.put(k1.op, k1.a, k1.b, k1.c, k1.k, r1)
	c.put(k2.op, k2.a, k2.b, k2.c, k2.k, r2)
	// Direct mapping would have evicted k1 here; 2-way keeps both.
	if got, ok := c.get(k1.op, k1.a, k1.b, k1.c, k1.k); !ok || got != r1 {
		t.Fatalf("first key lost after colliding insert: %v %v", got, ok)
	}
	if got, ok := c.get(k2.op, k2.a, k2.b, k2.c, k2.k); !ok || got != r2 {
		t.Fatalf("second key lost: %v %v", got, ok)
	}
}

func TestFusedCachePromotionProtectsHotKey(t *testing.T) {
	c := newFusedCache()
	k1, k2 := sameSetKeys(t, c)
	r1, r2 := &Node{id: 101}, &Node{id: 102}
	c.put(k1.op, k1.a, k1.b, k1.c, k1.k, r1)
	c.put(k2.op, k2.a, k2.b, k2.c, k2.k, r2) // k1 demoted to secondary
	c.get(k1.op, k1.a, k1.b, k1.c, k1.k)     // promote k1 back
	// A third same-set insert must now evict k2 (the cold key), not k1.
	k3 := k2
	k3.b = 3
	// k3 may land in a different set; only assert when it collides too.
	if c.set(k3.op, k3.a, k3.b, k3.c, k3.k) == c.set(k1.op, k1.a, k1.b, k1.c, k1.k) {
		c.put(k3.op, k3.a, k3.b, k3.c, k3.k, &Node{id: 103})
		if _, ok := c.get(k1.op, k1.a, k1.b, k1.c, k1.k); !ok {
			t.Fatal("promoted hot key was evicted before the cold one")
		}
	}
	// Idempotent re-put of the primary must not duplicate it into both ways.
	c.put(k1.op, k1.a, k1.b, k1.c, k1.k, r1)
	i := c.set(k1.op, k1.a, k1.b, k1.c, k1.k)
	if c.entries[i].is(k1.op, k1.a, k1.b, k1.c, k1.k) &&
		c.entries[i|1].is(k1.op, k1.a, k1.b, k1.c, k1.k) {
		t.Fatal("re-put duplicated the key into both ways")
	}
}

func TestFusedCacheBinaryTernarySeparation(t *testing.T) {
	// Same operands under a binary op and the ternary op must not alias.
	c := newFusedCache()
	rb, rt := &Node{id: 7}, &Node{id: 8}
	c.put(opAdd, 5, 6, 0, 2, rb)
	c.put(opMulAdd, 5, 6, 0, 2, rt)
	if got, ok := c.get(opAdd, 5, 6, 0, 2); !ok || got != rb {
		t.Fatalf("binary entry lost or aliased: %v %v", got, ok)
	}
	if got, ok := c.get(opMulAdd, 5, 6, 0, 2); !ok || got != rt {
		t.Fatalf("ternary entry lost or aliased: %v %v", got, ok)
	}
}
