package mtbdd

import (
	"math"
	"math/rand"
	"testing"
)

// randLoad builds a random load-like MTBDD over n variables: a sum of
// terms that each gate a volume on one variable's polarity.
func randLoad(m *Manager, rng *rand.Rand, n, terms int) *Node {
	f := m.Zero()
	for t := 0; t < terms; t++ {
		v := rng.Intn(n)
		vol := float64(rng.Intn(40)) / 4
		g := m.Var(v)
		if rng.Intn(2) == 0 {
			g = m.Not(g)
		}
		f = m.Add(f, m.Scale(vol, g))
	}
	return f
}

func TestScanOutsideMatchesWitnessOutside(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(4)
		m := newMgr(t, n)
		f := randLoad(m, rng, n, 1+rng.Intn(6))
		lo := float64(rng.Intn(20))/2 - 2
		hi := lo + float64(rng.Intn(16))/2
		wa, wv, wok := m.WitnessOutside(f, lo, hi)
		hits := m.ScanOutside(f, []ScanCheck{{Lo: lo, Hi: hi, MaxFails: -1}})
		h := hits[0]
		if h.OK != wok {
			t.Fatalf("trial %d: ScanOutside ok=%v, WitnessOutside ok=%v", trial, h.OK, wok)
		}
		if !wok {
			continue
		}
		if h.Value != wv {
			t.Fatalf("trial %d: value %v != witness value %v", trial, h.Value, wv)
		}
		if len(h.A) != len(wa) {
			t.Fatalf("trial %d: assignment %v != witness %v", trial, h.A, wa)
		}
		for v, b := range wa {
			if h.A[v] != b {
				t.Fatalf("trial %d: assignment %v != witness %v", trial, h.A, wa)
			}
		}
	}
}

func TestScanOutsideMultiCheckMatchesSingles(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(3)
		m := newMgr(t, n)
		f := randLoad(m, rng, n, 1+rng.Intn(5))
		var checks []ScanCheck
		for c := 0; c < 1+rng.Intn(8); c++ {
			lo := float64(rng.Intn(20))/2 - 2
			checks = append(checks, ScanCheck{Lo: lo, Hi: lo + float64(rng.Intn(16))/2, MaxFails: rng.Intn(n+2) - 1})
		}
		batch := m.ScanOutside(f, checks)
		for i, c := range checks {
			single := m.ScanOutside(f, []ScanCheck{c})[0]
			if batch[i].OK != single.OK || batch[i].Value != single.Value {
				t.Fatalf("trial %d check %d: batch %+v != single %+v", trial, i, batch[i], single)
			}
		}
	}
}

// TestScanOutsideMaxFailsBruteForce checks budgeted feasibility and witness
// validity against exhaustive evaluation: a check is violated iff some
// full assignment with at most MaxFails failures evaluates outside its
// interval (paths and full assignments agree — don't-cares extend alive).
func TestScanOutsideMaxFailsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(3)
		m := newMgr(t, n)
		f := randLoad(m, rng, n, 1+rng.Intn(5))
		lo := float64(rng.Intn(20))/2 - 2
		hi := lo + float64(rng.Intn(16))/2
		for budget := 0; budget <= n; budget++ {
			want := false
			allAssignments(n, func(assign []bool) {
				if failures(assign) > budget {
					return
				}
				v := m.Eval(f, assign)
				if v < lo || v > hi {
					want = true
				}
			})
			h := m.ScanOutside(f, []ScanCheck{{Lo: lo, Hi: hi, MaxFails: budget}})[0]
			if h.OK != want {
				t.Fatalf("trial %d budget %d: got ok=%v want %v", trial, budget, h.OK, want)
			}
			if !h.OK {
				continue
			}
			if got := len(h.A.FailedVars()); got > budget {
				t.Fatalf("trial %d: witness has %d failures, budget %d", trial, got, budget)
			}
			// The witness value must be the function's value at the
			// witness scenario (don't-cares alive).
			assign := make([]bool, n)
			for i := range assign {
				assign[i] = true
			}
			for v, b := range h.A {
				assign[v] = b
			}
			if v := m.Eval(f, assign); v != h.Value {
				t.Fatalf("trial %d: witness value %v, Eval %v", trial, h.Value, v)
			}
			if !(h.Value < lo || h.Value > hi) {
				t.Fatalf("trial %d: witness value %v inside [%v,%v]", trial, h.Value, lo, hi)
			}
		}
	}
}

func TestScanOutsideEdgeCases(t *testing.T) {
	m := newMgr(t, 2)
	if got := m.ScanOutside(m.Const(5), nil); len(got) != 0 {
		t.Fatalf("no checks must return no hits, got %v", got)
	}
	h := m.ScanOutside(m.Const(5), []ScanCheck{{Lo: math.Inf(-1), Hi: 4, MaxFails: 0}})[0]
	if !h.OK || h.Value != 5 || len(h.A) != 0 {
		t.Fatalf("terminal root: %+v", h)
	}
	h = m.ScanOutside(m.Const(5), []ScanCheck{{Lo: math.Inf(-1), Hi: 5, MaxFails: -1}})[0]
	if h.OK {
		t.Fatalf("in-range terminal must not hit: %+v", h)
	}
}
