package mtbdd

import (
	"math/rand"
	"testing"
)

// The contract every fused kernel must honor: byte-for-byte agreement
// with the composed build-then-reduce pipeline it replaces. Because both
// sides hash-cons into the same unique table, agreement is checked as
// exact *Node identity — the strongest form, and the one the engine's
// "reports unchanged" guarantee rests on.

// binaryKernel pairs one fused operator with its composed form.
type binaryKernel struct {
	name     string
	fused    func(m *Manager, f, g *Node, k int) *Node
	composed func(m *Manager, f, g *Node) *Node
}

// arithKernels accept arbitrary multi-terminal operands.
var arithKernels = []binaryKernel{
	{"AddK", (*Manager).AddK, (*Manager).Add},
	{"SubK", (*Manager).SubK, (*Manager).Sub},
	{"MulK", (*Manager).MulK, (*Manager).Mul},
	{"DivK", (*Manager).DivK, (*Manager).Div},
	{"MinK", (*Manager).MinK, (*Manager).Min},
	{"MaxK", (*Manager).MaxK, (*Manager).Max},
}

// boolKernels require {0,1} guard operands — their shortcuts (g∧1 = g,
// g∨0 = g, ...) are identities only on guards, exactly like the plain
// And/Or/Xor they fuse.
var boolKernels = []binaryKernel{
	{"AndK", (*Manager).AndK, (*Manager).And},
	{"OrK", (*Manager).OrK, (*Manager).Or},
	{"XorK", (*Manager).XorK, (*Manager).Xor},
}

// randomGuard builds a random {0,1} MTBDD — the edge-up/selection guard
// shapes the boolean kernels are fed by the engine.
func randomGuard(m *Manager, r *rand.Rand, n, depth int) *Node {
	if depth == 0 || r.Intn(4) == 0 {
		g := m.Var(r.Intn(n))
		if r.Intn(2) == 0 {
			g = m.Not(g)
		}
		return g
	}
	a := randomGuard(m, r, n, depth-1)
	b := randomGuard(m, r, n, depth-1)
	switch r.Intn(3) {
	case 0:
		return m.And(a, b)
	case 1:
		return m.Or(a, b)
	default:
		return m.Xor(a, b)
	}
}

// TestFusedBinaryKernelsMatchComposed drives every binary kernel over
// random operands and every budget from 0 through past NumVars,
// requiring the exact canonical node the composed pipeline builds.
func TestFusedBinaryKernelsMatchComposed(t *testing.T) {
	const n = 6
	m := newMgr(t, n)
	r := rand.New(rand.NewSource(51))
	check := func(trial int, bk binaryKernel, f, g *Node) {
		t.Helper()
		for k := 0; k <= n+2; k++ {
			want := m.KReduce(bk.composed(m, f, g), k)
			if got := bk.fused(m, f, g, k); got != want {
				t.Fatalf("%s(f,g,%d) = %s, want %s (trial %d)",
					bk.name, k, m.String(got), m.String(want), trial)
			}
		}
		// Negative budget is the reduction-disabled ablation: the
		// kernel must degrade to the plain operator.
		if got, want := bk.fused(m, f, g, -1), bk.composed(m, f, g); got != want {
			t.Fatalf("%s(f,g,-1) = %s, want plain %s", bk.name, m.String(got), m.String(want))
		}
	}
	for trial := 0; trial < 30; trial++ {
		f := randomMTBDD(m, r, n, 4)
		g := randomMTBDD(m, r, n, 4)
		for _, bk := range arithKernels {
			check(trial, bk, f, g)
		}
		gf := randomGuard(m, r, n, 4)
		gg := randomGuard(m, r, n, 4)
		for _, bk := range boolKernels {
			check(trial, bk, gf, gg)
		}
	}
}

// TestFusedKernelEvalAgreement is the semantic (Lemma 1) face of the
// same contract: the fused result agrees with the exact pointwise
// operation on every assignment with at most k failures.
func TestFusedKernelEvalAgreement(t *testing.T) {
	const n = 6
	m := newMgr(t, n)
	r := rand.New(rand.NewSource(52))
	for trial := 0; trial < 20; trial++ {
		f := randomMTBDD(m, r, n, 4)
		g := randomMTBDD(m, r, n, 4)
		k := r.Intn(n)
		sum := m.AddK(f, g, k)
		prod := m.MulK(f, g, k)
		allAssignments(n, func(assign []bool) {
			if failures(assign) > k {
				return
			}
			fv, gv := m.Eval(f, assign), m.Eval(g, assign)
			if got := m.Eval(sum, assign); got != fv+gv {
				t.Fatalf("AddK k=%d at %v: %v, want %v", k, assign, got, fv+gv)
			}
			if got := m.Eval(prod, assign); got != fv*gv {
				t.Fatalf("MulK k=%d at %v: %v, want %v", k, assign, got, fv*gv)
			}
		})
	}
}

// TestFusedKernelsEdgeBudgets pins the two budget extremes: k=0
// collapses everything to the all-alive terminal, and k >= NumVars makes
// the reduction the identity, so the kernel must return exactly the
// plain operator's node.
func TestFusedKernelsEdgeBudgets(t *testing.T) {
	const n = 5
	m := newMgr(t, n)
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 20; trial++ {
		f := randomMTBDD(m, r, n, 4)
		g := randomMTBDD(m, r, n, 4)
		z := m.AddK(f, g, 0)
		if !z.IsTerminal() {
			t.Fatalf("AddK(f,g,0) must be a terminal, got %s", m.String(z))
		}
		if want := m.EvalAllAlive(f) + m.EvalAllAlive(g); z.Value != want {
			t.Fatalf("AddK(f,g,0) = %v, want all-alive sum %v", z.Value, want)
		}
		for _, k := range []int{n, n + 1, n + 7} {
			if got, want := m.AddK(f, g, k), m.Add(f, g); got != want {
				t.Fatalf("AddK with saturating budget %d diverged from plain Add", k)
			}
		}
	}
}

// TestMulAddMatchesComposed: the unfused ternary shortcut form must be
// value-identical to Add(acc, Mul(w, f)) — node-identical, since both
// compute the same float expressions.
func TestMulAddMatchesComposed(t *testing.T) {
	const n = 5
	m := newMgr(t, n)
	r := rand.New(rand.NewSource(54))
	for trial := 0; trial < 30; trial++ {
		acc := randomMTBDD(m, r, n, 3)
		w := randomMTBDD(m, r, n, 3)
		f := randomMTBDD(m, r, n, 3)
		if got, want := m.MulAdd(acc, w, f), m.Add(acc, m.Mul(w, f)); got != want {
			t.Fatalf("MulAdd = %s, want %s", m.String(got), m.String(want))
		}
	}
	// Identity shortcuts.
	x := m.Var(2)
	if m.MulAdd(x, m.Zero(), m.One()) != x || m.MulAdd(x, m.One(), m.Zero()) != x {
		t.Fatal("MulAdd with a zero factor must return acc unchanged")
	}
}

// TestMulAddKMatchesComposed is the fused ternary contract: exact node
// identity with Reduce(acc + w*f) across budgets, including the
// shortcut edges (zero/one operands, all-terminal, k=0, negative k).
func TestMulAddKMatchesComposed(t *testing.T) {
	const n = 6
	m := newMgr(t, n)
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 30; trial++ {
		acc := randomMTBDD(m, r, n, 3)
		w := randomMTBDD(m, r, n, 3)
		f := randomMTBDD(m, r, n, 3)
		for k := 0; k <= n+1; k++ {
			want := m.KReduce(m.Add(acc, m.Mul(w, f)), k)
			if got := m.MulAddK(acc, w, f, k); got != want {
				t.Fatalf("MulAddK(k=%d) = %s, want %s (trial %d)",
					k, m.String(got), m.String(want), trial)
			}
		}
		if got, want := m.MulAddK(acc, w, f, -1), m.MulAdd(acc, w, f); got != want {
			t.Fatal("MulAddK(-1) must degrade to the unfused MulAdd")
		}
	}
	// Shortcut edges against the composed form.
	g := m.Or(m.Var(0), m.Var(3))
	for k := 0; k <= 3; k++ {
		if m.MulAddK(g, m.Zero(), m.Var(1), k) != m.KReduce(g, k) {
			t.Fatal("zero weight must reduce to KReduce(acc)")
		}
		if m.MulAddK(g, m.One(), m.Var(1), k) != m.AddK(g, m.Var(1), k) {
			t.Fatal("unit weight must reduce to AddK(acc, f)")
		}
		if m.MulAddK(m.Zero(), g, m.Var(1), k) != m.MulK(g, m.Var(1), k) {
			t.Fatal("zero acc must reduce to MulK(w, f)")
		}
	}
}

// TestAddNMatchesFold: for exact-valued operands (selection guards and
// small halves of integers — the only inputs the engine feeds it) the
// balanced tree must agree with the left fold node-for-node.
func TestAddNMatchesFold(t *testing.T) {
	const n = 6
	m := newMgr(t, n)
	r := rand.New(rand.NewSource(56))
	for trial := 0; trial < 20; trial++ {
		var fs []*Node
		for i := 0; i < 1+r.Intn(7); i++ {
			// {0,1} guards: sums stay small integers, exactly associative.
			g := m.Var(r.Intn(n))
			if r.Intn(2) == 0 {
				g = m.Not(g)
			}
			fs = append(fs, m.And(g, m.Var(r.Intn(n))))
		}
		fold := m.Zero()
		for _, f := range fs {
			fold = m.Add(fold, f)
		}
		if got := m.AddN(fs); got != fold {
			t.Fatalf("AddN over %d guards = %s, want fold %s", len(fs), m.String(got), m.String(fold))
		}
		orFold := m.Zero()
		for _, f := range fs {
			orFold = m.Or(orFold, f)
		}
		if got := m.OrN(fs); got != orFold {
			t.Fatalf("OrN diverged from the Or fold")
		}
	}
	if m.AddN(nil) != m.Zero() || m.OrN(nil) != m.Zero() {
		t.Fatal("empty AddN/OrN must be zero")
	}
	one := m.One()
	if m.AddN([]*Node{one}) != one || m.OrN([]*Node{one}) != one {
		t.Fatal("singleton AddN/OrN must be the element itself")
	}
}

// TestAddNKMatchesComposed: the k-budgeted balanced sum must equal
// KReduce of the plain balanced sum, for guard inputs, at every budget.
func TestAddNKMatchesComposed(t *testing.T) {
	const n = 6
	m := newMgr(t, n)
	r := rand.New(rand.NewSource(57))
	for trial := 0; trial < 20; trial++ {
		var fs []*Node
		for i := 0; i < 1+r.Intn(7); i++ {
			g := m.Var(r.Intn(n))
			if r.Intn(2) == 0 {
				g = m.Not(g)
			}
			fs = append(fs, m.And(g, m.Var(r.Intn(n))))
		}
		for k := 0; k <= n+1; k++ {
			want := m.KReduce(m.AddN(fs), k)
			if got := m.AddNK(fs, k); got != want {
				t.Fatalf("AddNK(%d guards, k=%d) = %s, want %s",
					len(fs), k, m.String(got), m.String(want))
			}
		}
		if m.AddNK(fs, -1) != m.AddN(fs) {
			t.Fatal("AddNK(-1) must degrade to plain AddN")
		}
	}
	for k := 0; k <= 2; k++ {
		if m.AddNK(nil, k) != m.Zero() {
			t.Fatal("empty AddNK must be zero")
		}
		f := m.And(m.Var(0), m.Var(1))
		if m.AddNK([]*Node{f}, k) != m.KReduce(f, k) {
			t.Fatal("singleton AddNK must be KReduce of the element")
		}
	}
}

// TestFusedKernelsAfterGC: garbage collection rebuilds the unique table
// and drops the fused cache; the kernels must keep producing the same
// canonical results afterwards.
func TestFusedKernelsAfterGC(t *testing.T) {
	const n = 6
	m := newMgr(t, n)
	r := rand.New(rand.NewSource(58))
	f := randomMTBDD(m, r, n, 4)
	g := randomMTBDD(m, r, n, 4)
	before := m.AddK(f, g, 2)
	m.GC([]*Node{f, g, before})
	if got := m.AddK(f, g, 2); got != before {
		t.Fatalf("AddK changed across GC: %s vs %s", m.String(got), m.String(before))
	}
	if got, want := m.MulAddK(before, f, g, 2), m.KReduce(m.Add(before, m.Mul(f, g)), 2); got != want {
		t.Fatal("MulAddK diverged from composed form after GC")
	}
}
