package mtbdd

import "math"

// opcode identifies a binary terminal operation for the apply cache.
type opcode uint8

const (
	opAdd opcode = iota
	opSub
	opMul
	opDiv // 0/0 and x/0 yield 0 (see Div)
	opMin
	opMax
	// Boolean ops on {0,1} MTBDDs. And/Or are min/max restricted to
	// guards; they get their own opcodes so guard-only shortcuts apply.
	opAnd
	opOr
	opXor
	// opMulAdd tags the fused ternary multiply-accumulate in the fused
	// computed table (kernels.go); it is never passed to eval.
	opMulAdd
)

func (op opcode) eval(a, b float64) float64 {
	switch op {
	case opAdd:
		return a + b
	case opSub:
		return a - b
	case opMul:
		return a * b
	case opDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case opMin:
		return math.Min(a, b)
	case opMax:
		return math.Max(a, b)
	case opAnd:
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	case opOr:
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	case opXor:
		if (a != 0) != (b != 0) {
			return 1
		}
		return 0
	}
	panic("mtbdd: unknown opcode")
}

// shortcut returns a precomputed result for algebraic identities that avoid
// recursion entirely, or nil if none applies.
func (m *Manager) shortcut(op opcode, f, g *Node) *Node {
	switch op {
	case opAdd:
		if f == m.zero {
			return g
		}
		if g == m.zero {
			return f
		}
	case opSub:
		if g == m.zero {
			return f
		}
	case opMul:
		if f == m.zero || g == m.zero {
			return m.zero
		}
		if f == m.one {
			return g
		}
		if g == m.one {
			return f
		}
	case opDiv:
		if f == m.zero {
			return m.zero
		}
		if g == m.one {
			return f
		}
	case opMin, opAnd:
		if f == g {
			return f
		}
		if op == opAnd {
			if f == m.zero || g == m.zero {
				return m.zero
			}
			if f == m.one {
				return g
			}
			if g == m.one {
				return f
			}
		}
	case opMax, opOr:
		if f == g {
			return f
		}
		if op == opOr {
			if f == m.one || g == m.one {
				return m.one
			}
			if f == m.zero {
				return g
			}
			if g == m.zero {
				return f
			}
		}
	case opXor:
		if f == g {
			return m.zero
		}
		if f == m.zero {
			return g
		}
		if g == m.zero {
			return f
		}
	}
	return nil
}

// commutes reports whether op is commutative, letting the apply cache
// canonicalize operand order.
func (op opcode) commutes() bool {
	switch op {
	case opAdd, opMul, opMin, opMax, opAnd, opOr, opXor:
		return true
	}
	return false
}

// apply is Bryant's APPLY generalized to multi-terminal operations.
func (m *Manager) apply(op opcode, f, g *Node) *Node {
	if r := m.shortcut(op, f, g); r != nil {
		return r
	}
	if f.IsTerminal() && g.IsTerminal() {
		return m.Const(op.eval(f.Value, g.Value))
	}
	a, b := f, g
	if op.commutes() && a.id > b.id {
		a, b = b, a
	}
	if r, ok := m.applyTbl.get(op, a.id, b.id); ok {
		m.applyHits++
		return r
	}
	m.applyMisses++
	m.checkInterrupt()

	// Descend on the smaller (earlier) level.
	level := f.Level
	if g.Level < level {
		level = g.Level
	}
	fLo, fHi := f, f
	if f.Level == level {
		fLo, fHi = f.Lo, f.Hi
	}
	gLo, gHi := g, g
	if g.Level == level {
		gLo, gHi = g.Lo, g.Hi
	}
	r := m.mk(level, m.apply(op, fLo, gLo), m.apply(op, fHi, gHi))
	m.applyTbl.put(op, a.id, b.id, r)
	return r
}

// Add returns f + g.
func (m *Manager) Add(f, g *Node) *Node { return m.apply(opAdd, f, g) }

// Sub returns f - g.
func (m *Manager) Sub(f, g *Node) *Node { return m.apply(opSub, f, g) }

// Mul returns f * g (pointwise).
func (m *Manager) Mul(f, g *Node) *Node { return m.apply(opMul, f, g) }

// Div returns f / g pointwise, with the convention that any division by a
// zero denominator yields 0. This matches the paper's ECMP encoding
// c_r = s_r / Σ s_r': wherever the denominator (number of selected rules)
// is 0, the numerator is 0 too, and the traffic ratio is 0.
func (m *Manager) Div(f, g *Node) *Node { return m.apply(opDiv, f, g) }

// Min returns the pointwise minimum of f and g.
func (m *Manager) Min(f, g *Node) *Node { return m.apply(opMin, f, g) }

// Max returns the pointwise maximum of f and g.
func (m *Manager) Max(f, g *Node) *Node { return m.apply(opMax, f, g) }

// And returns the conjunction of two {0,1} guards.
func (m *Manager) And(f, g *Node) *Node { return m.apply(opAnd, f, g) }

// Or returns the disjunction of two {0,1} guards.
func (m *Manager) Or(f, g *Node) *Node { return m.apply(opOr, f, g) }

// Xor returns the exclusive-or of two {0,1} guards.
func (m *Manager) Xor(f, g *Node) *Node { return m.apply(opXor, f, g) }

// Not returns the complement 1-f of a {0,1} guard.
func (m *Manager) Not(f *Node) *Node {
	if f == m.zero {
		return m.one
	}
	if f == m.one {
		return m.zero
	}
	if r, ok := m.negTbl.get(f.id); ok {
		m.negHits++
		return r
	}
	m.negMisses++
	var r *Node
	if f.IsTerminal() {
		if f.Value != 0 {
			r = m.zero
		} else {
			r = m.one
		}
	} else {
		r = m.mk(f.Level, m.Not(f.Lo), m.Not(f.Hi))
	}
	m.negTbl.put(f.id, r)
	return r
}

// Scale returns c * f for a scalar c.
func (m *Manager) Scale(c float64, f *Node) *Node {
	if c == 1 {
		return f
	}
	return m.Mul(m.Const(c), f)
}

// ITE returns the if-then-else composition g·f + (1-g)·h, where g is a
// {0,1} guard.
func (m *Manager) ITE(g, f, h *Node) *Node {
	if g == m.one {
		return f
	}
	if g == m.zero {
		return h
	}
	if f == h {
		return f
	}
	return m.Add(m.Mul(g, f), m.Mul(m.Not(g), h))
}

// Restrict returns the cofactor of f with variable v fixed to val.
func (m *Manager) Restrict(f *Node, v int, val bool) *Node {
	m.checkVar(v)
	return m.restrict(f, int32(v), val, make(map[*Node]*Node))
}

func (m *Manager) restrict(f *Node, v int32, val bool, memo map[*Node]*Node) *Node {
	if f.IsTerminal() || f.Level > v {
		return f
	}
	if r, ok := memo[f]; ok {
		return r
	}
	var r *Node
	if f.Level == v {
		if val {
			r = f.Hi
		} else {
			r = f.Lo
		}
	} else {
		r = m.mk(f.Level, m.restrict(f.Lo, v, val, memo), m.restrict(f.Hi, v, val, memo))
	}
	memo[f] = r
	return r
}

// Sum returns the sum of all the given MTBDDs (0 for an empty slice).
func (m *Manager) Sum(fs []*Node) *Node {
	acc := m.zero
	for _, f := range fs {
		acc = m.Add(acc, f)
	}
	return acc
}

// OrAll returns the disjunction of all the given guards (0 for empty).
func (m *Manager) OrAll(fs []*Node) *Node {
	acc := m.zero
	for _, f := range fs {
		acc = m.Or(acc, f)
	}
	return acc
}

// AndAll returns the conjunction of all the given guards (1 for empty).
func (m *Manager) AndAll(fs []*Node) *Node {
	acc := m.one
	for _, f := range fs {
		acc = m.And(acc, f)
	}
	return acc
}
