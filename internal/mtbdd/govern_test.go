package mtbdd

import (
	"errors"
	"testing"

	"github.com/yu-verify/yu/internal/govern"
)

// buildBig constructs a function with many distinct terminal values so
// the unique table grows well past any small budget.
func buildBig(m *Manager, vars int) *Node {
	for i := 0; i < vars; i++ {
		m.AddVar("x")
	}
	f := m.Zero()
	for i := 0; i < vars; i++ {
		f = m.Add(f, m.Mul(m.Var(i), m.Const(float64(i+1))))
	}
	return f
}

// TestBudgetUnwind breaches a small node budget inside Guard and checks
// the typed error surfaces via errors.Is, then lifts the budget and
// confirms the manager is still fully usable.
func TestBudgetUnwind(t *testing.T) {
	m := New()
	m.SetNodeBudget(8)
	err := Guard(func() { buildBig(m, 12) })
	if err == nil {
		t.Fatal("no error from a 12-variable build under an 8-node budget")
	}
	if !errors.Is(err, govern.ErrNodeBudget) {
		t.Fatalf("err = %v, want govern.ErrNodeBudget", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T, want *BudgetError", err)
	}
	if be.Limit != 8 || be.Live <= be.Limit {
		t.Fatalf("BudgetError{Limit: %d, Live: %d} inconsistent", be.Limit, be.Live)
	}

	// After lifting the budget the same manager must finish the build:
	// an abort leaves only canonical nodes behind.
	m.SetNodeBudget(0)
	f := m.Zero()
	for i := 0; i < m.NumVars(); i++ {
		f = m.Add(f, m.Mul(m.Var(i), m.Const(float64(i+1))))
	}
	assign := make([]bool, m.NumVars())
	assign[3] = true
	if got := m.Eval(f, assign); got != 4 {
		t.Fatalf("post-abort Eval = %g, want 4", got)
	}
}

// TestInterruptAborts installs an interrupt hook that trips after a few
// polls and checks the operation unwinds with the hook's error.
func TestInterruptAborts(t *testing.T) {
	m := New()
	polls := 0
	m.SetInterrupt(func() error {
		polls++
		if polls >= 2 {
			return govern.ErrCanceled
		}
		return nil
	})
	err := Guard(func() {
		// Keep rebuilding from scratch so apply cannot be satisfied
		// from cache and op counting continues.
		for i := 0; ; i++ {
			m.ClearCaches()
			buildBigFrom(m, 16, float64(i))
		}
	})
	if !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("err = %v, want govern.ErrCanceled", err)
	}
	if prev := m.SetInterrupt(nil); prev == nil {
		t.Fatal("SetInterrupt(nil) did not return the previous hook")
	}
	// The manager stays usable after the abort.
	if got := m.Eval(m.Const(7), nil); got != 7 {
		t.Fatalf("post-interrupt Eval = %g, want 7", got)
	}
}

// buildBigFrom is buildBig with an offset so successive rounds create
// fresh nodes (distinct terminals) instead of hitting the unique table.
func buildBigFrom(m *Manager, vars int, offset float64) *Node {
	for m.NumVars() < vars {
		m.AddVar("x")
	}
	f := m.Zero()
	for i := 0; i < vars; i++ {
		f = m.Add(f, m.Mul(m.Var(i), m.Const(offset+float64(i)+0.5)))
	}
	return f
}

// TestAbortSharesUnwindPath checks mtbdd.Abort reaches the nearest Guard
// like a native abort, and that non-abort panics pass through Guard.
func TestAbortSharesUnwindPath(t *testing.T) {
	want := errors.New("stop now")
	err := Guard(func() { Abort(want) })
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}

	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Guard swallowed a non-abort panic")
		}
	}()
	Guard(func() { panic("unrelated") }) //nolint:errcheck
}
