package mtbdd

import "testing"

// buildSnapshotFixtures creates a manager with a few interleaved functions
// exercising sharing, terminals, and multi-variable structure.
func buildSnapshotFixtures(t *testing.T) (*Manager, []*Node) {
	t.Helper()
	m := New()
	for i := 0; i < 8; i++ {
		m.AddVar("x")
	}
	a := m.Var(0)
	b := m.Mul(m.Var(1), m.Const(0.5))
	c := m.Add(a, b)
	d := m.Min(c, m.ITE(m.Var(3), m.Const(2), b))
	e := m.KReduce(m.Add(d, m.Var(7)), 2)
	return m, []*Node{a, b, c, d, e, m.Zero(), m.One(), m.Const(3.25)}
}

// TestSnapshotReplayMatchesImport pins the core contract: replaying a
// snapshot into a destination manager yields exactly the node the
// recursive cross-manager Import would, for every root.
func TestSnapshotReplayMatchesImport(t *testing.T) {
	src, roots := buildSnapshotFixtures(t)
	_ = src
	snap := NewSnapshot(roots)
	if snap.Len() == 0 {
		t.Fatal("empty snapshot from non-empty roots")
	}

	dst := New()
	for i := 0; i < 8; i++ {
		dst.AddVar("x")
	}
	table := dst.ImportSnapshot(snap)
	if len(table) != snap.Len() {
		t.Fatalf("table has %d entries, snapshot %d", len(table), snap.Len())
	}
	for ri, r := range roots {
		i, ok := snap.Index(r)
		if !ok {
			t.Fatalf("root %d missing from snapshot index", ri)
		}
		if got, want := table[i], dst.Import(r); got != want {
			t.Fatalf("root %d: replay produced %p, Import produced %p", ri, got, want)
		}
	}
}

// TestSnapshotSharedNodesEncodedOnce checks deduplication: encoding the
// same root twice (and roots sharing subgraphs) never duplicates entries.
func TestSnapshotSharedNodesEncodedOnce(t *testing.T) {
	src, roots := buildSnapshotFixtures(t)
	once := NewSnapshot(roots)
	doubled := NewSnapshot(append(append([]*Node{}, roots...), roots...))
	if once.Len() != doubled.Len() {
		t.Fatalf("duplicated roots grew the snapshot: %d vs %d", once.Len(), doubled.Len())
	}
	// Every distinct reachable node appears exactly once.
	distinct := src.NodeCountMulti(roots)
	if once.Len() != distinct {
		t.Fatalf("snapshot has %d entries, %d distinct nodes reachable", once.Len(), distinct)
	}
}

// TestSnapshotNilRootsAndEmpty covers the degenerate inputs.
func TestSnapshotNilRootsAndEmpty(t *testing.T) {
	empty := NewSnapshot(nil)
	if empty.Len() != 0 {
		t.Fatalf("empty snapshot has %d entries", empty.Len())
	}
	dst := New()
	if table := dst.ImportSnapshot(empty); len(table) != 0 {
		t.Fatalf("replay of empty snapshot returned %d entries", len(table))
	}

	m := New()
	m.AddVar("x")
	snap := NewSnapshot([]*Node{nil, m.Var(0), nil})
	if snap.Len() != 3 { // zero, one, the var node
		t.Fatalf("nil-tolerant snapshot has %d entries, want 3", snap.Len())
	}
}

// TestSnapshotVariableCheck pins the panic on an under-declared
// destination manager.
func TestSnapshotVariableCheck(t *testing.T) {
	m := New()
	for i := 0; i < 4; i++ {
		m.AddVar("x")
	}
	snap := NewSnapshot([]*Node{m.Var(3)})
	dst := New()
	dst.AddVar("x") // only 1 variable; snapshot tests variable 3
	defer func() {
		if recover() == nil {
			t.Fatal("ImportSnapshot into an under-declared manager must panic")
		}
	}()
	dst.ImportSnapshot(snap)
}

// TestReserve checks that reserved slabs are consumed by later node
// construction and that reserving is invisible to the node graph.
func TestReserve(t *testing.T) {
	m := New()
	m.AddVar("x")
	m.Reserve(3 * slabSize)
	if len(m.spare) == 0 {
		t.Fatal("Reserve left no spare slabs")
	}
	before := len(m.spare)
	// Burn through enough nodes to consume at least one spare slab.
	f := m.Var(0)
	for i := 0; i < slabSize+2; i++ {
		f = m.Add(f, m.Const(float64(i)))
	}
	if len(m.spare) >= before {
		t.Fatalf("alloc did not consume spare slabs (%d before, %d after)", before, len(m.spare))
	}
	// Reserving with enough free capacity must be a no-op.
	m2 := New()
	m2.Reserve(1)
	if len(m2.spare) != 0 {
		t.Fatalf("Reserve(1) on a fresh manager allocated %d spare slabs", len(m2.spare))
	}
}
