package mtbdd

// Hash-table machinery tuned for the hot paths. The unique table is an
// exact open-addressing map (hash consing must never alias distinct
// nodes); the operation caches are fixed-size direct-mapped and lossy —
// a collision merely recomputes a result, which is deterministic and
// re-canonicalized by the unique table, so correctness is unaffected.
// This is the classic BDD-package design (CUDD-style computed tables):
// Go's generic maps spend most of the runtime in hashing and GC scans.

const (
	applyCacheBits   = 20 // 1M entries
	kreduceCacheBits = 19
	// The fused table serves every k-budgeted kernel — binary applies AND
	// the ternary multiply-accumulate, each keyed by k — so its key space
	// is the largest of the operation caches. At 19 bits direct-mapped it
	// ran ~20% hits (BENCH_PR9: 1.29M hits / 5.25M misses); sized up to
	// match the apply cache and organized as 2-way sets (below) the churn
	// benchmark's conflict misses drop by an order of magnitude. Entries
	// are zero pages until touched, so the virtual size is not paid by
	// small runs.
	fusedCacheBits = 20
	unaryCacheBits = 17
)

// mix64 is a splitmix64-style finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// --- unique table (exact) ---

type uniqueEntry struct {
	level  int32
	lo, hi uint64
	node   *Node
}

type uniqueTable struct {
	entries []uniqueEntry
	count   int
	mask    uint64
	// maxProbe is the longest linear-probe run ever observed on this
	// table, a direct measurement of hash clustering. It is carried
	// forward across GC rebuilds (the stat is a lifetime high-water mark).
	maxProbe int
}

func newUniqueTable() *uniqueTable {
	const initial = 1 << 12
	return &uniqueTable{entries: make([]uniqueEntry, initial), mask: initial - 1}
}

// hash mixes all three key components through independent odd multipliers
// before the finalizer. The previous scheme (`lo<<1`) left lo nearly raw,
// so sequentially-assigned lo ids formed arithmetic clusters in the table;
// multiply-mixing each operand spreads them (the maxProbe stat is how we
// confirmed the change).
func (t *uniqueTable) hash(level int32, lo, hi uint64) uint64 {
	return mix64(lo*0x9e3779b97f4a7c15 ^ hi*0xc2b2ae3d27d4eb4f ^ uint64(uint32(level))*0x165667b19e3779f9)
}

// lookup returns the canonical node for (level, lo, hi) or nil.
func (t *uniqueTable) lookup(level int32, lo, hi uint64) *Node {
	i := t.hash(level, lo, hi) & t.mask
	probes := 0
	for {
		e := &t.entries[i]
		if e.node == nil {
			t.noteProbes(probes)
			return nil
		}
		if e.level == level && e.lo == lo && e.hi == hi {
			t.noteProbes(probes)
			return e.node
		}
		i = (i + 1) & t.mask
		probes++
	}
}

// insert adds a node known to be absent.
func (t *uniqueTable) insert(level int32, lo, hi uint64, n *Node) {
	if t.count*4 >= len(t.entries)*3 {
		t.grow()
	}
	i := t.hash(level, lo, hi) & t.mask
	probes := 0
	for t.entries[i].node != nil {
		i = (i + 1) & t.mask
		probes++
	}
	t.noteProbes(probes)
	t.entries[i] = uniqueEntry{level, lo, hi, n}
	t.count++
}

func (t *uniqueTable) noteProbes(p int) {
	if p > t.maxProbe {
		t.maxProbe = p
	}
}

func (t *uniqueTable) grow() {
	old := t.entries
	t.entries = make([]uniqueEntry, len(old)*2)
	t.mask = uint64(len(t.entries) - 1)
	for _, e := range old {
		if e.node == nil {
			continue
		}
		i := t.hash(e.level, e.lo, e.hi) & t.mask
		for t.entries[i].node != nil {
			i = (i + 1) & t.mask
		}
		t.entries[i] = e
	}
}

// --- apply cache (lossy, direct-mapped) ---

type applyEntry struct {
	f, g uint64 // operand ids; f == 0 marks an empty slot (ids start at 1)
	op   opcode
	res  *Node
}

type applyCache struct {
	entries []applyEntry
	mask    uint64
}

func newApplyCache() *applyCache {
	size := 1 << applyCacheBits
	return &applyCache{entries: make([]applyEntry, size), mask: uint64(size - 1)}
}

func (c *applyCache) slot(op opcode, f, g uint64) *applyEntry {
	h := mix64(f<<6 ^ g ^ uint64(op)<<58)
	return &c.entries[h&c.mask]
}

func (c *applyCache) get(op opcode, f, g uint64) (*Node, bool) {
	e := c.slot(op, f, g)
	if e.f == f && e.g == g && e.op == op && e.f != 0 {
		return e.res, true
	}
	return nil, false
}

func (c *applyCache) put(op opcode, f, g uint64, res *Node) {
	*c.slot(op, f, g) = applyEntry{f, g, op, res}
}

// --- kreduce cache (lossy, direct-mapped) ---

type kreduceEntry struct {
	f   uint64
	k   int32
	res *Node
}

type kreduceCache struct {
	entries []kreduceEntry
	mask    uint64
}

func newKReduceCache() *kreduceCache {
	size := 1 << kreduceCacheBits
	return &kreduceCache{entries: make([]kreduceEntry, size), mask: uint64(size - 1)}
}

func (c *kreduceCache) get(f uint64, k int32) (*Node, bool) {
	e := &c.entries[mix64(f^uint64(k)<<48)&c.mask]
	if e.f == f && e.k == k {
		return e.res, true
	}
	return nil, false
}

func (c *kreduceCache) put(f uint64, k int32, res *Node) {
	c.entries[mix64(f^uint64(k)<<48)&c.mask] = kreduceEntry{f, k, res}
}

// --- fused-kernel cache (lossy, 2-way set-associative) ---
//
// One computed table serves every budgeted kernel: binary k-budgeted
// applies key (op, f, g, 0, k) and the ternary multiply-accumulate keys
// (opMulAdd, acc, w, f, k). Operand ids start at 1, so a == 0 marks an
// empty slot.
//
// Unlike the other operation caches this one is 2-way: each set is a
// pair of adjacent entries (one cache line), the primary way holds the
// most recently touched key, and an insert demotes the primary into the
// secondary instead of evicting it outright. The budgeted kernels revisit
// (operands, k) pairs across nearby k values, so two hot keys routinely
// share a set — under direct mapping they evicted each other every
// recursion level.

type fusedEntry struct {
	a, b, c uint64
	k       int32
	op      opcode
	res     *Node
}

func (e *fusedEntry) is(op opcode, a, b, c uint64, k int32) bool {
	return e.a == a && e.b == b && e.c == c && e.k == k && e.op == op && e.a != 0
}

type fusedCache struct {
	entries []fusedEntry
	mask    uint64
}

func newFusedCache() *fusedCache {
	size := 1 << fusedCacheBits
	return &fusedCache{entries: make([]fusedEntry, size), mask: uint64(size - 1)}
}

// set returns the even index of the key's 2-entry set. Every key
// component goes through its own odd multiplier before the finalizer:
// op and k used to ride in as bare shifted bits, which left ternary and
// binary keys with identical operands one bit-flip apart.
func (t *fusedCache) set(op opcode, a, b, c uint64, k int32) uint64 {
	h := mix64(a*0x9e3779b97f4a7c15 ^ b*0xc2b2ae3d27d4eb4f ^ c*0x27d4eb2f165667c5 ^
		uint64(op)*0xd6e8feb86659fd93 ^ uint64(uint32(k))*0xca02d2af59b01d13)
	return (h & t.mask) &^ 1
}

func (t *fusedCache) get(op opcode, a, b, c uint64, k int32) (*Node, bool) {
	i := t.set(op, a, b, c, k)
	if e := &t.entries[i]; e.is(op, a, b, c, k) {
		return e.res, true
	}
	if e := &t.entries[i|1]; e.is(op, a, b, c, k) {
		// Promote to the primary way so the next insert in this set
		// demotes the colder key, not this one.
		res := e.res
		t.entries[i], t.entries[i|1] = t.entries[i|1], t.entries[i]
		return res, true
	}
	return nil, false
}

func (t *fusedCache) put(op opcode, a, b, c uint64, k int32, res *Node) {
	i := t.set(op, a, b, c, k)
	if !t.entries[i].is(op, a, b, c, k) {
		t.entries[i|1] = t.entries[i]
	}
	t.entries[i] = fusedEntry{a, b, c, k, op, res}
}

// --- unary caches (Not, Range; lossy, direct-mapped) ---

type unaryEntry struct {
	f   uint64
	res *Node
}

type unaryCache struct {
	entries []unaryEntry
	mask    uint64
}

func newUnaryCache() *unaryCache {
	size := 1 << unaryCacheBits
	return &unaryCache{entries: make([]unaryEntry, size), mask: uint64(size - 1)}
}

func (c *unaryCache) get(f uint64) (*Node, bool) {
	e := &c.entries[mix64(f)&c.mask]
	if e.f == f {
		return e.res, true
	}
	return nil, false
}

func (c *unaryCache) put(f uint64, res *Node) {
	c.entries[mix64(f)&c.mask] = unaryEntry{f, res}
}

type rangeEntry struct {
	f      uint64
	lo, hi float64
}

type rangeCache struct {
	entries []rangeEntry
	mask    uint64
}

func newRangeCache() *rangeCache {
	size := 1 << unaryCacheBits
	return &rangeCache{entries: make([]rangeEntry, size), mask: uint64(size - 1)}
}

func (c *rangeCache) get(f uint64) (lo, hi float64, ok bool) {
	e := &c.entries[mix64(f)&c.mask]
	if e.f == f {
		return e.lo, e.hi, true
	}
	return 0, 0, false
}

func (c *rangeCache) put(f uint64, lo, hi float64) {
	c.entries[mix64(f)&c.mask] = rangeEntry{f, lo, hi}
}
