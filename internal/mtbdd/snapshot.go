package mtbdd

import "fmt"

// Snapshot is a read-only, manager-independent encoding of a set of MTBDD
// roots: every reachable node flattened into children-first order, with
// child links expressed as indices instead of pointers. It is the shared
// import base of the parallel pipeline — built once from the primary
// manager's guard layer, then replayed into any number of shard managers
// concurrently.
//
// The point is cost: a plain cross-manager Import re-walks the source DAG
// per destination (recursive DFS, one pointer-map lookup per node per
// shard). A Snapshot pays the DFS and the deduplication once; each
// destination then runs ImportSnapshot, a single linear pass over dense
// arrays with no hashing beyond the destination's own unique table. With
// P shards the guard layer is traversed once, not P times — the
// copy-on-write sharing of ISSUE 6(c): the snapshot is the shared
// read-only base, and each shard materializes (writes) nodes into its
// own arena only when it replays.
//
// A Snapshot holds no reference to the source Manager and never mutates —
// it is safe to share across goroutines without synchronization.
type Snapshot struct {
	// level/value/lo/hi are parallel arrays, one entry per distinct node,
	// in an order where both children of entry i precede i. Terminals
	// carry value; internal entries carry lo/hi as indices.
	level []int32
	value []float64
	lo    []uint32
	hi    []uint32
	// index maps every encoded source node to its entry, so consumers can
	// translate any root (or interior guard) to a destination node via the
	// table ImportSnapshot returns.
	index map[*Node]uint32
	// maxLevel is the highest variable tested anywhere in the snapshot,
	// for destination-compatibility checking (-1 if all terminals).
	maxLevel int32
}

// NewSnapshot flattens the given roots (nil entries ignored) into a
// snapshot. Nodes shared between roots are encoded once.
func NewSnapshot(roots []*Node) *Snapshot {
	s := &Snapshot{index: make(map[*Node]uint32), maxLevel: -1}
	// Iterative post-order DFS: children are appended before their parent,
	// giving the children-first order the linear replay relies on.
	type frame struct {
		n        *Node
		expanded bool
	}
	var stack []frame
	for _, r := range roots {
		if r == nil {
			continue
		}
		stack = append(stack, frame{r, false})
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, ok := s.index[f.n]; ok && !f.expanded {
				continue
			}
			if f.n.IsTerminal() {
				s.add(f.n, 0, 0)
				continue
			}
			if f.expanded {
				s.add(f.n, s.index[f.n.Lo], s.index[f.n.Hi])
				continue
			}
			// Children first, then revisit this node to emit it.
			stack = append(stack, frame{f.n, true})
			if _, ok := s.index[f.n.Hi]; !ok {
				stack = append(stack, frame{f.n.Hi, false})
			}
			if _, ok := s.index[f.n.Lo]; !ok {
				stack = append(stack, frame{f.n.Lo, false})
			}
		}
	}
	return s
}

func (s *Snapshot) add(n *Node, lo, hi uint32) {
	if _, ok := s.index[n]; ok {
		return
	}
	s.index[n] = uint32(len(s.level))
	s.level = append(s.level, n.Level)
	s.value = append(s.value, n.Value)
	s.lo = append(s.lo, lo)
	s.hi = append(s.hi, hi)
	if !n.IsTerminal() && n.Level > s.maxLevel {
		s.maxLevel = n.Level
	}
}

// Len returns the number of distinct nodes encoded.
func (s *Snapshot) Len() int { return len(s.level) }

// Index returns the snapshot entry of a source node, if it was encoded.
// Pass the result as an index into the table ImportSnapshot returned.
func (s *Snapshot) Index(n *Node) (uint32, bool) {
	i, ok := s.index[n]
	return i, ok
}

// ImportSnapshot replays a snapshot into m and returns the translation
// table: table[i] is the canonical local node for snapshot entry i, so a
// source node n maps to table[s.Index(n)]. The replay is one linear pass —
// no recursion, no per-shard DFS memo — and reserves slab capacity up
// front so a large guard layer lands in pre-allocated arenas. Like every
// node-building operation it honors the manager's interrupt hook and node
// budget.
//
// m must declare at least as many variables as the snapshot tests; the
// construction is the same hash-consed mk the original nodes went
// through, so two managers with the same variable order replay to
// structurally identical, canonical graphs.
func (m *Manager) ImportSnapshot(s *Snapshot) []*Node {
	if int(s.maxLevel) >= len(m.names) {
		panic(fmt.Sprintf("mtbdd: ImportSnapshot tests variable %d, manager has %d variables", s.maxLevel, len(m.names)))
	}
	m.Reserve(len(s.level))
	table := make([]*Node, len(s.level))
	for i := range s.level {
		if s.level[i] == terminalLevel {
			table[i] = m.Const(s.value[i])
		} else {
			table[i] = m.mk(s.level[i], table[s.lo[i]], table[s.hi[i]])
		}
	}
	return table
}
