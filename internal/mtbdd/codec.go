package mtbdd

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"github.com/yu-verify/yu/internal/fault"
)

// On-disk snapshot format (little-endian):
//
//	magic    [8]byte  "YUSNAP1\n"
//	count    uint32   number of nodes
//	maxLevel int32    highest tested variable (-1 if all terminals)
//	entries  count × (level int32, valueBits uint64, lo uint32, hi uint32)
//	crc      uint32   crc32(IEEE) over count, maxLevel, and all entries
//
// The CRC trailer turns silent corruption (a flipped bit that happens to
// survive structural validation) into a decode error; the daemon treats
// any decode error as a cold start, never a wrong answer.
//
// The entry order is the children-first order NewSnapshot produced, so a
// decoded snapshot replays through ImportSnapshot exactly like the
// original. Decode validates every structural invariant (children precede
// parents, terminals have no children, levels within maxLevel, finite
// values), so malformed or truncated input yields an error — never a
// panic in a later ImportSnapshot.

var snapshotMagic = [8]byte{'Y', 'U', 'S', 'N', 'A', 'P', '1', '\n'}

// maxSnapshotNodes caps the node count Decode will allocate for. It is
// far above any real snapshot (the seed's heaviest runs peak below 100M
// created nodes across a whole run) and exists so corrupt headers cannot
// demand absurd allocations.
const maxSnapshotNodes = 1 << 28

// Encode writes the snapshot in the binary on-disk format.
func (s *Snapshot) Encode(w io.Writer) error {
	if err := fault.Here("mtbdd.snapshot.encode"); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(s.level)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(s.maxLevel))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	sum := crc32.ChecksumIEEE(hdr[:])
	var ent [20]byte
	for i := range s.level {
		binary.LittleEndian.PutUint32(ent[0:4], uint32(s.level[i]))
		binary.LittleEndian.PutUint64(ent[4:12], math.Float64bits(s.value[i]))
		binary.LittleEndian.PutUint32(ent[12:16], s.lo[i])
		binary.LittleEndian.PutUint32(ent[16:20], s.hi[i])
		if _, err := bw.Write(ent[:]); err != nil {
			return err
		}
		sum = crc32.Update(sum, crc32.IEEETable, ent[:])
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum)
	if _, err := bw.Write(tail[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeSnapshot reads a snapshot from the binary format, validating all
// structural invariants. The decoded snapshot has no source-node index
// (Index returns false for every node); consumers address entries by
// position, as the daemon's STF cache does.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	if err := fault.Here("mtbdd.snapshot.decode"); err != nil {
		return nil, err
	}
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("mtbdd: snapshot header: %w", err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("mtbdd: bad snapshot magic %q", magic[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("mtbdd: snapshot header: %w", err)
	}
	sum := crc32.ChecksumIEEE(hdr[:])
	count := binary.LittleEndian.Uint32(hdr[0:4])
	maxLevel := int32(binary.LittleEndian.Uint32(hdr[4:8]))
	if count > maxSnapshotNodes {
		return nil, fmt.Errorf("mtbdd: snapshot claims %d nodes, limit %d", count, maxSnapshotNodes)
	}
	if maxLevel < -1 || maxLevel == terminalLevel {
		return nil, fmt.Errorf("mtbdd: snapshot maxLevel %d out of range", maxLevel)
	}
	s := &Snapshot{
		level:    make([]int32, 0, count),
		value:    make([]float64, 0, count),
		lo:       make([]uint32, 0, count),
		hi:       make([]uint32, 0, count),
		maxLevel: -1,
	}
	var ent [20]byte
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, ent[:]); err != nil {
			return nil, fmt.Errorf("mtbdd: snapshot truncated at node %d/%d: %w", i, count, err)
		}
		sum = crc32.Update(sum, crc32.IEEETable, ent[:])
		level := int32(binary.LittleEndian.Uint32(ent[0:4]))
		value := math.Float64frombits(binary.LittleEndian.Uint64(ent[4:12]))
		lo := binary.LittleEndian.Uint32(ent[12:16])
		hi := binary.LittleEndian.Uint32(ent[16:20])
		if level == terminalLevel {
			if lo != 0 || hi != 0 {
				return nil, fmt.Errorf("mtbdd: snapshot node %d: terminal with children", i)
			}
			if math.IsNaN(value) {
				return nil, fmt.Errorf("mtbdd: snapshot node %d: NaN terminal", i)
			}
		} else {
			if level < 0 || level > maxLevel {
				return nil, fmt.Errorf("mtbdd: snapshot node %d: level %d outside [0, %d]", i, level, maxLevel)
			}
			if lo >= i || hi >= i {
				return nil, fmt.Errorf("mtbdd: snapshot node %d: child (%d, %d) not children-first", i, lo, hi)
			}
			if lo == hi {
				return nil, fmt.Errorf("mtbdd: snapshot node %d: redundant test (lo == hi)", i)
			}
			// Canonical ordering: a node tests a variable strictly above
			// (numerically below) its children's.
			if cl := s.level[lo]; cl != terminalLevel && cl <= level {
				return nil, fmt.Errorf("mtbdd: snapshot node %d: lo child level %d not below %d", i, cl, level)
			}
			if cl := s.level[hi]; cl != terminalLevel && cl <= level {
				return nil, fmt.Errorf("mtbdd: snapshot node %d: hi child level %d not below %d", i, cl, level)
			}
			if level > s.maxLevel {
				s.maxLevel = level
			}
			value = 0
		}
		s.level = append(s.level, level)
		s.value = append(s.value, value)
		s.lo = append(s.lo, lo)
		s.hi = append(s.hi, hi)
	}
	if s.maxLevel != maxLevel {
		return nil, fmt.Errorf("mtbdd: snapshot header maxLevel %d, computed %d", maxLevel, s.maxLevel)
	}
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, fmt.Errorf("mtbdd: snapshot checksum trailer: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != sum {
		return nil, fmt.Errorf("mtbdd: snapshot checksum mismatch (frame %08x, computed %08x)", got, sum)
	}
	// A trailing byte means the stream holds more than one snapshot frame
	// or is corrupt; the caller owns framing, so stop exactly at the end
	// of this frame and leave the reader's remainder untouched — except
	// that we cannot un-read bufio's lookahead. Decode therefore reads
	// only its own frame and performs no EOF check.
	return s, nil
}

// MaxLevel returns the highest variable index tested anywhere in the
// snapshot (-1 if the snapshot is all terminals). A destination manager
// must declare at least MaxLevel()+1 variables before ImportSnapshot.
func (s *Snapshot) MaxLevel() int32 { return s.maxLevel }
