package mtbdd

import (
	"fmt"

	"github.com/yu-verify/yu/internal/govern"
)

// Resource governance for MTBDD operations.
//
// The manager's operations (apply, KReduce, Import, mk) are deeply
// recursive with no error returns — threading errors through them would
// tax the hot path and obscure the algorithms. Instead, like CUDD's
// longjmp-based operation abort, a breach unwinds the recursion with a
// typed panic (opAbort) that Guard converts back into an error at a
// governed boundary. An abort leaves the manager consistent: the unique
// table and caches only ever hold fully-constructed canonical nodes, so
// the manager remains usable afterwards. Partially-built intermediate
// nodes become garbage for the next managed GC.
//
// Two triggers exist:
//
//   - An interrupt hook (SetInterrupt), polled every interruptStride
//     node-level operations via a cheap counter. The pipeline installs
//     a context poll here, which is what bounds cancellation latency
//     inside long apply/KReduce/Import chains.
//   - A live-node budget (SetNodeBudget), checked whenever mk inserts a
//     new node into the unique table.
//
// Crucially, a budget breach must NOT garbage-collect mid-operation:
// in-flight recursion frames hold unrooted intermediate nodes, and a GC
// followed by re-creation would alias two pointers for one function,
// silently breaking the pointer-equality canonicity §5.3 relies on.
// The engine GCs at safe points between operations and retries instead.

// interruptStride is how many counted operations pass between polls of
// the interrupt hook. Node-level operations run in well under a
// microsecond, so a stride of 4096 keeps cancellation latency in the
// low milliseconds while making the common case a single increment.
const interruptStride = 1 << 12

// opAbort is the typed panic that unwinds an aborted operation.
type opAbort struct{ err error }

// BudgetError reports a live-node budget breach. It matches
// govern.ErrNodeBudget under errors.Is.
type BudgetError struct {
	Limit int // the configured budget
	Live  int // live nodes at the moment of the breach
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("mtbdd: live nodes %d exceed budget %d", e.Live, e.Limit)
}

// Is makes errors.Is(err, govern.ErrNodeBudget) match a *BudgetError.
func (e *BudgetError) Is(target error) bool { return target == govern.ErrNodeBudget }

// SetInterrupt installs a hook polled periodically during MTBDD
// operations; a non-nil return aborts the in-flight operation, and the
// error surfaces from Guard at the nearest governed boundary. The hook
// must not use the manager. Passing nil removes the hook. The previous
// hook is returned so callers can restore it.
func (m *Manager) SetInterrupt(fn func() error) func() error {
	prev := m.interrupt
	m.interrupt = fn
	return prev
}

// SetNodeBudget bounds the manager's live internal nodes: once the
// unique table grows past n, node construction aborts the in-flight
// operation with a *BudgetError. 0 (or negative) disables the budget.
// The budget is advisory-at-mk granularity — the table may exceed the
// budget by the nodes of the final operation before the breach is seen.
func (m *Manager) SetNodeBudget(n int) {
	if n < 0 {
		n = 0
	}
	m.budget = n
}

// NodeBudget returns the configured live-node budget (0 = unlimited).
func (m *Manager) NodeBudget() int { return m.budget }

// checkInterrupt is the counted poll point, called from the recursive
// operations. It is a method-call plus increment in the common case.
func (m *Manager) checkInterrupt() {
	m.opTick++
	if m.opTick&(interruptStride-1) != 0 || m.interrupt == nil {
		return
	}
	if err := m.interrupt(); err != nil {
		panic(opAbort{err})
	}
}

// checkBudget aborts when the unique table has outgrown the budget.
func (m *Manager) checkBudget() {
	if m.budget > 0 && m.unique.count > m.budget {
		panic(opAbort{&BudgetError{Limit: m.budget, Live: m.unique.count}})
	}
}

// Abort unwinds to the nearest Guard with the given error, exactly as an
// interrupt or budget breach would. It lets governed code interleaved
// with MTBDD operations (e.g. the concrete fallback's scenario loop)
// share the same unwind path instead of inventing a second one.
func Abort(err error) { panic(opAbort{err}) }

// AbortError extracts the error carried by a recovered operation abort,
// or nil if the recovered value is not an abort (the caller should
// re-panic it).
func AbortError(r any) error {
	if a, ok := r.(opAbort); ok {
		return a.err
	}
	return nil
}

// Guard runs fn and converts an operation abort (interrupt or budget
// breach) into its error. Any other panic propagates unchanged. After a
// non-nil return the manager is still consistent, but nodes created by
// the aborted operation are garbage until the next GC.
func Guard(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e := AbortError(r); e != nil {
				err = e
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}
