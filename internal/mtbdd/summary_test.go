package mtbdd

import (
	"math"
	"math/rand"
	"testing"
)

// Tests for the shapes compositional verification (internal/compose)
// pushes through this package: aggregate scans over possibly-empty link
// sets and Snapshot round-trips of interface summaries — 0/1 selection
// guards over failure variables, exchanged between per-domain managers.

// TestScanOutsideEmptyAggregate is the empty-link-set aggregate: the sum
// over no links is the constant Zero, and a scan over it must hit exactly
// when 0 lies outside the bound — with an empty witness in either budget
// regime.
func TestScanOutsideEmptyAggregate(t *testing.T) {
	m := newMgr(t, 3)
	agg := m.AddNK(nil, 2) // empty aggregate
	if agg != m.Zero() {
		t.Fatalf("empty AddNK = %v, want Zero", agg)
	}
	for _, maxFails := range []int{-1, 0, 2} {
		h := m.ScanOutside(agg, []ScanCheck{{Lo: 0, Hi: 10, MaxFails: maxFails}})[0]
		if h.OK {
			t.Fatalf("maxFails=%d: zero load within [0,10] must not hit: %+v", maxFails, h)
		}
		h = m.ScanOutside(agg, []ScanCheck{{Lo: 1, Hi: 10, MaxFails: maxFails}})[0]
		if !h.OK || h.Value != 0 || len(h.A) != 0 {
			t.Fatalf("maxFails=%d: zero load below min 1 must hit with empty witness: %+v", maxFails, h)
		}
	}
}

// TestScanOutsideUnfailableGuard covers loads gated on unfailable guards:
// the violating terminal is reachable without failing anything, so even a
// k=0 budget must find it, and the witness must not fail any variable.
func TestScanOutsideUnfailableGuard(t *testing.T) {
	m := newMgr(t, 3)
	// Load 7 whenever var 1 is alive — the all-alive path violates Hi=5.
	f := m.Scale(7, m.Var(1))
	h := m.ScanOutside(f, []ScanCheck{{Lo: math.Inf(-1), Hi: 5, MaxFails: 0}})[0]
	if !h.OK || h.Value != 7 {
		t.Fatalf("k=0 must reach the all-alive violation: %+v", h)
	}
	for v, b := range h.A {
		if !b {
			t.Fatalf("k=0 witness fails var %d: %v", v, h.A)
		}
	}
	// Load 7 only when var 1 has FAILED: at k=0 unreachable, at k=1 found.
	g := m.Scale(7, m.Not(m.Var(1)))
	h = m.ScanOutside(g, []ScanCheck{{Lo: math.Inf(-1), Hi: 5, MaxFails: 0}})[0]
	if h.OK {
		t.Fatalf("k=0 must not reach a failure-gated violation: %+v", h)
	}
	h = m.ScanOutside(g, []ScanCheck{{Lo: math.Inf(-1), Hi: 5, MaxFails: 1}})[0]
	if !h.OK || h.Value != 7 || h.A[1] != false {
		t.Fatalf("k=1 must fail exactly var 1: %+v", h)
	}
}

// TestScanOutsideZeroBudgetBatch runs k=0 and unlimited checks through
// one shared walk and cross-checks against the single-check path.
func TestScanOutsideZeroBudgetBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(3)
		m := newMgr(t, n)
		f := randLoad(m, rng, n, 1+rng.Intn(5))
		hi := float64(rng.Intn(12)) / 2
		checks := []ScanCheck{
			{Lo: math.Inf(-1), Hi: hi, MaxFails: 0},
			{Lo: math.Inf(-1), Hi: hi, MaxFails: -1},
		}
		hits := m.ScanOutside(f, checks)
		// The k=0 check is decided by the all-alive evaluation alone.
		allAlive := m.EvalAllAlive(f)
		if hits[0].OK != (allAlive > hi) {
			t.Fatalf("trial %d: k=0 hit=%v but all-alive value %v vs hi %v", trial, hits[0].OK, allAlive, hi)
		}
		if hits[0].OK && hits[0].Value != allAlive {
			t.Fatalf("trial %d: k=0 witness value %v != all-alive %v", trial, hits[0].Value, allAlive)
		}
		// k=0 hit implies unlimited hit.
		if hits[0].OK && !hits[1].OK {
			t.Fatalf("trial %d: k=0 hit without unlimited hit", trial)
		}
	}
}

// summaryGuards builds a BorderAdv-shaped guard layer: 0/1 selection
// guards over the failure variables with heavy structure sharing, the
// exact shape compose exchanges between domain managers each round.
func summaryGuards(m *Manager, rng *rand.Rand, n, count int) []*Node {
	gs := make([]*Node, count)
	for i := range gs {
		gs[i] = randomGuard(m, rng, n, 4)
	}
	return gs
}

// TestSnapshotSummaryRoundTrip ships a summary guard layer from a home
// manager to a consumer and back: both hops must preserve every guard's
// truth table, and re-importing into the home manager must return the
// original canonical nodes (hash consing makes round-trip identity
// observable as pointer equality).
func TestSnapshotSummaryRoundTrip(t *testing.T) {
	const n = 8
	rng := rand.New(rand.NewSource(31))
	home := newMgr(t, n)
	guards := summaryGuards(home, rng, n, 12)

	snap := NewSnapshot(guards)
	consumer := newMgr(t, n)
	table := consumer.ImportSnapshot(snap)

	imported := make([]*Node, len(guards))
	for i, g := range guards {
		idx, ok := snap.Index(g)
		if !ok {
			t.Fatalf("guard %d missing from its own snapshot", i)
		}
		imported[i] = table[idx]
	}

	back := NewSnapshot(imported)
	if back.Len() != snap.Len() {
		t.Fatalf("round trip changed node count: %d -> %d", snap.Len(), back.Len())
	}
	homeTable := home.ImportSnapshot(back)
	assign := make([]bool, n)
	for i, g := range guards {
		idx, _ := back.Index(imported[i])
		got := homeTable[idx]
		if got != g {
			t.Fatalf("guard %d: round trip did not restore the canonical node", i)
		}
		// Spot-check the truth table across random scenarios on both
		// managers (the consumer copy must agree everywhere too).
		for trial := 0; trial < 32; trial++ {
			for v := range assign {
				assign[v] = rng.Intn(2) == 0
			}
			want := home.Eval(g, assign)
			if cv := consumer.Eval(imported[i], assign); cv != want {
				t.Fatalf("guard %d: consumer eval %v != home %v under %v", i, cv, want, assign)
			}
		}
	}
}

// TestSnapshotSummaryAcrossManagerWidths imports a summary into a
// consumer that declares MORE variables than the summary tests (the
// check manager's global failure space vs a domain's) — legal — and
// asserts the narrow-manager panic for the reverse direction.
func TestSnapshotSummaryAcrossManagerWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	home := newMgr(t, 4)
	guards := summaryGuards(home, rng, 4, 6)
	snap := NewSnapshot(guards)

	wide := newMgr(t, 9)
	table := wide.ImportSnapshot(snap)
	assign := make([]bool, 9)
	for i, g := range guards {
		idx, _ := snap.Index(g)
		for trial := 0; trial < 16; trial++ {
			for v := range assign {
				assign[v] = rng.Intn(2) == 0
			}
			if got, want := wide.Eval(table[idx], assign), home.Eval(g, assign[:4]); got != want {
				t.Fatalf("guard %d: wide eval %v != home %v", i, got, want)
			}
		}
	}

	narrow := newMgr(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("importing into a narrower manager must panic")
		}
	}()
	narrow.ImportSnapshot(snap)
}
