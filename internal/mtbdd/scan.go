package mtbdd

// ScanCheck is one interval predicate evaluated by ScanOutside: a hit is a
// root-to-terminal path whose value falls outside the closed interval
// [Lo, Hi] and whose failure count (variables assigned 0 on the path) does
// not exceed MaxFails. MaxFails < 0 means unlimited.
type ScanCheck struct {
	Lo, Hi   float64
	MaxFails int
}

// ScanHit is one check's outcome from ScanOutside.
type ScanHit struct {
	// OK reports that a path violating the check exists.
	OK bool
	// Value is the terminal value at the returned witness path.
	Value float64
	// A is the witness assignment (only the variables the path tested).
	A Assignment
}

// scanUnreach marks "no violating terminal reachable" in the min-fails
// table. Propagation can push values a few levels above it (lo+1 per
// level), so it sits far below the int32 ceiling.
const scanUnreach = int32(1) << 30

// ScanOutside evaluates every check against f in one shared walk: a single
// DFS over f's nodes computes, per node and per check, the minimal number
// of failures on any path below reaching a violating terminal, and each
// feasible check then extracts a witness by greedy descent preferring Hi
// (alive) branches. This is the batch form of WitnessOutside — for a check
// with unlimited MaxFails the returned witness assignment and value are
// identical to WitnessOutside(f, Lo, Hi), because "some violating terminal
// is reachable below Hi" and "Hi's min-fails is within an unlimited
// budget" select the same branch at every step.
//
// Cost is O(nodes × len(checks)), one traversal regardless of how many
// properties share the scan.
func (m *Manager) ScanOutside(f *Node, checks []ScanCheck) []ScanHit {
	k := len(checks)
	out := make([]ScanHit, k)
	if k == 0 {
		return out
	}
	// minFails[n][i]: minimal count of Lo (failed) edges on any path from n
	// to a terminal violating check i; >= scanUnreach if none.
	memo := make(map[*Node][]int32)
	var walk func(n *Node) []int32
	walk = func(n *Node) []int32 {
		if mf, ok := memo[n]; ok {
			return mf
		}
		mf := make([]int32, k)
		if n.IsTerminal() {
			for i := range checks {
				if n.Value < checks[i].Lo || n.Value > checks[i].Hi {
					mf[i] = 0
				} else {
					mf[i] = scanUnreach
				}
			}
		} else {
			hi := walk(n.Hi)
			lo := walk(n.Lo)
			for i := range mf {
				v := hi[i]
				if lo[i]+1 < v {
					v = lo[i] + 1
				}
				mf[i] = v
			}
		}
		memo[n] = mf
		return mf
	}
	root := walk(f)
	for i := range checks {
		budget := scanUnreach - 1
		if checks[i].MaxFails >= 0 {
			budget = int32(checks[i].MaxFails)
		}
		if root[i] > budget {
			continue
		}
		a := make(Assignment)
		n := f
		rem := budget
		for !n.IsTerminal() {
			if memo[n.Hi][i] <= rem {
				a[int(n.Level)] = true
				n = n.Hi
			} else {
				a[int(n.Level)] = false
				n = n.Lo
				rem--
			}
		}
		out[i] = ScanHit{OK: true, Value: n.Value, A: a}
	}
	return out
}
