package mtbdd

import "fmt"

// Import rebuilds a foreign MTBDD — a node owned by another Manager — in
// this Manager and returns the canonical local node. It is the bridge the
// parallel verification pipeline uses to merge shard results: each worker
// executes flows in a private Manager, and the primary Manager imports the
// resulting STFs. Because both managers declare the same variables in the
// same order, the imported node has the identical structure, and
// hash-consing restores pointer-equality semantics in the destination:
// two shards that computed the same function import to the same *Node, so
// the link-local equivalence grouping of §5.3 keeps working after the
// merge.
//
// The translation is memoized in a per-destination cache keyed by the
// source node pointer (source pointers are unique across managers, so one
// cache serves any number of sources). The cache holds strong references
// to the source nodes — their addresses can therefore never be recycled
// under it — and is re-created fresh by ClearCaches/GC together with the
// other operation caches, because a destination-side GC may evict the
// cached translations from the unique table.
//
// Import only reads the source graph (Node fields are immutable after
// creation), so any number of destination managers may import from the
// same source concurrently, as long as the source Manager itself is not
// running operations at the same time.
func (m *Manager) Import(src *Node) *Node {
	if src == nil {
		return nil
	}
	// New and ClearCaches both install a fresh map, so importTbl is nil
	// only for a zero-value Manager; guard anyway rather than crash.
	if m.importTbl == nil {
		m.importTbl = make(map[*Node]*Node)
	}
	return m.importNode(src)
}

// Import rebuilds src (owned by another Manager) inside dst. It is the
// free-function form of (*Manager).Import.
func Import(dst *Manager, src *Node) *Node { return dst.Import(src) }

func (m *Manager) importNode(src *Node) *Node {
	if r, ok := m.importTbl[src]; ok {
		m.importHits++
		return r
	}
	m.importMisses++
	m.checkInterrupt()
	var r *Node
	if src.IsTerminal() {
		r = m.Const(src.Value)
	} else {
		if int(src.Level) >= len(m.names) {
			panic(fmt.Sprintf("mtbdd: Import of node testing variable %d into a manager with %d variables", src.Level, len(m.names)))
		}
		lo := m.importNode(src.Lo)
		hi := m.importNode(src.Hi)
		r = m.mk(src.Level, lo, hi)
	}
	m.importTbl[src] = r
	return r
}
