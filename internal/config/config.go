// Package config models router configurations — BGP (eBGP/iBGP), static
// routes, and segment-routing policies — and parses the textual network
// specification format used by the CLI tools and examples.
//
// IS-IS needs no per-router configuration here: the IGP domain is the
// router's AS, link metrics live on the topology, and every router
// advertises its loopback into the IGP, matching the paper's setting.
package config

import (
	"fmt"
	"net/netip"

	"github.com/yu-verify/yu/internal/topo"
)

// DefaultLocalPref is the BGP local preference applied when a neighbor
// does not override it.
const DefaultLocalPref = 100

// AnyDSCP makes an SR policy match any DSCP value.
const AnyDSCP = -1

// BGPNeighbor describes one BGP session. For eBGP the peer address is the
// neighbor's interface address on the shared link and the session is alive
// iff that link (and both routers) are alive. For iBGP the peer address is
// the neighbor's loopback and the session is alive iff the IGP can reach
// the loopback.
type BGPNeighbor struct {
	// Addr is the peer address (interface address for eBGP, loopback for
	// iBGP).
	Addr netip.Addr
	// RemoteAS is the peer's AS number; equal to the local AS for iBGP.
	RemoteAS uint32
	// LocalPref is assigned to routes learned from this neighbor.
	// Zero means DefaultLocalPref.
	LocalPref uint32
	// NextHopSelf makes the router rewrite the next hop to its own
	// loopback when advertising to this (iBGP) neighbor. Border routers
	// conventionally set this. (The symbolic simulator always applies
	// next-hop-self on iBGP exports; the flag documents intent.)
	NextHopSelf bool
	// ExportDeny suppresses advertising the listed prefixes to this
	// neighbor (exact match) — the export-policy pattern behind the
	// paper's Figure 10 misconfiguration.
	ExportDeny []netip.Prefix
}

// StaticRoute is a locally configured route. A Discard route drops
// matching traffic (null0), as in the paper's Figure 10 use case.
type StaticRoute struct {
	Prefix  netip.Prefix
	NextHop netip.Addr // used when !Discard; an interface address
	Discard bool
}

// SRPath is one weighted path of an SR policy: an explicit segment list of
// router loopbacks. Traffic on the path is tunneled segment by segment,
// with each segment resolved over the IGP.
type SRPath struct {
	Segments []netip.Addr
	Weight   int64
}

// SRPolicy steers traffic whose resolved BGP next hop matches Endpoint
// (and whose DSCP matches MatchDSCP) onto a weighted set of explicit
// paths, mirroring the motivating example's
// "route 10.0.0.6/32, match dscp 5" policy.
type SRPolicy struct {
	Endpoint  netip.Prefix
	MatchDSCP int // AnyDSCP matches all
	Paths     []SRPath
}

// Matches reports whether the policy applies to the given next hop and
// DSCP value.
func (p *SRPolicy) Matches(nip netip.Addr, dscp uint8) bool {
	if !p.Endpoint.Contains(nip) {
		return false
	}
	return p.MatchDSCP == AnyDSCP || p.MatchDSCP == int(dscp)
}

// TotalWeight returns the sum of path weights.
func (p *SRPolicy) TotalWeight() int64 {
	var w int64
	for _, path := range p.Paths {
		w += path.Weight
	}
	return w
}

// Router is the full configuration of one device.
type Router struct {
	Name string
	// Networks are prefixes the router originates into BGP.
	Networks []netip.Prefix
	// Neighbors are the router's BGP sessions.
	Neighbors []BGPNeighbor
	// Statics are locally configured static routes.
	Statics []StaticRoute
	// RedistributeStatic injects static routes into BGP (Figure 10's
	// misconfiguration pattern).
	RedistributeStatic bool
	// SRPolicies are the router's segment-routing policies.
	SRPolicies []SRPolicy
}

// Configs maps router names to configurations. Routers without an entry
// run IS-IS only.
type Configs map[string]*Router

// Get returns the configuration for name, creating an empty one if absent.
func (c Configs) Get(name string) *Router {
	r, ok := c[name]
	if !ok {
		r = &Router{Name: name}
		c[name] = r
	}
	return r
}

// Validate cross-checks configurations against the topology: neighbor
// addresses must resolve to a link interface or loopback, static next hops
// must resolve, and SR segment lists must name router loopbacks.
func (c Configs) Validate(n *topo.Network) error {
	for name, rc := range c {
		r, ok := n.RouterByName(name)
		if !ok {
			return fmt.Errorf("config for unknown router %q", name)
		}
		for _, nb := range rc.Neighbors {
			if nb.RemoteAS == r.AS {
				// iBGP: peer must be a loopback in the same AS.
				peer, ok := n.RouterByLoopback(nb.Addr)
				if !ok {
					return fmt.Errorf("%s: iBGP neighbor %s is not a loopback", name, nb.Addr)
				}
				if peer.AS != r.AS {
					return fmt.Errorf("%s: iBGP neighbor %s is in AS %d, not %d", name, nb.Addr, peer.AS, r.AS)
				}
			} else {
				// eBGP: peer must be the far end of one of our links.
				d, ok := n.DirLinkToAddr(nb.Addr)
				if !ok {
					return fmt.Errorf("%s: eBGP neighbor %s is not an interface address", name, nb.Addr)
				}
				e := n.Edge(d)
				if e.From != r.ID {
					return fmt.Errorf("%s: eBGP neighbor %s is not directly connected", name, nb.Addr)
				}
				if got := n.Router(e.To).AS; got != nb.RemoteAS {
					return fmt.Errorf("%s: eBGP neighbor %s has AS %d, config says %d", name, nb.Addr, got, nb.RemoteAS)
				}
			}
		}
		for _, s := range rc.Statics {
			if s.Discard {
				continue
			}
			if _, ok := n.DirLinkToAddr(s.NextHop); !ok {
				if _, ok := n.RouterByLoopback(s.NextHop); !ok {
					return fmt.Errorf("%s: static route %s next hop %s unresolvable", name, s.Prefix, s.NextHop)
				}
			}
		}
		for _, p := range rc.SRPolicies {
			if len(p.Paths) == 0 {
				return fmt.Errorf("%s: SR policy %s has no paths", name, p.Endpoint)
			}
			for _, path := range p.Paths {
				if len(path.Segments) == 0 {
					return fmt.Errorf("%s: SR policy %s has an empty segment list", name, p.Endpoint)
				}
				if path.Weight <= 0 {
					return fmt.Errorf("%s: SR policy %s has non-positive weight", name, p.Endpoint)
				}
				for _, seg := range path.Segments {
					if _, ok := n.RouterByLoopback(seg); !ok {
						return fmt.Errorf("%s: SR segment %s is not a router loopback", name, seg)
					}
				}
			}
		}
	}
	return nil
}

// EBGPSessionsFullMesh adds eBGP sessions between every pair of directly
// connected routers in different ASes, and iBGP full mesh (with
// next-hop-self on AS border routers) inside every AS — the conventional
// WAN arrangement of the paper's examples. Existing sessions are kept.
func EBGPSessionsFullMesh(n *topo.Network, c Configs) {
	// eBGP on every inter-AS link.
	isBorder := make(map[topo.RouterID]bool)
	for li := range n.Links {
		l := n.Link(topo.LinkID(li))
		ra, rb := n.Router(l.A), n.Router(l.B)
		if ra.AS == rb.AS {
			continue
		}
		isBorder[ra.ID] = true
		isBorder[rb.ID] = true
		addNeighbor(c.Get(ra.Name), BGPNeighbor{Addr: l.AddrB, RemoteAS: rb.AS})
		addNeighbor(c.Get(rb.Name), BGPNeighbor{Addr: l.AddrA, RemoteAS: ra.AS})
	}
	// iBGP full mesh per AS.
	for _, as := range n.ASes() {
		members := n.RoutersInAS(as)
		for _, a := range members {
			for _, b := range members {
				if a == b {
					continue
				}
				ra, rb := n.Router(a), n.Router(b)
				addNeighbor(c.Get(ra.Name), BGPNeighbor{
					Addr:        rb.Loopback,
					RemoteAS:    as,
					NextHopSelf: isBorder[a],
				})
			}
		}
	}
}

func addNeighbor(rc *Router, nb BGPNeighbor) {
	for _, existing := range rc.Neighbors {
		if existing.Addr == nb.Addr {
			return
		}
	}
	rc.Neighbors = append(rc.Neighbors, nb)
}
