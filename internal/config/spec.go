package config

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/netip"
	"strconv"
	"strings"

	"github.com/yu-verify/yu/internal/topo"
)

// Spec is a fully parsed network specification: topology, device
// configurations, input flows, traffic load properties, and the failure
// budget — everything one verification run needs.
type Spec struct {
	Net       *topo.Network
	Configs   Configs
	Flows     []topo.Flow
	Props     []topo.LoadBound
	Delivered []topo.DeliveredBound
	// Portfolio holds the spec's `tlp` portfolio properties, evaluated by
	// the batch TLP engine (internal/tlp) rather than the legacy
	// per-property checks.
	Portfolio []topo.TLProp
	// Domains is the operator's compositional partition (`domain` lines):
	// domain name → member router names. Empty when the spec declares
	// none; validated against the topology (every router in exactly one
	// domain, domains AS-closed) only when a verification run actually
	// uses it (topo.NewPartition).
	Domains map[string][]string
	// LinkSets holds named link sets (`linkset` lines), the subjects of
	// aggregate `tlp sumload` / `tlp maxload` properties.
	LinkSets map[string][]topo.LinkID
	K        int
	Mode     topo.FailureMode
}

// ParseSpec reads the textual network specification format:
//
//	# topology
//	router A as 100 [loopback 10.0.0.1]
//	link A B [cost N] [capacity G] [addr-a IP addr-b IP]
//
//	# per-router configuration (until the next top-level keyword)
//	config A
//	  network 100.0.0.0/24
//	  neighbor 1.3.0.2 remote-as 300 [local-pref N] [next-hop-self]
//	  static 10.0.0.0/8 (discard | via IP)
//	  redistribute static
//	  sr-policy 10.0.0.6/32 [dscp N]
//	    path IP [IP...] weight N
//
//	# convenience: eBGP on inter-AS links + iBGP full mesh per AS
//	auto-bgp-mesh
//
//	# workload and properties
//	flow f1 ingress A src 11.0.0.1 dst 100.0.0.1 [dscp N] gbps 20
//	property link A-B [min G] [max G]
//	property dirlink A->B [min G] [max G]
//	failures k 2 mode (links|routers|both)
//
// '#' starts a comment; blank lines are ignored; indentation is free-form.
func ParseSpec(r io.Reader) (*Spec, error) {
	p := &specParser{
		b:       topo.NewBuilder(),
		configs: make(Configs),
		k:       1,
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := p.line(fields); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p.finish()
}

// ParseSpecString is ParseSpec on a string, convenient for examples/tests.
func ParseSpecString(s string) (*Spec, error) {
	return ParseSpec(strings.NewReader(s))
}

type specParser struct {
	b       *topo.Builder
	configs Configs

	// deferred items resolved after the topology is built
	flows    []pendingFlow
	props    []pendingProp
	tlps     []pendingTLP
	domains  []pendingDomain
	linksets []pendingLinkset
	autoMesh bool

	cur      *Router   // active "config X" block
	curSR    *SRPolicy // active "sr-policy" block
	k        int
	mode     topo.FailureMode
	sawRname map[string]bool
}

type pendingFlow struct {
	flow    topo.Flow
	ingress string
}

type pendingDomain struct {
	name    string
	routers []string
}

type pendingLinkset struct {
	name  string
	links []string // "A-B" link names, resolved at finish
}

type pendingProp struct {
	a, b      string
	directed  bool
	delivered netip.Prefix
	min, max  float64
}

func (p *specParser) line(f []string) error {
	switch f[0] {
	case "router":
		return p.router(f[1:])
	case "link":
		return p.link(f[1:])
	case "config":
		if len(f) != 2 {
			return fmt.Errorf("config wants a router name")
		}
		p.cur = p.configs.Get(f[1])
		p.curSR = nil
		return nil
	case "auto-bgp-mesh":
		p.autoMesh = true
		return nil
	case "flow":
		return p.flow(f[1:])
	case "property":
		return p.property(f[1:])
	case "tlp":
		pt, err := parseTLPLine(f[1:])
		if err != nil {
			return err
		}
		p.tlps = append(p.tlps, pt)
		return nil
	case "domain":
		if len(f) < 3 {
			return fmt.Errorf("usage: domain NAME ROUTER [ROUTER...]")
		}
		for _, d := range p.domains {
			if d.name == f[1] {
				return fmt.Errorf("duplicate domain %q", f[1])
			}
		}
		p.domains = append(p.domains, pendingDomain{name: f[1], routers: f[2:]})
		return nil
	case "linkset":
		if len(f) < 3 {
			return fmt.Errorf("usage: linkset NAME A-B [C-D...]")
		}
		for _, ls := range p.linksets {
			if ls.name == f[1] {
				return fmt.Errorf("duplicate linkset %q", f[1])
			}
		}
		p.linksets = append(p.linksets, pendingLinkset{name: f[1], links: f[2:]})
		return nil
	case "failures":
		return p.failures(f[1:])
	case "network", "neighbor", "static", "redistribute", "sr-policy", "path":
		if p.cur == nil {
			return fmt.Errorf("%q outside a config block", f[0])
		}
		return p.configLine(f)
	}
	return fmt.Errorf("unknown keyword %q", f[0])
}

func (p *specParser) router(f []string) error {
	if len(f) < 3 || f[1] != "as" {
		return fmt.Errorf("usage: router NAME as NUM [loopback IP]")
	}
	as, err := strconv.ParseUint(f[2], 10, 32)
	if err != nil {
		return fmt.Errorf("bad AS %q", f[2])
	}
	var opts []topo.RouterOpt
	rest := f[3:]
	for len(rest) > 0 {
		switch rest[0] {
		case "loopback":
			if len(rest) < 2 {
				return fmt.Errorf("loopback wants an address")
			}
			a, err := netip.ParseAddr(rest[1])
			if err != nil {
				return err
			}
			opts = append(opts, topo.WithLoopback(a))
			rest = rest[2:]
		case "nofail":
			opts = append(opts, topo.RouterNoFail())
			rest = rest[1:]
		default:
			return fmt.Errorf("unknown router option %q", rest[0])
		}
	}
	if p.sawRname == nil {
		p.sawRname = make(map[string]bool)
	}
	p.sawRname[f[0]] = true
	p.b.AddRouter(f[0], uint32(as), opts...)
	return nil
}

func (p *specParser) link(f []string) error {
	if len(f) < 2 {
		return fmt.Errorf("usage: link A B [cost N] [capacity G] [addr-a IP addr-b IP]")
	}
	a, b := f[0], f[1]
	var opts []topo.LinkOpt
	var addrA, addrB netip.Addr
	rest := f[2:]
	for len(rest) > 0 {
		if rest[0] == "nofail" {
			opts = append(opts, topo.LinkNoFail())
			rest = rest[1:]
			continue
		}
		if len(rest) < 2 {
			return fmt.Errorf("link option %q wants a value", rest[0])
		}
		switch rest[0] {
		case "cost":
			c, err := strconv.ParseInt(rest[1], 10, 64)
			if err != nil {
				return fmt.Errorf("bad cost %q", rest[1])
			}
			opts = append(opts, topo.WithCost(c))
		case "capacity":
			g, err := strconv.ParseFloat(rest[1], 64)
			if err != nil {
				return fmt.Errorf("bad capacity %q", rest[1])
			}
			opts = append(opts, topo.WithCapacity(g))
		case "addr-a":
			addr, err := netip.ParseAddr(rest[1])
			if err != nil {
				return err
			}
			addrA = addr
		case "addr-b":
			addr, err := netip.ParseAddr(rest[1])
			if err != nil {
				return err
			}
			addrB = addr
		default:
			return fmt.Errorf("unknown link option %q", rest[0])
		}
		rest = rest[2:]
	}
	if addrA.IsValid() != addrB.IsValid() {
		return fmt.Errorf("addr-a and addr-b must be given together")
	}
	if addrA.IsValid() {
		opts = append(opts, topo.WithAddrs(addrA, addrB))
	}
	p.b.AddLink(a, b, opts...)
	return nil
}

func (p *specParser) configLine(f []string) error {
	switch f[0] {
	case "network":
		if len(f) != 2 {
			return fmt.Errorf("usage: network PREFIX")
		}
		pfx, err := netip.ParsePrefix(f[1])
		if err != nil {
			return err
		}
		p.cur.Networks = append(p.cur.Networks, pfx.Masked())
		return nil
	case "neighbor":
		if len(f) < 4 || f[2] != "remote-as" {
			return fmt.Errorf("usage: neighbor IP remote-as NUM [local-pref N] [next-hop-self]")
		}
		addr, err := netip.ParseAddr(f[1])
		if err != nil {
			return err
		}
		as, err := strconv.ParseUint(f[3], 10, 32)
		if err != nil {
			return fmt.Errorf("bad AS %q", f[3])
		}
		nb := BGPNeighbor{Addr: addr, RemoteAS: uint32(as)}
		rest := f[4:]
		for len(rest) > 0 {
			switch rest[0] {
			case "local-pref":
				if len(rest) < 2 {
					return fmt.Errorf("local-pref wants a value")
				}
				lp, err := strconv.ParseUint(rest[1], 10, 32)
				if err != nil {
					return fmt.Errorf("bad local-pref %q", rest[1])
				}
				nb.LocalPref = uint32(lp)
				rest = rest[2:]
			case "next-hop-self":
				nb.NextHopSelf = true
				rest = rest[1:]
			case "export-deny":
				if len(rest) < 2 {
					return fmt.Errorf("export-deny wants a prefix")
				}
				pfx, err := netip.ParsePrefix(rest[1])
				if err != nil {
					return err
				}
				nb.ExportDeny = append(nb.ExportDeny, pfx.Masked())
				rest = rest[2:]
			default:
				return fmt.Errorf("unknown neighbor option %q", rest[0])
			}
		}
		p.cur.Neighbors = append(p.cur.Neighbors, nb)
		return nil
	case "static":
		if len(f) < 3 {
			return fmt.Errorf("usage: static PREFIX (discard | via IP)")
		}
		pfx, err := netip.ParsePrefix(f[1])
		if err != nil {
			return err
		}
		s := StaticRoute{Prefix: pfx.Masked()}
		switch f[2] {
		case "discard":
			s.Discard = true
		case "via":
			if len(f) != 4 {
				return fmt.Errorf("static via wants an address")
			}
			nh, err := netip.ParseAddr(f[3])
			if err != nil {
				return err
			}
			s.NextHop = nh
		default:
			return fmt.Errorf("static wants 'discard' or 'via IP'")
		}
		p.cur.Statics = append(p.cur.Statics, s)
		return nil
	case "redistribute":
		if len(f) != 2 || f[1] != "static" {
			return fmt.Errorf("usage: redistribute static")
		}
		p.cur.RedistributeStatic = true
		return nil
	case "sr-policy":
		if len(f) < 2 {
			return fmt.Errorf("usage: sr-policy PREFIX [dscp N]")
		}
		pfx, err := netip.ParsePrefix(f[1])
		if err != nil {
			return err
		}
		pol := SRPolicy{Endpoint: pfx.Masked(), MatchDSCP: AnyDSCP}
		if len(f) > 2 {
			if len(f) != 4 || f[2] != "dscp" {
				return fmt.Errorf("usage: sr-policy PREFIX [dscp N]")
			}
			d, err := strconv.Atoi(f[3])
			if err != nil || d < 0 || d > 63 {
				return fmt.Errorf("bad dscp %q", f[3])
			}
			pol.MatchDSCP = d
		}
		p.cur.SRPolicies = append(p.cur.SRPolicies, pol)
		p.curSR = &p.cur.SRPolicies[len(p.cur.SRPolicies)-1]
		return nil
	case "path":
		if p.curSR == nil {
			return fmt.Errorf("path outside an sr-policy")
		}
		if len(f) < 4 || f[len(f)-2] != "weight" {
			return fmt.Errorf("usage: path IP [IP...] weight N")
		}
		w, err := strconv.ParseInt(f[len(f)-1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad weight %q", f[len(f)-1])
		}
		var segs []netip.Addr
		for _, s := range f[1 : len(f)-2] {
			a, err := netip.ParseAddr(s)
			if err != nil {
				return err
			}
			segs = append(segs, a)
		}
		p.curSR.Paths = append(p.curSR.Paths, SRPath{Segments: segs, Weight: w})
		return nil
	}
	return fmt.Errorf("unknown config keyword %q", f[0])
}

func (p *specParser) flow(f []string) error {
	if len(f) < 1 {
		return fmt.Errorf("flow wants a name")
	}
	fl := pendingFlow{flow: topo.Flow{Name: f[0], Gbps: math.NaN()}}
	rest := f[1:]
	for len(rest) > 0 {
		if len(rest) < 2 {
			return fmt.Errorf("flow option %q wants a value", rest[0])
		}
		switch rest[0] {
		case "ingress":
			fl.ingress = rest[1]
		case "src":
			a, err := netip.ParseAddr(rest[1])
			if err != nil {
				return err
			}
			fl.flow.Src = a
		case "dst":
			a, err := netip.ParseAddr(rest[1])
			if err != nil {
				return err
			}
			fl.flow.Dst = a
		case "dscp":
			d, err := strconv.Atoi(rest[1])
			if err != nil || d < 0 || d > 63 {
				return fmt.Errorf("bad dscp %q", rest[1])
			}
			fl.flow.DSCP = uint8(d)
		case "gbps":
			g, err := strconv.ParseFloat(rest[1], 64)
			if err != nil {
				return fmt.Errorf("bad gbps %q", rest[1])
			}
			fl.flow.Gbps = g
		default:
			return fmt.Errorf("unknown flow option %q", rest[0])
		}
		rest = rest[2:]
	}
	if fl.ingress == "" || !fl.flow.Dst.IsValid() || math.IsNaN(fl.flow.Gbps) {
		return fmt.Errorf("flow needs at least ingress, dst, and gbps")
	}
	p.flows = append(p.flows, fl)
	return nil
}

func (p *specParser) property(f []string) error {
	if len(f) < 2 {
		return fmt.Errorf("usage: property (link A-B | dirlink A->B) [min G] [max G]")
	}
	pr := pendingProp{min: 0, max: math.Inf(1)}
	switch f[0] {
	case "link":
		parts := strings.SplitN(f[1], "-", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad link %q, want A-B", f[1])
		}
		pr.a, pr.b = parts[0], parts[1]
	case "dirlink":
		parts := strings.SplitN(f[1], "->", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad dirlink %q, want A->B", f[1])
		}
		pr.a, pr.b = parts[0], parts[1]
		pr.directed = true
	case "delivered":
		pfx, err := netip.ParsePrefix(f[1])
		if err != nil {
			return err
		}
		pr.delivered = pfx.Masked()
	default:
		return fmt.Errorf("property wants 'link', 'dirlink', or 'delivered'")
	}
	rest := f[2:]
	for len(rest) > 0 {
		if len(rest) < 2 {
			return fmt.Errorf("property option %q wants a value", rest[0])
		}
		v, err := strconv.ParseFloat(rest[1], 64)
		if err != nil {
			return fmt.Errorf("bad bound %q", rest[1])
		}
		switch rest[0] {
		case "min":
			pr.min = v
		case "max":
			pr.max = v
		default:
			return fmt.Errorf("unknown property option %q", rest[0])
		}
		rest = rest[2:]
	}
	p.props = append(p.props, pr)
	return nil
}

func (p *specParser) failures(f []string) error {
	rest := f
	for len(rest) > 0 {
		if len(rest) < 2 {
			return fmt.Errorf("failures option %q wants a value", rest[0])
		}
		switch rest[0] {
		case "k":
			k, err := strconv.Atoi(rest[1])
			if err != nil || k < 0 {
				return fmt.Errorf("bad k %q", rest[1])
			}
			p.k = k
		case "mode":
			switch rest[1] {
			case "links":
				p.mode = topo.FailLinks
			case "routers":
				p.mode = topo.FailRouters
			case "both":
				p.mode = topo.FailBoth
			default:
				return fmt.Errorf("bad mode %q", rest[1])
			}
		default:
			return fmt.Errorf("unknown failures option %q", rest[0])
		}
		rest = rest[2:]
	}
	return nil
}

func (p *specParser) finish() (*Spec, error) {
	net, err := p.b.Build()
	if err != nil {
		return nil, err
	}
	if p.autoMesh {
		EBGPSessionsFullMesh(net, p.configs)
	}
	if err := p.configs.Validate(net); err != nil {
		return nil, err
	}
	spec := &Spec{Net: net, Configs: p.configs, K: p.k, Mode: p.mode}
	for _, pf := range p.flows {
		r, ok := net.RouterByName(pf.ingress)
		if !ok {
			return nil, fmt.Errorf("flow %s: unknown ingress router %q", pf.flow.Name, pf.ingress)
		}
		fl := pf.flow
		fl.Ingress = r.ID
		spec.Flows = append(spec.Flows, fl)
	}
	for _, pp := range p.props {
		if pp.delivered.IsValid() {
			spec.Delivered = append(spec.Delivered, topo.DeliveredBound{
				Prefix: pp.delivered, Min: pp.min, Max: pp.max,
			})
			continue
		}
		if pp.directed {
			d, ok := net.FindDirLink(pp.a, pp.b)
			if !ok {
				return nil, fmt.Errorf("property: no link %s->%s", pp.a, pp.b)
			}
			spec.Props = append(spec.Props, topo.LoadBound{
				Link: d.Link(), Dir: d.Dir(), DirSpecified: true, Min: pp.min, Max: pp.max,
			})
		} else {
			l, ok := net.FindLink(pp.a, pp.b)
			if !ok {
				return nil, fmt.Errorf("property: no link %s-%s", pp.a, pp.b)
			}
			spec.Props = append(spec.Props, topo.LoadBound{Link: l.ID, Min: pp.min, Max: pp.max})
		}
	}
	for _, pd := range p.domains {
		for _, rname := range pd.routers {
			if _, ok := net.RouterByName(rname); !ok {
				return nil, fmt.Errorf("domain %s: unknown router %q", pd.name, rname)
			}
		}
		if spec.Domains == nil {
			spec.Domains = make(map[string][]string)
		}
		spec.Domains[pd.name] = pd.routers
	}
	for _, pl := range p.linksets {
		var links []topo.LinkID
		for _, lname := range pl.links {
			a, b, ok := splitLinkName(lname)
			if !ok {
				return nil, fmt.Errorf("linkset %s: bad link %q, want A-B", pl.name, lname)
			}
			l, lok := net.FindLink(a, b)
			if !lok {
				return nil, fmt.Errorf("linkset %s: no link %s-%s", pl.name, a, b)
			}
			links = append(links, l.ID)
		}
		if spec.LinkSets == nil {
			spec.LinkSets = make(map[string][]topo.LinkID)
		}
		spec.LinkSets[pl.name] = links
	}
	for i, pt := range p.tlps {
		prop, err := resolveTLP(net, spec.LinkSets, pt)
		if err != nil {
			return nil, fmt.Errorf("tlp %d: %w", i+1, err)
		}
		spec.Portfolio = append(spec.Portfolio, prop)
	}
	return spec, nil
}
