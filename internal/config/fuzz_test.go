package config

import "testing"

// FuzzParseSpec feeds arbitrary text to the config-DSL parser. The
// invariant is total robustness: any input either parses into a validated
// spec or returns an error — never a panic, never a nil spec with a nil
// error. The corpus under testdata/fuzz/FuzzParseSpec seeds the grammar's
// interesting corners (every block keyword, boundary values, and the
// malformed shapes the table-driven error tests pin down).
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("# comment only\n")
	f.Add("router a as 1\nrouter b as 2\nlink a b\n")
	f.Add("router a as 1 loopback 10.0.0.1 nofail\nrouter b as 1\nlink a b cost 3 capacity 9.5 addr-a 172.16.0.0 addr-b 172.16.0.1 nofail\nauto-bgp-mesh\n")
	f.Add("router a as 1\nconfig a\n  network 100.0.0.0/24\n  static 1.0.0.0/8 discard\n  redistribute static\n")
	f.Add("router a as 1\nrouter b as 1\nlink a b\nconfig a\n  neighbor 10.0.0.2 remote-as 1 local-pref 200 next-hop-self export-deny 100.0.0.0/24\n  sr-policy 10.0.0.2/32 dscp 5\n    path 10.0.0.2 weight 3\n")
	f.Add("router a as 1\nflow f ingress a src 9.9.9.9 dst 1.2.3.4 dscp 63 gbps 0.25\nproperty delivered 1.2.3.0/24 min 0.1 max 2\nfailures k 3 mode routers\n")
	f.Add("router a as 1\nrouter b as 1\nlink a b\nproperty link a-b max 10\nproperty dirlink a->b min 1\n")
	f.Fuzz(func(t *testing.T, text string) {
		spec, err := ParseSpecString(text)
		if err == nil && spec == nil {
			t.Fatal("ParseSpecString returned nil spec and nil error")
		}
		if err != nil && spec != nil {
			t.Fatalf("ParseSpecString returned both a spec and error %v", err)
		}
		if spec != nil {
			// A parsed spec must be internally consistent enough to walk.
			if spec.Net == nil {
				t.Fatal("parsed spec has nil network")
			}
			for _, fl := range spec.Flows {
				_ = spec.Net.Router(fl.Ingress)
			}
			for _, b := range spec.Props {
				_ = spec.Net.Link(b.Link)
			}
		}
	})
}
