package config

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/netip"
	"strconv"
	"strings"

	"github.com/yu-verify/yu/internal/topo"
)

// pendingTLP is one parsed-but-unresolved `tlp` line; router names are
// resolved against the network once it exists.
type pendingTLP struct {
	kind         string // "link", "dirlink", "util", "delivered", "ratio", "sumload", "maxload"
	a, b         string // subject link endpoints (link/dirlink/util)
	directed     bool   // subject named one direction (A->B)
	allLinks     bool   // util without a subject link
	setName      string // subject linkset (sumload/maxload)
	pfx          netip.Prefix
	min, max     float64
	factor       float64
	cond         bool
	condA, condB string
}

// parseTLPLine parses the fields after the `tlp` keyword:
//
//	tlp link A-B [min G] [max G] [if-failed C-D]
//	tlp dirlink A->B [min G] [max G] [if-failed C-D]
//	tlp util F [link A-B | dirlink A->B] [if-failed C-D]
//	tlp delivered PREFIX [min G] [max G] [if-failed C-D]
//	tlp ratio PREFIX [min R] [max R] [if-failed C-D]
//	tlp sumload SET [min G] [max G] [if-failed C-D]
//	tlp maxload SET [min G] [max G] [if-failed C-D]
//
// SET names a `linkset` declared in the same spec (or portfolio file).
func parseTLPLine(f []string) (pendingTLP, error) {
	pt := pendingTLP{min: 0, max: math.Inf(1)}
	if len(f) < 2 {
		return pt, fmt.Errorf("usage: tlp (link A-B | dirlink A->B | util F [link A-B] | delivered PFX | ratio PFX | sumload SET | maxload SET) [min G] [max G] [if-failed C-D]")
	}
	pt.kind = f[0]
	switch f[0] {
	case "link":
		a, b, ok := splitLinkName(f[1])
		if !ok {
			return pt, fmt.Errorf("bad link %q, want A-B", f[1])
		}
		pt.a, pt.b = a, b
	case "dirlink":
		a, b, ok := splitDirLinkName(f[1])
		if !ok {
			return pt, fmt.Errorf("bad dirlink %q, want A->B", f[1])
		}
		pt.a, pt.b, pt.directed = a, b, true
	case "util":
		v, err := strconv.ParseFloat(f[1], 64)
		if err != nil || math.IsNaN(v) || v <= 0 {
			return pt, fmt.Errorf("bad utilization factor %q", f[1])
		}
		pt.factor = v
		pt.allLinks = true // narrowed by a `link`/`dirlink` option below
	case "delivered", "ratio":
		pfx, err := netip.ParsePrefix(f[1])
		if err != nil {
			return pt, err
		}
		pt.pfx = pfx.Masked()
	case "sumload", "maxload":
		pt.setName = f[1]
	default:
		return pt, fmt.Errorf("tlp wants 'link', 'dirlink', 'util', 'delivered', 'ratio', 'sumload', or 'maxload', got %q", f[0])
	}
	rest := f[2:]
	for len(rest) > 0 {
		if len(rest) < 2 {
			return pt, fmt.Errorf("tlp option %q wants a value", rest[0])
		}
		switch rest[0] {
		case "min", "max":
			v, err := strconv.ParseFloat(rest[1], 64)
			if err != nil || math.IsNaN(v) {
				return pt, fmt.Errorf("bad bound %q", rest[1])
			}
			if pt.kind == "util" {
				return pt, fmt.Errorf("tlp util takes its bound from the factor, not %q", rest[0])
			}
			if rest[0] == "min" {
				pt.min = v
			} else {
				pt.max = v
			}
		case "link":
			if pt.kind != "util" {
				return pt, fmt.Errorf("option %q is only valid on tlp util", rest[0])
			}
			a, b, ok := splitLinkName(rest[1])
			if !ok {
				return pt, fmt.Errorf("bad link %q, want A-B", rest[1])
			}
			pt.a, pt.b, pt.allLinks = a, b, false
		case "dirlink":
			if pt.kind != "util" {
				return pt, fmt.Errorf("option %q is only valid on tlp util", rest[0])
			}
			a, b, ok := splitDirLinkName(rest[1])
			if !ok {
				return pt, fmt.Errorf("bad dirlink %q, want A->B", rest[1])
			}
			pt.a, pt.b, pt.directed, pt.allLinks = a, b, true, false
		case "if-failed":
			a, b, ok := splitLinkName(rest[1])
			if !ok {
				return pt, fmt.Errorf("bad if-failed link %q, want C-D", rest[1])
			}
			pt.cond, pt.condA, pt.condB = true, a, b
		default:
			return pt, fmt.Errorf("unknown tlp option %q", rest[0])
		}
		rest = rest[2:]
	}
	if pt.min > pt.max {
		return pt, fmt.Errorf("tlp min %g exceeds max %g", pt.min, pt.max)
	}
	return pt, nil
}

// splitLinkName splits "A-B"; dirlink arrows are rejected so "A->B" is not
// silently read as the link "A>"-"B".
func splitLinkName(s string) (a, b string, ok bool) {
	if strings.Contains(s, "->") {
		return "", "", false
	}
	parts := strings.SplitN(s, "-", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return "", "", false
	}
	return parts[0], parts[1], true
}

func splitDirLinkName(s string) (a, b string, ok bool) {
	parts := strings.SplitN(s, "->", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return "", "", false
	}
	return parts[0], parts[1], true
}

// resolveTLP binds a parsed `tlp` line to the built network; sets supplies
// the named link sets aggregate properties refer to.
func resolveTLP(net *topo.Network, sets map[string][]topo.LinkID, pt pendingTLP) (topo.TLProp, error) {
	var prop topo.TLProp
	switch pt.kind {
	case "link", "dirlink":
		prop.Kind = topo.TLPLinkLoad
	case "util":
		prop.Kind = topo.TLPUtil
		prop.Factor = pt.factor
		prop.AllLinks = pt.allLinks
	case "delivered":
		prop.Kind = topo.TLPDelivered
		prop.Prefix = pt.pfx
	case "ratio":
		prop.Kind = topo.TLPRatio
		prop.Prefix = pt.pfx
	case "sumload", "maxload":
		if pt.kind == "sumload" {
			prop.Kind = topo.TLPSumLoad
		} else {
			prop.Kind = topo.TLPMaxLoad
		}
		links, ok := sets[pt.setName]
		if !ok {
			return prop, fmt.Errorf("unknown linkset %q", pt.setName)
		}
		prop.SetName = pt.setName
		prop.AggLinks = links
	default:
		return prop, fmt.Errorf("unknown tlp kind %q", pt.kind)
	}
	prop.Min, prop.Max = pt.min, pt.max
	if pt.a != "" {
		if pt.directed {
			d, ok := net.FindDirLink(pt.a, pt.b)
			if !ok {
				return prop, fmt.Errorf("no link %s->%s", pt.a, pt.b)
			}
			prop.Link, prop.Dir, prop.DirSpecified = d.Link(), d.Dir(), true
		} else {
			l, ok := net.FindLink(pt.a, pt.b)
			if !ok {
				return prop, fmt.Errorf("no link %s-%s", pt.a, pt.b)
			}
			prop.Link = l.ID
		}
	}
	if pt.cond {
		l, ok := net.FindLink(pt.condA, pt.condB)
		if !ok {
			return prop, fmt.Errorf("no if-failed link %s-%s", pt.condA, pt.condB)
		}
		prop.CondSet, prop.CondLink = true, l.ID
	}
	return prop, nil
}

// ParsePortfolio reads a standalone portfolio file — `tlp` lines resolved
// against an existing network, the payload format of `yu verify -tlp` and
// the daemon's /v1/tlp endpoint. The leading `tlp` keyword on each line is
// optional; `linkset NAME A-B ...` lines declare the link sets aggregate
// properties below them refer to; '#' comments and blank lines are
// ignored.
func ParsePortfolio(r io.Reader, net *topo.Network) ([]topo.TLProp, error) {
	var props []topo.TLProp
	sets := make(map[string][]topo.LinkID)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "linkset" {
			if len(fields) < 3 {
				return nil, fmt.Errorf("line %d: usage: linkset NAME A-B [C-D...]", lineno)
			}
			if _, dup := sets[fields[1]]; dup {
				return nil, fmt.Errorf("line %d: duplicate linkset %q", lineno, fields[1])
			}
			var links []topo.LinkID
			for _, lname := range fields[2:] {
				a, b, ok := splitLinkName(lname)
				if !ok {
					return nil, fmt.Errorf("line %d: bad link %q, want A-B", lineno, lname)
				}
				l, lok := net.FindLink(a, b)
				if !lok {
					return nil, fmt.Errorf("line %d: no link %s-%s", lineno, a, b)
				}
				links = append(links, l.ID)
			}
			sets[fields[1]] = links
			continue
		}
		if fields[0] == "tlp" {
			fields = fields[1:]
		}
		pt, err := parseTLPLine(fields)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		prop, err := resolveTLP(net, sets, pt)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		props = append(props, prop)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return props, nil
}

// ParsePortfolioString is ParsePortfolio on a string.
func ParsePortfolioString(s string, net *topo.Network) ([]topo.TLProp, error) {
	return ParsePortfolio(strings.NewReader(s), net)
}
