package config

import (
	"strings"
	"testing"
)

// TestParseSpecErrorMessages pins the parser's rejection behaviour
// line by line: each malformed input must produce an error (never a
// panic) whose message contains the expected fragment. It complements
// TestParseSpecErrors in config_test.go, which covers the semantic
// checks done after parsing (BGP adjacency, SR segment validity); this
// table sweeps the lexical/usage errors of every block keyword. The
// valid prefix used by most entries keeps the error site the only
// broken thing in the input.
func TestParseSpecErrorMessages(t *testing.T) {
	const base = "router a as 1\nrouter b as 1\nlink a b\n"
	tests := []struct {
		name string
		in   string
		want string
	}{
		{"unknown keyword", "frobnicate a b\n", `unknown keyword "frobnicate"`},
		{"router usage", "router a\n", "usage: router NAME as NUM"},
		{"bad as number", "router a as many\n", `bad AS "many"`},
		{"router as negative", "router a as -3\n", `bad AS "-3"`},
		{"loopback missing addr", "router a as 1 loopback\n", "loopback wants an address"},
		{"loopback bad addr", "router a as 1 loopback nonsense\n", ""},
		{"unknown router option", "router a as 1 wings\n", `unknown router option "wings"`},
		{"duplicate router", "router a as 1\nrouter a as 2\n", `duplicate router name "a"`},
		{"link usage", "link a\n", "usage: link A B"},
		{"link bad cost", base + "link b a cost heavy\n", `bad cost "heavy"`},
		{"link bad capacity", base + "link b a capacity lots\n", `bad capacity "lots"`},
		{"link option missing value", base + "link b a cost\n", `link option "cost" wants a value`},
		{"link unknown option", base + "link b a shiny yes\n", `unknown link option "shiny"`},
		{"link half addressed", base + "link b a addr-a 10.0.0.1\n", "addr-a and addr-b must be given together"},
		{"config usage", "config\n", "config wants a router name"},
		{"network outside block", base + "network 10.0.0.0/8\n", `"network" outside a config block`},
		{"neighbor outside block", base + "neighbor 10.0.0.1 remote-as 2\n", `"neighbor" outside a config block`},
		{"static outside block", base + "static 10.0.0.0/8 discard\n", `"static" outside a config block`},
		{"path outside block", base + "path 10.0.0.1 weight 1\n", `"path" outside a config block`},
		{"network usage", base + "config a\nnetwork\n", "usage: network PREFIX"},
		{"network bad prefix", base + "config a\nnetwork 10.0.0.0\n", ""},
		{"neighbor usage", base + "config a\nneighbor 10.0.0.2\n", "usage: neighbor IP remote-as NUM"},
		{"neighbor bad as", base + "config a\nneighbor 10.0.0.2 remote-as x\n", `bad AS "x"`},
		{"neighbor bad local-pref", base + "config a\nneighbor 10.0.0.2 remote-as 2 local-pref soon\n", `bad local-pref "soon"`},
		{"neighbor local-pref missing value", base + "config a\nneighbor 10.0.0.2 remote-as 2 local-pref\n", "local-pref wants a value"},
		{"neighbor export-deny missing prefix", base + "config a\nneighbor 10.0.0.2 remote-as 2 export-deny\n", "export-deny wants a prefix"},
		{"neighbor unknown option", base + "config a\nneighbor 10.0.0.2 remote-as 2 fancy\n", `unknown neighbor option "fancy"`},
		{"static usage", base + "config a\nstatic 10.0.0.0/8\n", "usage: static PREFIX (discard | via IP)"},
		{"static bad verb", base + "config a\nstatic 10.0.0.0/8 teleport somewhere\n", "static wants 'discard' or 'via IP'"},
		{"static via missing addr", base + "config a\nstatic 10.0.0.0/8 via\n", ""},
		{"redistribute usage", base + "config a\nredistribute connected\n", "usage: redistribute static"},
		{"sr-policy usage", base + "config a\nsr-policy\n", "usage: sr-policy PREFIX [dscp N]"},
		{"sr-policy bad dscp", base + "config a\nsr-policy 10.0.0.0/24 dscp 64\n", `bad dscp "64"`},
		{"path without sr-policy", base + "config a\npath 10.0.0.2 weight 1\n", "path outside an sr-policy"},
		{"path usage", base + "config a\nsr-policy 10.0.0.0/24\npath weight\n", "usage: path IP [IP...] weight N"},
		{"path bad weight", base + "config a\nsr-policy 10.0.0.0/24\npath 10.0.0.2 weight minus\n", `bad weight "minus"`},
		{"flow needs name", "flow\n", "flow wants a name"},
		{"flow missing fields", base + "flow f ingress a\n", "flow needs at least ingress, dst, and gbps"},
		{"flow bad dscp", base + "flow f ingress a dst 1.2.3.4 gbps 1 dscp 99\n", `bad dscp "99"`},
		{"flow bad gbps", base + "flow f ingress a dst 1.2.3.4 gbps torrent\n", `bad gbps "torrent"`},
		{"flow option missing value", base + "flow f ingress a dst 1.2.3.4 gbps\n", `flow option "gbps" wants a value`},
		{"flow unknown option", base + "flow f ingress a dst 1.2.3.4 gbps 1 color blue\n", `unknown flow option "color"`},
		{"flow unknown ingress", base + "flow f ingress zz dst 1.2.3.4 gbps 1\n", `unknown ingress router "zz"`},
		{"property usage", base + "property\n", "usage: property (link A-B | dirlink A->B)"},
		{"property bad link", base + "property link ab max 1\n", `bad link "ab", want A-B`},
		{"property bad dirlink", base + "property dirlink a-b max 1\n", `bad dirlink "a-b", want A->B`},
		{"property bad kind", base + "property tunnel a-b\n", "property wants 'link', 'dirlink', or 'delivered'"},
		{"property bad bound", base + "property link a-b max tall\n", `bad bound "tall"`},
		{"property option missing value", base + "property link a-b max\n", `property option "max" wants a value`},
		{"property unknown option", base + "property link a-b avg 3\n", `unknown property option "avg"`},
		{"property unknown link", base + "property link a-c max 1\n", "property: no link a-c"},
		{"property unknown dirlink", base + "property dirlink a->c max 1\n", "property: no link a->c"},
		{"failures bad k", base + "failures k soon\n", `bad k "soon"`},
		{"failures bad mode", base + "failures mode chaos\n", `bad mode "chaos"`},
		{"failures option missing value", base + "failures k\n", `failures option "k" wants a value`},
		{"failures unknown option", base + "failures q 3\n", `unknown failures option "q"`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := ParseSpecString(tc.in)
			if err == nil {
				t.Fatalf("ParseSpecString(%q) succeeded, want error containing %q", tc.in, tc.want)
			}
			if spec != nil {
				t.Fatalf("ParseSpecString(%q) returned a spec alongside error %v", tc.in, err)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ParseSpecString(%q) error = %q, want it to contain %q", tc.in, err.Error(), tc.want)
			}
		})
	}
}
