package config

import (
	"math"
	"net/netip"
	"strings"
	"testing"
)

const miniSpec = `
# two-AS toy network
router A as 100 loopback 10.0.0.1
router B as 200 loopback 10.0.0.2
router C as 200 loopback 10.0.0.3
link A B cost 5 capacity 40 addr-a 1.0.0.1 addr-b 1.0.0.2
link B C cost 7
auto-bgp-mesh

config C
  network 9.9.9.0/24
config A
  neighbor 1.0.0.2 remote-as 200 local-pref 150
  static 8.0.0.0/8 discard
  sr-policy 10.0.0.3/32 dscp 7
    path 10.0.0.2 10.0.0.3 weight 10

flow f1 ingress A src 2.0.0.1 dst 9.9.9.1 dscp 7 gbps 3.5
property link A-B max 35
property dirlink B->C min 1 max 30
property delivered 9.9.9.0/24 min 3
failures k 2 mode both
`

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpecString(miniSpec)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Net.NumRouters() != 3 || spec.Net.NumLinks() != 2 {
		t.Fatalf("topology: %d routers %d links", spec.Net.NumRouters(), spec.Net.NumLinks())
	}
	if spec.K != 2 || spec.Mode.String() != "both" {
		t.Errorf("failures: k=%d mode=%s", spec.K, spec.Mode)
	}
	if len(spec.Flows) != 1 {
		t.Fatalf("flows: %d", len(spec.Flows))
	}
	f := spec.Flows[0]
	if f.Name != "f1" || f.DSCP != 7 || f.Gbps != 3.5 || !f.Dst.IsValid() {
		t.Errorf("flow = %+v", f)
	}
	if len(spec.Props) != 2 {
		t.Fatalf("props: %d", len(spec.Props))
	}
	if spec.Props[0].DirSpecified || spec.Props[0].Max != 35 || spec.Props[0].Min != 0 {
		t.Errorf("prop0 = %+v", spec.Props[0])
	}
	if !spec.Props[1].DirSpecified || spec.Props[1].Min != 1 || spec.Props[1].Max != 30 {
		t.Errorf("prop1 = %+v", spec.Props[1])
	}
	if len(spec.Delivered) != 1 || spec.Delivered[0].Min != 3 || !math.IsInf(spec.Delivered[0].Max, 1) {
		t.Errorf("delivered = %+v", spec.Delivered)
	}

	ca := spec.Configs["A"]
	if ca == nil {
		t.Fatal("config A missing")
	}
	if len(ca.Statics) != 1 || !ca.Statics[0].Discard {
		t.Errorf("statics = %+v", ca.Statics)
	}
	if len(ca.SRPolicies) != 1 {
		t.Fatalf("sr policies = %+v", ca.SRPolicies)
	}
	pol := ca.SRPolicies[0]
	if pol.MatchDSCP != 7 || len(pol.Paths) != 1 || pol.Paths[0].Weight != 10 {
		t.Errorf("sr policy = %+v", pol)
	}
	if pol.TotalWeight() != 10 {
		t.Errorf("TotalWeight = %d", pol.TotalWeight())
	}
	// The explicit neighbor with local-pref must survive auto-bgp-mesh.
	found := false
	for _, nb := range ca.Neighbors {
		if nb.Addr == netip.MustParseAddr("1.0.0.2") && nb.LocalPref == 150 {
			found = true
		}
	}
	if !found {
		t.Errorf("explicit neighbor lost: %+v", ca.Neighbors)
	}
	// auto-bgp-mesh must add the iBGP session B<->C.
	cb := spec.Configs["B"]
	if cb == nil {
		t.Fatal("config B missing (auto-bgp-mesh)")
	}
	ibgp := false
	for _, nb := range cb.Neighbors {
		if nb.Addr == netip.MustParseAddr("10.0.0.3") && nb.RemoteAS == 200 {
			ibgp = true
		}
	}
	if !ibgp {
		t.Errorf("iBGP mesh missing on B: %+v", cb.Neighbors)
	}
}

func TestSRPolicyMatches(t *testing.T) {
	pol := SRPolicy{
		Endpoint:  netip.MustParsePrefix("10.0.0.3/32"),
		MatchDSCP: 7,
	}
	if !pol.Matches(netip.MustParseAddr("10.0.0.3"), 7) {
		t.Error("exact match failed")
	}
	if pol.Matches(netip.MustParseAddr("10.0.0.3"), 5) {
		t.Error("dscp mismatch must not match")
	}
	if pol.Matches(netip.MustParseAddr("10.0.0.4"), 7) {
		t.Error("address mismatch must not match")
	}
	pol.MatchDSCP = AnyDSCP
	if !pol.Matches(netip.MustParseAddr("10.0.0.3"), 63) {
		t.Error("AnyDSCP must match any dscp")
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name, spec, wantSub string
	}{
		{"unknown keyword", "bogus x", "unknown keyword"},
		{"bad router", "router A", "usage: router"},
		{"bad as", "router A as x", "bad AS"},
		{"link unknown router", "router A as 1\nlink A B", "unknown router"},
		{"config context", "network 1.0.0.0/8", "outside a config block"},
		{"path outside policy", "router A as 1\nconfig A\npath 10.0.0.1 weight 3", "outside an sr-policy"},
		{"flow missing fields", "router A as 1\nflow f ingress A", "flow needs at least"},
		{"flow unknown ingress", "router A as 1\nflow f ingress Z dst 1.1.1.1 gbps 1", "unknown ingress"},
		{"bad property link", "router A as 1\nrouter B as 1\nlink A B\nproperty link A-Z max 5", "no link"},
		{"bad dirlink", "router A as 1\nproperty dirlink AB max 5", "bad dirlink"},
		{"bad k", "failures k -1", "bad k"},
		{"bad mode", "failures mode sideways", "bad mode"},
		{"neighbor not connected", `
router A as 1
router B as 2
router C as 3
link A B addr-a 1.0.0.1 addr-b 1.0.0.2
link B C addr-a 2.0.0.1 addr-b 2.0.0.2
config A
  neighbor 2.0.0.2 remote-as 3
`, "not directly connected"},
		{"ibgp wrong as", `
router A as 1 loopback 10.0.0.1
router B as 2 loopback 10.0.0.2
link A B
config A
  neighbor 10.0.0.2 remote-as 1
`, "is in AS"},
		{"sr segment not loopback", `
router A as 1
router B as 1
link A B
config A
  sr-policy 10.0.0.9/32
    path 99.99.99.99 weight 1
`, "not a router loopback"},
		{"sr no paths", `
router A as 1
router B as 1
link A B
config A
  sr-policy 10.0.0.9/32
`, "no paths"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpecString(tc.spec)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestValidateStaticNextHop(t *testing.T) {
	_, err := ParseSpecString(`
router A as 1
router B as 1
link A B
config A
  static 7.0.0.0/8 via 4.4.4.4
`)
	if err == nil || !strings.Contains(err.Error(), "unresolvable") {
		t.Fatalf("want unresolvable static error, got %v", err)
	}
}

func TestConfigsGet(t *testing.T) {
	c := make(Configs)
	r := c.Get("X")
	if r.Name != "X" {
		t.Error("Get must initialize Name")
	}
	if c.Get("X") != r {
		t.Error("Get must be idempotent")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	spec, err := ParseSpecString("  # leading comment\n\n\trouter A as 1 # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Net.NumRouters() != 1 {
		t.Error("comment handling broken")
	}
}
