package routesim

import (
	"net/netip"

	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/topo"
)

// GuardedSRPath is one weighted SR path with its tunnel-establishment
// guard: the conjunction of per-segment IGP reachability (paper §4.1,
// Figure 4: guard(p1) = reach_{D,E} ∧ reach_{E,F}).
type GuardedSRPath struct {
	// Segments are the routers of the label stack, in traversal order.
	Segments []topo.RouterID
	Weight   int64
	Guard    *mtbdd.Node
}

// GuardedSRPolicy is an SR policy whose paths carry guards.
type GuardedSRPolicy struct {
	Endpoint  netip.Prefix
	MatchDSCP int
	Paths     []GuardedSRPath
}

// Matches reports whether the policy applies to a resolved next hop and
// DSCP value.
func (p *GuardedSRPolicy) Matches(nip netip.Addr, dscp uint8) bool {
	if !p.Endpoint.Contains(nip) {
		return false
	}
	return p.MatchDSCP < 0 || p.MatchDSCP == int(dscp)
}

// GuardedStatic is a static route with its presence guard: the owning
// router is alive, and for non-discard routes the next-hop interface
// resolves.
type GuardedStatic struct {
	Prefix  netip.Prefix
	Discard bool
	// Out is the directed link for a direct next hop (valid if !Discard
	// and !Indirect).
	Out topo.DirLinkID
	// Indirect routes recurse through the IGP toward ViaRouter.
	Indirect  bool
	ViaRouter topo.RouterID
	Guard     *mtbdd.Node
}

// computeSR builds guarded SR policies for router r from its
// configuration, using IGP reachability for per-segment guards.
func computeSR(fv *FailVars, igp *IGP, r *topo.Router, cfgPols []srConfigPolicy) []GuardedSRPolicy {
	m := fv.M
	var out []GuardedSRPolicy
	for _, cp := range cfgPols {
		gp := GuardedSRPolicy{Endpoint: cp.endpoint, MatchDSCP: cp.dscp}
		for _, path := range cp.paths {
			guard := m.One()
			prev := r.ID
			for _, seg := range path.segments {
				guard = m.And(guard, igp.Reach(prev, seg))
				prev = seg
			}
			guard = fv.Reduce(guard)
			gp.Paths = append(gp.Paths, GuardedSRPath{
				Segments: path.segments,
				Weight:   path.weight,
				Guard:    guard,
			})
		}
		out = append(out, gp)
	}
	return out
}

type srConfigPolicy struct {
	endpoint netip.Prefix
	dscp     int
	paths    []srConfigPath
}

type srConfigPath struct {
	segments []topo.RouterID
	weight   int64
}
