package routesim

import (
	"testing"

	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/topo"
)

// TestImportIntoEquivalence clones the motivating-example result into a
// fresh manager and checks every guard evaluates identically across a
// sweep of failure scenarios, while sharing no nodes with the source.
func TestImportIntoEquivalence(t *testing.T) {
	spec, res := motivating(t, 2)

	m2 := mtbdd.New()
	fv2 := NewFailVars(m2, spec.Net, topo.FailLinks, 2)
	clone := res.ImportInto(fv2)

	if clone.Vars != fv2 {
		t.Fatal("clone not bound to destination FailVars")
	}

	// Scenarios: no failure, each single link, and a few pairs.
	var scenarios [][]topo.LinkID
	scenarios = append(scenarios, nil)
	for l := 0; l < spec.Net.NumLinks(); l++ {
		scenarios = append(scenarios, []topo.LinkID{topo.LinkID(l)})
		for l2 := l + 1; l2 < spec.Net.NumLinks(); l2++ {
			scenarios = append(scenarios, []topo.LinkID{topo.LinkID(l), topo.LinkID(l2)})
		}
	}
	check := func(what string, a, b *mtbdd.Node) {
		t.Helper()
		if a == nil || b == nil {
			if a != b {
				t.Fatalf("%s: nil mismatch", what)
			}
			return
		}
		for _, sc := range scenarios {
			va := res.Vars.M.Eval(a, res.Vars.Scenario(sc, nil))
			vb := m2.Eval(b, fv2.Scenario(sc, nil))
			if va != vb {
				t.Fatalf("%s: eval differs under failures %v: %v vs %v", what, sc, va, vb)
			}
		}
	}

	for r := 0; r < spec.Net.NumRouters(); r++ {
		rid := topo.RouterID(r)
		for dest, routes := range res.IGP.routes[r] {
			cr := clone.IGP.routes[r][dest]
			if len(cr) != len(routes) {
				t.Fatalf("router %d dest %d: %d IGP routes vs %d", r, dest, len(routes), len(cr))
			}
			for i, rt := range routes {
				if cr[i].Out != rt.Out || cr[i].Cost != rt.Cost {
					t.Fatalf("router %d dest %d route %d differs", r, dest, i)
				}
				check("igp route guard", rt.Guard, cr[i].Guard)
			}
		}
		for dest, g := range res.IGP.reach[r] {
			check("igp reach guard", g, clone.IGP.reach[r][dest])
		}
		if res.BGP.RIBs[r] != nil {
			for pfx, cands := range res.BGP.RIBs[r] {
				cc := clone.BGP.RIBs[r][pfx]
				if len(cc) != len(cands) {
					t.Fatalf("router %d prefix %v: %d candidates vs %d", r, pfx, len(cands), len(cc))
				}
				for i, c := range cands {
					if cc[i] == c {
						t.Fatalf("router %d prefix %v cand %d: shared BGPCand pointer", r, pfx, i)
					}
					check("bgp guard", c.Guard, cc[i].Guard)
				}
			}
		}
		for i, p := range res.SR[r] {
			cp := clone.SR[r][i]
			if cp.Endpoint != p.Endpoint || cp.MatchDSCP != p.MatchDSCP || len(cp.Paths) != len(p.Paths) {
				t.Fatalf("router %d SR policy %d differs", r, i)
			}
			for j, path := range p.Paths {
				check("sr path guard", path.Guard, cp.Paths[j].Guard)
			}
		}
		for i, st := range res.Statics[r] {
			check("static guard", st.Guard, clone.Statics[r][i].Guard)
		}
		_ = rid
	}

	// Disjointness: non-terminal clone guards must live in m2, not in the
	// source manager. Terminals 0/1 hash-cons to each manager separately,
	// so pointer inequality holds for any non-constant guard.
	for r := range res.IGP.reach {
		for dest, g := range res.IGP.reach[r] {
			cg := clone.IGP.reach[r][dest]
			if !g.IsTerminal() && g == cg {
				t.Fatalf("router %d dest %d: reach guard shared between managers", r, dest)
			}
		}
	}
}

// TestImportIntoRejectsMismatch checks the guard rails.
func TestImportIntoRejectsMismatch(t *testing.T) {
	spec, res := motivating(t, 2)

	m2 := mtbdd.New()
	fv2 := NewFailVars(m2, spec.Net, topo.FailLinks, 1) // wrong budget
	defer func() {
		if recover() == nil {
			t.Fatal("ImportInto accepted a FailVars with a different budget")
		}
	}()
	res.ImportInto(fv2)
}
