package routesim

import (
	"sync"
	"testing"

	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/topo"
)

// collectGuards gathers every guard of a result in a deterministic-enough
// way for comparison (pairing relies on the two clones sharing traversal
// order, which importWith guarantees).
func collectGuards(r *Result) []*mtbdd.Node {
	var out []*mtbdd.Node
	r.eachGuard(func(n *mtbdd.Node) { out = append(out, n) })
	return out
}

// TestImportBaseMatchesImportInto pins the copy-on-write base's contract:
// cloning through the shared snapshot yields pointer-identical guards to
// the plain per-shard ImportInto on the same destination manager. The two
// clones are walked in structural lockstep (eachGuard's own order is
// map-dependent and may differ between calls).
func TestImportBaseMatchesImportInto(t *testing.T) {
	spec, res := motivating(t, 2)
	base := res.NewImportBase()
	if base.NumNodes() == 0 {
		t.Fatal("empty import base from a non-trivial result")
	}

	dst := NewFailVars(mtbdd.New(), spec.Net, topo.FailLinks, 2)
	viaBase := base.ImportInto(dst)
	viaImport := res.ImportInto(dst)

	compared := 0
	check := func(where string, a, b *mtbdd.Node) {
		t.Helper()
		if a != b {
			t.Fatalf("%s: snapshot clone %p != direct import %p", where, a, b)
		}
		compared++
	}
	for ri := range viaBase.IGP.routes {
		for dest, routes := range viaBase.IGP.routes[ri] {
			other := viaImport.IGP.routes[ri][dest]
			for i := range routes {
				check("igp route", routes[i].Guard, other[i].Guard)
			}
		}
		for dest, g := range viaBase.IGP.reach[ri] {
			check("igp reach", g, viaImport.IGP.reach[ri][dest])
		}
	}
	for ri, rib := range viaBase.BGP.RIBs {
		for pfx, cands := range rib {
			other := viaImport.BGP.RIBs[ri][pfx]
			for i := range cands {
				check("bgp cand", cands[i].Guard, other[i].Guard)
			}
		}
	}
	for ri, pols := range viaBase.SR {
		for i := range pols {
			for j := range pols[i].Paths {
				check("sr path", pols[i].Paths[j].Guard, viaImport.SR[ri][i].Paths[j].Guard)
			}
		}
	}
	for ri, sts := range viaBase.Statics {
		for i := range sts {
			check("static", sts[i].Guard, viaImport.Statics[ri][i].Guard)
		}
	}
	if compared == 0 {
		t.Fatal("no guards compared")
	}
	if viaBase.Vars != dst || viaBase.BGP.Converged != res.BGP.Converged {
		t.Fatal("clone metadata lost")
	}
}

// TestImportBaseConcurrentClones exercises the read-only-sharing claim:
// many workers cloning from one base concurrently (the parallel
// pipeline's setup pattern) must each get a correct private copy. Run
// under -race this doubles as the data-race check.
func TestImportBaseConcurrentClones(t *testing.T) {
	spec, res := motivating(t, 2)
	base := res.NewImportBase()
	srcGuards := collectGuards(res)

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	clones := make([]*Result, workers)
	fvs := make([]*FailVars, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fvs[w] = NewFailVars(mtbdd.New(), spec.Net, topo.FailLinks, 2)
			clones[w] = base.ImportInto(fvs[w])
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	// Every clone must agree with the source guard-for-guard on a few
	// scenarios (structural equality across managers via evaluation).
	scenarios := [][]topo.LinkID{nil, {0}, {1}, {0, 1}}
	for w := 0; w < workers; w++ {
		got := collectGuards(clones[w])
		if len(got) != len(srcGuards) {
			t.Fatalf("worker %d: %d guards, source has %d", w, len(got), len(srcGuards))
		}
		for i := range got {
			for _, sc := range scenarios {
				sv := res.Vars.M.Eval(srcGuards[i], res.Vars.Scenario(sc, nil))
				cv := fvs[w].M.Eval(got[i], fvs[w].Scenario(sc, nil))
				if sv != cv {
					t.Fatalf("worker %d guard %d scenario %v: %v vs %v", w, i, sc, sv, cv)
				}
			}
		}
	}
}
