// Package routesim implements symbolic route simulation (paper §4.1,
// following Hoyan): it computes, for every router, a guarded RIB — BGP and
// IGP routes annotated with a boolean guard (an MTBDD over link/router
// failure variables) encoding exactly the failure scenarios in which the
// route is present — and guarded SR policies whose per-path guards are
// conjunctions of per-segment IGP reachability.
package routesim

import (
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/topo"
)

// FailVars allocates one boolean MTBDD variable per failable element of
// the network, according to the failure mode. Elements outside the mode
// (and elements marked NoFail) get no variable and are treated as always
// alive.
type FailVars struct {
	M    *mtbdd.Manager
	Net  *topo.Network
	Mode topo.FailureMode
	K    int // failure budget used for KReduce throughout the pipeline

	// NoFuse disables the fused k-budgeted kernels: the Reduce-composed
	// helpers (ReduceAdd, ReduceMulAdd, ...) fall back to the legacy
	// build-then-reduce form — a full apply followed by KReduce. The
	// fused and composed forms construct the identical canonical nodes
	// (see internal/mtbdd/kernels.go); the flag exists so the kernels
	// benchmark can measure what the fusion itself buys.
	NoFuse bool

	linkVar   []int // per LinkID; -1 if unfailable
	routerVar []int // per RouterID; -1 if unfailable
	kindOf    []varKind
	elemOf    []int32
}

type varKind int8

const (
	varLink varKind = iota
	varRouter
)

// NewFailVars creates the failure variables for net under the given mode
// and budget k. Link variables are allocated before router variables.
func NewFailVars(m *mtbdd.Manager, net *topo.Network, mode topo.FailureMode, k int) *FailVars {
	fv := &FailVars{
		M:         m,
		Net:       net,
		Mode:      mode,
		K:         k,
		linkVar:   make([]int, net.NumLinks()),
		routerVar: make([]int, net.NumRouters()),
	}
	for i := range fv.linkVar {
		fv.linkVar[i] = -1
	}
	for i := range fv.routerVar {
		fv.routerVar[i] = -1
	}
	if mode == topo.FailLinks || mode == topo.FailBoth {
		for i := range net.Links {
			if net.Links[i].NoFail {
				continue
			}
			v := m.AddVar("L:" + net.LinkName(topo.LinkID(i)))
			fv.linkVar[i] = v
			fv.kindOf = append(fv.kindOf, varLink)
			fv.elemOf = append(fv.elemOf, int32(i))
		}
	}
	if mode == topo.FailRouters || mode == topo.FailBoth {
		for i := range net.Routers {
			if net.Routers[i].NoFail {
				continue
			}
			v := m.AddVar("R:" + net.Routers[i].Name)
			fv.routerVar[i] = v
			fv.kindOf = append(fv.kindOf, varRouter)
			fv.elemOf = append(fv.elemOf, int32(i))
		}
	}
	return fv
}

// NewFailVarsAliased creates failure variables for a domain subnet that
// alias the global network's variables: the manager declares the FULL
// global variable set, in the exact order and with the exact names
// NewFailVars would produce for the global network, but the per-element
// lookup tables are indexed by subnet IDs. Guards built in a domain
// manager therefore have the same canonical structure as the monolithic
// run's guards over the same elements — KReduce counts failures
// identically, and cross-manager Import into a manager holding the global
// NewFailVars is a pure variable-order-preserving copy.
//
// Variables of elements outside the subnet are declared (to keep the
// order aligned) but unmapped: VarElement returns ok=false for them, and
// no subnet element resolves to them.
func NewFailVarsAliased(m *mtbdd.Manager, global *topo.Network, sub *topo.Subnet, mode topo.FailureMode, k int) *FailVars {
	fv := &FailVars{
		M:         m,
		Net:       sub.Net,
		Mode:      mode,
		K:         k,
		linkVar:   make([]int, sub.Net.NumLinks()),
		routerVar: make([]int, sub.Net.NumRouters()),
	}
	for i := range fv.linkVar {
		fv.linkVar[i] = -1
	}
	for i := range fv.routerVar {
		fv.routerVar[i] = -1
	}
	if mode == topo.FailLinks || mode == topo.FailBoth {
		for i := range global.Links {
			if global.Links[i].NoFail {
				continue
			}
			v := m.AddVar("L:" + global.LinkName(topo.LinkID(i)))
			fv.kindOf = append(fv.kindOf, varLink)
			if sl := sub.LinkIndex[i]; sl >= 0 {
				fv.linkVar[sl] = v
				fv.elemOf = append(fv.elemOf, int32(sl))
			} else {
				fv.elemOf = append(fv.elemOf, -1)
			}
		}
	}
	if mode == topo.FailRouters || mode == topo.FailBoth {
		for i := range global.Routers {
			if global.Routers[i].NoFail {
				continue
			}
			v := m.AddVar("R:" + global.Routers[i].Name)
			fv.kindOf = append(fv.kindOf, varRouter)
			if sr := sub.RouterIndex[i]; sr >= 0 {
				fv.routerVar[sr] = v
				fv.elemOf = append(fv.elemOf, int32(sr))
			} else {
				fv.elemOf = append(fv.elemOf, -1)
			}
		}
	}
	return fv
}

// NumVars returns the number of allocated failure variables.
func (fv *FailVars) NumVars() int { return len(fv.kindOf) }

// LinkVar returns the variable of link l, or -1 if the link cannot fail.
func (fv *FailVars) LinkVar(l topo.LinkID) int { return fv.linkVar[l] }

// RouterVar returns the variable of router r, or -1 if it cannot fail.
func (fv *FailVars) RouterVar(r topo.RouterID) int { return fv.routerVar[r] }

// DescribeVar renders variable v ("L:A-B" or "R:C").
func (fv *FailVars) DescribeVar(v int) string { return fv.M.VarName(v) }

// VarElement returns what variable v models: a link ID (isLink true) or a
// router ID (isLink false).
func (fv *FailVars) VarElement(v int) (linkID topo.LinkID, routerID topo.RouterID, isLink bool) {
	if fv.kindOf[v] == varLink {
		return topo.LinkID(fv.elemOf[v]), 0, true
	}
	return 0, topo.RouterID(fv.elemOf[v]), false
}

// RouterUp returns the guard "router r is alive".
func (fv *FailVars) RouterUp(r topo.RouterID) *mtbdd.Node {
	if v := fv.routerVar[r]; v >= 0 {
		return fv.M.Var(v)
	}
	return fv.M.One()
}

// LinkUp returns the guard "link l is alive" (endpoints not included).
func (fv *FailVars) LinkUp(l topo.LinkID) *mtbdd.Node {
	if v := fv.linkVar[l]; v >= 0 {
		return fv.M.Var(v)
	}
	return fv.M.One()
}

// EdgeUp returns the guard "the directed link e is usable": the link and
// both endpoint routers are alive.
func (fv *FailVars) EdgeUp(e topo.DirEdge) *mtbdd.Node {
	g := fv.LinkUp(e.DirLink.Link())
	g = fv.M.And(g, fv.RouterUp(e.From))
	return fv.M.And(g, fv.RouterUp(e.To))
}

// Reduce applies the k-failure-equivalence reduction with the pipeline's
// budget (§5.2). It is the hook every phase of symbolic simulation uses to
// keep MTBDDs small; disabled budgets (<0) return f unchanged, which is
// the "YU w/o MTBDD reduction" ablation of Fig 15/16.
func (fv *FailVars) Reduce(f *mtbdd.Node) *mtbdd.Node {
	if fv.K < 0 {
		return f
	}
	return fv.M.KReduce(f, fv.K)
}

// The ReduceOp helpers compute Reduce(op(...)) through the fused
// k-budgeted kernels: one DFS that constructs the KREDUCEd result
// directly instead of materializing the unreduced intermediate. With a
// disabled budget (K < 0) the kernels degrade to the plain operators,
// matching Reduce's identity behavior, so the ablation mode needs no
// special-casing at call sites.

// ReduceAdd returns Reduce(f + g).
func (fv *FailVars) ReduceAdd(f, g *mtbdd.Node) *mtbdd.Node {
	if fv.NoFuse {
		return fv.Reduce(fv.M.Add(f, g))
	}
	return fv.M.AddK(f, g, fv.K)
}

// ReduceSub returns Reduce(f - g).
func (fv *FailVars) ReduceSub(f, g *mtbdd.Node) *mtbdd.Node {
	if fv.NoFuse {
		return fv.Reduce(fv.M.Sub(f, g))
	}
	return fv.M.SubK(f, g, fv.K)
}

// ReduceMul returns Reduce(f * g).
func (fv *FailVars) ReduceMul(f, g *mtbdd.Node) *mtbdd.Node {
	if fv.NoFuse {
		return fv.Reduce(fv.M.Mul(f, g))
	}
	return fv.M.MulK(f, g, fv.K)
}

// ReduceDiv returns Reduce(f / g) with Div's zero-denominator convention.
func (fv *FailVars) ReduceDiv(f, g *mtbdd.Node) *mtbdd.Node {
	if fv.NoFuse {
		return fv.Reduce(fv.M.Div(f, g))
	}
	return fv.M.DivK(f, g, fv.K)
}

// ReduceMin returns Reduce(min(f, g)).
func (fv *FailVars) ReduceMin(f, g *mtbdd.Node) *mtbdd.Node {
	if fv.NoFuse {
		return fv.Reduce(fv.M.Min(f, g))
	}
	return fv.M.MinK(f, g, fv.K)
}

// ReduceAnd returns Reduce(f ∧ g) for {0,1} guards.
func (fv *FailVars) ReduceAnd(f, g *mtbdd.Node) *mtbdd.Node {
	if fv.NoFuse {
		return fv.Reduce(fv.M.And(f, g))
	}
	return fv.M.AndK(f, g, fv.K)
}

// ReduceOr returns Reduce(f ∨ g) for {0,1} guards.
func (fv *FailVars) ReduceOr(f, g *mtbdd.Node) *mtbdd.Node {
	if fv.NoFuse {
		return fv.Reduce(fv.M.Or(f, g))
	}
	return fv.M.OrK(f, g, fv.K)
}

// ReduceMulAdd returns Reduce(acc + w*f) as one fused ternary DFS — the
// weighted-accumulate of ECMP splitting, SR path weighting, and per-link
// load aggregation.
func (fv *FailVars) ReduceMulAdd(acc, w, f *mtbdd.Node) *mtbdd.Node {
	if fv.NoFuse {
		return fv.Reduce(fv.M.Add(acc, fv.M.Mul(w, f)))
	}
	return fv.M.MulAddK(acc, w, f, fv.K)
}

// ReduceSum returns Reduce(Σ fs) as a balanced tree of fused additions.
// Only sound where terminal values are exact (e.g. 0/1 selection-guard
// sums): float addition is not associative in general, and re-association
// would perturb byte-identity of reports on fractional accumulations.
// The NoFuse fallback is the exact legacy shape — a pairwise left fold
// followed by one KReduce — so the benchmark baseline reproduces the
// pre-kernel pipeline's node traffic, not just its results.
func (fv *FailVars) ReduceSum(fs []*mtbdd.Node) *mtbdd.Node {
	if fv.NoFuse {
		return fv.Reduce(fv.M.Sum(fs))
	}
	return fv.M.AddNK(fs, fv.K)
}

// Feasible reports whether guard g is satisfiable within the failure
// budget: after KReduce, a guard that is identically 0 can never hold in a
// scenario with at most K failures.
func (fv *FailVars) Feasible(g *mtbdd.Node) bool {
	if fv.K < 0 {
		return g != fv.M.Zero()
	}
	return fv.M.KReduce(g, fv.K) != fv.M.Zero()
}

// Scenario converts a set of failed elements into a variable assignment
// (true = alive) suitable for mtbdd.Eval. Unknown/unfailable elements are
// ignored.
func (fv *FailVars) Scenario(failedLinks []topo.LinkID, failedRouters []topo.RouterID) []bool {
	assign := make([]bool, fv.M.NumVars())
	for i := range assign {
		assign[i] = true
	}
	for _, l := range failedLinks {
		if v := fv.linkVar[l]; v >= 0 {
			assign[v] = false
		}
	}
	for _, r := range failedRouters {
		if v := fv.routerVar[r]; v >= 0 {
			assign[v] = false
		}
	}
	return assign
}
