package routesim

import (
	"net/netip"
	"testing"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/paperex"
	"github.com/yu-verify/yu/internal/topo"
)

func mustSpec(t testing.TB, load func() (*config.Spec, error)) *config.Spec {
	t.Helper()
	spec, err := load()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// motivating builds the Figure 1 fixture with the given k.
func motivating(t testing.TB, k int) (*config.Spec, *Result) {
	t.Helper()
	spec := mustSpec(t, paperex.MotivatingSpec)
	m := mtbdd.New()
	fv := NewFailVars(m, spec.Net, topo.FailLinks, k)
	res, err := Run(fv, spec.Configs)
	if err != nil {
		t.Fatal(err)
	}
	return spec, res
}

func mustRouter(t testing.TB, n *topo.Network, name string) *topo.Router {
	t.Helper()
	r, ok := n.RouterByName(name)
	if !ok {
		t.Fatalf("router %s missing", name)
	}
	return r
}

func evalGuard(fv *FailVars, g *mtbdd.Node, failed ...topo.LinkID) bool {
	return fv.M.Eval(g, fv.Scenario(failed, nil)) != 0
}

func linkID(t testing.TB, n *topo.Network, a, b string) topo.LinkID {
	t.Helper()
	l, ok := n.FindLink(a, b)
	if !ok {
		t.Fatalf("link %s-%s missing", a, b)
	}
	return l.ID
}

func TestFailVars(t *testing.T) {
	spec := mustSpec(t, paperex.MotivatingSpec)
	m := mtbdd.New()
	fv := NewFailVars(m, spec.Net, topo.FailBoth, 2)
	if fv.NumVars() != spec.Net.NumLinks()+spec.Net.NumRouters() {
		t.Fatalf("NumVars = %d", fv.NumVars())
	}
	ab := linkID(t, spec.Net, "A", "B")
	v := fv.LinkVar(ab)
	if v < 0 {
		t.Fatal("link var missing")
	}
	lid, _, isLink := fv.VarElement(v)
	if !isLink || lid != ab {
		t.Error("VarElement roundtrip failed")
	}
	a := mustRouter(t, spec.Net, "A")
	rv := fv.RouterVar(a.ID)
	if rv < 0 {
		t.Fatal("router var missing")
	}
	if _, rid, isLink := fv.VarElement(rv); isLink || rid != a.ID {
		t.Error("router VarElement roundtrip failed")
	}
	// Scenario: failing A-B must flip exactly that variable.
	assign := fv.Scenario([]topo.LinkID{ab}, []topo.RouterID{a.ID})
	if assign[v] || assign[rv] {
		t.Error("Scenario must mark failed elements")
	}
	// EdgeUp of the A-B edge must be false when the link fails.
	d, _ := spec.Net.FindDirLink("A", "B")
	up := fv.EdgeUp(spec.Net.Edge(d))
	if m.Eval(up, assign) != 0 {
		t.Error("EdgeUp must fail with the link down")
	}
	if m.Eval(up, fv.Scenario(nil, nil)) != 1 {
		t.Error("EdgeUp must hold with everything alive")
	}
}

func TestFailVarsLinkOnlyMode(t *testing.T) {
	spec := mustSpec(t, paperex.MotivatingSpec)
	fv := NewFailVars(mtbdd.New(), spec.Net, topo.FailLinks, 1)
	if fv.NumVars() != spec.Net.NumLinks() {
		t.Fatalf("NumVars = %d, want %d", fv.NumVars(), spec.Net.NumLinks())
	}
	a := mustRouter(t, spec.Net, "A")
	if fv.RouterVar(a.ID) != -1 {
		t.Error("router vars must not exist in links mode")
	}
	if fv.RouterUp(a.ID) != fv.M.One() {
		t.Error("unfailable router must be always up")
	}
}

func TestIGPMotivatingShortestPaths(t *testing.T) {
	spec, res := motivating(t, 2)
	net := spec.Net
	igp := res.IGP
	c := mustRouter(t, net, "C")
	d := mustRouter(t, net, "D")
	e := mustRouter(t, net, "E")
	f := mustRouter(t, net, "F")

	// D -> E: direct link, cost 10000, plus backup D-C-E at 20000.
	routes := igp.Routes(d.ID, e.ID)
	if len(routes) < 2 {
		t.Fatalf("D->E candidates = %d, want >= 2", len(routes))
	}
	if routes[0].Cost != 10000 {
		t.Errorf("best D->E cost = %d", routes[0].Cost)
	}
	de, _ := net.FindDirLink("D", "E")
	if routes[0].Out != de {
		t.Errorf("best D->E out = %s", net.DirLinkName(routes[0].Out))
	}

	// E -> F: two parallel links, both cost 10000 (ECMP).
	ef := igp.Routes(e.ID, f.ID)
	ecmp := 0
	for _, r := range ef {
		if r.Cost == 10000 {
			ecmp++
		}
	}
	if ecmp != 2 {
		t.Errorf("E->F equal-cost candidates = %d, want 2 (parallel links)", ecmp)
	}

	// C -> F best: via C-E (20000), not via D (30000).
	cf := igp.Routes(c.ID, f.ID)
	if len(cf) == 0 {
		t.Fatal("C->F missing")
	}
	ce, _ := net.FindDirLink("C", "E")
	if cf[0].Cost != 20000 || cf[0].Out != ce {
		t.Errorf("best C->F = cost %d via %s", cf[0].Cost, net.DirLinkName(cf[0].Out))
	}

	// No IGP routes across AS boundaries.
	a := mustRouter(t, net, "A")
	if igp.Routes(a.ID, f.ID) != nil {
		t.Error("IGP must not cross AS boundaries")
	}
	if igp.Reach(a.ID, f.ID) != res.Vars.M.Zero() {
		t.Error("cross-AS reach must be zero")
	}
}

func TestIGPReachUnderFailures(t *testing.T) {
	spec, res := motivating(t, 3)
	net, fv := spec.Net, res.Vars
	d := mustRouter(t, net, "D")
	e := mustRouter(t, net, "E")
	reach := res.IGP.Reach(d.ID, e.ID)

	dc := linkID(t, net, "C", "D") // note: link stored as C-D
	de := linkID(t, net, "D", "E")
	ce := linkID(t, net, "C", "E")

	if !evalGuard(fv, reach) {
		t.Error("D reaches E with no failures")
	}
	if !evalGuard(fv, reach, de) {
		t.Error("D must still reach E via C when D-E fails")
	}
	if evalGuard(fv, reach, de, dc) {
		t.Error("D must not reach E when both D-E and C-D fail")
	}
	if evalGuard(fv, reach, de, ce) {
		t.Error("D must not reach E when D-E and C-E fail")
	}
}

func TestBGPMotivatingRIBs(t *testing.T) {
	spec, res := motivating(t, 2)
	net, fv := spec.Net, res.Vars
	dst := netip.MustParsePrefix("100.0.0.0/24")

	// Router A (Figure 3): two candidates; preferred via C (AS path
	// [300]), backup via B (AS path [200,300]) guarded by x_{B-C} v x_{B-D}.
	a := mustRouter(t, net, "A")
	cands := res.BGP.RIBs[a.ID][dst]
	if len(cands) != 2 {
		t.Fatalf("A has %d candidates, want 2", len(cands))
	}
	best, backup := cands[0], cands[1]
	if len(best.ASPath) != 1 || best.ASPath[0] != 300 {
		t.Errorf("A best AS path = %v", best.ASPath)
	}
	if len(backup.ASPath) != 2 || backup.ASPath[0] != 200 || backup.ASPath[1] != 300 {
		t.Errorf("A backup AS path = %v", backup.ASPath)
	}
	if !best.Direct || best.NextHop != netip.MustParseAddr("1.3.0.2") {
		t.Errorf("A best next hop = %v direct=%v", best.NextHop, best.Direct)
	}
	ac := linkID(t, net, "A", "C")
	bc := linkID(t, net, "B", "C")
	bd := linkID(t, net, "B", "D")
	ab := linkID(t, net, "A", "B")
	if !evalGuard(fv, best.Guard) || evalGuard(fv, best.Guard, ac) {
		t.Error("best guard must be exactly 'A-C alive'")
	}
	// Backup guard: (B-C v B-D) ^ A-B (paper's m4 plus the session link).
	if !evalGuard(fv, backup.Guard) {
		t.Error("backup present with no failures")
	}
	if !evalGuard(fv, backup.Guard, bc) || !evalGuard(fv, backup.Guard, bd) {
		t.Error("backup must survive a single B-C or B-D failure")
	}
	if evalGuard(fv, backup.Guard, bc, bd) {
		t.Error("backup must vanish when both B-C and B-D fail")
	}
	if evalGuard(fv, backup.Guard, ab) {
		t.Error("backup must vanish when the A-B session link fails")
	}

	// Router B: two equally preferred candidates via C and via D (ECMP).
	b := mustRouter(t, net, "B")
	bCands := res.BGP.RIBs[b.ID][dst]
	ecmp := 0
	for _, cand := range bCands {
		if len(cand.ASPath) == 1 && cand.ASPath[0] == 300 {
			ecmp++
		}
	}
	if ecmp != 2 {
		t.Fatalf("B has %d AS-300 candidates, want 2 (ECMP over C and D)", ecmp)
	}
	if !bCands[0].SameRank(bCands[1]) {
		t.Error("B's two candidates must tie in preference")
	}

	// Router D (iBGP): next hop is F's loopback 10.0.0.6, indirect.
	d := mustRouter(t, net, "D")
	f := mustRouter(t, net, "F")
	dCands := res.BGP.RIBs[d.ID][dst]
	if len(dCands) == 0 {
		t.Fatal("D has no route")
	}
	if dCands[0].Direct || dCands[0].NextHop != f.Loopback || dCands[0].NextHopRouter != f.ID {
		t.Errorf("D candidate = %+v", dCands[0])
	}

	// Router F: delivers locally.
	fCands := res.BGP.RIBs[f.ID][dst]
	if len(fCands) == 0 || !fCands[0].Deliver {
		t.Error("F must have a local Deliver candidate")
	}
	if !res.BGP.Converged {
		t.Error("BGP must converge on the motivating example")
	}
}

func TestSRGuardsMotivating(t *testing.T) {
	spec, res := motivating(t, 3)
	net, fv := spec.Net, res.Vars
	d := mustRouter(t, net, "D")
	pols := res.SR[d.ID]
	if len(pols) != 1 {
		t.Fatalf("D SR policies = %d", len(pols))
	}
	pol := pols[0]
	if pol.MatchDSCP != 5 {
		t.Errorf("MatchDSCP = %d", pol.MatchDSCP)
	}
	if !pol.Matches(netip.MustParseAddr("10.0.0.6"), 5) || pol.Matches(netip.MustParseAddr("10.0.0.6"), 0) {
		t.Error("policy match broken")
	}
	if len(pol.Paths) != 2 {
		t.Fatalf("paths = %d", len(pol.Paths))
	}
	p1, p2 := pol.Paths[0], pol.Paths[1]
	if p1.Weight != 75 || p2.Weight != 25 {
		t.Errorf("weights = %d, %d", p1.Weight, p2.Weight)
	}

	de := linkID(t, net, "D", "E")
	cd := linkID(t, net, "C", "D")
	ce := linkID(t, net, "C", "E")
	ef1 := topo.LinkID(-1)
	var efLinks []topo.LinkID
	for i := range net.Links {
		l := net.Link(topo.LinkID(i))
		an, bn := net.Router(l.A).Name, net.Router(l.B).Name
		if (an == "E" && bn == "F") || (an == "F" && bn == "E") {
			efLinks = append(efLinks, l.ID)
		}
	}
	if len(efLinks) != 2 {
		t.Fatalf("parallel E-F links = %d", len(efLinks))
	}
	ef1 = efLinks[0]
	ef2 := efLinks[1]

	// p1 = [E,F]: guard = reach(D,E) ^ reach(E,F).
	if !evalGuard(fv, p1.Guard) {
		t.Error("p1 up with no failures")
	}
	if !evalGuard(fv, p1.Guard, de) {
		t.Error("p1 must survive D-E failure (reach via C)")
	}
	if evalGuard(fv, p1.Guard, ef1, ef2) {
		t.Error("p1 must break when both E-F links fail")
	}
	if evalGuard(fv, p1.Guard, de, cd, ce) {
		t.Error("p1 must break when D is cut from E")
	}
	// p2 = [C,F]: guard = reach(D,C) ^ reach(C,F).
	if !evalGuard(fv, p2.Guard) {
		t.Error("p2 up with no failures")
	}
	if evalGuard(fv, p2.Guard, ef1, ef2) {
		t.Error("p2 must break when both E-F links fail (C reaches F via E)")
	}
}

func TestStaticsAndRedistribution(t *testing.T) {
	spec := mustSpec(t, paperex.MisconfigSpec)
	m := mtbdd.New()
	fv := NewFailVars(m, spec.Net, topo.FailLinks, spec.K)
	res, err := Run(fv, spec.Configs)
	if err != nil {
		t.Fatal(err)
	}
	net := spec.Net
	d1 := mustRouter(t, net, "D1")
	m1 := mustRouter(t, net, "M1")

	// D1's discard static must be present unconditionally (links mode).
	sts := res.Statics[d1.ID]
	if len(sts) != 1 || !sts[0].Discard {
		t.Fatalf("D1 statics = %+v", sts)
	}
	if sts[0].Guard != m.One() {
		t.Errorf("discard static guard = %s", m.String(sts[0].Guard))
	}

	agg := netip.MustParsePrefix("10.0.0.0/8")
	svc := netip.MustParsePrefix("10.1.0.0/26")

	// M1 must have the aggregate from D1 but never the service prefix.
	if len(res.BGP.RIBs[m1.ID][agg]) == 0 {
		t.Error("M1 missing the 10/8 aggregate")
	}
	if len(res.BGP.RIBs[m1.ID][svc]) != 0 {
		t.Error("export-deny violated: M1 learned 10.1.0.0/26")
	}
	// D1 must have the service prefix via the WAN.
	if len(res.BGP.RIBs[d1.ID][svc]) == 0 {
		t.Error("D1 missing 10.1.0.0/26")
	}
}

func TestBGPLocalPref(t *testing.T) {
	// A prefers the longer AS path when local-pref says so.
	spec, err := config.ParseSpecString(`
router A as 1 loopback 10.0.0.1
router B as 2 loopback 10.0.0.2
router C as 3 loopback 10.0.0.3
router D as 4 loopback 10.0.0.4
link A B addr-a 1.0.0.1 addr-b 1.0.0.2
link A C addr-a 2.0.0.1 addr-b 2.0.0.2
link B D
link C D
auto-bgp-mesh
config D
  network 9.0.0.0/24
config A
  neighbor 1.0.0.2 remote-as 2 local-pref 200
`)
	if err != nil {
		t.Fatal(err)
	}
	fv := NewFailVars(mtbdd.New(), spec.Net, topo.FailLinks, 2)
	res, err := Run(fv, spec.Configs)
	if err != nil {
		t.Fatal(err)
	}
	a := mustRouter(t, spec.Net, "A")
	cands := res.BGP.RIBs[a.ID][netip.MustParsePrefix("9.0.0.0/24")]
	if len(cands) != 2 {
		t.Fatalf("A candidates = %d", len(cands))
	}
	if cands[0].LocalPref != 200 {
		t.Errorf("best local-pref = %d, want 200 (policy wins over path length)", cands[0].LocalPref)
	}
}

func TestKReduceAblationStillSound(t *testing.T) {
	// K < 0 disables reduction; guards must still evaluate identically on
	// small-failure scenarios.
	spec := mustSpec(t, paperex.MotivatingSpec)
	fvOn := NewFailVars(mtbdd.New(), spec.Net, topo.FailLinks, 2)
	resOn, err := Run(fvOn, spec.Configs)
	if err != nil {
		t.Fatal(err)
	}
	fvOff := NewFailVars(mtbdd.New(), spec.Net, topo.FailLinks, -1)
	resOff, err := Run(fvOff, spec.Configs)
	if err != nil {
		t.Fatal(err)
	}
	dst := netip.MustParsePrefix("100.0.0.0/24")
	for ri := 0; ri < spec.Net.NumRouters(); ri++ {
		on := resOn.BGP.RIBs[ri][dst]
		off := resOff.BGP.RIBs[ri][dst]
		// Compare per-scenario best-route presence for single failures.
		for li := 0; li < spec.Net.NumLinks(); li++ {
			failed := []topo.LinkID{topo.LinkID(li)}
			anyOn := false
			for _, c := range on {
				if evalGuard(fvOn, c.Guard, failed...) {
					anyOn = true
				}
			}
			anyOff := false
			for _, c := range off {
				if evalGuard(fvOff, c.Guard, failed...) {
					anyOff = true
				}
			}
			if anyOn != anyOff {
				t.Fatalf("router %d link %d: reduced/unreduced presence differ", ri, li)
			}
		}
	}
}

func TestNoFailCost(t *testing.T) {
	spec, res := motivating(t, 2)
	net := spec.Net
	d := mustRouter(t, net, "D")
	e := mustRouter(t, net, "E")
	f := mustRouter(t, net, "F")
	a := mustRouter(t, net, "A")
	if c, ok := res.IGP.NoFailCost(d.ID, e.ID); !ok || c != 10000 {
		t.Errorf("NoFailCost(D,E) = %d,%v want 10000,true", c, ok)
	}
	if c, ok := res.IGP.NoFailCost(d.ID, f.ID); !ok || c != 20000 {
		t.Errorf("NoFailCost(D,F) = %d,%v want 20000,true", c, ok)
	}
	if c, ok := res.IGP.NoFailCost(d.ID, d.ID); !ok || c != 0 {
		t.Errorf("NoFailCost(D,D) = %d,%v want 0,true", c, ok)
	}
	if _, ok := res.IGP.NoFailCost(a.ID, f.ID); ok {
		t.Error("cross-AS NoFailCost must be false")
	}
}

func TestBGPConvergenceFlag(t *testing.T) {
	_, res := motivating(t, 1)
	if !res.BGP.Converged || res.BGP.Rounds == 0 {
		t.Errorf("BGP: converged=%v rounds=%d", res.BGP.Converged, res.BGP.Rounds)
	}
}

func TestIGPGuardNodes(t *testing.T) {
	_, res := motivating(t, 1)
	nodes := res.IGP.GuardNodes()
	if len(nodes) == 0 {
		t.Fatal("GuardNodes empty")
	}
	for _, n := range nodes {
		if n == nil {
			t.Fatal("nil guard node")
		}
	}
}
