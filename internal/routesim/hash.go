// Content fingerprints of the route-simulation outputs, for incremental
// re-verification (internal/serve). Symbolic traffic execution of one
// flow class reads exactly:
//
//   - the guarded BGP RIB candidates of the class's matched prefixes, on
//     every router (forward.go ruleGroups),
//   - the guarded statics whose prefix is one of the matched prefixes,
//   - the full guarded IGP state (route-iteration vectors toward any
//     next-hop router), and
//   - every SR policy (policies are matched against the *resolved* next
//     hop at execution time, so no per-class subset is safe to exclude).
//
// The hashes below cover those surfaces field by field, including the
// structural hash of every MTBDD guard, in deterministic order. Two runs
// in which a class's per-prefix hash and the global IGP/SR hashes agree
// execute that class to byte-identical STFs.
package routesim

import (
	"net/netip"
	"sort"

	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/topo"
)

// fp accumulates an FNV-1a–style 64-bit fingerprint over typed fields.
type fp uint64

const (
	fpOffset fp = 14695981039346656037
	fpPrime  fp = 1099511628211
)

func (h *fp) u64(x uint64) {
	for i := 0; i < 8; i++ {
		*h = (*h ^ fp(x&0xff)) * fpPrime
		x >>= 8
	}
}

func (h *fp) b(x bool) {
	if x {
		h.u64(1)
	} else {
		h.u64(2)
	}
}

func (h *fp) str(s string) {
	h.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		*h = (*h ^ fp(s[i])) * fpPrime
	}
}

func (h *fp) addr(a netip.Addr) {
	b, _ := a.MarshalBinary()
	h.u64(uint64(len(b)))
	for _, x := range b {
		*h = (*h ^ fp(x)) * fpPrime
	}
}

func (h *fp) prefix(p netip.Prefix) {
	h.addr(p.Addr())
	h.u64(uint64(int64(p.Bits())))
}

// HashIGP fingerprints the complete guarded IGP state: every router's
// cost-sorted candidates toward every destination, and the reachability
// guards. h memoizes guard hashes across calls.
func (r *Result) HashIGP(h *mtbdd.Hasher) uint64 {
	acc := fpOffset
	g := r.IGP
	for ri := range g.routes {
		acc.u64(uint64(int64(ri)))
		dests := make([]topo.RouterID, 0, len(g.routes[ri]))
		for d := range g.routes[ri] {
			dests = append(dests, d)
		}
		sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
		for _, d := range dests {
			acc.u64(uint64(int64(d)))
			for _, rt := range g.routes[ri][d] {
				acc.u64(uint64(int64(rt.Out)))
				acc.u64(uint64(rt.Cost))
				acc.u64(h.Hash(rt.Guard))
			}
		}
		reaches := make([]topo.RouterID, 0, len(g.reach[ri]))
		for d := range g.reach[ri] {
			reaches = append(reaches, d)
		}
		sort.Slice(reaches, func(i, j int) bool { return reaches[i] < reaches[j] })
		for _, d := range reaches {
			acc.u64(uint64(int64(d)))
			acc.u64(h.Hash(g.reach[ri][d]))
		}
	}
	return uint64(acc)
}

// HashSR fingerprints every router's guarded SR policies (policy order,
// endpoints, DSCP matches, and each weighted path with its guard).
func (r *Result) HashSR(h *mtbdd.Hasher) uint64 {
	acc := fpOffset
	for ri, pols := range r.SR {
		acc.u64(uint64(int64(ri)))
		for _, p := range pols {
			acc.prefix(p.Endpoint)
			acc.u64(uint64(int64(p.MatchDSCP)))
			for _, path := range p.Paths {
				acc.u64(uint64(len(path.Segments)))
				for _, seg := range path.Segments {
					acc.u64(uint64(int64(seg)))
				}
				acc.u64(uint64(path.Weight))
				acc.u64(h.Hash(path.Guard))
			}
		}
	}
	return uint64(acc)
}

// HashPrefix fingerprints everything router r's forwarding of pfx reads:
// the guarded statics with exactly that prefix (ruleGroups matches
// statics by prefix equality) and the BGP RIB candidates for it, in
// preference order with every decision-process attribute.
func (rs *Result) HashPrefix(r topo.RouterID, pfx netip.Prefix, h *mtbdd.Hasher) uint64 {
	acc := fpOffset
	for _, st := range rs.Statics[r] {
		if st.Prefix != pfx {
			continue
		}
		acc.b(st.Discard)
		acc.u64(uint64(int64(st.Out)))
		acc.b(st.Indirect)
		acc.u64(uint64(int64(st.ViaRouter)))
		acc.u64(h.Hash(st.Guard))
	}
	for _, c := range rs.BGP.RIBs[r][pfx] {
		acc.addr(c.NextHop)
		acc.b(c.Direct)
		acc.u64(uint64(int64(c.OutEdge)))
		acc.u64(uint64(int64(c.NextHopRouter)))
		acc.b(c.Deliver)
		acc.b(c.Discard)
		acc.b(c.AdvertiseOnly)
		acc.u64(uint64(len(c.ASPath)))
		for _, as := range c.ASPath {
			acc.u64(uint64(as))
		}
		acc.u64(uint64(c.LocalPref))
		acc.b(c.FromEBGP)
		acc.u64(uint64(c.IGPCost))
		acc.u64(h.Hash(c.Guard))
	}
	return uint64(acc)
}
