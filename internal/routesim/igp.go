package routesim

import (
	"sort"

	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/topo"
)

// IGPRoute is one guarded IGP (IS-IS) candidate at some router for a
// destination router's loopback: traffic takes the directed link Out, the
// total path cost is Cost, and the route is present exactly when Guard
// holds. A guarded IS-IS RIB is the cost-sorted list of candidates; under
// failures, less preferred (higher-cost) candidates become selected when
// all cheaper ones are absent (paper §4.4, route selection encoding).
type IGPRoute struct {
	Out   topo.DirLinkID
	Cost  int64
	Guard *mtbdd.Node
}

// IGP holds the symbolic IS-IS state of every router: guarded RIBs toward
// every same-AS loopback, and the reachability guards reach_{A,B} used for
// iBGP session liveness and SR path guards (paper §4.1, Figure 4).
type IGP struct {
	fv     *FailVars
	routes []map[topo.RouterID][]IGPRoute
	reach  []map[topo.RouterID]*mtbdd.Node
}

// Routes returns the guarded candidates at router r toward dest's
// loopback, sorted by increasing cost. Nil if dest is in another AS or
// unreachable.
func (g *IGP) Routes(r, dest topo.RouterID) []IGPRoute {
	return g.routes[r][dest]
}

// Reach returns the guard "router a can reach router b over the IGP"
// (reach_{a,b}). Zero guard if b is in another AS or disconnected.
func (g *IGP) Reach(a, b topo.RouterID) *mtbdd.Node {
	if r, ok := g.reach[a][b]; ok {
		return r
	}
	return g.fv.M.Zero()
}

// NoFailCost returns r's IGP cost to dest in the no-failure scenario, or
// ok=false if dest is not IGP-reachable with everything alive. It is the
// static metric behind the BGP decision process's hot-potato tiebreak
// (preference is static in a guarded RIB; guards only gate presence).
func (g *IGP) NoFailCost(r, dest topo.RouterID) (int64, bool) {
	if r == dest {
		return 0, true
	}
	for _, rt := range g.routes[r][dest] {
		// Candidates are cost-sorted; the first whose guard holds with
		// everything alive is the no-failure best.
		if g.fv.M.EvalAllAlive(rt.Guard) != 0 {
			return rt.Cost, true
		}
	}
	return 0, false
}

// GuardNodes returns every MTBDD node held by the IGP state (route guards
// and reachability guards) — the root set a managed garbage collection
// must preserve.
func (g *IGP) GuardNodes() []*mtbdd.Node {
	var out []*mtbdd.Node
	for r := range g.routes {
		for _, routes := range g.routes[r] {
			for _, rt := range routes {
				out = append(out, rt.Guard)
			}
		}
		for _, reach := range g.reach[r] {
			out = append(out, reach)
		}
	}
	return out
}

// ComputeIGP runs symbolic IS-IS route simulation in every AS: a guarded
// Bellman-Ford fixed point that propagates (cost, guard) path-existence
// sets, then derives per-first-hop candidates. Walk-shaped entries are
// eliminated by selection-feasibility pruning: a cost level whose guard is
// covered (within the k budget) by cheaper levels can never be selected.
func ComputeIGP(fv *FailVars) *IGP {
	net := fv.Net
	g := &IGP{
		fv:     fv,
		routes: make([]map[topo.RouterID][]IGPRoute, net.NumRouters()),
		reach:  make([]map[topo.RouterID]*mtbdd.Node, net.NumRouters()),
	}
	for i := range g.routes {
		g.routes[i] = make(map[topo.RouterID][]IGPRoute)
		g.reach[i] = make(map[topo.RouterID]*mtbdd.Node)
	}
	for _, as := range net.ASes() {
		members := net.RoutersInAS(as)
		inAS := make(map[topo.RouterID]bool, len(members))
		for _, r := range members {
			inAS[r] = true
		}
		for _, dest := range members {
			g.computeDest(members, inAS, dest)
		}
	}
	return g
}

// costGuards is a path-existence set: cost -> guard that a live path of
// that cost exists.
type costGuards map[int64]*mtbdd.Node

func (g *IGP) computeDest(members []topo.RouterID, inAS map[topo.RouterID]bool, dest topo.RouterID) {
	m, fv, net := g.fv.M, g.fv, g.fv.Net
	pe := make(map[topo.RouterID]costGuards, len(members))
	pe[dest] = costGuards{0: m.One()}

	// Synchronous fixed point, at most |AS| rounds (longest simple path).
	for round := 0; round < len(members); round++ {
		next := make(map[topo.RouterID]costGuards, len(members))
		next[dest] = costGuards{0: m.One()}
		changed := false
		for _, r := range members {
			if r == dest {
				continue
			}
			acc := make(costGuards)
			for _, e := range net.Out(r) {
				if !inAS[e.To] {
					continue
				}
				nbr := pe[e.To]
				if nbr == nil {
					continue
				}
				up := fv.EdgeUp(e)
				for c, guard := range nbr {
					total := c + e.Cost
					add := fv.ReduceAnd(up, guard)
					if add == m.Zero() {
						continue
					}
					if prev, ok := acc[total]; ok {
						acc[total] = fv.ReduceOr(prev, add)
					} else {
						acc[total] = add
					}
				}
			}
			pruned := pruneDominated(fv, acc)
			if len(pruned) > 0 {
				next[r] = pruned
			}
			if !changed && !sameCostGuards(pe[r], pruned) {
				changed = true
			}
		}
		pe = next
		if !changed {
			break
		}
	}

	// Reachability: disjunction over all path-existence guards.
	for _, r := range members {
		if r == dest {
			g.reach[r][dest] = fv.RouterUp(dest)
			continue
		}
		acc := m.Zero()
		for _, guard := range pe[r] {
			// Or is exact and commutative, so the map's iteration order
			// cannot perturb the canonical result; fusing per step keeps
			// every intermediate already reduced.
			acc = fv.ReduceOr(acc, guard)
		}
		if acc != m.Zero() {
			g.reach[r][dest] = acc
		}
	}

	// First-hop candidates: r reaches dest via edge e at cost w(e)+c
	// whenever e is usable and a path of cost c exists from e.To.
	for _, r := range members {
		if r == dest {
			continue
		}
		var cands []IGPRoute
		for _, e := range net.Out(r) {
			if !inAS[e.To] {
				continue
			}
			var nbr costGuards
			if e.To == dest {
				nbr = costGuards{0: m.One()}
			} else {
				nbr = pe[e.To]
			}
			up := fv.EdgeUp(e)
			for c, guard := range nbr {
				gg := fv.ReduceAnd(up, guard)
				if gg == m.Zero() {
					continue
				}
				cands = append(cands, IGPRoute{Out: e.DirLink, Cost: e.Cost + c, Guard: gg})
			}
		}
		cands = pruneCandidates(fv, cands)
		if len(cands) > 0 {
			g.routes[r][dest] = cands
		}
	}
}

// pruneDominated keeps only cost levels that can actually be the best
// present level in some scenario within the failure budget.
func pruneDominated(fv *FailVars, cg costGuards) costGuards {
	if len(cg) == 0 {
		return nil
	}
	m := fv.M
	costs := make([]int64, 0, len(cg))
	for c := range cg {
		costs = append(costs, c)
	}
	sort.Slice(costs, func(i, j int) bool { return costs[i] < costs[j] })
	out := make(costGuards, len(cg))
	cheaper := m.Zero()
	for _, c := range costs {
		guard := cg[c]
		selectable := m.And(guard, m.Not(cheaper))
		if fv.Feasible(selectable) {
			out[c] = guard
			cheaper = fv.ReduceOr(cheaper, guard)
		}
	}
	return out
}

// pruneCandidates drops candidates that can never be selected within the
// budget (their guard is covered by strictly cheaper candidates), and
// returns the rest sorted by cost then directed link.
func pruneCandidates(fv *FailVars, cands []IGPRoute) []IGPRoute {
	if len(cands) == 0 {
		return nil
	}
	m := fv.M
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Cost != cands[j].Cost {
			return cands[i].Cost < cands[j].Cost
		}
		return cands[i].Out < cands[j].Out
	})
	out := cands[:0]
	cheaper := m.Zero() // disjunction of guards at strictly lower cost
	i := 0
	for i < len(cands) {
		j := i
		levelOr := m.Zero()
		for j < len(cands) && cands[j].Cost == cands[i].Cost {
			cand := cands[j]
			if fv.Feasible(m.And(cand.Guard, m.Not(cheaper))) {
				out = append(out, cand)
				levelOr = m.Or(levelOr, cand.Guard)
			}
			j++
		}
		cheaper = fv.ReduceOr(cheaper, levelOr)
		i = j
	}
	return out
}

func sameCostGuards(a, b costGuards) bool {
	if len(a) != len(b) {
		return false
	}
	for c, g := range a {
		if b[c] != g {
			return false
		}
	}
	return true
}
