package routesim

import (
	"fmt"

	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/topo"
)

// ImportInto clones the route simulation result into the manager behind
// dst, translating every guard MTBDD with mtbdd.Import. It is how the
// parallel verification pipeline hands each worker a private copy of the
// guarded RIBs without re-running route simulation: dst must be a FailVars
// over the same network, mode, and budget, created with NewFailVars on a
// fresh manager — that construction is deterministic, so dst's variable
// order matches the source and the imported guards are structurally
// identical.
//
// The clone shares no MTBDD state with the source: all further operations
// on it (symbolic traffic execution, managed GC) touch only dst.M.
func (r *Result) ImportInto(dst *FailVars) *Result {
	r.checkImportDst(dst)
	return r.importWith(dst, func(n *mtbdd.Node) *mtbdd.Node { return dst.M.Import(n) })
}

func (r *Result) checkImportDst(dst *FailVars) {
	src := r.Vars
	if dst.Net != src.Net || dst.Mode != src.Mode || dst.K != src.K {
		panic("routesim: ImportInto requires a FailVars over the same network, mode, and budget")
	}
	if dst.M.NumVars() != src.M.NumVars() {
		panic(fmt.Sprintf("routesim: ImportInto variable count mismatch: %d vs %d", dst.M.NumVars(), src.M.NumVars()))
	}
}

// importWith clones the result structure translating every guard through
// imp — the shared traversal behind ImportInto and ImportBase.ImportInto.
func (r *Result) importWith(dst *FailVars, imp func(*mtbdd.Node) *mtbdd.Node) *Result {
	out := &Result{
		Vars:    dst,
		IGP:     r.IGP.importInto(dst, imp),
		BGP:     r.BGP.importInto(dst, imp),
		SR:      make([][]GuardedSRPolicy, len(r.SR)),
		Statics: make([][]GuardedStatic, len(r.Statics)),
	}
	for i, pols := range r.SR {
		if pols == nil {
			continue
		}
		cp := make([]GuardedSRPolicy, len(pols))
		for j, p := range pols {
			cp[j] = GuardedSRPolicy{Endpoint: p.Endpoint, MatchDSCP: p.MatchDSCP}
			cp[j].Paths = make([]GuardedSRPath, len(p.Paths))
			for k, path := range p.Paths {
				cp[j].Paths[k] = GuardedSRPath{
					Segments: path.Segments,
					Weight:   path.Weight,
					Guard:    imp(path.Guard),
				}
			}
		}
		out.SR[i] = cp
	}
	for i, sts := range r.Statics {
		if sts == nil {
			continue
		}
		cp := make([]GuardedStatic, len(sts))
		for j, st := range sts {
			cp[j] = st
			cp[j].Guard = imp(st.Guard)
		}
		out.Statics[i] = cp
	}
	return out
}

// ImportBase is a shared read-only snapshot of every guard MTBDD in a
// route-simulation result — the copy-on-write base of the parallel
// pipeline. Build it once with NewImportBase, then let each shard manager
// clone the result from it with ImportBase.ImportInto: the source DAG is
// walked and deduplicated once, and each shard only pays a linear replay
// into its own arena (see mtbdd.Snapshot). The base holds no mutable
// state, so any number of shards can import from it concurrently.
type ImportBase struct {
	src  *Result
	snap *mtbdd.Snapshot
}

// NewImportBase flattens all guards of the result into a shared snapshot.
func (r *Result) NewImportBase() *ImportBase {
	var roots []*mtbdd.Node
	r.eachGuard(func(n *mtbdd.Node) { roots = append(roots, n) })
	return &ImportBase{src: r, snap: mtbdd.NewSnapshot(roots)}
}

// NumNodes returns the number of distinct MTBDD nodes in the shared base.
func (b *ImportBase) NumNodes() int { return b.snap.Len() }

// ImportInto clones the underlying result into dst like Result.ImportInto,
// but resolves guards through the shared snapshot: one linear replay per
// shard instead of a full memoized re-walk of the source graphs. Safe to
// call concurrently from multiple shards (each dst owns its manager; the
// base is read-only).
func (b *ImportBase) ImportInto(dst *FailVars) *Result {
	b.src.checkImportDst(dst)
	table := dst.M.ImportSnapshot(b.snap)
	return b.src.importWith(dst, func(n *mtbdd.Node) *mtbdd.Node {
		if i, ok := b.snap.Index(n); ok {
			return table[i]
		}
		// Guard created after the base was built — fall back to a direct
		// cross-manager import rather than failing.
		return dst.M.Import(n)
	})
}

// eachGuard invokes fn on every guard node of the result, in unspecified
// order (hash-consing makes replayed graphs canonical regardless of the
// order they are encoded in).
func (r *Result) eachGuard(fn func(*mtbdd.Node)) {
	for ri := range r.IGP.routes {
		for _, routes := range r.IGP.routes[ri] {
			for i := range routes {
				fn(routes[i].Guard)
			}
		}
		for _, guard := range r.IGP.reach[ri] {
			fn(guard)
		}
	}
	for _, rib := range r.BGP.RIBs {
		for _, cands := range rib {
			for _, c := range cands {
				fn(c.Guard)
			}
		}
	}
	for _, pols := range r.SR {
		for i := range pols {
			for j := range pols[i].Paths {
				fn(pols[i].Paths[j].Guard)
			}
		}
	}
	for _, sts := range r.Statics {
		for i := range sts {
			fn(sts[i].Guard)
		}
	}
}

func (g *IGP) importInto(dst *FailVars, imp func(*mtbdd.Node) *mtbdd.Node) *IGP {
	out := &IGP{
		fv:     dst,
		routes: make([]map[topo.RouterID][]IGPRoute, len(g.routes)),
		reach:  make([]map[topo.RouterID]*mtbdd.Node, len(g.reach)),
	}
	for r := range g.routes {
		out.routes[r] = make(map[topo.RouterID][]IGPRoute, len(g.routes[r]))
		for dest, routes := range g.routes[r] {
			cp := make([]IGPRoute, len(routes))
			for i, rt := range routes {
				cp[i] = IGPRoute{Out: rt.Out, Cost: rt.Cost, Guard: imp(rt.Guard)}
			}
			out.routes[r][dest] = cp
		}
		out.reach[r] = make(map[topo.RouterID]*mtbdd.Node, len(g.reach[r]))
		for dest, guard := range g.reach[r] {
			out.reach[r][dest] = imp(guard)
		}
	}
	return out
}

func (b *BGP) importInto(dst *FailVars, imp func(*mtbdd.Node) *mtbdd.Node) *BGP {
	out := &BGP{fv: dst, Converged: b.Converged, Rounds: b.Rounds, RIBs: make([]BGPRIB, len(b.RIBs))}
	for r, rib := range b.RIBs {
		if rib == nil {
			continue
		}
		cp := make(BGPRIB, len(rib))
		for pfx, cands := range rib {
			cc := make([]*BGPCand, len(cands))
			for i, c := range cands {
				dup := *c
				dup.Guard = imp(c.Guard)
				cc[i] = &dup
			}
			cp[pfx] = cc
		}
		out.RIBs[r] = cp
	}
	return out
}
