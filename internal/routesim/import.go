package routesim

import (
	"fmt"

	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/topo"
)

// ImportInto clones the route simulation result into the manager behind
// dst, translating every guard MTBDD with mtbdd.Import. It is how the
// parallel verification pipeline hands each worker a private copy of the
// guarded RIBs without re-running route simulation: dst must be a FailVars
// over the same network, mode, and budget, created with NewFailVars on a
// fresh manager — that construction is deterministic, so dst's variable
// order matches the source and the imported guards are structurally
// identical.
//
// The clone shares no MTBDD state with the source: all further operations
// on it (symbolic traffic execution, managed GC) touch only dst.M.
func (r *Result) ImportInto(dst *FailVars) *Result {
	src := r.Vars
	if dst.Net != src.Net || dst.Mode != src.Mode || dst.K != src.K {
		panic("routesim: ImportInto requires a FailVars over the same network, mode, and budget")
	}
	if dst.M.NumVars() != src.M.NumVars() {
		panic(fmt.Sprintf("routesim: ImportInto variable count mismatch: %d vs %d", dst.M.NumVars(), src.M.NumVars()))
	}
	imp := func(n *mtbdd.Node) *mtbdd.Node { return dst.M.Import(n) }

	out := &Result{
		Vars:    dst,
		IGP:     r.IGP.importInto(dst, imp),
		BGP:     r.BGP.importInto(dst, imp),
		SR:      make([][]GuardedSRPolicy, len(r.SR)),
		Statics: make([][]GuardedStatic, len(r.Statics)),
	}
	for i, pols := range r.SR {
		if pols == nil {
			continue
		}
		cp := make([]GuardedSRPolicy, len(pols))
		for j, p := range pols {
			cp[j] = GuardedSRPolicy{Endpoint: p.Endpoint, MatchDSCP: p.MatchDSCP}
			cp[j].Paths = make([]GuardedSRPath, len(p.Paths))
			for k, path := range p.Paths {
				cp[j].Paths[k] = GuardedSRPath{
					Segments: path.Segments,
					Weight:   path.Weight,
					Guard:    imp(path.Guard),
				}
			}
		}
		out.SR[i] = cp
	}
	for i, sts := range r.Statics {
		if sts == nil {
			continue
		}
		cp := make([]GuardedStatic, len(sts))
		for j, st := range sts {
			cp[j] = st
			cp[j].Guard = imp(st.Guard)
		}
		out.Statics[i] = cp
	}
	return out
}

func (g *IGP) importInto(dst *FailVars, imp func(*mtbdd.Node) *mtbdd.Node) *IGP {
	out := &IGP{
		fv:     dst,
		routes: make([]map[topo.RouterID][]IGPRoute, len(g.routes)),
		reach:  make([]map[topo.RouterID]*mtbdd.Node, len(g.reach)),
	}
	for r := range g.routes {
		out.routes[r] = make(map[topo.RouterID][]IGPRoute, len(g.routes[r]))
		for dest, routes := range g.routes[r] {
			cp := make([]IGPRoute, len(routes))
			for i, rt := range routes {
				cp[i] = IGPRoute{Out: rt.Out, Cost: rt.Cost, Guard: imp(rt.Guard)}
			}
			out.routes[r][dest] = cp
		}
		out.reach[r] = make(map[topo.RouterID]*mtbdd.Node, len(g.reach[r]))
		for dest, guard := range g.reach[r] {
			out.reach[r][dest] = imp(guard)
		}
	}
	return out
}

func (b *BGP) importInto(dst *FailVars, imp func(*mtbdd.Node) *mtbdd.Node) *BGP {
	out := &BGP{fv: dst, Converged: b.Converged, Rounds: b.Rounds, RIBs: make([]BGPRIB, len(b.RIBs))}
	for r, rib := range b.RIBs {
		if rib == nil {
			continue
		}
		cp := make(BGPRIB, len(rib))
		for pfx, cands := range rib {
			cc := make([]*BGPCand, len(cands))
			for i, c := range cands {
				dup := *c
				dup.Guard = imp(c.Guard)
				cc[i] = &dup
			}
			cp[pfx] = cc
		}
		out.RIBs[r] = cp
	}
	return out
}
