package routesim

import (
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/topo"
)

// BGPCand is one guarded BGP route candidate in a router's guarded RIB.
// Candidates are ordered by the (static) BGP decision process — the guard
// only gates presence, never preference, exactly as in the paper's guarded
// RIB semantics (§4.1).
type BGPCand struct {
	Prefix netip.Prefix
	// NextHop is the route's next hop: an interface address for direct
	// (eBGP-learned) routes, a loopback for indirect (iBGP) routes.
	NextHop netip.Addr
	// Direct is true when NextHop is a directly connected interface, in
	// which case OutEdge is the directed link to use. Indirect next hops
	// go through route iteration (IGP or SR policy, §4.4).
	Direct  bool
	OutEdge topo.DirLinkID
	// NextHopRouter is the owner of a loopback NextHop (indirect routes).
	NextHopRouter topo.RouterID
	// Deliver marks a locally originated network: matching traffic
	// terminates at this router (the destination is attached).
	Deliver bool
	// Discard marks a redistributed discard static: matching traffic
	// arriving here is dropped.
	Discard bool
	// AdvertiseOnly marks a local candidate that exists for export but
	// is not installed for forwarding (redistributed statics: the static
	// itself already forwards locally at a better admin distance).
	AdvertiseOnly bool
	ASPath        []uint32
	LocalPref     uint32
	FromEBGP      bool
	// IGPCost is the static (no-failure) IGP metric from this router to
	// the route's next hop — the hot-potato tiebreak of the decision
	// process. Direct and local routes have cost 0.
	IGPCost int64
	Guard   *mtbdd.Node
}

// better reports whether a is strictly preferred to b under the static BGP
// decision process: local preference, locally-originated, AS-path length,
// eBGP over iBGP. Remaining ties mean ECMP multipath (the paper's B
// load-balancing over C and D).
func (a *BGPCand) better(b *BGPCand) bool {
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	aLocal, bLocal := a.Deliver || a.Discard || a.AdvertiseOnly, b.Deliver || b.Discard || b.AdvertiseOnly
	if aLocal != bLocal {
		return aLocal
	}
	if len(a.ASPath) != len(b.ASPath) {
		return len(a.ASPath) < len(b.ASPath)
	}
	if a.FromEBGP != b.FromEBGP {
		return a.FromEBGP
	}
	if a.IGPCost != b.IGPCost {
		return a.IGPCost < b.IGPCost
	}
	return false
}

// SameRank reports that a and b tie in the decision process: both belong
// to the same ECMP multipath set when simultaneously present.
func (a *BGPCand) SameRank(b *BGPCand) bool {
	return !a.better(b) && !b.better(a)
}

type candKey struct {
	nexthop       netip.Addr
	direct        bool
	outEdge       topo.DirLinkID
	deliver       bool
	discard       bool
	advertiseOnly bool
	aspath        string
	localPref     uint32
	fromEBGP      bool
	igpCost       int64
}

func keyOf(c *BGPCand) candKey {
	var sb strings.Builder
	for _, as := range c.ASPath {
		sb.WriteString(strconv.FormatUint(uint64(as), 10))
		sb.WriteByte(',')
	}
	return candKey{
		nexthop: c.NextHop, direct: c.Direct, outEdge: c.OutEdge,
		deliver: c.Deliver, discard: c.Discard, advertiseOnly: c.AdvertiseOnly,
		aspath: sb.String(), localPref: c.LocalPref, fromEBGP: c.FromEBGP,
		igpCost: c.IGPCost,
	}
}

// BGPRIB is one router's guarded BGP RIB: candidates per prefix, sorted by
// preference (most preferred first).
type BGPRIB map[netip.Prefix][]*BGPCand

// BGP holds the converged symbolic BGP state of all routers.
type BGP struct {
	fv   *FailVars
	RIBs []BGPRIB // indexed by RouterID
	// Converged reports whether the fixed point was reached within the
	// round budget.
	Converged bool
	Rounds    int
}

type session struct {
	from, to topo.RouterID
	ebgp     bool
	// edge is the directed link from -> to for eBGP sessions.
	edge topo.DirEdge
	// importPref is the local-pref the receiver assigns (eBGP import).
	importPref uint32
	exportDeny []netip.Prefix
}

// ComputeBGP runs symbolic BGP route propagation to a fixed point:
// synchronous rounds in which every router recomputes its guarded RIB from
// its local originations and the guarded advertisements of its neighbors'
// previous-round RIBs. Advertisements carry the sender's *selection* guard
// (paper Fig 6: m4's guard is the disjunction of equally preferred m2, m3).
func ComputeBGP(fv *FailVars, cfgs config.Configs, igp *IGP) *BGP {
	st := NewStepper(fv, cfgs, igp, nil)
	maxRounds := 2*fv.Net.Diameter() + 8
	rounds := 0
	converged := false
	for round := 1; ; round++ {
		stable := st.Round()
		rounds = round
		if stable {
			converged = true
			break
		}
		if round >= maxRounds {
			break
		}
	}
	return st.Finish(rounds, converged)
}

// Stepper exposes BGP propagation one synchronous round at a time, so a
// compositional coordinator (internal/compose) can run several domains'
// steppers in lockstep, exchanging border advertisement templates between
// rounds. ComputeBGP is itself implemented on the Stepper, so the
// monolithic path and the per-domain path execute the identical per-round
// sequence — the foundation of the modular-equals-monolithic guarantee.
type Stepper struct {
	b        *BGP
	igp      *IGP
	sessions []session
	seeds    []BGPRIB
	ribs     []BGPRIB
	// member is nil for a monolithic run (every router counts toward
	// stability). In a domain run it flags the domain's own routers:
	// border stubs neither count toward stability nor build their own
	// advertisement templates — their templates are injected.
	member    []bool
	tpls      []map[netip.Prefix][]advTemplate
	tplsValid bool
	stubTpls  []map[netip.Prefix][]advTemplate
}

// NewStepper builds the session graph and seed RIBs for net under cfgs.
// Sessions are directional: one entry per (advertiser -> receiver).
// Configs are walked in sorted-name order: session order decides the
// insertion order of equally preferred RIB candidates, and float
// accumulation downstream (ECMP splits summed per rank group) is not
// associative — map-iteration order would make verification results
// vary across processes. Configs naming routers absent from fv.Net are
// skipped, which is what lets a domain run receive the full global
// config set.
func NewStepper(fv *FailVars, cfgs config.Configs, igp *IGP, member []bool) *Stepper {
	net := fv.Net
	b := &BGP{fv: fv, RIBs: make([]BGPRIB, net.NumRouters())}
	st := &Stepper{
		b:        b,
		igp:      igp,
		member:   member,
		seeds:    make([]BGPRIB, net.NumRouters()),
		stubTpls: make([]map[netip.Prefix][]advTemplate, net.NumRouters()),
	}
	names := make([]string, 0, len(cfgs))
	for name := range cfgs {
		names = append(names, name)
	}
	sort.Strings(names)
	for i := range st.seeds {
		st.seeds[i] = make(BGPRIB)
	}
	for _, name := range names {
		rc := cfgs[name]
		r, _ := net.RouterByName(name)
		if r == nil {
			continue
		}
		seedLocal(fv, net, r, rc, st.seeds[r.ID])
		// The receiver's config declares the session; build the
		// advertiser->receiver direction here.
		for _, nb := range rc.Neighbors {
			if nb.RemoteAS == r.AS {
				peer, ok := net.RouterByLoopback(nb.Addr)
				if !ok {
					continue
				}
				st.sessions = append(st.sessions, session{from: peer.ID, to: r.ID, ebgp: false})
			} else {
				d, ok := net.DirLinkToAddr(nb.Addr)
				if !ok {
					continue
				}
				e := net.Edge(d)
				pref := nb.LocalPref
				if pref == 0 {
					pref = config.DefaultLocalPref
				}
				// Advertisements flow peer -> r over the reverse edge;
				// keep the edge for the session-up guard and for the
				// receiver's outgoing direction toward the peer.
				st.sessions = append(st.sessions, session{from: e.To, to: r.ID, ebgp: true, edge: e, importPref: pref})
			}
		}
	}
	// Exporter-side deny lists attach to sessions *from* the configured
	// router.
	for _, name := range names {
		rc := cfgs[name]
		r, _ := net.RouterByName(name)
		if r == nil {
			continue
		}
		for _, nb := range rc.Neighbors {
			if len(nb.ExportDeny) == 0 {
				continue
			}
			var peerID topo.RouterID = -1
			if nb.RemoteAS == r.AS {
				if peer, ok := net.RouterByLoopback(nb.Addr); ok {
					peerID = peer.ID
				}
			} else if d, ok := net.DirLinkToAddr(nb.Addr); ok {
				peerID = net.Edge(d).To
			}
			for i := range st.sessions {
				if st.sessions[i].from == r.ID && st.sessions[i].to == peerID {
					st.sessions[i].exportDeny = nb.ExportDeny
				}
			}
		}
	}
	for i := range st.seeds {
		st.seeds[i] = b.normalize(st.seeds[i])
	}
	st.ribs = st.seeds
	return st
}

// ensureTemplates hoists the per-router advertisement templates for the
// upcoming round: the selection guards and rank-group representatives
// depend only on the sender's RIB, not on the session, so compute them
// once per router and prefix per round (critical in iBGP full meshes,
// where a router advertises the same content to every peer). Border
// stubs use the injected templates of their home domain instead of their
// (meaningless) local RIB.
func (st *Stepper) ensureTemplates() {
	if st.tplsValid {
		return
	}
	st.tpls = make([]map[netip.Prefix][]advTemplate, len(st.ribs))
	for i := range st.tpls {
		if st.member != nil && !st.member[i] {
			st.tpls[i] = st.stubTpls[i] // nil advertises nothing
			continue
		}
		st.tpls[i] = st.b.buildTemplates(st.ribs[i])
	}
	st.tplsValid = true
}

// Round runs one synchronous advertisement round and reports whether the
// RIBs were already stable (monolithic: all routers; domain: members
// only — global stability is the conjunction of the per-domain answers,
// since members partition the network).
func (st *Stepper) Round() bool {
	st.ensureTemplates()
	next := make([]BGPRIB, len(st.ribs))
	for i := range next {
		next[i] = make(BGPRIB)
		for pfx, cands := range st.seeds[i] {
			next[i][pfx] = append([]*BGPCand(nil), cands...)
		}
	}
	for _, s := range st.sessions {
		st.b.advertise(st.igp, st.tpls[s.from], next[s.to], s)
	}
	for i := range next {
		next[i] = st.b.normalize(next[i])
	}
	stable := true
	for i := range next {
		if st.member != nil && !st.member[i] {
			continue
		}
		if !sameRIB(st.ribs[i], next[i]) {
			stable = false
			break
		}
	}
	st.ribs = next
	st.tplsValid = false
	return stable
}

// Finish seals the run, recording the round count and convergence verdict
// the driver observed, and returns the BGP state.
func (st *Stepper) Finish(rounds int, converged bool) *BGP {
	st.b.RIBs = st.ribs
	st.b.Rounds = rounds
	st.b.Converged = converged
	return st.b
}

// BorderAdv is one rank group of a border router's advertisement template
// as seen across an AS boundary. Because domains are AS-closed, every
// cross-domain session is eBGP, and an eBGP advertisement derives from
// exactly two template fields: the representative's AS path and the
// group's selection guard — local pref, next hop, out-edge and IGP cost
// are all reset by the receiver. This pair IS the interface summary unit
// exchanged between domains.
type BorderAdv struct {
	ASPath []uint32
	Sel    *mtbdd.Node
}

// BorderTemplates is a border router's advertisement templates: rank
// groups per prefix, preference-ordered.
type BorderTemplates map[netip.Prefix][]BorderAdv

// BorderAdvs exports router r's advertisement templates for the upcoming
// round. The selection guards are nodes of this stepper's manager; the
// coordinator transfers them across managers (mtbdd.Snapshot) before
// injecting them into a neighboring domain.
func (st *Stepper) BorderAdvs(r topo.RouterID) BorderTemplates {
	st.ensureTemplates()
	tpls := st.tpls[r]
	if len(tpls) == 0 {
		return nil
	}
	out := make(BorderTemplates, len(tpls))
	for pfx, ts := range tpls {
		advs := make([]BorderAdv, len(ts))
		for i, t := range ts {
			advs[i] = BorderAdv{ASPath: t.cand.ASPath, Sel: t.groupSel}
		}
		out[pfx] = advs
	}
	return out
}

// SetStubAdvs injects the advertisement templates of border stub r for
// the upcoming round, replacing last round's injection (nil clears). The
// selection guards must already live in this stepper's manager.
func (st *Stepper) SetStubAdvs(r topo.RouterID, advs BorderTemplates) {
	var tpls map[netip.Prefix][]advTemplate
	if len(advs) > 0 {
		tpls = make(map[netip.Prefix][]advTemplate, len(advs))
		for pfx, as := range advs {
			ts := make([]advTemplate, len(as))
			for i, a := range as {
				ts[i] = advTemplate{
					cand:     &BGPCand{Prefix: pfx, ASPath: a.ASPath},
					groupSel: a.Sel,
				}
			}
			tpls[pfx] = ts
		}
	}
	st.stubTpls[r] = tpls
	if st.tplsValid {
		st.tpls[r] = tpls
	}
}

// advTemplate is one rank group's advertisement content: the
// representative candidate and the disjunction of the group's selection
// guards.
type advTemplate struct {
	cand     *BGPCand
	groupSel *mtbdd.Node
}

// buildTemplates computes the advertisement templates of one router.
func (b *BGP) buildTemplates(rib BGPRIB) map[netip.Prefix][]advTemplate {
	fv := b.fv
	m := fv.M
	out := make(map[netip.Prefix][]advTemplate, len(rib))
	for pfx, cands := range rib {
		sel := selectionGuards(fv, cands)
		var ts []advTemplate
		i := 0
		for i < len(cands) {
			j := i
			cand := cands[i]
			groupSel := m.Zero()
			for j < len(cands) && cands[j].SameRank(cands[i]) {
				if sel[j] != m.Zero() {
					groupSel = m.Or(groupSel, sel[j])
					if lessASPath(cands[j].ASPath, cand.ASPath) {
						cand = cands[j]
					}
				}
				j++
			}
			i = j
			if groupSel != m.Zero() {
				ts = append(ts, advTemplate{cand, fv.Reduce(groupSel)})
			}
		}
		if len(ts) > 0 {
			out[pfx] = ts
		}
	}
	return out
}

// seedLocal installs a router's originated networks and redistributed
// statics as local candidates.
func seedLocal(fv *FailVars, net *topo.Network, r *topo.Router, rc *config.Router, rib BGPRIB) {
	up := fv.RouterUp(r.ID)
	for _, pfx := range rc.Networks {
		rib[pfx] = append(rib[pfx], &BGPCand{
			Prefix: pfx, NextHop: r.Loopback, NextHopRouter: r.ID,
			Deliver: true, LocalPref: config.DefaultLocalPref, Guard: up,
		})
	}
	if rc.RedistributeStatic {
		for _, st := range rc.Statics {
			c := &BGPCand{
				Prefix: st.Prefix, NextHop: r.Loopback, NextHopRouter: r.ID,
				Discard: st.Discard, AdvertiseOnly: true,
				LocalPref: config.DefaultLocalPref, Guard: up,
			}
			if !st.Discard {
				// Present only while the static's own next hop resolves.
				if d, ok := net.DirLinkToAddr(st.NextHop); ok {
					c.Guard = fv.M.And(up, fv.EdgeUp(net.Edge(d)))
				}
			}
			rib[st.Prefix] = append(rib[st.Prefix], c)
		}
	}
}

// advertise sends the sender's advertisement templates to the receiver.
func (b *BGP) advertise(igp *IGP, from map[netip.Prefix][]advTemplate, to BGPRIB, s session) {
	fv, net := b.fv, b.fv.Net
	m := fv.M
	var sessUp *mtbdd.Node
	if s.ebgp {
		sessUp = fv.EdgeUp(s.edge)
	} else {
		// iBGP over TCP to the peer loopback: alive iff the IGP connects
		// the two loopbacks (endpoint router liveness included in reach).
		sessUp = igp.Reach(s.from, s.to)
	}
	if sessUp == m.Zero() {
		return
	}
	fromRouter := net.Router(s.from)
	toRouter := net.Router(s.to)
	for pfx, ts := range from {
		if denied(s.exportDeny, pfx) {
			continue
		}
		for _, tpl := range ts {
			cand := tpl.cand
			if !s.ebgp && !cand.FromEBGP && !(cand.Deliver || cand.Discard || cand.AdvertiseOnly) {
				// iBGP-learned routes are not re-advertised over iBGP
				// (full-mesh rule).
				continue
			}
			adv := &BGPCand{Prefix: pfx}
			if s.ebgp {
				// AS-path prepend + loop rejection.
				if hasAS(cand.ASPath, toRouter.AS) {
					continue
				}
				adv.ASPath = append([]uint32{fromRouter.AS}, cand.ASPath...)
				// s.edge runs receiver -> sender, so the sender's
				// interface address is the remote end, and the receiver
				// forwards out of s.edge itself.
				adv.NextHop = s.edge.RemoteAddr
				adv.Direct = true
				adv.OutEdge = s.edge.DirLink
				adv.LocalPref = s.importPref
				adv.FromEBGP = true
			} else {
				// iBGP: next-hop-self, attributes carried unchanged;
				// the receiver tiebreaks by its static IGP cost to the
				// next hop (hot potato).
				adv.ASPath = cand.ASPath
				adv.NextHop = fromRouter.Loopback
				adv.NextHopRouter = s.from
				adv.LocalPref = cand.LocalPref
				if c, ok := igp.NoFailCost(s.to, s.from); ok {
					adv.IGPCost = c
				} else {
					adv.IGPCost = 1 << 50
				}
			}
			guard := fv.ReduceAnd(tpl.groupSel, sessUp)
			if guard == m.Zero() {
				continue
			}
			adv.Guard = guard
			to[pfx] = append(to[pfx], adv)
		}
	}
}

// lessASPath orders AS paths lexicographically (used to pick the
// deterministic representative of an ECMP group).
func lessASPath(a, b []uint32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// selectionGuards computes s_r for every candidate (paper §4.4): present
// and every strictly more preferred candidate absent.
func selectionGuards(fv *FailVars, cands []*BGPCand) []*mtbdd.Node {
	m := fv.M
	out := make([]*mtbdd.Node, len(cands))
	// cands are sorted most-preferred-first by normalize; compute the
	// running disjunction of strictly better guards per rank group.
	better := m.Zero()
	i := 0
	for i < len(cands) {
		j := i
		groupOr := m.Zero()
		for j < len(cands) && cands[j].SameRank(cands[i]) {
			out[j] = fv.ReduceAnd(cands[j].Guard, m.Not(better))
			groupOr = m.Or(groupOr, cands[j].Guard)
			j++
		}
		better = fv.ReduceOr(better, groupOr)
		i = j
	}
	return out
}

// normalize merges duplicate candidates (Or of guards), sorts by
// preference, and prunes candidates that can never be selected within the
// failure budget.
func (b *BGP) normalize(rib BGPRIB) BGPRIB {
	fv := b.fv
	m := fv.M
	out := make(BGPRIB, len(rib))
	for pfx, cands := range rib {
		merged := make(map[candKey]*BGPCand)
		var order []candKey
		for _, c := range cands {
			k := keyOf(c)
			if prev, ok := merged[k]; ok {
				prev.Guard = fv.ReduceOr(prev.Guard, c.Guard)
			} else {
				cc := *c
				merged[k] = &cc
				order = append(order, k)
			}
		}
		list := make([]*BGPCand, 0, len(order))
		for _, k := range order {
			if merged[k].Guard != m.Zero() {
				list = append(list, merged[k])
			}
		}
		sort.SliceStable(list, func(i, j int) bool { return list[i].better(list[j]) })
		// Prune never-selectable candidates.
		kept := list[:0]
		better := m.Zero()
		i := 0
		for i < len(list) {
			j := i
			groupOr := m.Zero()
			for j < len(list) && list[j].SameRank(list[i]) {
				c := list[j]
				if fv.Feasible(m.And(c.Guard, m.Not(better))) {
					kept = append(kept, c)
					groupOr = m.Or(groupOr, c.Guard)
				}
				j++
			}
			better = fv.ReduceOr(better, groupOr)
			i = j
		}
		if len(kept) > 0 {
			out[pfx] = kept
		}
	}
	return out
}

func sameRIB(a, b BGPRIB) bool {
	if len(a) != len(b) {
		return false
	}
	for pfx, ac := range a {
		bc, ok := b[pfx]
		if !ok || len(ac) != len(bc) {
			return false
		}
		for i := range ac {
			if keyOf(ac[i]) != keyOf(bc[i]) || ac[i].Guard != bc[i].Guard {
				return false
			}
		}
	}
	return true
}

func hasAS(path []uint32, as uint32) bool {
	for _, a := range path {
		if a == as {
			return true
		}
	}
	return false
}

func denied(deny []netip.Prefix, pfx netip.Prefix) bool {
	for _, d := range deny {
		if d == pfx {
			return true
		}
	}
	return false
}
