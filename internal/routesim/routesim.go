package routesim

import (
	"context"
	"fmt"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/govern"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/topo"
)

// Result is the complete output of symbolic route simulation: everything
// symbolic traffic execution (internal/core) needs.
type Result struct {
	Vars *FailVars
	IGP  *IGP
	BGP  *BGP
	// SR holds each router's guarded SR policies (indexed by RouterID).
	SR [][]GuardedSRPolicy
	// Statics holds each router's guarded static routes.
	Statics [][]GuardedStatic
}

// Run performs symbolic route simulation for the network and
// configurations under the failure variables fv.
func Run(fv *FailVars, cfgs config.Configs) (*Result, error) {
	return RunContext(context.Background(), fv, cfgs)
}

// RunContext is Run with cancellation: a context poll is installed as
// the manager's interrupt hook for the duration of the simulation (the
// previous hook is restored on return), so a cancel or deadline unwinds
// the symbolic computation and surfaces as govern.ErrCanceled or
// govern.ErrDeadline. A node-budget breach on the manager surfaces as
// govern.ErrNodeBudget the same way.
func RunContext(ctx context.Context, fv *FailVars, cfgs config.Configs) (res *Result, err error) {
	if ctx != nil && ctx != context.Background() {
		prev := fv.M.SetInterrupt(func() error { return govern.Check(ctx) })
		defer fv.M.SetInterrupt(prev)
	}
	defer func() {
		if r := recover(); r != nil {
			if e := mtbdd.AbortError(r); e != nil {
				res, err = nil, e
				return
			}
			panic(r)
		}
	}()
	if err := govern.Check(ctx); err != nil {
		return nil, err
	}
	return run(fv, cfgs)
}

func run(fv *FailVars, cfgs config.Configs) (*Result, error) {
	igp := ComputeIGP(fv)
	bgp := ComputeBGP(fv, cfgs, igp)
	return FinishRun(fv, cfgs, igp, bgp)
}

// FinishRun resolves SR policies and static routes on top of an
// already-computed IGP and BGP state, producing the complete Result. It
// is the tail of run(), split out so the compositional coordinator
// (internal/compose) can drive BGP itself — per-domain steppers in
// lockstep — and still share the exact SR/static resolution code path
// with the monolithic run.
func FinishRun(fv *FailVars, cfgs config.Configs, igp *IGP, bgp *BGP) (*Result, error) {
	net := fv.Net
	res := &Result{
		Vars:    fv,
		IGP:     igp,
		BGP:     bgp,
		SR:      make([][]GuardedSRPolicy, net.NumRouters()),
		Statics: make([][]GuardedStatic, net.NumRouters()),
	}
	for name, rc := range cfgs {
		r, ok := net.RouterByName(name)
		if !ok {
			return nil, fmt.Errorf("routesim: config for unknown router %q", name)
		}
		// SR policies.
		var pols []srConfigPolicy
		for _, p := range rc.SRPolicies {
			cp := srConfigPolicy{endpoint: p.Endpoint, dscp: p.MatchDSCP}
			for _, path := range p.Paths {
				var segs []topo.RouterID
				for _, addr := range path.Segments {
					owner, ok := net.RouterByLoopback(addr)
					if !ok {
						return nil, fmt.Errorf("routesim: %s: SR segment %s is not a loopback", name, addr)
					}
					segs = append(segs, owner.ID)
				}
				cp.paths = append(cp.paths, srConfigPath{segments: segs, weight: path.Weight})
			}
			pols = append(pols, cp)
		}
		res.SR[r.ID] = computeSR(fv, igp, r, pols)

		// Static routes.
		for _, st := range rc.Statics {
			gs := GuardedStatic{Prefix: st.Prefix, Discard: st.Discard, Guard: fv.RouterUp(r.ID)}
			if !st.Discard {
				if d, ok := net.DirLinkToAddr(st.NextHop); ok {
					e := net.Edge(d)
					if e.From != r.ID {
						return nil, fmt.Errorf("routesim: %s: static next hop %s is not local", name, st.NextHop)
					}
					gs.Out = d
					gs.Guard = fv.ReduceAnd(gs.Guard, fv.EdgeUp(e))
				} else if owner, ok := net.RouterByLoopback(st.NextHop); ok {
					gs.Indirect = true
					gs.ViaRouter = owner.ID
				} else {
					return nil, fmt.Errorf("routesim: %s: static next hop %s unresolvable", name, st.NextHop)
				}
			}
			res.Statics[r.ID] = append(res.Statics[r.ID], gs)
		}
	}
	return res, nil
}

// EmptyResult returns a route-sim result with no routes at all, sized for
// fv.Net: every RIB empty, every guard set empty. The compositional
// check engine uses it when every equivalence class was executed inside a
// domain — the check manager then never route-simulates the global
// network, which is the whole point of decomposition. Classification is
// overridden separately (core.Options.ClassifyPrefixes).
func EmptyResult(fv *FailVars) *Result {
	net := fv.Net
	igp := &IGP{
		fv:     fv,
		routes: make([]map[topo.RouterID][]IGPRoute, net.NumRouters()),
		reach:  make([]map[topo.RouterID]*mtbdd.Node, net.NumRouters()),
	}
	for i := range igp.routes {
		igp.routes[i] = make(map[topo.RouterID][]IGPRoute)
		igp.reach[i] = make(map[topo.RouterID]*mtbdd.Node)
	}
	bgp := &BGP{fv: fv, RIBs: make([]BGPRIB, net.NumRouters()), Converged: true}
	for i := range bgp.RIBs {
		bgp.RIBs[i] = make(BGPRIB)
	}
	return &Result{
		Vars:    fv,
		IGP:     igp,
		BGP:     bgp,
		SR:      make([][]GuardedSRPolicy, net.NumRouters()),
		Statics: make([][]GuardedStatic, net.NumRouters()),
	}
}
