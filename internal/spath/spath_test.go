package spath

import (
	"math"
	"testing"

	"github.com/yu-verify/yu/internal/concrete"
	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/flowgen"
	"github.com/yu-verify/yu/internal/gen"
	"github.com/yu-verify/yu/internal/paperex"
	"github.com/yu-verify/yu/internal/topo"
)


func mustSpec(t testing.TB, load func() (*config.Spec, error)) *config.Spec {
	t.Helper()
	spec, err := load()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestFaithful(t *testing.T) {
	ft, err := gen.FatTree(gen.FatTreeSpec{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !Faithful(ft) {
		t.Error("FatTree (pure eBGP) must be inside the QARC model")
	}
	if Faithful(mustSpec(t, paperex.MotivatingSpec)) {
		t.Error("the motivating example (SR + iBGP) must be outside the QARC model")
	}
	if Faithful(mustSpec(t, paperex.MisconfigSpec)) {
		t.Error("the misconfig example (statics + redistribution) must be outside the QARC model")
	}
}

// TestSpathMatchesConcreteOnFatTree cross-validates the shortest-path
// model against the full concrete simulator inside the model's faithful
// domain (uniform-cost pure-eBGP FatTree): per-link loads must agree for
// every single-failure scenario.
func TestSpathMatchesConcreteOnFatTree(t *testing.T) {
	spec, err := gen.FatTree(gen.FatTreeSpec{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Pairwise(spec, 5, 0.12, 1)
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(spec.Net, spec.Configs, flows)
	sim := concrete.NewSim(spec.Net, spec.Configs)

	check := func(failed []topo.LinkID) {
		down := make([]bool, spec.Net.NumLinks())
		sc := concrete.NewScenario(spec.Net)
		for _, l := range failed {
			down[l] = true
			sc.LinkDown[l] = true
		}
		spLoad, _ := model.loadsForTest(down)
		res := sim.Simulate(sc, flows)
		for li := range spec.Net.Links {
			for _, d := range []topo.Direction{topo.AtoB, topo.BtoA} {
				dl := topo.MakeDirLinkID(topo.LinkID(li), d)
				if diff := math.Abs(spLoad[dl] - res.Load[dl]); diff > 1e-6 {
					t.Fatalf("failed=%v link %s: spath %.9g vs concrete %.9g",
						failed, spec.Net.DirLinkName(dl), spLoad[dl], res.Load[dl])
				}
			}
		}
	}
	check(nil)
	for li := 0; li < spec.Net.NumLinks(); li++ {
		check([]topo.LinkID{topo.LinkID(li)})
	}
}

// TestVerifyFindsOverload plants an asymmetric workload that overloads an
// edge link under a failure.
func TestVerifyFindsOverload(t *testing.T) {
	spec, err := gen.FatTree(gen.FatTreeSpec{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Enough pairwise flows that killing an agg-edge link must overload
	// the remaining 40G link into the destination edge router.
	flows, err := flowgen.Pairwise(spec, 6, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(spec.Net, spec.Configs, flows)
	rep := model.Verify(1, Options{OverloadFactor: 1.0})
	if rep.Holds {
		t.Fatal("expected an overload under full pairwise load")
	}
	for _, v := range rep.Violations {
		if len(v.FailedLinks) > 1 {
			t.Errorf("violation with %d failures under k=1", len(v.FailedLinks))
		}
		if v.Value <= v.Limit-1e-6 {
			t.Errorf("reported value %.6g below limit %.6g", v.Value, v.Limit)
		}
	}
	if rep.Scenarios == 0 {
		t.Error("no scenarios evaluated")
	}
}

func TestStopAtFirst(t *testing.T) {
	spec, err := gen.FatTree(gen.FatTreeSpec{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Pairwise(spec, 6, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(spec.Net, spec.Configs, flows)
	rep := model.Verify(1, Options{OverloadFactor: 1.0, StopAtFirst: true})
	if len(rep.Violations) != 1 {
		t.Errorf("violations = %d, want 1", len(rep.Violations))
	}
}

// TestUnreachableFlowDropped checks flows to unknown destinations are
// excluded from the model.
func TestUnreachableFlowDropped(t *testing.T) {
	spec, err := gen.FatTree(gen.FatTreeSpec{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Pairwise(spec, 5, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	bogus := flows[0]
	bogus.Dst = mustAddr("203.0.113.9")
	model := NewModel(spec.Net, spec.Configs, append(flows, bogus))
	if len(model.flows) != len(flows) {
		t.Errorf("model flows = %d, want %d (bogus dropped)", len(model.flows), len(flows))
	}
}
