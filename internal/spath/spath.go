// Package spath implements a QARC-style baseline verifier [52]: the
// network control plane is modeled as a single weighted graph, traffic is
// assumed to follow shortest paths (with equal-split ECMP), and k-failure
// overload detection searches the failure-set space.
//
// QARC encodes this search as an integer linear program solved by a
// commercial solver; with a stdlib-only constraint we substitute a
// branch-and-bound enumeration over failure sets with trajectory-based
// pruning (see DESIGN.md, substitutions). The model-level restrictions the
// paper highlights are preserved faithfully: the shortest-path assumption
// cannot express SR policies, iBGP/local-pref route selection, or
// discard/redistribution behavior, so Faithful reports whether a given
// specification is inside the model.
package spath

import (
	"container/heap"
	"context"
	"errors"
	"net/netip"
	"sort"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/govern"
	"github.com/yu-verify/yu/internal/topo"
)

// Model is the QARC-style weighted-graph view of a network.
type Model struct {
	net *topo.Network
	// dest[i] is the destination router of flow i (the originator of the
	// longest prefix matching the flow's destination address).
	dest  []topo.RouterID
	flows []topo.Flow
}

// Faithful reports whether the specification is expressible in the
// shortest-path model: no SR policies, no static discards or
// redistribution, and no multi-router ASes (whose iBGP/IGP interplay the
// model cannot see). This is Table 1's QARC generality row.
func Faithful(spec *config.Spec) bool {
	for _, rc := range spec.Configs {
		if len(rc.SRPolicies) > 0 || rc.RedistributeStatic || len(rc.Statics) > 0 {
			return false
		}
		for _, nb := range rc.Neighbors {
			if len(nb.ExportDeny) > 0 {
				return false
			}
		}
	}
	counts := make(map[uint32]int)
	for _, r := range spec.Net.Routers {
		counts[r.AS]++
		if counts[r.AS] > 1 {
			return false
		}
	}
	return true
}

// NewModel builds the weighted-graph model. Flows whose destination
// matches no originated prefix are dropped from the model.
func NewModel(net *topo.Network, cfgs config.Configs, flows []topo.Flow) *Model {
	type orig struct {
		pfx netip.Prefix
		r   topo.RouterID
	}
	var origins []orig
	for name, rc := range cfgs {
		r, ok := net.RouterByName(name)
		if !ok {
			continue
		}
		for _, pfx := range rc.Networks {
			origins = append(origins, orig{pfx, r.ID})
		}
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i].pfx.Bits() > origins[j].pfx.Bits() })
	m := &Model{net: net}
	for _, f := range flows {
		found := false
		for _, o := range origins {
			if o.pfx.Contains(f.Dst) {
				m.flows = append(m.flows, f)
				m.dest = append(m.dest, o.r)
				found = true
				break
			}
		}
		_ = found
	}
	return m
}

// Violation is one overload found by the search.
type Violation struct {
	Link        topo.DirLinkID
	Value       float64
	Limit       float64
	FailedLinks []topo.LinkID
}

// Report is the outcome of a verification search.
type Report struct {
	Violations []Violation
	Holds      bool
	// Scenarios is the number of failure sets whose loads were evaluated.
	Scenarios int
	// Pruned is the number of subtree prunes taken by the search.
	Pruned int
	// TimedOut is set when the deadline expired mid-search.
	TimedOut bool
	// Err is the governance error that cut the search short
	// (govern.ErrCanceled / govern.ErrDeadline); nil on a full search.
	// Holds is meaningless when Err is non-nil.
	Err error
}

// Options configures the search.
type Options struct {
	// OverloadFactor scales capacities (limit = factor × capacity).
	OverloadFactor float64
	// StopAtFirst halts at the first violation.
	StopAtFirst bool
	// Ctx, when non-nil, makes the search cancellable; it is polled
	// periodically between scenarios. Wall-clock limits are expressed as
	// a deadline on Ctx (context.WithTimeout / WithDeadline).
	Ctx context.Context
}

// Verify searches all failure sets of at most k links for an overloaded
// directed link under the shortest-path forwarding model.
func (m *Model) Verify(k int, opts Options) *Report {
	rep := &Report{}
	if opts.OverloadFactor <= 0 {
		opts.OverloadFactor = 1
	}
	ctx := opts.Ctx
	down := make([]bool, m.net.NumLinks())
	var chosen []topo.LinkID

	var failable []topo.LinkID
	for i := range m.net.Links {
		if !m.net.Links[i].NoFail {
			failable = append(failable, topo.LinkID(i))
		}
	}

	var visit func(start, budget int) bool
	visit = func(start, budget int) bool {
		if rep.Scenarios%64 == 0 {
			if err := govern.Check(ctx); err != nil {
				rep.Err = err
				rep.TimedOut = errors.Is(err, govern.ErrDeadline)
				return false
			}
		}
		load, touched := m.loads(down)
		rep.Scenarios++
		const eps = 1e-6
		for dl, v := range load {
			link := m.net.Link(dl.Link())
			limit := link.Capacity * opts.OverloadFactor
			if v > limit-eps {
				rep.Violations = append(rep.Violations, Violation{
					Link: dl, Value: v, Limit: limit,
					FailedLinks: append([]topo.LinkID(nil), chosen...),
				})
				if opts.StopAtFirst {
					return false
				}
			}
		}
		if budget == 0 {
			return true
		}
		for i := start; i < len(failable); i++ {
			l := failable[i]
			// Branch-and-bound pruning: failing a link that carries no
			// traffic in the current scenario cannot change any load
			// beyond removing other chosen links first; the subtree
			// rooted at {chosen + l} with further failures from
			// untouched links only is explored anyway through other
			// branches, so only prune the *leaf* case where l is the
			// last allowed failure and is untouched.
			if budget == 1 && !touched[l] {
				rep.Pruned++
				continue
			}
			down[l] = true
			chosen = append(chosen, l)
			ok := visit(i+1, budget-1)
			chosen = chosen[:len(chosen)-1]
			down[l] = false
			if !ok {
				return false
			}
		}
		return true
	}
	visit(0, k)
	rep.Holds = len(rep.Violations) == 0
	return rep
}

// loads computes per-directed-link loads under the given failed set using
// shortest-path ECMP forwarding, and reports which undirected links carry
// traffic.
func (m *Model) loads(down []bool) (map[topo.DirLinkID]float64, map[topo.LinkID]bool) {
	load := make(map[topo.DirLinkID]float64)
	touched := make(map[topo.LinkID]bool)

	// Group flows by destination router: one SPF per destination.
	byDest := make(map[topo.RouterID][]int)
	for i := range m.flows {
		byDest[m.dest[i]] = append(byDest[m.dest[i]], i)
	}
	n := m.net.NumRouters()
	for dest, flowIdx := range byDest {
		dist := m.spf(dest, down)
		// ECMP next hops per router.
		nh := make([][]topo.DirLinkID, n)
		for r := 0; r < n; r++ {
			if topo.RouterID(r) == dest || dist[r] < 0 {
				continue
			}
			for _, e := range m.net.Out(topo.RouterID(r)) {
				if down[e.DirLink.Link()] {
					continue
				}
				if dist[e.To] >= 0 && e.Cost+dist[e.To] == dist[r] {
					nh[r] = append(nh[r], e.DirLink)
				}
			}
		}
		for _, fi := range flowIdx {
			f := m.flows[fi]
			if dist[f.Ingress] < 0 {
				continue // unreachable: dropped
			}
			// Propagate fractions along the shortest-path DAG in
			// decreasing-distance order.
			frac := map[topo.RouterID]float64{f.Ingress: f.Gbps}
			order := make([]topo.RouterID, 0, len(frac))
			for r := range frac {
				order = append(order, r)
			}
			// Simple worklist ordered by distance (monotonically
			// decreasing along the DAG).
			for len(order) > 0 {
				sort.Slice(order, func(i, j int) bool { return dist[order[i]] > dist[order[j]] })
				r := order[0]
				order = order[1:]
				v := frac[r]
				delete(frac, r)
				if r == dest || v == 0 {
					continue
				}
				share := v / float64(len(nh[r]))
				for _, dl := range nh[r] {
					load[dl] += share
					touched[dl.Link()] = true
					to := m.net.Edge(dl).To
					if _, ok := frac[to]; !ok {
						order = append(order, to)
					}
					frac[to] += share
				}
			}
		}
	}
	return load, touched
}

// spf runs Dijkstra toward dest on the alive graph (all links, all ASes —
// the single weighted graph of the QARC model).
func (m *Model) spf(dest topo.RouterID, down []bool) []int64 {
	n := m.net.NumRouters()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = -1
	}
	h := &pq{}
	heap.Push(h, &pqItem{r: dest, d: 0})
	for h.Len() > 0 {
		it := heap.Pop(h).(*pqItem)
		if dist[it.r] >= 0 {
			continue
		}
		dist[it.r] = it.d
		for _, e := range m.net.In(it.r) {
			if down[e.DirLink.Link()] || dist[e.From] >= 0 {
				continue
			}
			heap.Push(h, &pqItem{r: e.From, d: it.d + e.Cost})
		}
	}
	return dist
}

type pqItem struct {
	r topo.RouterID
	d int64
}

type pq []*pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].d < p[j].d }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(*pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	it := old[len(old)-1]
	*p = old[:len(old)-1]
	return it
}
