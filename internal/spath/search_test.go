package spath

import (
	"context"
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"github.com/yu-verify/yu/internal/flowgen"
	"github.com/yu-verify/yu/internal/gen"
	"github.com/yu-verify/yu/internal/topo"
)

// TestDeadlineTimesOut checks an already-expired context deadline aborts
// the search before it evaluates anything, and that the report says so.
func TestDeadlineTimesOut(t *testing.T) {
	spec, err := gen.FatTree(gen.FatTreeSpec{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Pairwise(spec, 6, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(spec.Net, spec.Configs, flows)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	rep := model.Verify(3, Options{OverloadFactor: 1.0, Ctx: ctx})
	if !rep.TimedOut {
		t.Fatal("expired deadline must set TimedOut")
	}
	if rep.Scenarios != 0 {
		t.Errorf("timed-out-before-start search evaluated %d scenarios", rep.Scenarios)
	}
}

// TestPrunedCounter checks the branch-and-bound prune fires: under a
// single flow most links carry no traffic, so the k=1 leaf scan must
// skip untouched links and count each skip.
func TestPrunedCounter(t *testing.T) {
	spec, err := gen.FatTree(gen.FatTreeSpec{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Pairwise(spec, 5, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(spec.Net, spec.Configs, flows[:1])
	rep := model.Verify(1, Options{OverloadFactor: 1.0})
	if rep.Pruned == 0 {
		t.Error("single-flow k=1 search pruned nothing; expected untouched-link leaves to be skipped")
	}
	if rep.Scenarios+rep.Pruned != 1+spec.Net.NumLinks() {
		t.Errorf("scenarios %d + pruned %d != %d leaf+root cases",
			rep.Scenarios, rep.Pruned, 1+spec.Net.NumLinks())
	}
}

// TestVerifyK2MatchesBruteForce compares the pruned k=2 search against
// a prune-free enumeration of every failure set of size ≤ 2: the set of
// overloaded directed links must be identical (pruning may only skip
// scenarios whose loads duplicate an already-evaluated ancestor).
func TestVerifyK2MatchesBruteForce(t *testing.T) {
	spec, err := gen.FatTree(gen.FatTreeSpec{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Pairwise(spec, 6, 0.9, 4)
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(spec.Net, spec.Configs, flows)
	const eps = 1e-6

	overloaded := func(down []bool, into map[string]bool) {
		load, _ := model.loadsForTest(down)
		for dl, v := range load {
			link := spec.Net.Link(dl.Link())
			if v > link.Capacity-eps {
				into[spec.Net.DirLinkName(dl)] = true
			}
		}
	}
	want := make(map[string]bool)
	nl := spec.Net.NumLinks()
	down := make([]bool, nl)
	overloaded(down, want)
	for i := 0; i < nl; i++ {
		down[i] = true
		overloaded(down, want)
		for j := i + 1; j < nl; j++ {
			down[j] = true
			overloaded(down, want)
			down[j] = false
		}
		down[i] = false
	}

	rep := model.Verify(2, Options{OverloadFactor: 1.0})
	got := make(map[string]bool)
	for _, v := range rep.Violations {
		got[spec.Net.DirLinkName(v.Link)] = true
	}
	if len(got) != len(want) {
		t.Fatalf("pruned search flags %d links %v, brute force flags %d links %v",
			len(got), keys(got), len(want), keys(want))
	}
	for l := range want {
		if !got[l] {
			t.Errorf("brute force overloads %s but the pruned search missed it", l)
		}
	}
	if rep.Holds != (len(want) == 0) {
		t.Errorf("Holds = %v with %d brute-force overloads", rep.Holds, len(want))
	}
}

// TestWitnessReplay validates every reported violation as a concrete
// witness: the failed set must respect the budget and the NoFail marks,
// and replaying it through the load computation must reproduce the
// reported value on the reported link.
func TestWitnessReplay(t *testing.T) {
	spec, err := gen.FatTree(gen.FatTreeSpec{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Pairwise(spec, 6, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(spec.Net, spec.Configs, flows)
	const k = 2
	rep := model.Verify(k, Options{OverloadFactor: 1.0})
	if rep.Holds {
		t.Fatal("expected violations to validate")
	}
	for i, v := range rep.Violations {
		name := fmt.Sprintf("violation[%d] %s", i, spec.Net.DirLinkName(v.Link))
		if len(v.FailedLinks) > k {
			t.Fatalf("%s: witness has %d failures, budget %d", name, len(v.FailedLinks), k)
		}
		seen := make(map[topo.LinkID]bool)
		down := make([]bool, spec.Net.NumLinks())
		for _, l := range v.FailedLinks {
			if seen[l] {
				t.Fatalf("%s: witness repeats link %d", name, l)
			}
			seen[l] = true
			if spec.Net.Link(l).NoFail {
				t.Fatalf("%s: witness fails NoFail link %s", name, spec.Net.LinkName(l))
			}
			down[l] = true
		}
		load, _ := model.loadsForTest(down)
		if got := load[v.Link]; math.Abs(got-v.Value) > 1e-9 {
			t.Fatalf("%s: replay load %.9g, reported %.9g", name, got, v.Value)
		}
		if v.Value <= v.Limit-1e-6 {
			t.Fatalf("%s: reported value %.9g does not exceed limit %.9g", name, v.Value, v.Limit)
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
