package spath

import (
	"net/netip"

	"github.com/yu-verify/yu/internal/topo"
)

// loadsForTest exposes the internal load computation to tests.
func (m *Model) loadsForTest(down []bool) (map[topo.DirLinkID]float64, map[topo.LinkID]bool) {
	return m.loads(down)
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }
