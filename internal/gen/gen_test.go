package gen

import (
	"testing"

	"github.com/yu-verify/yu/internal/topo"
)

func TestFatTreeShape(t *testing.T) {
	for _, m := range []int{4, 8} {
		spec, err := FatTree(FatTreeSpec{Pods: m})
		if err != nil {
			t.Fatal(err)
		}
		half := m / 2
		wantRouters := half*half + m*(half+half)
		if got := spec.Net.NumRouters(); got != wantRouters {
			t.Errorf("FT-%d routers = %d, want %d", m, got, wantRouters)
		}
		wantLinks := m*half*half + m*half*half
		if got := spec.Net.NumLinks(); got != wantLinks {
			t.Errorf("FT-%d links = %d, want %d", m, got, wantLinks)
		}
		if got := len(EdgeRouters(spec)); got != m*half {
			t.Errorf("FT-%d edge routers = %d, want %d", m, got, m*half)
		}
		// Every router is in its own AS (pure eBGP fabric).
		if got := len(spec.Net.ASes()); got != wantRouters {
			t.Errorf("FT-%d ASes = %d, want %d", m, got, wantRouters)
		}
		// Capacities.
		for i := range spec.Net.Links {
			l := spec.Net.Link(topo.LinkID(i))
			an := spec.Net.Router(l.A).Name
			bn := spec.Net.Router(l.B).Name
			isCore := an[:4] == "core" || bn[:4] == "core"
			if isCore && l.Capacity != 100 {
				t.Fatalf("core link capacity = %v", l.Capacity)
			}
			if !isCore && l.Capacity != 40 {
				t.Fatalf("edge link capacity = %v", l.Capacity)
			}
		}
		// Edge prefixes exist.
		for _, e := range EdgeRouters(spec) {
			if _, ok := EdgePrefix(spec, e); !ok {
				t.Fatalf("edge %s has no prefix", e)
			}
		}
	}
}

func TestFatTreeRejectsOddPods(t *testing.T) {
	if _, err := FatTree(FatTreeSpec{Pods: 3}); err == nil {
		t.Error("odd pod count must fail")
	}
}

func TestWANShape(t *testing.T) {
	ws := WANSpec{Routers: 100, Links: 200, Prefixes: 30, SRPolicyFraction: 0.2, Seed: 42}
	spec, err := WAN(ws)
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.Net.NumRouters(); got != 100 {
		t.Errorf("routers = %d", got)
	}
	if got := spec.Net.NumLinks(); got < 190 || got > 210 {
		t.Errorf("links = %d, want ~200", got)
	}
	if got := len(Prefixes(spec)); got != 30 {
		t.Errorf("prefixes = %d", got)
	}
	if got := len(spec.Net.ASes()); got < 2 {
		t.Errorf("ASes = %d", got)
	}
	// Connectivity: diameter must be finite and every router reachable
	// (Diameter ignores disconnected pairs, so check adjacency).
	for i := range spec.Net.Routers {
		if len(spec.Net.Out(topo.RouterID(i))) == 0 {
			t.Fatalf("router %d isolated", i)
		}
	}
	// SR policies exist.
	nPol := 0
	for _, rc := range spec.Configs {
		nPol += len(rc.SRPolicies)
	}
	if nPol == 0 {
		t.Error("expected SR policies")
	}
	// Determinism.
	spec2, err := WAN(ws)
	if err != nil {
		t.Fatal(err)
	}
	if spec2.Net.NumLinks() != spec.Net.NumLinks() {
		t.Error("generation must be deterministic")
	}
}

func TestTable3Specs(t *testing.T) {
	specs := Table3()
	for _, name := range []string{"N0", "N1", "N2", "WAN"} {
		if _, ok := specs[name]; !ok {
			t.Errorf("missing %s", name)
		}
	}
	if specs["WAN"].Routers != 1000 || specs["WAN"].Links != 4000 {
		t.Errorf("WAN spec = %+v", specs["WAN"])
	}
}
