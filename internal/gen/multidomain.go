package gen

import (
	"fmt"
	"math/rand"
	"net/netip"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/topo"
)

// MultiDomainSpec describes a WAN of independent operational domains —
// one AS per domain, dense internal connectivity, a thin backbone ring
// between domain gateways, and traffic that stays inside its home
// domain. This is the workload compositional verification is built for:
// the monolithic pipeline pays for the whole network's symbolic state at
// once, while the modular pipeline (one MTBDD manager per domain) peaks
// at roughly one domain's worth.
type MultiDomainSpec struct {
	// Domains is the number of domains (each its own AS).
	Domains int
	// RoutersPer is the router count per domain.
	RoutersPer int
	// PrefixesPer is the number of prefixes originated per domain.
	PrefixesPer int
	// FlowsPer is the number of intra-domain flows per domain.
	FlowsPer int
	// K is the failure budget embedded in the spec.
	K int
	// Seed makes generation deterministic.
	Seed int64
}

// MultiDomain generates a multi-domain WAN blueprint with the partition
// recorded in Spec.Domains (emitted as `domain` DSL lines). Every domain
// is a double ring (each router has degree >= 4), so no router can be
// isolated by two link failures and intra-domain delivery survives any
// k=2 scenario.
func MultiDomain(ms MultiDomainSpec) (*config.Spec, error) {
	if ms.Domains < 2 {
		return nil, fmt.Errorf("gen: multidomain needs >= 2 domains")
	}
	if ms.RoutersPer < 5 {
		return nil, fmt.Errorf("gen: multidomain needs >= 5 routers per domain")
	}
	if ms.PrefixesPer <= 0 {
		ms.PrefixesPer = 4
	}
	if ms.FlowsPer <= 0 {
		ms.FlowsPer = 8
	}
	if ms.K <= 0 {
		ms.K = 2
	}
	rng := rand.New(rand.NewSource(ms.Seed))

	b := topo.NewBuilder()
	name := func(d, i int) string { return fmt.Sprintf("d%dr%d", d, i) }
	for d := 0; d < ms.Domains; d++ {
		for i := 0; i < ms.RoutersPer; i++ {
			b.AddRouter(name(d, i), uint32(d+1))
		}
	}
	// Double ring per domain: neighbors at distance 1 and 2.
	for d := 0; d < ms.Domains; d++ {
		for i := 0; i < ms.RoutersPer; i++ {
			b.AddLink(name(d, i), name(d, (i+1)%ms.RoutersPer),
				topo.WithCost(10), topo.WithCapacity(400))
			b.AddLink(name(d, i), name(d, (i+2)%ms.RoutersPer),
				topo.WithCost(25), topo.WithCapacity(400))
		}
	}
	// Backbone ring between domain gateways.
	for d := 0; d < ms.Domains; d++ {
		b.AddLink(name(d, 0), name((d+1)%ms.Domains, 0),
			topo.WithCost(100), topo.WithCapacity(400))
	}
	net, err := b.Build()
	if err != nil {
		return nil, err
	}

	cfgs := make(config.Configs)
	spec := &config.Spec{Net: net, Configs: cfgs, K: ms.K, Mode: topo.FailLinks,
		Domains: make(map[string][]string, ms.Domains)}
	for d := 0; d < ms.Domains; d++ {
		members := make([]string, ms.RoutersPer)
		for i := range members {
			members[i] = name(d, i)
		}
		spec.Domains[fmt.Sprintf("dom%d", d)] = members
	}

	// Per-domain prefixes and intra-domain flows toward them.
	owners := make([][]netip.Prefix, ms.Domains)
	for d := 0; d < ms.Domains; d++ {
		for p := 0; p < ms.PrefixesPer; p++ {
			pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, byte(d), byte(p), 0}), 24)
			owner := name(d, rng.Intn(ms.RoutersPer))
			cfgs.Get(owner).Networks = append(cfgs.Get(owner).Networks, pfx)
			owners[d] = append(owners[d], pfx)
		}
	}
	config.EBGPSessionsFullMesh(net, cfgs)
	for d := 0; d < ms.Domains; d++ {
		for f := 0; f < ms.FlowsPer; f++ {
			ing, _ := net.RouterByName(name(d, rng.Intn(ms.RoutersPer)))
			pfx := owners[d][rng.Intn(len(owners[d]))]
			spec.Flows = append(spec.Flows, topo.Flow{
				Name:    fmt.Sprintf("f%d-%d", d, f),
				Ingress: ing.ID,
				Dst:     pfx.Addr().Next(),
				Gbps:    float64(1 + rng.Intn(5)),
			})
		}
	}

	// One load bound per domain on its first ring link; capacities are
	// generous, so the blueprint verifies clean — the interesting outcome
	// is the node-budget behavior, not the verdict.
	for d := 0; d < ms.Domains; d++ {
		l, _ := net.FindLink(name(d, 0), name(d, 1))
		spec.Props = append(spec.Props, topo.LoadBound{Link: l.ID, Max: 400})
	}

	if err := cfgs.Validate(net); err != nil {
		return nil, err
	}
	return spec, nil
}
