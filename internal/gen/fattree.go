// Package gen generates synthetic topologies: FatTree fabrics (FT-m,
// paper §7.2) and WAN-like multi-AS networks standing in for the paper's
// proprietary production networks N0/N1/N2/WAN (Table 3) — see DESIGN.md's
// substitution notes.
package gen

import (
	"fmt"
	"net/netip"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/topo"
)

// FatTreeSpec describes an FT-m network.
type FatTreeSpec struct {
	// Pods is m: the number of pods (must be even, >= 2).
	Pods int
	// CoreCapacity is the aggregation-core link bandwidth in Gbps
	// (paper: 100).
	CoreCapacity float64
	// EdgeCapacity is the aggregation-edge link bandwidth in Gbps
	// (paper: 40).
	EdgeCapacity float64
}

// FatTree builds the FT-m topology of §7.2: (m/2)^2 core routers and m
// pods of m/2 aggregation + m/2 edge routers, every router in its own AS
// running eBGP (auto-meshed), each edge router originating one /24.
func FatTree(spec FatTreeSpec) (*config.Spec, error) {
	m := spec.Pods
	if m < 2 || m%2 != 0 {
		return nil, fmt.Errorf("gen: FatTree pods must be even and >= 2, got %d", m)
	}
	if spec.CoreCapacity == 0 {
		spec.CoreCapacity = 100
	}
	if spec.EdgeCapacity == 0 {
		spec.EdgeCapacity = 40
	}
	half := m / 2
	b := topo.NewBuilder()
	cfgs := make(config.Configs)

	asn := uint32(65000)
	nextAS := func() uint32 { asn++; return asn }

	coreName := func(i, j int) string { return fmt.Sprintf("core-%d-%d", i, j) }
	aggName := func(p, j int) string { return fmt.Sprintf("agg-%d-%d", p, j) }
	edgeName := func(p, j int) string { return fmt.Sprintf("edge-%d-%d", p, j) }

	for i := 0; i < half; i++ {
		for j := 0; j < half; j++ {
			b.AddRouter(coreName(i, j), nextAS())
		}
	}
	var edges []string
	for p := 0; p < m; p++ {
		for j := 0; j < half; j++ {
			b.AddRouter(aggName(p, j), nextAS())
		}
		for j := 0; j < half; j++ {
			name := edgeName(p, j)
			b.AddRouter(name, nextAS())
			edges = append(edges, name)
			// Each edge router originates one /24.
			pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(p), byte(j), 0}), 24)
			cfgs.Get(name).Networks = append(cfgs.Get(name).Networks, pfx)
		}
	}
	for p := 0; p < m; p++ {
		for a := 0; a < half; a++ {
			for e := 0; e < half; e++ {
				b.AddLink(aggName(p, a), edgeName(p, e),
					topo.WithCost(10), topo.WithCapacity(spec.EdgeCapacity))
			}
			// Aggregation router a connects to core row a.
			for c := 0; c < half; c++ {
				b.AddLink(aggName(p, a), coreName(a, c),
					topo.WithCost(10), topo.WithCapacity(spec.CoreCapacity))
			}
		}
	}
	net, err := b.Build()
	if err != nil {
		return nil, err
	}
	config.EBGPSessionsFullMesh(net, cfgs)
	if err := cfgs.Validate(net); err != nil {
		return nil, err
	}
	return &config.Spec{Net: net, Configs: cfgs, K: 2, Mode: topo.FailLinks}, nil
}

// EdgeRouters returns the edge router names of an FT spec in generation
// order, for pairwise flow construction.
func EdgeRouters(spec *config.Spec) []string {
	var out []string
	for _, r := range spec.Net.Routers {
		if len(r.Name) >= 4 && r.Name[:4] == "edge" {
			out = append(out, r.Name)
		}
	}
	return out
}

// EdgePrefix returns the /24 originated by the named edge router.
func EdgePrefix(spec *config.Spec, name string) (netip.Prefix, bool) {
	rc, ok := spec.Configs[name]
	if !ok || len(rc.Networks) == 0 {
		return netip.Prefix{}, false
	}
	return rc.Networks[0], true
}
