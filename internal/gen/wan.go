package gen

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/topo"
)

// WANSpec describes a synthetic WAN-like network: multiple data-center
// ASes (iBGP over IS-IS internally) interconnected by a backbone of
// inter-AS eBGP links, a fraction of routers carrying SR policies —
// structurally the paper's production setting, at the router/link counts
// of Table 3.
type WANSpec struct {
	Routers int
	Links   int
	// Prefixes is the number of destination prefixes originated across
	// the network. The paper's WAN has millions; flow destinations here
	// are drawn from this (scaled) set.
	Prefixes int
	// SRPolicyFraction is the fraction of routers carrying one SR
	// policy (weighted two-path steering to a remote loopback).
	SRPolicyFraction float64
	// RoutersPerAS controls AS sizing (default 40).
	RoutersPerAS int
	// Seed makes generation deterministic.
	Seed int64
}

// Table3 returns the generator specs for the paper's four networks.
func Table3() map[string]WANSpec {
	return map[string]WANSpec{
		"N0":  {Routers: 100, Links: 200, Prefixes: 60, SRPolicyFraction: 0.1, Seed: 10},
		"N1":  {Routers: 200, Links: 500, Prefixes: 120, SRPolicyFraction: 0.1, Seed: 11},
		"N2":  {Routers: 500, Links: 2500, Prefixes: 200, SRPolicyFraction: 0.1, Seed: 12},
		"WAN": {Routers: 1000, Links: 4000, Prefixes: 300, SRPolicyFraction: 0.1, Seed: 13},
	}
}

// WAN generates a synthetic WAN-like network.
func WAN(ws WANSpec) (*config.Spec, error) {
	if ws.Routers < 4 {
		return nil, fmt.Errorf("gen: WAN needs >= 4 routers")
	}
	if ws.RoutersPerAS <= 0 {
		ws.RoutersPerAS = 40
	}
	if ws.Prefixes <= 0 {
		ws.Prefixes = ws.Routers / 2
	}
	rng := rand.New(rand.NewSource(ws.Seed))
	nAS := ws.Routers / ws.RoutersPerAS
	if nAS < 2 {
		nAS = 2
	}

	b := topo.NewBuilder()
	cfgs := make(config.Configs)
	names := make([]string, ws.Routers)
	asOf := make([]int, ws.Routers)
	var perAS [][]int
	perAS = make([][]int, nAS)
	for i := 0; i < ws.Routers; i++ {
		as := i % nAS
		names[i] = fmt.Sprintf("r%d-as%d", i, as+1)
		asOf[i] = as
		perAS[as] = append(perAS[as], i)
		b.AddRouter(names[i], uint32(as+1))
	}

	type pair struct{ a, b int }
	seen := make(map[pair]bool)
	addLink := func(i, j int, capGbps float64) bool {
		if i == j {
			return false
		}
		if i > j {
			i, j = j, i
		}
		if seen[pair{i, j}] {
			return false
		}
		seen[pair{i, j}] = true
		cost := int64(10 * (1 + rng.Intn(5)))
		b.AddLink(names[i], names[j], topo.WithCost(cost), topo.WithCapacity(capGbps))
		return true
	}

	links := 0
	// Intra-AS ring: guarantees IGP connectivity with redundancy.
	for as := 0; as < nAS; as++ {
		mem := perAS[as]
		for idx := range mem {
			if addLink(mem[idx], mem[(idx+1)%len(mem)], 400) {
				links++
			}
		}
	}
	// Backbone ring across ASes: the first router of each AS links to
	// the next AS's first router, guaranteeing global connectivity.
	for as := 0; as < nAS; as++ {
		if addLink(perAS[as][0], perAS[(as+1)%nAS][0], 400) {
			links++
		}
	}
	// Random chords (mix of intra- and inter-AS) up to the target count.
	for attempts := 0; links < ws.Links && attempts < ws.Links*50; attempts++ {
		i, j := rng.Intn(ws.Routers), rng.Intn(ws.Routers)
		capGbps := 100.0
		if rng.Intn(3) == 0 {
			capGbps = 400
		}
		if addLink(i, j, capGbps) {
			links++
		}
	}

	net, err := b.Build()
	if err != nil {
		return nil, err
	}

	// Prefix origination spread over routers.
	for p := 0; p < ws.Prefixes; p++ {
		owner := rng.Intn(ws.Routers)
		pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, byte(p >> 8), byte(p), 0}), 24)
		cfgs.Get(names[owner]).Networks = append(cfgs.Get(names[owner]).Networks, pfx)
	}

	config.EBGPSessionsFullMesh(net, cfgs)

	// SR policies: steer DSCP-5 traffic for a remote same-AS loopback
	// over two weighted paths through random intermediate segments.
	nPol := int(float64(ws.Routers) * ws.SRPolicyFraction)
	for p := 0; p < nPol; p++ {
		riIdx := rng.Intn(ws.Routers)
		mem := perAS[asOf[riIdx]]
		if len(mem) < 3 {
			continue
		}
		r := net.Routers[riIdx]
		endIdx := mem[rng.Intn(len(mem))]
		midIdx := mem[rng.Intn(len(mem))]
		if endIdx == riIdx || midIdx == riIdx || midIdx == endIdx {
			continue
		}
		end := net.Routers[endIdx]
		mid := net.Routers[midIdx]
		pol := config.SRPolicy{
			Endpoint:  netip.PrefixFrom(end.Loopback, 32),
			MatchDSCP: 5,
			Paths: []config.SRPath{
				{Segments: []netip.Addr{end.Loopback}, Weight: 75},
				{Segments: []netip.Addr{mid.Loopback, end.Loopback}, Weight: 25},
			},
		}
		cfgs.Get(r.Name).SRPolicies = append(cfgs.Get(r.Name).SRPolicies, pol)
	}

	if err := cfgs.Validate(net); err != nil {
		return nil, err
	}
	return &config.Spec{Net: net, Configs: cfgs, K: 1, Mode: topo.FailLinks}, nil
}

// Prefixes lists every prefix originated anywhere in the spec, in a
// fixed order. Configs is a map; without the sort the list order — and
// any workload drawn from it with a seeded RNG — would change from one
// process to the next.
func Prefixes(spec *config.Spec) []netip.Prefix {
	var out []netip.Prefix
	for _, rc := range spec.Configs {
		out = append(out, rc.Networks...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Addr() != b.Addr() {
			return a.Addr().Less(b.Addr())
		}
		return a.Bits() < b.Bits()
	})
	return out
}
