package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/paperex"
	"github.com/yu-verify/yu/internal/topo"
)


func mustSpec(t testing.TB, load func() (*config.Spec, error)) *config.Spec {
	t.Helper()
	spec, err := load()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf, map[string]*config.Spec{"motivating": mustSpec(t, paperex.MotivatingSpec)})
	out := buf.String()
	for _, want := range []string{"QARC", "Jingubang", "YU", "faithful on motivating: false"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable3QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the full ladder")
	}
	var buf bytes.Buffer
	if err := Table3(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, net := range []string{"N0", "N1", "N2", "WAN"} {
		if !strings.Contains(out, net) {
			t.Errorf("Table3 missing %s:\n%s", net, out)
		}
	}
}

// TestFig15Tiny runs the Fig 15/16 machinery at its smallest point to
// cover the harness code path.
func TestFig15Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real verifications")
	}
	var buf bytes.Buffer
	if err := Fig15and16(&buf, Quick, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "YU w/o KREDUCE") || !strings.Contains(out, "QARC") {
		t.Errorf("Fig15 output malformed:\n%s", out)
	}
	// The reduction must show a node-count advantage at every row.
	if !strings.Contains(out, "flows") {
		t.Errorf("missing header:\n%s", out)
	}
}

func TestFmtDur(t *testing.T) {
	cases := []struct {
		d    time.Duration
		to   bool
		want string
	}{
		{90 * time.Second, false, "1.5m"},
		{1500 * time.Millisecond, false, "1.50s"},
		{250 * time.Microsecond, false, "0.2ms"},
		{time.Minute, true, "> 1m0s (timeout)"},
	}
	for _, c := range cases {
		if got := fmtDur(c.d, c.to); got != c.want {
			t.Errorf("fmtDur(%v,%v) = %q, want %q", c.d, c.to, got, c.want)
		}
	}
}

func TestWANCasesLadder(t *testing.T) {
	quick := wanCases(Quick)
	full := wanCases(Full)
	if len(quick) != 4 || len(full) != 4 {
		t.Fatal("expected the N0..WAN ladder")
	}
	if full[3].ws.Routers != 1000 || full[3].ws.Links != 4000 {
		t.Errorf("full WAN = %+v, want Table 3 values", full[3].ws)
	}
	for i := 1; i < 4; i++ {
		if quick[i].ws.Routers < quick[i-1].ws.Routers {
			t.Error("ladder must be increasing")
		}
	}
	_ = topo.FailLinks
}
