package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/core"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/routesim"
	"github.com/yu-verify/yu/internal/topo"
)

// scalingRun is one measured verification with the per-phase breakdown
// and scheduler statistics the scaling sweep records.
type scalingRun struct {
	routeTime time.Duration
	execTime  time.Duration
	checkTime time.Duration
	executed  int
	viols     int
	nodes     int
	sched     core.SchedStats
	hints     map[string]float64
}

// runScaling executes the pipeline once at a given worker count, timing
// route simulation, symbolic execution (the work-stealing pool), and
// checking (the link-cursor pool) separately. hints, when non-nil,
// warm-starts the scheduler's cost model.
func runScaling(spec *config.Spec, flows []topo.Flow, k, workers int, hints map[string]float64) (*scalingRun, error) {
	r := &scalingRun{}
	m := mtbdd.New()
	fv := routesim.NewFailVars(m, spec.Net, topo.FailLinks, k)
	start := time.Now()
	rs, err := routesim.Run(fv, spec.Configs)
	if err != nil {
		return nil, err
	}
	r.routeTime = time.Since(start)
	eng := core.NewEngine(rs, core.Options{CostHints: hints})
	start = time.Now()
	ver := core.NewParallelVerifier(eng, flows, workers)
	r.execTime = time.Since(start)
	start = time.Now()
	rep, err := ver.Run(nil, nil, 1.0)
	r.checkTime = time.Since(start)
	if err != nil {
		return nil, err
	}
	r.executed = rep.FlowsExecuted
	r.viols = len(rep.Violations)
	r.nodes = m.Stats().Live
	r.sched = ver.SchedStats()
	r.hints = ver.CostHints()
	return r, nil
}

// ScalingSweep is the multicore scaling experiment: workers × k on the
// medium WAN cases, with the per-phase breakdown (route simulation is
// worker-independent; execution and checking are the phases the scheduler
// parallelizes). The workers=1 round runs first and its measured per-class
// costs warm-start the cost model of every workers>1 round — the sweep
// exercises the persisted-hints path exactly as a production rerun would.
//
// Speedup is computed over exec+check only (route simulation is shared
// and sequential by design). Every record carries GOMAXPROCS: on a host
// with fewer cores than workers the sweep measures scheduling overhead,
// not speedup, and the gate in cmd/yubench skips itself accordingly.
func ScalingSweep(w io.Writer, scale Scale, workersList []int) ([]BenchRecord, error) {
	procs := runtime.GOMAXPROCS(0)
	all := wanCases(scale)
	// Quick scale: the small WAN carries the k dimension (k=2 on the
	// medium case runs minutes per row single-threaded — too slow for a
	// CI smoke), the medium WAN anchors the worker dimension at k=1.
	// Full scale: the paper-scale N1/N2 with their own budgets.
	type sweepCase struct {
		c  netCase
		ks []int
	}
	sweeps := []sweepCase{
		{all[0], []int{1, 2}}, // N0
		{all[1], []int{1}},    // N1
	}
	if scale == Full {
		sweeps = []sweepCase{{all[1], all[1].ks}, {all[2], all[2].ks}} // N1, N2
	}
	var records []BenchRecord
	for _, sc := range sweeps {
		c, ks := sc.c, sc.ks
		spec, flows, err := buildWAN(c)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "Scaling sweep: %s (%d routers, %d links), %d flows, GOMAXPROCS=%d\n",
			c.name, spec.Net.NumRouters(), spec.Net.NumLinks(), len(flows), procs)
		fmt.Fprintf(w, "%-4s %-8s %12s %12s %12s %8s %8s %9s\n",
			"k", "workers", "routesim", "exec", "check", "steals", "chunks", "speedup")
		for _, k := range ks {
			var hints map[string]float64
			var base time.Duration
			for _, workers := range workersList {
				run, err := runScaling(spec, flows, k, workers, hints)
				if err != nil {
					return nil, err
				}
				if hints == nil {
					hints = run.hints
				}
				execCheck := run.execTime + run.checkTime
				if base == 0 {
					base = execCheck
				}
				speedup := float64(base) / float64(execCheck)
				records = append(records, BenchRecord{
					Experiment:      "scaling",
					Case:            c.name,
					K:               k,
					Mode:            topo.FailLinks.String(),
					Workers:         workers,
					GOMAXPROCS:      procs,
					WallMS:          float64((run.routeTime + execCheck).Microseconds()) / 1000,
					RouteSimMS:      float64(run.routeTime.Microseconds()) / 1000,
					ExecMS:          float64(run.execTime.Microseconds()) / 1000,
					CheckMS:         float64(run.checkTime.Microseconds()) / 1000,
					ExecCheckMS:     float64(execCheck.Microseconds()) / 1000,
					Steals:          run.sched.Steals,
					PeakUniqueNodes: run.nodes,
					FlowsExecuted:   run.executed,
					Violations:      run.viols,
					Speedup:         speedup,
				})
				fmt.Fprintf(w, "%-4d %-8d %12s %12s %12s %8d %8d %8.2fx\n",
					k, workers, fmtDur(run.routeTime, false), fmtDur(run.execTime, false),
					fmtDur(run.checkTime, false), run.sched.Steals, run.sched.Chunks, speedup)
			}
		}
	}
	return records, nil
}

// CheckScalingSpeedup is the CI gate over a scaling sweep's records: on a
// host with at least four cores, the 4-worker exec+check time must be at
// most 90% of the 1-worker time on the heaviest (case, k) pair that has
// both rows — the heaviest, because on tiny rows (hundreds of ms) fixed
// scheduling overhead can mask a real speedup and make the gate flaky.
// On a smaller host the gate reports itself skipped (there is no
// parallelism to measure) and returns nil.
func CheckScalingSpeedup(w io.Writer, records []BenchRecord) error {
	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		fmt.Fprintf(w, "scaling gate: skipped (GOMAXPROCS=%d < 4; no parallelism to measure)\n", procs)
		return nil
	}
	type key struct {
		c string
		k int
	}
	base := make(map[key]float64)
	quad := make(map[key]float64)
	for _, r := range records {
		if r.Experiment != "scaling" {
			continue
		}
		switch r.Workers {
		case 1:
			base[key{r.Case, r.K}] = r.ExecCheckMS
		case 4:
			quad[key{r.Case, r.K}] = r.ExecCheckMS
		}
	}
	var heaviest key
	b := -1.0
	for kk, v := range base {
		if _, ok := quad[kk]; ok && v > b {
			heaviest, b = kk, v
		}
	}
	if b < 0 {
		return fmt.Errorf("scaling gate: sweep has no 1-worker/4-worker row pair")
	}
	q := quad[heaviest]
	if q > 0.9*b {
		return fmt.Errorf("scaling gate: %s k=%d: 4-worker exec+check %.1fms > 90%% of 1-worker %.1fms",
			heaviest.c, heaviest.k, q, b)
	}
	fmt.Fprintf(w, "scaling gate: %s k=%d ok (4-worker %.1fms vs 1-worker %.1fms, GOMAXPROCS=%d)\n",
		heaviest.c, heaviest.k, q, b, procs)
	return nil
}
