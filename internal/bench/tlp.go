package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/gen"
	"github.com/yu-verify/yu/internal/topo"
)

// tlpPortfolio builds a size-property portfolio over the generated
// network. Property 0 is always the network-wide max-utilization bound —
// one property that aggregates and scans every directed link — so the
// subject coverage is identical at every size and portfolio size is the
// only variable. The remaining properties cycle the other kinds
// (unconditional load bound, single-link utilization, delivered traffic,
// conditional load bound) across the links, piling many properties onto
// subjects the utilization property already scans — the shape the batch
// engine's scan sharing is designed for.
func tlpPortfolio(spec *yu.Network, size int) []topo.TLProp {
	net := spec.Topology()
	prefixes := gen.Prefixes(spec.Spec())
	props := make([]topo.TLProp, 0, size)
	props = append(props, topo.TLProp{Kind: topo.TLPUtil, AllLinks: true, Factor: 1.0})
	for i := 0; len(props) < size; i++ {
		link := topo.LinkID(i % net.NumLinks())
		switch i % 4 {
		case 0:
			props = append(props, topo.TLProp{
				Kind: topo.TLPLinkLoad, Link: link, Max: float64(50 + i%200),
			})
		case 1:
			props = append(props, topo.TLProp{
				Kind: topo.TLPUtil, Link: link, Factor: 0.5 + float64(i%50)/100,
			})
		case 2:
			props = append(props, topo.TLProp{
				Kind: topo.TLPDelivered, Prefix: prefixes[i%len(prefixes)],
				Min: float64(i % 10), Max: math.Inf(1),
			})
		case 3:
			props = append(props, topo.TLProp{
				Kind: topo.TLPLinkLoad, Link: link, Max: float64(80 + i%150),
				CondSet: true, CondLink: topo.LinkID((i + 1) % net.NumLinks()),
			})
		}
	}
	return props
}

// TLPSweep measures batch portfolio evaluation against portfolio size on
// the medium WAN case. The size-1 portfolio is the network-wide
// max-utilization property, which already aggregates and terminal-scans
// every directed link, so the larger portfolios vary only the property
// count over the same subjects: one symbolic run serves them all, each
// directed link scanned once however many properties ride on it, and
// wall time stays nearly flat in the property count. CheckTLPSharing
// gates CI on exactly that flatness.
func TLPSweep(w io.Writer, scale Scale, sizes []int) ([]BenchRecord, error) {
	c := wanCases(scale)[1] // N1: the medium WAN
	spec, flows, err := buildWAN(c)
	if err != nil {
		return nil, err
	}
	n := yu.FromSpec(spec)
	k := c.ks[0]
	fmt.Fprintf(w, "TLP portfolio sweep: %s (%d routers, %d links), %d flows, k=%d link failures\n",
		c.name, spec.Net.NumRouters(), spec.Net.NumLinks(), len(flows), k)
	fmt.Fprintf(w, "%-8s %14s %12s %12s %12s %10s %9s\n",
		"props", "wall", "link scans", "restr scans", "dlvd scans", "violated", "vs 1")
	var records []BenchRecord
	var base time.Duration
	for _, size := range sizes {
		props := tlpPortfolio(n, size)
		reg := yu.NewMetrics()
		start := time.Now()
		res, err := n.VerifyPortfolio(props, yu.VerifyOptions{
			K: k, Mode: topo.FailLinks, ModeSet: true,
			Flows: flows, Workers: 1, Obs: reg,
		})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if base == 0 {
			base = elapsed
		}
		ratio := float64(elapsed) / float64(base)
		records = append(records, BenchRecord{
			Experiment: "tlp",
			Case:       c.name,
			K:          k,
			Mode:       topo.FailLinks.String(),
			Workers:    1,
			Properties: size,
			WallMS:     float64(elapsed.Microseconds()) / 1000,
			Violations: res.Stats.Violations,
			Speedup:    float64(base) / float64(elapsed),
			Metrics:    reg.Snapshot(),
		})
		fmt.Fprintf(w, "%-8d %14s %12d %12d %12d %10d %8.2fx\n",
			size, fmtDur(elapsed, false), res.Stats.LinkScans, res.Stats.RestrictScans,
			res.Stats.DeliveredScans, res.Stats.Violations, ratio)
	}
	return records, nil
}

// CheckTLPSharing is the CI gate over a TLP sweep's records: the largest
// portfolio must finish in under twice the smallest's wall time. With
// scan sharing the marginal property costs a plan entry and a few
// terminal comparisons, so even 1000 properties ride the one symbolic
// run; without sharing the largest portfolio would re-scan per property
// and blow far past 2x.
func CheckTLPSharing(w io.Writer, records []BenchRecord) error {
	small, large := BenchRecord{Properties: math.MaxInt}, BenchRecord{Properties: -1}
	for _, r := range records {
		if r.Experiment != "tlp" {
			continue
		}
		if r.Properties < small.Properties {
			small = r
		}
		if r.Properties > large.Properties {
			large = r
		}
	}
	if large.Properties < 0 || small.Properties == large.Properties {
		return fmt.Errorf("tlp gate: sweep has fewer than two portfolio sizes")
	}
	if large.WallMS >= 2*small.WallMS {
		return fmt.Errorf("tlp gate: %d properties took %.1fms, >= 2x the %d-property run (%.1fms) — scan sharing regressed",
			large.Properties, large.WallMS, small.Properties, small.WallMS)
	}
	fmt.Fprintf(w, "tlp gate: ok (%d props %.1fms vs %d props %.1fms, %.2fx)\n",
		large.Properties, large.WallMS, small.Properties, small.WallMS,
		large.WallMS/small.WallMS)
	return nil
}
