package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/yu-verify/yu/internal/core"
	"github.com/yu-verify/yu/internal/obs"
	"github.com/yu-verify/yu/internal/topo"
)

// OverheadSweep measures what the observability layer costs: the N0 case
// is verified repeatedly with no registry (the exact uninstrumented
// path — every obs call is a nil-receiver no-op) and with a live
// registry, interleaved so thermal and cache drift hit both sides
// equally. Best-of-rounds wall times are compared, the instrumented
// run's registry snapshot is attached to its record, and the delta is
// reported as overhead_pct — the number the ≤2% budget in DESIGN.md §11
// is checked against.
func OverheadSweep(w io.Writer, scale Scale, rounds int) ([]BenchRecord, error) {
	if rounds < 1 {
		rounds = 1
	}
	c := wanCases(scale)[0] // N0
	spec, flows, err := buildWAN(c)
	if err != nil {
		return nil, err
	}
	k := c.ks[0]
	fmt.Fprintf(w, "Instrumentation overhead: %s (%d routers, %d links), %d flows, k=%d link failures, best of %d\n",
		c.name, spec.Net.NumRouters(), spec.Net.NumLinks(), len(flows), k, rounds)

	measure := func(reg *obs.Registry) (*YURun, error) {
		return runYU(spec, flows, k, topo.FailLinks, core.Options{Obs: reg}, 1.0)
	}

	var bare, inst time.Duration
	var bareRun, instRun *YURun
	var snap *obs.Snapshot
	for r := 0; r < rounds; r++ {
		br, err := measure(nil)
		if err != nil {
			return nil, err
		}
		if bare == 0 || br.Elapsed < bare {
			bare, bareRun = br.Elapsed, br
		}
		reg := obs.New()
		ir, err := measure(reg)
		if err != nil {
			return nil, err
		}
		if inst == 0 || ir.Elapsed < inst {
			inst, instRun = ir.Elapsed, ir
			snap = reg.Snapshot()
		}
	}
	if bareRun.Violations != instRun.Violations || bareRun.Executed != instRun.Executed {
		return nil, fmt.Errorf("instrumented run diverged: %d/%d violations, %d/%d flows",
			bareRun.Violations, instRun.Violations, bareRun.Executed, instRun.Executed)
	}

	overheadPct := 100 * (float64(inst) - float64(bare)) / float64(bare)
	fmt.Fprintf(w, "%-14s %14s\n", "bare", fmtDur(bare, false))
	fmt.Fprintf(w, "%-14s %14s  (%+.2f%%)\n", "instrumented", fmtDur(inst, false), overheadPct)

	mk := func(name string, run *YURun, d time.Duration) BenchRecord {
		return BenchRecord{
			Experiment:      "overhead",
			Case:            name,
			K:               k,
			Mode:            topo.FailLinks.String(),
			Workers:         1,
			WallMS:          float64(d.Microseconds()) / 1000,
			RouteSimMS:      float64(run.RouteTime.Microseconds()) / 1000,
			PeakUniqueNodes: run.MTBDDNodes,
			FlowsExecuted:   run.Executed,
			Violations:      run.Violations,
			Speedup:         1,
		}
	}
	bareRec := mk(c.name+"-bare", bareRun, bare)
	instRec := mk(c.name+"-instrumented", instRun, inst)
	instRec.OverheadPct = overheadPct
	instRec.Metrics = snap
	return []BenchRecord{bareRec, instRec}, nil
}
