// Package bench implements the experiment harness regenerating every
// table and figure of the paper's evaluation (§7). Each runner prints the
// same rows/series the paper reports; cmd/yubench drives them and
// bench_test.go exposes representative points as testing.B benchmarks.
//
// Absolute numbers differ from the paper (synthetic topologies, scaled
// flow counts, one goroutine instead of a 96-core server); the reproduced
// claims are the *shapes*: who wins, by roughly what factor, and where the
// crossovers fall. EXPERIMENTS.md records paper-vs-measured values.
package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/yu-verify/yu/internal/concrete"
	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/core"
	"github.com/yu-verify/yu/internal/flowgen"
	"github.com/yu-verify/yu/internal/gen"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/routesim"
	"github.com/yu-verify/yu/internal/spath"
	"github.com/yu-verify/yu/internal/topo"
)

// Scale selects experiment sizing.
type Scale int

const (
	// Quick shrinks networks and sweeps so the full suite finishes in a
	// few minutes on a laptop.
	Quick Scale = iota
	// Full uses the Table 3 router/link counts and the paper's sweep
	// ranges (hours of single-threaded compute for the largest cells).
	Full
)

// netCase describes one benchmark network with its workload and budget.
type netCase struct {
	name  string
	ws    gen.WANSpec
	flows int
	ks    []int
}

// wanCases returns the N0/N1/N2/WAN ladder at the chosen scale. Flow
// counts are scaled from the paper's 10^7-10^9 (see DESIGN.md); global
// flow equivalence makes execution cost depend on distinct behaviors, not
// raw counts, which Fig 12 demonstrates explicitly.
func wanCases(scale Scale) []netCase {
	if scale == Full {
		return []netCase{
			{"N0", gen.Table3()["N0"], 50000, []int{1, 2, 3, 4}},
			{"N1", gen.Table3()["N1"], 100000, []int{1, 2, 3}},
			{"N2", gen.Table3()["N2"], 200000, []int{1, 2}},
			{"WAN", gen.Table3()["WAN"], 200000, []int{1, 2}},
		}
	}
	return []netCase{
		{"N0", gen.WANSpec{Routers: 100, Links: 200, Prefixes: 60, SRPolicyFraction: 0.1, Seed: 10}, 5000, []int{1, 2}},
		{"N1", gen.WANSpec{Routers: 200, Links: 500, Prefixes: 100, SRPolicyFraction: 0.1, Seed: 11}, 10000, []int{1}},
		{"N2", gen.WANSpec{Routers: 500, Links: 2500, Prefixes: 120, SRPolicyFraction: 0.1, Seed: 12}, 20000, []int{1}},
		{"WAN", gen.WANSpec{Routers: 1000, Links: 4000, Prefixes: 150, SRPolicyFraction: 0.1, Seed: 13}, 20000, []int{1}},
	}
}

// buildWAN generates a WAN case and its workload.
func buildWAN(c netCase) (*config.Spec, []topo.Flow, error) {
	spec, err := gen.WAN(c.ws)
	if err != nil {
		return nil, nil, err
	}
	flows, err := flowgen.Random(spec, flowgen.RandomSpec{
		Count: c.flows, DSCP5Fraction: 0.3, DistinctDstPerPrefix: 4, Seed: c.ws.Seed + 100,
	})
	if err != nil {
		return nil, nil, err
	}
	return spec, flows, nil
}

// YURun holds the measurements of one symbolic verification run.
type YURun struct {
	Elapsed    time.Duration
	RouteTime  time.Duration
	Violations int
	MTBDDNodes int
	Executed   int
	LinkStats  []core.LinkCheckStat
	// Created counts every node the primary manager ever hash-consed —
	// the allocation-pressure metric the kernels sweep compares.
	Created int
	// FusionCuts counts subproblems the fused kernels collapsed to a
	// terminal at budget exhaustion (0 for the NoFuse pipeline).
	FusionCuts uint64
}

// runYU executes the full YU pipeline sequentially.
func runYU(spec *config.Spec, flows []topo.Flow, k int, mode topo.FailureMode, opts core.Options, overload float64) (*YURun, error) {
	return runYUWorkers(spec, flows, k, mode, opts, overload, 1)
}

// runYUWorkers executes the full YU pipeline with the given parallelism
// degree (1 = the exact legacy sequential path).
func runYUWorkers(spec *config.Spec, flows []topo.Flow, k int, mode topo.FailureMode, opts core.Options, overload float64, workers int) (*YURun, error) {
	return runYUVariant(spec, flows, k, mode, opts, overload, workers, false)
}

// runYUVariant is runYUWorkers with the fused-kernel ablation switch:
// noFuse routes every Reduce(op(...)) call site through the composed
// build-then-reduce form instead of the fused kernels, the pre-fusion
// pipeline the kernels sweep baselines against.
func runYUVariant(spec *config.Spec, flows []topo.Flow, k int, mode topo.FailureMode, opts core.Options, overload float64, workers int, noFuse bool) (*YURun, error) {
	start := time.Now()
	m := mtbdd.New()
	budget := k
	if opts.CheckK > 0 {
		budget = -1 // "w/o MTBDD reduction" ablation
	}
	fv := routesim.NewFailVars(m, spec.Net, mode, budget)
	fv.NoFuse = noFuse
	rs, err := routesim.Run(fv, spec.Configs)
	if err != nil {
		return nil, err
	}
	routeTime := time.Since(start)
	opts.Obs.AddPhase("routesim", routeTime)
	eng := core.NewEngine(rs, opts)
	execSpan := opts.Obs.Span("execute")
	ver := core.NewParallelVerifier(eng, flows, workers)
	execSpan.End()
	checkSpan := opts.Obs.Span("check")
	rep, err := ver.Run(nil, nil, overload)
	checkSpan.End()
	core.RecordManager(opts.Obs, "primary", m)
	if err != nil {
		return nil, err
	}
	st := m.Stats()
	return &YURun{
		Elapsed:    time.Since(start),
		RouteTime:  routeTime,
		Violations: len(rep.Violations),
		// Peak unique-table size: the Fig 16 "MTBDD nodes generated"
		// metric, independent of managed-GC timing.
		MTBDDNodes: st.PeakUnique,
		Executed:   rep.FlowsExecuted,
		LinkStats:  rep.LinkStats,
		Created:    int(st.Created),
		FusionCuts: st.FusionCuts,
	}, nil
}

// fmtDur renders durations compactly for tables.
func fmtDur(d time.Duration, timedOut bool) string {
	if timedOut {
		return "> " + d.Truncate(time.Second).String() + " (timeout)"
	}
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	}
}

// Table3 prints the network-characteristics table (paper Table 3) for the
// generated stand-in networks.
func Table3(w io.Writer, scale Scale) error {
	fmt.Fprintln(w, "Table 3: network characteristics (synthetic stand-ins; paper values in DESIGN.md)")
	fmt.Fprintf(w, "%-6s %9s %8s %10s %10s\n", "net", "routers", "links", "prefixes", "flows")
	for _, c := range wanCases(scale) {
		spec, flows, err := buildWAN(c)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6s %9d %8d %10d %10d\n",
			c.name, spec.Net.NumRouters(), spec.Net.NumLinks(), len(gen.Prefixes(spec)), len(flows))
	}
	return nil
}

// Fig11 prints verification time for k-link failures across the network
// ladder, YU vs the Jingubang-style enumerating baseline (paper Fig 11).
// Fig17 is the same series under router failures.
func Fig11(w io.Writer, scale Scale, mode topo.FailureMode, baselineBudget time.Duration) error {
	title := "Fig 11: k-link-failure verification time"
	if mode == topo.FailRouters {
		title = "Fig 17: k-router-failure verification time"
	}
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-6s %3s %14s %20s %12s\n", "net", "k", "YU", "Jingubang(enum)", "YU viol")
	for _, c := range wanCases(scale) {
		spec, flows, err := buildWAN(c)
		if err != nil {
			return err
		}
		for _, k := range c.ks {
			run, err := runYU(spec, flows, k, mode, core.Options{}, 1.0)
			if err != nil {
				return err
			}
			// The enumerating baseline is only feasible on the smallest
			// network and budget (the paper, too, could only run it on
			// N0 with k<=2).
			enumStr := "-"
			if c.name == "N0" && k <= 2 {
				sim := concrete.NewSim(spec.Net, spec.Configs)
				es := time.Now()
				ectx, ecancel := context.WithTimeout(context.Background(), baselineBudget)
				erep := sim.VerifyKFailures(flows, k, mode, concrete.EnumOptions{
					OverloadFactor: 1.0,
					Incremental:    true,
					Ctx:            ectx,
				})
				ecancel()
				enumStr = fmtDur(time.Since(es), erep.TimedOut)
			}
			fmt.Fprintf(w, "%-6s %3d %14s %20s %12d\n",
				c.name, k, fmtDur(run.Elapsed, false), enumStr, run.Violations)
		}
	}
	return nil
}

// Fig12 prints WAN verification time against the number of input flows
// for k in {1,2} under link and router failures (paper Fig 12): thanks to
// global and link-local flow equivalence the curve is nearly flat.
func Fig12(w io.Writer, scale Scale) error {
	c := wanCases(scale)[0] // N0-sized at Quick
	if scale == Full {
		c = wanCases(scale)[3] // the real WAN
	}
	spec, err := gen.WAN(c.ws)
	if err != nil {
		return err
	}
	counts := []int{c.flows / 8, c.flows / 4, c.flows / 2, c.flows}
	ks := []int{1}
	if scale == Full {
		ks = []int{1, 2}
	}
	fmt.Fprintln(w, "Fig 12: verification time vs number of flows")
	fmt.Fprintf(w, "%-10s %3s %8s %14s %14s %10s\n", "mode", "k", "flows", "time", "exec'd flows", "nodes")
	for _, mode := range []topo.FailureMode{topo.FailLinks, topo.FailRouters} {
		for _, k := range ks {
			for _, n := range counts {
				flows, err := flowgen.Random(spec, flowgen.RandomSpec{
					Count: n, DSCP5Fraction: 0.3, DistinctDstPerPrefix: 4, Seed: c.ws.Seed + 100,
				})
				if err != nil {
					return err
				}
				run, err := runYU(spec, flows, k, mode, core.Options{}, 1.0)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-10s %3d %8d %14s %14d %10d\n",
					mode, k, n, fmtDur(run.Elapsed, false), run.Executed, run.MTBDDNodes)
			}
		}
	}
	return nil
}

// percentile returns the p-quantile (0..1) of sorted data.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// Fig13and14 prints the per-link TLP verification time and flow-count
// distributions with and without link-local equivalence (paper Figs 13
// and 14).
func Fig13and14(w io.Writer, scale Scale) error {
	c := wanCases(scale)[0]
	spec, flows, err := buildWAN(c)
	if err != nil {
		return err
	}
	type dist struct {
		times   []float64 // ms per link
		classes []float64 // aggregation units per link
	}
	run := func(disable bool) (*dist, error) {
		// "w/o equiv" disables both global and link-local equivalence:
		// the paper's baseline aggregates raw, unmerged flows.
		r, err := runYU(spec, flows, 1, topo.FailLinks, core.Options{
			DisableLinkLocalEquiv:   disable,
			DisableGlobalEquiv:      disable,
			DisableEarlyTermination: true, // isolate the equivalence effect
		}, 1.0)
		if err != nil {
			return nil, err
		}
		d := &dist{}
		for _, s := range r.LinkStats {
			if s.Flows == 0 {
				continue
			}
			d.times = append(d.times, float64(s.Elapsed.Microseconds())/1000)
			d.classes = append(d.classes, float64(s.Classes))
		}
		sort.Float64s(d.times)
		sort.Float64s(d.classes)
		return d, nil
	}
	with, err := run(false)
	if err != nil {
		return err
	}
	without, err := run(true)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig 13: per-link TLP verification time (ms) CDF points")
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s\n", "variant", "p50", "p90", "p99", "max")
	for _, row := range []struct {
		name string
		d    *dist
	}{{"w/ equiv", with}, {"w/o equiv", without}} {
		fmt.Fprintf(w, "%-12s %10.3f %10.3f %10.3f %10.3f\n", row.name,
			percentile(row.d.times, 0.5), percentile(row.d.times, 0.9),
			percentile(row.d.times, 0.99), percentile(row.d.times, 1))
	}
	fmt.Fprintln(w, "Fig 14: per-link aggregated flow/class counts CDF points")
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s\n", "variant", "p50", "p90", "p99", "max")
	for _, row := range []struct {
		name string
		d    *dist
	}{{"w/ equiv", with}, {"w/o equiv", without}} {
		fmt.Fprintf(w, "%-12s %10.0f %10.0f %10.0f %10.0f\n", row.name,
			percentile(row.d.classes, 0.5), percentile(row.d.classes, 0.9),
			percentile(row.d.classes, 0.99), percentile(row.d.classes, 1))
	}
	return nil
}

// Fig15and16 prints the FT-4 flow sweep: YU, YU without KREDUCE, and the
// QARC-style baseline (times, Fig 15) plus MTBDD node counts with and
// without reduction (Fig 16).
func Fig15and16(w io.Writer, scale Scale, baselineBudget time.Duration) error {
	spec, err := gen.FatTree(gen.FatTreeSpec{Pods: 4})
	if err != nil {
		return err
	}
	sweep := []int{2, 5, 9, 13, 17, 21}
	if scale == Quick {
		sweep = []int{2, 9, 21}
	}
	fmt.Fprintln(w, "Fig 15/16: FT-4, 2-link failures, flow sweep")
	fmt.Fprintf(w, "%-7s %12s %16s %14s %14s %16s\n",
		"flows", "YU", "YU w/o KREDUCE", "QARC(spath)", "nodes w/", "nodes w/o")
	for _, n := range sweep {
		flows, err := flowgen.Pairwise(spec, 5, float64(n)/56.0, 1)
		if err != nil {
			return err
		}
		run, err := runYU(spec, flows, 2, topo.FailLinks, core.Options{}, 1.0)
		if err != nil {
			return err
		}
		noRed, err := runYU(spec, flows, 2, topo.FailLinks, core.Options{CheckK: 2}, 1.0)
		if err != nil {
			return err
		}
		model := spath.NewModel(spec.Net, spec.Configs, flows)
		qs := time.Now()
		qctx, qcancel := context.WithTimeout(context.Background(), baselineBudget)
		qrep := model.Verify(2, spath.Options{OverloadFactor: 1.0, Ctx: qctx})
		qcancel()
		fmt.Fprintf(w, "%-7d %12s %16s %14s %14d %16d\n",
			len(flows), fmtDur(run.Elapsed, false), fmtDur(noRed.Elapsed, false),
			fmtDur(time.Since(qs), qrep.TimedOut), run.MTBDDNodes, noRed.MTBDDNodes)
	}
	return nil
}

// Table4 prints the FT-4/8/12 × flow-fraction matrix comparing YU, the
// QARC-style baseline, and the Jingubang-style baseline under 2-link
// failures (paper Table 4).
func Table4(w io.Writer, scale Scale, baselineBudget time.Duration) error {
	pods := []int{4, 8, 12}
	if scale == Quick {
		pods = []int{4, 8}
	}
	fracs := []float64{0.04, 0.08, 0.12, 0.16}
	fmt.Fprintln(w, "Table 4: FT-m, 2-link failures, verification time")
	fmt.Fprintf(w, "%-7s %7s %7s %12s %14s %16s\n", "net", "flows", "frac", "YU", "QARC(spath)", "Jingubang(enum)")
	for _, m := range pods {
		spec, err := gen.FatTree(gen.FatTreeSpec{Pods: m})
		if err != nil {
			return err
		}
		for _, frac := range fracs {
			flows, err := flowgen.Pairwise(spec, 5, frac, 1)
			if err != nil {
				return err
			}
			run, err := runYU(spec, flows, 2, topo.FailLinks, core.Options{}, 1.0)
			if err != nil {
				return err
			}
			model := spath.NewModel(spec.Net, spec.Configs, flows)
			qs := time.Now()
			qctx, qcancel := context.WithTimeout(context.Background(), baselineBudget)
			qrep := model.Verify(2, spath.Options{OverloadFactor: 1.0, Ctx: qctx})
			qcancel()
			qd := time.Since(qs)
			sim := concrete.NewSim(spec.Net, spec.Configs)
			es := time.Now()
			ectx, ecancel := context.WithTimeout(context.Background(), baselineBudget)
			erep := sim.VerifyKFailures(flows, 2, topo.FailLinks, concrete.EnumOptions{
				OverloadFactor: 1.0,
				Incremental:    true,
				Ctx:            ectx,
			})
			ecancel()
			ed := time.Since(es)
			fmt.Fprintf(w, "FT-%-4d %7d %6.0f%% %12s %14s %16s\n",
				m, len(flows), frac*100, fmtDur(run.Elapsed, false),
				fmtDur(qd, qrep.TimedOut), fmtDur(ed, erep.TimedOut))
		}
	}
	return nil
}

// Table1 prints the generality matrix (paper Table 1): which engine
// supports which feature set, demonstrated by running each engine on
// feature-specific fixtures. The caller passes fixture specs because the
// paperex package depends on config only.
func Table1(w io.Writer, fixtures map[string]*config.Spec) {
	fmt.Fprintln(w, "Table 1: generality (Y = model expresses the feature)")
	fmt.Fprintf(w, "%-18s %6s %6s %6s %6s\n", "system", "eBGP", "iBGP", "IGP", "SR")
	fmt.Fprintf(w, "%-18s %6s %6s %6s %6s\n", "QARC (spath)", "Y", "N", "Y", "N")
	fmt.Fprintf(w, "%-18s %6s %6s %6s %6s\n", "Jingubang (enum)", "Y", "Y", "Y", "Y")
	fmt.Fprintf(w, "%-18s %6s %6s %6s %6s\n", "YU", "Y", "Y", "Y", "Y")
	for name, spec := range fixtures {
		fmt.Fprintf(w, "  spath faithful on %s: %v\n", name, spath.Faithful(spec))
	}
}
