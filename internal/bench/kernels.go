package bench

import (
	"fmt"
	"io"

	"github.com/yu-verify/yu/internal/core"
	"github.com/yu-verify/yu/internal/topo"
)

// KernelsSweep measures what the fused MTBDD kernels buy on the N0 case:
// the same verification runs with fusion enabled (the default pipeline:
// AddK/MulK/MulAddK/AddNK construct the KREDUCEd result directly) and
// with NoFuse (every call site composes the plain operator with an
// explicit KReduce, materializing the unreduced intermediate — the
// pre-fusion pipeline). The two runs are interleaved per round so
// thermal and cache drift hit both sides equally, best-of-rounds wall
// times are compared, and both sides must agree on violations and
// executed flows (the oracle battery checks value equality far more
// finely; this is the final cheap tripwire).
//
// Wall time on a single-core CI container can under-sell the win; the
// allocation columns cannot: peak_unique_nodes and created_nodes count
// how many MTBDD nodes the run ever hash-consed, and fusion_cuts counts
// the subproblems the budget cut off before construction. Those are
// machine-independent evidence (EXPERIMENTS.md, "Kernels sweep").
func KernelsSweep(w io.Writer, scale Scale, rounds int) ([]BenchRecord, error) {
	if rounds < 1 {
		rounds = 1
	}
	c := wanCases(scale)[0] // N0
	spec, flows, err := buildWAN(c)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Kernels sweep: %s (%d routers, %d links), %d flows, best of %d\n",
		c.name, spec.Net.NumRouters(), spec.Net.NumLinks(), len(flows), rounds)
	fmt.Fprintf(w, "%-3s %-10s %12s %12s %12s %12s %12s %9s\n",
		"k", "variant", "wall", "exec+check", "peak nodes", "created", "fusion cuts", "speedup")

	var records []BenchRecord
	for _, k := range c.ks {
		var fused, composed *YURun
		for r := 0; r < rounds; r++ {
			fr, err := runYUVariant(spec, flows, k, topo.FailLinks, core.Options{}, 1.0, 1, false)
			if err != nil {
				return nil, err
			}
			if fused == nil || fr.Elapsed < fused.Elapsed {
				fused = fr
			}
			cr, err := runYUVariant(spec, flows, k, topo.FailLinks, core.Options{}, 1.0, 1, true)
			if err != nil {
				return nil, err
			}
			if composed == nil || cr.Elapsed < composed.Elapsed {
				composed = cr
			}
		}
		if fused.Violations != composed.Violations || fused.Executed != composed.Executed {
			return nil, fmt.Errorf("k=%d: fused run diverged: %d/%d violations, %d/%d flows",
				k, fused.Violations, composed.Violations, fused.Executed, composed.Executed)
		}
		speedup := float64(composed.Elapsed-composed.RouteTime) / float64(fused.Elapsed-fused.RouteTime)
		mk := func(variant string, run *YURun, speedup float64) BenchRecord {
			return BenchRecord{
				Experiment:      "kernels",
				Case:            c.name + "-" + variant,
				K:               k,
				Mode:            topo.FailLinks.String(),
				Workers:         1,
				WallMS:          float64(run.Elapsed.Microseconds()) / 1000,
				RouteSimMS:      float64(run.RouteTime.Microseconds()) / 1000,
				ExecCheckMS:     float64((run.Elapsed - run.RouteTime).Microseconds()) / 1000,
				PeakUniqueNodes: run.MTBDDNodes,
				CreatedNodes:    run.Created,
				FusionCuts:      run.FusionCuts,
				FlowsExecuted:   run.Executed,
				Violations:      run.Violations,
				Speedup:         speedup,
			}
		}
		records = append(records, mk("composed", composed, 1), mk("fused", fused, speedup))
		for _, row := range []struct {
			name    string
			run     *YURun
			speedup float64
		}{{"composed", composed, 1}, {"fused", fused, speedup}} {
			fmt.Fprintf(w, "%-3d %-10s %12s %12s %12d %12d %12d %8.2fx\n",
				k, row.name, fmtDur(row.run.Elapsed, false),
				fmtDur(row.run.Elapsed-row.run.RouteTime, false),
				row.run.MTBDDNodes, row.run.Created, row.run.FusionCuts, row.speedup)
		}
	}
	return records, nil
}
