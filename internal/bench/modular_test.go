package bench

import (
	"runtime"
	"strings"
	"testing"
)

func modularRecords(monoOutcome, modOutcome string, domainPeak, fallback int) []BenchRecord {
	return []BenchRecord{
		{Experiment: "modular", Case: "monolithic", MaxNodes: 0, Outcome: "verified", PeakUniqueNodes: 35000},
		{Experiment: "modular", Case: "modular", MaxNodes: 0, Outcome: "verified", DomainPeakNodes: domainPeak},
		{Experiment: "modular", Case: "monolithic", MaxNodes: 16000, Outcome: monoOutcome, PeakUniqueNodes: 16000},
		{Experiment: "modular", Case: "modular", MaxNodes: 16000, Outcome: modOutcome,
			DomainPeakNodes: domainPeak, FallbackClasses: fallback},
	}
}

// withProcs runs fn with GOMAXPROCS pinned so the gate's core check is
// deterministic regardless of the test host.
func withProcs(n int, fn func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	fn()
}

func TestCheckModularSpeedupPasses(t *testing.T) {
	withProcs(4, func() {
		var sb strings.Builder
		if err := CheckModularSpeedup(&sb, modularRecords("node-budget", "verified", 9000, 0)); err != nil {
			t.Fatalf("gate failed on separating records: %v", err)
		}
		if !strings.Contains(sb.String(), "OK") {
			t.Fatalf("gate output missing OK: %q", sb.String())
		}
	})
}

func TestCheckModularSpeedupFailures(t *testing.T) {
	cases := []struct {
		name    string
		records []BenchRecord
		want    string
	}{
		{"monolithic survived budget", modularRecords("verified", "verified", 9000, 0), "node-budget"},
		{"modular hit budget too", modularRecords("node-budget", "node-budget", 9000, 0), "want verified"},
		{"summaries lost precision", modularRecords("node-budget", "verified", 9000, 3), "fell back"},
		{"no state reduction", modularRecords("node-budget", "verified", 40000, 0), "not reducing"},
		{"records missing", nil, "records missing"},
	}
	withProcs(4, func() {
		for _, tc := range cases {
			var sb strings.Builder
			err := CheckModularSpeedup(&sb, tc.records)
			if err == nil {
				t.Errorf("%s: gate passed, want failure", tc.name)
				continue
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
			}
		}
	})
}

func TestCheckModularSpeedupSkipsBelowFourCores(t *testing.T) {
	withProcs(2, func() {
		var sb strings.Builder
		// Even records that would fail the gate are ignored when skipped.
		if err := CheckModularSpeedup(&sb, modularRecords("verified", "node-budget", 40000, 5)); err != nil {
			t.Fatalf("gate should skip below 4 cores: %v", err)
		}
		if !strings.Contains(sb.String(), "skipped") {
			t.Fatalf("skip message missing: %q", sb.String())
		}
	})
}
