package bench

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/gen"
)

// modularCase sizes the wan-1 workload (testdata/wan-1.yu is the Quick
// sizing) and picks the node budget that separates the pipelines: small
// enough that monolithic route simulation cannot hold it even after a
// managed GC, large enough that every per-domain manager fits.
func modularCase(scale Scale) (gen.MultiDomainSpec, int) {
	if scale == Full {
		return gen.MultiDomainSpec{Domains: 8, RoutersPer: 20, PrefixesPer: 6, FlowsPer: 16, Seed: 20, K: 2}, 60000
	}
	return gen.MultiDomainSpec{Domains: 4, RoutersPer: 12, PrefixesPer: 4, FlowsPer: 8, Seed: 20, K: 2}, 16000
}

// ModularSweep measures compositional verification against the monolithic
// pipeline on the multi-domain WAN workload, unbudgeted and under the
// separating node budget. The claim being demonstrated: the modular
// pipeline's peak per-manager MTBDD state is a fraction of the monolithic
// peak, so a node budget that drives the monolithic run to ErrNodeBudget
// still verifies compositionally — the scaling wall the decomposition
// breaks.
func ModularSweep(w io.Writer, scale Scale) ([]BenchRecord, error) {
	ms, budget := modularCase(scale)
	spec, err := gen.MultiDomain(ms)
	if err != nil {
		return nil, err
	}
	n := yu.FromSpec(spec)
	workers := runtime.GOMAXPROCS(0)
	fmt.Fprintf(w, "Modular sweep: wan-1 (%d domains x %d routers), %d flows, k=%d link failures, workers=%d\n",
		ms.Domains, ms.RoutersPer, len(spec.Flows), ms.K, workers)
	fmt.Fprintf(w, "%-24s %12s %14s %12s %14s\n", "pipeline", "budget", "wall", "live nodes", "outcome")

	var records []BenchRecord
	var monoWall, modWall time.Duration
	var monoNodes int
	run := func(name string, modular bool, maxNodes int) error {
		opts := yu.VerifyOptions{K: ms.K, Workers: workers, MaxNodes: maxNodes}
		if modular {
			opts.Domains = spec.Domains
		}
		start := time.Now()
		rep, err := n.Verify(opts)
		wall := time.Since(start)
		outcome := "verified"
		switch {
		case errors.Is(err, yu.ErrNodeBudget):
			outcome = "node-budget"
		case err != nil:
			return fmt.Errorf("%s: %w", name, err)
		case !rep.Holds:
			outcome = "violated"
		}
		rec := BenchRecord{
			Experiment:      "modular",
			Case:            name,
			K:               ms.K,
			Mode:            spec.Mode.String(),
			Workers:         workers,
			GOMAXPROCS:      runtime.GOMAXPROCS(0),
			WallMS:          float64(wall.Microseconds()) / 1000,
			MaxNodes:        maxNodes,
			Outcome:         outcome,
			PeakUniqueNodes: rep.MTBDDNodes,
		}
		nodes := rep.MTBDDNodes
		if rep.Modular != nil {
			rec.DomainPeakNodes = rep.Modular.DomainPeakNodes
			rec.FallbackClasses = rep.Modular.FallbackClasses
			if rec.DomainPeakNodes > nodes {
				nodes = rec.DomainPeakNodes
			}
		}
		if !modular {
			rec.FlowsExecuted = rep.FlowsExecuted
			if maxNodes == 0 {
				monoWall, monoNodes = wall, nodes
			}
		} else if maxNodes == 0 {
			modWall = wall
		}
		if monoWall > 0 && modular {
			rec.Speedup = float64(monoWall) / float64(wall)
		}
		records = append(records, rec)
		fmt.Fprintf(w, "%-24s %12s %14s %12d %14s\n",
			name, fmtBudget(maxNodes), fmtDur(wall, false), nodes, outcome)
		return nil
	}
	if err := run("monolithic", false, 0); err != nil {
		return nil, err
	}
	if err := run("modular", true, 0); err != nil {
		return nil, err
	}
	if err := run("monolithic", false, budget); err != nil {
		return nil, err
	}
	if err := run("modular", true, budget); err != nil {
		return nil, err
	}
	if monoWall > 0 && modWall > 0 {
		fmt.Fprintf(w, "unbudgeted wall ratio (mono/modular): %.2fx; monolithic live nodes: %d\n",
			float64(monoWall)/float64(modWall), monoNodes)
	}
	return records, nil
}

func fmtBudget(n int) string {
	if n == 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d", n)
}

// CheckModularSpeedup is the CI gate behind -require-modular-speedup: on
// hosts with at least 4 cores, the budgeted monolithic run must have hit
// ErrNodeBudget while the budgeted modular run verified, and the modular
// per-domain peak must stay below the monolithic live-node count — the
// decomposition's reason to exist. Below 4 cores the gate is skipped (the
// domain fan-out has no parallelism to show).
func CheckModularSpeedup(w io.Writer, records []BenchRecord) error {
	if procs := runtime.GOMAXPROCS(0); procs < 4 {
		fmt.Fprintf(w, "modular gate: skipped (GOMAXPROCS=%d < 4)\n", procs)
		return nil
	}
	var monoFree, monoBudget, modBudget *BenchRecord
	for i := range records {
		r := &records[i]
		if r.Experiment != "modular" {
			continue
		}
		switch {
		case r.Case == "monolithic" && r.MaxNodes == 0:
			monoFree = r
		case r.Case == "monolithic" && r.MaxNodes > 0:
			monoBudget = r
		case r.Case == "modular" && r.MaxNodes > 0:
			modBudget = r
		}
	}
	if monoFree == nil || monoBudget == nil || modBudget == nil {
		return fmt.Errorf("modular gate: records missing (run -exp modular first)")
	}
	if monoBudget.Outcome != "node-budget" {
		return fmt.Errorf("modular gate: budgeted monolithic run finished %q, want node-budget — the budget no longer separates the pipelines", monoBudget.Outcome)
	}
	if modBudget.Outcome != "verified" {
		return fmt.Errorf("modular gate: budgeted modular run finished %q, want verified", modBudget.Outcome)
	}
	if modBudget.FallbackClasses > 0 {
		return fmt.Errorf("modular gate: %d classes fell back to monolithic execution on the contained workload", modBudget.FallbackClasses)
	}
	if modBudget.DomainPeakNodes >= monoFree.PeakUniqueNodes {
		return fmt.Errorf("modular gate: domain peak %d nodes >= monolithic %d — decomposition is not reducing state",
			modBudget.DomainPeakNodes, monoFree.PeakUniqueNodes)
	}
	fmt.Fprintf(w, "modular gate: OK (domain peak %d vs monolithic %d live nodes; budget %d kills monolithic only)\n",
		modBudget.DomainPeakNodes, monoFree.PeakUniqueNodes, monoBudget.MaxNodes)
	return nil
}
