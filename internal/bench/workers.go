package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/yu-verify/yu/internal/core"
	"github.com/yu-verify/yu/internal/obs"
	"github.com/yu-verify/yu/internal/topo"
)

// BenchRecord is one machine-readable measurement emitted into
// BENCH_<tag>.json so the performance trajectory across PRs is trackable.
type BenchRecord struct {
	Experiment string `json:"experiment"`
	Case       string `json:"case"`
	K          int    `json:"k"`
	Mode       string `json:"mode"`
	Workers    int    `json:"workers"`
	// Properties is the portfolio size for the tlp experiment (0
	// elsewhere): the sweep's independent variable.
	Properties int `json:"properties,omitempty"`
	// GOMAXPROCS is the scheduler's OS-thread parallelism during the run —
	// the hardware ceiling a workers>1 row is bounded by. A sweep recorded
	// with GOMAXPROCS=1 measures scheduling overhead, not speedup.
	GOMAXPROCS int     `json:"gomaxprocs,omitempty"`
	WallMS     float64 `json:"wall_ms"`
	RouteSimMS float64 `json:"route_sim_ms"`
	// ExecMS and CheckMS break ExecCheckMS into the symbolic-execution
	// phase (the work-stealing pool) and the link-check phase (the cursor
	// pool) — the scaling experiment's per-phase evidence.
	ExecMS  float64 `json:"exec_ms,omitempty"`
	CheckMS float64 `json:"check_ms,omitempty"`
	// Steals counts chunks executed by a worker other than the one they
	// were dealt to (scaling experiment only).
	Steals int `json:"steals,omitempty"`
	// PeakUniqueNodes is the primary manager's peak unique-table size.
	// Shard managers are private and excluded: with workers>1 the
	// execution intermediates live in shards, so this measures what the
	// merged STFs and the checking phase cost the primary table.
	PeakUniqueNodes int `json:"peak_unique_nodes"`
	// CreatedNodes counts every node the primary manager hash-consed
	// over the run's lifetime — unlike the peak it cannot be masked by
	// GC timing, so it is the kernels experiment's primary evidence.
	CreatedNodes int `json:"created_nodes,omitempty"`
	// ExecCheckMS is wall time minus route simulation: the execute+check
	// span the fused kernels target (route simulation is shared).
	ExecCheckMS float64 `json:"exec_check_ms,omitempty"`
	// FusionCuts counts budget-exhaustion collapses inside the fused
	// kernels (0 when fusion is off).
	FusionCuts    uint64 `json:"fusion_cuts,omitempty"`
	FlowsExecuted int    `json:"flows_executed"`
	Violations    int    `json:"violations"`
	// Speedup is wall time at workers=1 divided by this record's wall
	// time (1.0 for the workers=1 row itself).
	Speedup float64 `json:"speedup"`
	// OverheadPct, for the overhead experiment, is the instrumented
	// run's wall-time cost relative to its paired bare run, in percent
	// (best-of-rounds on both sides).
	OverheadPct float64 `json:"overhead_pct,omitempty"`
	// MaxNodes is the live-node budget the run was held to (modular
	// experiment; 0 = unlimited), and Outcome how it ended: "verified",
	// "violated", or "node-budget".
	MaxNodes int    `json:"max_nodes,omitempty"`
	Outcome  string `json:"outcome,omitempty"`
	// DomainPeakNodes and FallbackClasses mirror yu.ModularStats for
	// compositional runs: the largest per-domain manager and the classes
	// that escaped their domain's summary precision.
	DomainPeakNodes int `json:"domain_peak_nodes,omitempty"`
	FallbackClasses int `json:"fallback_classes,omitempty"`
	// Metrics, when the run was instrumented, is the obs.Registry
	// snapshot: per-phase durations, per-cache hit/miss counters, and
	// per-manager node statistics.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// WriteBenchJSON writes records as indented JSON to path.
func WriteBenchJSON(path string, records []BenchRecord) error {
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WorkersSweep measures end-to-end verification wall time on the medium
// WAN case across worker counts: the scaling experiment for the parallel
// pipeline (sharded execution + concurrent link checking). workers=1 runs
// the exact legacy sequential path, so its row doubles as the regression
// baseline.
//
// Single-run efficiency is the paper's claim; this sweep is ours: with P
// workers the flow shards and the per-link checks run on P private MTBDD
// managers, and the speedup column shows how far that carries on the
// current host. On a single-core host (GOMAXPROCS=1) expect ~1.0×: the
// pipeline adds sharding and import overhead but no extra cores to spend
// it on.
func WorkersSweep(w io.Writer, scale Scale, workersList []int) ([]BenchRecord, error) {
	c := wanCases(scale)[1] // N1: the medium WAN
	spec, flows, err := buildWAN(c)
	if err != nil {
		return nil, err
	}
	k := c.ks[0]
	fmt.Fprintf(w, "Workers sweep: %s (%d routers, %d links), %d flows, k=%d link failures\n",
		c.name, spec.Net.NumRouters(), spec.Net.NumLinks(), len(flows), k)
	fmt.Fprintf(w, "%-8s %14s %14s %12s %10s %9s\n",
		"workers", "wall", "routesim", "exec'd", "nodes", "speedup")
	var records []BenchRecord
	var base time.Duration
	for _, workers := range workersList {
		run, err := runYUWorkers(spec, flows, k, topo.FailLinks, core.Options{}, 1.0, workers)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = run.Elapsed
		}
		speedup := float64(base) / float64(run.Elapsed)
		records = append(records, BenchRecord{
			Experiment:      "workers",
			Case:            c.name,
			K:               k,
			Mode:            topo.FailLinks.String(),
			Workers:         workers,
			WallMS:          float64(run.Elapsed.Microseconds()) / 1000,
			RouteSimMS:      float64(run.RouteTime.Microseconds()) / 1000,
			PeakUniqueNodes: run.MTBDDNodes,
			FlowsExecuted:   run.Executed,
			Violations:      run.Violations,
			Speedup:         speedup,
		})
		fmt.Fprintf(w, "%-8d %14s %14s %12d %10d %8.2fx\n",
			workers, fmtDur(run.Elapsed, false), fmtDur(run.RouteTime, false),
			run.Executed, run.MTBDDNodes, speedup)
	}
	return records, nil
}
