package topo

import (
	"fmt"
	"net/netip"
)

// Builder accumulates routers and links and produces an immutable Network.
// The zero value is ready to use.
type Builder struct {
	routers []Router
	links   []Link
	byName  map[string]RouterID
	err     error

	nextLoopback uint32 // auto-assigned loopbacks 10.0.<hi>.<lo>
	nextLinkNet  uint32 // auto-assigned /31s from 172.16.0.0/12
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{byName: make(map[string]RouterID)}
}

// RouterOpt customizes a router added via AddRouter.
type RouterOpt func(*Router)

// WithLoopback sets an explicit loopback address.
func WithLoopback(a netip.Addr) RouterOpt {
	return func(r *Router) { r.Loopback = a }
}

// RouterNoFail excludes the router from the failure model.
func RouterNoFail() RouterOpt {
	return func(r *Router) { r.NoFail = true }
}

// AddRouter adds a router with the given name and AS number and returns its
// ID. Duplicate names record an error surfaced by Build.
func (b *Builder) AddRouter(name string, as uint32, opts ...RouterOpt) RouterID {
	if _, dup := b.byName[name]; dup {
		b.fail(fmt.Errorf("duplicate router name %q", name))
		return -1
	}
	id := RouterID(len(b.routers))
	r := Router{ID: id, Name: name, AS: as}
	for _, o := range opts {
		o(&r)
	}
	if !r.Loopback.IsValid() {
		b.nextLoopback++
		r.Loopback = netip.AddrFrom4([4]byte{10, 0, byte(b.nextLoopback >> 8), byte(b.nextLoopback)})
	}
	b.routers = append(b.routers, r)
	b.byName[name] = id
	return id
}

// LinkOpt customizes a link added via AddLink.
type LinkOpt func(*Link)

// WithCost sets the IGP metric for both directions.
func WithCost(c int64) LinkOpt {
	return func(l *Link) { l.CostAB, l.CostBA = c, c }
}

// WithAsymCost sets per-direction IGP metrics.
func WithAsymCost(ab, ba int64) LinkOpt {
	return func(l *Link) { l.CostAB, l.CostBA = ab, ba }
}

// WithCapacity sets the link capacity in Gbps.
func WithCapacity(gbps float64) LinkOpt {
	return func(l *Link) { l.Capacity = gbps }
}

// WithAddrs sets explicit interface addresses for the A and B ends.
func WithAddrs(a, bAddr netip.Addr) LinkOpt {
	return func(l *Link) { l.AddrA, l.AddrB = a, bAddr }
}

// LinkNoFail excludes the link from the failure model.
func LinkNoFail() LinkOpt {
	return func(l *Link) { l.NoFail = true }
}

// DefaultLinkCost is the IGP metric assigned when WithCost is not given,
// mirroring the motivating example's uniform 10000 metric.
const DefaultLinkCost = 10000

// DefaultCapacity is the capacity in Gbps assigned when WithCapacity is
// not given (the motivating example's 100 Gbps links).
const DefaultCapacity = 100

// AddLink adds an undirected link between the named routers and returns
// its ID. Unknown router names record an error surfaced by Build.
func (b *Builder) AddLink(a, bName string, opts ...LinkOpt) LinkID {
	ra, ok1 := b.byName[a]
	rb, ok2 := b.byName[bName]
	if !ok1 || !ok2 {
		b.fail(fmt.Errorf("link %s-%s references unknown router", a, bName))
		return -1
	}
	if ra == rb {
		b.fail(fmt.Errorf("self-link on router %s", a))
		return -1
	}
	id := LinkID(len(b.links))
	l := Link{ID: id, A: ra, B: rb, CostAB: DefaultLinkCost, CostBA: DefaultLinkCost, Capacity: DefaultCapacity}
	for _, o := range opts {
		o(&l)
	}
	if !l.AddrA.IsValid() || !l.AddrB.IsValid() {
		// Auto-assign a /31 from 172.16.0.0/12: each link consumes two
		// consecutive addresses.
		base := uint32(172)<<24 | uint32(16)<<16 | b.nextLinkNet*2
		b.nextLinkNet++
		l.AddrA = netip.AddrFrom4([4]byte{byte(base >> 24), byte(base >> 16), byte(base >> 8), byte(base)})
		base++
		l.AddrB = netip.AddrFrom4([4]byte{byte(base >> 24), byte(base >> 16), byte(base >> 8), byte(base)})
	}
	b.links = append(b.links, l)
	return id
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build validates the accumulated topology and returns the immutable
// Network.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := &Network{
		Routers: b.routers,
		Links:   b.links,
		byName:  b.byName,
		byLoop:  make(map[netip.Addr]RouterID, len(b.routers)),
		byIfIP:  make(map[netip.Addr]DirLinkID, 2*len(b.links)),
		out:     make([][]DirEdge, len(b.routers)),
		in:      make([][]DirEdge, len(b.routers)),
	}
	for _, r := range b.routers {
		if prev, dup := n.byLoop[r.Loopback]; dup {
			return nil, fmt.Errorf("routers %s and %s share loopback %s",
				n.Routers[prev].Name, r.Name, r.Loopback)
		}
		n.byLoop[r.Loopback] = r.ID
	}
	for i := range b.links {
		l := &b.links[i]
		if l.Capacity <= 0 {
			return nil, fmt.Errorf("link %s has non-positive capacity", n.LinkName(l.ID))
		}
		for _, d := range []Direction{AtoB, BtoA} {
			from, to := l.Endpoint(d), l.Other(d)
			local, remote := l.AddrA, l.AddrB
			if d == BtoA {
				local, remote = l.AddrB, l.AddrA
			}
			e := DirEdge{
				DirLink:    MakeDirLinkID(l.ID, d),
				From:       from,
				To:         to,
				Cost:       l.Cost(d),
				Capacity:   l.Capacity,
				LocalAddr:  local,
				RemoteAddr: remote,
			}
			n.out[from] = append(n.out[from], e)
			n.in[to] = append(n.in[to], e)
			if prev, dup := n.byIfIP[remote]; dup {
				return nil, fmt.Errorf("interface address %s used by both %s and %s",
					remote, n.DirLinkName(prev), n.DirLinkName(e.DirLink))
			}
			n.byIfIP[remote] = e.DirLink
		}
	}
	return n, nil
}
