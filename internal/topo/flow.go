package topo

import (
	"fmt"
	"net/netip"
)

// Flow identifies all packets entering the network at one router with the
// given source/destination addresses and DSCP value, carrying Gbps of
// traffic — the paper's (intf, srcip, dstip, dscp) tuple plus volume V_f.
type Flow struct {
	// Name is an optional human-readable identifier.
	Name string
	// Ingress is the router where the flow enters the network.
	Ingress RouterID
	Src     netip.Addr
	Dst     netip.Addr
	DSCP    uint8
	// Gbps is the flow's total traffic volume V_f.
	Gbps float64
}

// String renders the flow for diagnostics.
func (f Flow) String() string {
	name := f.Name
	if name == "" {
		name = "flow"
	}
	return fmt.Sprintf("%s(%s→%s dscp=%d %.6gG)", name, f.Src, f.Dst, f.DSCP, f.Gbps)
}

// LoadBound is one entry of a traffic load property (TLP, §3.2): the
// traffic on link Link must stay within [Min, Max] Gbps in every failure
// scenario of degree at most k.
type LoadBound struct {
	Link LinkID
	// Dir restricts the bound to one direction of the link when
	// DirSpecified is true; otherwise both directions are bounded.
	Dir          Direction
	DirSpecified bool
	Min, Max     float64
}

// DeliveredBound is a traffic load property on delivered traffic: the
// total traffic delivered to destinations inside Prefix (i.e. reaching a
// router that originates a covering prefix) must stay within [Min, Max] —
// the paper's P1 ("traffic delivered to the destination should not drop
// significantly") and the Figure 10 dropped-traffic use case.
type DeliveredBound struct {
	Prefix   netip.Prefix
	Min, Max float64
}

// FailureMode selects which element class may fail in a verification run.
type FailureMode int

const (
	// FailLinks considers link failures only (Fig 11, Fig 15, Table 4).
	FailLinks FailureMode = iota
	// FailRouters considers router failures only (Fig 17).
	FailRouters
	// FailBoth considers both element classes.
	FailBoth
)

// String implements fmt.Stringer.
func (m FailureMode) String() string {
	switch m {
	case FailLinks:
		return "links"
	case FailRouters:
		return "routers"
	case FailBoth:
		return "both"
	}
	return fmt.Sprintf("FailureMode(%d)", int(m))
}
