package topo

import (
	"fmt"
	"net/netip"
)

// TLPKind discriminates the property families a portfolio can mix: the
// paper's traffic load properties (§3.2) expressed over link loads,
// utilization, and delivered traffic.
type TLPKind int

const (
	// TLPLinkLoad bounds the traffic on one link (or one direction of it).
	TLPLinkLoad TLPKind = iota
	// TLPUtil bounds utilization: load must stay below Factor x capacity,
	// on one link or (AllLinks) every link in the network.
	TLPUtil
	// TLPDelivered bounds the absolute traffic delivered into Prefix.
	TLPDelivered
	// TLPRatio bounds the delivery ratio: delivered traffic into Prefix
	// divided by the traffic offered to it, in [Min, Max].
	TLPRatio
	// TLPSumLoad bounds the summed load over a named link set (both
	// directions of every member link): total traffic crossing a cut,
	// a peering surface, or a shared-risk group.
	TLPSumLoad
	// TLPMaxLoad bounds the worst per-direction load across a named link
	// set: "no member of this set carries more than Max".
	TLPMaxLoad
)

// String implements fmt.Stringer.
func (k TLPKind) String() string {
	switch k {
	case TLPLinkLoad:
		return "link-load"
	case TLPUtil:
		return "util"
	case TLPDelivered:
		return "delivered"
	case TLPRatio:
		return "ratio"
	case TLPSumLoad:
		return "sum-load"
	case TLPMaxLoad:
		return "max-load"
	}
	return fmt.Sprintf("TLPKind(%d)", int(k))
}

// TLProp is one property in a portfolio. The zero value is not valid; use
// the config portfolio parser or fill the fields for the chosen Kind:
//
//   - TLPLinkLoad: Link (+ Dir when DirSpecified), Min/Max in Gbps.
//   - TLPUtil: Factor, plus Link/Dir or AllLinks. Max is derived per link
//     as Factor x capacity; Min is unused.
//   - TLPDelivered: Prefix, Min/Max in Gbps.
//   - TLPRatio: Prefix, Min/Max as fractions of the offered traffic.
//
// Any property may be conditional: when CondSet is true the property is
// checked only in scenarios where link CondLink is failed ("if A-B is
// failed then ..."), over the remaining failure budget.
type TLProp struct {
	Kind TLPKind
	// Link / Dir / DirSpecified select the subject link for TLPLinkLoad
	// and single-link TLPUtil; without DirSpecified both directions are
	// checked.
	Link         LinkID
	Dir          Direction
	DirSpecified bool
	// AllLinks widens a TLPUtil property to every link.
	AllLinks bool
	// Prefix is the destination prefix for TLPDelivered / TLPRatio.
	Prefix netip.Prefix
	// Min and Max bound the property's quantity (see Kind).
	Min, Max float64
	// Factor is the utilization factor for TLPUtil.
	Factor float64
	// CondSet guards the property on the failure of CondLink.
	CondSet  bool
	CondLink LinkID
	// AggLinks is the member link list of a TLPSumLoad / TLPMaxLoad
	// aggregate, and SetName the `linkset` name it was declared under
	// (rendering only — AggLinks is authoritative).
	AggLinks []LinkID
	SetName  string
}
