// Package topo models the network topology YU verifies: routers,
// bidirectional links with per-direction IGP costs and capacities, and the
// directed-link view used by symbolic traffic execution (§4: "we model a
// network link with directions").
package topo

import (
	"fmt"
	"net/netip"
	"sort"
)

// RouterID identifies a router; IDs are dense indices into Network.Routers.
type RouterID int32

// LinkID identifies an undirected link; IDs are dense indices into
// Network.Links. A single failure variable is associated with each LinkID:
// when a link fails, both directions fail.
type LinkID int32

// Direction selects one of the two directions of an undirected link.
type Direction int8

const (
	// AtoB is the direction from Link.A to Link.B.
	AtoB Direction = 0
	// BtoA is the direction from Link.B to Link.A.
	BtoA Direction = 1
)

// DirLinkID identifies a directed link: 2*LinkID + Direction.
type DirLinkID int32

// MakeDirLinkID composes a directed link ID.
func MakeDirLinkID(l LinkID, d Direction) DirLinkID {
	return DirLinkID(int32(l)*2 + int32(d))
}

// Link returns the undirected link of the directed link.
func (d DirLinkID) Link() LinkID { return LinkID(d / 2) }

// Dir returns the direction component.
func (d DirLinkID) Dir() Direction { return Direction(d % 2) }

// Router is a network device.
type Router struct {
	ID   RouterID
	Name string
	// AS is the autonomous system number the router belongs to.
	AS uint32
	// Loopback is the router's loopback address (used as the BGP router
	// ID, the iBGP session endpoint, and the SR segment identifier).
	Loopback netip.Addr
	// NoFail excludes the router from the failure model (e.g. a stub
	// node standing in for an attached data-center fabric).
	NoFail bool
}

// Link is an undirected link between routers A and B.
type Link struct {
	ID   LinkID
	A, B RouterID
	// CostAB and CostBA are the IGP metrics of the two directions.
	CostAB, CostBA int64
	// Capacity is the link bandwidth in Gbps (same both directions).
	Capacity float64
	// AddrA and AddrB are the interface addresses at the two ends.
	AddrA, AddrB netip.Addr
	// NoFail excludes the link from the failure model (e.g. the
	// attachment link of a destination stub).
	NoFail bool
}

// Endpoint returns the router at the source of the given direction.
func (l *Link) Endpoint(d Direction) RouterID {
	if d == AtoB {
		return l.A
	}
	return l.B
}

// Other returns the router at the destination of the given direction.
func (l *Link) Other(d Direction) RouterID {
	if d == AtoB {
		return l.B
	}
	return l.A
}

// Cost returns the IGP metric of the given direction.
func (l *Link) Cost(d Direction) int64 {
	if d == AtoB {
		return l.CostAB
	}
	return l.CostBA
}

// DirEdge is the adjacency-list view of one direction of a link.
type DirEdge struct {
	DirLink    DirLinkID
	From, To   RouterID
	Cost       int64
	Capacity   float64
	LocalAddr  netip.Addr // interface address on From
	RemoteAddr netip.Addr // interface address on To
}

// Network is an immutable topology built by a Builder.
type Network struct {
	Routers []Router
	Links   []Link

	byName map[string]RouterID
	byLoop map[netip.Addr]RouterID
	byIfIP map[netip.Addr]DirLinkID // interface address -> directed link arriving at it
	out    [][]DirEdge              // outgoing edges per router
	in     [][]DirEdge              // incoming edges per router
}

// NumRouters returns the number of routers.
func (n *Network) NumRouters() int { return len(n.Routers) }

// NumLinks returns the number of undirected links.
func (n *Network) NumLinks() int { return len(n.Links) }

// Router returns the router with the given ID.
func (n *Network) Router(id RouterID) *Router { return &n.Routers[id] }

// Link returns the undirected link with the given ID.
func (n *Network) Link(id LinkID) *Link { return &n.Links[id] }

// RouterByName returns the router named name.
func (n *Network) RouterByName(name string) (*Router, bool) {
	id, ok := n.byName[name]
	if !ok {
		return nil, false
	}
	return &n.Routers[id], true
}

// RouterByLoopback resolves a loopback address to its router.
func (n *Network) RouterByLoopback(a netip.Addr) (*Router, bool) {
	id, ok := n.byLoop[a]
	if !ok {
		return nil, false
	}
	return &n.Routers[id], true
}

// DirLinkToAddr resolves an interface address to the directed link whose
// remote end carries that address (i.e. the directed link a packet takes to
// reach a next hop with that interface address).
func (n *Network) DirLinkToAddr(a netip.Addr) (DirLinkID, bool) {
	d, ok := n.byIfIP[a]
	return d, ok
}

// Out returns the outgoing directed edges of router r.
func (n *Network) Out(r RouterID) []DirEdge { return n.out[r] }

// In returns the incoming directed edges of router r.
func (n *Network) In(r RouterID) []DirEdge { return n.in[r] }

// Edge returns the DirEdge view of a directed link.
func (n *Network) Edge(d DirLinkID) DirEdge {
	l := n.Link(d.Link())
	from := l.Endpoint(d.Dir())
	for _, e := range n.out[from] {
		if e.DirLink == d {
			return e
		}
	}
	panic(fmt.Sprintf("topo: directed link %d not in adjacency of %s", d, n.Routers[from].Name))
}

// FindLink returns the undirected link between two named routers.
func (n *Network) FindLink(a, b string) (*Link, bool) {
	ra, ok1 := n.byName[a]
	rb, ok2 := n.byName[b]
	if !ok1 || !ok2 {
		return nil, false
	}
	for _, e := range n.out[ra] {
		if e.To == rb {
			return &n.Links[e.DirLink.Link()], true
		}
	}
	return nil, false
}

// FindDirLink returns the directed link from router a to router b.
func (n *Network) FindDirLink(a, b string) (DirLinkID, bool) {
	ra, ok1 := n.byName[a]
	rb, ok2 := n.byName[b]
	if !ok1 || !ok2 {
		return 0, false
	}
	for _, e := range n.out[ra] {
		if e.To == rb {
			return e.DirLink, true
		}
	}
	return 0, false
}

// DirLinkName renders a directed link as "A->B" for diagnostics.
func (n *Network) DirLinkName(d DirLinkID) string {
	l := n.Link(d.Link())
	return n.Routers[l.Endpoint(d.Dir())].Name + "->" + n.Routers[l.Other(d.Dir())].Name
}

// LinkName renders an undirected link as "A-B".
func (n *Network) LinkName(id LinkID) string {
	l := n.Link(id)
	return n.Routers[l.A].Name + "-" + n.Routers[l.B].Name
}

// RoutersInAS returns the IDs of all routers in the given AS, sorted.
func (n *Network) RoutersInAS(as uint32) []RouterID {
	var out []RouterID
	for _, r := range n.Routers {
		if r.AS == as {
			out = append(out, r.ID)
		}
	}
	return out
}

// ASes returns the sorted set of AS numbers present in the network.
func (n *Network) ASes() []uint32 {
	set := make(map[uint32]struct{})
	for _, r := range n.Routers {
		set[r.AS] = struct{}{}
	}
	out := make([]uint32, 0, len(set))
	for as := range set {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Diameter returns the hop-count diameter of the network (ignoring costs),
// used to bound symbolic execution iterations. Disconnected pairs are
// ignored. An empty or single-router network has diameter 0.
func (n *Network) Diameter() int {
	max := 0
	dist := make([]int, len(n.Routers))
	queue := make([]RouterID, 0, len(n.Routers))
	for s := range n.Routers {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = queue[:0]
		queue = append(queue, RouterID(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range n.out[u] {
				if dist[e.To] < 0 {
					dist[e.To] = dist[u] + 1
					if dist[e.To] > max {
						max = dist[e.To]
					}
					queue = append(queue, e.To)
				}
			}
		}
	}
	return max
}
