package topo

import (
	"net/netip"
	"testing"
)

func buildTriangle(t *testing.T) *Network {
	t.Helper()
	b := NewBuilder()
	b.AddRouter("A", 100)
	b.AddRouter("B", 100)
	b.AddRouter("C", 200)
	b.AddLink("A", "B", WithCost(10), WithCapacity(40))
	b.AddLink("B", "C")
	b.AddLink("A", "C", WithAsymCost(5, 7))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuilderBasics(t *testing.T) {
	n := buildTriangle(t)
	if n.NumRouters() != 3 || n.NumLinks() != 3 {
		t.Fatalf("got %d routers %d links", n.NumRouters(), n.NumLinks())
	}
	a, ok := n.RouterByName("A")
	if !ok || a.Name != "A" || a.AS != 100 {
		t.Fatalf("RouterByName(A) = %+v, %v", a, ok)
	}
	if _, ok := n.RouterByName("Z"); ok {
		t.Error("unknown router must not resolve")
	}
	if !a.Loopback.IsValid() {
		t.Error("loopback must be auto-assigned")
	}
	if r, ok := n.RouterByLoopback(a.Loopback); !ok || r.ID != a.ID {
		t.Error("loopback lookup failed")
	}
}

func TestLinkProperties(t *testing.T) {
	n := buildTriangle(t)
	l, ok := n.FindLink("A", "B")
	if !ok {
		t.Fatal("A-B link missing")
	}
	if l.Capacity != 40 || l.CostAB != 10 || l.CostBA != 10 {
		t.Errorf("link attrs = %+v", l)
	}
	l2, _ := n.FindLink("C", "A") // reversed order must also resolve
	if l2 == nil || l2.CostAB != 5 || l2.CostBA != 7 {
		t.Errorf("asym link attrs = %+v", l2)
	}
	bc, _ := n.FindLink("B", "C")
	if bc.Capacity != DefaultCapacity || bc.CostAB != DefaultLinkCost {
		t.Errorf("defaults not applied: %+v", bc)
	}
}

func TestDirLinkIDs(t *testing.T) {
	n := buildTriangle(t)
	d, ok := n.FindDirLink("A", "B")
	if !ok {
		t.Fatal("A->B missing")
	}
	rev, _ := n.FindDirLink("B", "A")
	if d.Link() != rev.Link() {
		t.Error("both directions must share the LinkID")
	}
	if d.Dir() == rev.Dir() {
		t.Error("directions must differ")
	}
	if MakeDirLinkID(d.Link(), d.Dir()) != d {
		t.Error("MakeDirLinkID roundtrip failed")
	}
	if got := n.DirLinkName(d); got != "A->B" {
		t.Errorf("DirLinkName = %q", got)
	}
	if got := n.LinkName(d.Link()); got != "A-B" {
		t.Errorf("LinkName = %q", got)
	}
}

func TestAdjacency(t *testing.T) {
	n := buildTriangle(t)
	a, _ := n.RouterByName("A")
	out := n.Out(a.ID)
	if len(out) != 2 {
		t.Fatalf("A has %d outgoing edges, want 2", len(out))
	}
	for _, e := range out {
		if e.From != a.ID {
			t.Error("outgoing edge with wrong From")
		}
		if !e.LocalAddr.IsValid() || !e.RemoteAddr.IsValid() {
			t.Error("auto interface addresses missing")
		}
		// The remote address must resolve back to this directed link.
		if d, ok := n.DirLinkToAddr(e.RemoteAddr); !ok || d != e.DirLink {
			t.Error("DirLinkToAddr inconsistent with adjacency")
		}
		if got := n.Edge(e.DirLink); got.To != e.To {
			t.Error("Edge lookup inconsistent")
		}
	}
	if len(n.In(a.ID)) != 2 {
		t.Error("A must have 2 incoming edges")
	}
}

func TestRoutersInASAndASes(t *testing.T) {
	n := buildTriangle(t)
	if got := n.RoutersInAS(100); len(got) != 2 {
		t.Errorf("AS100 routers = %v", got)
	}
	ases := n.ASes()
	if len(ases) != 2 || ases[0] != 100 || ases[1] != 200 {
		t.Errorf("ASes = %v", ases)
	}
}

func TestDiameter(t *testing.T) {
	b := NewBuilder()
	for _, name := range []string{"A", "B", "C", "D"} {
		b.AddRouter(name, 1)
	}
	b.AddLink("A", "B")
	b.AddLink("B", "C")
	b.AddLink("C", "D")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Diameter(); got != 3 {
		t.Errorf("chain diameter = %d, want 3", got)
	}
	if got := buildTriangle(t).Diameter(); got != 1 {
		t.Errorf("triangle diameter = %d, want 1", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		fn   func(b *Builder)
	}{
		{"duplicate router", func(b *Builder) {
			b.AddRouter("A", 1)
			b.AddRouter("A", 1)
		}},
		{"unknown endpoint", func(b *Builder) {
			b.AddRouter("A", 1)
			b.AddLink("A", "B")
		}},
		{"self link", func(b *Builder) {
			b.AddRouter("A", 1)
			b.AddLink("A", "A")
		}},
		{"duplicate loopback", func(b *Builder) {
			lb := netip.MustParseAddr("10.9.9.9")
			b.AddRouter("A", 1, WithLoopback(lb))
			b.AddRouter("B", 1, WithLoopback(lb))
		}},
		{"bad capacity", func(b *Builder) {
			b.AddRouter("A", 1)
			b.AddRouter("B", 1)
			b.AddLink("A", "B", WithCapacity(-1))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			tc.fn(b)
			if _, err := b.Build(); err == nil {
				t.Errorf("%s: expected Build error", tc.name)
			}
		})
	}
}

func TestExplicitAddrs(t *testing.T) {
	b := NewBuilder()
	b.AddRouter("A", 1)
	b.AddRouter("B", 1)
	aAddr := netip.MustParseAddr("1.2.0.1")
	bAddr := netip.MustParseAddr("1.2.0.2")
	b.AddLink("A", "B", WithAddrs(aAddr, bAddr))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d, _ := n.FindDirLink("A", "B")
	e := n.Edge(d)
	if e.LocalAddr != aAddr || e.RemoteAddr != bAddr {
		t.Errorf("edge addrs = %v -> %v", e.LocalAddr, e.RemoteAddr)
	}
	if got, ok := n.DirLinkToAddr(bAddr); !ok || got != d {
		t.Error("explicit address lookup failed")
	}
}
