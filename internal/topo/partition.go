package topo

import (
	"fmt"
	"sort"
)

// Partition assigns every router to exactly one named domain. Domains are
// the unit of compositional verification (internal/compose): each domain
// is route-simulated and symbolically executed on its own subnet against
// interface summaries exchanged at border links.
//
// Partitions are AS-closed: a domain boundary never splits an autonomous
// system. This makes every cross-domain BGP session an eBGP session, which
// is what keeps interface summaries small — an eBGP advertisement carries
// only (prefix, AS path, selection guard) across the border, with local
// preference, IGP cost, and next hop reset by the receiver.
type Partition struct {
	// Net is the global network the partition divides.
	Net *Network
	// Names are the domain names, sorted; domain indices are positions in
	// this slice.
	Names []string
	// Domain maps RouterID -> domain index.
	Domain []int
}

// NewPartition builds and validates a partition from an explicit
// domain-name -> router-names assignment (the `domain` DSL line). Every
// router must be assigned to exactly one domain, and every AS must be
// wholly contained in one domain.
func NewPartition(net *Network, domains map[string][]string) (*Partition, error) {
	if len(domains) == 0 {
		return nil, fmt.Errorf("topo: partition has no domains")
	}
	names := make([]string, 0, len(domains))
	for name := range domains {
		names = append(names, name)
	}
	sort.Strings(names)
	p := &Partition{Net: net, Names: names, Domain: make([]int, net.NumRouters())}
	for i := range p.Domain {
		p.Domain[i] = -1
	}
	for di, name := range names {
		for _, rn := range domains[name] {
			r, ok := net.RouterByName(rn)
			if !ok {
				return nil, fmt.Errorf("topo: domain %s references unknown router %s", name, rn)
			}
			if prev := p.Domain[r.ID]; prev >= 0 {
				return nil, fmt.Errorf("topo: router %s assigned to both domain %s and %s",
					rn, names[prev], name)
			}
			p.Domain[r.ID] = di
		}
	}
	for id, d := range p.Domain {
		if d < 0 {
			return nil, fmt.Errorf("topo: router %s not assigned to any domain", net.Routers[id].Name)
		}
	}
	if err := p.checkASClosed(); err != nil {
		return nil, err
	}
	return p, nil
}

// AutoPartition bins whole autonomous systems into n domains, balancing
// router counts (largest AS first into the least-loaded bin). It is the
// fallback partitioner behind the -auto-domains flag; the result is
// deterministic for a given network and n.
func AutoPartition(net *Network, n int) (*Partition, error) {
	if n < 1 {
		return nil, fmt.Errorf("topo: auto-partition needs at least 1 domain, got %d", n)
	}
	ases := net.ASes()
	if n > len(ases) {
		n = len(ases) // AS-closure caps the domain count at the AS count
	}
	sizes := make(map[uint32]int, len(ases))
	for _, r := range net.Routers {
		sizes[r.AS]++
	}
	order := append([]uint32(nil), ases...)
	sort.SliceStable(order, func(i, j int) bool {
		if sizes[order[i]] != sizes[order[j]] {
			return sizes[order[i]] > sizes[order[j]]
		}
		return order[i] < order[j]
	})
	load := make([]int, n)
	asDomain := make(map[uint32]int, len(order))
	for _, as := range order {
		best := 0
		for b := 1; b < n; b++ {
			if load[b] < load[best] {
				best = b
			}
		}
		asDomain[as] = best
		load[best] += sizes[as]
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("d%d", i)
	}
	p := &Partition{Net: net, Names: names, Domain: make([]int, net.NumRouters())}
	for i, r := range net.Routers {
		p.Domain[i] = asDomain[r.AS]
	}
	return p, nil
}

func (p *Partition) checkASClosed() error {
	asDomain := make(map[uint32]int)
	for id, r := range p.Net.Routers {
		if prev, seen := asDomain[r.AS]; seen {
			if prev != p.Domain[id] {
				return fmt.Errorf("topo: AS %d is split across domains %s and %s — domains must be AS-closed",
					r.AS, p.Names[prev], p.Names[p.Domain[id]])
			}
		} else {
			asDomain[r.AS] = p.Domain[id]
		}
	}
	return nil
}

// NumDomains returns the number of domains.
func (p *Partition) NumDomains() int { return len(p.Names) }

// BorderLinks returns the global IDs of links whose endpoints lie in
// different domains, ascending.
func (p *Partition) BorderLinks() []LinkID {
	var out []LinkID
	for i := range p.Net.Links {
		l := &p.Net.Links[i]
		if p.Domain[l.A] != p.Domain[l.B] {
			out = append(out, l.ID)
		}
	}
	return out
}

// Subnet is one domain's extracted network: the domain's member routers
// plus one-hop stubs (foreign routers sharing a link with a member), with
// the connecting links. Router and link IDs are subnet-local but follow
// global ID order, so adjacency iteration order — and therefore float
// accumulation order in symbolic execution — matches the monolithic run
// exactly for traffic contained in the domain.
type Subnet struct {
	// Dom is the domain index in the owning partition.
	Dom int
	// Name is the domain name.
	Name string
	// Net is the extracted subnet topology.
	Net *Network
	// Member reports, per subnet RouterID, whether the router is a domain
	// member (false = border stub owned by a neighboring domain).
	Member []bool
	// ToGlobalRouter maps subnet RouterID -> global RouterID.
	ToGlobalRouter []RouterID
	// RouterIndex maps global RouterID -> subnet RouterID, -1 if absent.
	RouterIndex []RouterID
	// ToGlobalLink maps subnet LinkID -> global LinkID.
	ToGlobalLink []LinkID
	// LinkIndex maps global LinkID -> subnet LinkID, -1 if absent.
	LinkIndex []LinkID
	// Border lists the subnet IDs of border links (member<->stub),
	// ascending.
	Border []LinkID
}

// Subnet extracts the given domain's subnet.
func (p *Partition) Subnet(dom int) (*Subnet, error) {
	g := p.Net
	inSub := make([]bool, g.NumRouters())
	member := make([]bool, g.NumRouters())
	for id, d := range p.Domain {
		if d == dom {
			inSub[id] = true
			member[id] = true
		}
	}
	// Stubs: foreign endpoints of border links.
	for i := range g.Links {
		l := &g.Links[i]
		if member[l.A] != member[l.B] {
			inSub[l.A] = true
			inSub[l.B] = true
		}
	}
	b := NewBuilder()
	s := &Subnet{
		Dom:         dom,
		Name:        p.Names[dom],
		RouterIndex: make([]RouterID, g.NumRouters()),
		LinkIndex:   make([]LinkID, g.NumLinks()),
	}
	for i := range s.RouterIndex {
		s.RouterIndex[i] = -1
	}
	for i := range s.LinkIndex {
		s.LinkIndex[i] = -1
	}
	for id := range g.Routers {
		if !inSub[id] {
			continue
		}
		r := &g.Routers[id]
		opts := []RouterOpt{WithLoopback(r.Loopback)}
		if r.NoFail {
			opts = append(opts, RouterNoFail())
		}
		sid := b.AddRouter(r.Name, r.AS, opts...)
		s.RouterIndex[id] = sid
		s.ToGlobalRouter = append(s.ToGlobalRouter, r.ID)
		s.Member = append(s.Member, member[id])
	}
	for i := range g.Links {
		l := &g.Links[i]
		// Include links with both endpoints present and at least one
		// member endpoint; stub-stub links belong to other domains.
		if !inSub[l.A] || !inSub[l.B] || (!member[l.A] && !member[l.B]) {
			continue
		}
		opts := []LinkOpt{
			WithAsymCost(l.CostAB, l.CostBA),
			WithCapacity(l.Capacity),
			WithAddrs(l.AddrA, l.AddrB),
		}
		if l.NoFail {
			opts = append(opts, LinkNoFail())
		}
		sid := b.AddLink(g.Routers[l.A].Name, g.Routers[l.B].Name, opts...)
		s.LinkIndex[l.ID] = sid
		s.ToGlobalLink = append(s.ToGlobalLink, l.ID)
		if member[l.A] != member[l.B] {
			s.Border = append(s.Border, sid)
		}
	}
	net, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("topo: domain %s subnet: %w", p.Names[dom], err)
	}
	s.Net = net
	return s, nil
}
