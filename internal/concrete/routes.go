// Package concrete implements a concrete (per-scenario) network simulator
// in the style of Jingubang [39]: given one failure scenario it computes
// concrete IGP and BGP routes and simulates every flow's forwarding with
// exact traffic fractions. k-failure verification then enumerates all
// C(n, ≤k) scenarios — the approach whose cost YU's symbolic execution
// avoids (paper §2.1, Figures 11 and 17).
//
// The package is written independently of internal/routesim and
// internal/core so it can serve as a differential-testing oracle: for any
// scenario within the failure budget, YU's symbolic traffic loads
// evaluated at the scenario must equal this simulator's loads.
package concrete

import (
	"container/heap"
	"net/netip"
	"sort"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/topo"
)

// Scenario is one concrete failure scenario.
type Scenario struct {
	LinkDown   []bool // indexed by LinkID
	RouterDown []bool // indexed by RouterID
}

// NewScenario returns an all-alive scenario for the network.
func NewScenario(net *topo.Network) *Scenario {
	return &Scenario{
		LinkDown:   make([]bool, net.NumLinks()),
		RouterDown: make([]bool, net.NumRouters()),
	}
}

// Clone returns a deep copy.
func (s *Scenario) Clone() *Scenario {
	c := &Scenario{
		LinkDown:   append([]bool(nil), s.LinkDown...),
		RouterDown: append([]bool(nil), s.RouterDown...),
	}
	return c
}

// EdgeUp reports whether a directed edge is usable.
func (s *Scenario) EdgeUp(e topo.DirEdge) bool {
	return !s.LinkDown[e.DirLink.Link()] && !s.RouterDown[e.From] && !s.RouterDown[e.To]
}

// Sim simulates one network + configuration under chosen scenarios.
type Sim struct {
	net  *topo.Network
	cfgs config.Configs

	// static per-router config lookups
	networks   [][]netip.Prefix
	statics    [][]config.StaticRoute
	redistrib  []bool
	srPolicies [][]config.SRPolicy
	neighbors  [][]config.BGPNeighbor

	// base is the lazily computed no-failure IGP state, used for the
	// static hot-potato tiebreak (mirrors routesim.IGP.NoFailCost).
	base *igpState
}

// baseDist returns the no-failure IGP cost from r to dest, -1 if
// unreachable.
func (s *Sim) baseDist(r, dest topo.RouterID) int64 {
	if s.base == nil {
		s.base = s.computeIGP(NewScenario(s.net))
	}
	return s.base.dist[r][dest]
}

// NewSim prepares a simulator.
func NewSim(net *topo.Network, cfgs config.Configs) *Sim {
	s := &Sim{
		net:        net,
		cfgs:       cfgs,
		networks:   make([][]netip.Prefix, net.NumRouters()),
		statics:    make([][]config.StaticRoute, net.NumRouters()),
		redistrib:  make([]bool, net.NumRouters()),
		srPolicies: make([][]config.SRPolicy, net.NumRouters()),
		neighbors:  make([][]config.BGPNeighbor, net.NumRouters()),
	}
	for name, rc := range cfgs {
		r, ok := net.RouterByName(name)
		if !ok {
			continue
		}
		s.networks[r.ID] = rc.Networks
		s.statics[r.ID] = rc.Statics
		s.redistrib[r.ID] = rc.RedistributeStatic
		s.srPolicies[r.ID] = rc.SRPolicies
		s.neighbors[r.ID] = rc.Neighbors
	}
	return s
}

// Net returns the topology.
func (s *Sim) Net() *topo.Network { return s.net }

// igpState is the concrete IGP result for one scenario.
type igpState struct {
	// dist[r][dest] is the shortest-path cost, -1 if unreachable.
	dist [][]int64
	// nh[r][dest] is the ECMP set of outgoing directed links.
	nh [][][]topo.DirLinkID
}

func (g *igpState) reach(a, b topo.RouterID) bool { return g.dist[a][b] >= 0 }

type pqItem struct {
	r   topo.RouterID
	d   int64
	idx int
}

type pq []*pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].d < p[j].d }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i]; p[i].idx, p[j].idx = i, j }
func (p *pq) Push(x interface{}) { it := x.(*pqItem); it.idx = len(*p); *p = append(*p, it) }
func (p *pq) Pop() interface{} {
	old := *p
	it := old[len(old)-1]
	*p = old[:len(old)-1]
	return it
}

// computeIGP runs Dijkstra toward every destination in every AS on the
// alive subgraph. (Run per destination on the reversed graph so the ECMP
// next-hop sets fall out directly.)
func (s *Sim) computeIGP(sc *Scenario) *igpState {
	n := s.net.NumRouters()
	g := &igpState{
		dist: make([][]int64, n),
		nh:   make([][][]topo.DirLinkID, n),
	}
	for i := 0; i < n; i++ {
		g.dist[i] = make([]int64, n)
		for j := range g.dist[i] {
			g.dist[i][j] = -1
		}
		g.nh[i] = make([][]topo.DirLinkID, n)
	}
	for _, as := range s.net.ASes() {
		members := s.net.RoutersInAS(as)
		inAS := make(map[topo.RouterID]bool, len(members))
		for _, r := range members {
			inAS[r] = true
		}
		for _, dest := range members {
			if sc.RouterDown[dest] {
				continue
			}
			// Dijkstra from dest over reversed alive edges within AS.
			dist := make(map[topo.RouterID]int64, len(members))
			dist[dest] = 0
			h := &pq{}
			heap.Push(h, &pqItem{r: dest, d: 0})
			done := make(map[topo.RouterID]bool, len(members))
			for h.Len() > 0 {
				it := heap.Pop(h).(*pqItem)
				if done[it.r] {
					continue
				}
				done[it.r] = true
				// Relax reversed edges: for edge u->it.r, candidate
				// dist[u] = dist[it.r] + cost(u->it.r).
				for _, e := range s.net.In(it.r) {
					if !inAS[e.From] || !sc.EdgeUp(e) {
						continue
					}
					nd := it.d + e.Cost
					if cur, ok := dist[e.From]; !ok || nd < cur {
						dist[e.From] = nd
						heap.Push(h, &pqItem{r: e.From, d: nd})
					}
				}
			}
			for r, d := range dist {
				g.dist[r][dest] = d
			}
			// ECMP next hops: edges on some shortest path.
			for _, r := range members {
				if r == dest || g.dist[r][dest] < 0 {
					continue
				}
				var nhs []topo.DirLinkID
				for _, e := range s.net.Out(r) {
					if !inAS[e.To] || !sc.EdgeUp(e) {
						continue
					}
					td := g.dist[e.To][dest]
					if e.To == dest {
						td = 0
					}
					if td >= 0 && e.Cost+td == g.dist[r][dest] {
						nhs = append(nhs, e.DirLink)
					}
				}
				sort.Slice(nhs, func(i, j int) bool { return nhs[i] < nhs[j] })
				g.nh[r][dest] = nhs
			}
		}
	}
	return g
}
