package concrete

import (
	"net/netip"
	"sort"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/topo"
)

// route is one concrete BGP route.
type route struct {
	prefix    netip.Prefix
	nextHop   netip.Addr
	direct    bool
	outEdge   topo.DirLinkID
	nhRouter  topo.RouterID
	deliver   bool
	discard   bool
	advOnly   bool
	asPath    []uint32
	localPref uint32
	fromEBGP  bool
	igpCost   int64
}

func (r *route) better(o *route) bool {
	if r.localPref != o.localPref {
		return r.localPref > o.localPref
	}
	rl, ol := r.deliver || r.discard || r.advOnly, o.deliver || o.discard || o.advOnly
	if rl != ol {
		return rl
	}
	if len(r.asPath) != len(o.asPath) {
		return len(r.asPath) < len(o.asPath)
	}
	if r.fromEBGP != o.fromEBGP {
		return r.fromEBGP
	}
	if r.igpCost != o.igpCost {
		return r.igpCost < o.igpCost
	}
	return false
}

func (r *route) key() string {
	k := r.nextHop.String()
	if r.direct {
		k += "|d"
	}
	if r.deliver {
		k += "|D"
	}
	if r.discard {
		k += "|X"
	}
	if r.advOnly {
		k += "|A"
	}
	if r.fromEBGP {
		k += "|e"
	}
	for _, as := range r.asPath {
		k += "|" + itoa(as)
	}
	k += "|" + itoa(r.localPref)
	k += "|" + itoa(uint32(r.igpCost>>20)) + itoa(uint32(r.igpCost)&0xfffff)
	return k
}

func itoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var b [10]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// bgpState holds each router's concrete RIB: per prefix, the full
// candidate list sorted most-preferred first.
type bgpState struct {
	ribs []map[netip.Prefix][]*route
}

// bestGroup returns the ECMP set: the most-preferred candidates.
func bestGroup(cands []*route) []*route {
	if len(cands) == 0 {
		return nil
	}
	best := cands[:1]
	for _, c := range cands[1:] {
		if !best[0].better(c) && !c.better(best[0]) {
			best = append(best, c)
		}
	}
	return best
}

// computeBGP runs concrete BGP propagation to a fixed point under one
// scenario, mirroring the symbolic simulator's semantics: multipath
// selection, iBGP next-hop-self, AS-path loop rejection, no iBGP
// re-advertisement, export-deny policies.
func (s *Sim) computeBGP(sc *Scenario, igp *igpState) *bgpState {
	n := s.net.NumRouters()
	st := &bgpState{ribs: make([]map[netip.Prefix][]*route, n)}

	seeds := make([]map[netip.Prefix][]*route, n)
	for i := 0; i < n; i++ {
		seeds[i] = make(map[netip.Prefix][]*route)
		if sc.RouterDown[i] {
			continue
		}
		r := s.net.Router(topo.RouterID(i))
		for _, pfx := range s.networks[i] {
			seeds[i][pfx] = append(seeds[i][pfx], &route{
				prefix: pfx, nextHop: r.Loopback, nhRouter: r.ID,
				deliver: true, localPref: config.DefaultLocalPref,
			})
		}
		if s.redistrib[i] {
			for _, stc := range s.statics[i] {
				if !stc.Discard {
					if d, ok := s.net.DirLinkToAddr(stc.NextHop); ok {
						if !sc.EdgeUp(s.net.Edge(d)) {
							continue
						}
					}
				}
				seeds[i][stc.Prefix] = append(seeds[i][stc.Prefix], &route{
					prefix: stc.Prefix, nextHop: r.Loopback, nhRouter: r.ID,
					discard: stc.Discard, advOnly: true, localPref: config.DefaultLocalPref,
				})
			}
		}
	}

	type sess struct {
		from, to   topo.RouterID
		ebgp       bool
		edge       topo.DirEdge
		importPref uint32
		deny       []netip.Prefix
	}
	var sessions []sess
	for i := 0; i < n; i++ {
		recv := topo.RouterID(i)
		r := s.net.Router(recv)
		for _, nb := range s.neighbors[i] {
			if nb.RemoteAS == r.AS {
				peer, ok := s.net.RouterByLoopback(nb.Addr)
				if !ok {
					continue
				}
				sessions = append(sessions, sess{from: peer.ID, to: recv})
			} else if d, ok := s.net.DirLinkToAddr(nb.Addr); ok {
				e := s.net.Edge(d)
				pref := nb.LocalPref
				if pref == 0 {
					pref = config.DefaultLocalPref
				}
				sessions = append(sessions, sess{from: e.To, to: recv, ebgp: true, edge: e, importPref: pref})
			}
		}
	}
	// Attach exporter-side deny lists.
	for i := 0; i < n; i++ {
		r := s.net.Router(topo.RouterID(i))
		for _, nb := range s.neighbors[i] {
			if len(nb.ExportDeny) == 0 {
				continue
			}
			var peer topo.RouterID = -1
			if nb.RemoteAS == r.AS {
				if p, ok := s.net.RouterByLoopback(nb.Addr); ok {
					peer = p.ID
				}
			} else if d, ok := s.net.DirLinkToAddr(nb.Addr); ok {
				peer = s.net.Edge(d).To
			}
			for j := range sessions {
				if sessions[j].from == r.ID && sessions[j].to == peer {
					sessions[j].deny = nb.ExportDeny
				}
			}
		}
	}

	ribs := seeds
	maxRounds := 2*s.net.Diameter() + 8
	for round := 0; round < maxRounds; round++ {
		next := make([]map[netip.Prefix][]*route, n)
		for i := 0; i < n; i++ {
			next[i] = make(map[netip.Prefix][]*route)
			for pfx, cands := range seeds[i] {
				next[i][pfx] = append([]*route(nil), cands...)
			}
		}
		for _, ss := range sessions {
			if sc.RouterDown[ss.from] || sc.RouterDown[ss.to] {
				continue
			}
			if ss.ebgp {
				if !sc.EdgeUp(ss.edge) {
					continue
				}
			} else if !igp.reach(ss.from, ss.to) {
				continue
			}
			fromR := s.net.Router(ss.from)
			toR := s.net.Router(ss.to)
			for pfx, cands := range ribs[ss.from] {
				if deniedPfx(ss.deny, pfx) {
					continue
				}
				// One advertisement per session: the representative of
				// the best present group with the least AS path
				// (mirrors the symbolic simulator's rank-group rule).
				group := bestGroup(cands)
				if len(group) == 0 {
					continue
				}
				c := group[0]
				for _, g := range group[1:] {
					if lessASPathConc(g.asPath, c.asPath) {
						c = g
					}
				}
				{
					if !ss.ebgp && !c.fromEBGP && !(c.deliver || c.discard || c.advOnly) {
						continue
					}
					adv := &route{prefix: pfx}
					if ss.ebgp {
						if hasASConc(c.asPath, toR.AS) {
							continue
						}
						adv.asPath = append([]uint32{fromR.AS}, c.asPath...)
						adv.nextHop = ss.edge.RemoteAddr
						adv.direct = true
						adv.outEdge = ss.edge.DirLink
						adv.localPref = ss.importPref
						adv.fromEBGP = true
					} else {
						adv.asPath = c.asPath
						adv.nextHop = fromR.Loopback
						adv.nhRouter = ss.from
						adv.localPref = c.localPref
						// Static hot-potato tiebreak, mirroring the
						// symbolic simulator.
						if d := s.baseDist(ss.to, ss.from); d >= 0 {
							adv.igpCost = d
						} else {
							adv.igpCost = 1 << 50
						}
					}
					next[ss.to][pfx] = append(next[ss.to][pfx], adv)
				}
			}
		}
		// Normalize: dedupe and sort.
		stable := true
		for i := 0; i < n; i++ {
			for pfx, cands := range next[i] {
				seen := make(map[string]bool, len(cands))
				out := cands[:0]
				for _, c := range cands {
					k := c.key()
					if !seen[k] {
						seen[k] = true
						out = append(out, c)
					}
				}
				sort.SliceStable(out, func(a, b int) bool { return out[a].better(out[b]) })
				next[i][pfx] = out
			}
			if stable && !sameConcRIB(ribs[i], next[i]) {
				stable = false
			}
		}
		ribs = next
		if stable {
			break
		}
	}
	st.ribs = ribs
	return st
}

func sameConcRIB(a, b map[netip.Prefix][]*route) bool {
	if len(a) != len(b) {
		return false
	}
	for pfx, ac := range a {
		bc, ok := b[pfx]
		if !ok || len(ac) != len(bc) {
			return false
		}
		for i := range ac {
			if ac[i].key() != bc[i].key() {
				return false
			}
		}
	}
	return true
}

func lessASPathConc(a, b []uint32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func hasASConc(path []uint32, as uint32) bool {
	for _, a := range path {
		if a == as {
			return true
		}
	}
	return false
}

func deniedPfx(deny []netip.Prefix, pfx netip.Prefix) bool {
	for _, d := range deny {
		if d == pfx {
			return true
		}
	}
	return false
}
