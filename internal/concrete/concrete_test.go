package concrete_test

import (
	"math"
	"net/netip"
	"testing"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/concrete"
	"github.com/yu-verify/yu/internal/core"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/paperex"
	"github.com/yu-verify/yu/internal/routesim"
	"github.com/yu-verify/yu/internal/topo"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func mustSpec(t *testing.T, load func() (*config.Spec, error)) *config.Spec {
	t.Helper()
	spec, err := load()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func failLinks(t *testing.T, net *topo.Network, names ...string) *concrete.Scenario {
	t.Helper()
	sc := concrete.NewScenario(net)
	for _, name := range names {
		var a, b string
		for i := 0; i < len(name); i++ {
			if name[i] == '-' {
				a, b = name[:i], name[i+1:]
			}
		}
		l, ok := net.FindLink(a, b)
		if !ok {
			t.Fatalf("no link %s", name)
		}
		sc.LinkDown[l.ID] = true
	}
	return sc
}

func loadOf(t *testing.T, net *topo.Network, res *concrete.ScenarioResult, a, b string) float64 {
	t.Helper()
	d, ok := net.FindDirLink(a, b)
	if !ok {
		t.Fatalf("no link %s->%s", a, b)
	}
	return res.Load[d]
}

// TestConcreteMotivatingScenarios reproduces Figure 1(a)-(e) with the
// concrete simulator.
func TestConcreteMotivatingScenarios(t *testing.T) {
	spec := mustSpec(t, paperex.MotivatingSpec)
	sim := concrete.NewSim(spec.Net, spec.Configs)

	// (a) no failures.
	res := sim.Simulate(concrete.NewScenario(spec.Net), spec.Flows)
	for _, c := range []struct {
		a, b string
		want float64
	}{{"A", "C", 20}, {"B", "C", 40}, {"B", "D", 40}, {"C", "E", 70}, {"D", "E", 30}, {"D", "C", 10}} {
		if got := loadOf(t, spec.Net, res, c.a, c.b); !approx(got, c.want) {
			t.Errorf("(a) %s->%s = %.6g, want %.6g", c.a, c.b, got, c.want)
		}
	}
	if !approx(res.Delivered[0]+res.Delivered[1], 100) {
		t.Errorf("(a) delivered = %.6g", res.Delivered[0]+res.Delivered[1])
	}

	// (c) B-D fails: C-E carries 100.
	res = sim.Simulate(failLinks(t, spec.Net, "B-D"), spec.Flows)
	if got := loadOf(t, spec.Net, res, "C", "E"); !approx(got, 100) {
		t.Errorf("(c) C->E = %.6g, want 100", got)
	}

	// (e) B-C and B-D fail: everything via A.
	res = sim.Simulate(failLinks(t, spec.Net, "B-C", "B-D"), spec.Flows)
	if got := loadOf(t, spec.Net, res, "A", "C"); !approx(got, 100) {
		t.Errorf("(e) A->C = %.6g, want 100", got)
	}
}

// TestDifferentialSymbolicVsConcrete is the repository's central
// end-to-end invariant: for every scenario within the failure budget, the
// symbolic traffic load evaluated at that scenario equals the concrete
// simulator's load, on every directed link, for several fixtures.
func TestDifferentialSymbolicVsConcrete(t *testing.T) {
	fixtures := []struct {
		name string
		text string
	}{
		{"motivating", paperex.Motivating},
		{"sranycast", paperex.SRAnycast},
		{"misconfig", paperex.Misconfig},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			spec, err := config.ParseSpecString(fx.text)
			if err != nil {
				t.Fatal(err)
			}
			const k = 2
			m := mtbdd.New()
			fv := routesim.NewFailVars(m, spec.Net, topo.FailLinks, k)
			rs, err := routesim.Run(fv, spec.Configs)
			if err != nil {
				t.Fatal(err)
			}
			eng := core.NewEngine(rs, core.Options{DisableGlobalEquiv: true})
			ver := core.NewVerifier(eng, spec.Flows)
			sim := concrete.NewSim(spec.Net, spec.Configs)

			// Enumerate all scenarios with <= k failed links.
			var failable []topo.LinkID
			for i := range spec.Net.Links {
				if !spec.Net.Links[i].NoFail {
					failable = append(failable, topo.LinkID(i))
				}
			}
			var scenarios [][]topo.LinkID
			scenarios = append(scenarios, nil)
			for i, a := range failable {
				scenarios = append(scenarios, []topo.LinkID{a})
				for _, b := range failable[i+1:] {
					scenarios = append(scenarios, []topo.LinkID{a, b})
				}
			}
			for _, failed := range scenarios {
				sc := concrete.NewScenario(spec.Net)
				for _, l := range failed {
					sc.LinkDown[l] = true
				}
				res := sim.Simulate(sc, spec.Flows)
				assign := fv.Scenario(failed, nil)
				for li := range spec.Net.Links {
					for _, d := range []topo.Direction{topo.AtoB, topo.BtoA} {
						dl := topo.MakeDirLinkID(topo.LinkID(li), d)
						tau, _ := ver.LinkLoad(dl)
						sym := m.Eval(tau, assign)
						conc := res.Load[dl]
						if !approx(sym, conc) {
							t.Fatalf("failed=%v link %s: symbolic %.9g vs concrete %.9g",
								failed, spec.Net.DirLinkName(dl), sym, conc)
						}
					}
				}
				// Delivered totals must agree too.
				var concDel float64
				for fi := range spec.Flows {
					concDel += res.Delivered[fi]
				}
				var symDel float64
				for _, s := range ver.FlowSTFs() {
					symDel += s.Flow.Gbps * m.Eval(s.Delivered, assign)
				}
				if !approx(symDel, concDel) {
					t.Fatalf("failed=%v delivered: symbolic %.9g vs concrete %.9g", failed, symDel, concDel)
				}
			}
		})
	}
}

// TestEnumerationFindsPaperViolation checks the baseline verifier finds
// the B-D failure overload, matching YU.
func TestEnumerationFindsPaperViolation(t *testing.T) {
	spec := mustSpec(t, paperex.MotivatingSpec)
	sim := concrete.NewSim(spec.Net, spec.Configs)
	rep := sim.VerifyKFailures(spec.Flows, 1, topo.FailLinks, concrete.EnumOptions{OverloadFactor: 0.95})
	if rep.Holds {
		t.Fatal("expected violations")
	}
	bd, _ := spec.Net.FindLink("B", "D")
	ce, _ := spec.Net.FindDirLink("C", "E")
	found := false
	for _, v := range rep.Violations {
		if v.Link == ce && len(v.FailedLinks) == 1 && v.FailedLinks[0] == bd.ID {
			found = true
			if !approx(v.Value, 100) {
				t.Errorf("C-E load = %.6g", v.Value)
			}
		}
	}
	if !found {
		t.Error("B-D -> C-E violation not found by enumeration")
	}
	// Scenario count: 1 + n for k=1.
	n := 0
	for i := range spec.Net.Links {
		if !spec.Net.Links[i].NoFail {
			n++
		}
	}
	if rep.Scenarios != 1+n {
		t.Errorf("scenarios = %d, want %d", rep.Scenarios, 1+n)
	}
}

// TestIncrementalMatchesFull cross-checks the incremental enumerator
// against full re-simulation on all three fixtures.
func TestIncrementalMatchesFull(t *testing.T) {
	for _, text := range []string{paperex.Motivating, paperex.SRAnycast, paperex.Misconfig} {
		spec, err := config.ParseSpecString(text)
		if err != nil {
			t.Fatal(err)
		}
		sim := concrete.NewSim(spec.Net, spec.Configs)
		full := sim.VerifyKFailures(spec.Flows, 2, topo.FailLinks,
			concrete.EnumOptions{OverloadFactor: 1.0, Delivered: spec.Delivered})
		inc := sim.VerifyKFailures(spec.Flows, 2, topo.FailLinks,
			concrete.EnumOptions{OverloadFactor: 1.0, Delivered: spec.Delivered, Incremental: true})
		if full.Holds != inc.Holds || len(full.Violations) != len(inc.Violations) {
			t.Fatalf("incremental mismatch: full %d violations (holds=%v), inc %d (holds=%v)",
				len(full.Violations), full.Holds, len(inc.Violations), inc.Holds)
		}
		if inc.SimulatedFlows >= full.SimulatedFlows {
			t.Errorf("incremental did not save work: %d >= %d", inc.SimulatedFlows, full.SimulatedFlows)
		}
	}
}

// TestMisconfigDropScenario reproduces Figure 10 concretely: failing the
// D1-WAN link drops the service traffic.
func TestMisconfigDropScenario(t *testing.T) {
	spec := mustSpec(t, paperex.MisconfigSpec)
	sim := concrete.NewSim(spec.Net, spec.Configs)
	// No failure: traffic delivered.
	res := sim.Simulate(concrete.NewScenario(spec.Net), spec.Flows)
	if !approx(res.Delivered[0], 100) {
		t.Fatalf("no-failure delivered = %.6g, want 100", res.Delivered[0])
	}
	// D1-WAN fails: traffic matches 10/8 at D1 and is discarded.
	res = sim.Simulate(failLinks(t, spec.Net, "D1-WAN"), spec.Flows)
	if !approx(res.Delivered[0], 0) {
		t.Errorf("delivered = %.6g after D1-WAN failure, want 0 (dropped at D1)", res.Delivered[0])
	}
	if !approx(res.Dropped[0], 100) {
		t.Errorf("dropped = %.6g, want 100", res.Dropped[0])
	}
	// M1-D1 fails instead: redundancy works, traffic survives via M2-D2.
	res = sim.Simulate(failLinks(t, spec.Net, "M1-D1"), spec.Flows)
	if !approx(res.Delivered[0], 100) {
		t.Errorf("delivered = %.6g after M1-D1 failure, want 100 (via M2/D2)", res.Delivered[0])
	}
}

// TestSRAnycastOverload reproduces Figure 9 concretely: failing B2-C2
// pushes 80 Gbps over the 50 Gbps B1-B2 link.
func TestSRAnycastOverload(t *testing.T) {
	spec := mustSpec(t, paperex.SRAnycastSpec)
	sim := concrete.NewSim(spec.Net, spec.Configs)
	res := sim.Simulate(concrete.NewScenario(spec.Net), spec.Flows)
	if got := loadOf(t, spec.Net, res, "B1", "B2") + loadOf(t, spec.Net, res, "B2", "B1"); !approx(got, 0) {
		t.Fatalf("B1-B2 carries %.6g with no failure, want 0", got)
	}
	res = sim.Simulate(failLinks(t, spec.Net, "B2-C2"), spec.Flows)
	if got := loadOf(t, spec.Net, res, "B2", "B1"); !approx(got, 80) {
		t.Errorf("B2->B1 = %.6g after B2-C2 failure, want 80", got)
	}
	if !approx(res.Delivered[0], 160) {
		t.Errorf("delivered = %.6g, want 160", res.Delivered[0])
	}
}

// TestDeliveredBoundEnumeration checks delivered-bound handling.
func TestDeliveredBoundEnumeration(t *testing.T) {
	spec := mustSpec(t, paperex.MisconfigSpec)
	sim := concrete.NewSim(spec.Net, spec.Configs)
	rep := sim.VerifyKFailures(spec.Flows, 1, topo.FailLinks, concrete.EnumOptions{
		Delivered: []topo.DeliveredBound{{Prefix: netip.MustParsePrefix("10.1.0.0/26"), Min: 99, Max: math.Inf(1)}},
	})
	if rep.Holds {
		t.Fatal("expected a delivered violation")
	}
	d1wan, _ := spec.Net.FindLink("D1", "WAN")
	found := false
	for _, v := range rep.Violations {
		if v.Kind == "delivered" && len(v.FailedLinks) == 1 && v.FailedLinks[0] == d1wan.ID {
			found = true
		}
	}
	if !found {
		t.Error("D1-WAN delivered violation not found")
	}
}

// TestStopAtFirst checks early termination.
func TestStopAtFirst(t *testing.T) {
	spec := mustSpec(t, paperex.MotivatingSpec)
	sim := concrete.NewSim(spec.Net, spec.Configs)
	rep := sim.VerifyKFailures(spec.Flows, 1, topo.FailLinks,
		concrete.EnumOptions{OverloadFactor: 0.95, StopAtFirst: true})
	if len(rep.Violations) != 1 {
		t.Errorf("violations = %d, want exactly 1", len(rep.Violations))
	}
}
