package concrete

import (
	"net/netip"
	"sort"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/topo"
)

// ScenarioResult holds the concrete traffic of all flows under one
// scenario.
type ScenarioResult struct {
	// Load is the traffic in Gbps per directed link.
	Load map[topo.DirLinkID]float64
	// Delivered is the traffic delivered per flow index.
	Delivered []float64
	// Dropped is the traffic dropped per flow index.
	Dropped []float64
}

// FlowTrace is one flow's concrete result under one scenario: its own
// per-link loads plus the set of routers its traffic visited. The
// trajectory (links with nonzero load + visited routers) is what the
// incremental enumerator checks against failed elements.
type FlowTrace struct {
	Load      map[topo.DirLinkID]float64
	Delivered float64
	Dropped   float64
	Routers   map[topo.RouterID]bool
}

// routesFor bundles the per-scenario routing state.
type routesFor struct {
	sc  *Scenario
	igp *igpState
	bgp *bgpState
}

// ComputeRoutes computes concrete IGP and BGP routing for one scenario.
func (s *Sim) ComputeRoutes(sc *Scenario) *routesFor {
	igp := s.computeIGP(sc)
	return &routesFor{sc: sc, igp: igp, bgp: s.computeBGP(sc, igp)}
}

// Simulate computes the concrete traffic loads of all flows under one
// scenario (recomputing routes).
func (s *Sim) Simulate(sc *Scenario, flows []topo.Flow) *ScenarioResult {
	return s.SimulateWithRoutes(s.ComputeRoutes(sc), flows)
}

// fwdRule is one concrete forwarding action with its share weight.
type fwdRule struct {
	deliver bool
	discard bool
	direct  bool
	out     topo.DirLinkID
	via     topo.RouterID
	viaAddr netip.Addr
}

// lookup returns the concrete ECMP set for dst at router r: the
// most-preferred present rules under LPM, statics before BGP.
func (s *Sim) lookup(rt *routesFor, r topo.RouterID, dst netip.Addr) []fwdRule {
	// Collect matching prefixes, longest first.
	pfxSet := make(map[netip.Prefix]bool)
	for _, st := range s.statics[r] {
		if st.Prefix.Contains(dst) {
			pfxSet[st.Prefix] = true
		}
	}
	for pfx := range rt.bgp.ribs[r] {
		if pfx.Contains(dst) {
			pfxSet[pfx] = true
		}
	}
	var pfxs []netip.Prefix
	for pfx := range pfxSet {
		pfxs = append(pfxs, pfx)
	}
	sort.Slice(pfxs, func(i, j int) bool {
		if pfxs[i].Bits() != pfxs[j].Bits() {
			return pfxs[i].Bits() > pfxs[j].Bits()
		}
		return pfxs[i].Addr().Less(pfxs[j].Addr())
	})
	for _, pfx := range pfxs {
		// Statics first (admin distance).
		var rules []fwdRule
		for _, st := range s.statics[r] {
			if st.Prefix != pfx {
				continue
			}
			if st.Discard {
				rules = append(rules, fwdRule{discard: true})
				continue
			}
			if d, ok := s.net.DirLinkToAddr(st.NextHop); ok {
				e := s.net.Edge(d)
				if rt.sc.EdgeUp(e) && e.From == r {
					rules = append(rules, fwdRule{direct: true, out: d})
				}
				continue
			}
			if owner, ok := s.net.RouterByLoopback(st.NextHop); ok {
				rules = append(rules, fwdRule{via: owner.ID, viaAddr: st.NextHop})
			}
		}
		if len(rules) > 0 {
			return rules
		}
		// BGP best group.
		var avail []*route
		for _, c := range rt.bgp.ribs[r][pfx] {
			if c.advOnly {
				continue
			}
			avail = append(avail, c)
		}
		for _, c := range bestGroup(avail) {
			fr := fwdRule{deliver: c.deliver, discard: c.discard}
			if !c.deliver && !c.discard {
				if c.direct {
					fr.direct = true
					fr.out = c.outEdge
				} else {
					fr.via = c.nhRouter
					fr.viaAddr = c.nextHop
				}
			}
			rules = append(rules, fr)
		}
		if len(rules) > 0 {
			return rules
		}
	}
	return nil
}

// SimulateWithRoutes simulates flow forwarding given precomputed routes.
func (s *Sim) SimulateWithRoutes(rt *routesFor, flows []topo.Flow) *ScenarioResult {
	res := &ScenarioResult{
		Load:      make(map[topo.DirLinkID]float64),
		Delivered: make([]float64, len(flows)),
		Dropped:   make([]float64, len(flows)),
	}
	for fi, f := range flows {
		tr := s.SimulateFlow(rt, f)
		res.Delivered[fi] = tr.Delivered
		res.Dropped[fi] = tr.Dropped
		for l, v := range tr.Load {
			res.Load[l] += v
		}
	}
	return res
}

type cell struct {
	router topo.RouterID
	stack  string
}

const maxHops = 64

// SimulateFlow propagates one flow's traffic wavefront under precomputed
// routes and returns its trace.
func (s *Sim) SimulateFlow(rt *routesFor, f topo.Flow) *FlowTrace {
	tr := &FlowTrace{
		Load:    make(map[topo.DirLinkID]float64),
		Routers: make(map[topo.RouterID]bool),
	}
	tr.Routers[f.Ingress] = true
	if rt.sc.RouterDown[f.Ingress] {
		tr.Dropped += f.Gbps
		return tr
	}
	stacks := map[string][]topo.RouterID{"": nil}
	front := map[cell]float64{{f.Ingress, ""}: f.Gbps}
	for hop := 0; hop < maxHops && len(front) > 0; hop++ {
		next := make(map[cell]float64)
		for c, vol := range front {
			tr.Routers[c.router] = true
			s.forwardCell(rt, f, c.router, stacks[c.stack], vol, tr, next, stacks, 0)
		}
		front = next
	}
	// Any remainder is circulating (loop); count it dropped for
	// conservation.
	for _, vol := range front {
		tr.Dropped += vol
	}
	return tr
}

func stackKeyOf(segs []topo.RouterID) string {
	b := make([]byte, 0, len(segs)*3)
	for _, r := range segs {
		v := uint32(r)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), ',')
	}
	return string(b)
}

// forwardCell forwards vol Gbps of flow f arriving at router r with the
// given label stack.
func (s *Sim) forwardCell(rt *routesFor, f topo.Flow, r topo.RouterID, segs []topo.RouterID,
	vol float64, tr *FlowTrace, next map[cell]float64, stacks map[string][]topo.RouterID, depth int) {

	// Pop leading self-segments.
	for len(segs) > 0 && segs[0] == r {
		segs = segs[1:]
	}
	if len(segs) > 0 {
		// Steer toward the first segment over the IGP.
		s.igpForward(rt, r, segs[0], segs, vol, tr, next, stacks)
		return
	}
	// Plain IP forwarding.
	rules := s.lookup(rt, r, f.Dst)
	if len(rules) == 0 {
		tr.Dropped += vol
		return
	}
	share := vol / float64(len(rules))
	for _, ru := range rules {
		switch {
		case ru.deliver:
			tr.Delivered += share
		case ru.discard:
			tr.Dropped += share
		case ru.direct:
			s.emit(ru.out, nil, share, tr, next, stacks)
		default:
			// Indirect: SR policy match, then IGP.
			if pol := s.matchSR(r, ru.viaAddr, f.DSCP); pol != nil && depth < 4 {
				s.srForward(rt, r, pol, share, f, tr, next, stacks, depth)
			} else {
				s.igpForward(rt, r, ru.via, nil, share, tr, next, stacks)
			}
		}
	}
}

func (s *Sim) matchSR(r topo.RouterID, nip netip.Addr, dscp uint8) *config.SRPolicy {
	for i := range s.srPolicies[r] {
		if s.srPolicies[r][i].Matches(nip, dscp) {
			return &s.srPolicies[r][i]
		}
	}
	return nil
}

// srForward splits traffic over the valid weighted SR paths; traffic is
// dropped if no path is valid (strict steering, matching internal/core).
func (s *Sim) srForward(rt *routesFor, r topo.RouterID, pol *config.SRPolicy, vol float64,
	f topo.Flow, tr *FlowTrace, next map[cell]float64, stacks map[string][]topo.RouterID, depth int) {

	type validPath struct {
		segs   []topo.RouterID
		weight int64
	}
	var valid []validPath
	var totalW int64
	for _, p := range pol.Paths {
		segs := make([]topo.RouterID, 0, len(p.Segments))
		ok := true
		prev := r
		for _, addr := range p.Segments {
			owner, found := s.net.RouterByLoopback(addr)
			if !found {
				ok = false
				break
			}
			if prev != owner.ID && !rt.igp.reach(prev, owner.ID) {
				ok = false
				break
			}
			segs = append(segs, owner.ID)
			prev = owner.ID
		}
		if ok {
			valid = append(valid, validPath{segs, p.Weight})
			totalW += p.Weight
		}
	}
	if totalW == 0 {
		tr.Dropped += vol
		return
	}
	for _, p := range valid {
		share := vol * float64(p.weight) / float64(totalW)
		// Forward with the path's full stack from this router.
		s.forwardCellWithStack(rt, r, p.segs, share, f, tr, next, stacks, depth+1)
	}
}

// forwardCellWithStack handles a freshly attached stack at r (popping any
// leading self segments and steering).
func (s *Sim) forwardCellWithStack(rt *routesFor, r topo.RouterID, segs []topo.RouterID, vol float64,
	f topo.Flow, tr *FlowTrace, next map[cell]float64, stacks map[string][]topo.RouterID, depth int) {

	for len(segs) > 0 && segs[0] == r {
		segs = segs[1:]
	}
	if len(segs) == 0 {
		s.forwardCell(rt, f, r, nil, vol, tr, next, stacks, depth)
		return
	}
	s.igpForward(rt, r, segs[0], segs, vol, tr, next, stacks)
}

// igpForward ECMP-splits vol over the shortest paths toward dest,
// emitting with the given (possibly empty) label stack.
func (s *Sim) igpForward(rt *routesFor, r, dest topo.RouterID, segs []topo.RouterID, vol float64,
	tr *FlowTrace, next map[cell]float64, stacks map[string][]topo.RouterID) {

	nhs := rt.igp.nh[r][dest]
	if len(nhs) == 0 {
		tr.Dropped += vol
		return
	}
	share := vol / float64(len(nhs))
	for _, d := range nhs {
		s.emit(d, segs, share, tr, next, stacks)
	}
}

func (s *Sim) emit(d topo.DirLinkID, segs []topo.RouterID, vol float64,
	tr *FlowTrace, next map[cell]float64, stacks map[string][]topo.RouterID) {

	tr.Load[d] += vol
	to := s.net.Edge(d).To
	key := stackKeyOf(segs)
	if _, ok := stacks[key]; !ok {
		stacks[key] = append([]topo.RouterID(nil), segs...)
	}
	next[cell{to, key}] += vol
}
