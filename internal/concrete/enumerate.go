package concrete

import (
	"context"
	"errors"
	"math"
	"net/netip"

	"github.com/yu-verify/yu/internal/govern"
	"github.com/yu-verify/yu/internal/topo"
)

// EnumViolation is one violation found by scenario enumeration.
type EnumViolation struct {
	Kind          string // "link-load" or "delivered"
	Link          topo.DirLinkID
	Prefix        netip.Prefix
	Value         float64
	Min, Max      float64
	FailedLinks   []topo.LinkID
	FailedRouters []topo.RouterID
}

// EnumReport is the result of enumerating verification.
type EnumReport struct {
	Violations []EnumViolation
	Holds      bool
	// Scenarios is the number of concrete scenarios simulated.
	Scenarios int
	// SimulatedFlows counts flow simulations executed (for the
	// incremental mode this is less than Scenarios × flows).
	SimulatedFlows int
	// TimedOut is set when the deadline expired before the enumeration
	// finished; Holds is then meaningless.
	TimedOut bool
	// Err is the governance error that cut the enumeration short
	// (govern.ErrCanceled / govern.ErrDeadline); nil on a full run.
	// Holds is meaningless when Err is non-nil.
	Err error
}

// EnumOptions configures enumeration.
type EnumOptions struct {
	// StopAtFirst returns after the first violation.
	StopAtFirst bool
	// Incremental skips re-simulating flows provably unaffected by the
	// scenario: flows whose baseline (no-failure) trajectory avoids every
	// failed element AND whose visited routers all kept their baseline
	// routing state (IGP rows and BGP RIBs) — the spirit of Jingubang's
	// incremental simulation. The trajectory test alone is unsound: a
	// remote failure can sever an iBGP session or shift IGP state at a
	// router the flow visits, rerouting it even though the failed link
	// itself carried none of its traffic.
	Incremental bool
	// OverloadFactor, when > 0, checks load <= factor×capacity on every
	// directed link.
	OverloadFactor float64
	Bounds         []topo.LoadBound
	Delivered      []topo.DeliveredBound
	// Ctx, when non-nil, makes the enumeration cancellable; it is polled
	// periodically between scenarios. Wall-clock limits are expressed as
	// a deadline on Ctx (context.WithTimeout / WithDeadline).
	Ctx context.Context
}

// VerifyKFailures enumerates every failure scenario with at most k failed
// elements of the given mode and checks the properties concretely — the
// O(n^k) baseline the paper compares against.
func (s *Sim) VerifyKFailures(flows []topo.Flow, k int, mode topo.FailureMode, opts EnumOptions) *EnumReport {
	rep := &EnumReport{Holds: true}
	ctx := opts.Ctx

	var elems []elem
	if mode == topo.FailLinks || mode == topo.FailBoth {
		for i := range s.net.Links {
			if !s.net.Links[i].NoFail {
				elems = append(elems, elem{link: topo.LinkID(i), isLink: true})
			}
		}
	}
	if mode == topo.FailRouters || mode == topo.FailBoth {
		for i := range s.net.Routers {
			if !s.net.Routers[i].NoFail {
				elems = append(elems, elem{router: topo.RouterID(i)})
			}
		}
	}

	sc := NewScenario(s.net)
	var chosen []elem

	// Incremental mode: simulate the no-failure baseline once and keep
	// per-flow traces plus the baseline routing state. A flow needs
	// re-simulation under a scenario only if a failed element lies on its
	// baseline trajectory, or a router it visits no longer has its
	// baseline routing state. The first test alone is NOT sufficient:
	// failing a link far from a flow's path can sever an iBGP session (or
	// change IGP reachability) and thereby withdraw or replace routes at
	// a router the flow traverses.
	var baseTraces []*FlowTrace
	var baseLoad map[topo.DirLinkID]float64
	var baseRoutes *routesFor
	if opts.Incremental {
		baseRoutes = s.ComputeRoutes(NewScenario(s.net))
		baseLoad = make(map[topo.DirLinkID]float64)
		for _, f := range flows {
			tr := s.SimulateFlow(baseRoutes, f)
			baseTraces = append(baseTraces, tr)
			for l, v := range tr.Load {
				baseLoad[l] += v
			}
		}
	}

	affected := func(rt *routesFor) []int {
		changed := s.changedRouters(baseRoutes, rt)
		var out []int
		for fi, tr := range baseTraces {
			hit := false
			for _, e := range chosen {
				if e.isLink {
					l := e.link
					if tr.Load[topo.MakeDirLinkID(l, topo.AtoB)] > 0 || tr.Load[topo.MakeDirLinkID(l, topo.BtoA)] > 0 {
						hit = true
						break
					}
				} else if tr.Routers[e.router] {
					hit = true
					break
				}
			}
			for r := range tr.Routers {
				if hit {
					break
				}
				hit = changed[r]
			}
			if hit {
				out = append(out, fi)
			}
		}
		return out
	}

	var visit func(start, budget int) bool
	check := func() bool {
		if rep.Scenarios%64 == 0 {
			if err := govern.Check(ctx); err != nil {
				rep.Err = err
				rep.TimedOut = errors.Is(err, govern.ErrDeadline)
				return false
			}
		}
		rep.Scenarios++
		var res *ScenarioResult
		if opts.Incremental {
			rt := s.ComputeRoutes(sc)
			aff := affected(rt)
			res = &ScenarioResult{
				Load:      make(map[topo.DirLinkID]float64, len(baseLoad)),
				Delivered: make([]float64, len(flows)),
				Dropped:   make([]float64, len(flows)),
			}
			for l, v := range baseLoad {
				res.Load[l] = v
			}
			for fi, tr := range baseTraces {
				res.Delivered[fi] = tr.Delivered
				res.Dropped[fi] = tr.Dropped
			}
			for _, fi := range aff {
				old := baseTraces[fi]
				for l, v := range old.Load {
					res.Load[l] -= v
				}
				tr := s.SimulateFlow(rt, flows[fi])
				rep.SimulatedFlows++
				res.Delivered[fi] = tr.Delivered
				res.Dropped[fi] = tr.Dropped
				for l, v := range tr.Load {
					res.Load[l] += v
				}
			}
		} else {
			res = s.Simulate(sc, flows)
			rep.SimulatedFlows += len(flows)
		}
		return s.checkScenario(sc, chosen, flows, res, opts, rep)
	}
	visit = func(start, budget int) bool {
		if !check() {
			return false
		}
		if budget == 0 {
			return true
		}
		for i := start; i < len(elems); i++ {
			e := elems[i]
			e.apply(sc, true)
			chosen = append(chosen, e)
			ok := visit(i+1, budget-1)
			chosen = chosen[:len(chosen)-1]
			e.apply(sc, false)
			if !ok {
				return false
			}
		}
		return true
	}
	visit(0, k)
	rep.Holds = len(rep.Violations) == 0
	return rep
}

// changedRouters reports, per router, whether its routing state under rt
// differs from the baseline: any IGP distance or next-hop set, or any BGP
// RIB entry. A flow whose visited routers are all unchanged (and whose
// trajectory avoids every failed element) forwards exactly as in the
// baseline, so it can be skipped.
func (s *Sim) changedRouters(base, rt *routesFor) []bool {
	n := s.net.NumRouters()
	changed := make([]bool, n)
	for r := 0; r < n; r++ {
		if !sameConcRIB(base.bgp.ribs[r], rt.bgp.ribs[r]) {
			changed[r] = true
			continue
		}
		for dest := 0; dest < n; dest++ {
			if base.igp.dist[r][dest] != rt.igp.dist[r][dest] {
				changed[r] = true
				break
			}
			a, b := base.igp.nh[r][dest], rt.igp.nh[r][dest]
			if len(a) != len(b) {
				changed[r] = true
				break
			}
			for i := range a {
				if a[i] != b[i] {
					changed[r] = true
					break
				}
			}
			if changed[r] {
				break
			}
		}
	}
	return changed
}

type elem struct {
	link   topo.LinkID
	router topo.RouterID
	isLink bool
}

func (e elem) apply(sc *Scenario, down bool) {
	if e.isLink {
		sc.LinkDown[e.link] = down
	} else {
		sc.RouterDown[e.router] = down
	}
}

// checkScenario evaluates the properties for one simulated scenario.
// Returns false to stop enumeration.
func (s *Sim) checkScenario(sc *Scenario, chosen []elem, flows []topo.Flow,
	res *ScenarioResult, opts EnumOptions, rep *EnumReport) bool {

	var fl []topo.LinkID
	var fr []topo.RouterID
	for _, e := range chosen {
		if e.isLink {
			fl = append(fl, e.link)
		} else {
			fr = append(fr, e.router)
		}
	}
	record := func(v EnumViolation) bool {
		v.FailedLinks = append([]topo.LinkID(nil), fl...)
		v.FailedRouters = append([]topo.RouterID(nil), fr...)
		rep.Violations = append(rep.Violations, v)
		return !opts.StopAtFirst
	}
	const eps = 1e-6
	if opts.OverloadFactor > 0 {
		for li := range s.net.Links {
			link := s.net.Link(topo.LinkID(li))
			limit := link.Capacity * opts.OverloadFactor
			for _, d := range []topo.Direction{topo.AtoB, topo.BtoA} {
				dl := topo.MakeDirLinkID(link.ID, d)
				if load := res.Load[dl]; load > limit-eps {
					if !record(EnumViolation{Kind: "link-load", Link: dl, Value: load, Max: limit}) {
						return false
					}
				}
			}
		}
	}
	for _, b := range opts.Bounds {
		dirs := []topo.Direction{topo.AtoB, topo.BtoA}
		if b.DirSpecified {
			dirs = []topo.Direction{b.Dir}
		}
		for _, d := range dirs {
			dl := topo.MakeDirLinkID(b.Link, d)
			load := res.Load[dl]
			if load < b.Min-eps || load > b.Max+eps {
				if !record(EnumViolation{Kind: "link-load", Link: dl, Value: load, Min: b.Min, Max: b.Max}) {
					return false
				}
			}
		}
	}
	for _, b := range opts.Delivered {
		total := 0.0
		for fi, f := range flows {
			if b.Prefix.Contains(f.Dst) {
				total += res.Delivered[fi]
			}
		}
		if total < b.Min-1e-6 || (!math.IsInf(b.Max, 1) && total > b.Max+1e-6) {
			if !record(EnumViolation{Kind: "delivered", Prefix: b.Prefix, Value: total, Min: b.Min, Max: b.Max}) {
				return false
			}
		}
	}
	return true
}
