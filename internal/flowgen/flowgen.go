// Package flowgen generates input flow workloads: the pairwise edge flows
// of the FatTree experiments (§7.2, Table 4, Fig 15) and skewed random
// flow sets standing in for the production traffic of §7.1 (Figs 11-14).
package flowgen

import (
	"fmt"
	"math/rand"
	"net/netip"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/gen"
	"github.com/yu-verify/yu/internal/topo"
)

// Pairwise builds flows between every ordered pair of FatTree edge
// routers with the given volume (paper: 5 Gbps), then truncates to
// fraction (e.g. 0.16 for the "16%" columns of Table 4). A deterministic
// permutation with the given seed selects which pairs survive.
func Pairwise(spec *config.Spec, volumeGbps, fraction float64, seed int64) ([]topo.Flow, error) {
	edges := gen.EdgeRouters(spec)
	if len(edges) < 2 {
		return nil, fmt.Errorf("flowgen: not a FatTree spec (no edge routers)")
	}
	type pairT struct{ src, dst string }
	var pairs []pairT
	for _, a := range edges {
		for _, b := range edges {
			if a != b {
				pairs = append(pairs, pairT{a, b})
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	n := int(float64(len(pairs))*fraction + 0.5)
	if n < 1 {
		n = 1
	}
	if n > len(pairs) {
		n = len(pairs)
	}
	var flows []topo.Flow
	for i := 0; i < n; i++ {
		p := pairs[i]
		src, ok := spec.Net.RouterByName(p.src)
		if !ok {
			return nil, fmt.Errorf("flowgen: router %s missing", p.src)
		}
		pfx, ok := gen.EdgePrefix(spec, p.dst)
		if !ok {
			return nil, fmt.Errorf("flowgen: %s originates nothing", p.dst)
		}
		flows = append(flows, topo.Flow{
			Name:    fmt.Sprintf("pw-%s-%s", p.src, p.dst),
			Ingress: src.ID,
			Src:     netip.AddrFrom4([4]byte{172, 31, byte(i >> 8), byte(i)}),
			Dst:     pfx.Addr().Next(),
			Gbps:    volumeGbps,
		})
	}
	return flows, nil
}

// RandomSpec configures random workload generation.
type RandomSpec struct {
	// Count is the number of flows.
	Count int
	// DistinctDstPerPrefix bounds how many distinct destination
	// addresses are drawn inside each prefix; small values create the
	// heavy flow-equivalence the paper's production traffic exhibits
	// (many flows sharing ingress and destination behavior).
	DistinctDstPerPrefix int
	// DSCP5Fraction of flows get DSCP 5 (SR-steered class).
	DSCP5Fraction float64
	// MeanGbps scales volumes (exponential-ish distribution).
	MeanGbps float64
	Seed     int64
}

// Random draws a skewed random workload against the spec's originated
// prefixes.
func Random(spec *config.Spec, rs RandomSpec) ([]topo.Flow, error) {
	prefixes := gen.Prefixes(spec)
	if len(prefixes) == 0 {
		return nil, fmt.Errorf("flowgen: spec originates no prefixes")
	}
	if rs.DistinctDstPerPrefix <= 0 {
		rs.DistinctDstPerPrefix = 4
	}
	if rs.MeanGbps <= 0 {
		rs.MeanGbps = 1
	}
	rng := rand.New(rand.NewSource(rs.Seed))
	n := spec.Net.NumRouters()
	flows := make([]topo.Flow, 0, rs.Count)
	for i := 0; i < rs.Count; i++ {
		// Zipf-ish ingress skew: favor low router IDs.
		ing := topo.RouterID(int(float64(n) * rng.Float64() * rng.Float64()))
		if int(ing) >= n {
			ing = topo.RouterID(n - 1)
		}
		pfx := prefixes[rng.Intn(len(prefixes))]
		host := 1 + rng.Intn(rs.DistinctDstPerPrefix)
		dst := addrPlus(pfx.Addr(), host)
		var dscp uint8
		if rng.Float64() < rs.DSCP5Fraction {
			dscp = 5
		}
		vol := rs.MeanGbps * rng.ExpFloat64()
		if vol < 0.001 {
			vol = 0.001
		}
		flows = append(flows, topo.Flow{
			Name:    fmt.Sprintf("rf%d", i),
			Ingress: ing,
			Src:     netip.AddrFrom4([4]byte{172, 30, byte(i >> 8), byte(i)}),
			Dst:     dst,
			DSCP:    dscp,
			Gbps:    vol,
		})
	}
	return flows, nil
}

func addrPlus(a netip.Addr, n int) netip.Addr {
	for i := 0; i < n; i++ {
		a = a.Next()
	}
	return a
}
