package flowgen

import (
	"testing"

	"github.com/yu-verify/yu/internal/gen"
)

func TestPairwise(t *testing.T) {
	spec, err := gen.FatTree(gen.FatTreeSpec{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	edges := gen.EdgeRouters(spec)
	total := len(edges) * (len(edges) - 1)

	full, err := Pairwise(spec, 5, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != total {
		t.Fatalf("full pairwise = %d flows, want %d", len(full), total)
	}
	frac, err := Pairwise(spec, 5, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := total / 4; len(frac) != want {
		t.Errorf("25%% pairwise = %d flows, want %d", len(frac), want)
	}
	for _, f := range frac {
		if f.Gbps != 5 {
			t.Fatalf("flow volume = %v", f.Gbps)
		}
		if !f.Dst.IsValid() || !f.Src.IsValid() {
			t.Fatalf("invalid addresses in %v", f)
		}
	}
	// Determinism.
	again, err := Pairwise(spec, 5, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frac {
		if frac[i] != again[i] {
			t.Fatal("pairwise generation must be deterministic")
		}
	}
	// Different seed selects different pairs.
	other, _ := Pairwise(spec, 5, 0.25, 2)
	same := 0
	for i := range frac {
		if frac[i].Name == other[i].Name {
			same++
		}
	}
	if same == len(frac) {
		t.Error("different seeds should select different pairs")
	}
	// Tiny fractions still yield at least one flow.
	one, err := Pairwise(spec, 5, 1e-9, 1)
	if err != nil || len(one) != 1 {
		t.Errorf("tiny fraction: %d flows, err=%v", len(one), err)
	}
}

func TestPairwiseRejectsNonFatTree(t *testing.T) {
	wan, err := gen.WAN(gen.WANSpec{Routers: 20, Links: 40, Prefixes: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pairwise(wan, 5, 0.5, 1); err == nil {
		t.Error("expected error on non-FatTree spec")
	}
}

func TestRandom(t *testing.T) {
	wan, err := gen.WAN(gen.WANSpec{Routers: 30, Links: 60, Prefixes: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := Random(wan, RandomSpec{Count: 500, DSCP5Fraction: 0.5, DistinctDstPerPrefix: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 500 {
		t.Fatalf("flows = %d", len(flows))
	}
	prefixes := gen.Prefixes(wan)
	dscp5 := 0
	dsts := make(map[string]bool)
	for _, f := range flows {
		if f.Gbps <= 0 {
			t.Fatal("non-positive volume")
		}
		if int(f.Ingress) < 0 || int(f.Ingress) >= wan.Net.NumRouters() {
			t.Fatal("ingress out of range")
		}
		matched := false
		for _, p := range prefixes {
			if p.Contains(f.Dst) {
				matched = true
			}
		}
		if !matched {
			t.Fatalf("dst %s matches no originated prefix", f.Dst)
		}
		if f.DSCP == 5 {
			dscp5++
		}
		dsts[f.Dst.String()] = true
	}
	if dscp5 == 0 || dscp5 == len(flows) {
		t.Errorf("dscp5 fraction degenerate: %d/%d", dscp5, len(flows))
	}
	// DistinctDstPerPrefix=2 bounds the address diversity to 2 per prefix.
	if len(dsts) > 2*len(prefixes) {
		t.Errorf("dst diversity %d exceeds bound %d", len(dsts), 2*len(prefixes))
	}
}

func TestRandomNoPrefixes(t *testing.T) {
	spec, err := gen.FatTree(gen.FatTreeSpec{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	// FatTree has prefixes; strip them to trigger the error path.
	for _, rc := range spec.Configs {
		rc.Networks = nil
	}
	if _, err := Random(spec, RandomSpec{Count: 5, Seed: 1}); err == nil {
		t.Error("expected error with no originated prefixes")
	}
}
