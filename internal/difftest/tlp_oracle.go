// The portfolio oracle: the batch TLP engine (internal/tlp) evaluated
// over a mirror of the case's legacy properties must flag exactly the
// properties the legacy per-property checks flag, and conditional
// properties — which only the portfolio engine supports — are held to
// brute-force enumeration through the concrete simulator.
package difftest

import (
	"fmt"
	"math"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/canon"
	"github.com/yu-verify/yu/internal/concrete"
	"github.com/yu-verify/yu/internal/tlp"
	"github.com/yu-verify/yu/internal/topo"
)

// mirrorPortfolio translates the case's legacy property set (explicit
// load bounds, delivered bounds, the all-links overload factor) into
// TLProps, one per legacy property. The returned index is the util
// property's position, or -1 when the case has no overload factor.
func mirrorPortfolio(c *Case) ([]topo.TLProp, int) {
	props := make([]topo.TLProp, 0, len(c.Spec.Props)+len(c.Spec.Delivered)+1)
	for _, b := range c.Spec.Props {
		props = append(props, topo.TLProp{
			Kind: topo.TLPLinkLoad, Link: b.Link,
			Dir: b.Dir, DirSpecified: b.DirSpecified,
			Min: b.Min, Max: b.Max,
		})
	}
	for _, d := range c.Spec.Delivered {
		props = append(props, topo.TLProp{
			Kind: topo.TLPDelivered, Prefix: d.Prefix, Min: d.Min, Max: d.Max,
		})
	}
	utilIdx := -1
	if c.OverloadFactor > 0 {
		utilIdx = len(props)
		props = append(props, topo.TLProp{
			Kind: topo.TLPUtil, AllLinks: true, Factor: c.OverloadFactor,
		})
	}
	return props, utilIdx
}

// OracleTLPPortfolio checks the batch TLP engine three ways: (1) on a
// portfolio mirroring the legacy properties, the violated-property set
// and overall verdict must equal the legacy report's; (2) the canonical
// portfolio report must be byte-identical across worker counts; (3)
// conditional properties must agree with brute-force enumeration of the
// guard-failed scenario space, with concretely revalidated witnesses.
func OracleTLPPortfolio(c *Case) error {
	net := c.Spec.Net
	n := yu.FromSpec(c.Spec)
	props, utilIdx := mirrorPortfolio(c)

	legacy, err := n.Verify(verifyOpts(c, c.K, 1, yu.EngineYU))
	if err != nil {
		return err
	}
	res, err := n.VerifyPortfolio(props, yu.VerifyOptions{
		K: c.K, Mode: c.Mode, ModeSet: true, Workers: 1,
	})
	if err != nil {
		return err
	}

	// Attribute each legacy violation to every mirrored property it
	// belongs to. A bound violation matching a util limit is attributed to
	// util as well — when a load crosses max+eps it also crosses the
	// identical overload limit, so over-attribution cannot disagree.
	legacyViolated := make([]bool, len(props))
	for _, v := range legacy.Violations {
		matched := false
		mark := func(i int) {
			legacyViolated[i] = true
			matched = true
		}
		switch v.Kind {
		case "link-load":
			for i, b := range c.Spec.Props {
				if v.Link.Link() != b.Link || v.Min != b.Min || v.Max != b.Max {
					continue
				}
				if b.DirSpecified && v.Link.Dir() != b.Dir {
					continue
				}
				mark(i)
			}
			if utilIdx >= 0 && v.Min == 0 &&
				v.Max == c.OverloadFactor*net.Link(v.Link.Link()).Capacity {
				mark(utilIdx)
			}
		case "delivered":
			for i, d := range c.Spec.Delivered {
				if v.Prefix == d.Prefix && v.Min == d.Min && v.Max == d.Max {
					mark(len(c.Spec.Props) + i)
				}
			}
		}
		if !matched {
			return fmt.Errorf("legacy violation %+v matches no mirrored property", v)
		}
	}

	// Verdict identity vs legacy, plus concrete revalidation of every
	// violated property's own witness (witness scenarios and values may
	// legitimately differ between engines — any in-budget counterexample
	// is correct — so the witness is held to the concrete simulator, not
	// to the legacy report).
	sim := concrete.NewSim(net, c.Spec.Configs)
	for i := range props {
		vd := res.Verdicts[i]
		want := tlp.StatusHolds
		if legacyViolated[i] {
			want = tlp.StatusViolated
		}
		if vd.Status != want {
			return fmt.Errorf("property %d (%s): portfolio %v, legacy %v",
				i, canon.FormatProp(net, props[i]), vd.Status, want)
		}
		if vd.Status != tlp.StatusViolated {
			continue
		}
		if len(vd.FailedLinks)+len(vd.FailedRouters) > c.K {
			return fmt.Errorf("property %d: witness has %d failures, budget is %d",
				i, len(vd.FailedLinks)+len(vd.FailedRouters), c.K)
		}
		if err := revalidateVerdict(c, sim, props[i], vd); err != nil {
			return fmt.Errorf("property %d (%s): %w", i, canon.FormatProp(net, props[i]), err)
		}
	}
	if res.Holds != legacy.Holds {
		return fmt.Errorf("Holds disagrees: portfolio %v, legacy %v", res.Holds, legacy.Holds)
	}

	// Worker-count byte identity of the canonical portfolio report.
	base := canon.FormatPortfolio(net, res)
	for _, workers := range []int{3} {
		resW, err := n.VerifyPortfolio(props, yu.VerifyOptions{
			K: c.K, Mode: c.Mode, ModeSet: true, Workers: workers,
		})
		if err != nil {
			return err
		}
		if got := canon.FormatPortfolio(net, resW); got != base {
			return fmt.Errorf("workers=%d portfolio report differs\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				workers, base, workers, got)
		}
	}

	if err := oracleTLPConditional(c, n); err != nil {
		return err
	}
	return oracleTLPAggregate(c, n)
}

// oracleTLPAggregate brute-forces the sum/max aggregate properties over a
// named link set: the concrete worst-case aggregate over every in-budget
// scenario must be bracketed by the portfolio verdicts — a bound above it
// holds, a bound clearly below it is violated with a concretely
// reproducible witness — and the aggregate portfolio report must be
// byte-identical across worker counts.
func oracleTLPAggregate(c *Case, n *yu.Network) error {
	net := c.Spec.Net
	nset := net.NumLinks()
	if nset > 3 {
		nset = 3
	}
	if nset == 0 {
		return nil
	}
	members := make([]topo.LinkID, nset)
	var dirs []topo.DirLinkID
	for i := 0; i < nset; i++ {
		members[i] = topo.LinkID(i)
		dirs = append(dirs,
			topo.MakeDirLinkID(topo.LinkID(i), topo.AtoB),
			topo.MakeDirLinkID(topo.LinkID(i), topo.BtoA))
	}

	sim := concrete.NewSim(net, c.Spec.Configs)
	worstSum, worstMax := math.Inf(-1), math.Inf(-1)
	err := forEachScenario(net, c.Mode, c.K, func(links []topo.LinkID, routers []topo.RouterID) error {
		sc := concrete.NewScenario(net)
		for _, l := range links {
			sc.LinkDown[l] = true
		}
		for _, r := range routers {
			sc.RouterDown[r] = true
		}
		sres := sim.Simulate(sc, c.Spec.Flows)
		sum, mx := 0.0, 0.0
		for _, dl := range dirs {
			sum += sres.Load[dl]
			if sres.Load[dl] > mx {
				mx = sres.Load[dl]
			}
		}
		if sum > worstSum {
			worstSum = sum
		}
		if mx > worstMax {
			worstMax = mx
		}
		return nil
	})
	if err != nil {
		return err
	}

	prop := func(kind topo.TLPKind, max float64) topo.TLProp {
		return topo.TLProp{Kind: kind, SetName: "agg", AggLinks: members, Max: max}
	}
	props := []topo.TLProp{
		prop(topo.TLPSumLoad, worstSum+1),
		prop(topo.TLPMaxLoad, worstMax+1),
	}
	wantViolated := map[int]float64{} // prop index -> enumerated worst
	if worstSum > 1 {
		wantViolated[len(props)] = worstSum
		props = append(props, prop(topo.TLPSumLoad, worstSum-0.5))
	}
	if worstMax > 1 {
		wantViolated[len(props)] = worstMax
		props = append(props, prop(topo.TLPMaxLoad, worstMax-0.5))
	}
	res, err := n.VerifyPortfolio(props, yu.VerifyOptions{
		K: c.K, Mode: c.Mode, ModeSet: true, Workers: 1,
	})
	if err != nil {
		return err
	}
	for i := range props {
		vd := res.Verdicts[i]
		worst, violated := wantViolated[i]
		if !violated {
			if vd.Status != tlp.StatusHolds {
				return fmt.Errorf("aggregate %s bound above enumerated worst: status %v, want holds",
					canon.FormatProp(net, props[i]), vd.Status)
			}
			continue
		}
		if vd.Status != tlp.StatusViolated {
			return fmt.Errorf("aggregate %s bound below enumerated worst %.9g: status %v, want violated",
				canon.FormatProp(net, props[i]), worst, vd.Status)
		}
		if len(vd.FailedLinks)+len(vd.FailedRouters) > c.K {
			return fmt.Errorf("aggregate witness has %d failures, budget is %d",
				len(vd.FailedLinks)+len(vd.FailedRouters), c.K)
		}
		// Concrete revalidation of the witness's aggregate value.
		sc := concrete.NewScenario(net)
		for _, l := range vd.FailedLinks {
			sc.LinkDown[l] = true
		}
		for _, r := range vd.FailedRouters {
			sc.RouterDown[r] = true
		}
		sres := sim.Simulate(sc, c.Spec.Flows)
		conc := 0.0
		for _, dl := range dirs {
			if props[i].Kind == topo.TLPSumLoad {
				conc += sres.Load[dl]
			} else if sres.Load[dl] > conc {
				conc = sres.Load[dl]
			}
		}
		if math.Abs(conc-vd.Value) > tolerance {
			return fmt.Errorf("aggregate %s witness re-run: reported %.9g, concrete %.9g",
				canon.FormatProp(net, props[i]), vd.Value, conc)
		}
	}

	// Worker-count byte identity, including the agg scan counter.
	base := canon.FormatPortfolio(net, res)
	resW, err := n.VerifyPortfolio(props, yu.VerifyOptions{
		K: c.K, Mode: c.Mode, ModeSet: true, Workers: 3,
	})
	if err != nil {
		return err
	}
	if got := canon.FormatPortfolio(net, resW); got != base {
		return fmt.Errorf("aggregate portfolio differs across workers\n--- workers=1 ---\n%s--- workers=3 ---\n%s", base, got)
	}
	return nil
}

// revalidateVerdict re-runs a violated property's witness scenario
// through the concrete simulator and requires (a) the reported worst
// value to be concretely reproduced on the property's subject and (b)
// the bound to be genuinely crossed (3× tolerance mirrors the
// verifier's epsilon slack, as in OracleWitnessRevalidation).
func revalidateVerdict(c *Case, sim *concrete.Sim, p topo.TLProp, vd tlp.Verdict) error {
	net := c.Spec.Net
	sc := concrete.NewScenario(net)
	for _, l := range vd.FailedLinks {
		sc.LinkDown[l] = true
	}
	for _, r := range vd.FailedRouters {
		sc.RouterDown[r] = true
	}
	sres := sim.Simulate(sc, c.Spec.Flows)

	crosses := func(conc, min, max float64) bool {
		return (!math.IsInf(max, 1) && conc > max-3*tolerance) ||
			(min > 0 && conc < min+3*tolerance)
	}
	dirsOf := func(link topo.LinkID, dirSpecified bool, dir topo.Direction) []topo.DirLinkID {
		if dirSpecified {
			return []topo.DirLinkID{topo.MakeDirLinkID(link, dir)}
		}
		return []topo.DirLinkID{
			topo.MakeDirLinkID(link, topo.AtoB),
			topo.MakeDirLinkID(link, topo.BtoA),
		}
	}

	switch p.Kind {
	case topo.TLPLinkLoad:
		for _, dl := range dirsOf(p.Link, p.DirSpecified, p.Dir) {
			conc := sres.Load[dl]
			if math.Abs(conc-vd.Value) <= tolerance && crosses(conc, p.Min, p.Max) {
				return nil
			}
		}
		return fmt.Errorf("witness re-run: reported %.9g not reproduced on %s", vd.Value, net.LinkName(p.Link))
	case topo.TLPUtil:
		links := []topo.LinkID{p.Link}
		if p.AllLinks {
			links = links[:0]
			for li := 0; li < net.NumLinks(); li++ {
				links = append(links, topo.LinkID(li))
			}
		}
		for _, li := range links {
			limit := p.Factor * net.Link(li).Capacity
			for _, dl := range dirsOf(li, !p.AllLinks && p.DirSpecified, p.Dir) {
				conc := sres.Load[dl]
				if math.Abs(conc-vd.Value) <= tolerance && conc > limit-3*tolerance {
					return nil
				}
			}
		}
		return fmt.Errorf("witness re-run: utilization violation %.9g reproduced on no link", vd.Value)
	case topo.TLPDelivered:
		conc := 0.0
		for fi, f := range c.Spec.Flows {
			if p.Prefix.Contains(f.Dst) {
				conc += sres.Delivered[fi]
			}
		}
		if math.Abs(conc-vd.Value) > tolerance {
			return fmt.Errorf("witness re-run: reported %.9g, concrete delivered %.9g", vd.Value, conc)
		}
		if !crosses(conc, p.Min, p.Max) {
			return fmt.Errorf("witness re-run: delivered %.9g inside bounds [%.9g, %.9g]", conc, p.Min, p.Max)
		}
		return nil
	}
	return nil // ratio properties are not mirrored here
}

// oracleTLPConditional brute-forces one conditional property: pick a
// subject link and a failable guard link, enumerate every in-budget
// scenario in which the guard is failed through the concrete simulator,
// and require the portfolio verdict to agree with bracketing bounds
// around the enumerated worst load. In router failure mode a link guard
// can never fail, so the property must come back vacuous.
func oracleTLPConditional(c *Case, n *yu.Network) error {
	net := c.Spec.Net
	subject := topo.LinkID(0)
	if len(c.Spec.Props) > 0 {
		subject = c.Spec.Props[0].Link
	}
	guard := topo.LinkID(-1)
	for li := 0; li < net.NumLinks(); li++ {
		if topo.LinkID(li) != subject && !net.Links[li].NoFail {
			guard = topo.LinkID(li)
			break
		}
	}
	if guard < 0 {
		return nil // no usable guard link in this case
	}

	if c.Mode == topo.FailRouters {
		res, err := n.VerifyPortfolio([]topo.TLProp{
			{Kind: topo.TLPLinkLoad, Link: subject, Max: 1, CondSet: true, CondLink: guard},
		}, yu.VerifyOptions{K: c.K, Mode: c.Mode, ModeSet: true, Workers: 1})
		if err != nil {
			return err
		}
		if res.Verdicts[0].Status != tlp.StatusVacuous {
			return fmt.Errorf("link guard under router failures: status %v, want vacuous",
				res.Verdicts[0].Status)
		}
		return nil
	}

	// Brute-force worst load on the subject (either direction) over every
	// scenario with the guard failed and at most k failures in total.
	sim := concrete.NewSim(net, c.Spec.Configs)
	worst := math.Inf(-1)
	err := forEachScenario(net, c.Mode, c.K, func(links []topo.LinkID, routers []topo.RouterID) error {
		hit := false
		for _, l := range links {
			if l == guard {
				hit = true
			}
		}
		if !hit {
			return nil
		}
		sc := concrete.NewScenario(net)
		for _, l := range links {
			sc.LinkDown[l] = true
		}
		for _, r := range routers {
			sc.RouterDown[r] = true
		}
		sres := sim.Simulate(sc, c.Spec.Flows)
		for _, d := range []topo.Direction{topo.AtoB, topo.BtoA} {
			if load := sres.Load[topo.MakeDirLinkID(subject, d)]; load > worst {
				worst = load
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if math.IsInf(worst, -1) {
		return fmt.Errorf("no enumerated scenario fails guard %s", net.LinkName(guard))
	}

	// Bracket the enumerated worst: a bound above it must hold, a bound
	// clearly below it must be violated with a guard-containing witness.
	props := []topo.TLProp{
		{Kind: topo.TLPLinkLoad, Link: subject, Max: worst + 1, CondSet: true, CondLink: guard},
	}
	wantViolated := worst > 1
	if wantViolated {
		props = append(props, topo.TLProp{
			Kind: topo.TLPLinkLoad, Link: subject, Max: worst - 0.5,
			CondSet: true, CondLink: guard,
		})
	}
	res, err := n.VerifyPortfolio(props, yu.VerifyOptions{
		K: c.K, Mode: c.Mode, ModeSet: true, Workers: 1,
	})
	if err != nil {
		return err
	}
	if got := res.Verdicts[0].Status; got != tlp.StatusHolds {
		return fmt.Errorf("conditional bound %.9g above enumerated worst %.9g: status %v, want holds",
			worst+1, worst, got)
	}
	if !wantViolated {
		return nil
	}
	vd := res.Verdicts[1]
	if vd.Status != tlp.StatusViolated {
		return fmt.Errorf("conditional bound %.9g below enumerated worst %.9g: status %v, want violated",
			worst-0.5, worst, vd.Status)
	}
	if len(vd.FailedLinks)+len(vd.FailedRouters) > c.K {
		return fmt.Errorf("conditional witness has %d failures, budget is %d",
			len(vd.FailedLinks)+len(vd.FailedRouters), c.K)
	}
	hasGuard := false
	for _, l := range vd.FailedLinks {
		if l == guard {
			hasGuard = true
		}
	}
	if !hasGuard {
		return fmt.Errorf("conditional witness %v does not fail the guard %s",
			vd.FailedLinks, net.LinkName(guard))
	}
	// Concrete revalidation: the witness scenario must actually produce
	// the reported worst value on one direction of the subject.
	sc := concrete.NewScenario(net)
	for _, l := range vd.FailedLinks {
		sc.LinkDown[l] = true
	}
	for _, r := range vd.FailedRouters {
		sc.RouterDown[r] = true
	}
	sres := sim.Simulate(sc, c.Spec.Flows)
	ok := false
	for _, d := range []topo.Direction{topo.AtoB, topo.BtoA} {
		if math.Abs(sres.Load[topo.MakeDirLinkID(subject, d)]-vd.Value) <= tolerance {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("conditional witness re-run: reported %.9g, concrete loads %.9g/%.9g",
			vd.Value,
			sres.Load[topo.MakeDirLinkID(subject, topo.AtoB)],
			sres.Load[topo.MakeDirLinkID(subject, topo.BtoA)])
	}
	return nil
}
