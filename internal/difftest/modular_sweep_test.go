package difftest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/yu-verify/yu"
)

// TestModularByteIdentitySweep pins compositional verification's central
// guarantee on every checked-in example network: for each testdata spec
// and failure budget, the canonical report rendering is identical between
// the monolithic pipeline and domain decomposition. Single-AS specs
// degenerate to a one-domain partition (everything crosses the summary
// layer machinery but nothing is actually cut) — byte identity must hold
// there too.
func TestModularByteIdentitySweep(t *testing.T) {
	root := filepath.Join("..", "..", "testdata")
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".yu") {
			continue
		}
		path := filepath.Join(root, ent.Name())
		for _, k := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/k=%d", ent.Name(), k), func(t *testing.T) {
				n, err := yu.LoadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				opts := yu.VerifyOptions{K: k, OverloadFactor: 1.0, Workers: 1}
				mono, err := n.Verify(opts)
				if err != nil {
					t.Fatal(err)
				}
				want := FormatReport(n.Topology(), mono)
				for _, domains := range []int{2, 4} {
					opts.AutoDomains = domains
					rep, err := n.Verify(opts)
					if err != nil {
						t.Fatalf("auto-domains=%d: %v", domains, err)
					}
					if got := FormatReport(n.Topology(), rep); got != want {
						t.Errorf("auto-domains=%d report differs from monolithic\n--- monolithic ---\n%s--- modular ---\n%s",
							domains, want, got)
					}
				}
			})
		}
	}
}

// TestModularBreaksNodeBudgetWall is the wan-1 acceptance check as a
// test: under the separating node budget the monolithic pipeline must
// fail with ErrNodeBudget while the spec-partitioned modular pipeline
// verifies — with every class contained, since the blueprint's traffic
// never crosses a domain border.
func TestModularBreaksNodeBudgetWall(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "wan-1.yu")
	n, err := yu.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Spec().Domains) == 0 {
		t.Fatal("wan-1.yu lost its domain lines")
	}
	const budget = 16000
	opts := yu.VerifyOptions{K: 2, OverloadFactor: 1.0, Workers: 1, MaxNodes: budget}
	if _, err := n.Verify(opts); !errors.Is(err, yu.ErrNodeBudget) {
		t.Fatalf("monolithic under budget %d: err = %v, want ErrNodeBudget", budget, err)
	}
	opts.Domains = n.Spec().Domains
	rep, err := n.Verify(opts)
	if err != nil {
		t.Fatalf("modular under budget %d: %v", budget, err)
	}
	if !rep.Holds {
		t.Fatalf("wan-1 must verify clean, got %d violations", len(rep.Violations))
	}
	m := rep.Modular
	if m == nil {
		t.Fatal("modular run reported no modular stats")
	}
	if m.FallbackClasses != 0 {
		t.Fatalf("%d classes fell back on the contained workload", m.FallbackClasses)
	}
	if m.DomainPeakNodes >= budget {
		t.Fatalf("domain peak %d not under the budget %d", m.DomainPeakNodes, budget)
	}
}
