package difftest

import (
	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/canon"
	"github.com/yu-verify/yu/internal/core"
	"github.com/yu-verify/yu/internal/topo"
)

// ViolationKeys renders each violation to its property identity — the
// kind plus the directed link (or prefix) it is about — deduplicated and
// sorted. Two verification runs flag "the same violations" when these key
// sets are equal. The renderer lives in internal/canon; this wrapper
// keeps the historical difftest entry point.
func ViolationKeys(net *topo.Network, vs []core.Violation) []string {
	return canon.ViolationKeys(net, vs)
}

// FormatReport renders a verification report canonically: every
// deterministic field, no wall-clock fields. Two runs of the pipeline are
// "byte-identical" exactly when their FormatReport strings are equal —
// the contract the parallel pipeline, the spec round-trip, and the
// incremental daemon are held to.
func FormatReport(net *topo.Network, rep *yu.Report) string {
	return canon.FormatReport(net, rep)
}
