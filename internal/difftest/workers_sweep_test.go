package difftest

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/yu-verify/yu"
)

// TestWorkersByteIdentitySweep pins the scheduler's central guarantee on
// every checked-in example network: for each testdata spec and failure
// budget, the canonical report rendering (FormatReport, which excludes
// wall-clock fields) is identical at every worker count. Worker counts
// above the class count exercise the spawn collapse; 8 workers on the
// small specs exercises stealing from near-empty deques.
func TestWorkersByteIdentitySweep(t *testing.T) {
	root := filepath.Join("..", "..", "testdata")
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	specs := 0
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".yu") {
			continue
		}
		specs++
		path := filepath.Join(root, ent.Name())
		for _, k := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/k=%d", ent.Name(), k), func(t *testing.T) {
				n, err := yu.LoadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				opts := yu.VerifyOptions{K: k, OverloadFactor: 1.0, Workers: 1}
				baseline, err := n.Verify(opts)
				if err != nil {
					t.Fatal(err)
				}
				want := FormatReport(n.Topology(), baseline)
				for _, w := range []int{2, 4, 8} {
					opts.Workers = w
					rep, err := n.Verify(opts)
					if err != nil {
						t.Fatalf("workers=%d: %v", w, err)
					}
					if got := FormatReport(n.Topology(), rep); got != want {
						t.Errorf("workers=%d report differs from sequential\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
							w, want, w, got)
					}
					if rep.Sched.Workers > rep.FlowsExecuted {
						t.Errorf("workers=%d: spawned %d goroutines for %d executed classes",
							w, rep.Sched.Workers, rep.FlowsExecuted)
					}
				}
			})
		}
	}
	if specs == 0 {
		t.Fatal("no .yu specs found in testdata")
	}
}
