package difftest

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestDeltasOracle runs the incremental-vs-cold oracle over a spread of
// generated cases: after each random delta sequence the daemon's report
// must be byte-identical to a cold verification of the final state.
func TestDeltasOracle(t *testing.T) {
	for _, seed := range []int64{1, 7, 15, 42, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			c := MustNew(seed, Options{})
			rng := rand.New(rand.NewSource(seed * 7919))
			if err := CheckDeltas(c, rng, 3); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGenDeltasDeterministic pins the generator's reproducibility: the
// fuzz corpus is only useful if a seed replays the identical sequence.
func TestGenDeltasDeterministic(t *testing.T) {
	c := MustNew(42, Options{})
	a := GenDeltas(rand.New(rand.NewSource(5)), c.Spec, 8)
	b := GenDeltas(rand.New(rand.NewSource(5)), c.Spec, 8)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delta %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
