package difftest

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/canon"
	"github.com/yu-verify/yu/internal/config"
)

// FuzzBattery is the generator-seed harness: the fuzzer explores the
// space of generator seeds and every generated case must satisfy the full
// oracle battery. The corpus under testdata/fuzz/FuzzBattery pins seeds
// worth keeping forever (including the shapes that historically exposed
// engine-divergence classes: export-deny, via-statics, router mode).
func FuzzBattery(f *testing.F) {
	for _, seed := range []int64{1, 7, 15, 42, 56, 222} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c, err := New(seed, Options{})
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		if err := RunAll(c); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	})
}

// FuzzDeltas is the incremental-vs-cold harness: the fuzzer explores
// (case seed, delta-sequence seed, length) triples and every sequence of
// generated deltas applied through the daemon must leave its report
// byte-identical to a cold full verification of the final specification
// (see CheckDeltas). The corpus under testdata/fuzz/FuzzDeltas pins
// shapes that exercise each delta kind.
func FuzzDeltas(f *testing.F) {
	f.Add(int64(1), int64(1), int64(2))
	f.Add(int64(7), int64(3), int64(3))
	f.Add(int64(42), int64(5), int64(4))
	f.Add(int64(99), int64(2), int64(3))
	f.Fuzz(func(t *testing.T, caseSeed, deltaSeed, n int64) {
		if n < 1 {
			n = 1
		}
		if n > 5 {
			n = n%5 + 1
		}
		c, err := New(caseSeed, Options{})
		if err != nil {
			t.Fatalf("seed %d: generate: %v", caseSeed, err)
		}
		rng := rand.New(rand.NewSource(deltaSeed))
		if err := CheckDeltas(c, rng, int(n)); err != nil {
			t.Fatalf("case seed %d, delta seed %d, n %d: %v", caseSeed, deltaSeed, n, err)
		}
	})
}

// FuzzTLPPortfolio is the portfolio-robustness harness: arbitrary
// portfolio text against a generated network must either parse-error or
// compile and evaluate cleanly — malformed portfolios are errors, never
// panics, and evaluation of whatever parses must return one verdict per
// property with in-budget witnesses. The corpus under
// testdata/fuzz/FuzzTLPPortfolio pins both shapes: portfolios that
// resolve against the generated r0…rN link names and ones that must be
// rejected (unknown links, inverted bounds, junk keywords, misplaced
// direction arrows).
func FuzzTLPPortfolio(f *testing.F) {
	f.Add(int64(1), "tlp util 0.9")
	f.Add(int64(1), "tlp link r0-r1 max 50\ntlp delivered 100.0.0.0/24 min 1\ntlp ratio 100.0.0.0/16 min 0.5")
	f.Add(int64(1), "tlp link r0-r1 max 10 if-failed r2-r3\ntlp dirlink r0->r1 max 10")
	f.Add(int64(2), "tlp util 0.8 link r4-r5\n# comment\n\nlink r0-r5 min 0 max 20")
	f.Add(int64(1), "tlp link rX-rY max 1")
	f.Add(int64(1), "tlp link r0-r1 min 5 max 1")
	f.Add(int64(1), "tlp frobnicate 1")
	f.Add(int64(1), "tlp util -1\ntlp ratio notaprefix min 0.5")
	f.Add(int64(1), "tlp link r0->r1 max 1\ntlp dirlink r0-r1 max 1")
	f.Fuzz(func(t *testing.T, seed int64, text string) {
		c, err := New(seed, Options{})
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		props, err := config.ParsePortfolioString(text, c.Spec.Net)
		if err != nil {
			return // rejection is the contract for malformed text; panics are not
		}
		res, err := yu.FromSpec(c.Spec).VerifyPortfolio(props, yu.VerifyOptions{
			K: c.K, Mode: c.Mode, ModeSet: true, Workers: 1,
		})
		if err != nil {
			t.Fatalf("seed %d: portfolio %q: %v", seed, text, err)
		}
		if len(res.Verdicts) != len(props) {
			t.Fatalf("seed %d: %d verdicts for %d properties", seed, len(res.Verdicts), len(props))
		}
		for i, vd := range res.Verdicts {
			if n := len(vd.FailedLinks) + len(vd.FailedRouters); n > c.K {
				t.Fatalf("seed %d: property %d witness has %d failures, budget %d", seed, i, n, c.K)
			}
		}
		for _, g := range res.Groups {
			for _, pi := range g.Props {
				if pi < 0 || pi >= len(props) {
					t.Fatalf("seed %d: group references property %d of %d", seed, pi, len(props))
				}
			}
		}
		if canon.FormatPortfolio(c.Spec.Net, res) == "" {
			t.Fatalf("seed %d: empty canonical report", seed)
		}
	})
}

// FuzzSpecRoundTrip is the parser/formatter differential: any DSL text the
// parser accepts must format to a fixpoint — Format(Parse(Format(Parse(x))))
// equals Format(Parse(x)) — so cmd/yudiff reproducer specs never drift.
// Unrepresentable-but-parseable specs (FormatSpec returns an error) are
// skipped; parse rejections are fine; panics are not.
func FuzzSpecRoundTrip(f *testing.F) {
	f.Add("router a as 1\nrouter b as 1\nlink a b\nflow f ingress a dst 10.0.0.2 gbps 1\n")
	f.Add("router a as 1\nrouter b as 2\nlink a b cost 5 capacity 10\nauto-bgp-mesh\nconfig a\n  network 100.0.0.0/24\nfailures k 2 mode links\n")
	f.Add("router a as 1 nofail\nrouter b as 1\nlink a b\nproperty link a-b max 7\nproperty delivered 100.0.0.0/24 min 1\n")
	f.Fuzz(func(t *testing.T, text string) {
		n, err := yu.LoadString(text)
		if err != nil {
			return
		}
		txt1, err := FormatSpec(n.Spec())
		if err != nil {
			return // parseable but not representable: fine
		}
		n2, err := yu.LoadString(txt1)
		if err != nil {
			t.Fatalf("formatted spec does not re-parse: %v\n%s", err, txt1)
		}
		txt2, err := FormatSpec(n2.Spec())
		if err != nil {
			t.Fatalf("re-parsed spec does not re-format: %v\n%s", err, txt1)
		}
		if txt1 != txt2 {
			t.Fatalf("format not a fixpoint for input %q:\n--- first ---\n%s--- second ---\n%s",
				strings.TrimSpace(text), txt1, txt2)
		}
	})
}
