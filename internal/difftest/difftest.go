// Package difftest is the repository's correctness-tooling subsystem: a
// seedable random network/workload generator with shrinking, a battery of
// differential and metamorphic oracles over the verification pipeline, and
// the plumbing shared by the Go-native fuzz targets and cmd/yudiff.
//
// The invariant the package exists to defend is the paper's core claim:
// one symbolic run over MTBDDs answers exactly what Jingubang-style
// enumeration of every ≤k-failure scenario answers. The oracles approach
// that claim from independent directions (exact per-scenario loads,
// violation-set equality, parallel-vs-sequential determinism, monotonicity
// in k, KREDUCE soundness, witness re-validation, and spec round-trip), so
// a bug has to fool several unrelated checks to slip through.
//
// A failing seed reproduces with:
//
//	go run ./cmd/yudiff -seed N -n 1
//
// which shrinks the case and prints a minimal spec in the config DSL.
package difftest

import (
	"fmt"
	"math/rand"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/topo"
)

// Case is one generated differential-testing instance: a full network
// specification plus the verification parameters the oracles run it under.
// The blueprint the spec was built from is retained so the case can be
// shrunk structurally (see Shrink).
type Case struct {
	// Seed reproduces the case via New(seed, opts).
	Seed int64
	// Spec is the generated network, configurations, flows, and bounds.
	Spec *config.Spec
	// K is the failure budget the oracles verify under.
	K int
	// Mode is the failure mode (links or routers).
	Mode topo.FailureMode
	// OverloadFactor is the all-links overload property checked by the
	// verification oracles (limit = factor × capacity).
	OverloadFactor float64

	bp *blueprint
}

// Options bounds the generator. The zero value selects the defaults used
// by the test battery: small, messy, fast-to-enumerate networks.
type Options struct {
	// MinRouters and MaxRouters bound the router count (defaults 5, 9).
	MinRouters, MaxRouters int
	// MaxASes bounds the number of autonomous systems (default 3).
	MaxASes int
	// MaxFlows bounds the workload size (default 5).
	MaxFlows int
	// MaxK bounds the failure budget (default 2; router mode always
	// verifies with k=1 to keep enumeration cheap).
	MaxK int
	// LinkMode forces FailLinks when true (router-failure cases are
	// otherwise generated with probability ~1/5).
	LinkMode bool
}

func (o Options) withDefaults() Options {
	if o.MinRouters <= 0 {
		o.MinRouters = 5
	}
	if o.MaxRouters < o.MinRouters {
		o.MaxRouters = o.MinRouters + 4
	}
	if o.MaxASes <= 0 {
		o.MaxASes = 3
	}
	if o.MaxFlows <= 0 {
		o.MaxFlows = 5
	}
	if o.MaxK <= 0 {
		o.MaxK = 2
	}
	return o
}

// New generates the deterministic case for a seed. Identical
// (seed, opts) always yield the identical case, on every platform — the
// whole harness depends on it.
func New(seed int64, opts Options) (*Case, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	bp := genBlueprint(rng, opts)
	c, err := bp.build()
	if err != nil {
		return nil, fmt.Errorf("difftest: seed %d: %w", seed, err)
	}
	c.Seed = seed
	return c, nil
}

// MustNew is New panicking on generation errors, for fuzz harnesses whose
// blueprints are valid by construction.
func MustNew(seed int64, opts Options) *Case {
	c, err := New(seed, opts)
	if err != nil {
		panic(err)
	}
	return c
}

// forEachScenario enumerates every failure scenario of the case's mode
// with at most k failed elements (including the no-failure scenario),
// invoking fn with the failed links and routers. Elements marked NoFail
// are skipped, matching the enumerating baseline.
func forEachScenario(net *topo.Network, mode topo.FailureMode, k int, fn func(links []topo.LinkID, routers []topo.RouterID) error) error {
	type elem struct {
		link   topo.LinkID
		router topo.RouterID
		isLink bool
	}
	var elems []elem
	if mode == topo.FailLinks || mode == topo.FailBoth {
		for i := range net.Links {
			if !net.Links[i].NoFail {
				elems = append(elems, elem{link: topo.LinkID(i), isLink: true})
			}
		}
	}
	if mode == topo.FailRouters || mode == topo.FailBoth {
		for i := range net.Routers {
			if !net.Routers[i].NoFail {
				elems = append(elems, elem{router: topo.RouterID(i)})
			}
		}
	}
	var links []topo.LinkID
	var routers []topo.RouterID
	var visit func(start, budget int) error
	visit = func(start, budget int) error {
		if err := fn(links, routers); err != nil {
			return err
		}
		if budget == 0 {
			return nil
		}
		for i := start; i < len(elems); i++ {
			e := elems[i]
			if e.isLink {
				links = append(links, e.link)
			} else {
				routers = append(routers, e.router)
			}
			err := visit(i+1, budget-1)
			if e.isLink {
				links = links[:len(links)-1]
			} else {
				routers = routers[:len(routers)-1]
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	return visit(0, k)
}
