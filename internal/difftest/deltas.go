// The incremental-vs-cold oracle: random delta sequences applied through
// the daemon (internal/serve) must leave its report byte-identical to a
// cold full verification of the final specification. This is the
// end-to-end defense of the warm-cache soundness argument — if the
// content-hash invalidation ever under-approximates what a delta dirties,
// the stale class's numbers leak into the report and the byte comparison
// fails.
package difftest

import (
	"fmt"
	"math/rand"
	"net/netip"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/canon"
	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/serve"
	"github.com/yu-verify/yu/internal/topo"
)

// deltaGen tracks what earlier deltas added, so remove operations are
// valid by construction.
type deltaGen struct {
	rng     *rand.Rand
	spec    *config.Spec
	statics map[string]map[netip.Prefix]bool // router -> added static prefixes
	flows   []string                         // added flow names
	nflows  int
	denies  map[string]bool // "router|neighbor|prefix" -> currently denied
}

// GenDeltas derives n daemon deltas from the spec, valid by construction
// when applied in order: every operation targets routers, links, and
// neighbors that exist, and removals only target earlier additions.
// Identical (rng state, spec, n) yield identical sequences.
func GenDeltas(rng *rand.Rand, spec *config.Spec, n int) []serve.Delta {
	g := &deltaGen{rng: rng, spec: spec, statics: make(map[string]map[netip.Prefix]bool), denies: make(map[string]bool)}
	for _, name := range sortedConfigNames(spec.Configs) {
		rc := spec.Configs[name]
		for _, nb := range rc.Neighbors {
			for _, p := range nb.ExportDeny {
				g.denies[name+"|"+nb.Addr.String()+"|"+p.String()] = true
			}
		}
	}
	out := make([]serve.Delta, 0, n)
	for len(out) < n {
		out = append(out, g.next())
	}
	return out
}

func (g *deltaGen) next() serve.Delta {
	for {
		switch g.rng.Intn(7) {
		case 0:
			return g.setLinkCost()
		case 1:
			return g.addStatic()
		case 2:
			if d, ok := g.removeStatic(); ok {
				return d
			}
		case 3:
			return g.addFlow()
		case 4:
			if d, ok := g.removeFlow(); ok {
				return d
			}
		case 5:
			if d, ok := g.setLocalPref(); ok {
				return d
			}
		case 6:
			if d, ok := g.flipExportDeny(); ok {
				return d
			}
		}
	}
}

func (g *deltaGen) routerName() string {
	net := g.spec.Net
	return net.Routers[g.rng.Intn(net.NumRouters())].Name
}

func (g *deltaGen) setLinkCost() serve.Delta {
	net := g.spec.Net
	l := net.Link(topo.LinkID(g.rng.Intn(net.NumLinks())))
	return serve.Delta{
		Op:   "set-link-cost",
		A:    net.Router(l.A).Name,
		B:    net.Router(l.B).Name,
		Cost: int64(1+g.rng.Intn(30)) * 100,
	}
}

func (g *deltaGen) addStatic() serve.Delta {
	r := g.routerName()
	var pfx netip.Prefix
	if len(g.spec.Flows) > 0 && g.rng.Intn(3) == 0 {
		// A /32 on an existing flow destination: splits that flow's
		// prefix class, the sharpest invalidation shape.
		f := g.spec.Flows[g.rng.Intn(len(g.spec.Flows))]
		pfx = netip.PrefixFrom(f.Dst, f.Dst.BitLen())
	} else {
		pfx = netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(40 + g.rng.Intn(60)), 0, 0, 0}), 8)
	}
	if g.statics[r] == nil {
		g.statics[r] = make(map[netip.Prefix]bool)
	}
	g.statics[r][pfx] = true
	return serve.Delta{Op: "add-static", Router: r, Prefix: pfx.String(), Discard: true}
}

func (g *deltaGen) removeStatic() (serve.Delta, bool) {
	// Deterministic pick (first router by name, lowest prefix) so equal
	// rng states yield equal sequences — fuzz seeds must reproduce.
	var names []string
	for r, set := range g.statics {
		if len(set) > 0 {
			names = append(names, r)
		}
	}
	if len(names) == 0 {
		return serve.Delta{}, false
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	r := names[0]
	var best netip.Prefix
	for pfx := range g.statics[r] {
		if !best.IsValid() || pfx.String() < best.String() {
			best = pfx
		}
	}
	delete(g.statics[r], best)
	return serve.Delta{Op: "remove-static", Router: r, Prefix: best.String()}, true
}

func (g *deltaGen) addFlow() serve.Delta {
	g.nflows++
	name := fmt.Sprintf("dz%d", g.nflows)
	g.flows = append(g.flows, name)
	dst := netip.AddrFrom4([4]byte{10, byte(g.rng.Intn(200)), 0, byte(1 + g.rng.Intn(200))})
	if len(g.spec.Flows) > 0 && g.rng.Intn(2) == 0 {
		// Reuse an existing destination so the new flow lands in an
		// existing prefix class (exercises class-volume changes).
		dst = g.spec.Flows[g.rng.Intn(len(g.spec.Flows))].Dst
	}
	return serve.Delta{
		Op:      "add-flow",
		Flow:    name,
		Ingress: g.routerName(),
		Src:     netip.AddrFrom4([4]byte{10, 250, 0, byte(1 + g.rng.Intn(250))}).String(),
		Dst:     dst.String(),
		DSCP:    uint8(g.rng.Intn(2) * 5),
		Gbps:    float64(1 + g.rng.Intn(10)),
	}
}

func (g *deltaGen) removeFlow() (serve.Delta, bool) {
	if len(g.flows) == 0 {
		return serve.Delta{}, false
	}
	name := g.flows[len(g.flows)-1]
	g.flows = g.flows[:len(g.flows)-1]
	return serve.Delta{Op: "remove-flow", Flow: name}, true
}

// neighborTarget picks a deterministic (router, neighbor) pair from the
// spec's BGP sessions, if any exist.
func (g *deltaGen) neighborTarget() (string, netip.Addr, bool) {
	var routers []string
	for name, rc := range g.spec.Configs {
		if len(rc.Neighbors) > 0 {
			routers = append(routers, name)
		}
	}
	if len(routers) == 0 {
		return "", netip.Addr{}, false
	}
	// Sort-free determinism: pick by rng over a sorted copy.
	for i := 1; i < len(routers); i++ {
		for j := i; j > 0 && routers[j] < routers[j-1]; j-- {
			routers[j], routers[j-1] = routers[j-1], routers[j]
		}
	}
	r := routers[g.rng.Intn(len(routers))]
	nbs := g.spec.Configs[r].Neighbors
	return r, nbs[g.rng.Intn(len(nbs))].Addr, true
}

func (g *deltaGen) setLocalPref() (serve.Delta, bool) {
	r, nb, ok := g.neighborTarget()
	if !ok {
		return serve.Delta{}, false
	}
	return serve.Delta{
		Op:        "set-local-pref",
		Router:    r,
		Neighbor:  nb.String(),
		LocalPref: uint32(50 + 50*g.rng.Intn(6)),
	}, true
}

// flipExportDeny toggles an export-deny for an originated prefix on a
// random session — the Figure 10 misconfiguration, introduced or
// repaired at random.
func (g *deltaGen) flipExportDeny() (serve.Delta, bool) {
	r, nb, ok := g.neighborTarget()
	if !ok {
		return serve.Delta{}, false
	}
	var originated []netip.Prefix
	for _, name := range sortedConfigNames(g.spec.Configs) {
		originated = append(originated, g.spec.Configs[name].Networks...)
	}
	if len(originated) == 0 {
		return serve.Delta{}, false
	}
	pfx := originated[g.rng.Intn(len(originated))]
	// Track the deny state across the generated sequence so a remove is
	// only ever emitted while the deny is actually in place.
	key := r + "|" + nb.String() + "|" + pfx.String()
	op := "add-export-deny"
	if g.denies[key] {
		op = "remove-export-deny"
	}
	g.denies[key] = !g.denies[key]
	return serve.Delta{Op: op, Router: r, Neighbor: nb.String(), Prefix: pfx.String()}, true
}

func sortedConfigNames(cfgs config.Configs) []string {
	names := make([]string, 0, len(cfgs))
	for name := range cfgs {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// CheckDeltas is the incremental-vs-cold oracle: starting from the
// case's spec, apply n random deltas one at a time through a daemon
// (re-verifying after each), then require the final daemon report to be
// byte-identical to (a) a cold full verification of the final canonical
// text and (b) a second, fresh daemon given the final text directly.
func CheckDeltas(c *Case, rng *rand.Rand, n int) error {
	text0, err := canon.FormatSpec(c.Spec)
	if err != nil {
		return fmt.Errorf("deltas: format: %w", err)
	}
	cfg := serve.Config{K: c.K, Mode: c.Mode, ModeSet: true, OverloadFactor: c.OverloadFactor}
	s := serve.NewServer(cfg)
	if _, err := s.LoadSpecText(text0); err != nil {
		return fmt.Errorf("deltas: load: %w", err)
	}
	if res, err := s.Report(); err != nil {
		return fmt.Errorf("deltas: initial report: %w", err)
	} else if res.Err != nil {
		return fmt.Errorf("deltas: initial verify: %w", res.Err)
	}
	spec0, err := config.ParseSpecString(text0)
	if err != nil {
		return fmt.Errorf("deltas: reparse: %w", err)
	}
	deltas := GenDeltas(rng, spec0, n)
	var last serve.RunResult
	for i, d := range deltas {
		if _, err := s.ApplyDeltas([]serve.Delta{d}); err != nil {
			return fmt.Errorf("deltas: delta %d rejected (generator contract broken): %w", i, err)
		}
		last, err = s.Report()
		if err != nil {
			return fmt.Errorf("deltas: report after delta %d: %w", i, err)
		}
		if last.Err != nil {
			return fmt.Errorf("deltas: verify after delta %d: %w", i, last.Err)
		}
	}
	finalText, _ := s.SpecText()

	// Cold full verification of the final state.
	spec, err := config.ParseSpecString(finalText)
	if err != nil {
		return fmt.Errorf("deltas: final spec does not parse: %w", err)
	}
	rep, err := yu.FromSpec(spec).Verify(yu.VerifyOptions{
		K: c.K, Mode: c.Mode, ModeSet: true,
		OverloadFactor: c.OverloadFactor, Workers: 1,
	})
	if err != nil {
		return fmt.Errorf("deltas: cold verify: %w", err)
	}
	cold := canon.FormatReport(spec.Net, rep)
	if last.Text != cold {
		return fmt.Errorf("deltas: incremental report diverges from cold after %d deltas\n--- incremental\n%s\n--- cold\n%s\n--- deltas\n%+v",
			n, last.Text, cold, deltas)
	}

	// A fresh daemon given the final text must agree too (canonical
	// text is a fixpoint; versioning adds nothing to the result).
	s2 := serve.NewServer(cfg)
	if _, err := s2.LoadSpecText(finalText); err != nil {
		return fmt.Errorf("deltas: fresh load: %w", err)
	}
	res2, err := s2.Report()
	if err != nil {
		return fmt.Errorf("deltas: fresh report: %w", err)
	}
	if res2.Err != nil {
		return fmt.Errorf("deltas: fresh verify: %w", res2.Err)
	}
	if res2.Text != cold {
		return fmt.Errorf("deltas: fresh daemon diverges from cold\n--- fresh\n%s\n--- cold\n%s", res2.Text, cold)
	}
	return nil
}
