package difftest

import (
	"errors"
	"fmt"
	"testing"

	"github.com/yu-verify/yu/internal/topo"
)

// TestDiffBattery is the acceptance gate for the subsystem: ≥50 seeded
// random cases, each pushed through the full oracle battery, with zero
// disagreements. A failure names the seed and oracle; reproduce and
// shrink it with `go run ./cmd/yudiff -seed N`.
func TestDiffBattery(t *testing.T) {
	const cases = 50
	for seed := int64(1); seed <= cases; seed++ {
		seed := seed
		t.Run(caseName(seed), func(t *testing.T) {
			t.Parallel()
			c, err := New(seed, Options{})
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			if err := RunAll(c); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		})
	}
}

func caseName(seed int64) string {
	return "seed-" + string('0'+byte(seed/10)) + string('0'+byte(seed%10))
}

// TestDiffGeneratorDeterministic: the same (seed, opts) must yield the
// byte-identical spec — the property that makes seeds reproducible across
// runs, fuzz corpora, and cmd/yudiff.
func TestDiffGeneratorDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := MustNew(seed, Options{})
		b := MustNew(seed, Options{})
		ta, err := FormatSpec(a.Spec)
		if err != nil {
			t.Fatalf("seed %d: format: %v", seed, err)
		}
		tb, err := FormatSpec(b.Spec)
		if err != nil {
			t.Fatalf("seed %d: format: %v", seed, err)
		}
		if ta != tb {
			t.Fatalf("seed %d: two generations differ:\n--- a ---\n%s--- b ---\n%s", seed, ta, tb)
		}
		if a.K != b.K || a.Mode != b.Mode || a.OverloadFactor != b.OverloadFactor {
			t.Fatalf("seed %d: verification parameters differ", seed)
		}
	}
}

// TestDiffShrink drives the shrinker with a synthetic failure ("the case
// has at least one flow") and checks the result is 1-minimal: exactly one
// flow survives and every removable element — SR policies, statics, BGP
// tweaks, properties, chord links, prefixes — is gone.
func TestDiffShrink(t *testing.T) {
	hasFlows := func(c *Case) error {
		if len(c.Spec.Flows) > 0 {
			return errors.New("still has flows")
		}
		return nil
	}
	for seed := int64(1); seed <= 5; seed++ {
		c := MustNew(seed, Options{})
		small := Shrink(c, hasFlows)
		if err := hasFlows(small); err == nil {
			t.Fatalf("seed %d: shrunk case no longer fails the predicate", seed)
		}
		bp := small.bp
		if len(bp.flows) != 1 {
			t.Errorf("seed %d: want 1 flow after shrink, got %d", seed, len(bp.flows))
		}
		if len(bp.srPols)+len(bp.statics)+len(bp.lpTweaks)+len(bp.exDenies) != 0 {
			t.Errorf("seed %d: config knobs survived shrink: %d SR, %d static, %d local-pref, %d export-deny",
				seed, len(bp.srPols), len(bp.statics), len(bp.lpTweaks), len(bp.exDenies))
		}
		if len(bp.loadProps)+len(bp.delivered) != 0 {
			t.Errorf("seed %d: properties survived shrink", seed)
		}
		if len(bp.prefixes) != 0 {
			t.Errorf("seed %d: %d prefixes survived shrink", seed, len(bp.prefixes))
		}
		for _, l := range bp.links {
			if !l.ring {
				t.Errorf("seed %d: chord link %d-%d survived shrink", seed, l.a, l.b)
			}
		}
		if small.Seed != seed {
			t.Errorf("seed %d: shrunk case reports seed %d", seed, small.Seed)
		}
		// The minimized blueprint must still build and format: it is what
		// cmd/yudiff prints as the reproducer.
		if _, err := FormatSpec(small.Spec); err != nil {
			t.Errorf("seed %d: shrunk spec does not format: %v", seed, err)
		}
	}
}

// TestDiffScenarioEnumeration pins the enumeration the exhaustive oracles
// quantify over: all distinct subsets of failable links up to size k,
// including the empty scenario, with nofail links excluded.
func TestDiffScenarioEnumeration(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := MustNew(seed, Options{LinkMode: true})
		net := c.Spec.Net
		failable := 0
		for i := range net.Links {
			if !net.Links[i].NoFail {
				failable++
			}
		}
		want := 0
		for sz := 0; sz <= c.K; sz++ {
			want += binomial(failable, sz)
		}
		seen := make(map[string]bool)
		err := forEachScenario(net, c.Mode, c.K, func(links []topo.LinkID, routers []topo.RouterID) error {
			if len(routers) != 0 {
				t.Fatalf("seed %d: router failure in link mode", seed)
			}
			if len(links) > c.K {
				t.Fatalf("seed %d: scenario %v exceeds budget %d", seed, links, c.K)
			}
			key := fmt.Sprint(links)
			if seen[key] {
				t.Fatalf("seed %d: scenario %v enumerated twice", seed, links)
			}
			seen[key] = true
			for _, l := range links {
				if net.Links[l].NoFail {
					t.Fatalf("seed %d: nofail link %v enumerated as failed", seed, l)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(seen) != want {
			t.Fatalf("seed %d: enumerated %d scenarios, want %d (failable=%d k=%d)",
				seed, len(seen), want, failable, c.K)
		}
	}
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}
