package difftest

import (
	"fmt"
	"math/rand"
	"net/netip"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/topo"
)

// blueprint is the mutable intermediate representation a Case is built
// from. The generator fills one in; the shrinker removes elements and
// rebuilds. Routers are never removed (flows, statics, and SR policies
// reference them by index), everything else is fair game.
type blueprint struct {
	nRouters int
	nAS      int
	// nofailLink is the index of a link excluded from the failure model,
	// -1 for none.
	nofailLink int

	links     []bpLink
	prefixes  []bpPrefix
	statics   []bpStatic
	srPols    []bpSR
	flows     []bpFlow
	lpTweaks  []bpLocalPref
	exDenies  []bpExportDeny
	loadProps []bpLoadProp
	delivered []bpDelivered

	k        int
	mode     topo.FailureMode
	overload float64
}

// asOf maps a router index to its 0-based AS: contiguous blocks along the
// ring, so every AS is internally connected by ring links. (A striped
// assignment leaves ASes with no intra-AS links — IGP islands whose iBGP
// sessions are all down — which is both unrealistic and a known class of
// engine divergence in degenerate route propagation.)
func (bp *blueprint) asOf(i int) int { return i * bp.nAS / bp.nRouters }

type bpLink struct {
	a, b int
	cost int64
	cap  float64
	// ring links guarantee connectivity and are exempt from shrinking.
	ring bool
}

type bpPrefix struct {
	owner int
	pfx   netip.Prefix
}

type bpStatic struct {
	owner   int
	pfx     netip.Prefix
	discard bool
	// via is the router whose loopback is the next hop when !discard.
	via       int
	redistrib bool
}

type bpSR struct {
	owner int
	dscp  int // config.AnyDSCP or a value
	paths []bpSRPath
}

type bpSRPath struct {
	segs   []int // router indices
	weight int64
}

type bpFlow struct {
	ingress int
	src     netip.Addr
	dst     netip.Addr
	dscp    uint8
	gbps    float64
}

type bpLocalPref struct {
	router, nb int
	pref       uint32
}

type bpExportDeny struct {
	router, nb, prefix int
}

type bpLoadProp struct {
	link     int // index into links
	directed bool
	dir      topo.Direction
	max      float64
}

type bpDelivered struct {
	prefix int
	min    float64
}

// genBlueprint draws a random blueprint: a multi-AS ring-plus-chords
// topology running IS-IS + BGP (eBGP inter-AS, iBGP full mesh per AS),
// sprinkled with SR policies (weighted ECMP across explicit paths),
// statics (discard and via), redistribution, local-pref and export-deny
// tweaks, and a random workload with properties. This is the promoted —
// and extended — random-spec builder that used to live in
// internal/core/random_diff_test.go.
func genBlueprint(rng *rand.Rand, opts Options) *blueprint {
	bp := &blueprint{nofailLink: -1}
	bp.nRouters = opts.MinRouters + rng.Intn(opts.MaxRouters-opts.MinRouters+1)
	bp.nAS = 1 + rng.Intn(opts.MaxASes)

	// Ring for connectivity + random chords. An "ECMP-rich" knob forces
	// uniform costs so equal-cost multipath shows up often.
	uniformCost := rng.Intn(2) == 0
	cost := func() int64 {
		if uniformCost {
			return 10
		}
		return int64(10 * (1 + rng.Intn(3)))
	}
	capacity := func() float64 {
		if rng.Intn(4) == 0 {
			return 40
		}
		return 100
	}
	type pair struct{ a, b int }
	seen := map[pair]bool{}
	addLink := func(i, j int, ring bool) {
		if i == j {
			return
		}
		if i > j {
			i, j = j, i
		}
		if seen[pair{i, j}] {
			return
		}
		seen[pair{i, j}] = true
		bp.links = append(bp.links, bpLink{a: i, b: j, cost: cost(), cap: capacity(), ring: ring})
	}
	for i := 0; i < bp.nRouters; i++ {
		addLink(i, (i+1)%bp.nRouters, true)
	}
	for c := 0; c < bp.nRouters/2+1; c++ {
		addLink(rng.Intn(bp.nRouters), rng.Intn(bp.nRouters), false)
	}
	if rng.Intn(6) == 0 {
		bp.nofailLink = rng.Intn(len(bp.links))
	}

	// 2-3 originated prefixes.
	nPfx := 2 + rng.Intn(2)
	for p := 0; p < nPfx; p++ {
		bp.prefixes = append(bp.prefixes, bpPrefix{
			owner: rng.Intn(bp.nRouters),
			pfx:   netip.PrefixFrom(netip.AddrFrom4([4]byte{100, byte(p), 0, 0}), 24),
		})
	}

	// Occasionally a discard static with redistribution (the Fig 10
	// misconfiguration pattern), and occasionally a via static preferring
	// an explicit next hop over BGP (admin distance 1).
	discardOwner := -1
	if rng.Intn(3) == 0 {
		discardOwner = rng.Intn(bp.nRouters)
		bp.statics = append(bp.statics, bpStatic{
			owner:     discardOwner,
			pfx:       netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 0, 0, 0}), 8),
			discard:   true,
			redistrib: true,
		})
	}
	// Via-statics point at the prefix owner's loopback: still exercises
	// admin-distance-1-beats-BGP recursion, but keeps forwarding
	// destination-consistent (everyone moves toward the owner), so no
	// routing loops — loops make load ill-defined and the engines model
	// them differently on purpose.
	// The via-static must not land on the redistributing router:
	// redistribution is per-router, and re-advertising a via-static for
	// someone else's prefix sets up a hot-potato ECMP tie that bounces
	// traffic between the advertiser and the origin — a livelock whose
	// truncation depth the engines legitimately disagree on.
	if rng.Intn(4) == 0 {
		p := rng.Intn(len(bp.prefixes))
		owner := rng.Intn(bp.nRouters)
		if owner != bp.prefixes[p].owner && owner != discardOwner {
			bp.statics = append(bp.statics, bpStatic{
				owner: owner,
				pfx:   bp.prefixes[p].pfx,
				via:   bp.prefixes[p].owner,
			})
		}
	}

	// SR policies inside multi-router ASes: weighted two-path steering
	// with randomized weights (the weighted-ECMP knob) and sometimes a
	// DSCP match.
	if rng.Intn(2) == 0 {
		perAS := make([][]int, bp.nAS)
		for i := 0; i < bp.nRouters; i++ {
			perAS[bp.asOf(i)] = append(perAS[bp.asOf(i)], i)
		}
		for as := 0; as < bp.nAS; as++ {
			members := perAS[as]
			if len(members) < 3 {
				continue
			}
			src := members[rng.Intn(len(members))]
			mid := members[rng.Intn(len(members))]
			end := members[rng.Intn(len(members))]
			if src == mid || mid == end || src == end {
				continue
			}
			dscp := config.AnyDSCP
			if rng.Intn(2) == 0 {
				dscp = 5
			}
			bp.srPols = append(bp.srPols, bpSR{
				owner: src,
				dscp:  dscp,
				paths: []bpSRPath{
					{segs: []int{end}, weight: int64(1 + rng.Intn(99))},
					{segs: []int{mid, end}, weight: int64(1 + rng.Intn(99))},
				},
			})
			break
		}
	}

	// BGP policy tweaks on the auto-meshed sessions: a local-pref
	// override and an export-deny (both resolved against the session list
	// EBGPSessionsFullMesh builds, which is deterministic).
	if rng.Intn(3) == 0 {
		pref := uint32(50)
		if rng.Intn(2) == 0 {
			pref = 200
		}
		bp.lpTweaks = append(bp.lpTweaks, bpLocalPref{
			router: rng.Intn(bp.nRouters), nb: rng.Intn(4), pref: pref,
		})
	}
	if rng.Intn(4) == 0 {
		bp.exDenies = append(bp.exDenies, bpExportDeny{
			router: rng.Intn(bp.nRouters), nb: rng.Intn(4),
			prefix: rng.Intn(len(bp.prefixes)),
		})
	}

	// Random workload.
	nFlows := 2 + rng.Intn(opts.MaxFlows-1)
	for f := 0; f < nFlows; f++ {
		p := rng.Intn(len(bp.prefixes))
		var dscp uint8
		if rng.Intn(2) == 0 {
			dscp = 5
		}
		dst := bp.prefixes[p].pfx.Addr()
		for o := rng.Intn(4); o >= 0; o-- {
			dst = dst.Next()
		}
		bp.flows = append(bp.flows, bpFlow{
			ingress: rng.Intn(bp.nRouters),
			src:     netip.AddrFrom4([4]byte{9, 9, byte(f), 1}),
			dst:     dst,
			dscp:    dscp,
			gbps:    float64(1 + rng.Intn(50)),
		})
	}

	// Properties: the all-links overload factor plus occasionally an
	// explicit max bound and a delivered floor.
	bp.overload = 0.4 + 0.2*float64(rng.Intn(4))
	if rng.Intn(4) == 0 {
		bp.loadProps = append(bp.loadProps, bpLoadProp{
			link:     rng.Intn(len(bp.links)),
			directed: rng.Intn(2) == 0,
			dir:      topo.Direction(rng.Intn(2)),
			max:      float64(20 + rng.Intn(50)),
		})
	}
	if rng.Intn(3) == 0 {
		p := rng.Intn(len(bp.prefixes))
		total := 0.0
		for _, f := range bp.flows {
			if bp.prefixes[p].pfx.Contains(f.dst) {
				total += f.gbps
			}
		}
		if total > 0 {
			bp.delivered = append(bp.delivered, bpDelivered{
				prefix: p,
				min:    total * (0.5 + 0.4*rng.Float64()),
			})
		}
	}

	// Failure budget and mode.
	bp.k = 1 + rng.Intn(opts.MaxK)
	bp.mode = topo.FailLinks
	if !opts.LinkMode && rng.Intn(5) == 0 {
		bp.mode = topo.FailRouters
		bp.k = 1
	}
	return bp
}

// build materializes the blueprint into a validated Case.
func (bp *blueprint) build() (*Case, error) {
	b := topo.NewBuilder()
	names := make([]string, bp.nRouters)
	for i := 0; i < bp.nRouters; i++ {
		names[i] = fmt.Sprintf("r%d", i)
		b.AddRouter(names[i], uint32(1+bp.asOf(i)))
	}
	for li, l := range bp.links {
		opts := []topo.LinkOpt{topo.WithCost(l.cost), topo.WithCapacity(l.cap)}
		if li == bp.nofailLink {
			opts = append(opts, topo.LinkNoFail())
		}
		b.AddLink(names[l.a], names[l.b], opts...)
	}
	net, err := b.Build()
	if err != nil {
		return nil, err
	}
	cfgs := make(config.Configs)
	for _, p := range bp.prefixes {
		cfgs.Get(names[p.owner]).Networks = append(cfgs.Get(names[p.owner]).Networks, p.pfx)
	}
	for _, st := range bp.statics {
		rc := cfgs.Get(names[st.owner])
		sr := config.StaticRoute{Prefix: st.pfx, Discard: st.discard}
		if !st.discard {
			sr.NextHop = net.Router(topo.RouterID(st.via)).Loopback
		}
		rc.Statics = append(rc.Statics, sr)
		if st.redistrib {
			rc.RedistributeStatic = true
		}
	}
	config.EBGPSessionsFullMesh(net, cfgs)
	for _, p := range bp.srPols {
		var paths []config.SRPath
		for _, bpath := range p.paths {
			var segs []netip.Addr
			for _, s := range bpath.segs {
				segs = append(segs, net.Router(topo.RouterID(s)).Loopback)
			}
			paths = append(paths, config.SRPath{Segments: segs, Weight: bpath.weight})
		}
		end := p.paths[0].segs[len(p.paths[0].segs)-1]
		cfgs.Get(names[p.owner]).SRPolicies = append(cfgs.Get(names[p.owner]).SRPolicies,
			config.SRPolicy{
				Endpoint:  netip.PrefixFrom(net.Router(topo.RouterID(end)).Loopback, 32),
				MatchDSCP: p.dscp,
				Paths:     paths,
			})
	}
	// Session tweaks land on eBGP sessions only, selected from the
	// deterministic auto-mesh neighbor lists. Local-pref is an eBGP import
	// knob in both engines, and an iBGP export-deny hides routes from
	// same-AS peers — the classic recipe for forwarding deflection loops,
	// under which traffic load is ill-defined. Routers with no eBGP
	// sessions skip the tweak.
	ebgpIdx := func(ri int) []int {
		var idx []int
		for j, nb := range cfgs.Get(names[ri]).Neighbors {
			if nb.RemoteAS != uint32(1+bp.asOf(ri)) {
				idx = append(idx, j)
			}
		}
		return idx
	}
	for _, t := range bp.lpTweaks {
		if idx := ebgpIdx(t.router); len(idx) > 0 {
			cfgs.Get(names[t.router]).Neighbors[idx[t.nb%len(idx)]].LocalPref = t.pref
		}
	}
	for _, d := range bp.exDenies {
		if d.prefix >= len(bp.prefixes) {
			continue
		}
		if idx := ebgpIdx(d.router); len(idx) > 0 {
			nb := &cfgs.Get(names[d.router]).Neighbors[idx[d.nb%len(idx)]]
			nb.ExportDeny = append(nb.ExportDeny, bp.prefixes[d.prefix].pfx)
		}
	}
	if err := cfgs.Validate(net); err != nil {
		return nil, err
	}
	spec := &config.Spec{Net: net, Configs: cfgs, K: bp.k, Mode: bp.mode}
	for f, bf := range bp.flows {
		spec.Flows = append(spec.Flows, topo.Flow{
			Name:    fmt.Sprintf("f%d", f),
			Ingress: topo.RouterID(bf.ingress),
			Src:     bf.src,
			Dst:     bf.dst,
			DSCP:    bf.dscp,
			Gbps:    bf.gbps,
		})
	}
	for _, p := range bp.loadProps {
		if p.link >= len(bp.links) {
			continue
		}
		spec.Props = append(spec.Props, topo.LoadBound{
			Link: topo.LinkID(p.link), Dir: p.dir, DirSpecified: p.directed,
			Min: 0, Max: p.max,
		})
	}
	for _, d := range bp.delivered {
		if d.prefix >= len(bp.prefixes) {
			continue
		}
		spec.Delivered = append(spec.Delivered, topo.DeliveredBound{
			Prefix: bp.prefixes[d.prefix].pfx, Min: d.min, Max: infinity,
		})
	}
	return &Case{Spec: spec, K: bp.k, Mode: bp.mode, OverloadFactor: bp.overload, bp: bp}, nil
}

// clone deep-copies the blueprint so shrink candidates never alias.
func (bp *blueprint) clone() *blueprint {
	c := *bp
	c.links = append([]bpLink(nil), bp.links...)
	c.prefixes = append([]bpPrefix(nil), bp.prefixes...)
	c.statics = append([]bpStatic(nil), bp.statics...)
	c.srPols = append([]bpSR(nil), bp.srPols...)
	c.flows = append([]bpFlow(nil), bp.flows...)
	c.lpTweaks = append([]bpLocalPref(nil), bp.lpTweaks...)
	c.exDenies = append([]bpExportDeny(nil), bp.exDenies...)
	c.loadProps = append([]bpLoadProp(nil), bp.loadProps...)
	c.delivered = append([]bpDelivered(nil), bp.delivered...)
	return &c
}
