package difftest

// Shrink greedily minimizes a failing case: it repeatedly removes one
// element from the case's blueprint (a flow, SR policy, static route, BGP
// tweak, property, chord link, or prefix — routers and ring links stay,
// preserving identity and connectivity), rebuilds, and keeps the removal
// whenever stillFailing reports the smaller case still fails. It runs to
// a fixpoint, so the result is 1-minimal: removing any single remaining
// element makes the failure disappear.
//
// stillFailing must be deterministic; RunAll is the usual predicate.
func Shrink(c *Case, stillFailing func(*Case) error) *Case {
	if c.bp == nil {
		return c
	}
	cur := c
	for {
		smaller := shrinkStep(cur, stillFailing)
		if smaller == nil {
			return cur
		}
		cur = smaller
	}
}

// shrinkStep tries every single-element removal and returns the first
// still-failing smaller case, or nil when none helps.
func shrinkStep(c *Case, stillFailing func(*Case) error) *Case {
	for _, op := range removalOps(c.bp) {
		bp := c.bp.clone()
		op(bp)
		cand, err := bp.build()
		if err != nil {
			continue // removal produced an invalid spec; not a candidate
		}
		cand.Seed = c.Seed
		if stillFailing(cand) != nil {
			return cand
		}
	}
	return nil
}

// removalOps enumerates every single-element removal applicable to the
// blueprint, cheap reductions (workload, policy knobs) before structural
// ones (links, prefixes).
func removalOps(bp *blueprint) []func(*blueprint) {
	var ops []func(*blueprint)
	for i := range bp.flows {
		i := i
		ops = append(ops, func(b *blueprint) { b.flows = removeAt(b.flows, i) })
	}
	for i := range bp.srPols {
		i := i
		ops = append(ops, func(b *blueprint) { b.srPols = removeAt(b.srPols, i) })
	}
	for i := range bp.statics {
		i := i
		ops = append(ops, func(b *blueprint) { b.statics = removeAt(b.statics, i) })
	}
	for i := range bp.lpTweaks {
		i := i
		ops = append(ops, func(b *blueprint) { b.lpTweaks = removeAt(b.lpTweaks, i) })
	}
	for i := range bp.exDenies {
		i := i
		ops = append(ops, func(b *blueprint) { b.exDenies = removeAt(b.exDenies, i) })
	}
	for i := range bp.loadProps {
		i := i
		ops = append(ops, func(b *blueprint) { b.loadProps = removeAt(b.loadProps, i) })
	}
	for i := range bp.delivered {
		i := i
		ops = append(ops, func(b *blueprint) { b.delivered = removeAt(b.delivered, i) })
	}
	for i := range bp.links {
		if bp.links[i].ring {
			continue
		}
		i := i
		ops = append(ops, func(b *blueprint) { b.removeLink(i) })
	}
	for i := range bp.prefixes {
		i := i
		ops = append(ops, func(b *blueprint) { b.removePrefix(i) })
	}
	return ops
}

func removeAt[T any](xs []T, i int) []T {
	return append(xs[:i:i], xs[i+1:]...)
}

// removeLink deletes links[i] and re-aims every index that pointed past
// it: the nofail marker and the explicit load properties. Properties on
// the removed link itself go with it.
func (bp *blueprint) removeLink(i int) {
	bp.links = removeAt(bp.links, i)
	switch {
	case bp.nofailLink == i:
		bp.nofailLink = -1
	case bp.nofailLink > i:
		bp.nofailLink--
	}
	props := bp.loadProps[:0]
	for _, p := range bp.loadProps {
		if p.link == i {
			continue
		}
		if p.link > i {
			p.link--
		}
		props = append(props, p)
	}
	bp.loadProps = props
}

// removePrefix deletes prefixes[i], dropping export-denies and delivered
// bounds that referenced it and shifting later references down. Flows and
// statics hold prefix values, not indices, so they are unaffected (a flow
// whose destination loses its origin simply becomes undeliverable —
// still a perfectly good case).
func (bp *blueprint) removePrefix(i int) {
	bp.prefixes = removeAt(bp.prefixes, i)
	denies := bp.exDenies[:0]
	for _, d := range bp.exDenies {
		if d.prefix == i {
			continue
		}
		if d.prefix > i {
			d.prefix--
		}
		denies = append(denies, d)
	}
	bp.exDenies = denies
	del := bp.delivered[:0]
	for _, d := range bp.delivered {
		if d.prefix == i {
			continue
		}
		if d.prefix > i {
			d.prefix--
		}
		del = append(del, d)
	}
	bp.delivered = del
}
