package difftest

import (
	"github.com/yu-verify/yu/internal/canon"
	"github.com/yu-verify/yu/internal/config"
)

// FormatSpec renders a specification as config-DSL text that parses back
// to an equivalent spec — the reproducer format cmd/yudiff prints and the
// spec-round-trip oracle checks. The renderer lives in internal/canon
// (shared with the incremental daemon); this wrapper keeps the historical
// difftest entry point.
func FormatSpec(spec *config.Spec) (string, error) { return canon.FormatSpec(spec) }
