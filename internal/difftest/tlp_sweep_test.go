// Acceptance sweep for the batch TLP engine: on every checked-in
// scenario, across worker counts and failure budgets, a portfolio
// mirroring the spec's legacy properties must reach exactly the legacy
// verdicts; and a 1000-property portfolio must still cost one terminal
// scan per directed link (the scan-sharing contract, asserted via the
// tlp.* counters).
package difftest

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/canon"
	"github.com/yu-verify/yu/internal/tlp"
	"github.com/yu-verify/yu/internal/topo"
)

// mirrorSpecProps translates a parsed spec's legacy properties into
// TLProps (the testdata analog of mirrorPortfolio, which works on
// generated cases with an overload factor).
func mirrorSpecProps(n *yu.Network) []topo.TLProp {
	spec := n.Spec()
	props := make([]topo.TLProp, 0, len(spec.Props)+len(spec.Delivered))
	for _, b := range spec.Props {
		props = append(props, topo.TLProp{
			Kind: topo.TLPLinkLoad, Link: b.Link,
			Dir: b.Dir, DirSpecified: b.DirSpecified,
			Min: b.Min, Max: b.Max,
		})
	}
	for _, d := range spec.Delivered {
		props = append(props, topo.TLProp{
			Kind: topo.TLPDelivered, Prefix: d.Prefix, Min: d.Min, Max: d.Max,
		})
	}
	return props
}

func TestTLPSweepTestdata(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.yu"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata specs: %v", err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		n, err := yu.LoadString(string(data))
		if err != nil {
			t.Fatal(err)
		}
		props := mirrorSpecProps(n)
		if len(props) == 0 {
			continue
		}
		for _, k := range []int{1, 2} {
			// The portfolio report must also be byte-identical across
			// worker counts, so evaluate all of them inside one subtest.
			t.Run(fmt.Sprintf("%s/k=%d", filepath.Base(file), k), func(t *testing.T) {
				legacy, err := n.Verify(yu.VerifyOptions{K: k, Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				violated := make(map[string]bool)
				for _, key := range canon.ViolationKeys(n.Topology(), legacy.Violations) {
					violated[key] = true
				}
				var base string
				for _, workers := range []int{1, 2, 4} {
					res, err := n.VerifyPortfolio(props, yu.VerifyOptions{K: k, Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					if res.Holds != legacy.Holds {
						t.Fatalf("workers=%d: Holds %v, legacy %v", workers, res.Holds, legacy.Holds)
					}
					for i, vd := range res.Verdicts {
						want := legacyPropViolated(n, props[i], violated)
						if got := vd.Status == tlp.StatusViolated; got != want {
							t.Errorf("workers=%d property %d (%s): violated=%v, legacy %v",
								workers, i, canon.FormatProp(n.Topology(), props[i]), got, want)
						}
					}
					text := canon.FormatPortfolio(n.Topology(), res)
					if workers == 1 {
						base = text
					} else if text != base {
						t.Errorf("workers=%d report differs from workers=1\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
							workers, base, workers, text)
					}
				}
			})
		}
	}
}

// legacyPropViolated reports whether the legacy violation-key set flags
// the mirrored property (any direction of an undirected link bound).
func legacyPropViolated(n *yu.Network, p topo.TLProp, violated map[string]bool) bool {
	net := n.Topology()
	switch p.Kind {
	case topo.TLPLinkLoad:
		dirs := []topo.Direction{topo.AtoB, topo.BtoA}
		if p.DirSpecified {
			dirs = []topo.Direction{p.Dir}
		}
		for _, d := range dirs {
			if violated["link-load "+net.DirLinkName(topo.MakeDirLinkID(p.Link, d))] {
				return true
			}
		}
		return false
	case topo.TLPDelivered:
		return violated["delivered "+p.Prefix.String()]
	}
	return false
}

// TestTLPThousandPropertiesOneScanPerLink pins the tentpole claim at
// scale: a 1000-property portfolio over the motivating network performs
// exactly one terminal scan per directed link and one per distinct
// prefix, however many properties ride on each subject.
func TestTLPThousandPropertiesOneScanPerLink(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "motivating.yu"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := yu.LoadString(string(data))
	if err != nil {
		t.Fatal(err)
	}
	net := n.Topology()
	props := make([]topo.TLProp, 0, 1000)
	for i := 0; len(props) < 1000; i++ {
		link := topo.LinkID(i % net.NumLinks())
		switch i % 4 {
		case 0:
			props = append(props, topo.TLProp{
				Kind: topo.TLPLinkLoad, Link: link, Max: float64(40 + i%120),
			})
		case 1:
			props = append(props, topo.TLProp{
				Kind: topo.TLPUtil, Link: link, Factor: 0.5 + float64(i%50)/100,
			})
		case 2:
			props = append(props, topo.TLProp{
				Kind: topo.TLPDelivered, Prefix: n.Spec().Delivered[0].Prefix,
				Min: float64(i % 100), Max: math.Inf(1),
			})
		case 3:
			props = append(props, topo.TLProp{
				Kind: topo.TLPLinkLoad, Link: link, Max: float64(60 + i%80),
				CondSet: true, CondLink: topo.LinkID((i + 1) % net.NumLinks()),
			})
		}
	}
	reg := yu.NewMetrics()
	res, err := n.VerifyPortfolio(props, yu.VerifyOptions{K: 2, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	counters := reg.Snapshot().Counters
	wantLinks := int64(2 * net.NumLinks())
	if counters["tlp.link_scans"] != wantLinks {
		t.Errorf("tlp.link_scans = %d for 1000 properties, want %d (one per directed link)",
			counters["tlp.link_scans"], wantLinks)
	}
	if counters["tlp.delivered_scans"] != 1 {
		t.Errorf("tlp.delivered_scans = %d, want 1", counters["tlp.delivered_scans"])
	}
	if counters["tlp.properties"] != 1000 {
		t.Errorf("tlp.properties = %d, want 1000", counters["tlp.properties"])
	}
	// Each distinct guard link adds exactly one restrict scan per subject
	// link it guards — bounded by links × guards, far below one scan per
	// conditional property.
	if res.Stats.RestrictScans == 0 || res.Stats.RestrictScans > 2*net.NumLinks()*net.NumLinks() {
		t.Errorf("restrict scans = %d, want within (0, %d]",
			res.Stats.RestrictScans, 2*net.NumLinks()*net.NumLinks())
	}
	if len(res.Verdicts) != 1000 {
		t.Fatalf("%d verdicts for 1000 properties", len(res.Verdicts))
	}
}
