package difftest

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/concrete"
	"github.com/yu-verify/yu/internal/core"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/routesim"
	"github.com/yu-verify/yu/internal/topo"
)

var infinity = math.Inf(1)

// tolerance absorbs the floating-point noise of ECMP fraction arithmetic
// when comparing loads computed by independent implementations.
const tolerance = 1e-6

// Oracle is one named correctness check over a generated case. An oracle
// returns nil when the case agrees with it and a descriptive error naming
// the first disagreement otherwise.
type Oracle struct {
	Name string
	Run  func(*Case) error
}

// Battery is the full oracle battery, cheapest first. RunAll executes it
// in order; cmd/yudiff and the fuzz targets share it.
func Battery() []Oracle {
	return []Oracle{
		{"loads-vs-concrete", OracleLoadsVsConcrete},
		{"violation-sets", OracleViolationSets},
		{"parallel-vs-sequential", OracleParallelVsSequential},
		{"global-equiv", OracleGlobalEquiv},
		{"monotonicity-in-k", OracleMonotonicity},
		{"kreduce-soundness", OracleKReduceSoundness},
		{"fused-kernels", OracleFusedKernels},
		{"witness-revalidation", OracleWitnessRevalidation},
		{"spec-round-trip", OracleSpecRoundTrip},
		{"governance", OracleGovernance},
		{"tlp-portfolio", OracleTLPPortfolio},
		{"modular-vs-monolithic", OracleModularVsMonolithic},
	}
}

// RunAll runs the whole battery and returns the first disagreement,
// wrapped with the oracle's name.
func RunAll(c *Case) error {
	for _, o := range Battery() {
		if err := o.Run(c); err != nil {
			return fmt.Errorf("oracle %s: %w", o.Name, err)
		}
	}
	return nil
}

// buildVerifier runs the symbolic pipeline (route simulation + flow
// execution) for the case on a fresh manager.
func buildVerifier(c *Case, budget int, engOpts core.Options) (*core.Verifier, *mtbdd.Manager, *routesim.FailVars, error) {
	m := mtbdd.New()
	fv := routesim.NewFailVars(m, c.Spec.Net, c.Mode, budget)
	rs, err := routesim.Run(fv, c.Spec.Configs)
	if err != nil {
		return nil, nil, nil, err
	}
	eng := core.NewEngine(rs, engOpts)
	return core.NewVerifier(eng, c.Spec.Flows), m, fv, nil
}

// OracleLoadsVsConcrete is the strongest check: the symbolic traffic load
// of every directed link, evaluated at every scenario with at most k
// failures, must equal the concrete simulator's load exactly (within
// float tolerance); per-flow conservation (delivered + dropped = volume)
// must hold concretely in every scenario.
func OracleLoadsVsConcrete(c *Case) error {
	net := c.Spec.Net
	ver, m, fv, err := buildVerifier(c, c.K, core.Options{DisableGlobalEquiv: true})
	if err != nil {
		return err
	}
	// Aggregate all per-link STLs up front so scenario evaluation is a
	// pure MTBDD walk.
	taus := make(map[topo.DirLinkID]*mtbdd.Node)
	for li := 0; li < net.NumLinks(); li++ {
		for _, d := range []topo.Direction{topo.AtoB, topo.BtoA} {
			dl := topo.MakeDirLinkID(topo.LinkID(li), d)
			tau, _ := ver.LinkLoad(dl)
			taus[dl] = tau
		}
	}
	sim := concrete.NewSim(net, c.Spec.Configs)
	return forEachScenario(net, c.Mode, c.K, func(links []topo.LinkID, routers []topo.RouterID) error {
		sc := concrete.NewScenario(net)
		for _, l := range links {
			sc.LinkDown[l] = true
		}
		for _, r := range routers {
			sc.RouterDown[r] = true
		}
		res := sim.Simulate(sc, c.Spec.Flows)
		assign := fv.Scenario(links, routers)
		for dl, tau := range taus {
			sym := m.Eval(tau, assign)
			conc := res.Load[dl]
			if math.Abs(sym-conc) > tolerance {
				return fmt.Errorf("failed=%v/%v link %s: symbolic %.9g vs concrete %.9g",
					links, routers, net.DirLinkName(dl), sym, conc)
			}
		}
		for fi, f := range c.Spec.Flows {
			if math.Abs(res.Delivered[fi]+res.Dropped[fi]-f.Gbps) > tolerance {
				return fmt.Errorf("failed=%v/%v flow %d: delivered %.9g + dropped %.9g != %.9g",
					links, routers, fi, res.Delivered[fi], res.Dropped[fi], f.Gbps)
			}
		}
		return nil
	})
}

// verifyOpts assembles the standard yu.VerifyOptions for a case.
func verifyOpts(c *Case, k, workers int, engine yu.Engine) yu.VerifyOptions {
	return yu.VerifyOptions{
		K:              k,
		Mode:           c.Mode,
		ModeSet:        true,
		OverloadFactor: c.OverloadFactor,
		Engine:         engine,
		Workers:        workers,
		Incremental:    true,
	}
}

// OracleViolationSets checks that the symbolic engine and the enumerating
// baseline flag exactly the same set of violated properties — the
// cross-engine equality xcheck_test.go relies on, run on every generated
// case.
func OracleViolationSets(c *Case) error {
	n := yu.FromSpec(c.Spec)
	yuRep, err := n.Verify(verifyOpts(c, c.K, 1, yu.EngineYU))
	if err != nil {
		return err
	}
	enumRep, err := n.Verify(verifyOpts(c, c.K, 1, yu.EngineEnumerate))
	if err != nil {
		return err
	}
	a := ViolationKeys(c.Spec.Net, yuRep.Violations)
	b := ViolationKeys(c.Spec.Net, enumRep.Violations)
	if err := sameStringSets(a, b); err != nil {
		return fmt.Errorf("symbolic vs enumerate: %w", err)
	}
	if yuRep.Holds != enumRep.Holds {
		return fmt.Errorf("Holds disagrees: symbolic %v, enumerate %v", yuRep.Holds, enumRep.Holds)
	}
	return nil
}

// OracleParallelVsSequential checks that a sharded run (workers=3) renders
// a byte-identical report to the sequential pipeline, wall-clock fields
// excluded.
func OracleParallelVsSequential(c *Case) error {
	n := yu.FromSpec(c.Spec)
	seq, err := n.Verify(verifyOpts(c, c.K, 1, yu.EngineYU))
	if err != nil {
		return err
	}
	par, err := n.Verify(verifyOpts(c, c.K, 3, yu.EngineYU))
	if err != nil {
		return err
	}
	sa, sb := FormatReport(c.Spec.Net, seq), FormatReport(c.Spec.Net, par)
	if sa != sb {
		return fmt.Errorf("reports differ\n--- sequential ---\n%s--- workers=3 ---\n%s", sa, sb)
	}
	return nil
}

// OracleGlobalEquiv checks the representative-sharing contract of global
// flow equivalence (§6, the parallel scheduler's work unit): verdicts
// computed by executing one representative per equivalence class and
// fanning the result out to every member must equal verdicts from
// executing every flow individually. Violation sets and the overall
// verdict must match exactly; load values may differ only by float
// association noise, which ViolationKeys' fixed-precision rendering
// absorbs. The sharing must also hold under the parallel scheduler,
// where classes — not flows — are what gets stolen and merged.
func OracleGlobalEquiv(c *Case) error {
	n := yu.FromSpec(c.Spec)
	perFlowOpts := verifyOpts(c, c.K, 1, yu.EngineYU)
	perFlowOpts.DisableGlobalEquiv = true
	perFlow, err := n.Verify(perFlowOpts)
	if err != nil {
		return err
	}
	for name, workers := range map[string]int{"sequential": 1, "workers=3": 3} {
		shared, err := n.Verify(verifyOpts(c, c.K, workers, yu.EngineYU))
		if err != nil {
			return err
		}
		if dedup := shared.Sched.DedupHits; workers > 1 && dedup != len(c.Spec.Flows)-shared.FlowsExecuted {
			return fmt.Errorf("%s: %d dedup hits for %d flows / %d executed",
				name, dedup, len(c.Spec.Flows), shared.FlowsExecuted)
		}
		a := ViolationKeys(c.Spec.Net, perFlow.Violations)
		b := ViolationKeys(c.Spec.Net, shared.Violations)
		if err := sameStringSets(a, b); err != nil {
			return fmt.Errorf("per-flow vs class-shared (%s): %w", name, err)
		}
		if perFlow.Holds != shared.Holds {
			return fmt.Errorf("Holds disagrees (%s): per-flow %v, class-shared %v",
				name, perFlow.Holds, shared.Holds)
		}
	}
	return nil
}

// OracleMonotonicity checks that growing the failure budget only grows
// the violation set: every property violated within k failures is also
// violated within k+1 (the scenario space is a superset).
func OracleMonotonicity(c *Case) error {
	n := yu.FromSpec(c.Spec)
	repK, err := n.Verify(verifyOpts(c, c.K, 1, yu.EngineYU))
	if err != nil {
		return err
	}
	repK1, err := n.Verify(verifyOpts(c, c.K+1, 1, yu.EngineYU))
	if err != nil {
		return err
	}
	small := ViolationKeys(c.Spec.Net, repK.Violations)
	big := make(map[string]bool)
	for _, k := range ViolationKeys(c.Spec.Net, repK1.Violations) {
		big[k] = true
	}
	for _, k := range small {
		if !big[k] {
			return fmt.Errorf("%q violated at k=%d but not at k=%d", k, c.K, c.K+1)
		}
	}
	return nil
}

// OracleKReduceSoundness checks Lemma 1 end to end: the KReduce'd
// pipeline and the unreduced pipeline (budget -1) agree on every
// aggregated symbolic traffic load at every assignment with at most k
// failures. KREDUCE only merges subtrees beyond the budget, and MTBDD
// arithmetic is pointwise, so agreement must be exact.
func OracleKReduceSoundness(c *Case) error {
	net := c.Spec.Net
	verRed, mRed, fvRed, err := buildVerifier(c, c.K, core.Options{})
	if err != nil {
		return err
	}
	verFull, mFull, fvFull, err := buildVerifier(c, -1, core.Options{})
	if err != nil {
		return err
	}
	for li := 0; li < net.NumLinks(); li++ {
		for _, d := range []topo.Direction{topo.AtoB, topo.BtoA} {
			dl := topo.MakeDirLinkID(topo.LinkID(li), d)
			tauRed, _ := verRed.LinkLoad(dl)
			tauFull, _ := verFull.LinkLoad(dl)
			err := forEachScenario(net, c.Mode, c.K, func(links []topo.LinkID, routers []topo.RouterID) error {
				red := mRed.Eval(tauRed, fvRed.Scenario(links, routers))
				full := mFull.Eval(tauFull, fvFull.Scenario(links, routers))
				if math.Abs(red-full) > 1e-12 {
					return fmt.Errorf("link %s failed=%v/%v: reduced %.12g vs unreduced %.12g",
						net.DirLinkName(dl), links, routers, red, full)
				}
				return nil
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// OracleFusedKernels is the end-to-end differential for the fused MTBDD
// kernels: the same case run with fusion enabled (the default) and with
// NoFuse (composed build-then-reduce at every call site) must produce
// bit-identical aggregated link loads at every in-budget scenario, and
// structurally identical STLs. The kernels construct the same canonical
// nodes the composed pipeline builds — kernels_test.go pins that per
// operator; this oracle pins it for whole verification runs.
func OracleFusedKernels(c *Case) error {
	net := c.Spec.Net
	build := func(noFuse bool) (*core.Verifier, *mtbdd.Manager, *routesim.FailVars, error) {
		m := mtbdd.New()
		fv := routesim.NewFailVars(m, net, c.Mode, c.K)
		fv.NoFuse = noFuse
		rs, err := routesim.Run(fv, c.Spec.Configs)
		if err != nil {
			return nil, nil, nil, err
		}
		eng := core.NewEngine(rs, core.Options{})
		return core.NewVerifier(eng, c.Spec.Flows), m, fv, nil
	}
	verFused, mFused, fvFused, err := build(false)
	if err != nil {
		return err
	}
	verPlain, mPlain, fvPlain, err := build(true)
	if err != nil {
		return err
	}
	for li := 0; li < net.NumLinks(); li++ {
		for _, d := range []topo.Direction{topo.AtoB, topo.BtoA} {
			dl := topo.MakeDirLinkID(topo.LinkID(li), d)
			tauFused, _ := verFused.LinkLoad(dl)
			tauPlain, _ := verPlain.LinkLoad(dl)
			// Same canonical construction in both managers → isomorphic
			// MTBDDs of the same size.
			if a, b := mFused.NodeCount(tauFused), mPlain.NodeCount(tauPlain); a != b {
				return fmt.Errorf("link %s: fused STL has %d nodes, composed has %d",
					net.DirLinkName(dl), a, b)
			}
			err := forEachScenario(net, c.Mode, c.K, func(links []topo.LinkID, routers []topo.RouterID) error {
				fusedV := mFused.Eval(tauFused, fvFused.Scenario(links, routers))
				plainV := mPlain.Eval(tauPlain, fvPlain.Scenario(links, routers))
				// Exact equality, not tolerance: fusion reorders no float
				// arithmetic, it only prunes construction.
				if fusedV != plainV {
					return fmt.Errorf("link %s failed=%v/%v: fused %.17g vs composed %.17g",
						net.DirLinkName(dl), links, routers, fusedV, plainV)
				}
				return nil
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// OracleWitnessRevalidation concretizes every reported violation's
// witness scenario, re-runs it through the independent concrete
// simulator, and confirms (a) the concrete value matches the reported
// value and (b) the bound is genuinely crossed. A verifier that reports a
// right verdict with a wrong witness fails here and nowhere else.
func OracleWitnessRevalidation(c *Case) error {
	n := yu.FromSpec(c.Spec)
	rep, err := n.Verify(verifyOpts(c, c.K, 1, yu.EngineYU))
	if err != nil {
		return err
	}
	sim := concrete.NewSim(c.Spec.Net, c.Spec.Configs)
	for i, v := range rep.Violations {
		if len(v.FailedLinks)+len(v.FailedRouters) > c.K {
			return fmt.Errorf("violation %d: witness has %d failures, budget is %d",
				i, len(v.FailedLinks)+len(v.FailedRouters), c.K)
		}
		sc := concrete.NewScenario(c.Spec.Net)
		for _, l := range v.FailedLinks {
			sc.LinkDown[l] = true
		}
		for _, r := range v.FailedRouters {
			sc.RouterDown[r] = true
		}
		res := sim.Simulate(sc, c.Spec.Flows)
		var conc float64
		switch v.Kind {
		case "link-load":
			conc = res.Load[v.Link]
		case "delivered":
			for fi, f := range c.Spec.Flows {
				if v.Prefix.Contains(f.Dst) {
					conc += res.Delivered[fi]
				}
			}
		default:
			return fmt.Errorf("violation %d: unknown kind %q", i, v.Kind)
		}
		if math.Abs(conc-v.Value) > tolerance {
			return fmt.Errorf("violation %d (%s): reported value %.9g, concrete re-run says %.9g",
				i, v.Kind, v.Value, conc)
		}
		// The witness must genuinely cross the violated bound (3×
		// tolerance mirrors the verifier's own epsilon slack).
		crossesMax := !math.IsInf(v.Max, 1) && conc > v.Max-3*tolerance
		crossesMin := v.Min > 0 && conc < v.Min+3*tolerance
		if !crossesMax && !crossesMin {
			return fmt.Errorf("violation %d (%s): concrete value %.9g inside bounds [%.9g, %.9g]",
				i, v.Kind, conc, v.Min, v.Max)
		}
	}
	return nil
}

// OracleSpecRoundTrip formats the case's spec into the config DSL, parses
// it back, and requires (a) formatting the re-parsed spec reproduces the
// text (fixpoint) and (b) verification of the re-parsed spec renders a
// byte-identical report — so cmd/yudiff reproducer specs are faithful.
func OracleSpecRoundTrip(c *Case) error {
	txt, err := FormatSpec(c.Spec)
	if err != nil {
		return err
	}
	n2, err := yu.LoadString(txt)
	if err != nil {
		return fmt.Errorf("re-parse failed: %w\n%s", err, txt)
	}
	txt2, err := FormatSpec(n2.Spec())
	if err != nil {
		return err
	}
	if txt != txt2 {
		return fmt.Errorf("format not a fixpoint:\n--- first ---\n%s--- second ---\n%s", txt, txt2)
	}
	rep1, err := yu.FromSpec(c.Spec).Verify(verifyOpts(c, c.K, 1, yu.EngineYU))
	if err != nil {
		return err
	}
	rep2, err := n2.Verify(verifyOpts(c, c.K, 1, yu.EngineYU))
	if err != nil {
		return err
	}
	ra, rb := FormatReport(c.Spec.Net, rep1), FormatReport(n2.Spec().Net, rep2)
	if ra != rb {
		return fmt.Errorf("re-parsed spec verifies differently\n--- original ---\n%s--- round-tripped ---\n%s", ra, rb)
	}
	return nil
}

// OracleGovernance exercises the resource-governance surface on every
// generated case: a pre-canceled context and a 1-node budget must both
// produce typed errors with partial reports (never a panic or a wrong
// verdict), and the degrade policy must stay consistent with the
// enumerating baseline — it may leave targets unchecked, but every verdict
// it does render must match, and a rerun must render the identical report.
func OracleGovernance(c *Case) error {
	n := yu.FromSpec(c.Spec)
	net := c.Spec.Net

	// (1) Pre-canceled context: immediate typed unwind, nothing checked,
	// nothing claimed.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := verifyOpts(c, c.K, 1, yu.EngineYU)
	opts.Ctx = ctx
	rep, err := n.Verify(opts)
	if !errors.Is(err, yu.ErrCanceled) {
		return fmt.Errorf("pre-canceled ctx: err = %v, want yu.ErrCanceled", err)
	}
	if rep == nil || !rep.Incomplete {
		return fmt.Errorf("pre-canceled ctx: want a partial report with Incomplete set, got %+v", rep)
	}
	if len(rep.Violations) != 0 {
		return fmt.Errorf("pre-canceled ctx: %d violations reported by a run that checked nothing", len(rep.Violations))
	}

	// (2) One-node budget under the fail policy: typed unwind with a
	// partial report.
	opts = verifyOpts(c, c.K, 1, yu.EngineYU)
	opts.MaxNodes = 1
	rep, err = n.Verify(opts)
	if !errors.Is(err, yu.ErrNodeBudget) {
		return fmt.Errorf("max-nodes=1: err = %v, want yu.ErrNodeBudget", err)
	}
	if rep == nil || !rep.Incomplete {
		return fmt.Errorf("max-nodes=1: want a partial report with Incomplete set, got %+v", rep)
	}

	// (3) Degrade policy vs the enumerating baseline, at a budget that
	// forces degradation and one that usually permits symbolic operation.
	base, err := n.Verify(verifyOpts(c, c.K, 1, yu.EngineEnumerate))
	if err != nil {
		return err
	}
	baseKeys := ViolationKeys(net, base.Violations)
	for _, budget := range []int{64, 4000} {
		opts = verifyOpts(c, c.K, 1, yu.EngineYU)
		opts.MaxNodes = budget
		opts.OnBudget = yu.BudgetDegrade
		rep1, err := n.Verify(opts)
		if err != nil {
			return fmt.Errorf("degrade budget=%d: %w", budget, err)
		}
		rep2, err := n.Verify(opts)
		if err != nil {
			return fmt.Errorf("degrade budget=%d rerun: %w", budget, err)
		}
		if rep1.Incomplete {
			return fmt.Errorf("degrade budget=%d: report left incomplete — the ladder must bottom out in a verdict", budget)
		}
		if a, b := FormatReport(net, rep1), FormatReport(net, rep2); a != b {
			return fmt.Errorf("degrade budget=%d is nondeterministic\n--- first ---\n%s--- second ---\n%s", budget, a, b)
		}
		// Every degraded-mode verdict must be a baseline verdict...
		baseSet := make(map[string]bool, len(baseKeys))
		for _, k := range baseKeys {
			baseSet[k] = true
		}
		degKeys := ViolationKeys(net, rep1.Violations)
		degSet := make(map[string]bool, len(degKeys))
		for _, k := range degKeys {
			if !baseSet[k] {
				return fmt.Errorf("degrade budget=%d: phantom violation %q not found by the baseline", budget, k)
			}
			degSet[k] = true
		}
		// ...and every baseline violation on a target the degraded run
		// actually checked must be reported.
		unchecked := make(map[string]bool)
		for _, l := range rep1.Unchecked {
			unchecked["link-load "+net.DirLinkName(l)] = true
		}
		for _, p := range rep1.UncheckedDelivered {
			unchecked["delivered "+p.String()] = true
		}
		for _, k := range baseKeys {
			if !unchecked[k] && !degSet[k] {
				return fmt.Errorf("degrade budget=%d: baseline violation %q missed on a checked target", budget, k)
			}
		}
	}
	return nil
}

// OracleModularVsMonolithic checks compositional verification (internal/
// compose) against the monolithic pipeline: the same case auto-partitioned
// into 2 and 3 AS-closed domains must render a byte-identical report —
// same violations, same witnesses, same check statistics — at workers 1
// and 3. Every modular witness is additionally concretized and re-run
// through the independent concrete simulator, so a modular run that gets
// the verdict right with a summary-corrupted witness still fails here.
func OracleModularVsMonolithic(c *Case) error {
	net := c.Spec.Net
	n := yu.FromSpec(c.Spec)
	mono, err := n.Verify(verifyOpts(c, c.K, 1, yu.EngineYU))
	if err != nil {
		return err
	}
	monoTxt := FormatReport(net, mono)
	sim := concrete.NewSim(net, c.Spec.Configs)
	for _, domains := range []int{2, 3} {
		for _, workers := range []int{1, 3} {
			opts := verifyOpts(c, c.K, workers, yu.EngineYU)
			opts.AutoDomains = domains
			rep, err := n.Verify(opts)
			if err != nil {
				return fmt.Errorf("domains=%d workers=%d: %w", domains, workers, err)
			}
			if txt := FormatReport(net, rep); txt != monoTxt {
				return fmt.Errorf("domains=%d workers=%d report differs\n--- monolithic ---\n%s--- modular ---\n%s",
					domains, workers, monoTxt, txt)
			}
			for i, v := range rep.Violations {
				if len(v.FailedLinks)+len(v.FailedRouters) > c.K {
					return fmt.Errorf("domains=%d: violation %d witness has %d failures, budget is %d",
						domains, i, len(v.FailedLinks)+len(v.FailedRouters), c.K)
				}
				sc := concrete.NewScenario(net)
				for _, l := range v.FailedLinks {
					sc.LinkDown[l] = true
				}
				for _, r := range v.FailedRouters {
					sc.RouterDown[r] = true
				}
				res := sim.Simulate(sc, c.Spec.Flows)
				var conc float64
				switch v.Kind {
				case "link-load":
					conc = res.Load[v.Link]
				case "delivered":
					for fi, f := range c.Spec.Flows {
						if v.Prefix.Contains(f.Dst) {
							conc += res.Delivered[fi]
						}
					}
				default:
					return fmt.Errorf("domains=%d: violation %d has unknown kind %q", domains, i, v.Kind)
				}
				if math.Abs(conc-v.Value) > tolerance {
					return fmt.Errorf("domains=%d: violation %d (%s) reports %.9g, concrete re-run of its witness says %.9g",
						domains, i, v.Kind, v.Value, conc)
				}
			}
		}
	}
	return nil
}

// sameStringSets reports the first element present in exactly one of two
// string slices (treated as sets).
func sameStringSets(a, b []string) error {
	in := func(xs []string) map[string]bool {
		m := make(map[string]bool, len(xs))
		for _, x := range xs {
			m[x] = true
		}
		return m
	}
	ma, mb := in(a), in(b)
	for x := range ma {
		if !mb[x] {
			return fmt.Errorf("%q in first set only (first=%v second=%v)", x, a, b)
		}
	}
	for x := range mb {
		if !ma[x] {
			return fmt.Errorf("%q in second set only (first=%v second=%v)", x, a, b)
		}
	}
	return nil
}
