// POST /v1/tlp: portfolio evaluation against the daemon's warm state.
// The request pins the current version and evaluates an arbitrary TLP
// portfolio with the batch engine — one symbolic run serves every
// property, and the run draws its symbolic execution from the warm STF
// cache, so on a warm daemon only classes dirtied since the last run are
// re-executed.
package serve

import (
	"context"
	"fmt"
	"net/http"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/canon"
	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/tlp"
)

// tlpRequest is the POST /v1/tlp body.
type tlpRequest struct {
	// Portfolio is portfolio text (`tlp` lines, see config.ParsePortfolio)
	// resolved against the current version's network. Empty evaluates the
	// spec's own `tlp` section.
	Portfolio string `json:"portfolio,omitempty"`
}

// tlpResponse is the JSON rendering of a portfolio evaluation.
type tlpResponse struct {
	Version     int64  `json:"version"`
	Holds       bool   `json:"holds"`
	Report      string `json:"report"`
	Properties  int    `json:"properties"`
	Violations  int    `json:"violations"`
	CacheHits   int64  `json:"cache_hits"`
	CacheMisses int64  `json:"cache_misses"`
	Error       string `json:"error,omitempty"`
}

// TLPResult is the outcome of one portfolio evaluation against a pinned
// version.
type TLPResult struct {
	Version int64
	Result  *yu.TLPResult
	// Text is the canonical rendering (canon.FormatPortfolio).
	Text  string
	Stats RunStats
	Err   error
}

// EvalPortfolioCtx evaluates portfolio text against the current version
// from warm state. An empty text evaluates the spec's own portfolio
// section. Parse and compile errors are returned as the error; a
// governed abort (ctx expiry mid-run) returns a partial result whose
// undecided properties are unchecked, carried in TLPResult.Err.
func (s *Server) EvalPortfolioCtx(ctx context.Context, portfolioText string) (TLPResult, error) {
	v := s.cur.Load()
	if v == nil {
		return TLPResult{}, fmt.Errorf("serve: no specification loaded")
	}
	var props []yu.TLProp
	if portfolioText != "" {
		var err error
		props, err = config.ParsePortfolioString(portfolioText, v.spec.Net)
		if err != nil {
			return TLPResult{}, fmt.Errorf("portfolio: %w", err)
		}
	} else {
		props = v.spec.Portfolio
	}
	if _, err := tlp.Compile(v.spec.Net, v.spec.Flows, props); err != nil {
		return TLPResult{}, err
	}
	s.reg.Counter("serve.tlp_requests").Inc()
	sp := s.reg.Span("tlp")
	defer sp.End()
	if s.cfg.VerifyTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.VerifyTimeout)
		defer cancel()
	}
	rc := newRunCache(s)
	res, err := yu.FromSpec(v.spec).VerifyPortfolio(props, yu.VerifyOptions{
		K:         s.cfg.K,
		Mode:      s.cfg.Mode,
		ModeSet:   s.cfg.ModeSet,
		Workers:   1,
		Ctx:       ctx,
		Obs:       s.reg,
		CostHints: s.copyHints(),
		STFCache:  rc,
	})
	if res == nil {
		return TLPResult{}, err
	}
	return TLPResult{
		Version: v.id,
		Result:  res,
		Text:    canon.FormatPortfolio(v.spec.Net, res),
		Stats:   RunStats{CacheHits: rc.hits, CacheMisses: rc.misses},
		Err:     err,
	}, nil
}

func (s *Server) handleTLP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req tlpRequest
	if !s.readBody(w, r, &req) {
		return
	}
	res, err := s.EvalPortfolioCtx(r.Context(), req.Portfolio)
	if err != nil {
		if res.Version == 0 && s.cur.Load() == nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	out := tlpResponse{
		Version:     res.Version,
		Holds:       res.Result.Holds,
		Report:      res.Text,
		Properties:  res.Result.Stats.Properties,
		Violations:  res.Result.Stats.Violations,
		CacheHits:   res.Stats.CacheHits,
		CacheMisses: res.Stats.CacheMisses,
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
	}
	writeJSON(w, http.StatusOK, out)
}
