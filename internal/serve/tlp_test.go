// Tests for POST /v1/tlp: portfolio evaluation must answer from warm
// state (every clean class a cache hit, none re-executed), report the
// pinned version, and map malformed portfolios to 422 / missing spec to
// 409 without ever panicking.
package serve_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/yu-verify/yu/internal/serve"
)

type tlpResp struct {
	Version     int64  `json:"version"`
	Holds       bool   `json:"holds"`
	Report      string `json:"report"`
	Properties  int    `json:"properties"`
	Violations  int    `json:"violations"`
	CacheHits   int64  `json:"cache_hits"`
	CacheMisses int64  `json:"cache_misses"`
	Error       string `json:"error,omitempty"`
}

func postTLP(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	res, err := http.Post(url+"/v1/tlp", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(res.Body)
	res.Body.Close()
	return res, data
}

// TestTLPWarm: after one report has warmed the daemon, a portfolio
// evaluation must serve every class from the warm cache — zero misses —
// and its verdicts must agree with the known Figure 1 loads.
func TestTLPWarm(t *testing.T) {
	s := serve.NewServer(serve.Config{K: 1})
	if _, err := s.LoadSpecText(readSpec(t, "motivating.yu")); err != nil {
		t.Fatal(err)
	}
	first := mustReport(t, s)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, body := postTLP(t, ts.URL, `{"portfolio":
		"tlp link C-E max 95\ntlp delivered 100.0.0.0/24 min 70\ntlp link D-E max 105 if-failed B-D"}`)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, body)
	}
	var r tlpResp
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("body: %v\n%s", err, body)
	}
	if r.Error != "" {
		t.Fatalf("tlp error: %s", r.Error)
	}
	if r.Version != first.Version {
		t.Errorf("tlp cites version %d, report pinned %d", r.Version, first.Version)
	}
	// Warm answer: both classes from the cache, nothing re-executed.
	if r.CacheHits != 2 || r.CacheMisses != 0 {
		t.Errorf("hits/misses = %d/%d, want 2/0 (warm state)", r.CacheHits, r.CacheMisses)
	}
	// k=1: C->E hits 100 when B-D fails, delivery stays >= 80 (one E-F
	// link survives), and the conditional bound 105 can never be hit.
	if r.Properties != 3 || r.Violations != 1 || r.Holds {
		t.Errorf("properties/violations/holds = %d/%d/%v, want 3/1/false",
			r.Properties, r.Violations, r.Holds)
	}
	if !strings.Contains(r.Report, "group when") {
		t.Errorf("report lacks a violation group:\n%s", r.Report)
	}

	snap := s.Metrics().Snapshot()
	if snap.Counters["serve.tlp_requests"] != 1 {
		t.Errorf("serve.tlp_requests = %d, want 1", snap.Counters["serve.tlp_requests"])
	}
	if snap.Counters["tlp.properties"] != 3 {
		t.Errorf("tlp.properties = %d, want 3", snap.Counters["tlp.properties"])
	}
}

// TestTLPEmptyBody: an empty request evaluates the spec's own portfolio
// section — none here, so the answer is a trivially holding portfolio.
func TestTLPEmptyBody(t *testing.T) {
	s := serve.NewServer(serve.Config{})
	if _, err := s.LoadSpecText(readSpec(t, "motivating.yu")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	res, body := postTLP(t, ts.URL, "")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, body)
	}
	var r tlpResp
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if !r.Holds || r.Properties != 0 {
		t.Errorf("empty portfolio: holds=%v properties=%d, want true/0", r.Holds, r.Properties)
	}
}

// TestTLPErrors: malformed portfolios answer 422, a daemon without a
// spec answers 409, and GET answers 405. None of these count as served
// evaluations.
func TestTLPErrors(t *testing.T) {
	s := serve.NewServer(serve.Config{})
	if _, err := s.LoadSpecText(readSpec(t, "motivating.yu")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"unknown-link": `{"portfolio":"tlp link X-Y max 1"}`,
		"bad-kind":     `{"portfolio":"tlp frobnicate 1"}`,
		"min-gt-max":   `{"portfolio":"tlp link C-E min 5 max 1"}`,
		"bad-number":   `{"portfolio":"tlp link C-E max lots"}`,
		"dir-in-link":  `{"portfolio":"tlp link C->E max 1"}`,
	} {
		res, data := postTLP(t, ts.URL, body)
		if res.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("%s: status %d, want 422 (%s)", name, res.StatusCode, data)
		}
	}

	res, err := http.Get(ts.URL + "/v1/tlp")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", res.StatusCode)
	}

	if n := s.Metrics().Snapshot().Counters["serve.tlp_requests"]; n != 0 {
		t.Errorf("serve.tlp_requests = %d after only failed requests, want 0", n)
	}

	empty := serve.NewServer(serve.Config{})
	ts2 := httptest.NewServer(empty.Handler())
	defer ts2.Close()
	res2, _ := postTLP(t, ts2.URL, `{"portfolio":"tlp util 0.9"}`)
	if res2.StatusCode != http.StatusConflict {
		t.Errorf("no spec: status %d, want 409", res2.StatusCode)
	}
}
