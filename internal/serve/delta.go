// Delta operations: the small mutation vocabulary the daemon accepts
// over POST /v1/delta. Deltas are applied to a fresh re-parse of the
// current canonical spec text and re-canonicalized, so every version —
// whether reached by full reload or by deltas — has one textual identity.
package serve

import (
	"fmt"
	"net/netip"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/topo"
)

// Delta is one configuration mutation. Op selects the operation; the
// other fields are operands (unused ones are ignored).
type Delta struct {
	// Op is one of: set-link-cost, add-static, remove-static,
	// set-local-pref, add-export-deny, remove-export-deny, add-flow,
	// remove-flow.
	Op string `json:"op"`

	// set-link-cost: symmetric IGP metric Cost on the (first) link
	// between routers A and B.
	A    string `json:"a,omitempty"`
	B    string `json:"b,omitempty"`
	Cost int64  `json:"cost,omitempty"`

	// add-static / remove-static: Router, Prefix, and (for add) either
	// Discard or NextHop. set-local-pref / add-export-deny /
	// remove-export-deny: Router, Neighbor, and LocalPref or Prefix.
	Router    string `json:"router,omitempty"`
	Prefix    string `json:"prefix,omitempty"`
	NextHop   string `json:"next_hop,omitempty"`
	Discard   bool   `json:"discard,omitempty"`
	Neighbor  string `json:"neighbor,omitempty"`
	LocalPref uint32 `json:"local_pref,omitempty"`

	// add-flow / remove-flow.
	Flow    string  `json:"flow,omitempty"`
	Ingress string  `json:"ingress,omitempty"`
	Src     string  `json:"src,omitempty"`
	Dst     string  `json:"dst,omitempty"`
	DSCP    uint8   `json:"dscp,omitempty"`
	Gbps    float64 `json:"gbps,omitempty"`
}

// applyDelta mutates spec in place. Errors leave spec partially mutated;
// callers must apply deltas to a throwaway parse (ApplyDeltas does).
func applyDelta(spec *config.Spec, d Delta) error {
	switch d.Op {
	case "set-link-cost":
		if d.Cost <= 0 {
			return fmt.Errorf("cost must be positive, got %d", d.Cost)
		}
		l, ok := spec.Net.FindLink(d.A, d.B)
		if !ok {
			return fmt.Errorf("no link %s-%s", d.A, d.B)
		}
		l.CostAB, l.CostBA = d.Cost, d.Cost
		return nil

	case "add-static":
		rc, err := routerConfig(spec, d.Router)
		if err != nil {
			return err
		}
		pfx, err := netip.ParsePrefix(d.Prefix)
		if err != nil {
			return fmt.Errorf("prefix: %w", err)
		}
		st := config.StaticRoute{Prefix: pfx, Discard: d.Discard}
		if !d.Discard {
			nh, err := netip.ParseAddr(d.NextHop)
			if err != nil {
				return fmt.Errorf("next_hop: %w", err)
			}
			st.NextHop = nh
		}
		rc.Statics = append(rc.Statics, st)
		return nil

	case "remove-static":
		rc, err := routerConfig(spec, d.Router)
		if err != nil {
			return err
		}
		pfx, err := netip.ParsePrefix(d.Prefix)
		if err != nil {
			return fmt.Errorf("prefix: %w", err)
		}
		kept := rc.Statics[:0]
		removed := false
		for _, st := range rc.Statics {
			if st.Prefix == pfx {
				removed = true
				continue
			}
			kept = append(kept, st)
		}
		if !removed {
			return fmt.Errorf("%s has no static for %s", d.Router, pfx)
		}
		rc.Statics = kept
		return nil

	case "set-local-pref":
		nb, err := neighbor(spec, d.Router, d.Neighbor)
		if err != nil {
			return err
		}
		nb.LocalPref = d.LocalPref
		return nil

	case "add-export-deny":
		nb, err := neighbor(spec, d.Router, d.Neighbor)
		if err != nil {
			return err
		}
		pfx, err := netip.ParsePrefix(d.Prefix)
		if err != nil {
			return fmt.Errorf("prefix: %w", err)
		}
		for _, p := range nb.ExportDeny {
			if p == pfx {
				return nil // already denied; idempotent
			}
		}
		nb.ExportDeny = append(nb.ExportDeny, pfx)
		return nil

	case "remove-export-deny":
		nb, err := neighbor(spec, d.Router, d.Neighbor)
		if err != nil {
			return err
		}
		pfx, err := netip.ParsePrefix(d.Prefix)
		if err != nil {
			return fmt.Errorf("prefix: %w", err)
		}
		kept := nb.ExportDeny[:0]
		removed := false
		for _, p := range nb.ExportDeny {
			if p == pfx {
				removed = true
				continue
			}
			kept = append(kept, p)
		}
		if !removed {
			return fmt.Errorf("%s neighbor %s does not deny %s", d.Router, d.Neighbor, pfx)
		}
		nb.ExportDeny = kept
		return nil

	case "add-flow":
		if d.Flow == "" {
			return fmt.Errorf("flow name required")
		}
		for _, f := range spec.Flows {
			if f.Name == d.Flow {
				return fmt.Errorf("flow %q already exists", d.Flow)
			}
		}
		r, ok := spec.Net.RouterByName(d.Ingress)
		if !ok {
			return fmt.Errorf("unknown ingress router %q", d.Ingress)
		}
		src, err := netip.ParseAddr(d.Src)
		if err != nil {
			return fmt.Errorf("src: %w", err)
		}
		dst, err := netip.ParseAddr(d.Dst)
		if err != nil {
			return fmt.Errorf("dst: %w", err)
		}
		if d.Gbps <= 0 {
			return fmt.Errorf("gbps must be positive, got %g", d.Gbps)
		}
		spec.Flows = append(spec.Flows, topo.Flow{
			Name: d.Flow, Ingress: r.ID, Src: src, Dst: dst, DSCP: d.DSCP, Gbps: d.Gbps,
		})
		return nil

	case "remove-flow":
		kept := spec.Flows[:0]
		removed := false
		for _, f := range spec.Flows {
			if f.Name == d.Flow {
				removed = true
				continue
			}
			kept = append(kept, f)
		}
		if !removed {
			return fmt.Errorf("no flow %q", d.Flow)
		}
		spec.Flows = kept
		return nil

	default:
		return fmt.Errorf("unknown op %q", d.Op)
	}
}

func routerConfig(spec *config.Spec, name string) (*config.Router, error) {
	if _, ok := spec.Net.RouterByName(name); !ok {
		return nil, fmt.Errorf("unknown router %q", name)
	}
	return spec.Configs.Get(name), nil
}

func neighbor(spec *config.Spec, router, addr string) (*config.BGPNeighbor, error) {
	rc, err := routerConfig(spec, router)
	if err != nil {
		return nil, err
	}
	a, err := netip.ParseAddr(addr)
	if err != nil {
		return nil, fmt.Errorf("neighbor: %w", err)
	}
	for i := range rc.Neighbors {
		if rc.Neighbors[i].Addr == a {
			return &rc.Neighbors[i], nil
		}
	}
	return nil, fmt.Errorf("%s has no neighbor %s", router, a)
}
