// Delta write-ahead log: the crash-consistency backbone of the daemon
// (DESIGN.md §15). Every accepted delta batch is journaled — fsync'd to
// the YUWAL1 log — *before* it is published, so a daemon killed at any
// instant and restarted with the same spec file and state directory
// replays the journal and reconstructs exactly the last published
// version: never a torn batch, never a silently dropped one.
//
// On-disk format (little-endian):
//
//	magic    [7]byte  "YUWAL1\n"
//	baseSum  uint32   crc32(IEEE) of the canonical base spec text
//	baseLen  uint32   len of the canonical base spec text
//	records  *        u32 payloadLen | payload | u32 crc32(payload)
//
// payload is the JSON walRecord: the delta batch plus the crc32/length
// of the canonical text the batch produced, so replay can verify it
// rebuilt the exact pre-crash version. A record is committed iff its
// length prefix, payload, and checksum are fully on disk; replay
// truncates the log at the first torn or corrupt record (the only thing
// a mid-append crash can leave behind) and continues from there.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"github.com/yu-verify/yu/internal/fault"
)

const (
	walMagic = "YUWAL1\n"
	walFile  = "delta.wal"
	// maxWALRecord bounds a single record's payload; anything larger is
	// treated as corruption (a delta batch is bounded by MaxBodyBytes).
	maxWALRecord = 1 << 28
)

// walRecord is one journaled delta batch. ResultSum/ResultLen pin the
// canonical spec text the batch produced when it was accepted; replay
// re-applies the deltas and requires the same bytes back.
type walRecord struct {
	Deltas    []Delta `json:"deltas"`
	ResultSum uint32  `json:"result_sum"`
	ResultLen uint32  `json:"result_len"`
}

type wal struct {
	f      *os.File
	dir    string
	path   string
	off    int64 // end of the last durable record (append position)
	broken bool  // a failed rollback left the tail unusable
}

func openWAL(dir string) (*wal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, walFile)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{f: f, dir: dir, path: path}, nil
}

func (w *wal) close() {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
}

func walHeader(baseText string) []byte {
	hdr := make([]byte, len(walMagic)+8)
	copy(hdr, walMagic)
	binary.LittleEndian.PutUint32(hdr[len(walMagic):], crc32.ChecksumIEEE([]byte(baseText)))
	binary.LittleEndian.PutUint32(hdr[len(walMagic)+4:], uint32(len(baseText)))
	return hdr
}

// walTextSum is the checksum binding a WAL record (and the header) to a
// canonical spec text.
func walTextSum(text string) uint32 { return crc32.ChecksumIEEE([]byte(text)) }

// load reads the whole journal. matched reports whether the header binds
// the log to baseText; recs are the committed records and offs[i] the
// byte offset record i starts at (for replay-time truncation); torn
// reports whether a torn/corrupt tail was found and truncated away. A
// log that does not match the base (different spec file, or a log from
// before a full reload that never got reset) is not an error — the
// caller resets it.
func (w *wal) load(baseText string) (recs []walRecord, offs []int64, matched, torn bool, err error) {
	data, err := os.ReadFile(w.path)
	if err != nil {
		return nil, nil, false, false, err
	}
	want := walHeader(baseText)
	if len(data) < len(want) || string(data[:len(want)]) != string(want) {
		return nil, nil, false, false, nil
	}
	off := int64(len(want))
	for int64(len(data)) > off {
		rest := data[off:]
		if len(rest) < 4 {
			torn = true
			break
		}
		n := binary.LittleEndian.Uint32(rest)
		if n == 0 || n > maxWALRecord || int64(len(rest)) < int64(n)+8 {
			torn = true
			break
		}
		payload := rest[4 : 4+n]
		sum := binary.LittleEndian.Uint32(rest[4+n:])
		if crc32.ChecksumIEEE(payload) != sum {
			torn = true
			break
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			torn = true
			break
		}
		recs = append(recs, rec)
		offs = append(offs, off)
		off += int64(n) + 8
	}
	if torn || int64(len(data)) > off {
		if err := w.truncateTo(off); err != nil {
			return nil, nil, true, torn, err
		}
		torn = true
	}
	w.off = off
	return recs, offs, true, torn, nil
}

// reset rebinds the journal to a new base: everything journaled so far
// is superseded by the full text the caller is about to publish.
func (w *wal) reset(baseText string) error {
	hdr := walHeader(baseText)
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.WriteAt(hdr, 0); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.off = int64(len(hdr))
	w.broken = false
	return syncDir(w.dir)
}

// truncateTo drops everything at and after byte offset off — the
// torn-tail repair and the replay-stops-here repair share it.
func (w *wal) truncateTo(off int64) error {
	if err := w.f.Truncate(off); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.off = off
	return nil
}

// append journals one accepted batch: frame it, write it at the end of
// the log, fsync. Only after append returns nil may the caller publish
// the batch — the journal is the commit point. A write failure rolls the
// tail back so later appends cannot land after a torn frame; if even the
// rollback fails the log is marked broken and every future append (and
// therefore every future delta) is refused — fail-stop beats silently
// losing durability.
func (w *wal) append(deltas []Delta, resultText string) error {
	if w.broken {
		return fmt.Errorf("serve: delta journal is broken (earlier rollback failed); restart the daemon")
	}
	if err := fault.Here("serve.wal.append"); err != nil {
		return err
	}
	payload, err := json.Marshal(walRecord{
		Deltas:    deltas,
		ResultSum: crc32.ChecksumIEEE([]byte(resultText)),
		ResultLen: uint32(len(resultText)),
	})
	if err != nil {
		return err
	}
	frame := make([]byte, 4+len(payload)+4)
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	binary.LittleEndian.PutUint32(frame[4+len(payload):], crc32.ChecksumIEEE(payload))

	if n, ok := fault.Partial("serve.wal.write"); ok {
		// A torn write is only observable if the process died mid-write:
		// leave the partial frame on disk and crash.
		if n > len(frame) {
			n = len(frame)
		}
		w.f.WriteAt(frame[:n], w.off)
		w.f.Sync()
		fault.TriggerCrash("serve.wal.write")
	}
	_, werr := w.f.WriteAt(frame, w.off)
	if werr == nil {
		if err := fault.Here("serve.wal.sync"); err != nil {
			werr = err
		} else {
			werr = w.f.Sync()
		}
	}
	if werr != nil {
		if terr := w.truncateTo(w.off); terr != nil {
			w.broken = true
		}
		return werr
	}
	w.off += int64(len(frame))
	return nil
}
