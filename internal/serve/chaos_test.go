// Crash-consistency and robustness tests (DESIGN.md §15): WAL replay
// after a simulated kill, bit-flip corruption, the fault-injection chaos
// oracle (crash the daemon at every injection point a delta workload
// crosses, restart, and require the recovered report to byte-match a
// cold verification of a committed prefix), and the HTTP serving
// hardening (panic recovery, admission control, deadlines, body limits).
//
// Tests here arm the process-global fault registry; none may run in
// parallel with each other or with anything else that crosses injection
// points.
package serve_test

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/canon"
	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/difftest"
	"github.com/yu-verify/yu/internal/fault"
	"github.com/yu-verify/yu/internal/serve"
)

// TestWALReplay: a daemon killed without any shutdown (no SaveState, no
// WAL close) must come back at exactly the pre-crash version, with every
// delta batch replayed from the journal.
func TestWALReplay(t *testing.T) {
	dir := t.TempDir()
	raw := readSpec(t, "motivating.yu")

	s1 := serve.NewServer(serve.Config{StatePath: dir})
	if _, err := s1.LoadSpecText(raw); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.ApplyDeltas([]serve.Delta{
		{Op: "add-static", Router: "B", Prefix: "55.0.0.0/8", Discard: true},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.ApplyDeltas([]serve.Delta{
		{Op: "set-link-cost", A: "A", B: "B", Cost: 20000},
	}); err != nil {
		t.Fatal(err)
	}
	wantText, _ := s1.SpecText()
	wantReport := mustReport(t, s1).Text
	// s1 is now abandoned mid-flight: nothing was saved or closed.

	s2 := serve.NewServer(serve.Config{StatePath: dir})
	if _, err := s2.LoadSpecText(raw); err != nil {
		t.Fatal(err)
	}
	gotText, v := s2.SpecText()
	if gotText != wantText {
		t.Fatalf("recovered spec differs from pre-crash spec:\n--- want\n%s\n--- got\n%s", wantText, gotText)
	}
	if v != 3 {
		t.Fatalf("recovered version = %d, want 3 (base + 2 replayed batches)", v)
	}
	if got := s2.Metrics().Snapshot().Counters["serve.wal_replayed"]; got != 2 {
		t.Fatalf("serve.wal_replayed = %d, want 2", got)
	}
	if got := mustReport(t, s2).Text; got != wantReport {
		t.Fatalf("recovered report differs:\n--- want\n%s\n--- got\n%s", wantReport, got)
	}

	// Deltas applied after recovery extend the same journal: a second
	// kill+restart replays all three batches.
	if _, err := s2.ApplyDeltas([]serve.Delta{
		{Op: "add-static", Router: "A", Prefix: "44.0.0.0/8", Discard: true},
	}); err != nil {
		t.Fatal(err)
	}
	want3, _ := s2.SpecText()
	s3 := serve.NewServer(serve.Config{StatePath: dir})
	if _, err := s3.LoadSpecText(raw); err != nil {
		t.Fatal(err)
	}
	if got, _ := s3.SpecText(); got != want3 {
		t.Fatal("second recovery lost the post-recovery delta")
	}
	if got := s3.Metrics().Snapshot().Counters["serve.wal_replayed"]; got != 3 {
		t.Fatalf("serve.wal_replayed = %d, want 3", got)
	}

	// A full reload supersedes the journal: restart after it recovers the
	// reloaded base, not the replayed head.
	if _, err := s3.LoadSpecText(raw); err != nil {
		t.Fatal(err)
	}
	base, _ := s3.SpecText()
	s4 := serve.NewServer(serve.Config{StatePath: dir})
	if _, err := s4.LoadSpecText(raw); err != nil {
		t.Fatal(err)
	}
	if got, _ := s4.SpecText(); got != base {
		t.Fatal("reload did not reset the journal")
	}
}

// TestWALBitFlip: corruption anywhere in the journal must never produce
// a wrong recovery — a flipped record yields the longest clean prefix, a
// flipped header yields the base, and the report always byte-matches a
// cold verification of whatever was recovered.
func TestWALBitFlip(t *testing.T) {
	dir := t.TempDir()
	raw := readSpec(t, "motivating.yu")
	s1 := serve.NewServer(serve.Config{StatePath: dir})
	if _, err := s1.LoadSpecText(raw); err != nil {
		t.Fatal(err)
	}
	base, _ := s1.SpecText()
	if _, err := s1.ApplyDeltas([]serve.Delta{
		{Op: "add-static", Router: "B", Prefix: "55.0.0.0/8", Discard: true},
	}); err != nil {
		t.Fatal(err)
	}
	after1, _ := s1.SpecText()
	if _, err := s1.ApplyDeltas([]serve.Delta{
		{Op: "set-link-cost", A: "A", B: "B", Cost: 20000},
	}); err != nil {
		t.Fatal(err)
	}
	after2, _ := s1.SpecText()
	valid := map[string]string{base: "base", after1: "batch 1", after2: "batch 2"}

	path := filepath.Join(dir, "delta.wal")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sawPrefix := false
	for pos := 0; pos < len(pristine); pos += 11 {
		data := append([]byte(nil), pristine...)
		data[pos] ^= 0x20
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := serve.NewServer(serve.Config{StatePath: dir})
		if _, err := s2.LoadSpecText(raw); err != nil {
			t.Fatalf("flip at %d: %v", pos, err)
		}
		got, _ := s2.SpecText()
		name, ok := valid[got]
		if !ok {
			t.Fatalf("flip at %d: recovered a state that never existed:\n%s", pos, got)
		}
		if name != "batch 2" {
			sawPrefix = true
		}
		if res := mustReport(t, s2); res.Text != coldReport(t, got) {
			t.Fatalf("flip at %d: recovered report differs from cold verify of %s", pos, name)
		}
	}
	if !sawPrefix {
		t.Fatal("no flip ever truncated the journal — corruption detection untested")
	}
	// Restore the pristine journal; it must still replay fully.
	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := serve.NewServer(serve.Config{StatePath: dir})
	if _, err := s3.LoadSpecText(raw); err != nil {
		t.Fatal(err)
	}
	if got, _ := s3.SpecText(); got != after2 {
		t.Fatal("pristine journal no longer replays fully")
	}
}

// TestChaosCrashRecovery is the kill/restart oracle: trace a delta
// workload to enumerate every injection point it crosses, then re-run it
// once per (point, crossing), crashing there; after each crash the
// restarted daemon must recover to some committed prefix of the batch
// sequence — never a torn or invented state — and its report must
// byte-match a cold verification of that prefix.
func TestChaosCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos oracle is slow")
	}
	c := difftest.MustNew(11, difftest.Options{MaxFlows: 2, MaxK: 1, LinkMode: true})
	text0, err := canon.FormatSpec(c.Spec)
	if err != nil {
		t.Fatal(err)
	}
	spec0, err := config.ParseSpecString(text0)
	if err != nil {
		t.Fatal(err)
	}
	all := difftest.GenDeltas(rand.New(rand.NewSource(11)), spec0, 4)
	batches := [][]serve.Delta{all[:2], all[2:3], all[3:]}
	cfg := func(dir string) serve.Config {
		return serve.Config{
			K: c.K, Mode: c.Mode, ModeSet: true,
			OverloadFactor: c.OverloadFactor, StatePath: dir,
		}
	}

	fault.PanicOnCrash()
	defer fault.SetCrashHandler(nil)
	defer fault.Reset()

	// workload replays the exact same step sequence every run (the
	// determinism the schedule enumeration depends on): load, batch 0,
	// verify+save, batches 1..n. A simulated kill (fault.Crash panic) is
	// absorbed; anything else propagates.
	workload := func(dir string) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(fault.Crash); !ok {
					panic(r)
				}
			}
		}()
		s := serve.NewServer(cfg(dir))
		if _, err := s.LoadSpecText(text0); err != nil {
			t.Fatalf("workload load: %v", err)
		}
		for i, b := range batches {
			if i == 1 {
				if res, err := s.Report(); err != nil || res.Err != nil {
					t.Fatalf("workload verify: %v / %v", err, res.Err)
				}
				if err := s.SaveState(); err != nil {
					t.Fatalf("workload save: %v", err)
				}
			}
			if _, err := s.ApplyDeltas(b); err != nil {
				t.Fatalf("workload batch %d: %v", i, err)
			}
		}
	}

	// Reference pass, traced: collects the committed-prefix texts and the
	// schedule of injection-point crossings.
	fault.Reset()
	fault.StartTrace()
	refDir := t.TempDir()
	ref := serve.NewServer(cfg(refDir))
	if _, err := ref.LoadSpecText(text0); err != nil {
		t.Fatal(err)
	}
	prefixes := []string{}
	txt, _ := ref.SpecText()
	prefixes = append(prefixes, txt)
	for i, b := range batches {
		if i == 1 {
			if res, err := ref.Report(); err != nil || res.Err != nil {
				t.Fatalf("reference verify: %v / %v", err, res.Err)
			}
			if err := ref.SaveState(); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ref.ApplyDeltas(b); err != nil {
			t.Fatalf("reference batch %d: %v", i, err)
		}
		txt, _ = ref.SpecText()
		prefixes = append(prefixes, txt)
	}
	counts := map[string]int{}
	for _, p := range fault.StopTrace() {
		counts[p]++
	}

	// Only points crossed on the mutation path (the caller's goroutine)
	// may be crashed: a crash on the verification goroutine would escape
	// the workload's recover and kill the test, which is exactly why the
	// daemon contains verify panics separately (TestPanicRecovery).
	crashable := []string{
		"serve.delta.apply", "serve.wal.append", "serve.wal.sync",
		"serve.wal.publish", "serve.persist.begin", "serve.persist.rename",
		"mtbdd.snapshot.encode",
	}
	pick := func(n int) []int {
		if n <= 3 {
			out := []int{}
			for k := 1; k <= n; k++ {
				out = append(out, k)
			}
			return out
		}
		return []int{1, n/2 + 1, n}
	}
	var schedules []string
	for _, p := range crashable {
		if counts[p] == 0 {
			t.Errorf("point %s never crossed by the workload — oracle coverage lost", p)
			continue
		}
		for _, k := range pick(counts[p]) {
			schedules = append(schedules, fmt.Sprintf("%s:crash@%d", p, k))
		}
	}
	// Torn frames: crash mid-write at several truncation lengths.
	for _, k := range pick(counts["serve.wal.append"]) {
		for _, n := range []int{0, 3, 12} {
			schedules = append(schedules, fmt.Sprintf("serve.wal.write:partial=%d@%d", n, k))
		}
	}

	prefixSet := map[string]int{}
	for i, p := range prefixes {
		prefixSet[p] = i
	}
	coldCache := map[string]string{}
	coldOf := func(text string) string {
		if r, ok := coldCache[text]; ok {
			return r
		}
		spec, err := config.ParseSpecString(text)
		if err != nil {
			t.Fatalf("cold parse: %v", err)
		}
		rep, err := yu.FromSpec(spec).Verify(yu.VerifyOptions{
			K: c.K, Mode: c.Mode, ModeSet: true,
			OverloadFactor: c.OverloadFactor, Workers: 1,
		})
		if err != nil {
			t.Fatalf("cold verify: %v", err)
		}
		r := canon.FormatReport(spec.Net, rep)
		coldCache[text] = r
		return r
	}

	// restart brings a daemon up on the crashed state; ok=false reports a
	// simulated kill during recovery itself (replay-fault schedules).
	restart := func(dir string) (s *serve.Server, text string, ok bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, okc := r.(fault.Crash); !okc {
					panic(r)
				}
				ok = false
			}
		}()
		s = serve.NewServer(cfg(dir))
		if _, err := s.LoadSpecText(text0); err != nil {
			t.Fatalf("restart: %v", err)
		}
		text, _ = s.SpecText()
		return s, text, true
	}

	check := func(schedule, replayFault string) {
		dir := t.TempDir()
		if err := fault.Set(schedule); err != nil {
			t.Fatalf("%s: %v", schedule, err)
		}
		workload(dir)
		if replayFault != "" {
			if err := fault.Set(replayFault); err != nil {
				t.Fatal(err)
			}
		} else {
			fault.Reset()
		}
		s2, text, ok := restart(dir)
		if !ok { // killed during replay: the journal survives, go again
			fault.Reset()
			if s2, text, ok = restart(dir); !ok {
				t.Fatalf("%s + %s: second restart crashed with faults disarmed", schedule, replayFault)
			}
		}
		fault.Reset()
		label := schedule
		if replayFault != "" {
			label += " + " + replayFault
		}
		i, isPrefix := prefixSet[text]
		if !isPrefix {
			t.Fatalf("%s: recovered a state that is no committed prefix:\n%s", label, text)
		}
		res, err := s2.Report()
		if err != nil {
			t.Fatalf("%s: recovered report: %v", label, err)
		}
		if res.Err != nil {
			t.Fatalf("%s: recovered verify: %v", label, res.Err)
		}
		if res.Text != coldOf(text) {
			t.Fatalf("%s: recovered report differs from cold verify of prefix %d", label, i)
		}
	}

	for _, schedule := range schedules {
		check(schedule, "")
	}
	// Kill or fail the daemon during WAL replay itself: run the workload
	// clean, then crash (or inject an error) at each replayed record.
	for k := 1; k <= len(batches); k++ {
		check("", fmt.Sprintf("serve.wal.replay:crash@%d", k))
		check("", fmt.Sprintf("serve.wal.replay:error@%d", k))
	}
	t.Logf("chaos oracle: %d crash schedules + %d replay schedules over %d prefixes",
		len(schedules), 2*len(batches), len(prefixes))
}

// TestPanicRecovery: a panicking request answers 500 and the daemon
// keeps serving.
func TestPanicRecovery(t *testing.T) {
	defer fault.Reset()
	s := serve.NewServer(serve.Config{})
	if _, err := s.LoadSpecText(readSpec(t, "motivating.yu")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := fault.Set("serve.http.request:panic@1"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "panic") {
		t.Fatalf("500 body does not mention the panic: %s", body)
	}
	if got := s.Metrics().Snapshot().Counters["serve.panics"]; got != 1 {
		t.Fatalf("serve.panics = %d, want 1", got)
	}
	resp2, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("daemon did not survive the panic: status %d", resp2.StatusCode)
	}
}

// TestAdmissionControl: beyond MaxInFlight concurrent requests the
// daemon sheds load with 503 + Retry-After; health probes stay exempt.
func TestAdmissionControl(t *testing.T) {
	defer fault.Reset()
	if err := fault.Set("serve.verify.run:delay=500"); err != nil {
		t.Fatal(err)
	}
	s := serve.NewServer(serve.Config{MaxInFlight: 1})
	if _, err := s.LoadSpecText(readSpec(t, "motivating.yu")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := make(chan int)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/report")
		if err != nil {
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	time.Sleep(100 * time.Millisecond) // let the slow request occupy the slot

	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-limit request: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if got := s.Metrics().Snapshot().Counters["serve.rejected"]; got < 1 {
		t.Fatalf("serve.rejected = %d, want >= 1", got)
	}
	hz, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz refused under load: status %d", hz.StatusCode)
	}
	if code := <-first; code != http.StatusOK {
		t.Fatalf("admitted slow request: status %d", code)
	}
}

// TestRequestTimeout: a request deadline answers 504 while the
// verification keeps running and serves the next request from the same
// shared computation.
func TestRequestTimeout(t *testing.T) {
	defer fault.Reset()
	if err := fault.Set("serve.verify.run:delay=400"); err != nil {
		t.Fatal(err)
	}
	s := serve.NewServer(serve.Config{RequestTimeout: 50 * time.Millisecond})
	if _, err := s.LoadSpecText(readSpec(t, "motivating.yu")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline request: status %d, want 504", resp.StatusCode)
	}
	if got := s.Metrics().Snapshot().Counters["serve.timeouts"]; got != 1 {
		t.Fatalf("serve.timeouts = %d, want 1", got)
	}
	time.Sleep(600 * time.Millisecond) // let the shared computation finish
	resp2, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-computation request: status %d, want 200", resp2.StatusCode)
	}
}

// TestMaxBodyBytes: oversized request bodies answer 413 without being
// read to the end.
func TestMaxBodyBytes(t *testing.T) {
	s := serve.NewServer(serve.Config{MaxBodyBytes: 1024})
	if _, err := s.LoadSpecText(readSpec(t, "motivating.yu")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	big := `{"deltas": [{"op": "add-static", "router": "` + strings.Repeat("x", 4096) + `"}]}`
	resp, err := http.Post(ts.URL+"/v1/delta", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	ok := `{"deltas": [{"op": "add-static", "router": "B", "prefix": "55.0.0.0/8", "discard": true}]}`
	resp2, err := http.Post(ts.URL+"/v1/delta", "application/json", strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("normal body after 413: status %d, want 200", resp2.StatusCode)
	}
}
