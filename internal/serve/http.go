// HTTP/JSON surface of the daemon. Every handler pins the version it
// serves with a single atomic load (directly or through the Server
// accessors), so each response cites exactly one version even while
// reloads and deltas race it.
//
// Handler wraps the mux in a robustness stack (outermost first):
// panic recovery (500, process survives), admission control (bounded
// in-flight requests, 503 + Retry-After beyond MaxInFlight), and a
// per-request deadline (requests answer 504 when RequestTimeout
// elapses; the underlying verification keeps running and is shared
// with later requests). Bodies beyond MaxBodyBytes answer 413.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"github.com/yu-verify/yu/internal/fault"
)

// verifyRequest is the optional POST /v1/verify body.
type verifyRequest struct {
	// Spec, when non-empty, is a full specification text to load before
	// verifying (a reload). Empty verifies the current version.
	Spec string `json:"spec,omitempty"`
}

// deltaRequest is the POST /v1/delta body.
type deltaRequest struct {
	Deltas []Delta `json:"deltas"`
	// Verify forces verification of the new version before responding
	// (by default deltas publish lazily and the next report pays).
	Verify bool `json:"verify,omitempty"`
}

// reportResponse is the JSON rendering of a RunResult.
type reportResponse struct {
	Version     int64  `json:"version"`
	Holds       bool   `json:"holds"`
	Report      string `json:"report"`
	CacheHits   int64  `json:"cache_hits"`
	CacheMisses int64  `json:"cache_misses"`
	Error       string `json:"error,omitempty"`
}

type versionResponse struct {
	Version int64 `json:"version"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/verify   verify current version, or reload {"spec": ...} and verify
//	POST /v1/delta    apply {"deltas": [...]} atomically, return new version
//	POST /v1/tlp      evaluate a TLP portfolio ({"portfolio": ...} or the
//	                  spec's own tlp section) against the warm version
//	GET  /v1/report   verification result of the current version
//	GET  /v1/spec     canonical spec text (X-Yu-Version header)
//	GET  /v1/metrics  obs registry snapshot
//	POST /v1/save     persist warm state now
//	GET  /v1/healthz  liveness + current version (exempt from admission
//	                  control and the request deadline, so probes stay
//	                  honest under load)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/verify", s.handleVerify)
	mux.HandleFunc("/v1/delta", s.handleDelta)
	mux.HandleFunc("/v1/tlp", s.handleTLP)
	mux.HandleFunc("/v1/report", s.handleReport)
	mux.HandleFunc("/v1/spec", s.handleSpec)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/save", s.handleSave)
	healthz := http.HandlerFunc(s.handleHealthz)
	mux.Handle("/v1/healthz", healthz)
	return s.recoverPanics(s.admit(healthz, s.withDeadline(mux)))
}

// recoverPanics is the outermost middleware: a panicking handler (or an
// injected fault) answers 500 and the daemon keeps serving.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if c, ok := rec.(fault.Crash); ok {
					panic(c) // simulated process kills must not be absorbed
				}
				if err, ok := rec.(error); ok && errors.Is(err, http.ErrAbortHandler) {
					panic(rec)
				}
				s.reg.Counter("serve.panics").Inc()
				writeError(w, http.StatusInternalServerError,
					fmt.Errorf("serve: handler panic: %v", rec))
			}
		}()
		if err := fault.Here("serve.http.request"); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// admit bounds concurrently served requests to MaxInFlight. Beyond the
// bound, requests answer 503 with Retry-After — load shedding at the
// door, so a burst of expensive verifies cannot pile up goroutines.
// Health probes bypass the gate.
func (s *Server) admit(healthz, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" {
			healthz.ServeHTTP(w, r)
			return
		}
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			next.ServeHTTP(w, r)
		default:
			s.reg.Counter("serve.rejected").Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("serve: too many in-flight requests (limit %d)", s.cfg.MaxInFlight))
		}
	})
}

// withDeadline attaches the per-request deadline to the request context.
func (s *Server) withDeadline(next http.Handler) http.Handler {
	if s.cfg.RequestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Server) readBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("serve: request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	if len(body) == 0 {
		return true // empty body keeps v's zero value
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("body: %w", err))
		return false
	}
	return true
}

// writeReport renders a ReportCtx outcome: 504 when the request deadline
// cut the wait short, 409 when no spec is loaded.
func writeReport(w http.ResponseWriter, res RunResult, err error) {
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			writeError(w, http.StatusGatewayTimeout, err)
			return
		}
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, runResultJSON(res))
}

func runResultJSON(res RunResult) reportResponse {
	out := reportResponse{
		Version:     res.Version,
		Holds:       res.Holds,
		Report:      res.Text,
		CacheHits:   res.Stats.CacheHits,
		CacheMisses: res.Stats.CacheMisses,
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
	}
	return out
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req verifyRequest
	if !s.readBody(w, r, &req) {
		return
	}
	if req.Spec != "" {
		if _, err := s.LoadSpecText(req.Spec); err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
	}
	res, err := s.ReportCtx(r.Context())
	writeReport(w, res, err)
}

func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req deltaRequest
	if !s.readBody(w, r, &req) {
		return
	}
	if len(req.Deltas) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("no deltas"))
		return
	}
	id, err := s.ApplyDeltas(req.Deltas)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if req.Verify {
		res, err := s.ReportCtx(r.Context())
		writeReport(w, res, err)
		return
	}
	writeJSON(w, http.StatusOK, versionResponse{Version: id})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	res, err := s.ReportCtx(r.Context())
	writeReport(w, res, err)
}

func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	text, id := s.SpecText()
	if id == 0 {
		writeError(w, http.StatusConflict, fmt.Errorf("serve: no specification loaded"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Yu-Version", fmt.Sprint(id))
	io.WriteString(w, text)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.reg.Snapshot().WriteJSON(w)
}

func (s *Server) handleSave(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	if err := s.SaveState(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"saved": s.cfg.StatePath != "", "entries": s.store.len()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "version": s.Version()})
}
