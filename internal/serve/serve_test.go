// Tests for the incremental daemon core: the delta-vs-cold byte-identity
// oracle over the checked-in scenarios (with exact warm-cache hit
// accounting), reload/query races, warm-state persistence, and delta
// atomicity. The package is external so the tests exercise exactly the
// surface cmd/yud and internal/difftest consume.
package serve_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/canon"
	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/serve"

	"net/http/httptest"
)

func readSpec(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// coldReport verifies text from scratch and renders the canonical report
// — the oracle every daemon answer is held to.
func coldReport(t *testing.T, text string) string {
	t.Helper()
	spec, err := config.ParseSpecString(text)
	if err != nil {
		t.Fatalf("cold parse: %v", err)
	}
	rep, err := yu.FromSpec(spec).Verify(yu.VerifyOptions{Workers: 1})
	if err != nil {
		t.Fatalf("cold verify: %v", err)
	}
	return canon.FormatReport(spec.Net, rep)
}

func mustReport(t *testing.T, s *serve.Server) serve.RunResult {
	t.Helper()
	res, err := s.Report()
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("verify: %v", res.Err)
	}
	return res
}

// TestDeltaVsColdTestdata is the incremental-vs-cold oracle on the
// checked-in scenarios: after a delta, the daemon's report must be
// byte-identical to a cold verification of the final state, and the
// warm-cache hit/miss split must match the classes the delta dirtied.
func TestDeltaVsColdTestdata(t *testing.T) {
	cases := []struct {
		name       string
		file       string
		deltas     []serve.Delta
		wantHits   int64 // classes served warm after the delta
		wantMisses int64 // classes re-executed after the delta
	}{
		{
			// A discard static for an unrelated prefix on B touches no
			// class input surface: both classes must be served warm.
			name: "motivating/clean",
			file: "motivating.yu",
			deltas: []serve.Delta{
				{Op: "add-static", Router: "B", Prefix: "55.0.0.0/8", Discard: true},
			},
			wantHits: 2, wantMisses: 0,
		},
		{
			// A /32 covering only f1's destination splits the prefix
			// class: f1 re-executes, f2 stays warm.
			name: "motivating/split",
			file: "motivating.yu",
			deltas: []serve.Delta{
				{Op: "add-static", Router: "A", Prefix: "100.0.0.1/32", Discard: true},
			},
			wantHits: 1, wantMisses: 1,
		},
		{
			// Raising a link cost changes the global IGP state: every
			// class is dirty.
			name: "motivating/link-cost",
			file: "motivating.yu",
			deltas: []serve.Delta{
				{Op: "set-link-cost", A: "A", B: "B", Cost: 20000},
			},
			wantHits: 0, wantMisses: 2,
		},
		{
			name: "sranycast/clean",
			file: "sranycast.yu",
			deltas: []serve.Delta{
				{Op: "add-static", Router: "B1", Prefix: "9.9.9.0/24", Discard: true},
			},
			wantHits: 1, wantMisses: 0,
		},
		{
			name: "misconfig/clean",
			file: "misconfig.yu",
			deltas: []serve.Delta{
				{Op: "add-static", Router: "M2", Prefix: "7.0.0.0/8", Discard: true},
			},
			wantHits: 1, wantMisses: 0,
		},
		{
			// Removing the export-deny fixes the Figure 10 misconfig:
			// the service prefix reaches M1/M2 again, flipping the
			// verdict — the report must still match cold exactly.
			name: "misconfig/fix",
			file: "misconfig.yu",
			deltas: []serve.Delta{
				{Op: "remove-export-deny", Router: "D1", Neighbor: "10.200.0.1", Prefix: "10.1.0.0/26"},
				{Op: "remove-export-deny", Router: "D2", Neighbor: "10.200.1.1", Prefix: "10.1.0.0/26"},
			},
			wantHits: 0, wantMisses: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := readSpec(t, tc.file)
			s := serve.NewServer(serve.Config{})
			if _, err := s.LoadSpecText(raw); err != nil {
				t.Fatal(err)
			}
			// The initial (cold) daemon run must already match a cold
			// verification of the raw text — canonicalization must not
			// change semantics.
			first := mustReport(t, s)
			if got, want := first.Text, coldReport(t, raw); got != want {
				t.Fatalf("initial daemon report != cold report of raw spec:\n--- daemon\n%s\n--- cold\n%s", got, want)
			}
			if first.Stats.CacheHits != 0 {
				t.Fatalf("cold daemon run claims %d cache hits", first.Stats.CacheHits)
			}

			id, err := s.ApplyDeltas(tc.deltas)
			if err != nil {
				t.Fatal(err)
			}
			res := mustReport(t, s)
			if res.Version != id {
				t.Fatalf("report cites version %d, delta published %d", res.Version, id)
			}
			if res.Stats.CacheHits != tc.wantHits || res.Stats.CacheMisses != tc.wantMisses {
				t.Fatalf("hits/misses = %d/%d, want %d/%d",
					res.Stats.CacheHits, res.Stats.CacheMisses, tc.wantHits, tc.wantMisses)
			}
			final, _ := s.SpecText()
			if got, want := res.Text, coldReport(t, final); got != want {
				t.Fatalf("incremental report != cold report of final state:\n--- incremental\n%s\n--- cold\n%s", got, want)
			}
			snap := s.Metrics().Snapshot()
			if snap.Counters["serve.class_cache_hits"] != tc.wantHits {
				t.Fatalf("serve.class_cache_hits = %d, want %d",
					snap.Counters["serve.class_cache_hits"], tc.wantHits)
			}
			if tc.wantMisses > 0 && snap.Counters["serve.dirty_classes"] != tc.wantMisses {
				t.Fatalf("serve.dirty_classes = %d, want %d",
					snap.Counters["serve.dirty_classes"], tc.wantMisses)
			}
		})
	}
}

// TestDeltaAtomicity: a batch with one invalid delta must leave the
// current version untouched, even if earlier deltas in the batch were
// valid.
func TestDeltaAtomicity(t *testing.T) {
	s := serve.NewServer(serve.Config{})
	if _, err := s.LoadSpecText(readSpec(t, "motivating.yu")); err != nil {
		t.Fatal(err)
	}
	before, v1 := s.SpecText()
	_, err := s.ApplyDeltas([]serve.Delta{
		{Op: "add-static", Router: "B", Prefix: "55.0.0.0/8", Discard: true}, // valid
		{Op: "add-static", Router: "NOPE", Prefix: "55.0.0.0/8", Discard: true},
	})
	if err == nil {
		t.Fatal("batch with invalid delta accepted")
	}
	after, v2 := s.SpecText()
	if v1 != v2 || before != after {
		t.Fatal("rejected batch mutated the published version")
	}
	snap := s.Metrics().Snapshot()
	if snap.Counters["serve.deltas_rejected"] != 2 {
		t.Fatalf("serve.deltas_rejected = %d, want 2 (whole batch)", snap.Counters["serve.deltas_rejected"])
	}
}

// TestDeltaRoundTrip: an add followed by its remove must return to the
// exact canonical text, and re-verification is then fully warm.
func TestDeltaRoundTrip(t *testing.T) {
	s := serve.NewServer(serve.Config{})
	if _, err := s.LoadSpecText(readSpec(t, "motivating.yu")); err != nil {
		t.Fatal(err)
	}
	orig, _ := s.SpecText()
	origRes := mustReport(t, s)
	if _, err := s.ApplyDeltas([]serve.Delta{
		{Op: "add-static", Router: "A", Prefix: "100.0.0.1/32", Discard: true},
	}); err != nil {
		t.Fatal(err)
	}
	mustReport(t, s)
	if _, err := s.ApplyDeltas([]serve.Delta{
		{Op: "remove-static", Router: "A", Prefix: "100.0.0.1/32"},
	}); err != nil {
		t.Fatal(err)
	}
	back, _ := s.SpecText()
	if back != orig {
		t.Fatalf("add+remove did not round-trip the canonical text:\n--- orig\n%s\n--- back\n%s", orig, back)
	}
	res := mustReport(t, s)
	if res.Stats.CacheMisses != 0 || res.Stats.CacheHits != 2 {
		t.Fatalf("round-trip re-verify hits/misses = %d/%d, want 2/0",
			res.Stats.CacheHits, res.Stats.CacheMisses)
	}
	if res.Text != origRes.Text {
		t.Fatal("round-trip report differs from the original")
	}
}

// TestWarmStateRestart: save, build a fresh server on the same state
// directory, and re-verify — every class must come from the warm cache
// and the report must be byte-identical.
func TestWarmStateRestart(t *testing.T) {
	dir := t.TempDir()
	raw := readSpec(t, "motivating.yu")

	s1 := serve.NewServer(serve.Config{StatePath: dir})
	if _, err := s1.LoadSpecText(raw); err != nil {
		t.Fatal(err)
	}
	res1 := mustReport(t, s1)
	if err := s1.SaveState(); err != nil {
		t.Fatal(err)
	}

	s2 := serve.NewServer(serve.Config{StatePath: dir})
	if _, err := s2.LoadSpecText(raw); err != nil {
		t.Fatal(err)
	}
	res2 := mustReport(t, s2)
	if res2.Stats.CacheMisses != 0 || res2.Stats.CacheHits != 2 {
		t.Fatalf("restarted daemon hits/misses = %d/%d, want 2/0",
			res2.Stats.CacheHits, res2.Stats.CacheMisses)
	}
	if res2.Text != res1.Text {
		t.Fatalf("restarted daemon report differs:\n--- before\n%s\n--- after\n%s", res1.Text, res2.Text)
	}
}

// TestWarmStateCorrupt: a truncated or garbage state file must log and
// start cold, never fail or panic — the same contract as cost hints.
func TestWarmStateCorrupt(t *testing.T) {
	dir := t.TempDir()
	raw := readSpec(t, "misconfig.yu")
	s1 := serve.NewServer(serve.Config{StatePath: dir})
	if _, err := s1.LoadSpecText(raw); err != nil {
		t.Fatal(err)
	}
	mustReport(t, s1)
	if err := s1.SaveState(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "stfcache.bin")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flip := func(pos int) []byte {
		out := append([]byte(nil), data...)
		out[pos] ^= 0x01
		return out
	}
	for name, mut := range map[string][]byte{
		"garbage":   []byte("not a warm cache at all"),
		"truncated": data[:len(data)/2],
		"badmagic":  append([]byte("YUWARM9\n"), data[8:]...),
		// Single bit flips: the CRC frames must catch corruption that
		// structural validation alone could let through.
		"bitflip-frame-start": flip(16),
		"bitflip-middle":      flip(len(data) / 2),
		"bitflip-tail":        flip(len(data) - 2),
	} {
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := serve.NewServer(serve.Config{StatePath: dir})
		if _, err := s2.LoadSpecText(raw); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := mustReport(t, s2)
		if res.Stats.CacheHits != 0 {
			t.Fatalf("%s: corrupt state produced %d cache hits", name, res.Stats.CacheHits)
		}
		if res.Text != coldReport(t, raw) {
			t.Fatalf("%s: report differs after corrupt state", name)
		}
	}
}

// TestReloadRace hammers /v1/report from several goroutines while deltas
// and reloads are applied. Every response must be internally consistent:
// one version, and the report text that belongs to exactly that version.
func TestReloadRace(t *testing.T) {
	s := serve.NewServer(serve.Config{})
	raw := readSpec(t, "motivating.yu")
	if _, err := s.LoadSpecText(raw); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type resp struct {
		Version int64  `json:"version"`
		Report  string `json:"report"`
		Error   string `json:"error"`
	}
	var (
		mu   sync.Mutex
		seen = make(map[int64]string) // version -> report text
	)
	record := func(t *testing.T, r resp) {
		if r.Error != "" {
			t.Errorf("report error: %s", r.Error)
			return
		}
		if r.Version <= 0 {
			t.Errorf("response cites version %d", r.Version)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if prev, ok := seen[r.Version]; ok && prev != r.Report {
			t.Errorf("version %d served two different reports", r.Version)
			return
		}
		seen[r.Version] = r.Report
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				res, err := http.Get(ts.URL + "/v1/report")
				if err != nil {
					t.Errorf("GET /v1/report: %v", err)
					return
				}
				body, _ := io.ReadAll(res.Body)
				res.Body.Close()
				var r resp
				if err := json.Unmarshal(body, &r); err != nil {
					t.Errorf("report body: %v", err)
					return
				}
				record(t, r)
			}
		}()
	}

	// Mutate under the readers: deltas and a full reload.
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"deltas":[{"op":"add-static","router":"B","prefix":"%d.0.0.0/8","discard":true}]}`, 50+i)
		res, err := http.Post(ts.URL+"/v1/delta", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("delta %d: status %d", i, res.StatusCode)
		}
	}
	reload, err := json.Marshal(map[string]string{"spec": raw})
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(ts.URL+"/v1/verify", "application/json", strings.NewReader(string(reload)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("reload: status %d", res.StatusCode)
	}
	close(done)
	wg.Wait()

	// Cross-check every observed version's report against a cold run of
	// that version's final text where we still know it: the last version
	// is the reloaded original.
	if len(seen) == 0 {
		t.Fatal("no responses recorded")
	}
	cold := coldReport(t, raw)
	final := mustReport(t, s)
	if final.Text != cold {
		t.Fatal("final reloaded report differs from cold")
	}
}

// TestHTTPNoSpec: endpoints respond 409 before any spec is loaded.
func TestHTTPNoSpec(t *testing.T) {
	s := serve.NewServer(serve.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	res, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusConflict {
		t.Fatalf("report without spec: status %d, want 409", res.StatusCode)
	}
}
