// Warm STF cache: content-hash keys, the core.STFCache adapter consulted
// by the sequential verifier, and the version-independent store that
// survives reloads (and, via persist.go, restarts).
package serve

import (
	"math"
	"net/netip"
	"sort"
	"sync"

	"github.com/yu-verify/yu/internal/core"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/obs"
	"github.com/yu-verify/yu/internal/topo"
)

// cacheKey is the 128-bit content fingerprint of one equivalence class's
// complete execution input surface. Two independent mixes of the same
// token stream make accidental collisions negligible (~2^-64 at any
// realistic cache population).
type cacheKey struct {
	a, b uint64
}

// tok accumulates the typed token stream a fingerprint hashes. Tokens
// are length-prefixed where variable-sized, so distinct field sequences
// cannot collide by concatenation.
type tok struct {
	s []uint64
}

func (t *tok) u64(x uint64) { t.s = append(t.s, x) }

func (t *tok) b(x bool) {
	if x {
		t.u64(1)
	} else {
		t.u64(2)
	}
}

func (t *tok) str(s string) {
	t.u64(uint64(len(s)))
	var acc, n uint64
	for i := 0; i < len(s); i++ {
		acc = acc<<8 | uint64(s[i])
		if n++; n == 8 {
			t.u64(acc)
			acc, n = 0, 0
		}
	}
	if n > 0 {
		t.u64(acc)
	}
}

func (t *tok) addr(a netip.Addr) {
	b := a.As16()
	for i := 0; i < 16; i += 8 {
		var x uint64
		for j := 0; j < 8; j++ {
			x = x<<8 | uint64(b[i+j])
		}
		t.u64(x)
	}
	t.b(a.Is4())
}

func (t *tok) prefix(p netip.Prefix) {
	t.addr(p.Addr())
	t.u64(uint64(int64(p.Bits())))
}

// key derives the two independent 64-bit mixes: an FNV-1a pass and a
// splitmix-chained pass over the same tokens.
func (t *tok) key() cacheKey {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	a := uint64(fnvOffset)
	b := uint64(0x2545f4914f6cdd1d)
	for _, x := range t.s {
		for i := 0; i < 8; i++ {
			a = (a ^ (x >> (8 * i) & 0xff)) * fnvPrime
		}
		b = mix64(b ^ mix64(x+0x9e3779b97f4a7c15))
	}
	return cacheKey{a, b}
}

// mix64 is the splitmix64 finalizer (same construction as mtbdd's).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// stfEntry is one cached class execution in manager-independent form:
// the MTBDD snapshot of every root plus the indices to rebuild a
// core.FlowSTF from the replay table.
type stfEntry struct {
	snap                         *mtbdd.Snapshot
	links                        []topo.DirLinkID // ascending
	linkRoots                    []uint32         // parallel to links
	delivered, dropped, inFlight uint32
	iterations                   int
}

// stfStore is the shared warm cache. It outlives versions and reloads;
// content-hash keys make stale entries unreachable rather than wrong.
type stfStore struct {
	mu      sync.Mutex
	entries map[cacheKey]*stfEntry
	limit   int
}

func newSTFStore(limit int) *stfStore {
	return &stfStore{entries: make(map[cacheKey]*stfEntry), limit: limit}
}

func (st *stfStore) get(k cacheKey) *stfEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.entries[k]
}

// put inserts an entry, resetting the whole cache first if it is full
// (full reset keeps the policy trivially correct; evictions are rare and
// counted so capacity tuning is visible).
func (st *stfStore) put(k cacheKey, e *stfEntry, evictC *obs.Counter) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.entries[k]; !ok && len(st.entries) >= st.limit {
		st.entries = make(map[cacheKey]*stfEntry)
		evictC.Inc()
	}
	st.entries[k] = e
}

func (st *stfStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.entries)
}

// runCache adapts the shared store to core.STFCache for one verification
// run. It memoizes the run-global fingerprint (topology, failure model,
// IGP, SR) and the guard hasher, so per-class keys cost one pass over
// the class's own RIB rows.
type runCache struct {
	srv    *Server
	hasher *mtbdd.Hasher

	global      [2]uint64
	globalReady bool

	hits, misses int64
}

func newRunCache(s *Server) *runCache {
	return &runCache{srv: s, hasher: mtbdd.NewHasher()}
}

// globalTokens fingerprints everything every class execution reads:
// topology identity (names pin router/link indices), the failure model,
// and the complete guarded IGP and SR state.
func (rc *runCache) globalFP(e *core.Engine) [2]uint64 {
	if rc.globalReady {
		return rc.global
	}
	var t tok
	net := e.Net()
	fv := e.Vars()
	rs := e.RouteSim()
	t.u64(uint64(len(net.Routers)))
	for i := range net.Routers {
		r := &net.Routers[i]
		t.str(r.Name)
		t.u64(uint64(r.AS))
		t.addr(r.Loopback)
		t.b(r.NoFail)
	}
	t.u64(uint64(len(net.Links)))
	for i := range net.Links {
		l := &net.Links[i]
		t.u64(uint64(int64(l.A)))
		t.u64(uint64(int64(l.B)))
		t.u64(uint64(l.CostAB))
		t.u64(uint64(l.CostBA))
		t.u64(math.Float64bits(l.Capacity))
		t.addr(l.AddrA)
		t.addr(l.AddrB)
		t.b(l.NoFail)
	}
	t.u64(uint64(int64(fv.K)))
	t.u64(uint64(int64(fv.Mode)))
	t.u64(rs.HashIGP(rc.hasher))
	t.u64(rs.HashSR(rc.hasher))
	k := t.key()
	rc.global = [2]uint64{k.a, k.b}
	rc.globalReady = true
	return rc.global
}

// classKey fingerprints one class's execution inputs: the run-global
// state plus the class identity (ingress, DSCP, matched prefix list) and
// every router's RIB candidates and statics for those prefixes.
func (rc *runCache) classKey(e *core.Engine, rep topo.Flow) cacheKey {
	g := rc.globalFP(e)
	net := e.Net()
	rs := e.RouteSim()
	var t tok
	t.u64(g[0])
	t.u64(g[1])
	t.str(net.Router(rep.Ingress).Name)
	t.u64(uint64(rep.DSCP))
	prefixes := e.ClassPrefixes(rep.Dst)
	t.u64(uint64(len(prefixes)))
	for _, pfx := range prefixes {
		t.prefix(pfx)
		for r := 0; r < net.NumRouters(); r++ {
			t.u64(rs.HashPrefix(topo.RouterID(r), pfx, rc.hasher))
		}
	}
	return t.key()
}

// Lookup implements core.STFCache: rebuild the class STF from the warm
// entry by snapshot replay into e's manager. Defensive shape checks keep
// a stale or corrupt persisted entry from being materialized.
func (rc *runCache) Lookup(e *core.Engine, rep topo.Flow) (*core.FlowSTF, bool) {
	ent := rc.srv.store.get(rc.classKey(e, rep))
	reg := rc.srv.reg
	if ent == nil {
		rc.misses++
		reg.Counter("serve.class_cache_misses").Inc()
		if rc.srv.everRan.Load() {
			reg.Counter("serve.dirty_classes").Inc()
		}
		return nil, false
	}
	if int(ent.snap.MaxLevel()) >= e.Manager().NumVars() {
		rc.misses++
		reg.Counter("serve.class_cache_misses").Inc()
		return nil, false
	}
	maxDir := 2 * e.Net().NumLinks()
	for _, l := range ent.links {
		if int(l) < 0 || int(l) >= maxDir {
			rc.misses++
			reg.Counter("serve.class_cache_misses").Inc()
			return nil, false
		}
	}
	table := e.Manager().ImportSnapshot(ent.snap)
	stf := &core.FlowSTF{
		Flow:       rep,
		Links:      make(map[topo.DirLinkID]*mtbdd.Node, len(ent.links)),
		Delivered:  table[ent.delivered],
		Dropped:    table[ent.dropped],
		InFlight:   table[ent.inFlight],
		Iterations: ent.iterations,
	}
	for i, l := range ent.links {
		stf.Links[l] = table[ent.linkRoots[i]]
	}
	rc.hits++
	reg.Counter("serve.class_cache_hits").Inc()
	return stf, true
}

// Store implements core.STFCache: snapshot a freshly executed class STF
// into the shared store. Degraded (fallback-built) STFs are not cached —
// they depend on the governance budget, not just the route state.
func (rc *runCache) Store(e *core.Engine, rep topo.Flow, stf *core.FlowSTF) {
	if stf == nil || stf.Degraded {
		return
	}
	links := make([]topo.DirLinkID, 0, len(stf.Links))
	for l := range stf.Links {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	roots := make([]*mtbdd.Node, 0, 3+len(links))
	roots = append(roots, stf.Delivered, stf.Dropped, stf.InFlight)
	for _, l := range links {
		roots = append(roots, stf.Links[l])
	}
	snap := mtbdd.NewSnapshot(roots)
	idx := func(n *mtbdd.Node) uint32 {
		i, _ := snap.Index(n)
		return i
	}
	ent := &stfEntry{
		snap:       snap,
		links:      links,
		linkRoots:  make([]uint32, len(links)),
		delivered:  idx(stf.Delivered),
		dropped:    idx(stf.Dropped),
		inFlight:   idx(stf.InFlight),
		iterations: stf.Iterations,
	}
	for i, l := range links {
		ent.linkRoots[i] = idx(stf.Links[l])
	}
	rc.srv.store.put(rc.classKey(e, rep), ent, rc.srv.reg.Counter("serve.cache_evictions"))
}
