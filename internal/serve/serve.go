// Package serve is the incremental verification-as-a-service layer behind
// cmd/yud (DESIGN.md §14): a resident server that loads a specification
// once, keeps parsed state, route-sim inputs, and per-class symbolic
// execution results warm, and re-verifies only what a configuration delta
// actually dirtied.
//
// Three mechanisms make it correct and fast:
//
//   - Content-hash invalidation: every equivalence class is keyed by a
//     128-bit fingerprint of every route-sim output its execution reads
//     (per-prefix RIB candidates and statics on all routers, the global
//     IGP and SR state, topology, and failure model — see cache.go and
//     routesim/hash.go). A delta invalidates exactly the classes whose
//     fingerprints change; everything else is served from the warm STF
//     cache via mtbdd.Snapshot replay, which hash-consing makes
//     indistinguishable from re-execution. Reports are byte-identical to
//     a cold run — the delta-vs-cold oracle in internal/difftest holds
//     the daemon to that.
//   - Versioned immutable snapshots: every accepted reload or delta
//     publishes a new immutable version (canonical spec text + parsed
//     spec + lazily computed report). Queries pin one version with a
//     single atomic load, so concurrent readers never block on a reload
//     and never observe a half-applied one.
//   - Warm-state persistence: the STF cache serializes through the
//     mtbdd.Snapshot codec and cost hints through core.SaveCostHints, so
//     a restarted daemon resumes warm (persist.go).
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/canon"
	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/obs"
	"github.com/yu-verify/yu/internal/topo"
)

// Config tunes a Server. The zero value verifies each spec under its own
// failure budget and mode, with no overload checking and no persistence.
type Config struct {
	// K overrides the spec's failure budget when > 0.
	K int
	// Mode overrides the spec's failure mode when ModeSet is true.
	Mode    topo.FailureMode
	ModeSet bool
	// OverloadFactor, when > 0, additionally checks every directed link
	// against factor × capacity (mirrors yu.VerifyOptions).
	OverloadFactor float64
	// StatePath is a directory for warm state (STF cache + cost hints).
	// Empty disables persistence.
	StatePath string
	// Obs receives the daemon's metrics; nil creates a private registry.
	Obs *obs.Registry
	// CacheLimit caps warm-cache entries before a full reset (default
	// 4096; the reset is counted in serve.cache_evictions).
	CacheLimit int
}

// RunStats summarizes one version's verification against the warm cache.
type RunStats struct {
	// CacheHits is the number of equivalence classes served from the
	// warm STF cache; CacheMisses the number symbolically re-executed.
	CacheHits, CacheMisses int64
}

// RunResult is the outcome of verifying one version.
type RunResult struct {
	// Version identifies the immutable spec version this result belongs
	// to. Every API response cites exactly one version.
	Version int64
	Holds   bool
	// Text is the canonical report rendering (canon.FormatReport) — the
	// byte-identity contract surface.
	Text   string
	Report *yu.Report
	Stats  RunStats
	// Err is the verification error, if the run was cut short.
	Err error
}

// version is one immutable published state: canonical spec text, the
// parsed spec, and the lazily computed verification result. All fields
// except the once-guarded result are written before publication and never
// after.
type version struct {
	id   int64
	text string
	spec *config.Spec
	srv  *Server

	once   sync.Once
	result RunResult
}

// Server is the resident verification service. Mutations (LoadSpecText,
// ApplyDeltas) serialize on an internal mutex and publish new versions
// atomically; reads (Report, SpecText) are lock-free on the version
// pointer and safe to call concurrently with mutations.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	store *stfStore

	mu     sync.Mutex // serializes mutations and persistence
	cur    atomic.Pointer[version]
	nextID atomic.Int64

	hintsMu sync.Mutex
	hints   map[string]float64

	everRan atomic.Bool
}

// NewServer creates a server with no loaded spec. If cfg.StatePath is
// set, persisted warm state is loaded best-effort (corrupt state logs a
// warning and starts cold, like a corrupt cost-hints file).
func NewServer(cfg Config) *Server {
	if cfg.CacheLimit <= 0 {
		cfg.CacheLimit = 4096
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.New()
	}
	s := &Server{
		cfg:   cfg,
		reg:   reg,
		store: newSTFStore(cfg.CacheLimit),
		hints: make(map[string]float64),
	}
	for _, name := range obs.ServeCounterNames {
		reg.Counter(name)
	}
	if cfg.StatePath != "" {
		s.loadState()
	}
	return s
}

// Metrics exposes the server's registry.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Version returns the current version ID (0 before the first load).
func (s *Server) Version() int64 {
	if v := s.cur.Load(); v != nil {
		return v.id
	}
	return 0
}

// SpecText returns the current canonical spec text and its version.
func (s *Server) SpecText() (string, int64) {
	v := s.cur.Load()
	if v == nil {
		return "", 0
	}
	return v.text, v.id
}

// LoadSpecText parses, canonicalizes, and publishes a full specification,
// returning the new version ID. The warm cache is kept: content hashing
// makes stale entries unreachable and shared ones reusable.
func (s *Server) LoadSpecText(text string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, err := s.buildVersion(text)
	if err != nil {
		return 0, err
	}
	s.publish(v)
	s.reg.Counter("serve.reloads").Inc()
	return v.id, nil
}

// ApplyDeltas applies a sequence of deltas to the current spec as one
// atomic mutation: all apply, or the current version stays. Returns the
// new version ID.
func (s *Server) ApplyDeltas(deltas []Delta) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.cur.Load()
	if cur == nil {
		s.reg.Counter("serve.deltas_rejected").Add(int64(len(deltas)))
		return 0, fmt.Errorf("serve: no specification loaded")
	}
	// Deltas mutate a private re-parse of the canonical text, so the
	// published version's spec is never aliased.
	spec, err := config.ParseSpecString(cur.text)
	if err != nil {
		return 0, fmt.Errorf("serve: current spec no longer parses: %w", err)
	}
	for i, d := range deltas {
		if err := applyDelta(spec, d); err != nil {
			s.reg.Counter("serve.deltas_rejected").Add(int64(len(deltas)))
			return 0, fmt.Errorf("serve: delta %d (%s): %w", i, d.Op, err)
		}
	}
	text, err := canon.FormatSpec(spec)
	if err != nil {
		s.reg.Counter("serve.deltas_rejected").Add(int64(len(deltas)))
		return 0, fmt.Errorf("serve: mutated spec is not canonicalizable: %w", err)
	}
	v, err := s.buildVersion(text)
	if err != nil {
		s.reg.Counter("serve.deltas_rejected").Add(int64(len(deltas)))
		return 0, err
	}
	s.publish(v)
	s.reg.Counter("serve.deltas_applied").Add(int64(len(deltas)))
	return v.id, nil
}

// buildVersion parses and canonicalizes text into an unpublished version.
// The canonical text is the version identity; a spec the canonical
// renderer cannot express (e.g. asymmetric hand-written link costs) falls
// back to the raw text.
func (s *Server) buildVersion(text string) (*version, error) {
	spec, err := config.ParseSpecString(text)
	if err != nil {
		return nil, err
	}
	if ct, cerr := canon.FormatSpec(spec); cerr == nil {
		cspec, perr := config.ParseSpecString(ct)
		if perr != nil {
			return nil, fmt.Errorf("serve: canonical spec does not re-parse: %w", perr)
		}
		text, spec = ct, cspec
	}
	return &version{id: s.nextID.Add(1), text: text, spec: spec, srv: s}, nil
}

func (s *Server) publish(v *version) {
	s.cur.Store(v)
	s.reg.Counter("serve.versions").Inc()
}

// Report verifies the current version (at most once — concurrent callers
// share the computation) and returns its result.
func (s *Server) Report() (RunResult, error) {
	v := s.cur.Load()
	if v == nil {
		return RunResult{}, fmt.Errorf("serve: no specification loaded")
	}
	v.run()
	return v.result, nil
}

// run computes the version's verification result exactly once.
func (v *version) run() {
	v.once.Do(func() {
		s := v.srv
		sp := s.reg.Span("verify")
		defer sp.End()
		rc := newRunCache(s)
		rep, err := yu.FromSpec(v.spec).Verify(yu.VerifyOptions{
			K:              s.cfg.K,
			Mode:           s.cfg.Mode,
			ModeSet:        s.cfg.ModeSet,
			OverloadFactor: s.cfg.OverloadFactor,
			Workers:        1,
			Obs:            s.reg,
			CostHints:      s.copyHints(),
			STFCache:       rc,
		})
		v.result = RunResult{
			Version: v.id,
			Report:  rep,
			Err:     err,
			Stats:   RunStats{CacheHits: rc.hits, CacheMisses: rc.misses},
		}
		if rep != nil {
			v.result.Holds = rep.Holds
			v.result.Text = canon.FormatReport(v.spec.Net, rep)
			s.mergeHints(rep.CostHints)
		}
		if err == nil {
			s.everRan.Store(true)
		}
	})
}

func (s *Server) copyHints() map[string]float64 {
	s.hintsMu.Lock()
	defer s.hintsMu.Unlock()
	out := make(map[string]float64, len(s.hints))
	for k, c := range s.hints {
		out[k] = c
	}
	return out
}

func (s *Server) mergeHints(hints map[string]float64) {
	s.hintsMu.Lock()
	for k, c := range hints {
		if c > 0 {
			s.hints[k] = c
		}
	}
	s.hintsMu.Unlock()
}
