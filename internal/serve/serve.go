// Package serve is the incremental verification-as-a-service layer behind
// cmd/yud (DESIGN.md §14): a resident server that loads a specification
// once, keeps parsed state, route-sim inputs, and per-class symbolic
// execution results warm, and re-verifies only what a configuration delta
// actually dirtied.
//
// Three mechanisms make it correct and fast:
//
//   - Content-hash invalidation: every equivalence class is keyed by a
//     128-bit fingerprint of every route-sim output its execution reads
//     (per-prefix RIB candidates and statics on all routers, the global
//     IGP and SR state, topology, and failure model — see cache.go and
//     routesim/hash.go). A delta invalidates exactly the classes whose
//     fingerprints change; everything else is served from the warm STF
//     cache via mtbdd.Snapshot replay, which hash-consing makes
//     indistinguishable from re-execution. Reports are byte-identical to
//     a cold run — the delta-vs-cold oracle in internal/difftest holds
//     the daemon to that.
//   - Versioned immutable snapshots: every accepted reload or delta
//     publishes a new immutable version (canonical spec text + parsed
//     spec + lazily computed report). Queries pin one version with a
//     single atomic load, so concurrent readers never block on a reload
//     and never observe a half-applied one.
//   - Crash consistency (DESIGN.md §15): with a state directory, every
//     accepted delta batch is journaled to a checksummed write-ahead log
//     (wal.go) before it is published, and replayed at startup — a
//     killed daemon restarted on the same spec file reconstructs exactly
//     the pre-crash version. The warm STF cache and cost hints persist
//     through fsync'd atomic renames (persist.go) as a latency aid;
//     corrupt warm state starts cold, never wrong.
package serve

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/canon"
	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/fault"
	"github.com/yu-verify/yu/internal/obs"
	"github.com/yu-verify/yu/internal/topo"
)

// Config tunes a Server. The zero value verifies each spec under its own
// failure budget and mode, with no overload checking and no persistence.
type Config struct {
	// K overrides the spec's failure budget when > 0.
	K int
	// Mode overrides the spec's failure mode when ModeSet is true.
	Mode    topo.FailureMode
	ModeSet bool
	// OverloadFactor, when > 0, additionally checks every directed link
	// against factor × capacity (mirrors yu.VerifyOptions).
	OverloadFactor float64
	// StatePath is a directory for durable state: the delta WAL plus the
	// warm STF cache and cost hints. Empty disables persistence (and with
	// it crash recovery of deltas).
	StatePath string
	// Obs receives the daemon's metrics; nil creates a private registry.
	Obs *obs.Registry
	// CacheLimit caps warm-cache entries before a full reset (default
	// 4096; the reset is counted in serve.cache_evictions).
	CacheLimit int
	// VerifyTimeout, when > 0, bounds each version's verification run via
	// the governance deadline (yu.VerifyOptions.Ctx): an over-budget run
	// yields an INCOMPLETE partial report instead of hanging the daemon.
	VerifyTimeout time.Duration
	// RequestTimeout, when > 0, bounds how long an HTTP request waits for
	// a result before answering 504 (the computation itself continues and
	// is shared with later requests).
	RequestTimeout time.Duration
	// MaxInFlight bounds concurrently admitted HTTP requests; excess
	// requests are refused with 503 + Retry-After and counted in
	// serve.rejected. Default 256. /v1/healthz is exempt.
	MaxInFlight int
	// MaxBodyBytes bounds HTTP request bodies (default 16 MiB); larger
	// bodies are refused with 413.
	MaxBodyBytes int64
}

// RunStats summarizes one version's verification against the warm cache.
type RunStats struct {
	// CacheHits is the number of equivalence classes served from the
	// warm STF cache; CacheMisses the number symbolically re-executed.
	CacheHits, CacheMisses int64
}

// RunResult is the outcome of verifying one version.
type RunResult struct {
	// Version identifies the immutable spec version this result belongs
	// to. Every API response cites exactly one version.
	Version int64
	Holds   bool
	// Text is the canonical report rendering (canon.FormatReport) — the
	// byte-identity contract surface.
	Text   string
	Report *yu.Report
	Stats  RunStats
	// Err is the verification error, if the run was cut short.
	Err error
}

// version is one immutable published state: canonical spec text, the
// parsed spec, and the lazily computed verification result. All fields
// except the once-guarded result are written before publication and never
// after.
type version struct {
	id   int64
	text string
	spec *config.Spec
	srv  *Server

	once   sync.Once
	done   chan struct{}
	result RunResult
}

// Server is the resident verification service. Mutations (LoadSpecText,
// ApplyDeltas) serialize on an internal mutex and publish new versions
// atomically; reads (Report, SpecText) are lock-free on the version
// pointer and safe to call concurrently with mutations.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	store *stfStore

	mu     sync.Mutex // serializes mutations and persistence
	cur    atomic.Pointer[version]
	nextID atomic.Int64
	wal    *wal

	inflight chan struct{}

	hintsMu sync.Mutex
	hints   map[string]float64

	everRan atomic.Bool
}

// NewServer creates a server with no loaded spec. If cfg.StatePath is
// set, persisted warm state is loaded best-effort (corrupt state logs a
// warning and starts cold, like a corrupt cost-hints file); the delta
// WAL is attached and replayed on the first LoadSpecText.
func NewServer(cfg Config) *Server {
	if cfg.CacheLimit <= 0 {
		cfg.CacheLimit = 4096
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.New()
	}
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		store:    newSTFStore(cfg.CacheLimit),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		hints:    make(map[string]float64),
	}
	for _, name := range obs.ServeCounterNames {
		reg.Counter(name)
	}
	if cfg.StatePath != "" {
		s.loadState()
	}
	return s
}

// Metrics exposes the server's registry.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Version returns the current version ID (0 before the first load).
func (s *Server) Version() int64 {
	if v := s.cur.Load(); v != nil {
		return v.id
	}
	return 0
}

// SpecText returns the current canonical spec text and its version.
func (s *Server) SpecText() (string, int64) {
	v := s.cur.Load()
	if v == nil {
		return "", 0
	}
	return v.text, v.id
}

// LoadSpecText parses, canonicalizes, and publishes a full specification,
// returning the ID of the version now current. The warm cache is kept:
// content hashing makes stale entries unreachable and shared ones
// reusable.
//
// With a state directory, the first load after construction is the
// recovery point: if the delta WAL on disk is bound to this base text,
// every committed batch is replayed on top of it (returning the replayed
// head's ID — the exact pre-crash version). Any later load, and any
// first load with a different base, resets the WAL: a full reload
// supersedes the journal.
func (s *Server) LoadSpecText(text string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, err := s.buildVersion(text)
	if err != nil {
		return 0, err
	}
	first := s.cur.Load() == nil
	s.publish(v)
	s.reg.Counter("serve.reloads").Inc()
	if s.cfg.StatePath != "" {
		if s.wal == nil {
			w, werr := openWAL(s.cfg.StatePath)
			if werr != nil {
				log.Printf("yud: delta WAL: %v; running without crash recovery", werr)
				s.reg.Counter("serve.wal_errors").Inc()
			}
			s.wal = w
		}
		if s.wal != nil {
			if first {
				s.recoverWAL(v)
			} else if err := s.wal.reset(v.text); err != nil {
				log.Printf("yud: resetting delta WAL: %v; closing it", err)
				s.reg.Counter("serve.wal_errors").Inc()
				s.wal.close()
				s.wal = nil
			}
		}
	}
	return s.Version(), nil
}

// recoverWAL replays the journal on top of the just-published base
// version (caller holds s.mu). Replay is exact or it stops: every
// record's deltas must re-apply and reproduce the canonical text whose
// checksum was journaled with the batch; the first record that cannot —
// torn tail, corruption, or divergence — truncates the journal there, so
// recovery yields precisely the longest committed prefix.
func (s *Server) recoverWAL(base *version) {
	recs, offs, matched, torn, err := s.wal.load(base.text)
	if err != nil {
		log.Printf("yud: reading delta WAL: %v; resetting it", err)
		s.reg.Counter("serve.wal_errors").Inc()
		s.resetOrDropWAL(base.text)
		return
	}
	if torn {
		log.Printf("yud: delta WAL had a torn or corrupt tail; truncated")
		s.reg.Counter("serve.wal_truncated").Inc()
	}
	if !matched {
		s.resetOrDropWAL(base.text)
		return
	}
	replayed := 0
	for i, rec := range recs {
		bad := func(why string, args ...any) {
			log.Printf("yud: delta WAL replay stopped at record %d: "+why, append([]any{i}, args...)...)
			s.reg.Counter("serve.wal_truncated").Inc()
			if terr := s.wal.truncateTo(offs[i]); terr != nil {
				log.Printf("yud: truncating delta WAL: %v; closing it", terr)
				s.wal.close()
				s.wal = nil
			}
		}
		if err := fault.Here("serve.wal.replay"); err != nil {
			bad("%v", err)
			return
		}
		cur := s.cur.Load()
		text, err := ApplyToText(cur.text, rec.Deltas)
		if err != nil {
			bad("%v", err)
			return
		}
		if uint32(len(text)) != rec.ResultLen || walTextSum(text) != rec.ResultSum {
			bad("replayed text does not match journaled checksum")
			return
		}
		v, err := s.buildVersion(text)
		if err != nil {
			bad("%v", err)
			return
		}
		s.publish(v)
		replayed++
	}
	if replayed > 0 {
		log.Printf("yud: replayed %d delta batch(es) from the WAL; current version is the pre-crash state", replayed)
		s.reg.Counter("serve.wal_replayed").Add(int64(replayed))
	}
}

func (s *Server) resetOrDropWAL(baseText string) {
	if err := s.wal.reset(baseText); err != nil {
		log.Printf("yud: resetting delta WAL: %v; closing it", err)
		s.reg.Counter("serve.wal_errors").Inc()
		s.wal.close()
		s.wal = nil
	}
}

// ApplyToText applies a delta batch to a canonical spec text and returns
// the canonical text of the result — the pure mutation function shared
// by ApplyDeltas, WAL replay, and the chaos oracle, so every path that
// materializes "base + deltas" agrees byte-for-byte.
func ApplyToText(text string, deltas []Delta) (string, error) {
	spec, err := config.ParseSpecString(text)
	if err != nil {
		return "", fmt.Errorf("serve: current spec no longer parses: %w", err)
	}
	for i, d := range deltas {
		if err := applyDelta(spec, d); err != nil {
			return "", fmt.Errorf("serve: delta %d (%s): %w", i, d.Op, err)
		}
	}
	out, err := canon.FormatSpec(spec)
	if err != nil {
		return "", fmt.Errorf("serve: mutated spec is not canonicalizable: %w", err)
	}
	return out, nil
}

// ApplyDeltas applies a sequence of deltas to the current spec as one
// atomic mutation: all apply, or the current version stays. With a state
// directory the batch is journaled and fsync'd before it is published —
// the journal append is the commit point, so a crash on either side of
// it leaves the batch either fully recoverable or fully absent. Returns
// the new version ID.
func (s *Server) ApplyDeltas(deltas []Delta) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reject := func(err error) (int64, error) {
		s.reg.Counter("serve.deltas_rejected").Add(int64(len(deltas)))
		return 0, err
	}
	cur := s.cur.Load()
	if cur == nil {
		return reject(fmt.Errorf("serve: no specification loaded"))
	}
	if err := fault.Here("serve.delta.apply"); err != nil {
		return reject(err)
	}
	text, err := ApplyToText(cur.text, deltas)
	if err != nil {
		return reject(err)
	}
	v, err := s.buildVersion(text)
	if err != nil {
		return reject(err)
	}
	if s.wal != nil {
		if err := s.wal.append(deltas, v.text); err != nil {
			s.reg.Counter("serve.wal_errors").Inc()
			return reject(fmt.Errorf("serve: journaling delta batch: %w", err))
		}
		s.reg.Counter("serve.wal_records").Inc()
	}
	// Crash-only injection point: the batch is durable but unpublished —
	// recovery must still surface it (any error kind here is ignored).
	fault.Here("serve.wal.publish")
	s.publish(v)
	s.reg.Counter("serve.deltas_applied").Add(int64(len(deltas)))
	return v.id, nil
}

// buildVersion parses and canonicalizes text into an unpublished version.
// The canonical text is the version identity; a spec the canonical
// renderer cannot express (e.g. asymmetric hand-written link costs) falls
// back to the raw text.
func (s *Server) buildVersion(text string) (*version, error) {
	spec, err := config.ParseSpecString(text)
	if err != nil {
		return nil, err
	}
	if ct, cerr := canon.FormatSpec(spec); cerr == nil {
		cspec, perr := config.ParseSpecString(ct)
		if perr != nil {
			return nil, fmt.Errorf("serve: canonical spec does not re-parse: %w", perr)
		}
		text, spec = ct, cspec
	}
	return &version{id: s.nextID.Add(1), text: text, spec: spec, srv: s, done: make(chan struct{})}, nil
}

func (s *Server) publish(v *version) {
	s.cur.Store(v)
	s.reg.Counter("serve.versions").Inc()
}

// Report verifies the current version (at most once — concurrent callers
// share the computation) and returns its result.
func (s *Server) Report() (RunResult, error) {
	return s.ReportCtx(context.Background())
}

// ReportCtx is Report bounded by a caller context: it waits for the
// pinned version's (shared, at-most-once) verification until ctx
// expires. The computation itself is not canceled by ctx — it keeps its
// own VerifyTimeout budget and later callers reuse it.
func (s *Server) ReportCtx(ctx context.Context) (RunResult, error) {
	v := s.cur.Load()
	if v == nil {
		return RunResult{}, fmt.Errorf("serve: no specification loaded")
	}
	v.start()
	select {
	case <-v.done:
		return v.result, nil
	case <-ctx.Done():
		s.reg.Counter("serve.timeouts").Inc()
		return RunResult{}, fmt.Errorf("serve: waiting for verification of version %d: %w", v.id, ctx.Err())
	}
}

// start kicks off the version's verification exactly once, on its own
// goroutine so callers can bound their wait.
func (v *version) start() {
	v.once.Do(func() {
		go func() {
			defer close(v.done)
			v.compute()
		}()
	})
}

// compute runs the version's verification. Panics are contained: the
// version's result carries the error and the daemon keeps serving
// (worker panics are already contained by governance — this is the
// serve-layer backstop, exercised by fault injection).
func (v *version) compute() {
	s := v.srv
	defer func() {
		if r := recover(); r != nil {
			s.reg.Counter("serve.panics").Inc()
			v.result = RunResult{Version: v.id, Err: fmt.Errorf("serve: verification panic: %v", r)}
		}
	}()
	sp := s.reg.Span("verify")
	defer sp.End()
	if err := fault.Here("serve.verify.run"); err != nil {
		v.result = RunResult{Version: v.id, Err: err}
		return
	}
	ctx := context.Background()
	if s.cfg.VerifyTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.VerifyTimeout)
		defer cancel()
	}
	rc := newRunCache(s)
	rep, err := yu.FromSpec(v.spec).Verify(yu.VerifyOptions{
		K:              s.cfg.K,
		Mode:           s.cfg.Mode,
		ModeSet:        s.cfg.ModeSet,
		OverloadFactor: s.cfg.OverloadFactor,
		Workers:        1,
		Ctx:            ctx,
		Obs:            s.reg,
		CostHints:      s.copyHints(),
		STFCache:       rc,
	})
	v.result = RunResult{
		Version: v.id,
		Report:  rep,
		Err:     err,
		Stats:   RunStats{CacheHits: rc.hits, CacheMisses: rc.misses},
	}
	if rep != nil {
		v.result.Holds = rep.Holds
		v.result.Text = canon.FormatReport(v.spec.Net, rep)
		s.mergeHints(rep.CostHints)
	}
	if err == nil {
		s.everRan.Store(true)
	}
}

func (s *Server) copyHints() map[string]float64 {
	s.hintsMu.Lock()
	defer s.hintsMu.Unlock()
	out := make(map[string]float64, len(s.hints))
	for k, c := range s.hints {
		out[k] = c
	}
	return out
}

func (s *Server) mergeHints(hints map[string]float64) {
	s.hintsMu.Lock()
	for k, c := range hints {
		if c > 0 {
			s.hints[k] = c
		}
	}
	s.hintsMu.Unlock()
}
