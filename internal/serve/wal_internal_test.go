// White-box tests of the WAL framing: torn-tail truncation, base
// binding, and the fuzz target over arbitrary log bytes.
package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func walDeltas(prefix string) []Delta {
	return []Delta{{Op: "add-static", Router: "A", Prefix: prefix, Discard: true}}
}

func TestWALAppendLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	const base = "spec v1"
	if err := w.reset(base); err != nil {
		t.Fatal(err)
	}
	if err := w.append(walDeltas("1.0.0.0/8"), "spec v2"); err != nil {
		t.Fatal(err)
	}
	if err := w.append(walDeltas("2.0.0.0/8"), "spec v3"); err != nil {
		t.Fatal(err)
	}
	w.close()

	w2, err := openWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	recs, offs, matched, torn, err := w2.load(base)
	if err != nil || !matched || torn {
		t.Fatalf("load: recs=%d matched=%v torn=%v err=%v", len(recs), matched, torn, err)
	}
	if len(recs) != 2 || len(offs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[1].ResultSum != walTextSum("spec v3") || recs[1].ResultLen != uint32(len("spec v3")) {
		t.Fatal("record 1 does not pin its result text")
	}
	if recs[0].Deltas[0].Prefix != "1.0.0.0/8" {
		t.Fatalf("record 0 deltas = %+v", recs[0].Deltas)
	}
	// A different base must not match (stale journal from another spec).
	if _, _, matched, _, err := w2.load("other spec"); err != nil || matched {
		t.Fatalf("foreign base matched=%v err=%v", matched, err)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	const base = "base"
	if err := w.reset(base); err != nil {
		t.Fatal(err)
	}
	if err := w.append(walDeltas("1.0.0.0/8"), "one"); err != nil {
		t.Fatal(err)
	}
	goodEnd := w.off
	if err := w.append(walDeltas("2.0.0.0/8"), "two"); err != nil {
		t.Fatal(err)
	}
	w.close()

	path := filepath.Join(dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the second record mid-frame — what a crash mid-write leaves.
	for _, cut := range []int64{goodEnd + 2, goodEnd + (w.off-goodEnd)/2, w.off - 1} {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, err := openWAL(dir)
		if err != nil {
			t.Fatal(err)
		}
		recs, _, matched, torn, err := w2.load(base)
		if err != nil || !matched {
			t.Fatalf("cut %d: matched=%v err=%v", cut, matched, err)
		}
		if !torn {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
		if len(recs) != 1 || recs[0].ResultSum != walTextSum("one") {
			t.Fatalf("cut %d: recovered %d records", cut, len(recs))
		}
		if fi, _ := w2.f.Stat(); fi.Size() != goodEnd {
			t.Fatalf("cut %d: tail not truncated (size %d, want %d)", cut, fi.Size(), goodEnd)
		}
		// The repaired log must accept appends again.
		if err := w2.append(walDeltas("3.0.0.0/8"), "three"); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		w2.close()
	}
}

// FuzzWAL feeds arbitrary bytes as an on-disk journal: load must never
// panic, and whatever it accepts must survive a truncate-and-append
// cycle (the repair path a recovering daemon runs).
func FuzzWAL(f *testing.F) {
	const base = "fuzz base spec"
	valid := func(build func(w *wal)) []byte {
		dir := f.TempDir()
		w, err := openWAL(dir)
		if err != nil {
			f.Fatal(err)
		}
		if err := w.reset(base); err != nil {
			f.Fatal(err)
		}
		build(w)
		w.close()
		data, err := os.ReadFile(filepath.Join(dir, walFile))
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	empty := valid(func(w *wal) {})
	one := valid(func(w *wal) {
		w.append(walDeltas("10.0.0.0/8"), "result one")
	})
	two := valid(func(w *wal) {
		w.append(walDeltas("10.0.0.0/8"), "result one")
		w.append([]Delta{{Op: "set-link-cost", A: "A", B: "B", Cost: 7}}, "result two")
	})
	f.Add(empty)
	f.Add(one)
	f.Add(two)
	f.Add(one[:len(one)-3])               // torn checksum
	f.Add(append(bytes.Clone(two), 0, 0)) // trailing garbage
	f.Add([]byte("YUWAL1\nnot really a log"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, walFile)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := openWAL(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer w.close()
		recs, offs, matched, _, err := w.load(base)
		if err != nil {
			return // unreadable logs are rejected, never panicked on
		}
		if len(recs) != len(offs) {
			t.Fatalf("%d records but %d offsets", len(recs), len(offs))
		}
		if !matched {
			if err := w.reset(base); err != nil {
				t.Fatalf("reset after mismatch: %v", err)
			}
		}
		// The accepted log must be appendable, and a reload must see
		// exactly the accepted records plus the new one.
		if err := w.append(walDeltas("99.0.0.0/8"), "appended"); err != nil {
			t.Fatalf("append after load: %v", err)
		}
		want := 1
		if matched {
			want += len(recs)
		}
		again, _, m2, torn2, err := w.load(base)
		if err != nil || !m2 || torn2 {
			t.Fatalf("reload: matched=%v torn=%v err=%v", m2, torn2, err)
		}
		if len(again) != want {
			t.Fatalf("reload found %d records, want %d", len(again), want)
		}
	})
}
