// Warm-state persistence: the STF cache (through the mtbdd.Snapshot
// codec) and cost hints are written to cfg.StatePath so a restarted
// daemon resumes warm. Loading is best-effort — corrupt or stale state
// logs a warning and starts cold, mirroring core.LoadCostHints: warm
// state is a latency aid, never a correctness input (content-hash keys
// make a wrong entry unreachable, and Lookup shape-checks survivors).
package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"

	"github.com/yu-verify/yu/internal/core"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/topo"
)

const (
	warmMagic      = "YUWARM1\n"
	warmCacheFile  = "stfcache.bin"
	warmHintsFile  = "costhints.json"
	maxWarmEntries = 1 << 20
	maxWarmLinks   = 1 << 24
	maxWarmIters   = 1 << 24
)

// SaveState persists the warm cache and cost hints to cfg.StatePath.
// No-op (nil) when persistence is disabled.
func (s *Server) SaveState() error {
	if s.cfg.StatePath == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(s.cfg.StatePath, 0o755); err != nil {
		return err
	}
	if err := core.SaveCostHints(filepath.Join(s.cfg.StatePath, warmHintsFile), s.copyHints()); err != nil {
		return err
	}
	path := filepath.Join(s.cfg.StatePath, warmCacheFile)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	err = s.store.encode(w)
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// loadState restores persisted warm state. Never fails the caller.
func (s *Server) loadState() {
	hints, err := core.LoadCostHints(filepath.Join(s.cfg.StatePath, warmHintsFile))
	if err != nil {
		log.Printf("yud: cost hints: %v; starting without", err)
	} else {
		s.hints = hints
	}
	path := filepath.Join(s.cfg.StatePath, warmCacheFile)
	f, err := os.Open(path)
	if err != nil {
		if !os.IsNotExist(err) {
			log.Printf("yud: warm cache %s: %v; starting cold", path, err)
		}
		return
	}
	defer f.Close()
	if err := s.store.decode(bufio.NewReader(f), s.cfg.CacheLimit); err != nil {
		log.Printf("yud: warm cache %s: %v; starting cold", path, err)
		s.store.mu.Lock()
		s.store.entries = make(map[cacheKey]*stfEntry)
		s.store.mu.Unlock()
	}
}

// encode writes the store: magic, entry count, then per entry the key,
// STF shape, and the embedded MTBDD snapshot frame. Keys are written in
// sorted order so equal stores serialize identically.
func (st *stfStore) encode(w io.Writer) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, err := io.WriteString(w, warmMagic); err != nil {
		return err
	}
	keys := make([]cacheKey, 0, len(st.entries))
	for k := range st.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	if err := binary.Write(w, binary.LittleEndian, uint32(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		e := st.entries[k]
		hdr := []uint64{k.a, k.b}
		if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
			return err
		}
		fixed := []uint32{uint32(e.iterations), e.delivered, e.dropped, e.inFlight, uint32(len(e.links))}
		if err := binary.Write(w, binary.LittleEndian, fixed); err != nil {
			return err
		}
		for i, l := range e.links {
			if err := binary.Write(w, binary.LittleEndian, int32(l)); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, e.linkRoots[i]); err != nil {
				return err
			}
		}
		if err := e.snap.Encode(w); err != nil {
			return err
		}
	}
	return nil
}

// decode replaces the store's contents from an encode stream, validating
// every count and root index before accepting an entry.
func (st *stfStore) decode(r io.Reader, limit int) error {
	magic := make([]byte, len(warmMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("magic: %w", err)
	}
	if string(magic) != warmMagic {
		return fmt.Errorf("bad magic %q", magic)
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("count: %w", err)
	}
	if count > maxWarmEntries {
		return fmt.Errorf("entry count %d exceeds limit", count)
	}
	entries := make(map[cacheKey]*stfEntry, count)
	for i := uint32(0); i < count; i++ {
		var k cacheKey
		if err := binary.Read(r, binary.LittleEndian, &k.a); err != nil {
			return fmt.Errorf("entry %d key: %w", i, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &k.b); err != nil {
			return fmt.Errorf("entry %d key: %w", i, err)
		}
		var fixed [5]uint32
		if err := binary.Read(r, binary.LittleEndian, &fixed); err != nil {
			return fmt.Errorf("entry %d header: %w", i, err)
		}
		e := &stfEntry{
			iterations: int(fixed[0]),
			delivered:  fixed[1],
			dropped:    fixed[2],
			inFlight:   fixed[3],
		}
		nlinks := fixed[4]
		if e.iterations < 0 || e.iterations > maxWarmIters {
			return fmt.Errorf("entry %d: implausible iteration count %d", i, e.iterations)
		}
		if nlinks > maxWarmLinks {
			return fmt.Errorf("entry %d: link count %d exceeds limit", i, nlinks)
		}
		e.links = make([]topo.DirLinkID, nlinks)
		e.linkRoots = make([]uint32, nlinks)
		for j := uint32(0); j < nlinks; j++ {
			var l int32
			if err := binary.Read(r, binary.LittleEndian, &l); err != nil {
				return fmt.Errorf("entry %d link %d: %w", i, j, err)
			}
			if l < 0 {
				return fmt.Errorf("entry %d link %d: negative id", i, j)
			}
			if j > 0 && topo.DirLinkID(l) <= e.links[j-1] {
				return fmt.Errorf("entry %d link %d: ids not ascending", i, j)
			}
			e.links[j] = topo.DirLinkID(l)
			if err := binary.Read(r, binary.LittleEndian, &e.linkRoots[j]); err != nil {
				return fmt.Errorf("entry %d link root %d: %w", i, j, err)
			}
		}
		snap, err := mtbdd.DecodeSnapshot(r)
		if err != nil {
			return fmt.Errorf("entry %d snapshot: %w", i, err)
		}
		n := uint32(snap.Len())
		for _, root := range []uint32{e.delivered, e.dropped, e.inFlight} {
			if root >= n {
				return fmt.Errorf("entry %d: root index %d out of range", i, root)
			}
		}
		for j, root := range e.linkRoots {
			if root >= n {
				return fmt.Errorf("entry %d link %d: root index %d out of range", i, j, root)
			}
		}
		e.snap = snap
		if len(entries) < limit {
			entries[k] = e
		}
	}
	st.mu.Lock()
	st.entries = entries
	st.mu.Unlock()
	return nil
}
