// Warm-state persistence: the STF cache (through the mtbdd.Snapshot
// codec) and cost hints are written to cfg.StatePath so a restarted
// daemon resumes warm. Writes are crash-safe — tmp file, fsync, atomic
// rename, directory fsync — and every YUWARM1 entry is a CRC-framed
// block, so a torn or bit-flipped file is detected, logged, and ignored.
// Loading is best-effort: corrupt or stale state starts cold, mirroring
// core.LoadCostHints — warm state is a latency aid, never a correctness
// input (content-hash keys make a wrong entry unreachable, and Lookup
// shape-checks survivors).
package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"

	"github.com/yu-verify/yu/internal/core"
	"github.com/yu-verify/yu/internal/fault"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/topo"
)

const (
	warmMagic      = "YUWARM1\n"
	warmCacheFile  = "stfcache.bin"
	warmHintsFile  = "costhints.json"
	maxWarmEntries = 1 << 20
	maxWarmLinks   = 1 << 24
	maxWarmIters   = 1 << 24
	maxWarmFrame   = 1 << 28
)

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable — without this, a crash after rename can resurrect the old
// file (or nothing) on some filesystems.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// atomicWrite writes a file crash-safely: tmp file in the same
// directory, fsync, close, rename over path, fsync the directory.
func atomicWrite(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	err = write(w)
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = fault.Here("serve.persist.rename")
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// SaveState persists the warm cache and cost hints to cfg.StatePath.
// No-op (nil) when persistence is disabled.
func (s *Server) SaveState() error {
	if s.cfg.StatePath == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := fault.Here("serve.persist.begin"); err != nil {
		return err
	}
	if err := os.MkdirAll(s.cfg.StatePath, 0o755); err != nil {
		return err
	}
	if err := core.SaveCostHints(filepath.Join(s.cfg.StatePath, warmHintsFile), s.copyHints()); err != nil {
		return err
	}
	return atomicWrite(filepath.Join(s.cfg.StatePath, warmCacheFile), s.store.encode)
}

// loadState restores persisted warm state. Never fails the caller.
func (s *Server) loadState() {
	hints, err := core.LoadCostHints(filepath.Join(s.cfg.StatePath, warmHintsFile))
	if err != nil {
		log.Printf("yud: cost hints: %v; starting without", err)
	} else {
		s.hints = hints
	}
	path := filepath.Join(s.cfg.StatePath, warmCacheFile)
	f, err := os.Open(path)
	if err != nil {
		if !os.IsNotExist(err) {
			log.Printf("yud: warm cache %s: %v; starting cold", path, err)
		}
		return
	}
	defer f.Close()
	if err := s.store.decode(bufio.NewReader(f), s.cfg.CacheLimit); err != nil {
		log.Printf("yud: warm cache %s: %v; starting cold", path, err)
		s.store.mu.Lock()
		s.store.entries = make(map[cacheKey]*stfEntry)
		s.store.mu.Unlock()
	}
}

// encode writes the store: magic, entry count, then one CRC-framed block
// per entry (u32 length | payload | u32 crc32), the payload holding the
// key, STF shape, and the embedded MTBDD snapshot frame. Keys are
// written in sorted order so equal stores serialize identically.
func (st *stfStore) encode(w io.Writer) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, err := io.WriteString(w, warmMagic); err != nil {
		return err
	}
	keys := make([]cacheKey, 0, len(st.entries))
	for k := range st.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	if err := binary.Write(w, binary.LittleEndian, uint32(len(keys))); err != nil {
		return err
	}
	var buf bytes.Buffer
	for _, k := range keys {
		buf.Reset()
		if err := encodeEntry(&buf, k, st.entries[k]); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(buf.Len())); err != nil {
			return err
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, crc32.ChecksumIEEE(buf.Bytes())); err != nil {
			return err
		}
	}
	return nil
}

func encodeEntry(w io.Writer, k cacheKey, e *stfEntry) error {
	if err := binary.Write(w, binary.LittleEndian, []uint64{k.a, k.b}); err != nil {
		return err
	}
	fixed := []uint32{uint32(e.iterations), e.delivered, e.dropped, e.inFlight, uint32(len(e.links))}
	if err := binary.Write(w, binary.LittleEndian, fixed); err != nil {
		return err
	}
	for i, l := range e.links {
		if err := binary.Write(w, binary.LittleEndian, int32(l)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, e.linkRoots[i]); err != nil {
			return err
		}
	}
	return e.snap.Encode(w)
}

// decode replaces the store's contents from an encode stream: each
// entry's frame checksum is verified before its payload is parsed, and
// every count and root index is validated before an entry is accepted.
func (st *stfStore) decode(r io.Reader, limit int) error {
	magic := make([]byte, len(warmMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("magic: %w", err)
	}
	if string(magic) != warmMagic {
		return fmt.Errorf("bad magic %q", magic)
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("count: %w", err)
	}
	if count > maxWarmEntries {
		return fmt.Errorf("entry count %d exceeds limit", count)
	}
	entries := make(map[cacheKey]*stfEntry, count)
	for i := uint32(0); i < count; i++ {
		var flen uint32
		if err := binary.Read(r, binary.LittleEndian, &flen); err != nil {
			return fmt.Errorf("entry %d frame length: %w", i, err)
		}
		if flen > maxWarmFrame {
			return fmt.Errorf("entry %d: frame length %d exceeds limit", i, flen)
		}
		payload := make([]byte, flen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("entry %d frame: %w", i, err)
		}
		var sum uint32
		if err := binary.Read(r, binary.LittleEndian, &sum); err != nil {
			return fmt.Errorf("entry %d checksum: %w", i, err)
		}
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return fmt.Errorf("entry %d: checksum mismatch (frame %08x, computed %08x)", i, sum, got)
		}
		k, e, err := decodeEntry(bytes.NewReader(payload))
		if err != nil {
			return fmt.Errorf("entry %d: %w", i, err)
		}
		if len(entries) < limit {
			entries[k] = e
		}
	}
	st.mu.Lock()
	st.entries = entries
	st.mu.Unlock()
	return nil
}

func decodeEntry(r io.Reader) (cacheKey, *stfEntry, error) {
	var k cacheKey
	if err := binary.Read(r, binary.LittleEndian, &k.a); err != nil {
		return k, nil, fmt.Errorf("key: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &k.b); err != nil {
		return k, nil, fmt.Errorf("key: %w", err)
	}
	var fixed [5]uint32
	if err := binary.Read(r, binary.LittleEndian, &fixed); err != nil {
		return k, nil, fmt.Errorf("header: %w", err)
	}
	e := &stfEntry{
		iterations: int(fixed[0]),
		delivered:  fixed[1],
		dropped:    fixed[2],
		inFlight:   fixed[3],
	}
	nlinks := fixed[4]
	if e.iterations < 0 || e.iterations > maxWarmIters {
		return k, nil, fmt.Errorf("implausible iteration count %d", e.iterations)
	}
	if nlinks > maxWarmLinks {
		return k, nil, fmt.Errorf("link count %d exceeds limit", nlinks)
	}
	e.links = make([]topo.DirLinkID, nlinks)
	e.linkRoots = make([]uint32, nlinks)
	for j := uint32(0); j < nlinks; j++ {
		var l int32
		if err := binary.Read(r, binary.LittleEndian, &l); err != nil {
			return k, nil, fmt.Errorf("link %d: %w", j, err)
		}
		if l < 0 {
			return k, nil, fmt.Errorf("link %d: negative id", j)
		}
		if j > 0 && topo.DirLinkID(l) <= e.links[j-1] {
			return k, nil, fmt.Errorf("link %d: ids not ascending", j)
		}
		e.links[j] = topo.DirLinkID(l)
		if err := binary.Read(r, binary.LittleEndian, &e.linkRoots[j]); err != nil {
			return k, nil, fmt.Errorf("link root %d: %w", j, err)
		}
	}
	snap, err := mtbdd.DecodeSnapshot(r)
	if err != nil {
		return k, nil, fmt.Errorf("snapshot: %w", err)
	}
	n := uint32(snap.Len())
	for _, root := range []uint32{e.delivered, e.dropped, e.inFlight} {
		if root >= n {
			return k, nil, fmt.Errorf("root index %d out of range", root)
		}
	}
	for j, root := range e.linkRoots {
		if root >= n {
			return k, nil, fmt.Errorf("link %d: root index %d out of range", j, root)
		}
	}
	e.snap = snap
	return k, e, nil
}
