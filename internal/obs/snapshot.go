package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// CacheCounters is one cache's cumulative hit/miss tally. The counters
// are cumulative over the manager's lifetime: ClearCaches (and GC,
// which calls it) drops cache *contents*, never the counters.
type CacheCounters struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// ManagerStats is one MTBDD manager's end-of-life stats snapshot,
// mirrored from mtbdd.Stats without importing it (obs is a leaf
// package). Caches is keyed by cache name: apply, kreduce, neg, range,
// import, fused.
type ManagerStats struct {
	Name         string                   `json:"name"`
	Created      int                      `json:"created"`
	Live         int                      `json:"live"`
	PeakLive     int                      `json:"peak_live"`
	GCRuns       uint64                   `json:"gc_runs"`
	KReduceCalls uint64                   `json:"kreduce_calls"`
	FusionCuts   uint64                   `json:"fusion_cuts"`
	MaxProbe     int                      `json:"max_probe"`
	Caches       map[string]CacheCounters `json:"caches"`
}

// PhaseStat is one aggregated phase span. Paths are slash-separated
// ("check/kreduce" nests under "check"); Count is how many spans
// completed under the path.
type PhaseStat struct {
	Path  string  `json:"path"`
	MS    float64 `json:"ms"`
	Count int64   `json:"count"`
}

// TimerStat is one named timer's aggregate.
type TimerStat struct {
	MS    float64 `json:"ms"`
	Count int64   `json:"count"`
}

// Snapshot is the serializable view of a Registry, the payload behind
// `yu -metrics=json` and the BENCH_*.json metrics field.
type Snapshot struct {
	Phases   []PhaseStat              `json:"phases"`
	Counters map[string]int64         `json:"counters"`
	TimersMS map[string]TimerStat     `json:"timers"`
	Managers []ManagerStats           `json:"managers"`
	Caches   map[string]CacheCounters `json:"caches"`
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes a human-oriented rendering: the phase tree, cache
// efficacy table, per-manager node counts, then counters and timers in
// sorted order.
func (s *Snapshot) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "phases:\n"); err != nil {
		return err
	}
	for _, p := range s.Phases {
		if _, err := fmt.Fprintf(w, "  %-24s %10.1f ms  x%d\n", p.Path, p.MS, p.Count); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "caches (cumulative, all managers):\n")
	for _, name := range knownCaches {
		cc := s.Caches[name]
		total := cc.Hits + cc.Misses
		rate := 0.0
		if total > 0 {
			rate = 100 * float64(cc.Hits) / float64(total)
		}
		fmt.Fprintf(w, "  %-8s hits %12d  misses %12d  (%.1f%% hit)\n", name, cc.Hits, cc.Misses, rate)
	}
	if len(s.Managers) > 0 {
		fmt.Fprintf(w, "managers:\n")
		for _, m := range s.Managers {
			fmt.Fprintf(w, "  %-20s created %d live %d peak %d gc %d kreduce-calls %d\n",
				m.Name, m.Created, m.Live, m.PeakLive, m.GCRuns, m.KReduceCalls)
		}
	}
	if len(s.Counters) > 0 {
		fmt.Fprintf(w, "counters:\n")
		for _, k := range sortedKeys(s.Counters) {
			fmt.Fprintf(w, "  %-32s %d\n", k, s.Counters[k])
		}
	}
	if len(s.TimersMS) > 0 {
		fmt.Fprintf(w, "timers:\n")
		for _, k := range sortedKeys(s.TimersMS) {
			t := s.TimersMS[k]
			fmt.Fprintf(w, "  %-32s %10.1f ms  x%d\n", k, t.MS, t.Count)
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
