package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// A nil registry must be a total no-op: every accessor returns a nil
// typed pointer whose methods are themselves no-ops. This is the off
// switch the whole pipeline relies on.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(5)
	r.Counter("x").Inc()
	r.Timer("t").Add(time.Second)
	sp := r.Span("phase")
	sp.Child("sub").End()
	sp.End()
	r.AddPhase("p", time.Second)
	r.RecordManager(ManagerStats{Name: "m"})
	r.Log().Printf("dropped")
	r.Log().Once("k", "dropped")
	if got := r.Counter("x").Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}
	if got := r.Timer("t").Total(); got != 0 {
		t.Fatalf("nil timer total = %v, want 0", got)
	}
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("nil registry snapshot = %+v, want nil", snap)
	}
}

func TestCountersAndTimers(t *testing.T) {
	r := New()
	c := r.Counter("flows")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	if r.Counter("flows") != c {
		t.Fatal("Counter must memoize by name")
	}
	tm := r.Timer("kreduce")
	tm.Add(2 * time.Millisecond)
	tm.Add(3 * time.Millisecond)
	if tm.Total() != 5*time.Millisecond || tm.Count() != 2 {
		t.Fatalf("timer = %v x%d, want 5ms x2", tm.Total(), tm.Count())
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}

func TestSpansAggregateByPath(t *testing.T) {
	r := New()
	for i := 0; i < 3; i++ {
		sp := r.Span("check")
		ch := sp.Child("kreduce")
		ch.End()
		sp.End()
	}
	snap := r.Snapshot()
	if len(snap.Phases) != 2 {
		t.Fatalf("phases = %+v, want 2 aggregated paths", snap.Phases)
	}
	// Paths register in first-End order (the child span ends before its
	// parent), so only the aggregate counts are asserted here, not the
	// slice order.
	byPath := map[string]PhaseStat{}
	for _, p := range snap.Phases {
		byPath[p.Path] = p
	}
	if byPath["check"].Count != 3 || byPath["check/kreduce"].Count != 3 {
		t.Fatalf("span counts = %+v, want 3 each", byPath)
	}
}

func TestSnapshotEmitsAllKnownCaches(t *testing.T) {
	r := New()
	r.RecordManager(ManagerStats{
		Name:   "primary",
		Caches: map[string]CacheCounters{"apply": {Hits: 10, Misses: 2}},
	})
	r.RecordManager(ManagerStats{
		Name:   "shard.0",
		Caches: map[string]CacheCounters{"apply": {Hits: 5, Misses: 1}, "kreduce": {Hits: 7}},
	})
	snap := r.Snapshot()
	for _, name := range []string{"apply", "kreduce", "neg", "range", "import", "fused"} {
		if _, ok := snap.Caches[name]; !ok {
			t.Fatalf("snapshot missing cache %q: %+v", name, snap.Caches)
		}
	}
	if got := snap.Caches["apply"]; got.Hits != 15 || got.Misses != 3 {
		t.Fatalf("apply aggregate = %+v, want 15/3", got)
	}
	if got := snap.Caches["kreduce"]; got.Hits != 7 {
		t.Fatalf("kreduce aggregate = %+v, want 7 hits", got)
	}
	if snap.Managers[0].Name != "primary" || snap.Managers[1].Name != "shard.0" {
		t.Fatalf("managers not sorted by name: %+v", snap.Managers)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("worker.0.flows_executed").Add(12)
	r.Timer("check/kreduce").Add(time.Millisecond)
	r.Span("execute").End()
	r.RecordManager(ManagerStats{Name: "primary", Created: 100, PeakLive: 80,
		Caches: map[string]CacheCounters{"neg": {Hits: 1, Misses: 2}}})

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, buf.String())
	}
	if back.Counters["worker.0.flows_executed"] != 12 {
		t.Fatalf("round-trip lost counter: %+v", back.Counters)
	}
	if len(back.Caches) != 6 {
		t.Fatalf("round-trip caches = %d keys, want 6", len(back.Caches))
	}
	if back.Managers[0].Caches["neg"].Misses != 2 {
		t.Fatalf("round-trip lost manager cache stats: %+v", back.Managers)
	}
}

func TestWriteText(t *testing.T) {
	r := New()
	r.Span("routesim").End()
	r.Counter("degraded_flows").Inc()
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"phases:", "routesim", "caches", "apply", "import", "degraded_flows"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestLoggerOnce(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.Once("dep", "warning: %s", "deprecated")
	l.Once("dep", "warning: %s", "deprecated")
	l.Printf("plain")
	if got := buf.String(); strings.Count(got, "deprecated") != 1 || !strings.Contains(got, "plain") {
		t.Fatalf("logger output = %q", got)
	}
}

// Counter.Add and Timer.Add must not allocate — they sit on paths
// called per flow and per link.
func TestHotPathAllocationFree(t *testing.T) {
	r := New()
	c := r.Counter("hot")
	tm := r.Timer("hot")
	if n := testing.AllocsPerRun(100, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(100, func() { tm.Add(time.Microsecond) }); n != 0 {
		t.Fatalf("Timer.Add allocates %v per op", n)
	}
}
