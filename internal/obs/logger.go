package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// Logger is a minimal leveled-free logger for observability side
// channels: degradation notices, one-time deprecation warnings. It
// exists so library code can surface rare events without importing log
// or taking a dependency on the host application's logging choices.
// A nil *Logger discards everything.
type Logger struct {
	mu   sync.Mutex
	w    io.Writer
	once map[string]bool
}

// NewLogger returns a logger writing to w (os.Stderr when nil).
func NewLogger(w io.Writer) *Logger {
	if w == nil {
		w = os.Stderr
	}
	return &Logger{w: w, once: make(map[string]bool)}
}

// Printf writes one formatted line.
func (l *Logger) Printf(format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, format+"\n", args...)
}

// Once writes the line only the first time key is seen; later calls
// with the same key are dropped. Used for warnings that would otherwise
// repeat per flow or per worker.
func (l *Logger) Once(key, format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.once[key] {
		return
	}
	l.once[key] = true
	fmt.Fprintf(l.w, format+"\n", args...)
}
