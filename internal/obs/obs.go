// Package obs is the repo's zero-dependency instrumentation layer:
// a metrics registry (counters, timers, phase spans, per-manager MTBDD
// stats) threaded through the verification pipeline and surfaced by
// `yu -metrics=json|text` and yubench's BENCH_*.json records.
//
// Design constraints (DESIGN.md §11):
//
//   - Nil-safe: every method on *Registry, *Counter and *Timer is a
//     no-op on a nil receiver, so instrumented code carries no
//     "is observability on?" branches. A nil registry is the off
//     switch and costs one predictable branch per call site.
//   - Allocation-free on the hot path: Counter and Timer are atomics;
//     call sites resolve them once (a mutex-guarded map lookup) and
//     then only Add. No time.Now() is ever placed inside the
//     symbolic-execution wavefront loop — KREDUCE effort there is
//     reported via manager counters instead (see core.LinkLoad).
//   - Leaf package: obs imports only the standard library and is
//     imported by mtbdd consumers, never the other way around. Manager
//     stats cross the boundary as the plain ManagerStats value type.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter ignores writes and reads as zero.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Timer accumulates wall-clock durations. The zero value is ready to
// use; a nil *Timer ignores writes and reads as zero.
type Timer struct {
	ns    atomic.Int64
	count atomic.Int64
}

// Add folds one observed duration into the timer.
func (t *Timer) Add(d time.Duration) {
	if t == nil {
		return
	}
	t.ns.Add(int64(d))
	t.count.Add(1)
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Count returns how many durations were folded in.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Registry is the per-run metrics store. Create one with New and pass
// it down via the options structs; a nil *Registry disables all
// recording.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	timers   map[string]*Timer
	phases   map[string]*phaseAgg
	order    []string // phase paths in first-start order
	managers []ManagerStats
	log      *Logger
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		timers:   make(map[string]*Timer),
		phases:   make(map[string]*phaseAgg),
	}
}

// Counter returns (creating if needed) the named counter. Resolve once
// and keep the pointer; Add on the returned counter is lock-free.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Timer returns (creating if needed) the named timer.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.timers[name]
	if t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// RecordManager appends one MTBDD manager's stats snapshot (taken at
// the end of the manager's life, or of the run). Safe from worker
// goroutines.
func (r *Registry) RecordManager(ms ManagerStats) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.managers = append(r.managers, ms)
}

// Log returns the registry's logger, creating it on first use.
func (r *Registry) Log() *Logger {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.log == nil {
		r.log = NewLogger(nil)
	}
	return r.log
}

// phaseAgg aggregates every span that completed under one path.
type phaseAgg struct {
	ns    int64
	count int64
}

// Span is one in-flight phase measurement. Obtain with Registry.Span
// or Span.Child; close with End. Spans may be nested ("check/kreduce")
// and re-entered — the snapshot aggregates by path.
type Span struct {
	r     *Registry
	path  string
	start time.Time
}

// Span starts a top-level phase span.
func (r *Registry) Span(path string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, path: path, start: time.Now()}
}

// Child starts a sub-span whose path is parent/name.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.r.Span(s.path + "/" + name)
}

// End records the span's duration into the registry. Idempotence is
// not required — call exactly once.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	r := s.r
	r.mu.Lock()
	agg := r.phases[s.path]
	if agg == nil {
		agg = &phaseAgg{}
		r.phases[s.path] = agg
		r.order = append(r.order, s.path)
	}
	agg.ns += int64(d)
	agg.count++
	r.mu.Unlock()
}

// AddPhase records an externally measured duration under a phase path,
// for callers that already hold a wall-clock measurement (e.g. the
// routesim time the report carries).
func (r *Registry) AddPhase(path string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	agg := r.phases[path]
	if agg == nil {
		agg = &phaseAgg{}
		r.phases[path] = agg
		r.order = append(r.order, path)
	}
	agg.ns += int64(d)
	agg.count++
	r.mu.Unlock()
}

// Snapshot renders the registry's current contents. Safe to call while
// workers are still recording (values are read atomically), though the
// canonical use is once, after the run.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	snap := &Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		TimersMS: make(map[string]TimerStat, len(r.timers)),
		Caches:   make(map[string]CacheCounters, len(knownCaches)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, t := range r.timers {
		snap.TimersMS[name] = TimerStat{
			MS:    float64(t.Total()) / float64(time.Millisecond),
			Count: t.Count(),
		}
	}
	for _, path := range r.order {
		agg := r.phases[path]
		snap.Phases = append(snap.Phases, PhaseStat{
			Path:  path,
			MS:    float64(agg.ns) / float64(time.Millisecond),
			Count: agg.count,
		})
	}
	snap.Managers = append([]ManagerStats(nil), r.managers...)
	sort.SliceStable(snap.Managers, func(i, j int) bool {
		return snap.Managers[i].Name < snap.Managers[j].Name
	})
	// Aggregate cache counters across managers; always emit every known
	// cache key so consumers can rely on the schema even when a cache
	// saw no traffic.
	for _, k := range knownCaches {
		snap.Caches[k] = CacheCounters{}
	}
	for _, ms := range snap.Managers {
		for k, cc := range ms.Caches {
			agg := snap.Caches[k]
			agg.Hits += cc.Hits
			agg.Misses += cc.Misses
			snap.Caches[k] = agg
		}
	}
	return snap
}

// knownCaches are the MTBDD cache names every snapshot reports, even
// at zero. Keep in sync with mtbdd.Stats (DESIGN.md §11).
var knownCaches = []string{"apply", "kreduce", "neg", "range", "import", "fused"}

// ServeCounterNames is the counter schema of the incremental daemon
// (internal/serve, DESIGN.md §14). The daemon pre-creates every name at
// startup so `GET /v1/metrics` consumers can rely on the keys existing
// even at zero — the same schema guarantee knownCaches gives the MTBDD
// cache block. Reload latency is recorded under the "serve.reload"
// timer, per-run verification time under the "verify" phase.
var ServeCounterNames = []string{
	"serve.class_cache_hits",   // equivalence classes served from the warm STF cache
	"serve.class_cache_misses", // classes that had to be (re-)executed
	"serve.dirty_classes",      // cache misses attributable to an applied delta
	"serve.reloads",            // accepted full-spec reloads
	"serve.deltas_applied",     // accepted delta operations
	"serve.deltas_rejected",    // rejected delta operations (invalid op or target)
	"serve.versions",           // versions published (initial load included)
	"serve.cache_evictions",    // warm-cache resets after exceeding the entry cap
	"serve.wal_records",        // delta batches journaled to the WAL
	"serve.wal_replayed",       // batches replayed from the WAL at startup
	"serve.wal_truncated",      // torn or corrupt WAL tails truncated away
	"serve.wal_errors",         // WAL append failures (the batch was refused)
	"serve.panics",             // verification panics recovered by the daemon
	"serve.rejected",           // requests refused by admission control (503)
	"serve.timeouts",           // requests that hit their deadline (504)
	"serve.tlp_requests",       // portfolio evaluations served via POST /v1/tlp
}
