package core

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/flowgen"
	"github.com/yu-verify/yu/internal/gen"
	"github.com/yu-verify/yu/internal/govern"
	"github.com/yu-verify/yu/internal/paperex"
	"github.com/yu-verify/yu/internal/topo"
)

// wanWorkload builds a WAN case big enough that flow execution takes
// well over the cancellation latencies the tests assert on.
func wanWorkload(t testing.TB) (*config.Spec, []topo.Flow) {
	t.Helper()
	spec, err := gen.WAN(gen.WANSpec{Routers: 40, Links: 80, Prefixes: 12, SRPolicyFraction: 0.2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Random(spec, flowgen.RandomSpec{
		Count: 600, DSCP5Fraction: 0.3, DistinctDstPerPrefix: 3, Seed: 142,
	})
	if err != nil {
		t.Fatal(err)
	}
	return spec, flows
}

// TestCancelMidParallelRun cancels the context ~10ms into a parallel
// verification and requires a prompt typed unwind with a partial report
// that names what was left unchecked.
func TestCancelMidParallelRun(t *testing.T) {
	spec, flows := wanWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng := buildEngine(t, spec, topo.FailLinks, 1, Options{Ctx: ctx})
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	rep, err := NewParallelVerifier(eng, flows, 4).Run(spec.Props, nil, 0.5)
	elapsed := time.Since(start)
	if !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("err = %v, want govern.ErrCanceled", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancellation took %v, want well under 1s", elapsed)
	}
	if rep == nil || !rep.Incomplete {
		t.Fatalf("want a partial report with Incomplete set, got %+v", rep)
	}
	if len(rep.Unchecked) == 0 {
		t.Fatal("partial report does not name the unchecked links")
	}
	if rep.Holds {
		t.Fatal("an incomplete report must not claim the properties hold")
	}
}

// pollCancelCtx is a context that, once armed, cancels itself after its
// Err method has been polled a fixed number of times. Wall-clock sleeps
// race with how fast the phase under test runs (the fused kernels made
// the check phase quick enough for a 2ms timer to occasionally lose);
// counting polls lands the cancellation mid-phase deterministically,
// because the governance layer observes cancellation exclusively through
// Err — both the per-job govern.Check and the managers' interrupt hooks.
type pollCancelCtx struct {
	context.Context
	armed atomic.Bool
	left  atomic.Int64
}

func (c *pollCancelCtx) arm(polls int64) {
	c.left.Store(polls)
	c.armed.Store(true)
}

func (c *pollCancelCtx) Err() error {
	if !c.armed.Load() {
		return nil
	}
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestCancelMidParallelCheckPhase lets sharded execution finish, then
// cancels while the parallel per-link check loop is running: the run
// must return promptly with the remaining links listed as unchecked.
func TestCancelMidParallelCheckPhase(t *testing.T) {
	spec, flows := wanWorkload(t)
	ctx := &pollCancelCtx{Context: context.Background()}
	eng := buildEngine(t, spec, topo.FailLinks, 1, Options{
		Ctx: ctx, DisableEarlyTermination: true,
	})
	v := NewParallelVerifier(eng, flows, 4)
	if v.Err() != nil {
		t.Fatalf("execution failed before cancel: %v", v.Err())
	}
	// Arm only now, so the countdown cannot be consumed by route
	// simulation or flow execution: it survives the handful of polls
	// issued while the first links are claimed, then cancels — always
	// inside the check loop.
	ctx.arm(8)
	start := time.Now()
	rep, err := v.Run(nil, nil, 0.5)
	elapsed := time.Since(start)
	if !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("err = %v, want govern.ErrCanceled", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancellation took %v, want well under 1s", elapsed)
	}
	if !rep.Incomplete || len(rep.Unchecked) == 0 {
		t.Fatalf("want Incomplete report naming unchecked links, got Incomplete=%v unchecked=%d",
			rep.Incomplete, len(rep.Unchecked))
	}
}

// TestCancelMidSequentialChecks cancels between the execution phase and
// the check phase, so the unwind happens inside Verifier.Run itself.
func TestCancelMidSequentialChecks(t *testing.T) {
	spec, flows := wanWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	eng := buildEngine(t, spec, topo.FailLinks, 1, Options{Ctx: ctx})
	ver := NewVerifier(eng, flows)
	if ver.Err() != nil {
		t.Fatalf("execution failed before cancel: %v", ver.Err())
	}
	cancel()
	rep, err := ver.Run(spec.Props, nil, 0.5)
	if !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("err = %v, want govern.ErrCanceled", err)
	}
	if !rep.Incomplete || len(rep.Unchecked) == 0 {
		t.Fatalf("want Incomplete report naming unchecked links, got Incomplete=%v unchecked=%d",
			rep.Incomplete, len(rep.Unchecked))
	}
}

// TestWorkerPanicContainment injects a panic into a sharded worker via
// the test hook and requires it to surface as an error on Run — never as
// a process crash — with the report marked incomplete.
func TestWorkerPanicContainment(t *testing.T) {
	spec, err := config.ParseSpecString(paperex.Motivating)
	if err != nil {
		t.Fatal(err)
	}
	eng := buildEngine(t, spec, topo.FailLinks, 1, Options{})
	testExecHook = func(topo.Flow) { panic("injected test panic") }
	defer func() { testExecHook = nil }()
	v := NewParallelVerifier(eng, spec.Flows, 2)
	rep, err := v.Run(spec.Props, spec.Delivered, 1.0)
	if err == nil {
		t.Fatal("worker panic did not surface as an error")
	}
	if !strings.Contains(err.Error(), "worker panic") || !strings.Contains(err.Error(), "injected test panic") {
		t.Fatalf("err = %v, want a contained worker panic naming the cause", err)
	}
	if rep == nil || !rep.Incomplete {
		t.Fatalf("want an Incomplete report after a contained panic, got %+v", rep)
	}
}

// TestNodeBudgetFailSurfaces runs with a 1-node budget under the default
// fail policy: execution must unwind with the typed budget error and the
// report must mark every property unchecked.
func TestNodeBudgetFailSurfaces(t *testing.T) {
	spec, err := config.ParseSpecString(paperex.Motivating)
	if err != nil {
		t.Fatal(err)
	}
	eng := buildEngine(t, spec, topo.FailLinks, 1, Options{NodeBudget: 1})
	rep, rerr := NewVerifier(eng, spec.Flows).Run(spec.Props, spec.Delivered, 1.0)
	if !errors.Is(rerr, govern.ErrNodeBudget) {
		t.Fatalf("err = %v, want govern.ErrNodeBudget", rerr)
	}
	if rep == nil || !rep.Incomplete {
		t.Fatalf("want an Incomplete partial report, got %+v", rep)
	}
	if rep.Holds {
		t.Fatal("budget-interrupted report must not claim the properties hold")
	}
}

// TestNodeBudgetDegradeFallsBack runs the same 1-node budget under the
// degrade policy: no error, and every flow verified by the bounded
// concrete fallback instead.
func TestNodeBudgetDegradeFallsBack(t *testing.T) {
	spec, err := config.ParseSpecString(paperex.Motivating)
	if err != nil {
		t.Fatal(err)
	}
	eng := buildEngine(t, spec, topo.FailLinks, 1, Options{
		NodeBudget: 1, OnBudget: BudgetDegrade, Configs: spec.Configs,
	})
	ver := NewVerifier(eng, spec.Flows)
	if ver.Err() != nil {
		t.Fatalf("degrade policy surfaced an execution error: %v", ver.Err())
	}
	rep, rerr := ver.Run(spec.Props, spec.Delivered, 1.0)
	if rerr != nil {
		t.Fatalf("degrade policy surfaced a Run error: %v", rerr)
	}
	if len(rep.DegradedFlows) == 0 {
		t.Fatal("1-node budget under degrade policy produced no degraded flows")
	}
}
