// Equivalence-class scheduling for the parallel pipeline (DESIGN.md §13).
//
// The unit of parallel work is a global-equivalence class (§6), not a
// flow: classifyFlows groups the input up front, one representative per
// class is executed, and the verdict/STF is shared by every member —
// the summed volume fans the result out at aggregation time. Classes are
// then ordered and chunked by a cost model (measured created-node counts
// persisted from a prior run when available, a topology-derived heuristic
// otherwise) so the expensive work starts first and the work-stealing
// deques in parallel.go stay balanced.
package core

import (
	"encoding/json"
	"log"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"github.com/yu-verify/yu/internal/topo"
)

// flowClass is one global-equivalence class of input flows: every member
// has the same (ingress, destination prefix class, DSCP), so it forwards
// identically in every failure scenario.
type flowClass struct {
	// rep is the executed representative, carrying the class's summed
	// volume. With global equivalence disabled each class has exactly
	// one member and rep is the flow itself.
	rep topo.Flow
	// key is a run-independent identity for the cost model: flows keep
	// their key across runs and topology edits that don't move them, so
	// persisted costs from a previous run still apply.
	key string
	// members counts the input flows merged into this class.
	members int
	// cost is the scheduling weight (see classCosts).
	cost float64
}

// costKey builds a class's stable cost-model key. Router *names* (not
// IDs) keep the key valid across runs and unrelated topology edits.
func costKey(net *topo.Network, f topo.Flow) string {
	return net.Router(f.Ingress).Name + "|" + f.Dst.String() + "|" + strconv.Itoa(int(f.DSCP))
}

// classifyFlows applies global flow equivalence (§6) and returns the
// classes in first-seen order — the deterministic execution order shared
// by the sequential and parallel pipelines — plus the per-input-flow
// class index (classOf[i] is flows[i]'s class), through which verdicts
// and STFs fan back out to every member. When the optimization is
// disabled every flow is its own class (no merging, same order).
func classifyFlows(e *Engine, flows []topo.Flow) (classes []flowClass, classOf []int) {
	return classifyWith(e.classifier, e.net, e.opts.DisableGlobalEquiv, flows)
}

// classifyWith is classifyFlows over an explicit classifier — the shared
// core of the engine-attached path and the standalone GlobalClasses
// helper, so the two can never drift apart.
func classifyWith(cl *classifier, net *topo.Network, disable bool, flows []topo.Flow) (classes []flowClass, classOf []int) {
	classes = make([]flowClass, 0, len(flows))
	classOf = make([]int, len(flows))
	if disable {
		for i, f := range flows {
			classOf[i] = i
			classes = append(classes, flowClass{rep: f, key: costKey(net, f), members: 1})
		}
		return classes, classOf
	}
	type gkey struct {
		ingress topo.RouterID
		class   int
		dscp    uint8
	}
	groups := make(map[gkey]int)
	for fi, f := range flows {
		k := gkey{f.Ingress, cl.classOf(f.Dst), f.DSCP}
		if i, ok := groups[k]; ok {
			classes[i].rep.Gbps += f.Gbps
			classes[i].members++
			classOf[fi] = i
		} else {
			groups[k] = len(classes)
			classOf[fi] = len(classes)
			classes = append(classes, flowClass{rep: f, key: costKey(net, f), members: 1})
		}
	}
	return classes, classOf
}

// GlobalClasses groups flows into global-equivalence classes over an
// explicit prefix set, without an engine: the compositional coordinator
// (internal/compose) uses it to decide, before any symbolic execution,
// which class representatives exist and which domain each belongs to.
// Built with the same classifier and grouping code as the engine path, so
// for the same prefix set the class list and order are identical to what
// NewAssembledVerifier computes on the check engine.
func GlobalClasses(net *topo.Network, prefixes []netip.Prefix, flows []topo.Flow, disableGlobalEquiv bool) (reps []topo.Flow, classOf []int) {
	classes, classOf := classifyWith(newClassifier(nil, prefixes), net, disableGlobalEquiv, flows)
	reps = make([]topo.Flow, len(classes))
	for i := range classes {
		reps[i] = classes[i].rep
	}
	return reps, classOf
}

// mergeFlows returns the executed representatives in class order — the
// historical flow-merge entry point, now a view over classifyFlows.
func mergeFlows(e *Engine, flows []topo.Flow) []topo.Flow {
	classes, _ := classifyFlows(e, flows)
	merged := make([]topo.Flow, len(classes))
	for i := range classes {
		merged[i] = classes[i].rep
	}
	return merged
}

// dedupHits counts the flows merged away by global equivalence — input
// flows that share a previously seen class.
func dedupHits(classes []flowClass) int {
	n := 0
	for i := range classes {
		n += classes[i].members - 1
	}
	return n
}

// classCosts assigns each class its scheduling weight, in place. A
// persisted hint (Options.CostHints, keyed by flowClass.key; typically
// the created-node count measured on a previous run) wins when present
// and positive; otherwise the cost falls back to a topology-derived
// heuristic: 1 + the hop distance from the class's ingress to the
// nearest router that delivers its destination, a proxy for how much
// network the symbolic wavefront must traverse. The heuristic needs one
// BFS per distinct ingress (cached) and no MTBDD work.
func classCosts(e *Engine, classes []flowClass) {
	var distFrom map[topo.RouterID][]int
	deliverers := make(map[int][]topo.RouterID)
	for i := range classes {
		if h, ok := e.opts.CostHints[classes[i].key]; ok && h > 0 {
			classes[i].cost = h
			continue
		}
		f := classes[i].rep
		cls := e.classifier.classOf(f.Dst)
		dests, ok := deliverers[cls]
		if !ok {
			dests = e.deliveringRouters(cls)
			deliverers[cls] = dests
		}
		if distFrom == nil {
			distFrom = make(map[topo.RouterID][]int)
		}
		dist, ok := distFrom[f.Ingress]
		if !ok {
			dist = bfsHops(e.net, f.Ingress)
			distFrom[f.Ingress] = dist
		}
		best := -1
		for _, r := range dests {
			if d := dist[r]; d >= 0 && (best < 0 || d < best) {
				best = d
			}
		}
		if best < 0 {
			// Unresolvable destination: assume a full traversal.
			best = e.net.Diameter()
		}
		classes[i].cost = float64(1 + best)
	}
}

// deliveringRouters lists the routers that deliver traffic of a prefix
// class locally: any BGP Deliver candidate or static route for one of
// the class's matched prefixes.
func (e *Engine) deliveringRouters(cls int) []topo.RouterID {
	var out []topo.RouterID
	matched := e.classifier.matchedPrefixes(cls)
	for ri := range e.rs.BGP.RIBs {
		rib := e.rs.BGP.RIBs[ri]
		found := false
		for _, pfx := range matched {
			for _, c := range rib[pfx] {
				if c.Deliver {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if found {
			out = append(out, topo.RouterID(ri))
		}
	}
	return out
}

// bfsHops returns per-router hop distances from src over the directed
// adjacency (-1 = unreachable), ignoring failures — a static cost proxy.
func bfsHops(net *topo.Network, src topo.RouterID) []int {
	dist := make([]int, net.NumRouters())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []topo.RouterID{src}
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		for _, edge := range net.Out(r) {
			if dist[edge.To] < 0 {
				dist[edge.To] = dist[r] + 1
				queue = append(queue, edge.To)
			}
		}
	}
	return dist
}

// buildChunks orders the classes by descending cost (stable, so equal
// costs keep first-seen order) and packs them greedily into chunks of
// roughly totalCost/(4·spawn) each — about four chunks per worker, small
// enough for stealing to rebalance, large enough to amortize deque
// traffic. Returns the chunks as index slices into classes.
func buildChunks(classes []flowClass, spawn int) [][]int {
	order := make([]int, len(classes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return classes[order[a]].cost > classes[order[b]].cost
	})
	total := 0.0
	for i := range classes {
		total += classes[i].cost
	}
	target := total / float64(4*spawn)
	var chunks [][]int
	var cur []int
	acc := 0.0
	for _, ci := range order {
		cur = append(cur, ci)
		acc += classes[ci].cost
		if acc >= target {
			chunks = append(chunks, cur)
			cur, acc = nil, 0
		}
	}
	if len(cur) > 0 {
		chunks = append(chunks, cur)
	}
	return chunks
}

// SchedStats summarizes one parallel execution's scheduling: how many
// goroutines actually ran (never more than there was work for), how the
// queue was shaped, and how work moved. The sequential path reports the
// zero value with Workers == 1.
type SchedStats struct {
	// Workers is the number of execution goroutines spawned.
	Workers int
	// Chunks is the number of work chunks enqueued.
	Chunks int
	// Classes is the number of equivalence classes (executed
	// representatives).
	Classes int
	// Steals counts chunks a worker took from another worker's deque.
	Steals int
	// DedupHits counts input flows merged away by global equivalence.
	DedupHits int
}

// SchedStats returns the scheduling summary of this verifier's execution
// phase.
func (v *Verifier) SchedStats() SchedStats { return v.sched }

// CostHints returns the measured per-class cost map of this run — the
// created-node count of each class's symbolic execution, keyed by the
// stable class key — suitable for persisting (SaveCostHints) and feeding
// back via Options.CostHints. Classes whose execution never completed
// are absent.
func (v *Verifier) CostHints() map[string]float64 {
	out := make(map[string]float64, len(v.classes))
	for i := range v.classes {
		if c := v.measured[i]; c > 0 {
			out[v.classes[i].key] = c
		}
	}
	return out
}

// SaveCostHints persists a cost-hint map as JSON, crash-safely: the file
// is written to a temp name, fsync'd, renamed into place, and the
// directory fsync'd, so a crash mid-save leaves either the old hints or
// the new — never a truncated file.
func SaveCostHints(path string, hints map[string]float64) error {
	data, err := json.MarshalIndent(hints, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, err = f.Write(append(data, '\n'))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// LoadCostHints reads a cost-hint map written by SaveCostHints. A missing
// file is not an error — it returns an empty map, so callers can treat
// hints as best-effort warm-start data. A corrupt or truncated file is
// handled the same way: hints are a scheduling aid, never a correctness
// input, so a bad file logs a warning and falls back to the topology
// heuristic instead of failing the run.
func LoadCostHints(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]float64{}, nil
		}
		return nil, err
	}
	var hints map[string]float64
	if err := json.Unmarshal(data, &hints); err != nil {
		log.Printf("yu: cost hints %s: %v; ignoring file, scheduler falls back to the topology heuristic", path, err)
		return map[string]float64{}, nil
	}
	return hints, nil
}
