package core

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"

	"github.com/yu-verify/yu/internal/govern"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/obs"
	"github.com/yu-verify/yu/internal/routesim"
	"github.com/yu-verify/yu/internal/topo"
)

// Violation is one TLP violation: a failure scenario (within the budget)
// under which a bound does not hold, together with the offending value.
type Violation struct {
	// Kind is "link-load" or "delivered".
	Kind string
	// Link is the directed link for link-load violations.
	Link topo.DirLinkID
	// Prefix is the destination prefix for delivered violations.
	Prefix netip.Prefix
	// Value is the traffic load (Gbps) in the violating scenario.
	Value float64
	// Min and Max are the violated bounds.
	Min, Max float64
	// FailedLinks / FailedRouters describe the witness scenario.
	FailedLinks   []topo.LinkID
	FailedRouters []topo.RouterID
}

// Describe renders the violation using topology names.
func (v *Violation) Describe(net *topo.Network) string {
	var sb strings.Builder
	switch v.Kind {
	case "link-load":
		fmt.Fprintf(&sb, "link %s carries %.6g Gbps (bounds [%.6g, %.6g])",
			net.DirLinkName(v.Link), v.Value, v.Min, v.Max)
	case "delivered":
		fmt.Fprintf(&sb, "delivered traffic to %s is %.6g Gbps (bounds [%.6g, %.6g])",
			v.Prefix, v.Value, v.Min, v.Max)
	}
	sb.WriteString(" when ")
	if len(v.FailedLinks) == 0 && len(v.FailedRouters) == 0 {
		sb.WriteString("no element fails")
		return sb.String()
	}
	var parts []string
	for _, l := range v.FailedLinks {
		parts = append(parts, "link "+net.LinkName(l))
	}
	for _, r := range v.FailedRouters {
		parts = append(parts, "router "+net.Router(r).Name)
	}
	sb.WriteString(strings.Join(parts, ", "))
	sb.WriteString(" fail")
	if len(parts) == 1 {
		sb.WriteString("s")
	}
	return sb.String()
}

// LinkCheckStat records per-check verification effort, the data behind
// the paper's Figures 13 and 14. Most entries describe a directed-link
// load check; delivered-bound checks are recorded too (Kind "delivered"),
// so benchmark figures cover both property kinds.
type LinkCheckStat struct {
	// Kind is "" for a link-load check (the common case) or "delivered"
	// for a delivered-traffic bound.
	Kind string
	Link topo.DirLinkID
	// Prefix is the destination prefix of a delivered-bound check.
	Prefix netip.Prefix
	// Flows is the number of flows with nonzero traffic on the link (or,
	// for delivered checks, destined inside the prefix).
	Flows int
	// Classes is the number of link-local equivalence classes among them
	// (equals Flows when the reduction is disabled).
	Classes int
	// Elapsed is the time spent aggregating and checking.
	Elapsed time.Duration
}

// Report is the outcome of a verification run.
type Report struct {
	Violations []Violation
	// Holds is true when no bound was violated in any scenario within
	// the failure budget.
	Holds bool
	// LinkStats has one entry per checked directed link.
	LinkStats []LinkCheckStat
	// FlowsExecuted is the number of symbolic executions performed
	// (after global equivalence merging).
	FlowsExecuted int
	// FlowsTotal is the number of input flows.
	FlowsTotal int
	// Incomplete is set when the run was cut short (cancellation,
	// deadline, budget breach) or some checks were skipped under the
	// degrade policy. Holds is never true on an incomplete report.
	Incomplete bool
	// Unchecked lists the directed links whose load checks did not run
	// to completion; their verdicts are unknown.
	Unchecked []topo.DirLinkID
	// UncheckedDelivered lists delivered-bound prefixes whose checks did
	// not complete.
	UncheckedDelivered []netip.Prefix
	// DegradedFlows names the flows whose STFs were rebuilt by the
	// bounded concrete fallback instead of symbolic execution.
	DegradedFlows []string

	// uncheckedLinks / uncheckedPfx deduplicate the Unchecked and
	// UncheckedDelivered lists without rescanning them per mark.
	uncheckedLinks map[topo.DirLinkID]struct{}
	uncheckedPfx   map[netip.Prefix]struct{}
}

// markUnchecked records a directed link as unchecked (deduplicated via a
// set so repeated marks stay O(1), preserving first-marked order) and
// flags the report incomplete.
func (rep *Report) markUnchecked(l topo.DirLinkID) {
	rep.Incomplete = true
	if rep.uncheckedLinks == nil {
		rep.uncheckedLinks = make(map[topo.DirLinkID]struct{}, len(rep.Unchecked)+1)
		for _, u := range rep.Unchecked {
			rep.uncheckedLinks[u] = struct{}{}
		}
	}
	if _, dup := rep.uncheckedLinks[l]; dup {
		return
	}
	rep.uncheckedLinks[l] = struct{}{}
	rep.Unchecked = append(rep.Unchecked, l)
}

// markUncheckedDelivered records a delivered-bound prefix as unchecked,
// deduplicated the same way.
func (rep *Report) markUncheckedDelivered(pfx netip.Prefix) {
	rep.Incomplete = true
	if rep.uncheckedPfx == nil {
		rep.uncheckedPfx = make(map[netip.Prefix]struct{}, len(rep.UncheckedDelivered)+1)
		for _, u := range rep.UncheckedDelivered {
			rep.uncheckedPfx[u] = struct{}{}
		}
	}
	if _, dup := rep.uncheckedPfx[pfx]; dup {
		return
	}
	rep.uncheckedPfx[pfx] = struct{}{}
	rep.UncheckedDelivered = append(rep.UncheckedDelivered, pfx)
}

// Verifier aggregates per-flow STFs into per-link symbolic traffic loads
// and checks TLPs (paper §4.5, Theorem 5.1).
type Verifier struct {
	e     *Engine
	flows []topo.Flow
	stfs  []*FlowSTF
	// execCount is the number of ExecuteFlow calls (post global-equiv).
	execCount int
	// workers > 1 enables the concurrent link-checking pool (see
	// CheckOverloadAll); 1 (or 0) is the exact sequential legacy path.
	workers int
	// err is the first fatal error hit while executing flows (cancel,
	// deadline, unrecoverable budget breach, contained panic). Run
	// surfaces it with a partial report.
	err error
	// kreduceT, when non-nil, accumulates the wall time spent in the
	// KREDUCE calls of per-link aggregation (obs "check/kreduce"). It is
	// nil when no obs registry is attached, keeping the clock off the
	// uninstrumented path.
	kreduceT *obs.Timer
	// classes are the global-equivalence classes in execution order
	// (v.stfs is parallel to it); classOf maps each input flow to its
	// class, fanning the shared verdict/STF back out to the members.
	classes []flowClass
	classOf []int
	// measured[i] is the created-node count of class i's execution — the
	// cost model's training signal, exported by CostHints.
	measured []float64
	// sched summarizes the execution phase's scheduling (see SchedStats).
	sched SchedStats
}

// FlowSTFOf returns the STF of input flow i: the executed representative
// of its equivalence class (§6 fan-out). All member flows of a class
// share one *FlowSTF. Returns nil if the class was never executed (a
// governed run cut short).
func (v *Verifier) FlowSTFOf(i int) *FlowSTF {
	if i < 0 || i >= len(v.classOf) || v.classOf[i] >= len(v.stfs) {
		return nil
	}
	return v.stfs[v.classOf[i]]
}

// Err returns the fatal error recorded during flow execution, if any.
func (v *Verifier) Err() error { return v.err }

// NewVerifier executes all flows symbolically (applying global flow
// equivalence unless disabled) and returns a Verifier ready to check
// properties. Execution is governed: a cancellation or an unrecoverable
// budget breach stops the loop and is surfaced from Run (or Err) with
// the flows executed so far intact.
func NewVerifier(e *Engine, flows []topo.Flow) *Verifier {
	v := &Verifier{e: e, flows: flows, workers: 1,
		kreduceT: e.opts.Obs.Timer("check/kreduce")}
	v.classes, v.classOf = classifyFlows(e, flows)
	v.measured = make([]float64, len(v.classes))
	v.sched = SchedStats{Workers: 1, Classes: len(v.classes), DedupHits: dedupHits(v.classes)}
	e.opts.Obs.Counter("sched.class_dedup_hits").Add(int64(v.sched.DedupHits))
	flowC := e.opts.Obs.Counter("exec.flows_executed")
	cache := e.opts.STFCache
	for i := range v.classes {
		rep := v.classes[i].rep
		before := e.m.Stats().Created
		if cache != nil {
			if s, ok := cache.Lookup(e, rep); ok {
				// A hit is indistinguishable from an execution: the cache
				// materialized canonical nodes in this manager, the class
				// counts as executed (FlowsExecuted is part of the report
				// byte-identity contract), and the replay's created-node
				// delta feeds the cost model like a measurement would.
				v.measured[i] = float64(e.m.Stats().Created - before)
				v.stfs = append(v.stfs, s)
				v.execCount++
				continue
			}
		}
		s, err := e.executeGoverned(rep, v.stfs)
		if err != nil {
			v.err = err
			break
		}
		v.measured[i] = float64(e.m.Stats().Created - before)
		v.stfs = append(v.stfs, s)
		v.execCount++
		flowC.Inc()
		if cache != nil {
			cache.Store(e, rep, s)
		}
	}
	return v
}

// FlowSTFs exposes the executed (merged) flow results.
func (v *Verifier) FlowSTFs() []*FlowSTF { return v.stfs }

// LinkLoad computes the symbolic traffic load τ_l of a directed link by
// aggregating all flows, using link-local equivalence classes unless
// disabled: flows whose STFs are the same MTBDD node (hash-consing makes
// this a pointer comparison) are summed as volumes first, so the number of
// MTBDD additions is the number of classes, not the number of flows.
//
// The returned node remains valid until the next Verifier method that may
// trigger a managed GC (another LinkLoad or an overload check).
func (v *Verifier) LinkLoad(l topo.DirLinkID) (*mtbdd.Node, LinkCheckStat) {
	return v.primaryScan().linkLoad(l)
}

// DeliveredLoad computes the symbolic delivered traffic for all flows
// whose destination is inside pfx, along with a check stat (Kind
// "delivered") recording aggregation effort and timing.
func (v *Verifier) DeliveredLoad(pfx netip.Prefix) (*mtbdd.Node, LinkCheckStat) {
	return v.primaryScan().deliveredLoad(pfx)
}

// loadEpsilon absorbs floating-point noise from ECMP fraction arithmetic
// when comparing loads against bounds.
const loadEpsilon = 1e-6

// checkRange looks for a counter-example terminal outside [min, max]
// (Theorem 5.1) via the shared scan core.
func (v *Verifier) checkRange(tau *mtbdd.Node, min, max float64) (mtbdd.Assignment, float64, bool) {
	return v.primaryScan().checkRange(tau, min, max)
}

func (v *Verifier) witness(a mtbdd.Assignment) (links []topo.LinkID, routers []topo.RouterID) {
	return scenarioWitness(v.e.fv, a)
}

// scenarioWitness converts a violating assignment into sorted failed
// link/router lists using any FailVars with the canonical variable layout
// (the primary one or a shard's — they are identical by construction).
func scenarioWitness(fv *routesim.FailVars, a mtbdd.Assignment) (links []topo.LinkID, routers []topo.RouterID) {
	for _, fvar := range a.FailedVars() {
		if l, r, isLink := fv.VarElement(fvar); isLink {
			links = append(links, l)
		} else {
			routers = append(routers, r)
		}
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	sort.Slice(routers, func(i, j int) bool { return routers[i] < routers[j] })
	return links, routers
}

// ViolatingScenarios enumerates up to limit distinct failure scenarios
// (as witness link/router sets) under which the symbolic load tau falls
// outside [min, max]. Each returned scenario corresponds to one violating
// MTBDD path, so it contains at most k failures (Lemma 2).
func (v *Verifier) ViolatingScenarios(tau *mtbdd.Node, min, max float64, limit int) []Violation {
	lo, hi := min-loadEpsilon, max+loadEpsilon
	var out []Violation
	v.e.m.ForEachPath(tau, func(a mtbdd.Assignment, val float64) bool {
		if val >= lo && val <= hi {
			return true
		}
		links, routers := v.witness(a)
		out = append(out, Violation{
			Kind: "link-load", Value: val, Min: min, Max: max,
			FailedLinks: links, FailedRouters: routers,
		})
		return len(out) < limit
	})
	return out
}

// CheckBound verifies one explicit load bound; directed bounds check one
// direction, undirected bounds check both directions independently.
func (v *Verifier) CheckBound(b topo.LoadBound, rep *Report) {
	for _, d := range boundDirs(b) {
		v.checkBoundDir(topo.MakeDirLinkID(b.Link, d), b, rep)
	}
}

func boundDirs(b topo.LoadBound) []topo.Direction {
	if b.DirSpecified {
		return []topo.Direction{b.Dir}
	}
	return []topo.Direction{topo.AtoB, topo.BtoA}
}

// checkBoundDir verifies one explicit load bound in one direction.
func (v *Verifier) checkBoundDir(l topo.DirLinkID, b topo.LoadBound, rep *Report) {
	tau, stat := v.LinkLoad(l)
	rep.LinkStats = append(rep.LinkStats, stat)
	if a, val, bad := v.checkRange(tau, b.Min, b.Max); bad {
		links, routers := v.witness(a)
		rep.Violations = append(rep.Violations, Violation{
			Kind: "link-load", Link: l, Value: val, Min: b.Min, Max: b.Max,
			FailedLinks: links, FailedRouters: routers,
		})
	}
}

// CheckDelivered verifies one delivered-traffic bound.
func (v *Verifier) CheckDelivered(b topo.DeliveredBound, rep *Report) {
	tau, stat := v.DeliveredLoad(b.Prefix)
	rep.LinkStats = append(rep.LinkStats, stat)
	if a, val, bad := v.checkRange(tau, b.Min, b.Max); bad {
		links, routers := v.witness(a)
		rep.Violations = append(rep.Violations, Violation{
			Kind: "delivered", Prefix: b.Prefix, Value: val, Min: b.Min, Max: b.Max,
			FailedLinks: links, FailedRouters: routers,
		})
	}
}

// CheckOverloadAll verifies "no directed link carries more than
// factor × capacity" on every link of the network — the paper's daily P2
// check. factor 1 means the raw capacity; the motivating example's
// "overloaded at ≥95 Gbps on 100 Gbps links" is factor 0.95 (an open
// bound approximated by a tiny epsilon below).
//
// Unless disabled, the check applies the §6 pruning heuristics: a link
// whose summed per-class maxima cannot reach the limit is passed without
// any MTBDD aggregation, and during aggregation the scan stops as soon as
// the accumulated maximum proves a violation (loads are non-negative, so
// partial sums only grow) or the remaining mass cannot reach the limit.
func (v *Verifier) CheckOverloadAll(factor float64, rep *Report) {
	if v.workers > 1 {
		if err := v.checkOverloadAllParallel(factor, rep); err != nil && v.err == nil {
			v.err = err
		}
		return
	}
	net := v.e.net
	for li := 0; li < net.NumLinks(); li++ {
		link := net.Link(topo.LinkID(li))
		limit := link.Capacity * factor
		for _, d := range []topo.Direction{topo.AtoB, topo.BtoA} {
			l := topo.MakeDirLinkID(link.ID, d)
			v.checkOverloadDir(l, limit, rep)
		}
	}
}

// checkOverloadDir checks one directed link against an upper limit via the
// shared scan core (full or pruned per the early-termination ablation).
func (v *Verifier) checkOverloadDir(l topo.DirLinkID, limit float64, rep *Report) {
	stat, viols := v.primaryScan().checkLink(l, limit)
	rep.LinkStats = append(rep.LinkStats, stat)
	rep.Violations = append(rep.Violations, viols...)
}

// checkItem is one unit of governed property checking: a single
// directed-link load check or a single delivered bound.
type checkItem struct {
	kind  string // "bound", "delivered", "overload"
	link  topo.DirLinkID
	bound topo.LoadBound
	db    topo.DeliveredBound
	limit float64
}

// overloadItems lists one check item per directed link for the
// all-links overload property.
func (v *Verifier) overloadItems(factor float64) []checkItem {
	net := v.e.net
	items := make([]checkItem, 0, 2*net.NumLinks())
	for li := 0; li < net.NumLinks(); li++ {
		link := net.Link(topo.LinkID(li))
		limit := link.Capacity * factor
		for _, d := range []topo.Direction{topo.AtoB, topo.BtoA} {
			items = append(items, checkItem{kind: "overload", link: topo.MakeDirLinkID(link.ID, d), limit: limit})
		}
	}
	return items
}

// checkItems flattens a Run request into its individual check targets.
func (v *Verifier) checkItems(bounds []topo.LoadBound, delivered []topo.DeliveredBound, overloadFactor float64, includeOverload bool) []checkItem {
	var items []checkItem
	for _, b := range bounds {
		for _, d := range boundDirs(b) {
			items = append(items, checkItem{kind: "bound", link: topo.MakeDirLinkID(b.Link, d), bound: b})
		}
	}
	for _, b := range delivered {
		items = append(items, checkItem{kind: "delivered", db: b})
	}
	if overloadFactor > 0 && includeOverload {
		items = append(items, v.overloadItems(overloadFactor)...)
	}
	return items
}

// markItemsUnchecked records every item's target as unchecked.
func markItemsUnchecked(rep *Report, items []checkItem) {
	for _, it := range items {
		if it.kind == "delivered" {
			rep.markUncheckedDelivered(it.db.Prefix)
		} else {
			rep.markUnchecked(it.link)
		}
	}
}

// runGoverned runs one check through the budget ladder, appending its
// stats and violations to rep only when the check completes. A breached
// check is retried once after an engine-wide GC; if it still breaches
// under the degrade policy it is skipped (the caller marks the target
// unchecked). Other errors — cancellation, deadline, breach under the
// fail policy — are returned.
//
// The check writes into a scratch report because the pruned overload
// check appends its stat before the range check runs: merging only on
// success keeps a retried check from appearing twice.
func (v *Verifier) runGoverned(rep *Report, check func(*Report)) (skipped bool, err error) {
	if err := govern.Check(v.e.opts.Ctx); err != nil {
		return false, err
	}
	attempt := func() error {
		scratch := &Report{}
		err := mtbdd.Guard(func() { check(scratch) })
		if err == nil {
			rep.Violations = append(rep.Violations, scratch.Violations...)
			rep.LinkStats = append(rep.LinkStats, scratch.LinkStats...)
		}
		return err
	}
	err = attempt()
	if err == nil || !errors.Is(err, govern.ErrNodeBudget) {
		return false, err
	}
	v.e.m.GC(v.e.roots(stfRoots(nil, v.stfs)))
	err = attempt()
	if err == nil || !errors.Is(err, govern.ErrNodeBudget) {
		return false, err
	}
	if v.e.opts.OnBudget != BudgetDegrade {
		return false, err
	}
	return true, nil
}

// runItem dispatches one check item through runGoverned.
func (v *Verifier) runItem(it checkItem, rep *Report) (skipped bool, err error) {
	return v.runGoverned(rep, func(r *Report) {
		switch it.kind {
		case "bound":
			v.checkBoundDir(it.link, it.bound, r)
		case "delivered":
			v.CheckDelivered(it.db, r)
		default:
			v.checkOverloadDir(it.link, it.limit, r)
		}
	})
}

// Run checks the given explicit bounds (either slice may be empty) and, if
// overloadFactor > 0, the all-links overload property.
//
// Run is governed: on cancellation, deadline expiry, or a node-budget
// breach under the fail policy it returns the typed error together with
// a partial report — completed checks keep their verdicts and stats,
// and every target that did not complete is listed in Unchecked /
// UncheckedDelivered with Incomplete set. Under the degrade policy a
// check that cannot fit the budget is skipped the same way but without
// an error. Holds is never true on an incomplete report.
func (v *Verifier) Run(bounds []topo.LoadBound, delivered []topo.DeliveredBound, overloadFactor float64) (*Report, error) {
	rep := &Report{FlowsExecuted: v.execCount, FlowsTotal: len(v.flows)}
	for _, s := range v.stfs {
		if s != nil && s.Degraded {
			rep.DegradedFlows = append(rep.DegradedFlows, s.Flow.String())
		}
	}
	err := v.err
	if err != nil {
		// Flow execution already failed: no check can run.
		markItemsUnchecked(rep, v.checkItems(bounds, delivered, overloadFactor, true))
	} else {
		err = v.runChecks(rep, bounds, delivered, overloadFactor)
	}
	rep.Holds = len(rep.Violations) == 0 && !rep.Incomplete
	return rep, err
}

func (v *Verifier) runChecks(rep *Report, bounds []topo.LoadBound, delivered []topo.DeliveredBound, overloadFactor float64) error {
	parallelOverload := overloadFactor > 0 && v.workers > 1
	items := v.checkItems(bounds, delivered, overloadFactor, !parallelOverload)
	for i, it := range items {
		skipped, err := v.runItem(it, rep)
		if err != nil {
			markItemsUnchecked(rep, items[i:])
			if parallelOverload {
				markItemsUnchecked(rep, v.overloadItems(overloadFactor))
			}
			return err
		}
		if skipped {
			markItemsUnchecked(rep, items[i:i+1])
		}
	}
	if parallelOverload {
		return v.checkOverloadAllParallel(overloadFactor, rep)
	}
	return nil
}
