package core_test

// The random network/flow generator that used to live here has been
// promoted to internal/difftest, which adds seeding, shrinking, and a
// full oracle battery on top of it. These tests keep the original
// differential contract — symbolic loads equal concrete loads on every
// in-budget scenario — running from the core package's test suite.

import (
	"testing"

	"github.com/yu-verify/yu/internal/difftest"
	"github.com/yu-verify/yu/internal/topo"
)

// TestRandomDifferential cross-checks the symbolic pipeline against the
// concrete simulator on random link-failure cases: every directed link's
// symbolic traffic load, evaluated at every scenario within the failure
// budget, must equal the concrete load.
func TestRandomDifferential(t *testing.T) {
	const trials = 25
	for seed := int64(1); seed <= trials; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			c, err := difftest.New(seed, difftest.Options{LinkMode: true})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if err := difftest.OracleLoadsVsConcrete(c); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		})
	}
}

// TestRandomRouterFailureDifferential runs the same differential check on
// router-failure cases: the generator draws mode FailRouters for ~1 in 5
// seeds, so scan seeds until 10 router cases have run.
func TestRandomRouterFailureDifferential(t *testing.T) {
	const trials = 10
	ran := 0
	for seed := int64(1); ran < trials && seed < 500; seed++ {
		c, err := difftest.New(seed, difftest.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if c.Mode != topo.FailRouters {
			continue
		}
		ran++
		if err := difftest.OracleLoadsVsConcrete(c); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if ran < trials {
		t.Fatalf("only %d router-failure cases in the first 500 seeds", ran)
	}
}
