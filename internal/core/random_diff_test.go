package core

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"testing"

	"github.com/yu-verify/yu/internal/concrete"
	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/routesim"
	"github.com/yu-verify/yu/internal/topo"
)

// randomSpec generates a random small multi-AS network with BGP
// origination, optional SR policies and statics, and random flows —
// deliberately messy inputs for differential testing.
func randomSpec(rng *rand.Rand) (*config.Spec, error) {
	nRouters := 5 + rng.Intn(5)
	nAS := 1 + rng.Intn(3)
	b := topo.NewBuilder()
	names := make([]string, nRouters)
	ases := make([]uint32, nRouters)
	for i := 0; i < nRouters; i++ {
		names[i] = fmt.Sprintf("r%d", i)
		ases[i] = uint32(1 + i%nAS)
		b.AddRouter(names[i], ases[i])
	}
	// Ring for connectivity + random chords.
	type pair struct{ a, b int }
	seen := map[pair]bool{}
	addLink := func(i, j int) {
		if i == j {
			return
		}
		if i > j {
			i, j = j, i
		}
		if seen[pair{i, j}] {
			return
		}
		seen[pair{i, j}] = true
		b.AddLink(names[i], names[j],
			topo.WithCost(int64(10*(1+rng.Intn(3)))),
			topo.WithCapacity(100))
	}
	for i := 0; i < nRouters; i++ {
		addLink(i, (i+1)%nRouters)
	}
	for c := 0; c < nRouters/2+1; c++ {
		addLink(rng.Intn(nRouters), rng.Intn(nRouters))
	}
	net, err := b.Build()
	if err != nil {
		return nil, err
	}
	cfgs := make(config.Configs)
	// 2-3 originated prefixes.
	nPfx := 2 + rng.Intn(2)
	var prefixes []netip.Prefix
	for p := 0; p < nPfx; p++ {
		owner := rng.Intn(nRouters)
		pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, byte(p), 0, 0}), 24)
		cfgs.Get(names[owner]).Networks = append(cfgs.Get(names[owner]).Networks, pfx)
		prefixes = append(prefixes, pfx)
	}
	// Occasionally a discard static with redistribution (Fig 10 pattern).
	if rng.Intn(3) == 0 {
		owner := rng.Intn(nRouters)
		rc := cfgs.Get(names[owner])
		rc.Statics = append(rc.Statics, config.StaticRoute{
			Prefix:  netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 0, 0, 0}), 8),
			Discard: true,
		})
		rc.RedistributeStatic = true
	}
	config.EBGPSessionsFullMesh(net, cfgs)
	// Occasionally an SR policy within a multi-router AS.
	if rng.Intn(2) == 0 {
		for as := uint32(1); as <= uint32(nAS); as++ {
			members := net.RoutersInAS(as)
			if len(members) < 3 {
				continue
			}
			src := members[rng.Intn(len(members))]
			mid := members[rng.Intn(len(members))]
			end := members[rng.Intn(len(members))]
			if src == mid || mid == end || src == end {
				continue
			}
			cfgs.Get(net.Router(src).Name).SRPolicies = append(
				cfgs.Get(net.Router(src).Name).SRPolicies,
				config.SRPolicy{
					Endpoint:  netip.PrefixFrom(net.Router(end).Loopback, 32),
					MatchDSCP: config.AnyDSCP,
					Paths: []config.SRPath{
						{Segments: []netip.Addr{net.Router(end).Loopback}, Weight: 60},
						{Segments: []netip.Addr{net.Router(mid).Loopback, net.Router(end).Loopback}, Weight: 40},
					},
				})
			break
		}
	}
	if err := cfgs.Validate(net); err != nil {
		return nil, err
	}
	spec := &config.Spec{Net: net, Configs: cfgs}
	// Random flows.
	nFlows := 2 + rng.Intn(4)
	for f := 0; f < nFlows; f++ {
		pfx := prefixes[rng.Intn(len(prefixes))]
		var dscp uint8
		if rng.Intn(2) == 0 {
			dscp = 5
		}
		spec.Flows = append(spec.Flows, topo.Flow{
			Name:    fmt.Sprintf("f%d", f),
			Ingress: topo.RouterID(rng.Intn(nRouters)),
			Src:     netip.AddrFrom4([4]byte{9, 9, byte(f), 1}),
			Dst:     pfx.Addr().Next(),
			DSCP:    dscp,
			Gbps:    float64(1 + rng.Intn(50)),
		})
	}
	return spec, nil
}

// TestRandomDifferential generates random networks and checks that the
// symbolic traffic loads evaluated at every <=2-failure scenario equal the
// concrete simulator's loads exactly — the repository's strongest
// correctness property, exercised across topologies, AS layouts, SR
// policies, statics, and workloads.
func TestRandomDifferential(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		spec, err := randomSpec(rng)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		const k = 2
		m := mtbdd.New()
		fv := routesim.NewFailVars(m, spec.Net, topo.FailLinks, k)
		rs, err := routesim.Run(fv, spec.Configs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		eng := NewEngine(rs, Options{DisableGlobalEquiv: true})
		ver := NewVerifier(eng, spec.Flows)
		sim := concrete.NewSim(spec.Net, spec.Configs)

		// All scenarios with <= 2 failed links.
		var scenarios [][]topo.LinkID
		scenarios = append(scenarios, nil)
		for i := 0; i < spec.Net.NumLinks(); i++ {
			scenarios = append(scenarios, []topo.LinkID{topo.LinkID(i)})
			for j := i + 1; j < spec.Net.NumLinks(); j++ {
				scenarios = append(scenarios, []topo.LinkID{topo.LinkID(i), topo.LinkID(j)})
			}
		}
		for _, failed := range scenarios {
			sc := concrete.NewScenario(spec.Net)
			for _, l := range failed {
				sc.LinkDown[l] = true
			}
			res := sim.Simulate(sc, spec.Flows)
			assign := fv.Scenario(failed, nil)
			for li := 0; li < spec.Net.NumLinks(); li++ {
				for _, d := range []topo.Direction{topo.AtoB, topo.BtoA} {
					dl := topo.MakeDirLinkID(topo.LinkID(li), d)
					tau, _ := ver.LinkLoad(dl)
					sym := m.Eval(tau, assign)
					conc := res.Load[dl]
					if math.Abs(sym-conc) > 1e-6 {
						t.Fatalf("trial %d failed=%v link %s: symbolic %.9g vs concrete %.9g",
							trial, failed, spec.Net.DirLinkName(dl), sym, conc)
					}
				}
			}
			// Conservation per flow in the concrete simulator.
			for fi, f := range spec.Flows {
				if math.Abs(res.Delivered[fi]+res.Dropped[fi]-f.Gbps) > 1e-6 {
					t.Fatalf("trial %d failed=%v flow %d: delivered+dropped=%.9g, want %.9g",
						trial, failed, fi, res.Delivered[fi]+res.Dropped[fi], f.Gbps)
				}
			}
		}
	}
}

// TestRandomRouterFailureDifferential repeats the differential for router
// failures (k=1) on a few random networks.
func TestRandomRouterFailureDifferential(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		spec, err := randomSpec(rng)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m := mtbdd.New()
		fv := routesim.NewFailVars(m, spec.Net, topo.FailRouters, 1)
		rs, err := routesim.Run(fv, spec.Configs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		eng := NewEngine(rs, Options{DisableGlobalEquiv: true})
		ver := NewVerifier(eng, spec.Flows)
		sim := concrete.NewSim(spec.Net, spec.Configs)
		for ri := -1; ri < spec.Net.NumRouters(); ri++ {
			sc := concrete.NewScenario(spec.Net)
			var failed []topo.RouterID
			if ri >= 0 {
				sc.RouterDown[ri] = true
				failed = append(failed, topo.RouterID(ri))
			}
			res := sim.Simulate(sc, spec.Flows)
			assign := fv.Scenario(nil, failed)
			for li := 0; li < spec.Net.NumLinks(); li++ {
				for _, d := range []topo.Direction{topo.AtoB, topo.BtoA} {
					dl := topo.MakeDirLinkID(topo.LinkID(li), d)
					tau, _ := ver.LinkLoad(dl)
					if sym, conc := m.Eval(tau, assign), res.Load[dl]; math.Abs(sym-conc) > 1e-6 {
						t.Fatalf("trial %d router=%v link %s: symbolic %.9g vs concrete %.9g",
							trial, failed, spec.Net.DirLinkName(dl), sym, conc)
					}
				}
			}
		}
	}
}
