package core

import "github.com/yu-verify/yu/internal/mtbdd"

// defaultGCThreshold is the live-node count that triggers a managed GC
// (roughly half a GiB of nodes plus table overhead).
const defaultGCThreshold = 4 << 20

// roots gathers every MTBDD node the engine must keep across a garbage
// collection: all guards in the route simulation result and the contents
// of the forwarding-encoding caches. extra carries the caller's live
// nodes (accumulated STFs, partial sums).
func (e *Engine) roots(extra []*mtbdd.Node) []*mtbdd.Node {
	out := extra
	rs := e.rs
	for r := 0; r < e.net.NumRouters(); r++ {
		for _, rib := range rs.BGP.RIBs[r] {
			for _, c := range rib {
				out = append(out, c.Guard)
			}
		}
		for _, p := range rs.SR[r] {
			for _, path := range p.Paths {
				out = append(out, path.Guard)
			}
		}
		for _, st := range rs.Statics[r] {
			out = append(out, st.Guard)
		}
	}
	out = append(out, rs.IGP.GuardNodes()...)
	for _, v := range e.igpCache {
		for _, f := range v.perLink {
			out = append(out, f)
		}
		out = append(out, v.total)
	}
	for _, st := range e.ipCache {
		out = stepRoots(out, st)
	}
	for _, st := range e.srCache {
		out = stepRoots(out, st)
	}
	return out
}

func stepRoots(out []*mtbdd.Node, st *step) []*mtbdd.Node {
	out = append(out, st.delivered, st.dropped)
	for _, o := range st.out {
		out = append(out, o.frac)
	}
	return out
}

// stfRoots collects the live nodes of executed flows.
func stfRoots(out []*mtbdd.Node, stfs []*FlowSTF) []*mtbdd.Node {
	for _, s := range stfs {
		if s == nil {
			continue
		}
		for _, w := range s.Links {
			out = append(out, w)
		}
		out = append(out, s.Delivered, s.Dropped, s.InFlight)
	}
	return out
}

// maybeGC runs a managed garbage collection when the live node count
// exceeds the threshold, keeping the engine caches and the given flow
// results alive. If most nodes survive a collection, the threshold is
// doubled to avoid thrashing (collecting over and over with little to
// reclaim while losing the operation caches each time).
func (e *Engine) maybeGC(stfs []*FlowSTF, extra []*mtbdd.Node) {
	if e.gcThreshold <= 0 {
		e.gcThreshold = e.opts.GCThreshold
		if e.gcThreshold <= 0 {
			e.gcThreshold = defaultGCThreshold
		}
	}
	// Under a node budget, collect before the budget would trip: the
	// budget unwinds mid-operation, a collection here is free.
	if b := e.opts.NodeBudget; b > 0 && e.gcThreshold > b/2 {
		e.gcThreshold = b / 2
		if e.gcThreshold < 1 {
			e.gcThreshold = 1
		}
	}
	if e.m.Stats().Live < e.gcThreshold {
		return
	}
	e.m.GC(e.roots(stfRoots(extra, stfs)))
	if live := e.m.Stats().Live; live*2 > e.gcThreshold && e.opts.NodeBudget <= 0 {
		e.gcThreshold = live * 4
	}
}
