package core

import (
	"net/netip"
	"testing"

	"github.com/yu-verify/yu/internal/paperex"
	"github.com/yu-verify/yu/internal/topo"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestOverloadEpsilonBoundary pins the shared violation threshold from
// violThreshold: a directed link violates an overload limit iff its
// worst-case load exceeds limit - loadEpsilon, with the identical verdict
// on the sequential (primary-manager) path and the parallel shard path,
// with and without the §6 early-termination pruning. The motivating
// example carries exactly 100 Gbps on C->E in its worst 2-failure
// scenario, so limits straddling 100 by ±ε and ±2ε decide every case.
func TestOverloadEpsilonBoundary(t *testing.T) {
	const worst = 100.0
	cases := []struct {
		name     string
		limit    float64
		wantViol bool
	}{
		{"limit-2eps", worst - 2*loadEpsilon, true},
		{"limit-eps", worst - loadEpsilon, true},
		{"limit", worst, true},
		{"limit+eps", worst + loadEpsilon, false},
		{"limit+2eps", worst + 2*loadEpsilon, false},
	}
	for _, pruned := range []bool{true, false} {
		fx := newFixture(t, paperex.Motivating, topo.FailLinks, 2,
			Options{DisableEarlyTermination: !pruned})
		d, ok := fx.spec.Net.FindDirLink("C", "E")
		if !ok {
			t.Fatal("no link C->E")
		}
		shard := newShardChecker(fx.ver)
		for _, c := range cases {
			seqStat, seqViols := fx.ver.primaryScan().checkLink(d, c.limit)
			parStat, parViols := shard.checkLink(d, c.limit)
			if got := len(seqViols) > 0; got != c.wantViol {
				t.Errorf("pruned=%v %s: sequential violated=%v, want %v",
					pruned, c.name, got, c.wantViol)
			}
			if len(seqViols) != len(parViols) {
				t.Fatalf("pruned=%v %s: %d sequential violations vs %d parallel",
					pruned, c.name, len(seqViols), len(parViols))
			}
			for i := range seqViols {
				a, b := seqViols[i], parViols[i]
				if a.Link != b.Link || a.Value != b.Value || a.Max != b.Max {
					t.Errorf("pruned=%v %s: violation %d differs: %+v vs %+v",
						pruned, c.name, i, a, b)
				}
			}
			seqStat.Elapsed, parStat.Elapsed = 0, 0
			if seqStat != parStat {
				t.Errorf("pruned=%v %s: stats differ: %+v vs %+v",
					pruned, c.name, seqStat, parStat)
			}
			if c.wantViol && len(seqViols) > 0 && !approx(seqViols[0].Value, worst) {
				t.Errorf("pruned=%v %s: witness load %.9g, want %.9g",
					pruned, c.name, seqViols[0].Value, worst)
			}
		}
	}
}

// TestRangeEpsilonBoundary pins the tolerant bound semantics of checkRange:
// a value passes a max bound up to max + loadEpsilon and a min bound down
// to min - loadEpsilon, identically at ±ε and ±2ε.
func TestRangeEpsilonBoundary(t *testing.T) {
	const worst = 100.0
	fx := newFixture(t, paperex.Motivating, topo.FailLinks, 2, Options{})
	d, ok := fx.spec.Net.FindDirLink("C", "E")
	if !ok {
		t.Fatal("no link C->E")
	}
	tau, _ := fx.ver.LinkLoad(d)
	maxCases := []struct {
		name     string
		max      float64
		wantViol bool
	}{
		{"max-2eps", worst - 2*loadEpsilon, true},
		{"max-eps", worst - loadEpsilon, false}, // worst <= max+eps
		{"max", worst, false},
		{"max+eps", worst + loadEpsilon, false},
		{"max+2eps", worst + 2*loadEpsilon, false},
	}
	for _, c := range maxCases {
		_, _, viol := fx.ver.checkRange(tau, 0, c.max)
		if viol != c.wantViol {
			t.Errorf("%s: violated=%v, want %v", c.name, viol, c.wantViol)
		}
	}
	// The minimum load on C->E over <=2 failures: failing C-E itself drops
	// it to 0, so any positive min violates up to the epsilon tolerance.
	minCases := []struct {
		name     string
		min      float64
		wantViol bool
	}{
		{"min-2eps", -2 * loadEpsilon, false},
		{"min-eps", -loadEpsilon, false},
		{"min", 0, false},
		{"min+eps", loadEpsilon, false}, // 0 >= min-eps still passes
		{"min+2eps", 2 * loadEpsilon, true},
	}
	for _, c := range minCases {
		_, _, viol := fx.ver.checkRange(tau, c.min, worst+1)
		if viol != c.wantViol {
			t.Errorf("%s: violated=%v, want %v", c.name, viol, c.wantViol)
		}
	}
}

// TestMarkUncheckedDedupOrder checks the map-backed deduplication of
// unchecked links and prefixes: first-seen order is preserved and repeats
// are dropped, including repeats of entries present before the lazy set
// was seeded.
func TestMarkUncheckedDedupOrder(t *testing.T) {
	rep := &Report{}
	a := topo.MakeDirLinkID(3, topo.AtoB)
	b := topo.MakeDirLinkID(1, topo.BtoA)
	c := topo.MakeDirLinkID(2, topo.AtoB)
	// Pre-existing entry, as a partial report would carry.
	rep.Unchecked = append(rep.Unchecked, a)
	rep.markUnchecked(b)
	rep.markUnchecked(a) // dup of the pre-seeded entry
	rep.markUnchecked(c)
	rep.markUnchecked(b) // dup of a map-tracked entry
	want := []topo.DirLinkID{a, b, c}
	if len(rep.Unchecked) != len(want) {
		t.Fatalf("Unchecked = %v, want %v", rep.Unchecked, want)
	}
	for i := range want {
		if rep.Unchecked[i] != want[i] {
			t.Fatalf("Unchecked = %v, want %v", rep.Unchecked, want)
		}
	}

	pfxs := []string{"10.0.0.0/8", "10.1.0.0/16", "10.2.0.0/16"}
	rep2 := &Report{}
	rep2.UncheckedDelivered = append(rep2.UncheckedDelivered, mustPrefix(t, pfxs[0]))
	rep2.markUncheckedDelivered(mustPrefix(t, pfxs[1]))
	rep2.markUncheckedDelivered(mustPrefix(t, pfxs[0]))
	rep2.markUncheckedDelivered(mustPrefix(t, pfxs[2]))
	rep2.markUncheckedDelivered(mustPrefix(t, pfxs[1]))
	if len(rep2.UncheckedDelivered) != 3 {
		t.Fatalf("UncheckedDelivered = %v, want %v", rep2.UncheckedDelivered, pfxs)
	}
	for i := range pfxs {
		if rep2.UncheckedDelivered[i] != mustPrefix(t, pfxs[i]) {
			t.Fatalf("UncheckedDelivered = %v, want %v", rep2.UncheckedDelivered, pfxs)
		}
	}
}
