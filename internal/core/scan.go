// The one checker core every path scans through. The sequential verifier,
// the parallel shard checkers, and the portfolio engine (internal/tlp) all
// aggregate per-link loads and decide violations here, so epsilon handling
// and the early-termination heuristics cannot diverge between paths again.
package core

import (
	"math"
	"net/netip"
	"sort"
	"time"

	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/routesim"
	"github.com/yu-verify/yu/internal/topo"
)

// violThreshold is the single definition of the overload decision boundary:
// a load is a violation of an upper limit exactly when it exceeds
// violThreshold(limit). The quick bound, the early-termination loop, and
// the final terminal scan of every check path compare against this value.
func violThreshold(limit float64) float64 { return limit - loadEpsilon }

// boundScan is the terminal-scan predicate for an explicit [min, max]
// bound: values outside the epsilon-widened interval are violations.
func boundScan(min, max float64) mtbdd.ScanCheck {
	hi := max + loadEpsilon
	if math.IsInf(max, 1) {
		hi = math.Inf(1)
	}
	return mtbdd.ScanCheck{Lo: min - loadEpsilon, Hi: hi, MaxFails: -1}
}

// overloadScan is the terminal-scan predicate for an upper-limit overload
// check, built on violThreshold.
func overloadScan(limit float64) mtbdd.ScanCheck {
	return mtbdd.ScanCheck{Lo: math.Inf(-1), Hi: violThreshold(limit), MaxFails: -1}
}

// scanCtx binds the shared checker to one manager: the primary one
// (imp == nil, loads may trigger the engine-wide GC) or a parallel shard's
// private manager (imp rebuilds primary nodes there, memoized).
type scanCtx struct {
	v       *Verifier
	m       *mtbdd.Manager
	fv      *routesim.FailVars
	imp     func(*mtbdd.Node) *mtbdd.Node
	gcFirst bool
}

func (v *Verifier) primaryScan() scanCtx {
	return scanCtx{v: v, m: v.e.m, fv: v.e.fv, gcFirst: true}
}

func (c *shardChecker) scan() scanCtx {
	return scanCtx{v: c.v, m: c.m, fv: c.fv, imp: c.m.Import}
}

func (sc scanCtx) node(w *mtbdd.Node) *mtbdd.Node {
	if sc.imp != nil {
		return sc.imp(w)
	}
	return w
}

// checkTau applies the deferred KREDUCE of the reduction-disabled ablation
// before a terminal scan.
func (sc scanCtx) checkTau(tau *mtbdd.Node) *mtbdd.Node {
	if sc.v.e.opts.CheckK > 0 {
		tau = sc.m.KReduce(tau, sc.v.e.opts.CheckK)
	}
	return tau
}

// checkRange looks for a counter-example terminal outside [min, max]
// (Theorem 5.1: scanning the terminals of the KReduce'd STL suffices).
func (sc scanCtx) checkRange(tau *mtbdd.Node, min, max float64) (mtbdd.Assignment, float64, bool) {
	h := sc.m.ScanOutside(sc.checkTau(tau), []mtbdd.ScanCheck{boundScan(min, max)})[0]
	return h.A, h.Value, h.OK
}

// scanClass is one link-local equivalence class of a link's load: an STF
// node (in this context's manager) and the summed volume riding on it.
type scanClass struct {
	w   *mtbdd.Node
	vol float64
	max float64
}

// linkClasses groups the flows crossing l into link-local equivalence
// classes in first-seen order (float addition is not associative, so the
// deterministic order keeps verdicts reproducible). Classes are keyed by
// the primary manager's canonical pointer even on shards — the import is
// injective on canonical nodes, so every context builds the same classes
// in the same order.
func (sc scanCtx) linkClasses(l topo.DirLinkID, stat *LinkCheckStat) []scanClass {
	var classes []scanClass
	if sc.v.e.opts.DisableLinkLocalEquiv {
		for _, s := range sc.v.stfs {
			if w, ok := s.Links[l]; ok {
				stat.Flows++
				classes = append(classes, scanClass{w: sc.node(w), vol: s.Flow.Gbps})
			}
		}
	} else {
		idx := make(map[*mtbdd.Node]int)
		for _, s := range sc.v.stfs {
			if w, ok := s.Links[l]; ok {
				stat.Flows++
				if i, ok := idx[w]; ok {
					classes[i].vol += s.Flow.Gbps
				} else {
					idx[w] = len(classes)
					classes = append(classes, scanClass{w: sc.node(w), vol: s.Flow.Gbps})
				}
			}
		}
	}
	stat.Classes = len(classes)
	return classes
}

// linkLoad aggregates the symbolic traffic load τ_l of a directed link
// from its equivalence classes.
func (sc scanCtx) linkLoad(l topo.DirLinkID) (*mtbdd.Node, LinkCheckStat) {
	if sc.gcFirst {
		sc.v.e.maybeGC(sc.v.stfs, nil)
	}
	start := time.Now()
	stat := LinkCheckStat{Link: l}
	tau := sc.m.Zero()
	for _, c := range sc.linkClasses(l, &stat) {
		tau = mulAddTimed(sc.v.kreduceT, sc.fv, tau, c.vol, c.w)
	}
	stat.Elapsed = time.Since(start)
	return tau, stat
}

// deliveredLoad aggregates the symbolic delivered traffic of every flow
// destined inside pfx, grouped in first-seen order like linkClasses.
func (sc scanCtx) deliveredLoad(pfx netip.Prefix) (*mtbdd.Node, LinkCheckStat) {
	start := time.Now()
	stat := LinkCheckStat{Kind: "delivered", Prefix: pfx}
	idx := make(map[*mtbdd.Node]int)
	var classes []scanClass
	for _, s := range sc.v.stfs {
		if !pfx.Contains(s.Flow.Dst) {
			continue
		}
		stat.Flows++
		if i, ok := idx[s.Delivered]; ok {
			classes[i].vol += s.Flow.Gbps
		} else {
			idx[s.Delivered] = len(classes)
			classes = append(classes, scanClass{w: sc.node(s.Delivered), vol: s.Flow.Gbps})
		}
	}
	stat.Classes = len(classes)
	tau := sc.m.Zero()
	for _, c := range classes {
		tau = mulAddTimed(sc.v.kreduceT, sc.fv, tau, c.vol, c.w)
	}
	stat.Elapsed = time.Since(start)
	return tau, stat
}

// LinkCheck is one compiled portfolio predicate on a symbolic load: an
// interval bound, an overload-style upper limit (Overload true — violation
// exactly when load > violThreshold(Max)), optionally conditioned on a
// failure variable.
type LinkCheck struct {
	Min, Max float64
	Overload bool
	// CondVar, when >= 0, makes the check conditional: it is evaluated on
	// the cofactor where the variable is failed (guard restriction), with
	// the scan's failure budget reduced by one so the restricted witness
	// plus the guard still fits the run's k.
	CondVar int
}

// ScanResult is one LinkCheck's outcome.
type ScanResult struct {
	Violated bool
	// Value is the load at the witness scenario.
	Value float64
	// FailedLinks / FailedRouters describe the witness scenario. For a
	// conditional check they include the guard element.
	FailedLinks   []topo.LinkID
	FailedRouters []topo.RouterID
}

// scanCheck converts a LinkCheck to its terminal-scan predicate.
func (c LinkCheck) scanCheck() mtbdd.ScanCheck {
	if c.Overload {
		return overloadScan(c.Max)
	}
	return boundScan(c.Min, c.Max)
}

// condBudget is the failure budget of a guard-restricted scan: one less
// than the run's effective k (the guard itself is a failure). Returns
// ok=false when the budget admits no failures at all, making every
// conditional property vacuous.
func (sc scanCtx) condBudget() (int, bool) {
	effK := sc.fv.K
	if sc.v.e.opts.CheckK > 0 {
		effK = sc.v.e.opts.CheckK
	}
	if effK < 0 {
		return -1, true // reduction disabled without a check budget: unlimited
	}
	if effK == 0 {
		return 0, false
	}
	return effK - 1, true
}

// scanPortfolio evaluates a batch of checks against one aggregated load:
// the unconditional checks share a single terminal scan of tau, and each
// distinct guard variable adds one scan of its cofactor (counted in the
// returned restrict count). Witness assignments of conditional checks get
// the guard element folded back in.
func (sc scanCtx) scanPortfolio(tau *mtbdd.Node, checks []LinkCheck) ([]ScanResult, int) {
	tau = sc.checkTau(tau)
	out := make([]ScanResult, len(checks))

	// Partition: unconditional checks share the one scan; conditionals
	// group by guard variable in first-seen order.
	var uncond []int
	condIdx := make(map[int][]int)
	var condVars []int
	for i, c := range checks {
		if c.CondVar < 0 {
			uncond = append(uncond, i)
		} else {
			if _, seen := condIdx[c.CondVar]; !seen {
				condVars = append(condVars, c.CondVar)
			}
			condIdx[c.CondVar] = append(condIdx[c.CondVar], i)
		}
	}

	fill := func(idxs []int, hits []mtbdd.ScanHit, guard int) {
		for j, i := range idxs {
			h := hits[j]
			if !h.OK {
				continue
			}
			links, routers := scenarioWitness(sc.fv, h.A)
			if guard >= 0 {
				if l, r, isLink := sc.fv.VarElement(guard); isLink {
					links = append(links, l)
					sort.Slice(links, func(a, b int) bool { return links[a] < links[b] })
				} else {
					routers = append(routers, r)
					sort.Slice(routers, func(a, b int) bool { return routers[a] < routers[b] })
				}
			}
			out[i] = ScanResult{Violated: true, Value: h.Value, FailedLinks: links, FailedRouters: routers}
		}
	}

	if len(uncond) > 0 {
		scs := make([]mtbdd.ScanCheck, len(uncond))
		for j, i := range uncond {
			scs[j] = checks[i].scanCheck()
		}
		fill(uncond, sc.m.ScanOutside(tau, scs), -1)
	}

	restricts := 0
	if len(condVars) > 0 {
		budget, feasible := sc.condBudget()
		if feasible {
			for _, cv := range condVars {
				idxs := condIdx[cv]
				scs := make([]mtbdd.ScanCheck, len(idxs))
				for j, i := range idxs {
					s := checks[i].scanCheck()
					s.MaxFails = budget
					scs[j] = s
				}
				restricts++
				fill(idxs, sc.m.ScanOutside(sc.m.Restrict(tau, cv, false), scs), cv)
			}
		}
	}
	return out, restricts
}

// ScanLink aggregates directed link l's load once and evaluates every
// check against it in a single shared terminal scan (conditional checks
// add one cofactor scan per distinct guard; the count is returned). This
// is the portfolio engine's per-link primitive.
func (v *Verifier) ScanLink(l topo.DirLinkID, checks []LinkCheck) ([]ScanResult, LinkCheckStat, int) {
	sc := v.primaryScan()
	tau, stat := sc.linkLoad(l)
	res, restricts := sc.scanPortfolio(tau, checks)
	return res, stat, restricts
}

// ScanDelivered is ScanLink for the delivered traffic of a prefix.
func (v *Verifier) ScanDelivered(pfx netip.Prefix, checks []LinkCheck) ([]ScanResult, LinkCheckStat, int) {
	sc := v.primaryScan()
	tau, stat := sc.deliveredLoad(pfx)
	res, restricts := sc.scanPortfolio(tau, checks)
	return res, stat, restricts
}

// ScanAggregate aggregates the loads of a set of directed links into one
// symbolic quantity — their pointwise sum (total traffic crossing a cut)
// or pointwise max (the worst-loaded member) — and evaluates every check
// against it in one shared terminal scan. Each member link's load is
// aggregated exactly as ScanLink does; the cross-link combine runs on the
// fused k-budgeted kernels (AddNK / MaxK), so every intermediate stays
// within the KReduce'd size envelope.
func (v *Verifier) ScanAggregate(links []topo.DirLinkID, max bool, checks []LinkCheck) ([]ScanResult, LinkCheckStat, int) {
	sc := v.primaryScan()
	start := time.Now()
	stat := LinkCheckStat{Kind: "aggregate"}
	taus := make([]*mtbdd.Node, 0, len(links))
	for _, l := range links {
		tau, lstat := sc.linkLoad(l)
		stat.Flows += lstat.Flows
		stat.Classes += lstat.Classes
		taus = append(taus, tau)
	}
	var tau *mtbdd.Node
	if max {
		tau = sc.m.Zero()
		for _, t := range taus {
			tau = sc.m.MaxK(tau, t, sc.fv.K)
		}
	} else {
		tau = sc.m.AddNK(taus, sc.fv.K)
	}
	stat.Elapsed = time.Since(start)
	res, restricts := sc.scanPortfolio(tau, checks)
	return res, stat, restricts
}

// RunScan runs fn under the verifier's governance ladder: cancellation is
// checked first, a node-budget breach triggers an engine-wide GC and one
// retry, and an unrelieved breach is reported as skipped under the degrade
// policy (fatal otherwise). fn must be idempotent — it reruns on retry.
func (v *Verifier) RunScan(fn func()) (skipped bool, err error) {
	return v.runGoverned(&Report{}, func(*Report) { fn() })
}

// Vars exposes the run's failure-variable layout (to resolve property
// guards to variables).
func (v *Verifier) Vars() *routesim.FailVars { return v.e.fv }

// checkLink verifies one directed link against an upper limit, dispatching
// on the early-termination ablation.
func (sc scanCtx) checkLink(l topo.DirLinkID, limit float64) (LinkCheckStat, []Violation) {
	if sc.v.e.opts.DisableEarlyTermination {
		return sc.checkLinkFull(l, limit)
	}
	return sc.checkLinkPruned(l, limit)
}

// checkLinkFull aggregates the whole load and scans it once.
func (sc scanCtx) checkLinkFull(l topo.DirLinkID, limit float64) (LinkCheckStat, []Violation) {
	tau, stat := sc.linkLoad(l)
	var viols []Violation
	if a, val, bad := sc.checkOverload(tau, limit); bad {
		links, routers := scenarioWitness(sc.fv, a)
		viols = append(viols, Violation{
			Kind: "link-load", Link: l, Value: val, Min: 0, Max: limit,
			FailedLinks: links, FailedRouters: routers,
		})
	}
	return stat, viols
}

// checkOverload scans tau against an upper limit using the shared
// threshold.
func (sc scanCtx) checkOverload(tau *mtbdd.Node, limit float64) (mtbdd.Assignment, float64, bool) {
	h := sc.m.ScanOutside(sc.checkTau(tau), []mtbdd.ScanCheck{overloadScan(limit)})[0]
	return h.A, h.Value, h.OK
}

// checkLinkPruned verifies one directed link against an upper limit with
// the §6 early-termination heuristics: a link whose summed per-class
// maxima cannot reach the limit is passed without any MTBDD aggregation,
// and during aggregation the scan stops as soon as the accumulated maximum
// proves a violation (loads are non-negative, so partial sums only grow)
// or the remaining mass cannot reach the limit.
func (sc scanCtx) checkLinkPruned(l topo.DirLinkID, limit float64) (LinkCheckStat, []Violation) {
	if sc.gcFirst {
		sc.v.e.maybeGC(sc.v.stfs, nil)
	}
	start := time.Now()
	m := sc.m
	stat := LinkCheckStat{Link: l}
	classes := sc.linkClasses(l, &stat)
	for i := range classes {
		_, hi := m.Range(classes[i].w)
		classes[i].max = hi
	}

	threshold := violThreshold(limit)

	// Quick bound: if even the per-class maxima cannot reach the limit,
	// the property holds on this link with no aggregation at all.
	total := 0.0
	for _, c := range classes {
		total += c.vol * c.max
	}
	if total <= threshold {
		stat.Elapsed = time.Since(start)
		return stat, nil
	}

	// Aggregate classes in descending contribution order (stable for
	// reproducibility), stopping as soon as either verdict is certain.
	sort.SliceStable(classes, func(i, j int) bool { return classes[i].vol*classes[i].max > classes[j].vol*classes[j].max })
	remaining := total
	tau := m.Zero()
	for _, c := range classes {
		tau = mulAddTimed(sc.v.kreduceT, sc.fv, tau, c.vol, c.w)
		remaining -= c.vol * c.max
		_, hi := m.Range(tau)
		if hi > threshold {
			// The partial maximum already violates, and adding more
			// classes only increases it.
			break
		}
		if hi+remaining <= threshold {
			// Even if every remaining class peaked simultaneously the
			// limit is unreachable.
			stat.Elapsed = time.Since(start)
			return stat, nil
		}
	}
	stat.Elapsed = time.Since(start)
	var viols []Violation
	if a, val, bad := sc.checkOverload(tau, limit); bad {
		links, routers := scenarioWitness(sc.fv, a)
		// tau may be a partial sum (early break): recompute the exact
		// load at the witness by evaluating every class there.
		assign := sc.fv.Scenario(links, routers)
		exact := 0.0
		for _, c := range classes {
			exact += c.vol * m.Eval(c.w, assign)
		}
		if exact > val {
			val = exact
		}
		viols = append(viols, Violation{
			Kind: "link-load", Link: l, Value: val, Min: 0, Max: limit,
			FailedLinks: links, FailedRouters: routers,
		})
	}
	return stat, viols
}
