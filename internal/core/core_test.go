package core

import (
	"math"
	"net/netip"
	"testing"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/paperex"
	"github.com/yu-verify/yu/internal/routesim"
	"github.com/yu-verify/yu/internal/topo"
)

// fixture bundles everything the tests need.
type fixture struct {
	spec *config.Spec
	fv   *routesim.FailVars
	eng  *Engine
	ver  *Verifier
}

// mustRun fails the test on a governance error from Verifier.Run (tests
// that exercise governance handle the error themselves).
func mustRun(t testing.TB, run func() (*Report, error)) *Report {
	t.Helper()
	rep, err := run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func newFixture(t testing.TB, specText string, mode topo.FailureMode, k int, opts Options) *fixture {
	t.Helper()
	spec, err := config.ParseSpecString(specText)
	if err != nil {
		t.Fatal(err)
	}
	m := mtbdd.New()
	fv := routesim.NewFailVars(m, spec.Net, mode, k)
	rs, err := routesim.Run(fv, spec.Configs)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(rs, opts)
	return &fixture{spec: spec, fv: fv, eng: eng, ver: NewVerifier(eng, spec.Flows)}
}

func motivatingFixture(t testing.TB, k int) *fixture {
	return newFixture(t, paperex.Motivating, topo.FailLinks, k, Options{})
}

// load evaluates the symbolic load of directed link a->b under the given
// failed links.
func (fx *fixture) load(t testing.TB, a, b string, failed ...string) float64 {
	t.Helper()
	d, ok := fx.spec.Net.FindDirLink(a, b)
	if !ok {
		t.Fatalf("no link %s->%s", a, b)
	}
	tau, _ := fx.ver.LinkLoad(d)
	return fx.eng.Manager().Eval(tau, fx.scenario(t, failed))
}

func (fx *fixture) scenario(t testing.TB, failed []string) []bool {
	t.Helper()
	var ids []topo.LinkID
	for _, name := range failed {
		var a, b string
		for i := 0; i < len(name); i++ {
			if name[i] == '-' {
				a, b = name[:i], name[i+1:]
			}
		}
		l, ok := fx.spec.Net.FindLink(a, b)
		if !ok {
			t.Fatalf("no link %s", name)
		}
		ids = append(ids, l.ID)
	}
	return fx.fv.Scenario(ids, nil)
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestMotivatingExampleScenarioA reproduces Figure 1(a): the no-failure
// traffic loads on every labeled link.
func TestMotivatingExampleScenarioA(t *testing.T) {
	fx := motivatingFixture(t, 2)
	checks := []struct {
		a, b string
		want float64
	}{
		{"A", "C", 20},
		{"B", "C", 40},
		{"B", "D", 40},
		{"C", "E", 70},
		{"D", "E", 30},
		{"D", "C", 10},
		{"A", "B", 0},
	}
	for _, c := range checks {
		if got := fx.load(t, c.a, c.b); !approx(got, c.want) {
			t.Errorf("load %s->%s = %.6g, want %.6g", c.a, c.b, got, c.want)
		}
	}
	// The two parallel E-F links carry 50 Gbps each.
	efSum := 0.0
	for i := range fx.spec.Net.Links {
		l := fx.spec.Net.Link(topo.LinkID(i))
		an, bn := fx.spec.Net.Router(l.A).Name, fx.spec.Net.Router(l.B).Name
		if (an == "E" && bn == "F") || (an == "F" && bn == "E") {
			d := topo.MakeDirLinkID(l.ID, topo.AtoB)
			if an == "F" {
				d = topo.MakeDirLinkID(l.ID, topo.BtoA)
			}
			tau, _ := fx.ver.LinkLoad(d)
			got := fx.eng.Manager().Eval(tau, fx.scenario(t, nil))
			if !approx(got, 50) {
				t.Errorf("E->F link %d carries %.6g, want 50", i, got)
			}
			efSum += got
		}
	}
	if !approx(efSum, 100) {
		t.Errorf("total E->F = %.6g, want 100", efSum)
	}
}

// TestMotivatingExampleScenarioB reproduces Figure 1(b): B-C failed.
func TestMotivatingExampleScenarioB(t *testing.T) {
	fx := motivatingFixture(t, 2)
	checks := []struct {
		a, b string
		want float64
	}{
		{"A", "C", 20},
		{"B", "C", 0},
		{"B", "D", 80},
		{"D", "E", 60},
		{"D", "C", 20},
		{"C", "E", 40}, // f1's 20 plus p2's 20 re-routed via [F]
	}
	for _, c := range checks {
		if got := fx.load(t, c.a, c.b, "B-C"); !approx(got, c.want) {
			t.Errorf("load %s->%s = %.6g, want %.6g", c.a, c.b, got, c.want)
		}
	}
}

// TestMotivatingExampleScenarioC reproduces Figure 1(c): B-D failed — all
// 100 Gbps of both flows crosses C-E, the paper's P2 violation.
func TestMotivatingExampleScenarioC(t *testing.T) {
	fx := motivatingFixture(t, 2)
	if got := fx.load(t, "C", "E", "B-D"); !approx(got, 100) {
		t.Errorf("C->E = %.6g, want 100", got)
	}
	if got := fx.load(t, "B", "C", "B-D"); !approx(got, 80) {
		t.Errorf("B->C = %.6g, want 80", got)
	}
	if got := fx.load(t, "D", "E", "B-D"); !approx(got, 0) {
		t.Errorf("D->E = %.6g, want 0", got)
	}
}

// TestMotivatingExampleScenarioD reproduces Figure 1(d): A-C failed — f1
// detours via B and splits over B-C/B-D.
func TestMotivatingExampleScenarioD(t *testing.T) {
	fx := motivatingFixture(t, 2)
	checks := []struct {
		a, b string
		want float64
	}{
		{"A", "B", 20},
		{"B", "C", 50}, // 40 of f2 + 10 of f1
		{"B", "D", 50},
		{"C", "E", 60}, // f1 10 + f2 40 + p2 10
	}
	for _, c := range checks {
		if got := fx.load(t, c.a, c.b, "A-C"); !approx(got, c.want) {
			t.Errorf("load %s->%s = %.6g, want %.6g", c.a, c.b, got, c.want)
		}
	}
}

// TestMotivatingExampleScenarioE reproduces Figure 1(e): B-C and B-D both
// failed — f2 detours through A and everything crosses A-C and C-E.
func TestMotivatingExampleScenarioE(t *testing.T) {
	fx := motivatingFixture(t, 2)
	failed := []string{"B-C", "B-D"}
	if got := fx.load(t, "B", "A", failed...); !approx(got, 80) {
		t.Errorf("B->A = %.6g, want 80", got)
	}
	if got := fx.load(t, "A", "C", failed...); !approx(got, 100) {
		t.Errorf("A->C = %.6g, want 100", got)
	}
	if got := fx.load(t, "C", "E", failed...); !approx(got, 100) {
		t.Errorf("C->E = %.6g, want 100", got)
	}
}

// TestMotivatingP2SingleFailure checks the paper's headline finding: P2
// ("no link carries >= 95 Gbps") is violated under single link failures,
// and the verifier finds B-D among the witnesses.
func TestMotivatingP2SingleFailure(t *testing.T) {
	fx := motivatingFixture(t, 1)
	rep := &Report{}
	fx.ver.CheckOverloadAll(0.95, rep)
	if len(rep.Violations) == 0 {
		t.Fatal("expected P2 violations under 1-link failures")
	}
	net := fx.spec.Net
	bd, _ := net.FindLink("B", "D")
	ce, _ := net.FindDirLink("C", "E")
	ceOverloaded := false
	for _, v := range rep.Violations {
		if len(v.FailedLinks) > 1 {
			t.Errorf("witness with %d failures exceeds k=1", len(v.FailedLinks))
		}
		if v.Link == ce {
			ceOverloaded = true
		}
	}
	if !ceOverloaded {
		t.Fatal("C->E must be overloadable under a single failure")
	}
	// Enumerating all violating scenarios for C->E must include the
	// paper's B-D failure with load 100.
	tau, _ := fx.ver.LinkLoad(ce)
	foundBD := false
	for _, v := range fx.ver.ViolatingScenarios(tau, 0, 95, 100) {
		if len(v.FailedLinks) == 1 && v.FailedLinks[0] == bd.ID {
			foundBD = true
			if !approx(v.Value, 100) {
				t.Errorf("C-E load under B-D failure = %.6g, want 100", v.Value)
			}
		}
	}
	if !foundBD {
		t.Error("missing the paper's B-D failure -> C-E overload scenario")
	}
}

// TestMotivatingP1 checks P1 (delivered >= 70 Gbps): it holds for k=1 (the
// paper's claim) but fails for k=2 — both parallel E-F links failing cuts F
// off entirely and every route is withdrawn.
func TestMotivatingP1(t *testing.T) {
	dst := netip.MustParsePrefix("100.0.0.0/24")
	for _, tc := range []struct {
		k     int
		holds bool
	}{{1, true}, {2, false}, {3, false}} {
		fx := motivatingFixture(t, tc.k)
		rep := &Report{}
		fx.ver.CheckDelivered(topo.DeliveredBound{Prefix: dst, Min: 70, Max: math.Inf(1)}, rep)
		if (len(rep.Violations) == 0) != tc.holds {
			t.Errorf("k=%d: P1 holds=%v, want %v (violations: %+v)",
				tc.k, len(rep.Violations) == 0, tc.holds, rep.Violations)
		}
		if !tc.holds {
			v := rep.Violations[0]
			if len(v.FailedLinks) > tc.k {
				t.Errorf("witness has %d failures > k=%d", len(v.FailedLinks), tc.k)
			}
			if v.Value >= 70 {
				t.Errorf("violation value %.6g not below 70", v.Value)
			}
		}
	}
}

// TestFlowConservation checks that delivered + dropped = 1 for every flow
// under every single and double failure scenario (no traffic leaks).
func TestFlowConservation(t *testing.T) {
	fx := motivatingFixture(t, 2)
	m := fx.eng.Manager()
	n := fx.spec.Net.NumLinks()
	for _, s := range fx.ver.FlowSTFs() {
		if s.InFlight != m.Zero() {
			t.Fatalf("flow %s has in-flight traffic (loop?)", s.Flow)
		}
		check := func(failed []topo.LinkID) {
			assign := fx.fv.Scenario(failed, nil)
			sum := m.Eval(s.Delivered, assign) + m.Eval(s.Dropped, assign)
			if !approx(sum, 1) {
				t.Fatalf("flow %s: delivered+dropped = %.9g under failures %v", s.Flow, sum, failed)
			}
		}
		check(nil)
		for i := 0; i < n; i++ {
			check([]topo.LinkID{topo.LinkID(i)})
			for j := i + 1; j < n; j++ {
				check([]topo.LinkID{topo.LinkID(i), topo.LinkID(j)})
			}
		}
	}
}

// TestLinkLocalEquivalence checks §5.3: on the E->F links, f1 and f2
// distribute identically (both 50/50), so they fall into one equivalence
// class even though their global behavior differs.
func TestLinkLocalEquivalence(t *testing.T) {
	fx := newFixture(t, paperex.Motivating, topo.FailLinks, 1, Options{DisableGlobalEquiv: true})
	net := fx.spec.Net
	var efLink topo.DirLinkID
	found := false
	for i := range net.Links {
		l := net.Link(topo.LinkID(i))
		an, bn := net.Router(l.A).Name, net.Router(l.B).Name
		if an == "E" && bn == "F" {
			efLink = topo.MakeDirLinkID(l.ID, topo.AtoB)
			found = true
			break
		} else if an == "F" && bn == "E" {
			efLink = topo.MakeDirLinkID(l.ID, topo.BtoA)
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no E-F link")
	}
	_, stat := fx.ver.LinkLoad(efLink)
	if stat.Flows != 2 {
		t.Fatalf("flows on E->F = %d, want 2", stat.Flows)
	}
	if stat.Classes != 1 {
		t.Errorf("equivalence classes on E->F = %d, want 1 (f1 and f2 are link-local equivalent)", stat.Classes)
	}
	// On A->C only f1 appears (f2 reaches it only under >=2 failures,
	// which the k=1 budget reduces away).
	ac, _ := net.FindDirLink("A", "C")
	_, stat2 := fx.ver.LinkLoad(ac)
	if stat2.Flows != 1 || stat2.Classes != 1 {
		t.Errorf("A->C stats = %+v", stat2)
	}
	// Disabling the reduction must produce classes == flows.
	fx2 := newFixture(t, paperex.Motivating, topo.FailLinks, 1,
		Options{DisableGlobalEquiv: true, DisableLinkLocalEquiv: true})
	_, stat3 := fx2.ver.LinkLoad(efLink)
	if stat3.Classes != stat3.Flows {
		t.Errorf("ablation: classes %d != flows %d", stat3.Classes, stat3.Flows)
	}
}

// TestGlobalEquivalence checks §6's global flow equivalence: two flows
// with the same ingress/destination-class/DSCP are executed once.
func TestGlobalEquivalence(t *testing.T) {
	spec := paperex.Motivating + "\nflow f3 ingress B src 11.0.0.3 dst 100.0.0.9 dscp 5 gbps 5\n"
	fx := newFixture(t, spec, topo.FailLinks, 1, Options{})
	rep := mustRun(t, func() (*Report, error) { return fx.ver.Run(nil, nil, 0) })
	if rep.FlowsTotal != 3 {
		t.Fatalf("FlowsTotal = %d", rep.FlowsTotal)
	}
	if rep.FlowsExecuted != 2 {
		t.Errorf("FlowsExecuted = %d, want 2 (f2 and f3 merge)", rep.FlowsExecuted)
	}
	// The merged execution must carry the summed volume: B->D at no
	// failure carries (80+5)/2 = 42.5.
	if got := fx.load(t, "B", "D"); !approx(got, 42.5) {
		t.Errorf("B->D = %.6g, want 42.5", got)
	}
	// Ablation: all three executed.
	fx2 := newFixture(t, spec, topo.FailLinks, 1, Options{DisableGlobalEquiv: true})
	rep2 := mustRun(t, func() (*Report, error) { return fx2.ver.Run(nil, nil, 0) })
	if rep2.FlowsExecuted != 3 {
		t.Errorf("ablation FlowsExecuted = %d, want 3", rep2.FlowsExecuted)
	}
	if got := fx2.load(t, "B", "D"); !approx(got, 42.5) {
		t.Errorf("ablation B->D = %.6g, want 42.5", got)
	}
}

// TestSTFMatchesPaperFormula checks §4.2's example: f1's STF on C-E is
// 1*x_{A-C} + 0.5*!x_{A-C}*x_{B-C}*x_{B-D} over the three variables the
// paper considers.
func TestSTFMatchesPaperFormula(t *testing.T) {
	fx := newFixture(t, paperex.Motivating, topo.FailLinks, 3, Options{DisableGlobalEquiv: true})
	net := fx.spec.Net
	ce, _ := net.FindDirLink("C", "E")
	var f1 *FlowSTF
	for _, s := range fx.ver.FlowSTFs() {
		if s.Flow.Name == "f1" {
			f1 = s
		}
	}
	if f1 == nil {
		t.Fatal("f1 missing")
	}
	w := f1.Links[ce]
	eval := func(failed ...string) float64 {
		return fx.eng.Manager().Eval(w, fx.scenario(t, failed))
	}
	if got := eval(); got != 1 {
		t.Errorf("scenario (a): STF = %v, want 1", got)
	}
	if got := eval("B-C"); got != 1 {
		t.Errorf("scenario (b): STF = %v, want 1", got)
	}
	if got := eval("B-D"); got != 1 {
		t.Errorf("scenario (c): STF = %v, want 1", got)
	}
	if got := eval("A-C"); got != 0.5 {
		t.Errorf("scenario (d): STF = %v, want 0.5", got)
	}
	if got := eval("B-C", "B-D"); got != 1 {
		t.Errorf("scenario (e): STF = %v, want 1", got)
	}
	// The remaining scenario the formula does not cover: A-C plus B-C.
	if got := eval("A-C", "B-C"); got != 0 {
		t.Errorf("A-C+B-C: STF = %v, want 0 (f1 dead-ends via D? no: dropped at A? via B-D it flows through D-E)", got)
	}
}

// TestViolationDescribe covers the human-readable rendering.
func TestViolationDescribe(t *testing.T) {
	fx := motivatingFixture(t, 1)
	rep := &Report{}
	fx.ver.CheckOverloadAll(0.95, rep)
	if len(rep.Violations) == 0 {
		t.Fatal("need violations")
	}
	s := rep.Violations[0].Describe(fx.spec.Net)
	if s == "" || !contains(s, "Gbps") {
		t.Errorf("Describe = %q", s)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestAggressiveGCDoesNotChangeResults forces a managed GC after every
// flow execution and link check (threshold 1) and verifies the verdicts
// and loads are identical to a GC-free run.
func TestAggressiveGCDoesNotChangeResults(t *testing.T) {
	base := newFixture(t, paperex.Motivating, topo.FailLinks, 2, Options{})
	gcd := newFixture(t, paperex.Motivating, topo.FailLinks, 2, Options{GCThreshold: 1})
	repA := mustRun(t, func() (*Report, error) { return base.ver.Run(nil, nil, 0.95) })
	repB := mustRun(t, func() (*Report, error) { return gcd.ver.Run(nil, nil, 0.95) })
	if repA.Holds != repB.Holds || len(repA.Violations) != len(repB.Violations) {
		t.Fatalf("GC changed the verdict: %d vs %d violations", len(repA.Violations), len(repB.Violations))
	}
	if gcd.eng.Manager().GCRuns() == 0 {
		t.Fatal("expected managed GCs to run")
	}
	for _, c := range []struct{ a, b string }{{"C", "E"}, {"B", "D"}, {"D", "C"}} {
		la := base.load(t, c.a, c.b, "B-C")
		lb := gcd.load(t, c.a, c.b, "B-C")
		if !approx(la, lb) {
			t.Errorf("load %s->%s differs after GC: %v vs %v", c.a, c.b, la, lb)
		}
	}
}

// TestSTFRanges checks the value invariants of symbolic traffic
// fractions (paper Table 2): delivered and dropped fractions live in
// [0,1]; link STFs are non-negative and bounded by the maximum number of
// times a flow can re-cross a link (SR detours can legitimately push a
// link STF above 1 — e.g. traffic passing C->D natively and again inside
// a [C,F] tunnel — so 1 is *not* an upper bound there).
func TestSTFRanges(t *testing.T) {
	for _, text := range []string{paperex.Motivating, paperex.SRAnycast, paperex.Misconfig} {
		fx := newFixture(t, text, topo.FailLinks, 2, Options{DisableGlobalEquiv: true})
		m := fx.eng.Manager()
		for _, s := range fx.ver.FlowSTFs() {
			for l, w := range s.Links {
				lo, hi := m.Range(w)
				if lo < -1e-9 {
					t.Errorf("%s STF on %s negative: %v",
						s.Flow.Name, fx.spec.Net.DirLinkName(l), lo)
				}
				if hi > 3+1e-9 {
					t.Errorf("%s STF on %s implausibly high: %v (loop?)",
						s.Flow.Name, fx.spec.Net.DirLinkName(l), hi)
				}
			}
			lo, hi := m.Range(s.Delivered)
			if lo < -1e-9 || hi > 1+1e-9 {
				t.Errorf("%s Delivered out of [0,1]: [%v,%v]", s.Flow.Name, lo, hi)
			}
			lo, hi = m.Range(s.Dropped)
			if lo < -1e-9 || hi > 1+1e-9 {
				t.Errorf("%s Dropped out of [0,1]: [%v,%v]", s.Flow.Name, lo, hi)
			}
		}
	}
}

// TestNoRouteDrops checks a flow to an unrouted destination is fully
// dropped at its ingress.
func TestNoRouteDrops(t *testing.T) {
	spec := paperex.Motivating + "\nflow lost ingress A src 11.0.0.9 dst 203.0.113.1 gbps 7\n"
	fx := newFixture(t, spec, topo.FailLinks, 1, Options{DisableGlobalEquiv: true})
	m := fx.eng.Manager()
	for _, s := range fx.ver.FlowSTFs() {
		if s.Flow.Name != "lost" {
			continue
		}
		if got := m.EvalAllAlive(s.Dropped); got != 1 {
			t.Errorf("unrouted flow dropped fraction = %v, want 1", got)
		}
		if len(s.Links) != 0 {
			t.Errorf("unrouted flow crossed %d links", len(s.Links))
		}
		return
	}
	t.Fatal("lost flow not executed")
}
