// Package core implements YU's primary contribution: symbolic traffic
// execution (paper §4) and k-failure traffic load property verification
// (§4.5, §5) on top of guarded RIBs from symbolic route simulation.
//
// The forwarding process of each flow is executed once, symbolically, over
// all failure scenarios: every router/link state is a boolean variable and
// the fraction of a flow's traffic on each directed link is a
// pseudo-boolean function represented as an MTBDD (the symbolic traffic
// fraction, STF). Every MTBDD produced along the way is kept small with
// KREDUCE (§5.2), and per-link verification aggregates flows through
// link-local equivalence classes (§5.3), which hash-consing turns into
// pointer-keyed grouping.
package core

import (
	"context"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/obs"
	"github.com/yu-verify/yu/internal/routesim"
	"github.com/yu-verify/yu/internal/topo"
)

// BudgetPolicy selects the engine's response to an MTBDD node-budget
// breach that a managed GC could not relieve.
type BudgetPolicy int

const (
	// BudgetFail aborts the run with govern.ErrNodeBudget; the Report
	// returned alongside it is partial (completed checks are kept, the
	// remainder is marked unchecked).
	BudgetFail BudgetPolicy = iota
	// BudgetDegrade walks the degradation ladder instead of failing: a
	// breaching flow is re-verified by bounded concrete enumeration
	// (requires Options.Configs), and a breaching link check is skipped
	// and listed as unchecked.
	BudgetDegrade
)

// Options tunes the engine; the zero value enables every optimization.
type Options struct {
	// MaxIterations bounds symbolic traffic execution (Algorithm 1's I,
	// the TTL analogue). 0 derives a bound from the network diameter and
	// the longest SR segment list.
	MaxIterations int
	// DisableLinkLocalEquiv turns off the §5.3 flow grouping when
	// aggregating per-link traffic loads (ablation for Fig 13/14).
	DisableLinkLocalEquiv bool
	// DisableGlobalEquiv turns off global flow equivalence (§6): merging
	// flows with identical (ingress, destination class, DSCP) before
	// execution.
	DisableGlobalEquiv bool
	// DisableEarlyTermination turns off the §6 pruning heuristics in
	// CheckOverloadAll (quick bounds + early stop), forcing full
	// aggregation on every link.
	DisableEarlyTermination bool
	// CheckK, when > 0, applies KReduce(·, CheckK) to each aggregated
	// STL immediately before the terminal scan. It is how the
	// "w/o MTBDD reduction" ablation (budget -1 in FailVars) still
	// yields verdicts restricted to at most CheckK failures.
	CheckK int
	// GCThreshold is the live MTBDD node count that triggers a managed
	// garbage collection between flow executions (0 = default ~4M).
	GCThreshold int
	// Ctx, when non-nil, makes the run cancellable: it is polled inside
	// MTBDD operations (via the manager interrupt hook) and at per-flow
	// and per-link boundaries. Cancellation surfaces as
	// govern.ErrCanceled / govern.ErrDeadline from Verifier.Run.
	Ctx context.Context
	// NodeBudget, when > 0, bounds the live nodes of every manager the
	// pipeline creates (the primary and each shard's). A breach first
	// triggers a managed GC and one retry; what happens if the retry
	// still breaches is decided by OnBudget.
	NodeBudget int
	// OnBudget selects the response to an unrelieved budget breach.
	OnBudget BudgetPolicy
	// Configs enables the concrete per-flow fallback of BudgetDegrade
	// (the router configurations are needed to build a concrete
	// simulator). Without it a breaching flow is a hard error even when
	// degrading.
	Configs config.Configs
	// Obs, when non-nil, collects run metrics: phase timings, per-worker
	// counters, and per-manager MTBDD stats (DESIGN.md §11). nil disables
	// all recording at zero cost.
	Obs *obs.Registry
	// CostHints warm-starts the parallel scheduler's cost model: measured
	// per-class execution costs from a previous run (Verifier.CostHints),
	// keyed by the stable class key. Missing or non-positive entries fall
	// back to a topology heuristic. Purely a scheduling hint — verdicts
	// and reports never depend on it.
	CostHints map[string]float64
	// STFCache, when non-nil, is consulted by the sequential verifier
	// before executing each equivalence class and fed every freshly
	// executed STF — the reuse hook of the incremental daemon
	// (internal/serve). See the STFCache interface contract.
	STFCache STFCache
	// ClassifyPrefixes, when non-nil, overrides the prefix set the
	// destination classifier is built from. The compositional pipeline
	// (internal/compose) passes the global prefix union here so a
	// domain engine — and the final check engine over an empty route-sim
	// result — classifies destinations exactly as the monolithic engine
	// would, keeping equivalence classes and their order identical.
	ClassifyPrefixes []netip.Prefix
}

// Engine executes flows symbolically against one route-simulation result.
// It is not safe for concurrent use (it shares the MTBDD manager).
type Engine struct {
	net  *topo.Network
	rs   *routesim.Result
	fv   *routesim.FailVars
	m    *mtbdd.Manager
	opts Options

	classifier  *classifier
	igpCache    map[igpKey]*igpVec
	ipCache     map[ipKey]*step
	srCache     map[srKey]*step
	maxIter     int
	gcThreshold int
}

// NewEngine creates an engine over a route simulation result.
func NewEngine(rs *routesim.Result, opts Options) *Engine {
	e := &Engine{
		net:      rs.Vars.Net,
		rs:       rs,
		fv:       rs.Vars,
		m:        rs.Vars.M,
		opts:     opts,
		igpCache: make(map[igpKey]*igpVec),
		ipCache:  make(map[ipKey]*step),
		srCache:  make(map[srKey]*step),
	}
	installGovernance(e.m, opts)
	e.classifier = newClassifier(rs, opts.ClassifyPrefixes)
	e.maxIter = opts.MaxIterations
	if e.maxIter <= 0 {
		longestSR := 0
		for _, pols := range rs.SR {
			for _, p := range pols {
				for _, path := range p.Paths {
					if len(path.Segments) > longestSR {
						longestSR = len(path.Segments)
					}
				}
			}
		}
		d := e.net.Diameter()
		e.maxIter = (longestSR + 2) * (d + 2)
		if e.maxIter < 16 {
			e.maxIter = 16
		}
	}
	return e
}

// Manager exposes the engine's MTBDD manager (for stats and evaluation).
func (e *Engine) Manager() *mtbdd.Manager { return e.m }

// Vars exposes the failure-variable mapping.
func (e *Engine) Vars() *routesim.FailVars { return e.fv }

// Net exposes the topology.
func (e *Engine) Net() *topo.Network { return e.net }

// classifier groups destination addresses into prefix classes: two
// addresses in the same class match exactly the same configured prefixes
// on every router, so they share all forwarding encodings (§4.4,
// "pre-computed and cached (with prefix classification)").
type classifier struct {
	prefixes []netip.Prefix
	classes  map[string]int
	byAddr   map[netip.Addr]int
	members  [][]netip.Prefix
}

func newClassifier(rs *routesim.Result, override []netip.Prefix) *classifier {
	set := make(map[netip.Prefix]struct{})
	if override != nil || rs == nil {
		for _, pfx := range override {
			set[pfx] = struct{}{}
		}
	} else {
		for _, rib := range rs.BGP.RIBs {
			for pfx := range rib {
				set[pfx] = struct{}{}
			}
		}
		for _, sts := range rs.Statics {
			for _, st := range sts {
				set[st.Prefix] = struct{}{}
			}
		}
	}
	c := &classifier{
		classes: make(map[string]int),
		byAddr:  make(map[netip.Addr]int),
	}
	for pfx := range set {
		c.prefixes = append(c.prefixes, pfx)
	}
	sort.Slice(c.prefixes, func(i, j int) bool {
		a, b := c.prefixes[i], c.prefixes[j]
		if a.Bits() != b.Bits() {
			return a.Bits() > b.Bits()
		}
		return a.Addr().Less(b.Addr())
	})
	return c
}

// classOf returns the prefix class of addr, creating it on first use.
func (c *classifier) classOf(addr netip.Addr) int {
	if id, ok := c.byAddr[addr]; ok {
		return id
	}
	var matched []netip.Prefix
	var sb strings.Builder
	for _, pfx := range c.prefixes {
		if pfx.Contains(addr) {
			matched = append(matched, pfx)
			sb.WriteString(pfx.String())
			sb.WriteByte(';')
		}
	}
	key := sb.String()
	id, ok := c.classes[key]
	if !ok {
		id = len(c.members)
		c.classes[key] = id
		c.members = append(c.members, matched)
	}
	c.byAddr[addr] = id
	return id
}

// matchedPrefixes returns the prefixes of a class, most specific first.
func (c *classifier) matchedPrefixes(class int) []netip.Prefix {
	return c.members[class]
}

// stack is a label stack: the remaining SR segments, front first. The
// empty stack means plain IP forwarding.
type stack []topo.RouterID

func (s stack) key() string {
	if len(s) == 0 {
		return ""
	}
	// Allocation-light: one append-built buffer instead of per-segment
	// Fprintf; this runs once per wavefront cell per iteration.
	buf := make([]byte, 0, 4*len(s))
	for _, r := range s {
		buf = strconv.AppendInt(buf, int64(r), 10)
		buf = append(buf, ',')
	}
	return string(buf)
}

// outKey addresses one cell of the paper's matrix M: a directed link and
// the label stack the traffic carries on it.
type outKey struct {
	link     topo.DirLinkID
	stackKey string
}

// step is the cached unit-forwarding behavior of one router for one
// (prefix class, dscp, stack) situation: where one unit of arriving
// traffic goes. All MTBDDs are already KReduce'd.
type step struct {
	// out maps (link, next stack) to the traffic fraction forwarded there.
	out map[outKey]stepOut
	// delivered is the fraction terminating here (destination attached).
	delivered *mtbdd.Node
	// dropped is the fraction discarded here (null route / no route).
	dropped *mtbdd.Node
}

type stepOut struct {
	frac  *mtbdd.Node
	stack stack
}

type igpKey struct {
	router topo.RouterID
	dest   topo.RouterID
}

// igpVec is the paper's V^IGP_nip: per outgoing link, the ratio of traffic
// forwarded on it when resolving dest over the IGP, plus the total ratio
// (1 where some route is selected, 0 where dest is IGP-unreachable).
type igpVec struct {
	perLink map[topo.DirLinkID]*mtbdd.Node
	total   *mtbdd.Node
}

type ipKey struct {
	router topo.RouterID
	class  int
	dscp   uint8
}

type srKey struct {
	router   topo.RouterID
	class    int
	dscp     uint8
	stackKey string
}
