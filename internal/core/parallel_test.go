package core

import (
	"net/netip"
	"testing"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/flowgen"
	"github.com/yu-verify/yu/internal/gen"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/routesim"
	"github.com/yu-verify/yu/internal/topo"
)

// buildEngine runs route simulation on a fresh manager and returns an
// engine, so sequential and parallel runs never share MTBDD state.
func buildEngine(t testing.TB, spec *config.Spec, mode topo.FailureMode, k int, opts Options) *Engine {
	t.Helper()
	m := mtbdd.New()
	fv := routesim.NewFailVars(m, spec.Net, mode, k)
	rs, err := routesim.Run(fv, spec.Configs)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(rs, opts)
}

// normalizeReport zeroes the wall-clock fields, which are the only part of
// a Report allowed to differ between sequential and parallel runs.
func normalizeReport(rep *Report) {
	for i := range rep.LinkStats {
		rep.LinkStats[i].Elapsed = 0
	}
}

func reportsEqual(t *testing.T, name string, seq, par *Report) {
	t.Helper()
	normalizeReport(seq)
	normalizeReport(par)
	if seq.Holds != par.Holds {
		t.Fatalf("%s: Holds %v (sequential) vs %v (parallel)", name, seq.Holds, par.Holds)
	}
	if seq.FlowsExecuted != par.FlowsExecuted || seq.FlowsTotal != par.FlowsTotal {
		t.Fatalf("%s: flow counts (%d,%d) vs (%d,%d)", name,
			seq.FlowsExecuted, seq.FlowsTotal, par.FlowsExecuted, par.FlowsTotal)
	}
	if len(seq.Violations) != len(par.Violations) {
		t.Fatalf("%s: %d violations (sequential) vs %d (parallel)", name, len(seq.Violations), len(par.Violations))
	}
	for i := range seq.Violations {
		a, b := seq.Violations[i], par.Violations[i]
		if a.Kind != b.Kind || a.Link != b.Link || a.Prefix != b.Prefix ||
			a.Value != b.Value || a.Min != b.Min || a.Max != b.Max {
			t.Fatalf("%s: violation %d differs:\n  sequential: %+v\n  parallel:   %+v", name, i, a, b)
		}
		if len(a.FailedLinks) != len(b.FailedLinks) || len(a.FailedRouters) != len(b.FailedRouters) {
			t.Fatalf("%s: violation %d witness differs: %+v vs %+v", name, i, a, b)
		}
		for j := range a.FailedLinks {
			if a.FailedLinks[j] != b.FailedLinks[j] {
				t.Fatalf("%s: violation %d witness link %d differs", name, i, j)
			}
		}
		for j := range a.FailedRouters {
			if a.FailedRouters[j] != b.FailedRouters[j] {
				t.Fatalf("%s: violation %d witness router %d differs", name, i, j)
			}
		}
	}
	if len(seq.LinkStats) != len(par.LinkStats) {
		t.Fatalf("%s: %d link stats (sequential) vs %d (parallel)", name, len(seq.LinkStats), len(par.LinkStats))
	}
	for i := range seq.LinkStats {
		if seq.LinkStats[i] != par.LinkStats[i] {
			t.Fatalf("%s: link stat %d differs:\n  sequential: %+v\n  parallel:   %+v",
				name, i, seq.LinkStats[i], par.LinkStats[i])
		}
	}
}

// runBoth verifies the same workload sequentially and with 4 workers and
// requires identical Reports.
func runBoth(t *testing.T, name string, spec *config.Spec, flows []topo.Flow, mode topo.FailureMode, k int, opts Options, overload float64, delivered []topo.DeliveredBound) {
	t.Helper()
	seqEng := buildEngine(t, spec, mode, k, opts)
	seq := mustRun(t, func() (*Report, error) { return NewVerifier(seqEng, flows).Run(spec.Props, delivered, overload) })

	parEng := buildEngine(t, spec, mode, k, opts)
	par := mustRun(t, func() (*Report, error) { return NewParallelVerifier(parEng, flows, 4).Run(spec.Props, delivered, overload) })

	reportsEqual(t, name, seq, par)
}

// TestParallelMatchesSequentialFatTree checks the determinism guarantee on
// the FT-4 fixture: a parallel run (4 workers) produces exactly the
// sequential Report, violations and per-link stats included.
func TestParallelMatchesSequentialFatTree(t *testing.T) {
	spec, err := gen.FatTree(gen.FatTreeSpec{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Pairwise(spec, 5, 9.0/56.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	runBoth(t, "fattree", spec, flows, topo.FailLinks, 2, Options{}, 1.0, nil)
}

// TestParallelMatchesSequentialWAN checks the guarantee on a WAN fixture,
// including a delivered bound and a tight overload factor that produces
// violations.
func TestParallelMatchesSequentialWAN(t *testing.T) {
	spec, err := gen.WAN(gen.WANSpec{Routers: 40, Links: 80, Prefixes: 12, SRPolicyFraction: 0.2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Random(spec, flowgen.RandomSpec{
		Count: 600, DSCP5Fraction: 0.3, DistinctDstPerPrefix: 3, Seed: 142,
	})
	if err != nil {
		t.Fatal(err)
	}
	delivered := []topo.DeliveredBound{{
		Prefix: netip.MustParsePrefix("0.0.0.0/0"), Min: 0, Max: 1e12,
	}}
	runBoth(t, "wan", spec, flows, topo.FailLinks, 1, Options{}, 0.5, delivered)
	runBoth(t, "wan-noearly", spec, flows, topo.FailLinks, 1, Options{DisableEarlyTermination: true}, 0.5, nil)
}

// TestParallelExecutionSharding checks that sharded execution with merge
// reproduces the sequential STFs node for node in the primary manager.
func TestParallelExecutionSharding(t *testing.T) {
	spec, err := gen.WAN(gen.WANSpec{Routers: 30, Links: 60, Prefixes: 8, SRPolicyFraction: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Random(spec, flowgen.RandomSpec{
		Count: 200, DSCP5Fraction: 0.3, DistinctDstPerPrefix: 2, Seed: 105,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := buildEngine(t, spec, topo.FailLinks, 1, Options{})
	seq := NewVerifier(eng, flows)
	// The parallel verifier shares eng's manager: its imported STFs must
	// be pointer-identical to the sequentially executed ones.
	par := NewParallelVerifier(eng, flows, 3)
	if len(seq.FlowSTFs()) != len(par.FlowSTFs()) {
		t.Fatalf("%d sequential STFs vs %d parallel", len(seq.FlowSTFs()), len(par.FlowSTFs()))
	}
	for i, a := range seq.FlowSTFs() {
		b := par.FlowSTFs()[i]
		if a.Delivered != b.Delivered || a.Dropped != b.Dropped || a.InFlight != b.InFlight {
			t.Fatalf("STF %d: delivered/dropped/in-flight nodes differ", i)
		}
		if len(a.Links) != len(b.Links) {
			t.Fatalf("STF %d: %d links vs %d", i, len(a.Links), len(b.Links))
		}
		for l, w := range a.Links {
			if b.Links[l] != w {
				t.Fatalf("STF %d: link %d node differs (pointer identity lost in merge)", i, l)
			}
		}
	}
}

// TestParallelWorkerFloor checks the degenerate worker counts fall back to
// the sequential path.
func TestParallelWorkerFloor(t *testing.T) {
	spec, err := config.ParseSpecString(tinySpec)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 1} {
		eng := buildEngine(t, spec, topo.FailLinks, 1, Options{})
		v := NewParallelVerifier(eng, spec.Flows, w)
		if v.workers != 1 {
			t.Fatalf("workers=%d should use the sequential path", w)
		}
		rep := mustRun(t, func() (*Report, error) { return v.Run(nil, nil, 1.0) })
		if rep.FlowsTotal != len(spec.Flows) {
			t.Fatalf("unexpected flow count %d", rep.FlowsTotal)
		}
	}
}

const tinySpec = `
router a as 65001 loopback 10.0.0.1
router b as 65001 loopback 10.0.0.2
link a b cost 10 capacity 100

auto-bgp-mesh

config a
  network 192.168.1.0/24
config b
  network 192.168.2.0/24

flow f1 ingress a src 192.168.1.5 dst 192.168.2.5 gbps 10
failures k 1 mode links
`
